package dragonfly_test

// Ablation benchmarks for the design choices DESIGN.md calls out: the
// output-FIFO depth of the two-stage router model, the credit-delay
// gate's slack, and the global-channel latency. Each prints a small
// table of the metric the choice moves.

import (
	"fmt"
	"strings"
	"testing"

	"dragonfly/internal/routing"
	"dragonfly/internal/sim"
	"dragonfly/internal/topology"
	"dragonfly/internal/traffic"
)

func ablationTopo(b *testing.B) *topology.Dragonfly {
	b.Helper()
	p, a, h := 4, 8, 4
	if quick := benchScale().Small; quick {
		p, a, h = 2, 4, 2
	}
	d, err := topology.NewDragonfly(p, a, h, 0)
	if err != nil {
		b.Fatal(err)
	}
	return d
}

func ablationRun(b *testing.B, d *topology.Dragonfly, cfg sim.Config, rt sim.Routing, tr sim.Traffic, load float64) sim.Result {
	b.Helper()
	net, err := sim.New(d, cfg, rt, tr)
	if err != nil {
		b.Fatal(err)
	}
	s := benchScale()
	res, err := sim.Run(net, sim.RunConfig{
		Load: load, WarmupCycles: s.Warmup, MeasureCycles: s.Measure, DrainCycles: s.Drain, StallLimit: s.StallLimit,
	})
	if err != nil {
		b.Fatal(err)
	}
	return res
}

// BenchmarkAblationOutputFIFODepth varies the output-buffer depth of the
// two-stage router. Deep output FIFOs hide congestion from the
// credit-visible input buffers, weakening the backpressure the adaptive
// algorithms rely on; depth 4 (the default) keeps channels busy without
// hiding queueing.
func BenchmarkAblationOutputFIFODepth(b *testing.B) {
	d := ablationTopo(b)
	var out strings.Builder
	for i := 0; i < b.N; i++ {
		out.Reset()
		fmt.Fprintf(&out, "UGAL-L_VCH on WC at 0.3: output-FIFO depth vs minimal-packet latency\n")
		for _, depth := range []int{1, 2, 4, 16, 64} {
			cfg := sim.Config{BufDepth: 16, OutDepth: depth, VCs: routing.VCs, LocalLatency: 1, GlobalLatency: 2, Seed: 1}
			res := ablationRun(b, d, cfg, routing.NewUGAL(d, routing.UGALLocalVCH), traffic.NewWorstCase(d), 0.3)
			fmt.Fprintf(&out, "  outDepth=%-3d avg=%7.1f min-pkts=%8.1f accepted=%.3f\n",
				depth, res.Latency.Mean(), res.MinLatency.Mean(), res.Accepted)
		}
	}
	b.Log("\n" + out.String())
}

// BenchmarkAblationCreditDelaySlack varies the hot-spot gate of the
// credit round-trip mechanism: slack 0 engages on every congestion
// wobble, large slack disables the mechanism entirely.
func BenchmarkAblationCreditDelaySlack(b *testing.B) {
	d := ablationTopo(b)
	var out strings.Builder
	for i := 0; i < b.N; i++ {
		out.Reset()
		fmt.Fprintf(&out, "UGAL-L_CR on WC at 0.3: credit-delay slack vs minimal-packet latency\n")
		for _, slack := range []int{4, 8, 32, 128} {
			cfg := sim.Config{BufDepth: 16, VCs: routing.VCs, LocalLatency: 1, GlobalLatency: 2, Seed: 1,
				DelayCredits: true, DelaySlack: slack}
			res := ablationRun(b, d, cfg, routing.NewUGALCR(d), traffic.NewWorstCase(d), 0.3)
			fmt.Fprintf(&out, "  slack=%-4d avg=%7.1f min-pkts=%8.1f accepted=%.3f\n",
				slack, res.Latency.Mean(), res.MinLatency.Mean(), res.Accepted)
		}
	}
	b.Log("\n" + out.String())
}

// BenchmarkAblationGlobalLatency varies the global-channel latency (the
// optical cable length in cycles): zero-load latency shifts, the
// adaptive behaviour should not.
func BenchmarkAblationGlobalLatency(b *testing.B) {
	d := ablationTopo(b)
	var out strings.Builder
	for i := 0; i < b.N; i++ {
		out.Reset()
		fmt.Fprintf(&out, "UGAL-L_VCH on UR at 0.5: global channel latency vs avg latency\n")
		for _, lat := range []int{1, 2, 4, 8, 16} {
			cfg := sim.Config{BufDepth: 16, VCs: routing.VCs, LocalLatency: 1, GlobalLatency: lat, Seed: 1}
			res := ablationRun(b, d, cfg, routing.NewUGAL(d, routing.UGALLocalVCH), traffic.NewUniformRandom(d.Nodes()), 0.5)
			fmt.Fprintf(&out, "  gLat=%-3d avg=%6.1f minimal-share=%.2f accepted=%.3f\n",
				lat, res.Latency.Mean(), res.MinimalFraction, res.Accepted)
		}
	}
	b.Log("\n" + out.String())
}

// BenchmarkAblationBufferDepthThroughput varies the input buffer depth
// under heavy uniform load: deeper buffers buy throughput near
// saturation (the flip side of Figure 14's latency result).
func BenchmarkAblationBufferDepthThroughput(b *testing.B) {
	d := ablationTopo(b)
	var out strings.Builder
	for i := 0; i < b.N; i++ {
		out.Reset()
		fmt.Fprintf(&out, "MIN on UR at 0.95: input buffer depth vs accepted throughput\n")
		for _, depth := range []int{4, 8, 16, 64} {
			cfg := sim.Config{BufDepth: depth, VCs: routing.VCs, LocalLatency: 1, GlobalLatency: 2, Seed: 1}
			res := ablationRun(b, d, cfg, routing.NewMIN(d), traffic.NewUniformRandom(d.Nodes()), 0.95)
			fmt.Fprintf(&out, "  buf=%-3d accepted=%.3f avg=%7.1f sat=%v\n",
				depth, res.Accepted, res.Latency.Mean(), res.Saturated)
		}
	}
	b.Log("\n" + out.String())
}
