package dragonfly_test

// TestSteadyStateZeroAlloc pins the observability-off contract: with no
// collector attached, a warmed network simulates without allocating.
// The warm-up pays for packet storage and queue growth once; after it,
// the arena free-list and the pre-sized rings recycle everything, and
// the metrics branches are nil-guarded out. CI's bench-smoke job runs
// this test so a stray allocation on the hot path fails the build
// instead of quietly eroding BENCH_sim.json.

import (
	"testing"

	"dragonfly/internal/core"
	"dragonfly/internal/obs"
)

func steadyNet(t *testing.T, shards int) interface {
	Step() error
	InFlight() int
} {
	t.Helper()
	sys, err := core.NewSystem(core.SystemConfig{P: 2, A: 4, H: 2, Shards: shards})
	if err != nil {
		t.Fatal(err)
	}
	net, err := sys.NewNetwork(core.AlgUGALLVCH, core.PatternUR)
	if err != nil {
		t.Fatal(err)
	}
	net.SetLoad(0.2)
	for cyc := 0; cyc < 3000; cyc++ {
		if err := net.Step(); err != nil {
			t.Fatal(err)
		}
	}
	return net
}

func TestSteadyStateZeroAlloc(t *testing.T) {
	net := steadyNet(t, 0)
	var stepErr error
	allocs := testing.AllocsPerRun(2000, func() {
		if err := net.Step(); err != nil {
			stepErr = err
		}
	})
	if stepErr != nil {
		t.Fatal(stepErr)
	}
	if allocs != 0 {
		t.Errorf("steady-state Step allocated %.4f objects/cycle with collectors disabled, want 0", allocs)
	}
}

// TestSteadyStateZeroAllocSharded extends the gate to the sharded
// engine: per-shard arenas, mailboxes and event buffers are warmed the
// same way, and the barrier machinery reuses its prebuilt closures and
// WaitGroup — so a sharded Step with collectors detached must stay
// allocation-free per cycle too. AllocsPerRun reads the global malloc
// counter, so an allocation on any shard goroutine fails the gate, not
// just one on the caller.
func TestSteadyStateZeroAllocSharded(t *testing.T) {
	net := steadyNet(t, 4)
	var stepErr error
	allocs := testing.AllocsPerRun(2000, func() {
		if err := net.Step(); err != nil {
			stepErr = err
		}
	})
	if stepErr != nil {
		t.Fatal(stepErr)
	}
	if allocs != 0 {
		t.Errorf("sharded steady-state Step allocated %.4f objects/cycle with collectors disabled, want 0", allocs)
	}
}

// TestSteadyStateZeroAllocWorkload extends the gate to the workload
// layer: a registry-built arrival process (here ON/OFF bursty, whose
// Arrive draws dwell lengths and flips per-terminal state every few
// hundred cycles) must keep the warmed Step allocation-free, serial and
// sharded. Source state lives in the fixed ≤8-word per-terminal arrays
// sized at build time, so steady state touches no heap.
func TestSteadyStateZeroAllocWorkload(t *testing.T) {
	for _, shards := range []int{0, 4} {
		sys, err := core.NewSystem(core.SystemConfig{P: 2, A: 4, H: 2, Shards: shards})
		if err != nil {
			t.Fatal(err)
		}
		wl := core.Workload{Traffic: "ur", Source: "onoff",
			SourceParams: map[string]int{"on": 40, "off": 120}}
		net, err := sys.NewNetworkFor(core.AlgUGALLVCH, wl)
		if err != nil {
			t.Fatal(err)
		}
		net.SetLoad(0.2)
		for cyc := 0; cyc < 3000; cyc++ {
			if err := net.Step(); err != nil {
				t.Fatal(err)
			}
		}
		var stepErr error
		allocs := testing.AllocsPerRun(2000, func() {
			if err := net.Step(); err != nil {
				stepErr = err
			}
		})
		if stepErr != nil {
			t.Fatal(stepErr)
		}
		if allocs != 0 {
			t.Errorf("shards=%d: steady-state Step with an ON/OFF source allocated %.4f objects/cycle, want 0", shards, allocs)
		}
	}
}

// TestSteadyStateTracerBounded is the flip side: with a tracer
// attached the hot path may allocate only while the trace ring grows to
// its cap — once full, tracing steady state is allocation-free too.
func TestSteadyStateTracerBounded(t *testing.T) {
	sys, err := core.NewSystem(core.SystemConfig{P: 2, A: 4, H: 2})
	if err != nil {
		t.Fatal(err)
	}
	net, err := sys.NewNetwork(core.AlgUGALLVCH, core.PatternUR)
	if err != nil {
		t.Fatal(err)
	}
	net.SetLoad(0.2)
	tr := obs.NewTracer(1, 0, 256)
	net.AttachMetrics(tr)
	for cyc := 0; cyc < 3000; cyc++ {
		if err := net.Step(); err != nil {
			t.Fatal(err)
		}
	}
	if got := len(tr.Records()); got != 256 {
		t.Fatalf("trace ring holds %d records after warm-up, want the full 256", got)
	}
	var stepErr error
	allocs := testing.AllocsPerRun(2000, func() {
		if err := net.Step(); err != nil {
			stepErr = err
		}
	})
	if stepErr != nil {
		t.Fatal(stepErr)
	}
	if allocs != 0 {
		t.Errorf("tracing steady state allocated %.4f objects/cycle with a full ring, want 0", allocs)
	}
}

// TestSteadyStateZeroAllocZoo extends the gate across the topology
// layer: the pluggable machines (here Dragonfly+, with its two-tier
// leaf/spine groups, and the swapped dragonfly with its non-uniform
// router radix) must hit the same allocation-free steady state as the
// canonical dragonfly — the contract is a property of the engine and
// the routing layer, not of one topology's port layout.
func TestSteadyStateZeroAllocZoo(t *testing.T) {
	for _, tc := range []struct {
		family string
		params map[string]int
	}{
		{"dragonflyplus", map[string]int{"p": 2, "leaves": 4, "spines": 4, "h": 2}},
		{"swapped", map[string]int{"p": 2, "k": 6}},
	} {
		sys, err := core.NewSystem(core.SystemConfig{Topology: tc.family, TopoParams: tc.params})
		if err != nil {
			t.Fatal(err)
		}
		net, err := sys.NewNetwork(core.AlgUGALLVCH, core.PatternUR)
		if err != nil {
			t.Fatal(err)
		}
		net.SetLoad(0.2)
		for cyc := 0; cyc < 3000; cyc++ {
			if err := net.Step(); err != nil {
				t.Fatal(err)
			}
		}
		var stepErr error
		allocs := testing.AllocsPerRun(2000, func() {
			if err := net.Step(); err != nil {
				stepErr = err
			}
		})
		if stepErr != nil {
			t.Fatal(stepErr)
		}
		if allocs != 0 {
			t.Errorf("%s: steady-state Step allocated %.4f objects/cycle with collectors disabled, want 0", tc.family, allocs)
		}
	}
}
