package dragonfly_test

// BenchmarkObsOverhead measures what attaching the observability layer
// costs the simulation hot loop: one op is one Network.Step on the
// paper's 1K-node machine (72-node under DFLY_BENCH_SCALE=quick) at
// moderate uniform-random load, with nothing attached, with the
// windowed time-series collector, with the sampled packet tracer (the
// variant that arms the engine's per-hop instrumentation), and with
// both stacked through metrics.Multi. PERFORMANCE.md quotes these
// numbers; rerun with
//
//	go test -bench=ObsOverhead -benchtime=200000x -run='^$' .

import (
	"testing"

	"dragonfly/internal/core"
	"dragonfly/internal/metrics"
	"dragonfly/internal/obs"
)

func BenchmarkObsOverhead(b *testing.B) {
	variants := []struct {
		name  string
		build func(sys *core.System) metrics.Collector
	}{
		{"off", func(*core.System) metrics.Collector { return nil }},
		{"windows", func(sys *core.System) metrics.Collector {
			return obs.NewWindows(obs.WindowsConfig{Width: 100, Terminals: sys.Topo.Nodes()})
		}},
		{"trace-64", func(*core.System) metrics.Collector {
			return obs.NewTracer(64, 1, 4096)
		}},
		{"windows+trace-64", func(sys *core.System) metrics.Collector {
			return metrics.Multi{
				obs.NewWindows(obs.WindowsConfig{Width: 100, Terminals: sys.Topo.Nodes()}),
				obs.NewTracer(64, 1, 4096),
			}
		}},
	}
	for _, v := range variants {
		b.Run(v.name, func(b *testing.B) {
			sys, _ := benchSystem(b, simBenchScenario{})
			net, err := sys.NewNetwork(core.AlgUGALLVCH, core.PatternUR)
			if err != nil {
				b.Fatalf("NewNetwork: %v", err)
			}
			net.SetLoad(0.3)
			if c := v.build(sys); c != nil {
				net.AttachMetrics(c)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := net.Step(); err != nil {
					b.Fatalf("Step: %v", err)
				}
			}
		})
	}
}
