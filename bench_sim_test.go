package dragonfly_test

// BenchmarkSimCycle is the simulator hot-loop microbenchmark suite: one
// op is one network cycle (Network.Step) on the paper's 1K-node
// evaluation machine, measured at low load and at saturation, pristine
// and with 10% of the global channels failed. It reports cycles/sec and
// allocs per cycle (the timed region starts on a cold network, so
// warm-up allocations — packet storage, queue growth — are charged to
// the engine the way a real sweep pays them).
//
// After the run, TestMain writes the records to BENCH_sim.json (next to
// this file), preserving the checked-in "baseline" section, which holds
// the pre-arena pointer-heap engine's numbers for the same scenarios.
// See PERFORMANCE.md for how to run and read it.
//
//	go test -bench=Sim -benchtime=100000x -run='^$' .
//
// Set DFLY_BENCH_SCALE=quick to smoke-test on the 72-node example, and
// DFLY_BENCH_JSON=path (or "skip") to redirect or suppress the JSON.

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"testing"

	"dragonfly/internal/core"
	"dragonfly/internal/fault"
	"dragonfly/internal/topology"
)

// simBenchRecord is one scenario's measurement in BENCH_sim.json.
type simBenchRecord struct {
	Name          string  `json:"name"`
	Network       string  `json:"network"`
	Cycles        int     `json:"cycles"`
	NsPerCycle    float64 `json:"ns_per_cycle"`
	CyclesPerSec  float64 `json:"cycles_per_sec"`
	AllocsPerCyc  float64 `json:"allocs_per_cycle"`
	BytesPerCyc   float64 `json:"bytes_per_cycle"`
	InFlightAtEnd int     `json:"in_flight_at_end"`
}

// simBenchFile is the BENCH_sim.json schema: the current engine's
// numbers plus the frozen pre-refactor baseline for comparison.
type simBenchFile struct {
	Engine    string           `json:"engine"`
	Note      string           `json:"note,omitempty"`
	Scenarios []simBenchRecord `json:"scenarios"`
	Baseline  *simBenchFile    `json:"baseline,omitempty"`
	// ScaleDemo holds the hand-recorded paper-scale measurements (the
	// 40K- and 256K-node runs documented in PERFORMANCE.md and
	// EXPERIMENTS.md — too slow for the bench harness); writeSimBench
	// carries it forward untouched, like Baseline.
	ScaleDemo json.RawMessage `json:"scale_demo,omitempty"`
}

// simBenchRecords collects the sub-benchmark measurements of one
// `go test -bench` process; TestMain persists them on exit.
var simBenchRecords []simBenchRecord

type simBenchScenario struct {
	name       string
	alg        core.Algorithm
	pattern    core.Pattern
	load       float64
	failGlobal float64
	shards     int
	// family/params select a registry topology instead of the default
	// canonical dragonfly (see benchSystem for the scale handling).
	family string
	params map[string]int
	// quickParams replaces params under DFLY_BENCH_SCALE=quick.
	quickParams map[string]int
}

func simBenchScenarios() []simBenchScenario {
	return []simBenchScenario{
		{name: "low/pristine", alg: core.AlgUGALLVCH, pattern: core.PatternUR, load: 0.1},
		{name: "sat/pristine", alg: core.AlgUGALLVCH, pattern: core.PatternWC, load: 0.5},
		{name: "low/faulted", alg: core.AlgUGALLVCH, pattern: core.PatternUR, load: 0.1, failGlobal: 0.1},
		{name: "sat/faulted", alg: core.AlgUGALLVCH, pattern: core.PatternWC, load: 0.5, failGlobal: 0.1},
		// The sharded engine on the same machine: shard count pinned at 4
		// (not NumCPU) so the records stay comparable across runners; the
		// saturated point maximises inter-group traffic and therefore
		// mailbox crossings.
		{name: "low/sharded4", alg: core.AlgUGALLVCH, pattern: core.PatternUR, load: 0.1, shards: 4},
		{name: "sat/sharded4", alg: core.AlgUGALLVCH, pattern: core.PatternWC, load: 0.5, shards: 4},
		// The topology zoo at the same radix class as the 1K dragonfly:
		// per-cycle cost of the pluggable machines, so a regression in
		// one family's oracle or port layout shows up next to the
		// canonical numbers.
		{name: "mid/dragonflyplus", alg: core.AlgUGALLVCH, pattern: core.PatternUR, load: 0.3,
			family:      "dragonflyplus",
			params:      map[string]int{"p": 4, "leaves": 8, "spines": 8, "h": 4},
			quickParams: map[string]int{"p": 2, "leaves": 4, "spines": 4, "h": 2}},
		{name: "mid/swapped", alg: core.AlgUGALLVCH, pattern: core.PatternUR, load: 0.3,
			family:      "swapped",
			params:      map[string]int{"p": 4, "k": 12},
			quickParams: map[string]int{"p": 2, "k": 6}},
		{name: "mid/aries", alg: core.AlgUGALLVCH, pattern: core.PatternUR, load: 0.3,
			family:      "aries",
			params:      map[string]int{"p": 4, "blades": 8, "chassis": 2, "bundle": 1, "h": 4, "g": 9},
			quickParams: map[string]int{"p": 1, "blades": 4, "chassis": 2, "bundle": 2, "h": 2, "g": 8}},
	}
}

// benchSystem builds the benchmark machine: the scenario's registry
// topology if one is named, otherwise the paper's 1K-node network —
// both shrunk under DFLY_BENCH_SCALE=quick.
func benchSystem(b *testing.B, sc simBenchScenario) (*core.System, string) {
	b.Helper()
	quick := os.Getenv("DFLY_BENCH_SCALE") == "quick"
	var cfg core.SystemConfig
	var name string
	if sc.family != "" {
		params := sc.params
		if quick && sc.quickParams != nil {
			params = sc.quickParams
		}
		cfg = core.SystemConfig{Topology: sc.family, TopoParams: params}
		name = sc.family
	} else {
		cfg = core.SystemConfig{P: 4, A: 8, H: 4}
		name = "1K-node (p=4,a=8,h=4)"
		if quick {
			cfg = core.SystemConfig{P: 2, A: 4, H: 2}
			name = "72-node (p=2,a=4,h=2)"
		}
	}
	sys, err := core.NewSystem(cfg)
	if err != nil {
		b.Fatalf("NewSystem: %v", err)
	}
	if sc.family != "" {
		name = fmt.Sprintf("%v", sys.Topo)
	}
	if sc.failGlobal > 0 {
		plan := fault.NewPlan(7)
		plan.FailFraction(sys.Topo, topology.ClassGlobal, sc.failGlobal)
		sys = sys.WithFaults(plan)
		name += fmt.Sprintf(" %g%% globals failed", sc.failGlobal*100)
	}
	return sys, name
}

// BenchmarkSimCycle times Network.Step across the scenario matrix and
// records cycles/sec and allocs/cycle for BENCH_sim.json.
func BenchmarkSimCycle(b *testing.B) {
	for _, sc := range simBenchScenarios() {
		b.Run(sc.name, func(b *testing.B) {
			sys, netName := benchSystem(b, sc)
			net, err := sys.NewNetwork(sc.alg, sc.pattern)
			if err != nil {
				b.Fatalf("NewNetwork: %v", err)
			}
			if sc.shards > 0 {
				if err := net.SetShards(sc.shards); err != nil {
					b.Fatalf("SetShards: %v", err)
				}
			}
			net.SetLoad(sc.load)
			b.ReportAllocs()
			var m0, m1 runtime.MemStats
			runtime.ReadMemStats(&m0)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := net.Step(); err != nil {
					b.Fatalf("Step: %v", err)
				}
			}
			b.StopTimer()
			runtime.ReadMemStats(&m1)
			cps := float64(b.N) / b.Elapsed().Seconds()
			b.ReportMetric(cps, "cycles/sec")
			simBenchRecords = append(simBenchRecords, simBenchRecord{
				Name:          sc.name,
				Network:       netName,
				Cycles:        b.N,
				NsPerCycle:    float64(b.Elapsed().Nanoseconds()) / float64(b.N),
				CyclesPerSec:  cps,
				AllocsPerCyc:  float64(m1.Mallocs-m0.Mallocs) / float64(b.N),
				BytesPerCyc:   float64(m1.TotalAlloc-m0.TotalAlloc) / float64(b.N),
				InFlightAtEnd: net.InFlight(),
			})
		})
	}
}

// writeSimBench persists the collected records to BENCH_sim.json,
// carrying the existing file's baseline section forward (or demoting a
// previous engine's numbers to the baseline slot if none is recorded).
func writeSimBench() {
	if len(simBenchRecords) == 0 {
		return
	}
	path := os.Getenv("DFLY_BENCH_JSON")
	if path == "skip" {
		return
	}
	if path == "" {
		path = "BENCH_sim.json"
	}
	// The bench framework runs a b.N=1 calibration probe before the
	// timed run; keep only the largest-N record per scenario (under
	// -benchtime=1x the probe IS the run, so it survives).
	best := make(map[string]int)
	var scenarios []simBenchRecord
	for _, rec := range simBenchRecords {
		if i, ok := best[rec.Name]; ok {
			if rec.Cycles >= scenarios[i].Cycles {
				scenarios[i] = rec
			}
			continue
		}
		best[rec.Name] = len(scenarios)
		scenarios = append(scenarios, rec)
	}
	out := simBenchFile{
		Engine:    "arena",
		Note:      "one op = one Network.Step on a cold network; see PERFORMANCE.md",
		Scenarios: scenarios,
	}
	if prev, err := os.ReadFile(path); err == nil {
		var old simBenchFile
		if json.Unmarshal(prev, &old) == nil {
			out.ScaleDemo = old.ScaleDemo
			if old.Baseline != nil {
				out.Baseline = old.Baseline
			} else if len(old.Scenarios) > 0 && old.Engine != out.Engine {
				old2 := old
				out.Baseline = &old2
			}
		}
	}
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "BENCH_sim.json: %v\n", err)
		return
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "BENCH_sim.json: %v\n", err)
	}
}

// TestMain lets the benchmark suite flush BENCH_sim.json after the run.
func TestMain(m *testing.M) {
	code := m.Run()
	writeSimBench()
	os.Exit(code)
}
