package dragonfly_test

// The benchmark harness regenerates every table and figure of the
// paper's evaluation section. Each benchmark renders its exhibit to the
// test log (visible with -v or go test -bench), so
//
//	go test -bench=. -benchmem -benchtime=1x -timeout 60m
//
// reproduces the full evaluation (the simulation figures need more than
// go test's default 10-minute timeout on a small machine). Simulation-backed figures run the
// paper's 1K-node network (p=h=4, a=8); set DFLY_BENCH_SCALE=quick to
// smoke-test the harness on the 72-node example instead.

import (
	"os"
	"strings"
	"testing"

	"dragonfly/internal/experiments"
)

// benchScale picks the simulation fidelity for the harness: the paper's
// 1K-node network with coarse load steps by default.
func benchScale() experiments.Scale {
	if os.Getenv("DFLY_BENCH_SCALE") == "quick" {
		return experiments.Quick()
	}
	s := experiments.Paper()
	s.Warmup = 2000
	s.Measure = 1000
	s.Drain = 8000
	s.Coarse = true
	return s
}

// renderExhibits runs one experiment per benchmark iteration and logs
// the rendered exhibit once.
func renderExhibits(b *testing.B, name string) {
	b.Helper()
	r := experiments.Runner{Scale: benchScale()}
	var out strings.Builder
	for i := 0; i < b.N; i++ {
		out.Reset()
		exhibits, err := r.Run(name)
		if err != nil {
			b.Fatalf("%s: %v", name, err)
		}
		for _, e := range exhibits {
			e.Render(&out)
		}
	}
	b.Log("\n" + out.String())
}

// BenchmarkFig01RadixScaling regenerates Figure 1: the router radix a
// one-global-hop flat network needs as N grows.
func BenchmarkFig01RadixScaling(b *testing.B) { renderExhibits(b, "fig1") }

// BenchmarkTable1CableTech regenerates Table 1: the cable technologies.
func BenchmarkTable1CableTech(b *testing.B) { renderExhibits(b, "table1") }

// BenchmarkFig02CableCost regenerates Figure 2: electrical vs optical
// cable cost and their crossover.
func BenchmarkFig02CableCost(b *testing.B) { renderExhibits(b, "fig2") }

// BenchmarkFig04Scalability regenerates Figure 4: balanced dragonfly
// reach versus router radix.
func BenchmarkFig04Scalability(b *testing.B) { renderExhibits(b, "fig4") }

// BenchmarkFig06GroupVariants regenerates Figure 6: group organisations
// that raise the effective radix.
func BenchmarkFig06GroupVariants(b *testing.B) { renderExhibits(b, "fig6") }

// BenchmarkFig08RoutingComparison regenerates Figure 8(a,b): the
// routing-algorithm comparison under benign and adversarial traffic.
func BenchmarkFig08RoutingComparison(b *testing.B) { renderExhibits(b, "fig8") }

// BenchmarkFig09ChannelUtil regenerates Figure 9: global channel
// utilisation under UGAL-L vs UGAL-G at load 0.2, worst-case traffic.
func BenchmarkFig09ChannelUtil(b *testing.B) { renderExhibits(b, "fig9") }

// BenchmarkFig10UGALVC regenerates Figure 10: the UGAL-L_VC and
// UGAL-L_VCH variants.
func BenchmarkFig10UGALVC(b *testing.B) { renderExhibits(b, "fig10") }

// BenchmarkFig11MinNonmin regenerates Figure 11: latency split between
// minimally and non-minimally routed packets, 16- and 256-flit buffers.
func BenchmarkFig11MinNonmin(b *testing.B) { renderExhibits(b, "fig11") }

// BenchmarkFig12Histogram regenerates Figure 12: the bimodal latency
// distribution at load 0.25.
func BenchmarkFig12Histogram(b *testing.B) { renderExhibits(b, "fig12") }

// BenchmarkFig14BufferDepth regenerates Figure 14: UGAL-L latency as the
// input buffer depth varies.
func BenchmarkFig14BufferDepth(b *testing.B) { renderExhibits(b, "fig14") }

// BenchmarkFig16CreditRT regenerates Figure 16: the credit round-trip
// latency mechanism against UGAL-L_VCH and UGAL-G.
func BenchmarkFig16CreditRT(b *testing.B) { renderExhibits(b, "fig16") }

// BenchmarkFig18Comparison64K regenerates Figure 18: the 64K-node
// dragonfly vs flattened butterfly comparison.
func BenchmarkFig18Comparison64K(b *testing.B) { renderExhibits(b, "fig18") }

// BenchmarkFig19CostComparison regenerates Figure 19: cost per node
// versus machine size for the four topologies.
func BenchmarkFig19CostComparison(b *testing.B) { renderExhibits(b, "fig19") }

// BenchmarkTable2TopologyComparison regenerates Table 2: hop counts and
// cable lengths of the dragonfly versus the flattened butterfly.
func BenchmarkTable2TopologyComparison(b *testing.B) { renderExhibits(b, "table2") }
