// dfly-cost reproduces the paper's cost studies: the cable cost model of
// Figure 2 and Table 1, the 64K-node topology comparison of Figure 18,
// the cost-per-node curves of Figure 19, and Table 2's hop/cable
// comparison. With -n it also prints a detailed cost breakdown for one
// machine size.
package main

import (
	"flag"
	"fmt"
	"os"

	"dragonfly/internal/cost"
	"dragonfly/internal/experiments"
)

func main() {
	n := flag.Int("n", 0, "print a detailed breakdown for this machine size (0 = skip)")
	flag.Parse()

	for _, mk := range []func() (experiments.Exhibit, error){
		func() (experiments.Exhibit, error) { return experiments.Table01(), nil },
		func() (experiments.Exhibit, error) { return experiments.Fig02(), nil },
		func() (experiments.Exhibit, error) { t, err := experiments.Fig18(); return t, err },
		func() (experiments.Exhibit, error) { f, err := experiments.Fig19(); return f, err },
		func() (experiments.Exhibit, error) { return experiments.Table02(), nil },
	} {
		e, err := mk()
		if err != nil {
			fmt.Fprintln(os.Stderr, "dfly-cost:", err)
			os.Exit(1)
		}
		e.Render(os.Stdout)
	}

	if *n > 0 {
		m := cost.DefaultModel()
		fmt.Printf("== Breakdown at N=%d ==\n", *n)
		type gen struct {
			name string
			fn   func(int) (cost.Breakdown, error)
		}
		for _, g := range []gen{
			{"dragonfly", m.Dragonfly},
			{"flattened butterfly", m.FlattenedButterfly},
			{"folded Clos", m.FoldedClos},
			{"3-D torus", m.Torus3D},
		} {
			b, err := g.fn(*n)
			if err != nil {
				fmt.Printf("%-20s %v\n", g.name, err)
				continue
			}
			fmt.Printf("%-20s $%.2f/node  (routers $%.2f, terminal $%.2f, local $%.2f, global $%.2f; %d global cables avg %.1fm)\n",
				g.name, b.PerNode(),
				b.RouterCost/float64(b.Nodes), b.TerminalCost/float64(b.Nodes),
				b.LocalCost/float64(b.Nodes), b.GlobalCost/float64(b.Nodes),
				b.GlobalChannels, b.AvgGlobalLenM)
		}
	}
}
