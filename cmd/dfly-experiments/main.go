// dfly-experiments regenerates the paper's tables and figures. By
// default it runs everything at paper scale (the 1K-node evaluation
// network, full warm-up); -quick switches to a reduced scale for smoke
// runs, and positional arguments select individual exhibits:
//
//	dfly-experiments                 # everything, paper scale
//	dfly-experiments -quick fig8     # one experiment, reduced scale
//	dfly-experiments -jobs 8 fig16   # fan the sweeps over 8 workers
//	dfly-experiments -list           # show experiment names
//	dfly-experiments -json fig8      # machine-readable report on stdout
//
// Independent simulations (load points, series, whole exhibits) run
// concurrently on -jobs workers (default: GOMAXPROCS). The rendered
// report is byte-identical for every -jobs value.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"

	"dragonfly/internal/experiments"
)

func main() {
	quick := flag.Bool("quick", false, "reduced scale: small network, short phases")
	list := flag.Bool("list", false, "list experiment names and exit")
	quiet := flag.Bool("quiet", false, "suppress progress output")
	jobs := flag.Int("jobs", 0, "concurrent simulations (0 = GOMAXPROCS)")
	jsonOut := flag.Bool("json", false, "emit one versioned JSON report instead of rendered text")
	flag.Parse()

	if *list {
		fmt.Println(strings.Join(experiments.Names(), "\n"))
		return
	}

	scale := experiments.Paper()
	if *quick {
		scale = experiments.Quick()
	}
	r := experiments.Runner{Scale: scale, Jobs: *jobs}
	if !*quiet {
		r.Log = os.Stderr
	}

	names := flag.Args()
	if *jsonOut {
		if err := r.RunJSON(os.Stdout, names); err != nil {
			fmt.Fprintln(os.Stderr, "dfly-experiments:", err)
			os.Exit(1)
		}
		return
	}
	if len(names) > 0 && !*quiet {
		workers := *jobs
		if workers <= 0 {
			workers = runtime.GOMAXPROCS(0)
		}
		fmt.Fprintf(os.Stderr, "running %d experiments on %d workers\n", len(names), workers)
	}
	if len(names) == 0 {
		if err := r.RunAll(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "dfly-experiments:", err)
			os.Exit(1)
		}
		return
	}
	for _, name := range names {
		exhibits, err := r.Run(name)
		if err != nil {
			fmt.Fprintln(os.Stderr, "dfly-experiments:", err)
			os.Exit(1)
		}
		for _, e := range exhibits {
			e.Render(os.Stdout)
		}
	}
}
