// dfly-scale prints the scalability analytics of Figures 1 and 4: the
// router radix a one-global-hop flat network would need, the balanced
// dragonfly's reach per radix, and — with -k or -n — the balanced
// configuration for a specific router or machine size.
//
// With -sim it additionally times a flit-level simulation of the
// selected balanced machine on the sharded engine: -shards picks the
// shard count (0 = serial), -load/-cycles/-alg shape the run, and the
// output reports wall-clock cycles/sec so paper-scale machines (the
// 256K-node k=64 point of Figure 4) can be benchmarked directly.
//
//	dfly-scale -n 262144 -sim -shards 8 -cycles 200 -load 0.1
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"dragonfly/internal/core"
	"dragonfly/internal/experiments"
	"dragonfly/internal/topology"
)

func main() {
	k := flag.Int("k", 0, "show the balanced dragonfly for this router radix")
	n := flag.Int("n", 0, "show the smallest balanced dragonfly reaching this many nodes")
	simRun := flag.Bool("sim", false, "time a flit-level simulation of the selected machine (needs -k or -n)")
	shards := flag.Int("shards", 0, "engine shards for -sim, clamped to the group count (0 = serial)")
	load := flag.Float64("load", 0.1, "offered load for -sim in flits/cycle/terminal")
	cycles := flag.Int("cycles", 200, "simulated cycles to time with -sim")
	algName := flag.String("alg", "MIN", "routing algorithm for -sim")
	flag.Parse()

	if !*simRun {
		experiments.Fig01().Render(os.Stdout)
		experiments.Fig04().Render(os.Stdout)
		experiments.Fig06().Render(os.Stdout)
	}

	if *n > 0 {
		*k = topology.BalancedRadixForNodes(*n)
		fmt.Printf("smallest balanced radix for %d nodes: %d\n", *n, *k)
	}
	if *k <= 0 {
		if *simRun {
			fatal(fmt.Errorf("-sim needs a machine: give -k or -n"))
		}
		return
	}
	p, a, h := topology.BalancedParams(*k)
	if h == 0 {
		fmt.Printf("radix %d is too small for a dragonfly\n", *k)
		return
	}
	d, err := topology.NewDragonfly(p, a, h, 0)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("balanced dragonfly for radix %d: %v\n", *k, d)
	fmt.Printf("  groups: %d, routers: %d, diameter: 3 (local+global+local)\n", d.G, d.Routers())
	if !*simRun {
		return
	}
	if err := benchSim(p, a, h, *algName, *shards, *load, *cycles); err != nil {
		fatal(err)
	}
}

// benchSim builds the machine, steps it for the requested cycles under
// uniform random traffic and reports wall-clock throughput. The whole
// run is timed from a cold start — at a few hundred cycles the fill
// transient is part of what a capacity-planning user would pay anyway,
// and the in-flight count printed at the end shows how full the
// network got.
func benchSim(p, a, h int, algName string, shards int, load float64, cycles int) error {
	alg, err := core.ParseAlgorithm(algName)
	if err != nil {
		return err
	}
	sys, err := core.NewSystem(core.SystemConfig{P: p, A: a, H: h, Shards: shards})
	if err != nil {
		return err
	}
	net, err := sys.NewNetwork(alg, core.PatternUR)
	if err != nil {
		return err
	}
	net.SetLoad(load)
	fmt.Printf("  simulating %d cycles at load %.3f, %s routing, %d engine shard(s)\n",
		cycles, load, alg, net.Shards())
	start := time.Now()
	for i := 0; i < cycles; i++ {
		if err := net.Step(); err != nil {
			return err
		}
	}
	elapsed := time.Since(start)
	cps := float64(cycles) / elapsed.Seconds()
	fmt.Printf("  %d cycles in %v: %.2f cycles/sec (%.1f ms/cycle), %d flits in flight\n",
		cycles, elapsed.Round(time.Millisecond), cps,
		1000/cps, net.InFlight())
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "dfly-scale:", err)
	os.Exit(1)
}
