// dfly-scale prints the scalability analytics of Figures 1 and 4: the
// router radix a one-global-hop flat network would need, the balanced
// dragonfly's reach per radix, and — with -k or -n — the balanced
// configuration for a specific router or machine size.
package main

import (
	"flag"
	"fmt"
	"os"

	"dragonfly/internal/experiments"
	"dragonfly/internal/topology"
)

func main() {
	k := flag.Int("k", 0, "show the balanced dragonfly for this router radix")
	n := flag.Int("n", 0, "show the smallest balanced dragonfly reaching this many nodes")
	flag.Parse()

	experiments.Fig01().Render(os.Stdout)
	experiments.Fig04().Render(os.Stdout)
	experiments.Fig06().Render(os.Stdout)

	if *n > 0 {
		*k = topology.BalancedRadixForNodes(*n)
		fmt.Printf("smallest balanced radix for %d nodes: %d\n", *n, *k)
	}
	if *k > 0 {
		p, a, h := topology.BalancedParams(*k)
		if h == 0 {
			fmt.Printf("radix %d is too small for a dragonfly\n", *k)
			return
		}
		d, err := topology.NewDragonfly(p, a, h, 0)
		if err != nil {
			fmt.Fprintln(os.Stderr, "dfly-scale:", err)
			os.Exit(1)
		}
		fmt.Printf("balanced dragonfly for radix %d: %v\n", *k, d)
		fmt.Printf("  groups: %d, routers: %d, diameter: 3 (local+global+local)\n", d.G, d.Routers())
	}
}
