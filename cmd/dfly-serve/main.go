// dfly-serve runs the dragonfly simulator as a long-lived HTTP/JSON
// service (internal/serve): clients POST run and sweep jobs, watch them
// live over server-sent events, and fetch versioned JSON reports.
// Identical jobs (by canonical spec hash — defaults, field order and
// engine shard count cancel out) are answered from an LRU result cache,
// bit-identical to a fresh computation.
//
// Endpoints:
//
//	POST   /v1/jobs             submit a job (202 accepted / 200 cached /
//	                            400 invalid / 413 oversized / 429 queue full /
//	                            503 draining)
//	GET    /v1/jobs             list jobs
//	GET    /v1/jobs/{id}        job status
//	DELETE /v1/jobs/{id}        cancel a queued or running job
//	GET    /v1/jobs/{id}/events live SSE feed (state, window, point events)
//	GET    /v1/jobs/{id}/report the finished job's JSON report
//	GET    /v1/stats            queue/cache/worker/durability counters
//	GET    /healthz             liveness: always 200 while the process serves
//	GET    /readyz              readiness: 200 serving, 503 draining
//
// The queue is bounded: a full queue answers 429 with Retry-After
// rather than buffering without limit. Each job runs under a timeout
// (-job-timeout, shortened per job by "timeout_ms") and panic
// isolation — a crashing job reports a structured failure and the
// server keeps serving.
//
// With -data-dir the server is durable: every accepted job is written
// to a write-ahead journal before the client is acknowledged, results
// are persisted as content-addressed files, and long runs checkpoint
// the engine every -checkpoint-every cycles. After a crash, restarting
// on the same directory replays the journal, restores finished jobs
// (and the result cache) byte-for-byte, and re-enqueues interrupted
// jobs — resuming from their last checkpoint where one exists. Corrupt
// journal entries are quarantined with a warning, never fatal.
//
// On SIGINT/SIGTERM the server drains: new submissions get 503, jobs
// already accepted have -drain-timeout to finish, stragglers past the
// deadline are canceled through the engine's cycle-batch checkpoints,
// and the process exits 0 once every accepted job reached a terminal
// state. Exit codes: 0 clean (drained, even if stragglers had to be
// canceled), 1 bad flags or a listener/serve failure.
//
// Usage:
//
//	dfly-serve -addr :8080
//	dfly-serve -addr :8080 -workers 4 -queue 128 -job-timeout 5m -max-nodes 10000
//	dfly-serve -addr :8080 -data-dir /var/lib/dfly
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"dragonfly/internal/parallel"
	"dragonfly/internal/serve"
)

func main() {
	var (
		addr       = flag.String("addr", ":8080", "listen address")
		workers    = flag.Int("workers", 2, "jobs executed concurrently")
		queue      = flag.Int("queue", 64, "bounded job-queue depth (full queue answers 429)")
		jobTimeout = flag.Duration("job-timeout", 2*time.Minute, "per-job execution cap (jobs may shorten it via timeout_ms)")
		drain      = flag.Duration("drain-timeout", 30*time.Second, "how long shutdown waits for in-flight jobs before canceling them")
		maxBody    = flag.Int64("max-body", 1<<20, "submission body cap in bytes")
		cacheSize  = flag.Int("cache", 256, "result-cache capacity in reports (negative disables)")
		jobs       = flag.Int("jobs", 0, "concurrent simulations across all jobs (0 = GOMAXPROCS)")
		maxNodes   = flag.Int("max-nodes", 0, "largest topology (in terminals) a job may request (0 = unlimited)")
		maxPoints  = flag.Int("max-sweep-points", 0, "largest sweep load list a job may request (0 = unlimited)")
		maxCycles  = flag.Int64("max-cycles", 0, "largest warmup+measure+drain a job may request (0 = unlimited)")
		maxTrace   = flag.Int("max-trace-bytes", 1<<20, "largest flow trace a \"trace\" workload may submit (0 = unlimited)")
		dataDir    = flag.String("data-dir", "", "directory for the durable journal, results and checkpoints (empty = in-memory only)")
		ckptEvery  = flag.Int64("checkpoint-every", 0, "cycles between engine checkpoints of durable run jobs (0 = default 5000)")
	)
	flag.Parse()

	logger := log.New(os.Stderr, "dfly-serve: ", log.LstdFlags)
	srv, err := serve.Open(serve.Config{
		QueueDepth: *queue,
		Workers:    *workers,
		JobTimeout: *jobTimeout,
		MaxBody:    *maxBody,
		CacheSize:  *cacheSize,
		Pool:       parallel.New(*jobs),
		Limits: serve.Limits{
			MaxNodes:       *maxNodes,
			MaxSweepPoints: *maxPoints,
			MaxCycles:      *maxCycles,
			MaxTraceBytes:  *maxTrace,
		},
		DataDir:         *dataDir,
		CheckpointEvery: *ckptEvery,
		Logf:            logger.Printf,
	})
	if err != nil {
		logger.Fatalf("open: %v", err)
	}
	httpSrv := &http.Server{Addr: *addr, Handler: srv}

	// Serve until a signal arrives, then drain: stop accepting
	// connections, refuse new jobs, give in-flight work the drain
	// window, cancel stragglers, exit clean. A second signal kills the
	// process the default way (NotifyContext restores default handling
	// once the first signal fires its context).
	sigCtx, stopSignals := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stopSignals()

	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	logger.Printf("listening on %s (%d workers, queue %d, job timeout %v)", *addr, *workers, *queue, *jobTimeout)

	select {
	case err := <-errc:
		logger.Fatalf("serve: %v", err)
	case <-sigCtx.Done():
	}
	stopSignals()
	logger.Printf("signal received: draining (deadline %v)", *drain)

	ctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		logger.Printf("drain deadline passed: in-flight jobs were canceled (%v)", err)
	}
	if err := httpSrv.Shutdown(ctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		logger.Printf("http shutdown: %v", err)
	}
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintln(os.Stderr, "dfly-serve:", err)
		os.Exit(1)
	}
	logger.Printf("drained; bye")
}
