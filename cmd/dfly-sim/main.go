// dfly-sim runs a single dragonfly simulation and prints its
// measurements: latency (average and split by routing decision),
// accepted throughput, and saturation state.
//
// Usage:
//
//	dfly-sim -alg UGAL-L_VCH -pattern WC -load 0.3 -p 4 -a 8 -h 4 -buf 16
package main

import (
	"flag"
	"fmt"
	"os"

	"dragonfly/internal/core"
	"dragonfly/internal/sim"
)

func main() {
	var (
		algName = flag.String("alg", "UGAL-L_VCH", "routing algorithm (MIN, VAL, UGAL-L, UGAL-G, UGAL-L_VC, UGAL-L_VCH, UGAL-L_CR)")
		pattern = flag.String("pattern", "UR", "traffic pattern (UR, WC, BitComplement, Tornado, Permutation)")
		load    = flag.Float64("load", 0.3, "offered load in flits/cycle/terminal")
		p       = flag.Int("p", 4, "terminals per router")
		a       = flag.Int("a", 8, "routers per group")
		h       = flag.Int("h", 4, "global channels per router")
		groups  = flag.Int("g", 0, "groups (0 = maximal a*h+1)")
		buf     = flag.Int("buf", 16, "input buffer depth per VC (flits)")
		warmup  = flag.Int("warmup", 3000, "warm-up cycles")
		measure = flag.Int("measure", 2000, "measurement cycles")
		drain   = flag.Int("drain", 20000, "drain cycle cap")
		seed    = flag.Uint64("seed", 1, "random seed")
		hist    = flag.Bool("hist", false, "print the latency histogram")
	)
	flag.Parse()

	alg, err := core.ParseAlgorithm(*algName)
	if err != nil {
		fatal(err)
	}
	pat, err := core.ParsePattern(*pattern)
	if err != nil {
		fatal(err)
	}
	sys, err := core.NewSystem(core.SystemConfig{
		P: *p, A: *a, H: *h, Groups: *groups, BufDepth: *buf, Seed: *seed,
	})
	if err != nil {
		fatal(err)
	}
	fmt.Printf("simulating %v, %s routing, %s traffic, load %.3f\n", sys.Topo, alg, pat, *load)

	rc := sim.RunConfig{
		WarmupCycles:  *warmup,
		MeasureCycles: *measure,
		DrainCycles:   *drain,
		Histogram:     *hist,
	}
	res, err := sys.Run(alg, pat, *load, rc)
	if err != nil {
		fatal(err)
	}

	fmt.Printf("offered load:      %.3f flits/cycle/terminal\n", res.Offered)
	fmt.Printf("accepted load:     %.3f flits/cycle/terminal\n", res.Accepted)
	fmt.Printf("avg latency:       %.1f cycles (%d packets measured)\n", res.Latency.Mean(), res.Latency.Count())
	if res.MinLatency.Count() > 0 {
		fmt.Printf("  minimal pkts:    %.1f cycles (%.1f%% of traffic)\n", res.MinLatency.Mean(), 100*res.MinimalFraction)
	}
	if res.NonminLatency.Count() > 0 {
		fmt.Printf("  non-minimal:     %.1f cycles\n", res.NonminLatency.Mean())
	}
	fmt.Printf("latency p99:       %.0f cycles (max %.0f)\n", pctl(res), res.Latency.Max())
	fmt.Printf("saturated:         %v\n", res.Saturated)
	fmt.Printf("simulated cycles:  %d\n", res.Cycles)
	if *hist && res.Hist != nil {
		fmt.Println("\nlatency histogram:")
		buckets := res.Hist.Buckets()
		for i, c := range buckets {
			if c == 0 {
				continue
			}
			fmt.Printf("  %4d-%-4d %7d %s\n",
				int64(i)*res.Hist.Width, (int64(i)+1)*res.Hist.Width-1, c, bar(res.Hist.Fraction(i)))
		}
	}
}

func pctl(res sim.Result) float64 {
	if res.Hist != nil {
		return float64(res.Hist.Percentile(0.99))
	}
	return res.Latency.Max()
}

func bar(frac float64) string {
	n := int(frac * 200)
	if n > 60 {
		n = 60
	}
	out := make([]byte, n)
	for i := range out {
		out[i] = '#'
	}
	return string(out)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "dfly-sim:", err)
	os.Exit(1)
}
