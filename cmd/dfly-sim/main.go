// dfly-sim runs a single dragonfly simulation and prints its
// measurements: latency (average and split by routing decision),
// accepted throughput, and saturation state. With -sweep it runs a
// whole latency-load curve instead, fanning the load points over -jobs
// workers (the results are bit-identical for every worker count).
//
// Fault injection: -fail-global fails random global channels (a
// fraction below 1, a count at or above 1), -fail-routers fails whole
// routers by id, and -fail-seed picks which channels die. Routing
// detours around the holes; truly unreachable packets are dropped and
// reported. -fault-timeline schedules transient fail/recover events at
// simulation cycles instead of a standing plan.
//
// Observability: -json replaces the text output with one versioned
// JSON report (schema_version inside; informational prints move to
// stderr). -window W adds a windowed time series (accepted rate,
// latency, per-class utilization, VC-occupancy heatmap) to the report,
// and -trace N samples ~1/N packets into per-hop trace records
// (-trace-buf bounds the ring, -trace-seed picks the sample). The
// series and trace flags need -json and a single run, not -sweep.
//
// Checkpointing: -checkpoint FILE writes a resumable dfly-snap/1
// snapshot of the complete run state (engine and measurement
// accumulators) to FILE every -checkpoint-every cycles, atomically
// replacing the previous one; -resume FILE restarts a killed run from
// such a file and finishes bit-identical to a run that was never
// interrupted, even at a different -shards value. Both apply to a
// single run (not -sweep) and exclude -window/-trace, whose collector
// state is not part of a snapshot.
//
// Exit codes: 0 on success, 1 on bad flags or configuration — or when
// the -json report cannot be encoded and written (a closed stdout pipe
// included: SIGPIPE is ignored so the write error surfaces, with
// diagnostics on stderr, instead of killing the process mid-stream); 2
// when the deadlock detector stalls the run (diagnostics are printed);
// 3 when the run completes but unroutable drops dominate the delivered
// traffic; 4 when SIGINT/SIGTERM interrupts the run — the engine stops
// at the next cycle-batch checkpoint and partial diagnostics (phase,
// cycle reached, packets in flight) go to stderr.
//
// Usage:
//
//	dfly-sim -alg UGAL-L_VCH -pattern WC -load 0.3 -p 4 -a 8 -h 4 -buf 16
//	dfly-sim -topology swapped -topo-params "p=2,k=8" -alg MIN -load 0.2
//	dfly-sim -topology dragonflyplus -topo-params "p=2,leaves=4,spines=4,h=2" -sweep 0.1:0.9:0.1
//	dfly-sim -alg UGAL-L -pattern WC -sweep 0.05:0.5:0.05 -jobs 4
//	dfly-sim -alg UGAL-L -fail-global 0.1 -fail-seed 7 -sweep 0.1:0.9:0.1
//	dfly-sim -alg UGAL-L -fault-timeline "@2000 fail global=0.25; @8000 recover all"
//	dfly-sim -alg UGAL-L -load 0.4 -json -window 250 -trace 64 > run.json
//	dfly-sim -alg UGAL-L -load 0.4 -checkpoint run.snap -checkpoint-every 5000
//	dfly-sim -alg UGAL-L -load 0.4 -resume run.snap
//	dfly-sim -alg UGAL-L -traffic hotspot -traffic-params "hot=4,pct=25" -load 0.2
//	dfly-sim -alg UGAL-L -workload onoff -workload-params "on=50,off=450,pareto=1" -load 0.3
//	dfly-sim -alg UGAL-L -workload trace -trace-file flows.txt -load 0
//
// Workloads: -traffic selects a parameterised traffic family from the
// registry (where packets go) and -workload an arrival process (when
// packets are offered) — Bernoulli by default, ON/OFF bursty, drifting
// hot-spot, collective phases, or replay of a "cycle src dst count"
// flow trace via -trace-file. Arrival-process state rides in
// checkpoints, so -checkpoint/-resume stay bit-identical under any
// workload.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"syscall"

	"dragonfly/internal/core"
	"dragonfly/internal/fault"
	"dragonfly/internal/obs"
	"dragonfly/internal/parallel"
	"dragonfly/internal/sim"
	"dragonfly/internal/topology"
	"dragonfly/internal/traffic"
	"dragonfly/internal/workload"
)

// The exit-code contract (documented in the package comment): distinct
// non-zero codes let scripts tell a misconfiguration from a wedged
// simulation from a run that technically finished but lost most of its
// traffic to unroutable drops.
const (
	exitBadConfig  = 1
	exitStalled    = 2
	exitUnroutable = 3
	exitCanceled   = 4
)

func main() {
	var (
		algName = flag.String("alg", "UGAL-L_VCH", "routing algorithm (MIN, VAL, UGAL-L, UGAL-G, UGAL-L_VC, UGAL-L_VCH, UGAL-L_CR)")
		pattern = flag.String("pattern", "UR", "traffic pattern (UR, WC, BitComplement, Tornado, Permutation)")
		trafFam = flag.String("traffic", "", "traffic family from the registry instead of the -pattern enum: "+strings.Join(traffic.FamilyNames(), ", "))
		trafPar = flag.String("traffic-params", "", `build parameters for -traffic as "k=v,k=v" (omitted keys take the family defaults)`)
		wlFam   = flag.String("workload", "", "arrival-process family (default: bernoulli): "+strings.Join(workload.FamilyNames(), ", "))
		wlPar   = flag.String("workload-params", "", `build parameters for -workload as "k=v,k=v"`)
		wlTrace = flag.String("trace-file", "", `flow trace file for -workload trace (lines of "cycle src dst count")`)
		load    = flag.Float64("load", 0.3, "offered load in flits/cycle/terminal")
		p       = flag.Int("p", 4, "terminals per router")
		a       = flag.Int("a", 8, "routers per group")
		h       = flag.Int("h", 4, "global channels per router")
		groups  = flag.Int("g", 0, "groups (0 = maximal a*h+1)")
		family  = flag.String("topology", "", "topology family instead of the canonical dragonfly: "+strings.Join(topology.FamilyNames(), ", "))
		fparams = flag.String("topo-params", "", `build parameters for -topology as "k=v,k=v" (omitted keys take the family defaults; exclusive with -p/-a/-h/-g)`)
		buf     = flag.Int("buf", 16, "input buffer depth per VC (flits)")
		warmup  = flag.Int("warmup", 3000, "warm-up cycles")
		measure = flag.Int("measure", 2000, "measurement cycles")
		drain   = flag.Int("drain", 20000, "drain cycle cap")
		seed    = flag.Uint64("seed", 1, "random seed")
		hist    = flag.Bool("hist", false, "print the latency histogram")
		sweep   = flag.String("sweep", "", "run a load sweep from:to:step (e.g. 0.1:0.9:0.1) instead of a single load")
		jobs    = flag.Int("jobs", 0, "concurrent simulations for -sweep (0 = GOMAXPROCS)")
		shards  = flag.Int("shards", 0, "engine shards per simulation, clamped to the group count; results are bit-identical for every value (0 = serial)")

		checkpoint      = flag.String("checkpoint", "", "write a resumable checkpoint to this file every -checkpoint-every cycles (atomically replaced; single runs only)")
		checkpointEvery = flag.Int64("checkpoint-every", 5000, "cycles between -checkpoint snapshots")
		resume          = flag.String("resume", "", "resume a killed run from a -checkpoint file instead of starting at cycle 0")

		jsonOut   = flag.Bool("json", false, "emit one versioned JSON report instead of text output")
		window    = flag.Int64("window", 0, "with -json: collect a windowed time series, W cycles per window")
		trace     = flag.Int("trace", 0, "with -json: sample ~1/N packets into per-hop trace records")
		traceBuf  = flag.Int("trace-buf", 0, "trace ring capacity in hop records (0 = 4096)")
		traceSeed = flag.Uint64("trace-seed", 0, "seed selecting which packets -trace samples")

		failGlobal    = flag.Float64("fail-global", 0, "fail random global channels: a fraction if < 1, a count if >= 1")
		failRouters   = flag.String("fail-routers", "", "fail whole routers: comma-separated router ids")
		failSeed      = flag.Uint64("fail-seed", 1, "seed for the random fault draws")
		faultTimeline = flag.String("fault-timeline", "", `transient fault schedule: ";"-separated "@CYCLE fail|recover ARGS" events (e.g. "@2000 fail global=0.25; @8000 recover all"); random draws use -fail-seed; exclusive with -fail-global/-fail-routers`)

		cpuProfile = flag.String("cpuprofile", "", "write a CPU profile to this file (go tool pprof)")
		memProfile = flag.String("memprofile", "", "write a heap profile to this file on exit")
	)
	flag.Parse()

	// Writes to a closed stdout pipe (head, a dying consumer) must
	// surface as EPIPE from the JSON encoder — routed to the exit-code-1
	// path with diagnostics — not kill the process via SIGPIPE with the
	// report half-written and no error reported.
	signal.Ignore(syscall.SIGPIPE)

	// SIGINT/SIGTERM cancel the run's context instead of killing the
	// process: the engine stops at its next cycle-batch checkpoint and
	// the canceled-run path (exit code 4) reports how far it got. A
	// second signal kills hard, via NotifyContext's restore-on-stop.
	ctx, stopSignals := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stopSignals()

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal(err)
		}
		defer pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fatal(err)
			}
			defer f.Close()
			runtime.GC() // settle the heap so the profile shows live data
			if err := pprof.Lookup("allocs").WriteTo(f, 0); err != nil {
				fatal(err)
			}
		}()
	}

	// In JSON mode stdout carries exactly one JSON document, so the
	// informational prints (fault plans, timeline epochs) move to stderr.
	info := io.Writer(os.Stdout)
	if *jsonOut {
		info = os.Stderr
	}
	if (*window != 0 || *trace != 0) && !*jsonOut {
		fatal(fmt.Errorf("-window/-trace produce report fields: add -json"))
	}
	if (*window != 0 || *trace != 0) && *sweep != "" {
		fatal(fmt.Errorf("-window/-trace apply to a single run, not -sweep"))
	}
	if *window < 0 || *trace < 0 || *traceBuf < 0 {
		fatal(fmt.Errorf("-window/-trace/-trace-buf want non-negative values"))
	}
	if (*checkpoint != "" || *resume != "") && *sweep != "" {
		fatal(fmt.Errorf("-checkpoint/-resume apply to a single run, not -sweep"))
	}
	if (*checkpoint != "" || *resume != "") && (*window != 0 || *trace != 0) {
		fatal(fmt.Errorf("-checkpoint/-resume cannot be combined with -window/-trace (collector state is not part of a snapshot)"))
	}
	if *checkpoint != "" && *checkpointEvery <= 0 {
		fatal(fmt.Errorf("-checkpoint-every %d: want a positive cycle interval", *checkpointEvery))
	}

	alg, err := core.ParseAlgorithm(*algName)
	if err != nil {
		fatal(err)
	}
	wl, disp, err := buildWorkload(*pattern, *trafFam, *trafPar, *wlFam, *wlPar, *wlTrace)
	if err != nil {
		fatal(err)
	}
	scfg := core.SystemConfig{
		P: *p, A: *a, H: *h, Groups: *groups, BufDepth: *buf, Seed: *seed,
		Shards: *shards,
	}
	if *family != "" {
		flag.Visit(func(f *flag.Flag) {
			switch f.Name {
			case "p", "a", "h", "g":
				fatal(fmt.Errorf("-topology %s takes its parameters from -topo-params, not -%s", *family, f.Name))
			}
		})
		params, err := parseTopoParams(*fparams)
		if err != nil {
			fatal(err)
		}
		scfg.Topology, scfg.TopoParams = *family, params
		scfg.P, scfg.A, scfg.H, scfg.Groups = 0, 0, 0, 0
	} else if *fparams != "" {
		fatal(fmt.Errorf("-topo-params needs -topology"))
	}
	sys, err := core.NewSystem(scfg)
	if err != nil {
		fatal(err)
	}
	sys, err = applyFaults(info, sys, *failGlobal, *failRouters, *failSeed)
	if err != nil {
		fatal(err)
	}
	sys, err = applyTimeline(info, sys, *faultTimeline, *failGlobal, *failRouters, *failSeed)
	if err != nil {
		fatal(err)
	}
	if *wlTrace != "" {
		data, err := os.ReadFile(*wlTrace)
		if err != nil {
			fatal(fmt.Errorf("-trace-file: %w", err))
		}
		tr, err := workload.ParseTrace(data, sys.Topo.Nodes())
		if err != nil {
			fatal(fmt.Errorf("-trace-file %s: %w", *wlTrace, err))
		}
		fmt.Fprintf(info, "trace %s: %d flows over %d terminals (content hash %016x)\n",
			*wlTrace, tr.Flows(), tr.Terminals(), tr.Hash())
		wl.Trace = tr
	}

	rc := sim.RunConfig{
		WarmupCycles:  *warmup,
		MeasureCycles: *measure,
		DrainCycles:   *drain,
		Histogram:     *hist,
	}

	if *sweep != "" {
		runSweep(ctx, sys, alg, wl, disp, *sweep, *jobs, rc, *jsonOut, *seed)
		return
	}

	// The observability collectors attach through run options and watch
	// the whole run, warm-up and drain included — a time series that
	// starts at the measurement phase would hide the ramp.
	opts := []core.RunOption{core.WithContext(ctx)}
	var win *obs.Windows
	var tr *obs.Tracer
	if *window > 0 {
		probe, err := sys.NewNetworkFor(alg, wl)
		if err != nil {
			fatal(err)
		}
		win = obs.NewWindows(obs.WindowsConfig{
			Width:       *window,
			Terminals:   sys.Topo.Nodes(),
			LinkClasses: obs.LinkClasses(probe),
		})
		opts = append(opts, core.WithCollector(win))
	}
	if *trace > 0 {
		tr = obs.NewTracer(*trace, *traceSeed, *traceBuf)
		opts = append(opts, core.WithTrace(tr))
	}
	if *checkpoint != "" {
		opts = append(opts, core.WithCheckpoint(*checkpointEvery, func(snap []byte) error {
			return writeFileAtomic(*checkpoint, snap)
		}))
	}
	if *resume != "" {
		snap, err := os.ReadFile(*resume)
		if err != nil {
			fatal(fmt.Errorf("-resume: %w", err))
		}
		opts = append(opts, core.WithResume(snap))
	}

	if !*jsonOut {
		fmt.Printf("simulating %v, %s routing, %s traffic, load %.3f\n", sys.Topo, alg, disp, *load)
	}
	res, err := sys.RunW(alg, wl, *load, rc, opts...)
	if err != nil {
		fatalRun(err)
	}

	if *jsonOut {
		rep := obs.NewReport("run")
		rep.Topology = fmt.Sprintf("%v", sys.Topo)
		rep.Algorithm = string(alg)
		rep.Pattern = string(disp)
		rep.Seed = *seed
		rep.Points = []obs.Point{{Load: *load, Result: obs.MakeResult(res)}}
		if win != nil {
			win.Flush(res.Cycles)
			rep.Windows = win.Windows()
		}
		if tr != nil {
			rep.Trace = tr.Records()
		}
		if err := writeReport(rep, os.Stdout); err != nil {
			fatal(err)
		}
		checkUnroutable(res.Dropped, res.Latency.Count())
		return
	}

	fmt.Printf("offered load:      %.3f flits/cycle/terminal\n", res.Offered)
	fmt.Printf("accepted load:     %.3f flits/cycle/terminal\n", res.Accepted)
	fmt.Printf("avg latency:       %.1f cycles (%d packets measured)\n", res.Latency.Mean(), res.Latency.Count())
	if res.MinLatency.Count() > 0 {
		fmt.Printf("  minimal pkts:    %.1f cycles (%.1f%% of traffic)\n", res.MinLatency.Mean(), 100*res.MinimalFraction)
	}
	if res.NonminLatency.Count() > 0 {
		fmt.Printf("  non-minimal:     %.1f cycles\n", res.NonminLatency.Mean())
	}
	fmt.Printf("latency p99:       %.0f cycles (max %.0f)\n", pctl(res), res.Latency.Max())
	fmt.Printf("saturated:         %v\n", res.Saturated)
	fmt.Printf("simulated cycles:  %d\n", res.Cycles)
	if sys.Timeline() != nil {
		fmt.Printf("killed in flight:  %d packets (on channels severed by the timeline)\n", res.KilledInFlight)
		fmt.Printf("rerouted:          %d packets (rescued off failing routers)\n", res.Rerouted)
		fmt.Printf("dropped packets:   %d (unroutable during degraded epochs)\n", res.Dropped)
	} else if sys.Degraded() != nil {
		fmt.Printf("dropped packets:   %d (unroutable under the fault plan)\n", res.Dropped)
	}
	if *hist && res.Hist != nil {
		fmt.Println("\nlatency histogram:")
		buckets := res.Hist.Buckets()
		for i, c := range buckets {
			if c == 0 {
				continue
			}
			fmt.Printf("  %4d-%-4d %7d %s\n",
				int64(i)*res.Hist.Width, (int64(i)+1)*res.Hist.Width-1, c, bar(res.Hist.Fraction(i)))
		}
	}
	checkUnroutable(res.Dropped, res.Latency.Count())
}

// applyTimeline parses the -fault-timeline spec, compiles it against
// the system's topology and attaches it. Exclusive with the static
// -fail-* flags: standing faults belong in the timeline's @0 events.
// Informational lines go to info (stderr in JSON mode).
func applyTimeline(info io.Writer, sys *core.System, spec string, failGlobal float64, failRouters string, failSeed uint64) (*core.System, error) {
	if spec == "" {
		return sys, nil
	}
	if failGlobal != 0 || failRouters != "" {
		return nil, fmt.Errorf("-fault-timeline cannot be combined with -fail-global/-fail-routers (schedule standing faults at @0 instead)")
	}
	tl, err := fault.ParseTimeline(spec, failSeed)
	if err != nil {
		return nil, err
	}
	sched, err := tl.Compile(sys.Topo)
	if err != nil {
		return nil, err
	}
	tsys, err := sys.WithTimeline(sched)
	if err != nil {
		return nil, err
	}
	fmt.Fprintf(info, "fault timeline (seed %d): %d events compiled to %d epochs\n",
		failSeed, tl.Events(), len(sched.Epochs))
	for _, e := range sched.Epochs {
		r, g, l, tm := e.View.FaultCounts()
		fmt.Fprintf(info, "  @%-8d %d routers, %d global, %d local, %d terminal channels down; connected=%v\n",
			e.Start, r, g, l, tm, e.View.Connected())
	}
	return tsys, nil
}

// applyFaults builds a fault plan from the -fail-* flags and attaches it
// to the system. With no fault flags set the system is returned
// unchanged (pristine fast paths, bit-identical to earlier versions).
// Informational lines go to info (stderr in JSON mode).
func applyFaults(info io.Writer, sys *core.System, failGlobal float64, failRouters string, failSeed uint64) (*core.System, error) {
	if failGlobal == 0 && failRouters == "" {
		return sys, nil
	}
	if failGlobal < 0 {
		return nil, fmt.Errorf("-fail-global %g: want a fraction in [0,1) or a count >= 1", failGlobal)
	}
	plan := fault.NewPlan(failSeed)
	if failRouters != "" {
		for _, f := range strings.Split(failRouters, ",") {
			id, err := strconv.Atoi(strings.TrimSpace(f))
			if err != nil {
				return nil, fmt.Errorf("-fail-routers: bad router id %q: %w", f, err)
			}
			if id < 0 || id >= sys.Topo.Routers() {
				return nil, fmt.Errorf("-fail-routers: router %d out of range [0,%d)", id, sys.Topo.Routers())
			}
			plan.FailRouter(id)
		}
	}
	if failGlobal >= 1 {
		want := int(failGlobal + 0.5)
		got := plan.FailRandomChannels(sys.Topo, topology.ClassGlobal, want)
		if got < want {
			return nil, fmt.Errorf("-fail-global %d: only %d live global channels to fail", want, got)
		}
	} else if failGlobal > 0 {
		plan.FailFraction(sys.Topo, topology.ClassGlobal, failGlobal)
	}
	fsys := sys.WithFaults(plan)
	deg := fsys.Degraded()
	r, g, l, tm := deg.FaultCounts()
	fmt.Fprintf(info, "fault plan (seed %d): %d routers, %d global, %d local, %d terminal channels down; connected=%v, %d/%d terminals alive\n",
		failSeed, r, g, l, tm, deg.Connected(), deg.AliveTerminals(), sys.Topo.Nodes())
	return fsys, nil
}

// runSweep runs a latency-load curve on a worker pool and prints it as
// an aligned table (or one JSON report), stopping two points after
// saturation like the paper's plots.
func runSweep(ctx context.Context, sys *core.System, alg core.Algorithm, wl core.Workload, disp core.Pattern, spec string, jobs int, rc sim.RunConfig, jsonOut bool, seed uint64) {
	loads, err := parseSweep(spec)
	if err != nil {
		fatal(err)
	}
	pool := parallel.New(jobs)
	pool.SetLog(os.Stderr)
	if !jsonOut {
		fmt.Printf("sweeping %v, %s routing, %s traffic: %d load points on %d workers\n",
			sys.Topo, alg, disp, len(loads), pool.Jobs())
	}
	pts, err := sys.SweepPoolW(pool, alg, wl, loads, rc, 2, core.WithContext(ctx))
	if err != nil {
		fatalRun(err)
	}
	if jsonOut {
		rep := obs.NewReport("sweep")
		rep.Topology = fmt.Sprintf("%v", sys.Topo)
		rep.Algorithm = string(alg)
		rep.Pattern = string(disp)
		rep.Seed = seed
		var dropped, delivered int64
		for _, p := range pts {
			rep.Points = append(rep.Points, obs.Point{Load: p.Load, Result: obs.MakeResult(p.Result)})
			dropped += p.Result.Dropped
			delivered += p.Result.Latency.Count()
		}
		if err := writeReport(rep, os.Stdout); err != nil {
			fatal(err)
		}
		checkUnroutable(dropped, delivered)
		return
	}
	timeline := sys.Timeline() != nil
	degraded := sys.Degraded() != nil || timeline
	switch {
	case timeline:
		fmt.Printf("%-10s %12s %12s %10s %10s %10s\n", "load", "latency", "accepted", "saturated", "dropped", "killed")
	case degraded:
		fmt.Printf("%-10s %12s %12s %10s %10s\n", "load", "latency", "accepted", "saturated", "dropped")
	default:
		fmt.Printf("%-10s %12s %12s %10s\n", "load", "latency", "accepted", "saturated")
	}
	var dropped, delivered int64
	for _, p := range pts {
		dropped += p.Result.Dropped
		delivered += p.Result.Latency.Count()
		mark := ""
		if p.Result.Saturated {
			mark = " *"
		}
		switch {
		case timeline:
			fmt.Printf("%-10.3f %12.1f %12.3f %10v %10d %10d%s\n",
				p.Load, p.Result.Latency.Mean(), p.Result.Accepted, p.Result.Saturated, p.Result.Dropped, p.Result.KilledInFlight, mark)
		case degraded:
			fmt.Printf("%-10.3f %12.1f %12.3f %10v %10d%s\n",
				p.Load, p.Result.Latency.Mean(), p.Result.Accepted, p.Result.Saturated, p.Result.Dropped, mark)
		default:
			fmt.Printf("%-10.3f %12.1f %12.3f %10v%s\n",
				p.Load, p.Result.Latency.Mean(), p.Result.Accepted, p.Result.Saturated, mark)
		}
	}
	checkUnroutable(dropped, delivered)
}

// buildWorkload resolves the traffic/workload flags into the Workload
// the run executes and the pattern string shown in reports. The legacy
// -pattern enum path maps through core.PatternWorkload (bit-identical
// results); -traffic selects a registry family directly and excludes an
// explicit -pattern. The trace itself is parsed later, once the system
// (and with it the terminal count) exists.
func buildWorkload(pattern, trafFam, trafPar, wlFam, wlPar, traceFile string) (core.Workload, core.Pattern, error) {
	var wl core.Workload
	var disp core.Pattern
	if trafFam != "" {
		var clash error
		flag.Visit(func(f *flag.Flag) {
			if f.Name == "pattern" {
				clash = fmt.Errorf("-traffic %s replaces -pattern; set one, not both", trafFam)
			}
		})
		if clash != nil {
			return wl, disp, clash
		}
		params, err := parseParams("-traffic-params", trafPar)
		if err != nil {
			return wl, disp, err
		}
		wl.Traffic, wl.TrafficParams = trafFam, params
	} else {
		if trafPar != "" {
			return wl, disp, fmt.Errorf("-traffic-params needs -traffic")
		}
		pat, err := core.ParsePattern(pattern)
		if err != nil {
			return wl, disp, err
		}
		wl = core.PatternWorkload(pat)
	}
	if wlFam != "" {
		params, err := parseParams("-workload-params", wlPar)
		if err != nil {
			return wl, disp, err
		}
		wl.Source, wl.SourceParams = wlFam, params
	} else if wlPar != "" {
		return wl, disp, fmt.Errorf("-workload-params needs -workload")
	}
	isTrace := strings.EqualFold(wlFam, "trace")
	if traceFile != "" && !isTrace {
		return wl, disp, fmt.Errorf("-trace-file needs -workload trace")
	}
	if isTrace && traceFile == "" {
		return wl, disp, fmt.Errorf("-workload trace needs -trace-file")
	}
	if trafFam != "" || wlFam != "" {
		disp = core.Pattern(wl.Label())
	} else {
		disp = core.Pattern(pattern)
	}
	return wl, disp, nil
}

// parseTopoParams parses the -topo-params "k=v,k=v" list into the
// parameter map topology.Build consumes (key validation happens there,
// against the family's schema).
func parseTopoParams(spec string) (map[string]int, error) {
	return parseParams("-topo-params", spec)
}

// parseParams parses a "k=v,k=v" flag value into a parameter map (key
// validation happens in the registries, against the family's schema).
func parseParams(flagName, spec string) (map[string]int, error) {
	params := map[string]int{}
	if spec == "" {
		return params, nil
	}
	for _, kv := range strings.Split(spec, ",") {
		k, v, ok := strings.Cut(strings.TrimSpace(kv), "=")
		if !ok {
			return nil, fmt.Errorf("%s: %q is not k=v", flagName, kv)
		}
		n, err := strconv.Atoi(strings.TrimSpace(v))
		if err != nil {
			return nil, fmt.Errorf("%s: bad value in %q: %w", flagName, kv, err)
		}
		params[strings.TrimSpace(k)] = n
	}
	return params, nil
}

// parseSweep parses a from:to:step load range.
func parseSweep(spec string) ([]float64, error) {
	parts := strings.Split(spec, ":")
	if len(parts) != 3 {
		return nil, fmt.Errorf("-sweep wants from:to:step, got %q", spec)
	}
	var from, to, step float64
	for i, dst := range []*float64{&from, &to, &step} {
		if _, err := fmt.Sscanf(parts[i], "%g", dst); err != nil {
			return nil, fmt.Errorf("bad -sweep component %q: %w", parts[i], err)
		}
	}
	if step <= 0 || to < from {
		return nil, fmt.Errorf("-sweep range %q is empty (want from <= to, step > 0)", spec)
	}
	var loads []float64
	for x := from; x <= to+1e-9; x += step {
		loads = append(loads, float64(int(x*1000+0.5))/1000)
	}
	return loads, nil
}

func pctl(res sim.Result) float64 {
	if res.Hist != nil {
		return float64(res.Hist.Percentile(0.99))
	}
	return res.Latency.Max()
}

func bar(frac float64) string {
	n := int(frac * 200)
	if n > 60 {
		n = 60
	}
	out := make([]byte, n)
	for i := range out {
		out[i] = '#'
	}
	return string(out)
}

// writeReport emits the JSON report to w, wrapping any encode or write
// failure with enough context to tell it apart from a configuration
// error. The caller routes the error to the exit-code-1 path; by then
// part of the document may already be on the stream, so the consumer
// must treat a non-zero exit as "discard the output" — which is why the
// diagnostics go to stderr, never into the (possibly truncated) report.
func writeReport(rep *obs.Report, w io.Writer) error {
	if err := rep.Write(w); err != nil {
		return fmt.Errorf("writing JSON report: %w", err)
	}
	return nil
}

// fatal reports a configuration-level failure (bad flags, bad
// topology/run parameters) and exits with the bad-config status.
// writeFileAtomic replaces path with data via a temp file in the same
// directory, fsync'd before the rename, so a -checkpoint file is always
// a complete snapshot from some cycle — never a torn write — even if
// the process dies mid-checkpoint.
func writeFileAtomic(path string, data []byte) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(data); err == nil {
		err = tmp.Sync()
	}
	if err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "dfly-sim:", err)
	os.Exit(exitBadConfig)
}

// fatalRun reports a failed simulation run. A SIGINT/SIGTERM
// cancellation gets the canceled exit status with partial diagnostics
// (phase, cycle reached, packets abandoned in flight) on stderr; a
// deadlock-detector stall gets its own exit status plus a diagnostics
// dump (cycle, phase, active fault epoch, hottest input-buffer VCs) so
// a wedged run can be debugged from the output alone; everything else
// is a plain fatal.
func fatalRun(err error) {
	if errors.Is(err, sim.ErrCanceled) || errors.Is(err, context.Canceled) {
		fmt.Fprintln(os.Stderr, "dfly-sim: interrupted:", err)
		var ce *sim.CanceledError
		if errors.As(err, &ce) {
			fmt.Fprintf(os.Stderr, "partial run diagnostics:\n  stopped in the %s phase at cycle %d, %d packets abandoned in flight\n",
				ce.Phase, ce.Cycle, ce.InFlight)
		}
		os.Exit(exitCanceled)
	}
	var se *sim.StallError
	if !errors.As(err, &se) {
		fatal(err)
	}
	fmt.Fprintln(os.Stderr, "dfly-sim:", err)
	fmt.Fprintln(os.Stderr, "stall diagnostics:")
	fmt.Fprintf(os.Stderr, "  cycle %d (%s phase): no flit moved for %d cycles, %d packets in flight\n",
		se.Cycle, se.Phase, se.StallLimit, se.InFlight)
	fmt.Fprintf(os.Stderr, "  epoch %d: %d routers, %d global / %d local / %d terminal channels dead\n",
		se.Epoch, se.DeadRouters, se.DeadGlobal, se.DeadLocal, se.DeadTerminal)
	for _, h := range se.Hot {
		fmt.Fprintf(os.Stderr, "  router %d port %d vc %d: %d flits buffered, %d packets waiting on the port\n",
			h.Router, h.Port, h.VC, h.Occupancy, h.Waiting)
	}
	os.Exit(exitStalled)
}

// checkUnroutable exits with the unroutable status when a completed
// run (or sweep) dropped at least as many packets as it delivered —
// the topology is so degraded that the results measure packet loss,
// not network performance.
func checkUnroutable(dropped, delivered int64) {
	if dropped == 0 || dropped < delivered {
		return
	}
	fmt.Fprintf(os.Stderr, "dfly-sim: unroutable drops dominate: %d packets dropped vs %d delivered\n",
		dropped, delivered)
	os.Exit(exitUnroutable)
}
