package main

import (
	"errors"
	"strings"
	"testing"

	"dragonfly/internal/obs"
)

// brokenWriter fails after accepting n bytes, like a pipe whose reader
// went away mid-document.
type brokenWriter struct {
	n   int
	err error
}

func (w *brokenWriter) Write(p []byte) (int, error) {
	if len(p) > w.n {
		n := w.n
		w.n = 0
		return n, w.err
	}
	w.n -= len(p)
	return len(p), nil
}

func TestWriteReportPropagatesWriteErrors(t *testing.T) {
	rep := obs.NewReport("run")
	rep.Topology = "test"
	rep.Points = []obs.Point{{Load: 0.3}}

	sentinel := errors.New("broken pipe")
	err := writeReport(rep, &brokenWriter{n: 10, err: sentinel})
	if err == nil {
		t.Fatal("writeReport on a failing writer returned nil; a closed pipe would exit 0")
	}
	if !errors.Is(err, sentinel) {
		t.Errorf("writeReport error %v does not wrap the writer's error", err)
	}
	if !strings.Contains(err.Error(), "JSON report") {
		t.Errorf("writeReport error %q lacks report context", err)
	}
}

func TestWriteReportSucceeds(t *testing.T) {
	rep := obs.NewReport("run")
	var sb strings.Builder
	if err := writeReport(rep, &sb); err != nil {
		t.Fatalf("writeReport: %v", err)
	}
	if !strings.Contains(sb.String(), "schema_version") {
		t.Errorf("report output missing schema_version: %q", sb.String())
	}
}

func TestParseSweep(t *testing.T) {
	loads, err := parseSweep("0.1:0.3:0.1")
	if err != nil {
		t.Fatalf("parseSweep: %v", err)
	}
	want := []float64{0.1, 0.2, 0.3}
	if len(loads) != len(want) {
		t.Fatalf("parseSweep = %v, want %v", loads, want)
	}
	for i := range want {
		if loads[i] != want[i] {
			t.Errorf("loads[%d] = %g, want %g", i, loads[i], want[i])
		}
	}
	if _, err := parseSweep("0.5:0.1:0.1"); err == nil {
		t.Error("parseSweep accepted an empty range")
	}
}
