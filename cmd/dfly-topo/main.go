// dfly-topo builds a dragonfly (or its Figure 6(b) variant) and prints
// its structure: parameters, channel inventory, diameter, and optionally
// a Graphviz DOT rendering or the full wiring table.
//
//	dfly-topo -p 2 -a 4 -h 2            # the paper's 72-node example
//	dfly-topo -p 2 -dims 2,2,2 -h 2     # the Figure 6(b) variant
//	dfly-topo -p 2 -a 4 -h 2 -dot       # DOT on stdout
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"dragonfly/internal/topology"
)

func main() {
	var (
		p      = flag.Int("p", 2, "terminals per router")
		a      = flag.Int("a", 4, "routers per group (fully connected group)")
		h      = flag.Int("h", 2, "global channels per router")
		groups = flag.Int("g", 0, "groups (0 = maximal a*h+1)")
		dims   = flag.String("dims", "", "comma-separated intra-group flattened-butterfly dimensions (Figure 6(b) variant; overrides -a)")
		dot    = flag.Bool("dot", false, "emit Graphviz DOT instead of the summary")
		wiring = flag.Bool("wiring", false, "dump the global-channel wiring table")
	)
	flag.Parse()

	var (
		g     *topology.Graph
		name  string
		descr string
	)
	if *dims != "" {
		var dd []int
		for _, s := range strings.Split(*dims, ",") {
			v, err := strconv.Atoi(strings.TrimSpace(s))
			if err != nil {
				fatal(fmt.Errorf("bad -dims: %w", err))
			}
			dd = append(dd, v)
		}
		d, err := topology.NewDragonflyFB(*p, dd, *h, *groups)
		if err != nil {
			fatal(err)
		}
		g, name, descr = d.Graph, "dragonflyFB", d.String()
		if *wiring {
			dumpWiring(d.G, d.A**h, d.SlotTarget)
		}
	} else {
		d, err := topology.NewDragonfly(*p, *a, *h, *groups)
		if err != nil {
			fatal(err)
		}
		g, name, descr = d.Graph, "dragonfly", d.String()
		if *wiring {
			dumpWiring(d.G, d.A*d.H, d.SlotTarget)
		}
	}

	if *dot {
		if err := g.WriteDOT(os.Stdout, name); err != nil {
			fatal(err)
		}
		return
	}
	fmt.Println(descr)
	fmt.Println(g.Summary())
	diam, err := g.Diameter()
	if err != nil {
		fatal(err)
	}
	avg, err := g.AverageHops()
	if err != nil {
		fatal(err)
	}
	fmt.Printf("diameter: %d hops, average: %.2f hops (router-to-router)\n", diam, avg)
}

func dumpWiring(groups, slots int, target func(grp, c int) int) {
	fmt.Println("global wiring (group: slot->group ...):")
	for grp := 0; grp < groups; grp++ {
		fmt.Printf("  g%-3d:", grp)
		for c := 0; c < slots; c++ {
			fmt.Printf(" %d", target(grp, c))
		}
		fmt.Println()
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "dfly-topo:", err)
	os.Exit(1)
}
