// Package dragonfly is a from-scratch reproduction of "Technology-Driven,
// Highly-Scalable Dragonfly Topology" (Kim, Dally, Scott, Abts — ISCA
// 2008): the dragonfly topology, its routing algorithms (MIN, VAL and
// the UGAL family including the paper's virtual-channel-discriminating
// and credit-round-trip variants), a cycle-accurate flit-level network
// simulator, the paper's synthetic traffic patterns, and the
// cable/packaging cost models behind its topology comparisons.
//
// The root package only anchors the module documentation and the
// benchmark harness (bench_test.go), which regenerates every table and
// figure of the paper's evaluation; the implementation lives under
// internal/ (see DESIGN.md for the map) and is exercised through the
// examples/ programs and cmd/ tools.
package dragonfly
