// Adversarial traffic: the pattern of Section 4.2 sends every node of
// group G_i to a random node of group G_i+1, so minimal routing funnels
// each group's entire load through one global channel and collapses to
// 1/(a*h) throughput. Valiant routing halves capacity but survives;
// global adaptive routing gets the best of both. This example reproduces
// that story on the paper's 1K-node evaluation network.
package main

import (
	"fmt"
	"log"

	"dragonfly/internal/core"
	"dragonfly/internal/sim"
	"dragonfly/internal/topology"
)

func main() {
	sys, err := core.NewSystem(core.SystemConfig{}) // paper default: p=h=4, a=8, N=1056
	if err != nil {
		log.Fatal(err)
	}
	d := sys.Topo.(*topology.Dragonfly) // default config: canonical dragonfly
	fmt.Println("network:", d)
	fmt.Printf("worst-case pattern: group i -> random node of group i+1\n")
	fmt.Printf("minimal-routing bound: 1/(a*h) = %.4f flits/cycle/terminal\n\n", 1/float64(d.A*d.H))

	rc := sim.RunConfig{WarmupCycles: 2000, MeasureCycles: 1000, DrainCycles: 8000}
	fmt.Printf("%-12s %-8s %-10s %-10s %s\n", "algorithm", "load", "accepted", "latency", "saturated")
	for _, alg := range []core.Algorithm{core.AlgMIN, core.AlgVAL, core.AlgUGALG, core.AlgUGALLVCH} {
		for _, load := range []float64{0.1, 0.3, 0.45} {
			res, err := sys.Run(alg, core.PatternWC, load, rc)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("%-12s %-8.2f %-10.3f %-10.1f %v\n",
				alg, load, res.Accepted, res.Latency.Mean(), res.Saturated)
		}
	}
	fmt.Println("\nexpected: MIN caps at 0.031; VAL and the UGALs sustain up to ~0.5;")
	fmt.Println("adaptive routing matches VAL's worst-case without giving up MIN's best case.")
}
