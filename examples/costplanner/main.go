// Cost planner: size an interconnect for a target node count and compare
// the dragonfly against the paper's alternatives (flattened butterfly,
// folded Clos, 3-D torus) using the Section 2 technology model —
// electrical cables for short runs, active optical cables beyond 8 m.
package main

import (
	"flag"
	"fmt"
	"log"

	"dragonfly/internal/cost"
	"dragonfly/internal/topology"
)

func main() {
	n := flag.Int("n", 16384, "target number of nodes")
	flag.Parse()

	m := cost.DefaultModel()
	fmt.Printf("machine size: %d nodes, cabinets of %d nodes, %.1fm pitch\n",
		*n, m.Layout.NodesPerCabinet, m.Layout.CabinetPitchM)
	fmt.Printf("floor dimension E = %.1fm; optical cables beyond %.0fm\n\n",
		m.Layout.MachineDimensionM(*n), cost.OpticalThresholdM)

	type gen struct {
		name string
		fn   func(int) (cost.Breakdown, error)
	}
	var dragonfly cost.Breakdown
	for _, g := range []gen{
		{"dragonfly", m.Dragonfly},
		{"flattened butterfly", m.FlattenedButterfly},
		{"folded Clos", m.FoldedClos},
		{"3-D torus", m.Torus3D},
	} {
		b, err := g.fn(*n)
		if err != nil {
			log.Fatalf("%s: %v", g.name, err)
		}
		if g.name == "dragonfly" {
			dragonfly = b
		}
		fmt.Printf("%-20s $%7.2f/node", g.name, b.PerNode())
		if g.name != "dragonfly" && dragonfly.PerNode() > 0 {
			fmt.Printf("  (dragonfly saves %.0f%%)", 100*(1-dragonfly.PerNode()/b.PerNode()))
		}
		fmt.Printf("\n  %d routers (radix %d), %d local + %d global cables (avg global %.1fm)\n",
			b.Routers, b.RouterRadix, b.LocalChannels, b.GlobalChannels, b.AvgGlobalLenM)
	}

	// What would the machine need without grouping? (Figure 1's point.)
	fmt.Printf("\nwithout virtual-router grouping, one global hop would need radix %d routers;\n",
		topology.FlatNetworkRadix(*n))
	fmt.Printf("the balanced dragonfly does it with radix %d.\n", topology.BalancedRadixForNodes(*n))
}
