// Indirect adaptive routing: the dragonfly's hard problem (Section 4.3).
// The channels that need balancing are the group's global channels, but
// the router making the UGAL decision usually is not the one that owns
// them — it only sees them indirectly, through backpressure. This example
// shows the two resulting pathologies and the paper's two fixes:
//
//  1. UGAL-L starves the non-minimal channels that share a router with
//     the congested minimal channel (throughput loss), fixed by
//     VC-discriminated queues (UGAL-L_VCH);
//  2. minimally-routed packets must fill the buffer chain before the
//     congestion is sensed (latency spike), reduced by the credit
//     round-trip latency mechanism (UGAL-L_CR).
package main

import (
	"fmt"
	"log"

	"dragonfly/internal/core"
	"dragonfly/internal/sim"
)

func main() {
	rc := sim.RunConfig{WarmupCycles: 3000, MeasureCycles: 2000, DrainCycles: 20000}

	fmt.Println("worst-case traffic at load 0.30 on the 1K-node network")
	fmt.Printf("%-12s %-10s %-14s %-14s %s\n", "algorithm", "accepted", "avg latency", "minimal pkts", "minimal share")
	for _, alg := range []core.Algorithm{core.AlgUGALL, core.AlgUGALLVC, core.AlgUGALLVCH, core.AlgUGALLCR, core.AlgUGALG} {
		sys, err := core.NewSystem(core.SystemConfig{})
		if err != nil {
			log.Fatal(err)
		}
		res, err := sys.Run(alg, core.PatternWC, 0.3, rc)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-12s %-10.3f %-14.1f %-14.1f %.1f%%\n",
			alg, res.Accepted, res.Latency.Mean(), res.MinLatency.Mean(), 100*res.MinimalFraction)
	}

	fmt.Println("\nreading the table:")
	fmt.Println("- UGAL-L's minimal packets pay hundreds of cycles: they are 'sacrificed'")
	fmt.Println("  to fill the buffers between source and the congested global channel")
	fmt.Println("  before the congestion becomes visible in local queues.")
	fmt.Println("- UGAL-L_VC/VCH separate minimal and non-minimal occupancy by virtual")
	fmt.Println("  channel, restoring throughput and most of the latency.")
	fmt.Println("- UGAL-L_CR senses congestion through credit round-trip latency and")
	fmt.Println("  delays returning credits, cutting the minimal-packet latency further")
	fmt.Println("  (and independently of buffer depth).")
	fmt.Println("- UGAL-G is the unimplementable oracle both fixes chase.")
}
