// Quickstart: build the paper's example dragonfly (Figure 5: p=h=2, a=4,
// 72 terminals, radix-7 routers acting as a virtual radix-16 router),
// inspect its structure, and run a short simulation with adaptive
// routing under uniform random traffic.
package main

import (
	"fmt"
	"log"

	"dragonfly/internal/core"
	"dragonfly/internal/sim"
	"dragonfly/internal/topology"
)

func main() {
	// A System bundles a dragonfly topology with simulation defaults.
	sys, err := core.NewSystem(core.SystemConfig{P: 2, A: 4, H: 2})
	if err != nil {
		log.Fatal(err)
	}
	d := sys.Topo.(*topology.Dragonfly) // P/A/H config: canonical dragonfly
	fmt.Println("topology:", d)
	fmt.Printf("  groups: %d routers of radix %d each; virtual router radix k' = %d\n",
		d.A, d.RouterRadix(), d.EffectiveRadix())
	term, local, global := d.CountChannels()
	fmt.Printf("  channels: %d terminal, %d local, %d global\n", term, local, global)
	diam, err := d.Diameter()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  diameter: %d hops (local + global + local)\n\n", diam)

	// Run adaptive routing (the hybrid VC-discriminating UGAL of
	// Section 4.3.1) under uniform random traffic at half load.
	rc := sim.RunConfig{WarmupCycles: 1000, MeasureCycles: 1000, DrainCycles: 20000}
	res, err := sys.Run(core.AlgUGALLVCH, core.PatternUR, 0.5, rc)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("UGAL-L_VCH @ load 0.5 (uniform random):\n")
	fmt.Printf("  accepted:    %.3f flits/cycle/terminal\n", res.Accepted)
	fmt.Printf("  avg latency: %.1f cycles over %d packets\n", res.Latency.Mean(), res.Latency.Count())
	fmt.Printf("  minimal:     %.1f%% of packets\n", 100*res.MinimalFraction)
}
