module dragonfly

go 1.22
