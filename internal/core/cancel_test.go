package core_test

// Cancellation determinism: interrupting a run must never perturb the
// results of any other run. Cancellation is observed at cycle-batch
// checkpoints between cycle bodies and only reads engine state, so a
// run canceled at cycle C followed by a fresh uninterrupted run
// produces exactly the golden hash of a never-canceled run — the
// property the dfly-serve cache relies on to mix canceled, timed-out
// and completed jobs in one process.

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"testing"

	"dragonfly/internal/core"
	"dragonfly/internal/metrics"
	"dragonfly/internal/sim"
)

// cancelAtCycle cancels a context once the simulation reaches a cycle.
type cancelAtCycle struct {
	metrics.Nop
	cycle  int64
	cancel context.CancelFunc
}

func (c *cancelAtCycle) CycleEnd(cycle int64) {
	if cycle >= c.cycle {
		c.cancel()
	}
}

// runHash runs one pinned scenario to completion and hashes the result
// with the golden-test encoding.
func runHash(t *testing.T, sys *core.System) string {
	t.Helper()
	res, err := sys.Run(core.AlgUGALLVCH, core.PatternWC, 0.25, goldenRC())
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	h := fnv.New64a()
	hashResult(h, "cancel-determinism", res)
	return fmt.Sprintf("%016x", h.Sum64())
}

func TestCancellationDeterminism(t *testing.T) {
	sys, err := core.NewSystem(core.SystemConfig{P: 2, A: 4, H: 2, Seed: 3})
	if err != nil {
		t.Fatalf("NewSystem: %v", err)
	}
	baseline := runHash(t, sys)

	// Cancel runs at several mid-run cycles, warm-up and measurement
	// phases both, then prove a fresh uninterrupted run still matches.
	for _, at := range []int64{100, 450, 700} {
		ctx, cancel := context.WithCancel(context.Background())
		_, err := sys.Run(core.AlgUGALLVCH, core.PatternWC, 0.25, goldenRC(),
			core.WithContext(ctx),
			core.WithCollector(&cancelAtCycle{cycle: at, cancel: cancel}))
		cancel()
		if !errors.Is(err, sim.ErrCanceled) {
			t.Fatalf("cancel at cycle %d: err = %v, want sim.ErrCanceled in the chain", at, err)
		}
		var ce *sim.CanceledError
		if !errors.As(err, &ce) {
			t.Fatalf("cancel at cycle %d: no *sim.CanceledError in %v", at, err)
		}
		if ce.Cycle < at {
			t.Errorf("cancel requested at cycle %d observed at %d (before the request)", at, ce.Cycle)
		}
		if got := runHash(t, sys); got != baseline {
			t.Errorf("after cancel at cycle %d: fresh run hash %s, want %s (cancellation mutated shared state)", at, got, baseline)
		}
	}
}

// TestSweepCancellation pins the partial-series contract: a canceled
// sweep returns the completed points plus an error wrapping
// sim.ErrCanceled, and a subsequent sweep is unaffected.
func TestSweepCancellation(t *testing.T) {
	sys, err := core.NewSystem(core.SystemConfig{P: 2, A: 4, H: 2, Seed: 1})
	if err != nil {
		t.Fatalf("NewSystem: %v", err)
	}
	loads := []float64{0.1, 0.15, 0.2, 0.25, 0.3, 0.35}
	full, err := sys.Sweep(core.AlgMIN, core.PatternUR, loads, goldenRC(), 0)
	if err != nil {
		t.Fatalf("uninterrupted sweep: %v", err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	cancel() // canceled up front: every point fails fast, no wave dispatches twice
	pts, err := sys.Sweep(core.AlgMIN, core.PatternUR, loads, goldenRC(), 0, core.WithContext(ctx))
	if err == nil {
		t.Fatal("canceled sweep returned nil error")
	}
	if !errors.Is(err, context.Canceled) {
		t.Errorf("canceled sweep error = %v, want context.Canceled in the chain", err)
	}
	if len(pts) != 0 {
		t.Errorf("pre-canceled sweep returned %d points, want 0", len(pts))
	}

	again, err := sys.Sweep(core.AlgMIN, core.PatternUR, loads, goldenRC(), 0)
	if err != nil {
		t.Fatalf("sweep after canceled sweep: %v", err)
	}
	if len(again) != len(full) {
		t.Fatalf("sweep after cancel has %d points, want %d", len(again), len(full))
	}
	for i := range full {
		if full[i].Result.Latency.Mean() != again[i].Result.Latency.Mean() ||
			full[i].Result.Accepted != again[i].Result.Accepted {
			t.Errorf("point %d diverged after a canceled sweep", i)
		}
	}
}
