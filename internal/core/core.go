// Package core is the library façade for the dragonfly system: it wires
// the topology (internal/topology), the routing algorithms
// (internal/routing), the traffic patterns (internal/traffic) and the
// cycle-accurate simulator (internal/sim) into one configurable object,
// the System. Examples, command-line tools and the experiment harness
// all build on it.
//
// A minimal session:
//
//	sys, err := core.NewSystem(core.SystemConfig{P: 4, A: 8, H: 4})
//	res, err := sys.Run(core.AlgUGALL, core.PatternWC, 0.3, sim.RunConfig{...})
package core

import (
	"fmt"

	"dragonfly/internal/fault"
	"dragonfly/internal/parallel"
	"dragonfly/internal/routing"
	"dragonfly/internal/sim"
	"dragonfly/internal/topology"
)

// Algorithm names a routing algorithm of the paper.
type Algorithm string

// The routing algorithms of Section 4.
const (
	AlgMIN      Algorithm = "MIN"
	AlgVAL      Algorithm = "VAL"
	AlgUGALL    Algorithm = "UGAL-L"
	AlgUGALG    Algorithm = "UGAL-G"
	AlgUGALLVC  Algorithm = "UGAL-L_VC"
	AlgUGALLVCH Algorithm = "UGAL-L_VCH"
	AlgUGALLCR  Algorithm = "UGAL-L_CR"
)

// Algorithms lists every supported algorithm in the paper's order.
func Algorithms() []Algorithm {
	return []Algorithm{AlgMIN, AlgVAL, AlgUGALL, AlgUGALG, AlgUGALLVC, AlgUGALLVCH, AlgUGALLCR}
}

// ParseAlgorithm resolves a name (as printed by the constants) to an
// Algorithm.
func ParseAlgorithm(s string) (Algorithm, error) {
	for _, a := range Algorithms() {
		if string(a) == s {
			return a, nil
		}
	}
	return "", fmt.Errorf("core: unknown routing algorithm %q (supported: %v)", s, Algorithms())
}

// Pattern names a traffic pattern.
type Pattern string

// The synthetic patterns used by the evaluation plus standard extras.
const (
	PatternUR            Pattern = "UR"
	PatternWC            Pattern = "WC"
	PatternBitComplement Pattern = "BitComplement"
	PatternTornado       Pattern = "Tornado"
	PatternPermutation   Pattern = "Permutation"
)

// Patterns lists the supported traffic patterns.
func Patterns() []Pattern {
	return []Pattern{PatternUR, PatternWC, PatternBitComplement, PatternTornado, PatternPermutation}
}

// ParsePattern resolves a name to a Pattern.
func ParsePattern(s string) (Pattern, error) {
	for _, p := range Patterns() {
		if string(p) == s {
			return p, nil
		}
	}
	return "", fmt.Errorf("core: unknown traffic pattern %q (supported: %v)", s, Patterns())
}

// SystemConfig describes a machine and its simulation parameters. Zero
// values take the paper's defaults.
type SystemConfig struct {
	// Topology selects a registered topology family
	// (topology.FamilyNames: "dragonfly", "dragonflyfb",
	// "dragonflyplus", "swapped", "aries"). Empty means the canonical
	// dragonfly built from the P/A/H/Groups fields below. When
	// non-empty, the machine is built from TopoParams instead and
	// P/A/H/Groups are ignored.
	Topology string
	// TopoParams are the family build parameters (omitted keys take the
	// family's schema defaults). Only consulted when Topology is set.
	TopoParams map[string]int
	// P, A, H are the canonical dragonfly parameters (terminals per
	// router, routers per group, global channels per router), used when
	// Topology is empty. Defaults: the paper's 1K evaluation network
	// p=h=4, a=8.
	P, A, H int
	// Groups is the group count; 0 means the maximal a*h+1.
	Groups int
	// BufDepth is the per-VC input buffer depth (default 16).
	BufDepth int
	// LocalLatency/GlobalLatency are channel latencies in cycles
	// (defaults 1 and 2).
	LocalLatency, GlobalLatency int
	// Seed makes simulations reproducible (default 1).
	Seed uint64
	// Shards is the engine shard count every network of this system is
	// partitioned into (see sim.Network.SetShards). 0 or 1 runs the
	// serial engine; values are clamped to the group count. Results are
	// bit-identical for every shard count; WithShards overrides per run.
	Shards int
	// Faults, when non-nil, is the fault plan (internal/fault.Plan) the
	// system simulates under: routing and the simulator consume the
	// degraded topology view instead of the pristine one. Build plans
	// against an existing system's Topo and attach them with WithFaults.
	Faults topology.FaultView
}

// System is a configured machine: topology plus simulation defaults.
type System struct {
	// Topo is the constructed topology.
	Topo topology.Machine
	cfg  SystemConfig
	deg  *topology.Degraded
	// sched is the compiled fault timeline (nil for static systems);
	// attach with WithTimeline.
	sched *fault.Schedule
}

// NewSystem validates the configuration and builds the topology.
func NewSystem(cfg SystemConfig) (*System, error) {
	if cfg.BufDepth == 0 {
		cfg.BufDepth = 16
	}
	if cfg.LocalLatency == 0 {
		cfg.LocalLatency = 1
	}
	if cfg.GlobalLatency == 0 {
		cfg.GlobalLatency = 2
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	var d topology.Machine
	var err error
	if cfg.Topology == "" {
		if cfg.P == 0 && cfg.A == 0 && cfg.H == 0 {
			cfg.P, cfg.A, cfg.H = 4, 8, 4
		}
		d, err = topology.NewDragonfly(cfg.P, cfg.A, cfg.H, cfg.Groups)
	} else {
		d, err = topology.Build(cfg.Topology, cfg.TopoParams)
	}
	if err != nil {
		return nil, err
	}
	s := &System{Topo: d, cfg: cfg}
	if cfg.Faults != nil {
		s.deg = topology.NewDegraded(d, cfg.Faults)
	}
	return s, nil
}

// WithFaults returns a system sharing this one's topology and defaults
// but simulating under fault plan fv (nil clears the faults). The usual
// flow is: build the pristine system, construct a fault.Plan against
// sys.Topo, then derive the degraded system here.
func (s *System) WithFaults(fv topology.FaultView) *System {
	ns := *s
	ns.cfg.Faults = fv
	ns.deg = nil
	if fv != nil {
		ns.deg = topology.NewDegraded(s.Topo, fv)
	}
	return &ns
}

// WithTimeline returns a system sharing this one's topology and
// defaults but simulating under the compiled fault timeline sched (nil
// clears it): every network the derived system builds starts in the
// schedule's first epoch and swaps views at the scheduled cycles. The
// usual flow is: build the pristine system, build a fault.Timeline,
// compile it against sys.Topo, and attach the schedule here. A timeline
// cannot be combined with a static fault plan — the timeline's epoch 0
// is where standing faults belong.
func (s *System) WithTimeline(sched *fault.Schedule) (*System, error) {
	ns := *s
	ns.sched = nil
	if sched == nil {
		return &ns, nil
	}
	if s.cfg.Faults != nil {
		return nil, fmt.Errorf("core: a fault timeline cannot be combined with a static fault plan (put standing faults in the timeline's cycle-0 events)")
	}
	if len(sched.Epochs) == 0 {
		return nil, fmt.Errorf("core: fault schedule has no epochs")
	}
	for i, e := range sched.Epochs {
		if e.View == nil || e.View.Machine != s.Topo {
			return nil, fmt.Errorf("core: fault schedule epoch %d was not compiled against this system's topology", i)
		}
	}
	ns.sched = sched
	return &ns, nil
}

// Timeline returns the attached fault schedule, or nil when the system
// is static.
func (s *System) Timeline() *fault.Schedule { return s.sched }

// Degraded returns the fault-aware topology view, or nil when no fault
// plan is attached.
func (s *System) Degraded() *topology.Degraded { return s.deg }

// routingTopo returns the structural view handed to the routing
// algorithms: the degraded one when a fault plan is attached.
func (s *System) routingTopo() routing.Topo {
	if s.deg != nil {
		return s.deg
	}
	return s.Topo
}

// Config returns the system configuration after defaulting.
func (s *System) Config() SystemConfig { return s.cfg }

// SimConfig returns the simulator configuration for the given algorithm
// (UGAL-L_CR switches the delayed-credit mechanism on). The VC count is
// the routing ladder's requirement or the topology's own MinVCs policy,
// whichever is larger (all current machines need exactly the ladder's 3).
func (s *System) SimConfig(alg Algorithm) sim.Config {
	vcs := routing.VCs
	if m := s.Topo.MinVCs(); m > vcs {
		vcs = m
	}
	return sim.Config{
		BufDepth:      s.cfg.BufDepth,
		VCs:           vcs,
		LocalLatency:  s.cfg.LocalLatency,
		GlobalLatency: s.cfg.GlobalLatency,
		DelayCredits:  alg == AlgUGALLCR,
		Seed:          s.cfg.Seed,
		Shards:        s.cfg.Shards,
	}
}

// Routing constructs the routing algorithm alg over this topology (the
// fault-aware view of it when a fault plan is attached).
func (s *System) Routing(alg Algorithm) (sim.Routing, error) {
	return routingOver(alg, s.routingTopo())
}

// routingOver constructs alg over an explicit structural view — the
// timeline path hands the per-network Switched view in here so routing
// liveness queries follow the epoch swaps.
func routingOver(alg Algorithm, t routing.Topo) (sim.Routing, error) {
	switch alg {
	case AlgMIN:
		return routing.NewMIN(t), nil
	case AlgVAL:
		return routing.NewVAL(t), nil
	case AlgUGALL:
		return routing.NewUGAL(t, routing.UGALLocal), nil
	case AlgUGALG:
		return routing.NewUGAL(t, routing.UGALGlobal), nil
	case AlgUGALLVC:
		return routing.NewUGAL(t, routing.UGALLocalVC), nil
	case AlgUGALLVCH:
		return routing.NewUGAL(t, routing.UGALLocalVCH), nil
	case AlgUGALLCR:
		return routing.NewUGALCR(t), nil
	default:
		return nil, fmt.Errorf("core: unknown routing algorithm %q", alg)
	}
}

// Traffic constructs the traffic pattern over this topology.
//
// Deprecated: the enum is a shim over the traffic registry — use
// TrafficFor with a Workload to reach parameterised families
// (traffic.FamilyNames). The registry builds the exact patterns this
// path built, so existing callers lose nothing by staying.
func (s *System) Traffic(p Pattern) (sim.Traffic, error) {
	return s.TrafficFor(PatternWorkload(p))
}

// NewNetwork builds a fresh simulation network for (alg, pattern); see
// NewNetworkFor for the general Workload form.
func (s *System) NewNetwork(alg Algorithm, pattern Pattern) (*sim.Network, error) {
	return s.NewNetworkFor(alg, PatternWorkload(pattern))
}

// NewNetworkFor builds a fresh simulation network for (alg, workload).
// Each load point of a sweep should use a fresh network. With a
// timeline attached, the network gets its own switchable topology view
// (epoch swaps are per-network state, so concurrent sweep points stay
// independent) and the schedule is installed before the first cycle.
// The workload's source (when one is set) is installed before the
// network is returned, so snapshots taken from it carry the source
// fingerprint and per-terminal state.
func (s *System) NewNetworkFor(alg Algorithm, w Workload) (*sim.Network, error) {
	tr, err := s.TrafficFor(w)
	if err != nil {
		return nil, err
	}
	src, err := s.SourceFor(w)
	if err != nil {
		return nil, err
	}
	if s.sched != nil {
		sw := topology.NewSwitched(s.Topo)
		sw.SetEpoch(s.sched.Epochs[0].View)
		rt, err := routingOver(alg, sw)
		if err != nil {
			return nil, err
		}
		net, err := sim.New(sw, s.SimConfig(alg), rt, tr)
		if err != nil {
			return nil, err
		}
		epochs := make([]sim.Epoch, len(s.sched.Epochs))
		for i, e := range s.sched.Epochs {
			epochs[i] = sim.Epoch{Start: e.Start, View: e.View}
		}
		if err := net.SetTimeline(epochs); err != nil {
			return nil, err
		}
		return withSource(net, src)
	}
	rt, err := s.Routing(alg)
	if err != nil {
		return nil, err
	}
	var st sim.Topology = s.Topo
	if s.deg != nil {
		st = s.deg // the simulator detects Alive and kills the dead links
	}
	net, err := sim.New(st, s.SimConfig(alg), rt, tr)
	if err != nil {
		return nil, err
	}
	return withSource(net, src)
}

// withSource installs a workload source on a freshly built network,
// leaving the engine's built-in default untouched when src is nil.
func withSource(net *sim.Network, src sim.Source) (*sim.Network, error) {
	if src == nil {
		return net, nil
	}
	if err := net.SetSource(src); err != nil {
		return nil, err
	}
	return net, nil
}

// Run builds a fresh network and executes one measured simulation at the
// given load. Trailing options attach observability (WithCollector,
// WithTrace) and progress reporting (WithProgress).
func (s *System) Run(alg Algorithm, pattern Pattern, load float64, rc sim.RunConfig, opts ...RunOption) (sim.Result, error) {
	o := applyOptions(opts)
	res, err := s.runWith(alg, PatternWorkload(pattern), load, rc, &o)
	if err != nil {
		return res, err
	}
	if o.progress != nil {
		o.progress(ProgressEvent{Algorithm: alg, Pattern: pattern, Load: load, Index: 0, Total: 1, Result: res})
	}
	return res, nil
}

// runWith is Run minus the progress callback: the piece SweepPool's
// workers execute concurrently (progress stays serial, in the fold).
func (s *System) runWith(alg Algorithm, w Workload, load float64, rc sim.RunConfig, o *runOptions) (sim.Result, error) {
	net, err := s.NewNetworkFor(alg, w)
	if err != nil {
		return sim.Result{}, err
	}
	if o.source != nil {
		// A programmatic source (WithSource) overrides the workload's
		// registry-built one — the hook composite sources like
		// workload.MultiTenant come in through.
		if err := net.SetSource(o.source); err != nil {
			return sim.Result{}, err
		}
	}
	if o.shards > 0 {
		if err := net.SetShards(o.shards); err != nil {
			return sim.Result{}, err
		}
	}
	sink := o.sink()
	if sink != nil {
		net.AttachMetrics(sink)
	}
	rc.Load = load
	rc.CheckpointEvery = o.checkpointEvery
	rc.CheckpointSink = o.checkpointSink
	var res sim.Result
	if o.resume != nil {
		// The network is complete here — shards set, timeline applied —
		// so the snapshot's fingerprint is checked against the real
		// machine, and a cross-shard resume restores into the right
		// partition.
		res, err = sim.ResumeCtx(o.context(), net, rc, o.resume)
	} else {
		res, err = sim.RunCtx(o.context(), net, rc)
	}
	if err == nil && sink != nil {
		// Close trailing partial state (obs.Windows' final short window)
		// now that the run's cycle count is final.
		flushSinks(sink, res.Cycles)
	}
	return res, err
}

// SweepPoint is one load point of a latency-load curve.
type SweepPoint struct {
	Load   float64
	Result sim.Result
}

// Sweep runs a load sweep with a fresh network per point, stopping early
// after the first saturated point beyond stopAfterSaturated consecutive
// saturations (0 disables early stopping). Load points are dispatched to
// the process-wide shared worker pool (parallel.Default, sized to
// GOMAXPROCS); use SweepPool to control the worker count.
func (s *System) Sweep(alg Algorithm, pattern Pattern, loads []float64, rc sim.RunConfig, stopAfterSaturated int, opts ...RunOption) ([]SweepPoint, error) {
	return s.SweepPool(nil, alg, pattern, loads, rc, stopAfterSaturated, opts...)
}

// SweepPool is Sweep running on an explicit worker pool (nil means
// parallel.Default()). Load points are independent jobs — each builds a
// fresh network whose seed depends only on the system configuration, so
// the returned series is bit-identical for every pool size, jobs=1
// included.
//
// Early stopping is preserved by speculative waves: up to pool.Jobs()
// consecutive load points run concurrently, then the serial
// stop-after-saturation rule folds the wave into the series, truncating
// it (and discarding any speculative excess) exactly where the serial
// sweep would have stopped. Errors behave like the serial sweep too: the
// points before the first failing load are returned alongside the error.
//
// Options: a WithCollector/WithTrace sink observes every load point
// (concurrently, when the pool runs several jobs — see WithCollector);
// a WithProgress callback fires in the serial fold, in load order, and
// never sees points a truncation discarded.
func (s *System) SweepPool(pool *parallel.Pool, alg Algorithm, pattern Pattern, loads []float64, rc sim.RunConfig, stopAfterSaturated int, opts ...RunOption) ([]SweepPoint, error) {
	return s.sweepPool(pool, alg, PatternWorkload(pattern), pattern, loads, rc, stopAfterSaturated, opts...)
}

// sweepPool is the shared sweep engine: the legacy Pattern entry points
// and the Workload entry points differ only in how the workload is
// specified and how it is displayed (disp) in progress events and
// errors.
func (s *System) sweepPool(pool *parallel.Pool, alg Algorithm, w Workload, disp Pattern, loads []float64, rc sim.RunConfig, stopAfterSaturated int, opts ...RunOption) ([]SweepPoint, error) {
	if pool == nil {
		pool = parallel.Default()
	}
	o := applyOptions(opts)
	if o.checkpointEvery > 0 || o.checkpointSink != nil || o.resume != nil {
		// A sweep is many runs; one snapshot stream would interleave
		// them, and a single checkpoint identifies only one load point.
		return nil, fmt.Errorf("core: WithCheckpoint/WithResume apply to single runs, not sweeps")
	}
	results := make([]sim.Result, len(loads))
	errs := make([]error, len(loads))
	var out []SweepPoint
	saturated := 0
	ctx := o.context()
	wave := pool.Jobs()
	for lo := 0; lo < len(loads); lo += wave {
		// Skip queued waves once the sweep's context is done: the wave
		// in flight already observes ctx inside the engine, so this
		// check only prevents dispatching fresh speculative work.
		if err := ctx.Err(); err != nil {
			return out, fmt.Errorf("core: %s/%s sweep canceled before load %.3f: %w", alg, disp, loads[lo], err)
		}
		hi := lo + wave
		if hi > len(loads) {
			hi = len(loads)
		}
		pool.ForEach(hi-lo, func(j int) error {
			i := lo + j
			pool.Work(func() {
				results[i], errs[i] = s.runWith(alg, w, loads[i], rc, &o)
				pool.Logf("  %s/%s load %.3f done\n", alg, disp, loads[i])
			})
			return nil
		})
		for i := lo; i < hi; i++ {
			if errs[i] != nil {
				return out, fmt.Errorf("core: %s/%s at load %.3f: %w", alg, disp, loads[i], errs[i])
			}
			out = append(out, SweepPoint{Load: loads[i], Result: results[i]})
			if o.progress != nil {
				o.progress(ProgressEvent{Algorithm: alg, Pattern: disp, Load: loads[i], Index: len(out) - 1, Total: len(loads), Result: results[i]})
			}
			if results[i].Saturated {
				saturated++
				if stopAfterSaturated > 0 && saturated >= stopAfterSaturated {
					return out, nil
				}
			} else {
				saturated = 0
			}
		}
	}
	return out, nil
}
