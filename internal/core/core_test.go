package core

import (
	"testing"

	"dragonfly/internal/sim"
)

func TestNewSystemDefaults(t *testing.T) {
	sys, err := NewSystem(SystemConfig{})
	if err != nil {
		t.Fatalf("NewSystem: %v", err)
	}
	cfg := sys.Config()
	if cfg.P != 4 || cfg.A != 8 || cfg.H != 4 {
		t.Errorf("default parameters %+v, want the paper's 1K config", cfg)
	}
	if cfg.BufDepth != 16 || cfg.Seed != 1 {
		t.Errorf("defaults wrong: %+v", cfg)
	}
	if sys.Topo.Nodes() != 1056 {
		t.Errorf("default Nodes = %d, want 1056", sys.Topo.Nodes())
	}
}

func TestNewSystemInvalid(t *testing.T) {
	if _, err := NewSystem(SystemConfig{P: 1, A: 1, H: 1, Groups: 99}); err == nil {
		t.Error("invalid group count accepted")
	}
}

func TestParseAlgorithm(t *testing.T) {
	for _, a := range Algorithms() {
		got, err := ParseAlgorithm(string(a))
		if err != nil || got != a {
			t.Errorf("ParseAlgorithm(%q) = %v, %v", a, got, err)
		}
	}
	if _, err := ParseAlgorithm("bogus"); err == nil {
		t.Error("bogus algorithm accepted")
	}
}

func TestParsePattern(t *testing.T) {
	for _, p := range Patterns() {
		got, err := ParsePattern(string(p))
		if err != nil || got != p {
			t.Errorf("ParsePattern(%q) = %v, %v", p, got, err)
		}
	}
	if _, err := ParsePattern("bogus"); err == nil {
		t.Error("bogus pattern accepted")
	}
}

func TestSimConfigEnablesCreditDelayForCR(t *testing.T) {
	sys, err := NewSystem(SystemConfig{P: 2, A: 4, H: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !sys.SimConfig(AlgUGALLCR).DelayCredits {
		t.Error("UGAL-L_CR must enable DelayCredits")
	}
	for _, a := range []Algorithm{AlgMIN, AlgVAL, AlgUGALL, AlgUGALG, AlgUGALLVC, AlgUGALLVCH} {
		if sys.SimConfig(a).DelayCredits {
			t.Errorf("%s must not enable DelayCredits", a)
		}
	}
}

func TestRoutingAndTrafficConstruction(t *testing.T) {
	sys, err := NewSystem(SystemConfig{P: 2, A: 4, H: 2})
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range Algorithms() {
		rt, err := sys.Routing(a)
		if err != nil {
			t.Errorf("Routing(%s): %v", a, err)
			continue
		}
		if rt.Name() != string(a) {
			t.Errorf("Routing(%s).Name() = %s", a, rt.Name())
		}
	}
	for _, p := range Patterns() {
		if _, err := sys.Traffic(p); err != nil {
			t.Errorf("Traffic(%s): %v", p, err)
		}
	}
	if _, err := sys.Routing("bogus"); err == nil {
		t.Error("bogus routing accepted")
	}
	if _, err := sys.Traffic("bogus"); err == nil {
		t.Error("bogus traffic accepted")
	}
}

func TestRunEndToEnd(t *testing.T) {
	sys, err := NewSystem(SystemConfig{P: 2, A: 4, H: 2})
	if err != nil {
		t.Fatal(err)
	}
	rc := sim.RunConfig{WarmupCycles: 300, MeasureCycles: 300, DrainCycles: 10000}
	res, err := sys.Run(AlgUGALLVCH, PatternUR, 0.2, rc)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Latency.Count() == 0 || res.Accepted < 0.15 {
		t.Errorf("suspicious result: %+v", res.Summary)
	}
}

func TestSweepStopsAfterSaturation(t *testing.T) {
	sys, err := NewSystem(SystemConfig{P: 2, A: 4, H: 2})
	if err != nil {
		t.Fatal(err)
	}
	rc := sim.RunConfig{WarmupCycles: 300, MeasureCycles: 300, DrainCycles: 1500}
	// MIN on WC saturates at 1/8: a sweep over many loads must stop early.
	loads := []float64{0.05, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7}
	pts, err := sys.Sweep(AlgMIN, PatternWC, loads, rc, 1)
	if err != nil {
		t.Fatalf("Sweep: %v", err)
	}
	if len(pts) == len(loads) {
		t.Error("sweep did not stop after saturation")
	}
	if !pts[len(pts)-1].Result.Saturated {
		t.Error("last sweep point should be saturated")
	}
}

func TestSweepAllPointsWhenUnderLoad(t *testing.T) {
	sys, err := NewSystem(SystemConfig{P: 2, A: 4, H: 2})
	if err != nil {
		t.Fatal(err)
	}
	rc := sim.RunConfig{WarmupCycles: 300, MeasureCycles: 300, DrainCycles: 10000}
	loads := []float64{0.05, 0.1, 0.15}
	pts, err := sys.Sweep(AlgUGALG, PatternUR, loads, rc, 2)
	if err != nil {
		t.Fatalf("Sweep: %v", err)
	}
	if len(pts) != len(loads) {
		t.Errorf("sweep returned %d points, want %d", len(pts), len(loads))
	}
}
