package core

import (
	"testing"

	"dragonfly/internal/fault"
	"dragonfly/internal/parallel"
	"dragonfly/internal/topology"
)

// faultedSystem returns the shared small test system with fraction f of
// its global channels failed under the given seed.
func faultedSystem(t *testing.T, f float64, seed uint64) *System {
	t.Helper()
	sys := testSystem(t)
	plan := fault.NewPlan(seed)
	plan.FailFraction(sys.Topo, topology.ClassGlobal, f)
	return sys.WithFaults(plan)
}

// TestFaultSweepDeterministicAcrossJobs extends the parallel-engine
// guarantee to degraded networks: the same fault seed must produce
// bit-identical sweep results on one worker and on four.
func TestFaultSweepDeterministicAcrossJobs(t *testing.T) {
	rc := shortRC()
	loads := []float64{0.05, 0.1, 0.15, 0.2, 0.25, 0.3}
	for _, alg := range []Algorithm{AlgMIN, AlgUGALL} {
		serial, err := faultedSystem(t, 0.15, 3).SweepPool(parallel.New(1), alg, PatternUR, loads, rc, 2)
		if err != nil {
			t.Fatalf("%s jobs=1: %v", alg, err)
		}
		par, err := faultedSystem(t, 0.15, 3).SweepPool(parallel.New(4), alg, PatternUR, loads, rc, 2)
		if err != nil {
			t.Fatalf("%s jobs=4: %v", alg, err)
		}
		samePoints(t, string(alg)+"/faults", serial, par)
		for i := range serial {
			if serial[i].Result.Dropped != par[i].Result.Dropped {
				t.Errorf("%s point %d: dropped %d vs %d", alg, i,
					serial[i].Result.Dropped, par[i].Result.Dropped)
			}
		}
	}
}

// TestSameFaultSeedSamePlan pins that the plan construction itself is a
// pure function of (seed, topology): two independently built plans mark
// the same channels.
func TestSameFaultSeedSamePlan(t *testing.T) {
	sys := testSystem(t)
	build := func() *topology.Degraded {
		plan := fault.NewPlan(11)
		plan.FailFraction(sys.Topo, topology.ClassGlobal, 0.2)
		return topology.NewDegraded(sys.Topo, plan)
	}
	a, b := build(), build()
	for r := 0; r < sys.Topo.Routers(); r++ {
		for p := 0; p < sys.Topo.Radix(r); p++ {
			if a.Alive(r, p) != b.Alive(r, p) {
				t.Fatalf("port (%d,%d): liveness differs between identically-seeded plans", r, p)
			}
		}
	}
}

// TestDisconnectedRouterDropsNotHangs is the degradation guarantee for a
// truly unreachable destination: failing a whole router makes its
// terminals unroutable, and a run over the degraded system must finish
// (no stall, no error) while counting the drops.
func TestDisconnectedRouterDropsNotHangs(t *testing.T) {
	sys := testSystem(t)
	plan := fault.NewPlan(1)
	// Cut router 0 off completely: fail every router-to-router channel it
	// terminates but keep the router "up", so its terminals still inject
	// packets that can never leave. This is harsher than FailRouter (dead
	// routers neither inject nor receive).
	for p := 0; p < sys.Topo.Radix(0); p++ {
		if sys.Topo.Port(0, p).Class != topology.ClassTerminal {
			plan.FailChannel(sys.Topo, 0, p)
		}
	}
	fsys := sys.WithFaults(plan)
	if fsys.Degraded().Connected() {
		t.Fatal("router 0 still connected after cutting all its channels")
	}
	for _, alg := range []Algorithm{AlgMIN, AlgUGALL} {
		res, err := fsys.Run(alg, PatternUR, 0.2, shortRC())
		if err != nil {
			t.Fatalf("%s: run on disconnected network failed: %v", alg, err)
		}
		if res.Dropped == 0 {
			t.Errorf("%s: no drops with router 0 unreachable under UR traffic", alg)
		}
	}
}

// TestFailedRouterKeepsNetworkUsable: FailRouter kills the router's
// terminals too, so Accepted is normalised by the surviving terminals
// and the rest of the network keeps carrying traffic.
func TestFailedRouterKeepsNetworkUsable(t *testing.T) {
	sys := testSystem(t)
	plan := fault.NewPlan(1)
	plan.FailRouter(0)
	fsys := sys.WithFaults(plan)
	res, err := fsys.Run(AlgUGALL, PatternUR, 0.2, shortRC())
	if err != nil {
		t.Fatalf("run with a failed router: %v", err)
	}
	wantAlive := sys.Topo.Nodes() - sys.Config().P
	if res.AliveTerminals != wantAlive {
		t.Errorf("AliveTerminals = %d, want %d", res.AliveTerminals, wantAlive)
	}
	if res.Accepted <= 0 {
		t.Error("no throughput with a single failed router")
	}
}

// TestResilienceAcceptance is the issue's headline scenario: the 1K-node
// evaluation network (p=4 a=8 h=4) with 10% of its global channels
// failed. UGAL-L must complete a full load sweep with no stall and no
// error, stay connected (zero drops), and retain at least half of its
// fault-free saturation throughput.
func TestResilienceAcceptance(t *testing.T) {
	if testing.Short() {
		t.Skip("1K-node sweep is slow; run without -short")
	}
	sys, err := NewSystem(SystemConfig{P: 4, A: 8, H: 4})
	if err != nil {
		t.Fatal(err)
	}
	plan := fault.NewPlan(1)
	plan.FailFraction(sys.Topo, topology.ClassGlobal, 0.10)
	fsys := sys.WithFaults(plan)
	if !fsys.Degraded().Connected() {
		t.Fatal("10% global failures disconnected the 1K network (unexpected at this fraction)")
	}

	rc := shortRC()
	loads := []float64{0.1, 0.3, 0.5, 0.7, 0.9}
	pool := parallel.New(0)
	sat := func(s *System) float64 {
		pts, err := s.SweepPool(pool, AlgUGALL, PatternUR, loads, rc, 0)
		if err != nil {
			t.Fatalf("sweep: %v", err)
		}
		if len(pts) != len(loads) {
			t.Fatalf("sweep truncated: %d of %d points", len(pts), len(loads))
		}
		best := 0.0
		for _, p := range pts {
			if p.Result.Dropped != 0 {
				t.Errorf("load %.2f: %d packets dropped on a connected network", p.Load, p.Result.Dropped)
			}
			if p.Result.Accepted > best {
				best = p.Result.Accepted
			}
		}
		return best
	}
	pristine := sat(sys)
	degraded := sat(fsys)
	if degraded < 0.5*pristine {
		t.Errorf("degraded saturation throughput %.3f < 50%% of fault-free %.3f", degraded, pristine)
	}
}
