package core_test

// Run must flush attached collectors when it finishes, so the packets
// ejected after the last full window boundary land in a final short
// window instead of silently vanishing from the series — the drain
// phase practically never ends on a Width multiple.

import (
	"testing"

	"dragonfly/internal/core"
	"dragonfly/internal/obs"
	"dragonfly/internal/sim"
)

func TestRunFlushesTrailingWindow(t *testing.T) {
	sys, err := core.NewSystem(core.SystemConfig{P: 2, A: 4, H: 2})
	if err != nil {
		t.Fatalf("NewSystem: %v", err)
	}
	win := obs.NewWindows(obs.WindowsConfig{Width: 1000, Terminals: sys.Topo.Nodes()})
	// Warm-up + measurement is exactly one window; the drain tail past
	// cycle 1000 only reaches the series through the finish flush.
	rc := sim.RunConfig{WarmupCycles: 500, MeasureCycles: 500, DrainCycles: 20000}
	res, err := sys.Run(core.AlgUGALLVCH, core.PatternUR, 0.3, rc, core.WithCollector(win))
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Cycles <= 1000 {
		t.Fatalf("run finished in %d cycles; the scenario needs a drain tail past the window boundary", res.Cycles)
	}
	wins := win.Windows()
	if len(wins) < 2 {
		t.Fatalf("%d windows after a %d-cycle run at width 1000, want the trailing partial flushed", len(wins), res.Cycles)
	}
	tail := wins[len(wins)-1]
	if tail.End != res.Cycles {
		t.Errorf("trailing window ends at %d, want the run's final cycle %d", tail.End, res.Cycles)
	}
	if tail.End-tail.Start >= 1000 {
		t.Errorf("trailing window spans (%d,%d], want a partial shorter than the width", tail.Start, tail.End)
	}
	if tail.Ejected == 0 {
		t.Errorf("trailing window ejected nothing; drain-phase ejections were lost")
	}
	// A second explicit flush at the same cycle must not add an empty
	// window: callers that flushed by hand before the auto-flush landed
	// keep their series unchanged.
	win.Flush(res.Cycles)
	if got := len(win.Windows()); got != len(wins) {
		t.Errorf("explicit Flush after the finish flush grew the series to %d windows, want %d", got, len(wins))
	}
}
