package core_test

// Golden-hash determinism tests: the simulation results for pinned
// seeds are hashed and compared against constants captured from the
// pre-arena (pointer-heap) engine. They pin the refactored engine to
// the old engine's exact numbers — same seeds, same accepted/latency/
// drop values bit for bit — so any perf work on the hot loop that
// changes results is caught immediately.
//
// The hash covers every field a paper figure reads: measured-packet
// count, mean latency, accepted throughput, minimal fraction, total
// cycles, drops and the saturation flag, across several algorithm/
// pattern/load combinations, pristine and with 10% of the global
// channels failed.

import (
	"fmt"
	"hash/fnv"
	"io"
	"math"
	"testing"

	"dragonfly/internal/core"
	"dragonfly/internal/fault"
	"dragonfly/internal/sim"
	"dragonfly/internal/topology"
)

// goldenPristine and goldenFaulted are the expected hashes per seed,
// captured from the engine before the arena refactor (commit of PR 2).
var goldenPristine = map[uint64]string{
	1: "3ba29f816ae5f0b0",
	2: "b96a8f8d2e39e406",
	3: "b5a7a36bda518ea7",
}

var goldenFaulted = map[uint64]string{
	1: "c73300bc398c84a0",
	2: "07e92eb3271e1f4b",
	3: "ead7ac9d2c21e230",
}

// goldenRC is the fixed measurement recipe of the golden runs; small
// enough to keep the test quick on the 72-node example network.
func goldenRC() sim.RunConfig {
	return sim.RunConfig{WarmupCycles: 500, MeasureCycles: 500, DrainCycles: 20000}
}

// hashResult folds the externally visible measurements of one run into
// the hash. Floats are hashed by their IEEE bit patterns: the contract
// is bit-identical, not approximately equal.
func hashResult(w io.Writer, tag string, res sim.Result) {
	fmt.Fprintf(w, "%s count=%d mean=%016x acc=%016x minfrac=%016x cycles=%d dropped=%d sat=%v timeout=%v\n",
		tag,
		res.Latency.Count(),
		math.Float64bits(res.Latency.Mean()),
		math.Float64bits(res.Accepted),
		math.Float64bits(res.MinimalFraction),
		res.Cycles,
		res.Dropped,
		res.Saturated,
		res.DrainTimeout,
	)
}

type goldenRun struct {
	alg     core.Algorithm
	pattern core.Pattern
	load    float64
}

// goldenHash runs the scenario set for one seed and returns the
// combined FNV-1a hash.
func goldenHash(t *testing.T, seed uint64, failGlobals bool) string {
	t.Helper()
	sys, err := core.NewSystem(core.SystemConfig{P: 2, A: 4, H: 2, Seed: seed})
	if err != nil {
		t.Fatalf("NewSystem: %v", err)
	}
	runs := []goldenRun{
		{core.AlgMIN, core.PatternUR, 0.3},
		{core.AlgVAL, core.PatternWC, 0.2},
		{core.AlgUGALLVCH, core.PatternUR, 0.3},
		{core.AlgUGALLVCH, core.PatternWC, 0.25},
	}
	if failGlobals {
		plan := fault.NewPlan(seed)
		plan.FailFraction(sys.Topo, topology.ClassGlobal, 0.10)
		sys = sys.WithFaults(plan)
		runs = []goldenRun{
			{core.AlgMIN, core.PatternUR, 0.2},
			{core.AlgUGALL, core.PatternUR, 0.25},
			{core.AlgVAL, core.PatternWC, 0.15},
		}
	}
	h := fnv.New64a()
	for _, r := range runs {
		res, err := sys.Run(r.alg, r.pattern, r.load, goldenRC())
		if err != nil {
			t.Fatalf("seed %d %s/%s@%.2f: %v", seed, r.alg, r.pattern, r.load, err)
		}
		hashResult(h, fmt.Sprintf("%s/%s@%.2f", r.alg, r.pattern, r.load), res)
	}
	return fmt.Sprintf("%016x", h.Sum64())
}

// TestGoldenHashPristine pins the engine to the pre-refactor results on
// a pristine topology for three seeds.
func TestGoldenHashPristine(t *testing.T) {
	for seed, want := range goldenPristine {
		got := goldenHash(t, seed, false)
		if got != want {
			t.Errorf("pristine seed %d: hash %s, want %s (engine results diverged from pre-refactor baseline)", seed, got, want)
		}
	}
}

// TestGoldenHashFaulted pins the fault-detour paths: 10%% of the global
// channels failed, same three seeds.
func TestGoldenHashFaulted(t *testing.T) {
	for seed, want := range goldenFaulted {
		got := goldenHash(t, seed, true)
		if got != want {
			t.Errorf("faulted seed %d: hash %s, want %s (engine results diverged from pre-refactor baseline)", seed, got, want)
		}
	}
}
