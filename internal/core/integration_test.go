package core

import (
	"testing"

	"dragonfly/internal/sim"
)

// TestAlgorithmPatternMatrix drives every routing algorithm against
// every traffic pattern on the 72-node example and checks the universal
// invariants: packets deliver, accepted tracks offered below saturation,
// and nothing deadlocks.
func TestAlgorithmPatternMatrix(t *testing.T) {
	if testing.Short() {
		t.Skip("matrix test")
	}
	rc := sim.RunConfig{WarmupCycles: 400, MeasureCycles: 400, DrainCycles: 15000, StallLimit: 5000}
	for _, alg := range Algorithms() {
		for _, pat := range Patterns() {
			alg, pat := alg, pat
			t.Run(string(alg)+"/"+string(pat), func(t *testing.T) {
				sys, err := NewSystem(SystemConfig{P: 2, A: 4, H: 2})
				if err != nil {
					t.Fatal(err)
				}
				// 0.1 is below every algorithm/pattern saturation point
				// except MIN on the group-funnelling patterns.
				res, err := sys.Run(alg, pat, 0.1, rc)
				if err != nil {
					t.Fatalf("Run: %v", err)
				}
				if res.Latency.Count() == 0 {
					t.Fatal("no packets measured")
				}
				funnel := pat == PatternWC || pat == PatternTornado
				if alg == AlgMIN && funnel {
					// Minimal routing legitimately saturates here.
					return
				}
				if res.Accepted < 0.08 {
					t.Errorf("accepted %.3f at offered 0.1", res.Accepted)
				}
				if res.DrainTimeout {
					t.Error("drain timeout at light load")
				}
			})
		}
	}
}

// TestExtremeConfigurations exercises boundary simulator configurations
// that have historically hidden bugs: minimum buffers, single-VC-class
// output FIFOs, long global channels.
func TestExtremeConfigurations(t *testing.T) {
	rc := sim.RunConfig{WarmupCycles: 300, MeasureCycles: 300, DrainCycles: 15000, StallLimit: 8000}
	cases := []SystemConfig{
		{P: 2, A: 4, H: 2, BufDepth: 1},
		{P: 2, A: 4, H: 2, BufDepth: 2, GlobalLatency: 16},
		{P: 1, A: 2, H: 1, Groups: 2},
		{P: 3, A: 5, H: 3, Groups: 4},
	}
	for _, cfg := range cases {
		sys, err := NewSystem(cfg)
		if err != nil {
			t.Fatalf("%+v: %v", cfg, err)
		}
		res, err := sys.Run(AlgUGALLVCH, PatternUR, 0.05, rc)
		if err != nil {
			t.Fatalf("%+v: %v", cfg, err)
		}
		if res.Latency.Count() == 0 {
			t.Errorf("%+v: no packets delivered", cfg)
		}
	}
}

// TestLatencyMonotoneInLoad checks a basic sanity property: on benign
// traffic with adaptive routing, mean latency does not decrease as load
// rises (within noise).
func TestLatencyMonotoneInLoad(t *testing.T) {
	sys, err := NewSystem(SystemConfig{P: 2, A: 4, H: 2})
	if err != nil {
		t.Fatal(err)
	}
	rc := sim.RunConfig{WarmupCycles: 600, MeasureCycles: 600, DrainCycles: 15000}
	prev := 0.0
	for _, load := range []float64{0.1, 0.3, 0.5, 0.7} {
		res, err := sys.Run(AlgUGALG, PatternUR, load, rc)
		if err != nil {
			t.Fatal(err)
		}
		if res.Latency.Mean() < prev-1.0 {
			t.Errorf("latency dropped from %.1f to %.1f at load %.1f", prev, res.Latency.Mean(), load)
		}
		prev = res.Latency.Mean()
	}
}

// TestCreditRoundTripBeatsPlainVCHOnWC pins the Figure 16 headline at
// test scale: with the credit-delay mechanism on, the minimally-routed
// packets' latency must not exceed plain UGAL-L_VCH's.
func TestCreditRoundTripBeatsPlainVCHOnWC(t *testing.T) {
	rc := sim.RunConfig{WarmupCycles: 1500, MeasureCycles: 1000, DrainCycles: 20000}
	run := func(alg Algorithm) float64 {
		sys, err := NewSystem(SystemConfig{})
		if err != nil {
			t.Fatal(err)
		}
		res, err := sys.Run(alg, PatternWC, 0.3, rc)
		if err != nil {
			t.Fatal(err)
		}
		if res.Saturated {
			t.Fatalf("%s saturated at 0.3", alg)
		}
		return res.MinLatency.Mean()
	}
	vch := run(AlgUGALLVCH)
	cr := run(AlgUGALLCR)
	if cr > vch*1.05 {
		t.Errorf("UGAL-L_CR min-packet latency %.1f exceeds UGAL-L_VCH %.1f", cr, vch)
	}
}
