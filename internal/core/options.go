package core

import (
	"context"

	"dragonfly/internal/metrics"
	"dragonfly/internal/obs"
	"dragonfly/internal/sim"
)

// RunOption customises System.Run, Sweep and SweepPool without
// positional plumbing: observability and progress reporting attach as
// trailing options, and call sites that want neither stay unchanged.
type RunOption func(*runOptions)

type runOptions struct {
	ctx             context.Context
	collector       metrics.Collector
	tracer          *obs.Tracer
	progress        func(ProgressEvent)
	source          sim.Source
	shards          int
	checkpointEvery int64
	checkpointSink  func(snapshot []byte) error
	resume          []byte
}

// context returns the option's context, Background when none was set.
func (o *runOptions) context() context.Context {
	if o.ctx != nil {
		return o.ctx
	}
	return context.Background()
}

// ProgressEvent reports one completed load point to a WithProgress
// callback.
type ProgressEvent struct {
	Algorithm Algorithm
	Pattern   Pattern
	Load      float64
	// Index counts completed points (in load order) and Total the
	// points requested; a single Run reports 0 of 1.
	Index, Total int
	Result       sim.Result
}

// WithContext makes the run cancelable: the engine observes ctx at
// cycle-batch checkpoints and the call returns a typed error wrapping
// sim.ErrCanceled (and the context cause — context.Canceled or
// DeadlineExceeded) once ctx is done. Under Sweep/SweepPool every
// in-flight load point observes the same context, queued waves are
// skipped, and the points completed before the cancellation are
// returned alongside the error — the same partial-series contract as
// any other failing sweep. Cancellation only observes simulation state;
// re-running the same configuration to completion is bit-identical to
// an uninterrupted run.
func WithContext(ctx context.Context) RunOption {
	return func(o *runOptions) { o.ctx = ctx }
}

// WithCollector attaches c to every network the call builds, for the
// whole run (warm-up included), stacking with any collector the run
// itself attaches (RunConfig.Utilization). Under Sweep/SweepPool the
// same collector observes every load point — and with more than one
// pool worker, concurrently; share a collector across sweep points
// only if it is synchronised or the pool runs one job.
func WithCollector(c metrics.Collector) RunOption {
	return func(o *runOptions) { o.collector = c }
}

// WithTrace attaches the sampled packet tracer, enabling the engine's
// per-hop instrumentation (hop records with credit-stall cycles) for
// the sampled packets. Combines with WithCollector via metrics.Multi.
// The sharing caveat of WithCollector applies.
func WithTrace(t *obs.Tracer) RunOption {
	return func(o *runOptions) { o.tracer = t }
}

// WithProgress registers a callback invoked after each load point
// completes. Under SweepPool the callback runs on the caller's
// goroutine, serially and in load order, regardless of how the points
// were scheduled — no synchronisation needed inside it.
func WithProgress(fn func(ProgressEvent)) RunOption {
	return func(o *runOptions) { o.progress = fn }
}

// WithSource installs src as the arrival process of every network the
// call builds, overriding the workload's registry-built source. This is
// the hook for programmatic sources the registry cannot express —
// composite ones like workload.MultiTenant. The source must satisfy the
// determinism and snapshot obligations documented on sim.Source; under
// Sweep/SweepPool the same source value drives every load point, so a
// stateful source should only be swept with one pool job (or a stateless
// source used instead).
func WithSource(src sim.Source) RunOption {
	return func(o *runOptions) { o.source = src }
}

// WithShards partitions every network the call builds across n engine
// shards (see sim.Network.SetShards), overriding SystemConfig.Shards
// for this run. Results are bit-identical for every shard count; n is
// clamped to the topology's group count. 0 (the default) keeps the
// system configuration.
func WithShards(n int) RunOption {
	return func(o *runOptions) { o.shards = n }
}

// WithCheckpoint captures a dfly-snap/1 checkpoint — complete engine
// state plus the run's accumulated measurement state — every `every`
// cycles and hands the encoded bytes to sink. Checkpoints are taken
// between cycles, so resuming one via WithResume finishes bit-identical
// to a run that was never interrupted, at any shard count. A sink error
// aborts the run (the right behaviour for unwritable checkpoint
// storage). Applies to single runs; Sweep/SweepPool reject it — a sweep
// is many runs, and a single snapshot stream would interleave them.
func WithCheckpoint(every int64, sink func(snapshot []byte) error) RunOption {
	return func(o *runOptions) {
		o.checkpointEvery = every
		o.checkpointSink = sink
	}
}

// WithResume starts the run from a checkpoint captured by a
// WithCheckpoint sink instead of from cycle 0. The run must be
// configured identically to the checkpointed one (same system, load,
// algorithm, pattern, faults and timeline; the shard count is free to
// differ), and finishes bit-identical to the uninterrupted run. A
// snapshot that does not match is a typed error wrapping
// sim.ErrBadSnapshot. Applies to single runs only, like WithCheckpoint.
func WithResume(snapshot []byte) RunOption {
	return func(o *runOptions) { o.resume = snapshot }
}

func applyOptions(opts []RunOption) runOptions {
	var o runOptions
	for _, opt := range opts {
		opt(&o)
	}
	return o
}

// sink folds the collector and tracer options into the single
// collector value attached to a network, nil when neither is set.
func (o *runOptions) sink() metrics.Collector {
	switch {
	case o.collector != nil && o.tracer != nil:
		return metrics.Multi{o.collector, o.tracer}
	case o.collector != nil:
		return o.collector
	case o.tracer != nil:
		return o.tracer
	}
	return nil
}

// flusher is the finish hook a collector may implement to close
// trailing partial state when the run it observed ends — obs.Windows
// uses it to emit the final short window. Flush must be idempotent for
// the same cycle (runWith flushes on finish, and callers that already
// flush by hand keep working).
type flusher interface {
	Flush(cycle int64)
}

// flushSinks walks a collector (recursing into metrics.Multi) and
// flushes every element that implements the finish hook.
func flushSinks(c metrics.Collector, cycle int64) {
	if m, ok := c.(metrics.Multi); ok {
		for _, e := range m {
			flushSinks(e, cycle)
		}
		return
	}
	if f, ok := c.(flusher); ok {
		f.Flush(cycle)
	}
}
