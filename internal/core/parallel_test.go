package core

import (
	"testing"

	"dragonfly/internal/parallel"
	"dragonfly/internal/sim"
)

func testSystem(t *testing.T) *System {
	t.Helper()
	sys, err := NewSystem(SystemConfig{P: 2, A: 4, H: 2})
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

func shortRC() sim.RunConfig {
	return sim.RunConfig{WarmupCycles: 200, MeasureCycles: 200, DrainCycles: 3000}
}

// samePoints asserts two sweeps are bit-identical: same truncation, and
// per point the same load, latency statistics, throughput and
// saturation flags.
func samePoints(t *testing.T, label string, a, b []SweepPoint) {
	t.Helper()
	if len(a) != len(b) {
		t.Fatalf("%s: %d points vs %d points", label, len(a), len(b))
	}
	for i := range a {
		pa, pb := a[i], b[i]
		if pa.Load != pb.Load {
			t.Errorf("%s point %d: load %v vs %v", label, i, pa.Load, pb.Load)
		}
		if pa.Result.Latency.Mean() != pb.Result.Latency.Mean() ||
			pa.Result.Latency.Count() != pb.Result.Latency.Count() ||
			pa.Result.MinLatency.Mean() != pb.Result.MinLatency.Mean() ||
			pa.Result.NonminLatency.Mean() != pb.Result.NonminLatency.Mean() {
			t.Errorf("%s point %d: latency stats differ (%v/%d vs %v/%d)", label, i,
				pa.Result.Latency.Mean(), pa.Result.Latency.Count(),
				pb.Result.Latency.Mean(), pb.Result.Latency.Count())
		}
		if pa.Result.Accepted != pb.Result.Accepted {
			t.Errorf("%s point %d: accepted %v vs %v", label, i, pa.Result.Accepted, pb.Result.Accepted)
		}
		if pa.Result.Saturated != pb.Result.Saturated {
			t.Errorf("%s point %d: saturated %v vs %v", label, i, pa.Result.Saturated, pb.Result.Saturated)
		}
	}
}

// TestSweepParallelDeterminism is the headline guarantee of the parallel
// engine: a sweep dispatched to four workers returns bit-identical
// results to the same sweep on one worker (which follows the exact
// serial code path, wave size 1).
func TestSweepParallelDeterminism(t *testing.T) {
	sys := testSystem(t)
	rc := shortRC()
	loads := []float64{0.05, 0.1, 0.15, 0.2, 0.25, 0.3}
	for _, alg := range []Algorithm{AlgUGALL, AlgVAL} {
		serial, err := sys.SweepPool(parallel.New(1), alg, PatternUR, loads, rc, 2)
		if err != nil {
			t.Fatalf("%s jobs=1: %v", alg, err)
		}
		par, err := sys.SweepPool(parallel.New(4), alg, PatternUR, loads, rc, 2)
		if err != nil {
			t.Fatalf("%s jobs=4: %v", alg, err)
		}
		samePoints(t, string(alg), serial, par)
	}
}

// TestSweepParallelTruncation checks the stop-after-saturation semantics
// survive speculation: MIN on WC traffic saturates at the first load
// point, so a wave of four speculative points must still be truncated
// exactly where the serial sweep stops.
func TestSweepParallelTruncation(t *testing.T) {
	sys := testSystem(t)
	rc := sim.RunConfig{WarmupCycles: 200, MeasureCycles: 200, DrainCycles: 1000}
	loads := []float64{0.05, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7}
	serial, err := sys.SweepPool(parallel.New(1), AlgMIN, PatternWC, loads, rc, 1)
	if err != nil {
		t.Fatalf("jobs=1: %v", err)
	}
	par, err := sys.SweepPool(parallel.New(4), AlgMIN, PatternWC, loads, rc, 1)
	if err != nil {
		t.Fatalf("jobs=4: %v", err)
	}
	if len(serial) == len(loads) {
		t.Fatal("MIN/WC did not saturate early; truncation untested")
	}
	samePoints(t, "MIN/WC", serial, par)
}

// TestConcurrentSweepsSharedSystem exercises several sweeps over one
// shared *System at once — the System (topology included) must be safe
// for concurrent read-only use while each sweep builds its own networks.
// Run with -race to make this a real detector.
func TestConcurrentSweepsSharedSystem(t *testing.T) {
	sys := testSystem(t)
	rc := shortRC()
	loads := []float64{0.1, 0.2, 0.3}
	algs := []Algorithm{AlgMIN, AlgVAL, AlgUGALL, AlgUGALG}
	pool := parallel.New(4)
	err := pool.ForEach(len(algs), func(i int) error {
		pts, err := sys.SweepPool(pool, algs[i], PatternUR, loads, rc, 2)
		if err != nil {
			return err
		}
		if len(pts) == 0 {
			t.Errorf("%s: empty sweep", algs[i])
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestSweepPoolNilUsesDefault pins the nil-pool convenience path.
func TestSweepPoolNilUsesDefault(t *testing.T) {
	sys := testSystem(t)
	pts, err := sys.SweepPool(nil, AlgMIN, PatternUR, []float64{0.1}, shortRC(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 1 {
		t.Fatalf("got %d points, want 1", len(pts))
	}
}
