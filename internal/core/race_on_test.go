//go:build race

package core_test

// raceEnabled reports whether the race detector is active: the heavy
// determinism suites trim their seed matrix under it, since -race slows
// the simulator ~20x and one seed already proves the property.
const raceEnabled = true
