package core_test

// Restore-equivalence goldens: the PR 9 headline invariant. A run that
// is checkpointed at cycle C, killed, and resumed from the snapshot on
// a freshly built system must finish bit-identical to a run that was
// never interrupted — across pristine, statically faulted and
// transient-timeline configurations, three seeds, and with the
// checkpoint and the resume taken at different shard counts in both
// directions. The uninterrupted sides of the pristine and faulted
// scenarios are themselves pinned to frozen constants by the PR 3/6
// golden tests, so this matrix transitively pins the resumed runs to
// the pre-refactor engine too.

import (
	"errors"
	"fmt"
	"hash/fnv"
	"testing"

	"dragonfly/internal/core"
	"dragonfly/internal/fault"
	"dragonfly/internal/sim"
	"dragonfly/internal/topology"
)

// errStopAfterSnapshot aborts a checkpoint-capture run once the sink
// has the snapshot it wanted — the in-process equivalent of killing the
// process at the checkpoint.
var errStopAfterSnapshot = errors.New("stop after first snapshot")

// restoreScenario is one row of the matrix: how to build the system and
// which run to measure on it.
type restoreScenario struct {
	name    string
	build   func(t *testing.T, seed uint64) *core.System
	alg     core.Algorithm
	pattern core.Pattern
	load    float64
}

func restoreScenarios() []restoreScenario {
	return []restoreScenario{
		{
			name: "pristine",
			build: func(t *testing.T, seed uint64) *core.System {
				sys, err := core.NewSystem(core.SystemConfig{P: 2, A: 4, H: 2, Seed: seed})
				if err != nil {
					t.Fatalf("NewSystem: %v", err)
				}
				return sys
			},
			alg: core.AlgUGALLVCH, pattern: core.PatternUR, load: 0.3,
		},
		{
			name: "faulted",
			build: func(t *testing.T, seed uint64) *core.System {
				sys, err := core.NewSystem(core.SystemConfig{P: 2, A: 4, H: 2, Seed: seed})
				if err != nil {
					t.Fatalf("NewSystem: %v", err)
				}
				plan := fault.NewPlan(seed)
				plan.FailFraction(sys.Topo, topology.ClassGlobal, 0.10)
				return sys.WithFaults(plan)
			},
			alg: core.AlgMIN, pattern: core.PatternUR, load: 0.2,
		},
		{
			name:  "timeline",
			build: failRecoverSystem, // fail at 200, recover at 800: both checkpoints land mid-fault-epoch
			alg:   core.AlgUGALL, pattern: core.PatternUR, load: 0.25,
		},
	}
}

// resultHash folds one result the way the golden tests do.
func resultHash(res sim.Result) string {
	h := fnv.New64a()
	hashResult(h, fmt.Sprintf("killed=%d rerouted=%d", res.KilledInFlight, res.Rerouted), res)
	return fmt.Sprintf("%016x", h.Sum64())
}

// TestRestoreEquivalenceGolden is the matrix: 3 seeds × 3 scenarios ×
// {(1,4),(4,1)} (snapshot shards, resume shards), with the interruption
// landing mid-warm-up in one shard direction and mid-measurement in the
// other.
func TestRestoreEquivalenceGolden(t *testing.T) {
	for _, sc := range restoreScenarios() {
		for _, seed := range []uint64{1, 2, 3} {
			want := resultHash(func() sim.Result {
				res, err := sc.build(t, seed).Run(sc.alg, sc.pattern, sc.load, goldenRC())
				if err != nil {
					t.Fatalf("%s seed %d: uninterrupted run: %v", sc.name, seed, err)
				}
				return res
			}())

			for _, pair := range []struct {
				snapShards, resShards int
				every                 int64 // 300 is mid-warm-up, 700 mid-measurement (warmup 500, measure 500)
			}{
				{1, 4, 300},
				{4, 1, 700},
			} {
				var snap []byte
				_, err := sc.build(t, seed).Run(sc.alg, sc.pattern, sc.load, goldenRC(),
					core.WithShards(pair.snapShards),
					core.WithCheckpoint(pair.every, func(b []byte) error {
						snap = append([]byte(nil), b...)
						return errStopAfterSnapshot
					}))
				if !errors.Is(err, errStopAfterSnapshot) {
					t.Fatalf("%s seed %d %+v: capture run: %v, want the sink's sentinel", sc.name, seed, pair, err)
				}
				if len(snap) == 0 {
					t.Fatalf("%s seed %d %+v: no checkpoint captured", sc.name, seed, pair)
				}

				res, err := sc.build(t, seed).Run(sc.alg, sc.pattern, sc.load, goldenRC(),
					core.WithShards(pair.resShards), core.WithResume(snap))
				if err != nil {
					t.Fatalf("%s seed %d %+v: resumed run: %v", sc.name, seed, pair, err)
				}
				if got := resultHash(res); got != want {
					t.Errorf("%s seed %d %+v: resumed hash %s, want uninterrupted %s", sc.name, seed, pair, got, want)
				}
			}
		}
	}
}

// TestResumeRejectsMismatchedSystem pins the fingerprint check at the
// core layer: a checkpoint resumed on a differently built system is a
// typed sim.ErrBadSnapshot, not a silently wrong simulation.
func TestResumeRejectsMismatchedSystem(t *testing.T) {
	sc := restoreScenarios()[0]
	var snap []byte
	_, err := sc.build(t, 1).Run(sc.alg, sc.pattern, sc.load, goldenRC(),
		core.WithCheckpoint(300, func(b []byte) error {
			snap = append([]byte(nil), b...)
			return errStopAfterSnapshot
		}))
	if !errors.Is(err, errStopAfterSnapshot) {
		t.Fatalf("capture run: %v", err)
	}

	// Different seed → different RNG universe → different fingerprint.
	if _, err := sc.build(t, 2).Run(sc.alg, sc.pattern, sc.load, goldenRC(), core.WithResume(snap)); !errors.Is(err, sim.ErrBadSnapshot) {
		t.Errorf("resume on seed-2 system: %v, want sim.ErrBadSnapshot", err)
	}
	// Different fault plan → different liveness → different fingerprint.
	if _, err := restoreScenarios()[1].build(t, 1).Run(sc.alg, sc.pattern, sc.load, goldenRC(), core.WithResume(snap)); !errors.Is(err, sim.ErrBadSnapshot) {
		t.Errorf("resume on faulted system: %v, want sim.ErrBadSnapshot", err)
	}
	// Different algorithm → different routing name → different fingerprint.
	if _, err := sc.build(t, 1).Run(core.AlgMIN, sc.pattern, sc.load, goldenRC(), core.WithResume(snap)); !errors.Is(err, sim.ErrBadSnapshot) {
		t.Errorf("resume under MIN: %v, want sim.ErrBadSnapshot", err)
	}
}

// TestSweepRejectsCheckpointOptions pins the documented scope: the
// checkpoint options apply to single runs only.
func TestSweepRejectsCheckpointOptions(t *testing.T) {
	sys, err := core.NewSystem(core.SystemConfig{P: 2, A: 4, H: 2, Seed: 1})
	if err != nil {
		t.Fatalf("NewSystem: %v", err)
	}
	if _, err := sys.Sweep(core.AlgMIN, core.PatternUR, []float64{0.1}, goldenRC(), 0,
		core.WithCheckpoint(100, func([]byte) error { return nil })); err == nil {
		t.Error("Sweep accepted WithCheckpoint")
	}
	if _, err := sys.Sweep(core.AlgMIN, core.PatternUR, []float64{0.1}, goldenRC(), 0,
		core.WithResume([]byte("x"))); err == nil {
		t.Error("Sweep accepted WithResume")
	}
}
