package core_test

// Shard determinism tests: the sharded engine must reproduce the
// serial engine's results bit for bit, for every shard count, on every
// fault scenario. The fast suite replays the 72-node golden scenarios
// (pristine, 10% failed globals, fail-then-recover timeline) at shard
// counts 1, 2, 3 and NumCPU and pins them to the existing golden
// constants — one divergent float anywhere in a run changes the hash.
// The 1K-node suite does the same on the paper's evaluation machine
// (p=4 a=8 h=4, 1056 nodes), serial vs sharded, three seeds.

import (
	"fmt"
	"hash/fnv"
	"runtime"
	"testing"

	"dragonfly/internal/core"
	"dragonfly/internal/fault"
	"dragonfly/internal/sim"
	"dragonfly/internal/topology"
)

// shardCounts are the shard counts every scenario runs at. NumCPU
// exercises whatever parallelism the test machine actually has (and on
// a 1-core box still exercises the mailbox machinery: sharding is a
// state partition, not a thread count).
func shardCounts() []int {
	counts := []int{1, 2, 3}
	if n := runtime.NumCPU(); n > 3 {
		counts = append(counts, n)
	}
	return counts
}

// goldenHashSharded is goldenHash with a WithShards option: same
// 72-node system, same scenario set, same result folding.
func goldenHashSharded(t *testing.T, seed uint64, failGlobals bool, shards int) string {
	t.Helper()
	sys, err := core.NewSystem(core.SystemConfig{P: 2, A: 4, H: 2, Seed: seed})
	if err != nil {
		t.Fatalf("NewSystem: %v", err)
	}
	runs := []goldenRun{
		{core.AlgMIN, core.PatternUR, 0.3},
		{core.AlgVAL, core.PatternWC, 0.2},
		{core.AlgUGALLVCH, core.PatternUR, 0.3},
		{core.AlgUGALLVCH, core.PatternWC, 0.25},
	}
	if failGlobals {
		plan := fault.NewPlan(seed)
		plan.FailFraction(sys.Topo, topology.ClassGlobal, 0.10)
		sys = sys.WithFaults(plan)
		runs = []goldenRun{
			{core.AlgMIN, core.PatternUR, 0.2},
			{core.AlgUGALL, core.PatternUR, 0.25},
			{core.AlgVAL, core.PatternWC, 0.15},
		}
	}
	h := fnv.New64a()
	for _, r := range runs {
		res, err := sys.Run(r.alg, r.pattern, r.load, goldenRC(), core.WithShards(shards))
		if err != nil {
			t.Fatalf("seed %d shards %d %s/%s@%.2f: %v", seed, shards, r.alg, r.pattern, r.load, err)
		}
		hashResult(h, fmt.Sprintf("%s/%s@%.2f", r.alg, r.pattern, r.load), res)
	}
	return fmt.Sprintf("%016x", h.Sum64())
}

// TestShardedMatchesPristineGolden pins the sharded engine to the
// serial pristine goldens for every shard count: partitioning the
// routers across goroutines must not perturb a single bit.
func TestShardedMatchesPristineGolden(t *testing.T) {
	for seed, want := range goldenPristine {
		for _, k := range shardCounts() {
			if got := goldenHashSharded(t, seed, false, k); got != want {
				t.Errorf("pristine seed %d shards %d: hash %s, want serial golden %s", seed, k, got, want)
			}
		}
	}
}

// TestShardedMatchesFaultedGolden pins the sharded fault-detour paths
// (10% of globals down) to the serial faulted goldens.
func TestShardedMatchesFaultedGolden(t *testing.T) {
	for seed, want := range goldenFaulted {
		for _, k := range shardCounts() {
			if got := goldenHashSharded(t, seed, true, k); got != want {
				t.Errorf("faulted seed %d shards %d: hash %s, want serial golden %s", seed, k, got, want)
			}
		}
	}
}

// TestShardedTimelineMatchesSerial runs the fail-then-recover timeline
// (channels and a router die mid-run, everything revives later) serial
// and sharded and requires bit-identical results: epoch swaps happen on
// the cycle barrier with the mailboxes drained, so kill/reroute/rescue
// accounting must not depend on the shard count.
func TestShardedTimelineMatchesSerial(t *testing.T) {
	runs := []goldenRun{
		{core.AlgUGALL, core.PatternUR, 0.25},
		{core.AlgMIN, core.PatternUR, 0.2},
	}
	for _, seed := range []uint64{1, 2, 3} {
		hash := func(shards int) string {
			sys := failRecoverSystem(t, seed)
			h := fnv.New64a()
			for _, r := range runs {
				res, err := sys.Run(r.alg, r.pattern, r.load, goldenRC(), core.WithShards(shards))
				if err != nil {
					t.Fatalf("seed %d shards %d: %v", seed, shards, err)
				}
				if shards == 1 && r.alg == core.AlgUGALL && res.KilledInFlight == 0 {
					t.Errorf("seed %d: timeline killed nothing; the scenario is not exercising the fault path", seed)
				}
				hashResult(h, fmt.Sprintf("%s/%s@%.2f killed=%d rerouted=%d", r.alg, r.pattern, r.load, res.KilledInFlight, res.Rerouted), res)
			}
			return fmt.Sprintf("%016x", h.Sum64())
		}
		want := hash(1)
		for _, k := range shardCounts()[1:] {
			if got := hash(k); got != want {
				t.Errorf("timeline seed %d shards %d: hash %s, want serial %s", seed, k, got, want)
			}
		}
	}
}

// TestSharded1KNodeMatchesSerial pins serial ≡ sharded on the paper's
// 1K-node evaluation machine (p=4 a=8 h=4 g=33, 1056 nodes), three
// seeds, pristine and under a transient fault timeline. Short mode and
// the race detector keep one seed, so -short and -race still cover the
// machine size without the ~20x race slowdown times three.
func TestSharded1KNodeMatchesSerial(t *testing.T) {
	seeds := []uint64{1, 2, 3}
	if testing.Short() || raceEnabled {
		seeds = seeds[:1]
	}
	rc := sim.RunConfig{WarmupCycles: 300, MeasureCycles: 300, DrainCycles: 10000}
	for _, seed := range seeds {
		for _, withTimeline := range []bool{false, true} {
			sys, err := core.NewSystem(core.SystemConfig{P: 4, A: 8, H: 4, Seed: seed})
			if err != nil {
				t.Fatalf("NewSystem: %v", err)
			}
			if withTimeline {
				tl := fault.NewTimeline(seed).
					FailChannelsAt(150, topology.ClassGlobal, 20).
					FailRouterAt(150, 7).
					RecoverAllAt(450)
				sched, err := tl.Compile(sys.Topo)
				if err != nil {
					t.Fatalf("Compile: %v", err)
				}
				if sys, err = sys.WithTimeline(sched); err != nil {
					t.Fatalf("WithTimeline: %v", err)
				}
			}
			hash := func(shards int) string {
				res, err := sys.Run(core.AlgUGALLVCH, core.PatternUR, 0.3, rc, core.WithShards(shards))
				if err != nil {
					t.Fatalf("seed %d timeline=%v shards %d: %v", seed, withTimeline, shards, err)
				}
				h := fnv.New64a()
				hashResult(h, fmt.Sprintf("1k killed=%d rerouted=%d", res.KilledInFlight, res.Rerouted), res)
				return fmt.Sprintf("%016x", h.Sum64())
			}
			want := hash(1)
			if got := hash(4); got != want {
				t.Errorf("1K nodes seed %d timeline=%v: 4-shard hash %s, want serial %s", seed, withTimeline, got, want)
			}
		}
	}
}
