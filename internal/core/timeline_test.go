package core_test

// Fault-timeline equivalence and determinism tests. Two golden-hash
// pins anchor the epoch-swap machinery to the static engine: an empty
// timeline must reproduce the pristine goldens bit for bit (the swap
// path adds nothing to a run with no events), and a timeline whose only
// events fire at cycle 0 must reproduce the static fault-plan goldens
// (epoch 0 replays the same seeded draw chain a standing Plan makes).
// A third test pins a fail-then-recover run to identical results across
// worker-pool sizes.

import (
	"fmt"
	"hash/fnv"
	"testing"

	"dragonfly/internal/core"
	"dragonfly/internal/fault"
	"dragonfly/internal/parallel"
	"dragonfly/internal/sim"
	"dragonfly/internal/topology"
)

// timelineHash runs the given scenario set on the 72-node golden
// network with tl attached and returns the combined FNV-1a hash, using
// the same recipe and result folding as the static golden tests.
func timelineHash(t *testing.T, seed uint64, tl *fault.Timeline, runs []goldenRun) string {
	t.Helper()
	sys, err := core.NewSystem(core.SystemConfig{P: 2, A: 4, H: 2, Seed: seed})
	if err != nil {
		t.Fatalf("NewSystem: %v", err)
	}
	sched, err := tl.Compile(sys.Topo)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	sys, err = sys.WithTimeline(sched)
	if err != nil {
		t.Fatalf("WithTimeline: %v", err)
	}
	h := fnv.New64a()
	for _, r := range runs {
		res, err := sys.Run(r.alg, r.pattern, r.load, goldenRC())
		if err != nil {
			t.Fatalf("seed %d %s/%s@%.2f: %v", seed, r.alg, r.pattern, r.load, err)
		}
		hashResult(h, fmt.Sprintf("%s/%s@%.2f", r.alg, r.pattern, r.load), res)
	}
	return fmt.Sprintf("%016x", h.Sum64())
}

// TestTimelineEmptyMatchesPristineGolden pins the no-event timeline to
// the static pristine goldens: installing the epoch machinery with
// nothing scheduled must not perturb a single bit of the results.
func TestTimelineEmptyMatchesPristineGolden(t *testing.T) {
	runs := []goldenRun{
		{core.AlgMIN, core.PatternUR, 0.3},
		{core.AlgVAL, core.PatternWC, 0.2},
		{core.AlgUGALLVCH, core.PatternUR, 0.3},
		{core.AlgUGALLVCH, core.PatternWC, 0.25},
	}
	for seed, want := range goldenPristine {
		got := timelineHash(t, seed, fault.NewTimeline(seed), runs)
		if got != want {
			t.Errorf("seed %d: empty-timeline hash %s, want pristine golden %s", seed, got, want)
		}
	}
}

// TestTimelineCycleZeroMatchesFaultedGolden pins a cycle-0-only
// timeline to the static fault-plan goldens: epoch 0 compiled from
// "fail 10%% of globals at cycle 0" replays the exact draw chain of the
// equivalent standing Plan, so results must match bit for bit.
func TestTimelineCycleZeroMatchesFaultedGolden(t *testing.T) {
	runs := []goldenRun{
		{core.AlgMIN, core.PatternUR, 0.2},
		{core.AlgUGALL, core.PatternUR, 0.25},
		{core.AlgVAL, core.PatternWC, 0.15},
	}
	for seed, want := range goldenFaulted {
		tl := fault.NewTimeline(seed).FailFractionAt(0, topology.ClassGlobal, 0.10)
		got := timelineHash(t, seed, tl, runs)
		if got != want {
			t.Errorf("seed %d: cycle-0 timeline hash %s, want faulted golden %s", seed, got, want)
		}
	}
}

// failRecoverSystem builds the golden network with a mid-run timeline:
// six global channels and one router die at cycle 200, everything
// recovers at cycle 800 — both event cycles land inside the golden
// recipe's warm-up + measurement window.
func failRecoverSystem(t *testing.T, seed uint64) *core.System {
	t.Helper()
	sys, err := core.NewSystem(core.SystemConfig{P: 2, A: 4, H: 2, Seed: seed})
	if err != nil {
		t.Fatalf("NewSystem: %v", err)
	}
	tl := fault.NewTimeline(seed).
		FailChannelsAt(200, topology.ClassGlobal, 6).
		FailRouterAt(200, 5).
		RecoverAllAt(800)
	sched, err := tl.Compile(sys.Topo)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	sys, err = sys.WithTimeline(sched)
	if err != nil {
		t.Fatalf("WithTimeline: %v", err)
	}
	return sys
}

// TestTimelineDeterministicAcrossPools runs the fail-then-recover sweep
// on one worker and on four and requires bit-identical points — the
// epoch swaps consult only per-network state, so pool size must not
// leak into results.
func TestTimelineDeterministicAcrossPools(t *testing.T) {
	sys := failRecoverSystem(t, 1)
	loads := []float64{0.1, 0.2, 0.3}
	sweep := func(pool *parallel.Pool) []core.SweepPoint {
		pts, err := sys.SweepPool(pool, core.AlgUGALL, core.PatternUR, loads, goldenRC(), 0)
		if err != nil {
			t.Fatalf("SweepPool: %v", err)
		}
		return pts
	}
	one := sweep(parallel.New(1))
	four := sweep(parallel.New(4))
	if len(one) != len(four) {
		t.Fatalf("point counts differ: %d vs %d", len(one), len(four))
	}
	var killed int64
	for i := range one {
		a, b := fnv.New64a(), fnv.New64a()
		hashResult(a, "pt", one[i].Result)
		hashResult(b, "pt", four[i].Result)
		if a.Sum64() != b.Sum64() {
			t.Errorf("load %.2f: results differ between 1 and 4 workers", one[i].Load)
		}
		if one[i].Result.KilledInFlight != four[i].Result.KilledInFlight ||
			one[i].Result.Rerouted != four[i].Result.Rerouted ||
			one[i].Result.Dropped != four[i].Result.Dropped {
			t.Errorf("load %.2f: fault accounting differs between pools (killed %d/%d rerouted %d/%d dropped %d/%d)",
				one[i].Load,
				one[i].Result.KilledInFlight, four[i].Result.KilledInFlight,
				one[i].Result.Rerouted, four[i].Result.Rerouted,
				one[i].Result.Dropped, four[i].Result.Dropped)
		}
		killed += one[i].Result.KilledInFlight
	}
	if killed == 0 {
		t.Error("no packet killed by the fail event: the timeline never fired")
	}
}

// TestTimelineInvariantsAcrossRevive steps one network through the
// fail and recover events by hand and checks the per-(link, VC) credit
// conservation law after each: the fail epoch must leave every
// surviving link balanced, and the revival reconciliation must restore
// the law on the retrained links.
func TestTimelineInvariantsAcrossRevive(t *testing.T) {
	sys := failRecoverSystem(t, 2)
	net, err := sys.NewNetwork(core.AlgUGALL, core.PatternUR)
	if err != nil {
		t.Fatalf("NewNetwork: %v", err)
	}
	net.SetLoad(0.3)
	step := func(until int) {
		t.Helper()
		for i := 0; i < until; i++ {
			if err := net.Step(); err != nil {
				t.Fatalf("Step: %v", err)
			}
		}
	}
	if got := net.ActiveEpoch(); got != 0 {
		t.Fatalf("epoch before any event: %d, want 0", got)
	}
	step(400) // past the fail event at cycle 200
	if got := net.ActiveEpoch(); got != 1 {
		t.Fatalf("epoch after fail event: %d, want 1", got)
	}
	if err := net.CheckFlowInvariants(); err != nil {
		t.Fatalf("invariants after fail epoch: %v", err)
	}
	if net.KilledInFlight() == 0 {
		t.Error("fail event killed nothing at load 0.3")
	}
	step(600) // past the recover event at cycle 800
	if got := net.ActiveEpoch(); got != 2 {
		t.Fatalf("epoch after recover event: %d, want 2", got)
	}
	if err := net.CheckFlowInvariants(); err != nil {
		t.Fatalf("invariants after revive reconciliation: %v", err)
	}
	step(400) // keep running on the recovered network
	if err := net.CheckFlowInvariants(); err != nil {
		t.Fatalf("invariants in steady state after recovery: %v", err)
	}
}

// TestWithTimelineRejections covers the misuse errors: combining a
// timeline with a standing fault plan, and attaching a schedule
// compiled against a different topology.
func TestWithTimelineRejections(t *testing.T) {
	sys, err := core.NewSystem(core.SystemConfig{P: 2, A: 4, H: 2})
	if err != nil {
		t.Fatalf("NewSystem: %v", err)
	}
	sched, err := fault.NewTimeline(1).FailChannelsAt(100, topology.ClassGlobal, 1).Compile(sys.Topo)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}

	plan := fault.NewPlan(1)
	plan.FailRandomChannels(sys.Topo, topology.ClassGlobal, 1)
	if _, err := sys.WithFaults(plan).WithTimeline(sched); err == nil {
		t.Error("timeline accepted alongside a static fault plan")
	}

	other, err := core.NewSystem(core.SystemConfig{P: 2, A: 4, H: 2})
	if err != nil {
		t.Fatalf("NewSystem: %v", err)
	}
	if _, err := other.WithTimeline(sched); err == nil {
		t.Error("schedule compiled against another topology accepted")
	}

	cleared, err := sys.WithTimeline(nil)
	if err != nil {
		t.Fatalf("WithTimeline(nil): %v", err)
	}
	if cleared.Timeline() != nil {
		t.Error("WithTimeline(nil) did not clear the schedule")
	}

	ts, err := sys.WithTimeline(sched)
	if err != nil {
		t.Fatalf("WithTimeline: %v", err)
	}
	if ts.Timeline() != sched {
		t.Error("Timeline() does not return the attached schedule")
	}
	if _, err := ts.Run(core.AlgMIN, core.PatternUR, 0.1, sim.RunConfig{WarmupCycles: 100, MeasureCycles: 200, DrainCycles: 10000}); err != nil {
		t.Errorf("timeline run failed: %v", err)
	}
}
