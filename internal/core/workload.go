package core

import (
	"fmt"

	"dragonfly/internal/parallel"
	"dragonfly/internal/sim"
	"dragonfly/internal/traffic"
	"dragonfly/internal/workload"
)

// Workload is the registry-unified traffic specification of a run: a
// traffic pattern family (where packets go) plus an arrival-process
// source family (when packets are offered). Both halves are (family
// name, integer parameters) pairs resolved through the traffic and
// workload registries, the same shape SystemConfig uses for topologies,
// so CLIs and the job service compose workloads without package-level
// switches. The zero value is the legacy behaviour exactly: uniform
// random traffic under Bernoulli injection.
type Workload struct {
	// Traffic selects a traffic family (traffic.FamilyNames: "ur",
	// "wc", "groupoffset", "tornado", "bitcomp", "transpose",
	// "hotspot", "perm"; lookups fold case so the legacy enum
	// spellings resolve). Empty means "ur".
	Traffic string
	// TrafficParams are the family's build parameters; omitted keys
	// take the schema defaults.
	TrafficParams map[string]int
	// Source selects an arrival-process family (workload.FamilyNames:
	// "bernoulli", "onoff", "drift", "collective", "trace"). Empty
	// keeps the engine's built-in Bernoulli source — bit-identical to
	// the pre-registry injection path.
	Source string
	// SourceParams are the source family's build parameters.
	SourceParams map[string]int
	// Trace is the parsed flow trace, required by (and only by) the
	// "trace" source family.
	Trace *workload.Trace
}

// patternFamilies maps the legacy Pattern enum spellings onto their
// registry families. The registry builders call the exact constructors
// the old enum switch called, so the mapping preserves every golden
// hash (pinned by TestRegistryPatternEquivalence).
var patternFamilies = map[Pattern]string{
	PatternUR:            "ur",
	PatternWC:            "wc",
	PatternBitComplement: "bitcomp",
	PatternTornado:       "tornado",
	PatternPermutation:   "perm",
}

// PatternWorkload lifts a legacy Pattern enum value into the Workload
// it denotes: the mapped traffic family under the default Bernoulli
// source. Unknown patterns pass through as a (case-folded) family name
// and fail at build time with the registry's error.
func PatternWorkload(p Pattern) Workload {
	if fam, ok := patternFamilies[p]; ok {
		return Workload{Traffic: fam}
	}
	return Workload{Traffic: string(p)}
}

// family returns the traffic family name, defaulting the zero value.
func (w Workload) family() string {
	if w.Traffic == "" {
		return "ur"
	}
	return w.Traffic
}

// Label names the workload in progress events and error messages:
// the traffic family, plus the source family when one is set.
func (w Workload) Label() string {
	if w.Source == "" || w.Source == "bernoulli" {
		return w.family()
	}
	return w.family() + "+" + w.Source
}

// TrafficFor constructs the workload's traffic pattern over this
// topology through the registry. It replaces the pre-registry enum
// switch; the constructed patterns are identical, bit for bit.
func (s *System) TrafficFor(w Workload) (sim.Traffic, error) {
	env := traffic.Env{
		Terminals: s.Topo.Nodes(),
		Grouped:   s.Topo,
		Seed:      s.cfg.Seed,
	}
	return traffic.Build(w.family(), env, w.TrafficParams)
}

// SourceFor constructs the workload's arrival process through the
// workload registry, or nil when the workload keeps the engine's
// built-in Bernoulli default (Source empty).
func (s *System) SourceFor(w Workload) (sim.Source, error) {
	if w.Source == "" {
		if len(w.SourceParams) > 0 {
			return nil, fmt.Errorf("core: workload source parameters %v without a source family", w.SourceParams)
		}
		return nil, nil
	}
	env := workload.Env{
		Terminals: s.Topo.Nodes(),
		Seed:      s.cfg.Seed,
		Trace:     w.Trace,
	}
	return workload.Build(w.Source, env, w.SourceParams)
}

// RunW is Run over a full Workload specification instead of a bare
// Pattern enum: registry traffic with parameters, plus an arrival
// process. The zero-value Workload reproduces Run(alg, PatternUR, ...)
// bit for bit.
func (s *System) RunW(alg Algorithm, w Workload, load float64, rc sim.RunConfig, opts ...RunOption) (sim.Result, error) {
	o := applyOptions(opts)
	res, err := s.runWith(alg, w, load, rc, &o)
	if err != nil {
		return res, err
	}
	if o.progress != nil {
		o.progress(ProgressEvent{Algorithm: alg, Pattern: Pattern(w.Label()), Load: load, Index: 0, Total: 1, Result: res})
	}
	return res, nil
}

// SweepW is Sweep over a full Workload specification; see Sweep for
// the early-stopping and pooling contract.
func (s *System) SweepW(alg Algorithm, w Workload, loads []float64, rc sim.RunConfig, stopAfterSaturated int, opts ...RunOption) ([]SweepPoint, error) {
	return s.SweepPoolW(nil, alg, w, loads, rc, stopAfterSaturated, opts...)
}

// SweepPoolW is SweepPool over a full Workload specification.
func (s *System) SweepPoolW(pool *parallel.Pool, alg Algorithm, w Workload, loads []float64, rc sim.RunConfig, stopAfterSaturated int, opts ...RunOption) ([]SweepPoint, error) {
	return s.sweepPool(pool, alg, w, Pattern(w.Label()), loads, rc, stopAfterSaturated, opts...)
}
