package core_test

// Workload API equivalence and determinism tests — the PR 10 headline
// invariants. The registry-unified Workload path must (a) reproduce the
// legacy enum path bit for bit when it spells out the same computation
// (registry "UR" traffic + explicit bernoulli arrivals ≡ core.PatternUR
// through Run), pinned transitively to the pre-refactor engine by the
// frozen golden constants; (b) keep the serial ≡ sharded promise for
// every stateful arrival process; and (c) keep the resume-from-snapshot
// ≡ uninterrupted promise with source state riding in dfly-snap/1,
// across shard-count changes in both directions.

import (
	"errors"
	"fmt"
	"hash/fnv"
	"strings"
	"testing"

	"dragonfly/internal/core"
	"dragonfly/internal/fault"
	"dragonfly/internal/sim"
	"dragonfly/internal/topology"
	"dragonfly/internal/workload"
)

// goldenHashW mirrors goldenHash, but maps every scenario through the
// registry spelling — uppercase traffic family (canonicalisation is
// case-folded) plus an explicit "bernoulli" source — and runs it with
// RunW at the given shard count. Any draw-order difference between the
// registry bernoulli source and the engine's built-in Bernoulli gate
// shows up as a golden-hash mismatch.
func goldenHashW(t *testing.T, seed uint64, failGlobals bool, shards int) string {
	t.Helper()
	sys, err := core.NewSystem(core.SystemConfig{P: 2, A: 4, H: 2, Seed: seed})
	if err != nil {
		t.Fatalf("NewSystem: %v", err)
	}
	runs := []goldenRun{
		{core.AlgMIN, core.PatternUR, 0.3},
		{core.AlgVAL, core.PatternWC, 0.2},
		{core.AlgUGALLVCH, core.PatternUR, 0.3},
		{core.AlgUGALLVCH, core.PatternWC, 0.25},
	}
	if failGlobals {
		plan := fault.NewPlan(seed)
		plan.FailFraction(sys.Topo, topology.ClassGlobal, 0.10)
		sys = sys.WithFaults(plan)
		runs = []goldenRun{
			{core.AlgMIN, core.PatternUR, 0.2},
			{core.AlgUGALL, core.PatternUR, 0.25},
			{core.AlgVAL, core.PatternWC, 0.15},
		}
	}
	h := fnv.New64a()
	for _, r := range runs {
		wl := core.Workload{Traffic: string(r.pattern), Source: "bernoulli"}
		var opts []core.RunOption
		if shards > 0 {
			opts = append(opts, core.WithShards(shards))
		}
		res, err := sys.RunW(r.alg, wl, r.load, goldenRC(), opts...)
		if err != nil {
			t.Fatalf("seed %d %s/%s@%.2f: %v", seed, r.alg, r.pattern, r.load, err)
		}
		hashResult(h, fmt.Sprintf("%s/%s@%.2f", r.alg, r.pattern, r.load), res)
	}
	return fmt.Sprintf("%016x", h.Sum64())
}

// TestWorkloadLegacyEquivalenceGolden pins the redesign's
// backward-compatibility promise to the frozen constants: the registry
// path reproduces the pre-redesign goldens exactly, pristine and
// faulted, serial and sharded. A registry builder that consumed one
// extra RNG draw, reordered the gate/seed/dest draws, or case-folded
// differently would diverge here on the first packet.
func TestWorkloadLegacyEquivalenceGolden(t *testing.T) {
	for _, tc := range []struct {
		name   string
		fail   bool
		golden map[uint64]string
	}{
		{"pristine", false, goldenPristine},
		{"faulted", true, goldenFaulted},
	} {
		for seed, want := range tc.golden {
			for _, shards := range []int{0, 4} {
				if got := goldenHashW(t, seed, tc.fail, shards); got != want {
					t.Errorf("%s seed %d shards %d: registry workload hash %s, want legacy golden %s",
						tc.name, seed, shards, got, want)
				}
			}
		}
	}
}

// workloadScenario is one arrival process under test: how to build its
// Workload spec, on the 72-node example network.
type workloadScenario struct {
	name string
	wl   core.Workload
}

// testTrace builds a deterministic trace spanning the golden recipe's
// warm-up and measurement phases: one flow every third cycle, walking
// the 72 terminals round-robin with a +7 destination stride and a small
// varying packet count, so replay state (flow index + remaining count)
// is mid-flight at any checkpoint cycle.
func testTrace(t *testing.T) *workload.Trace {
	t.Helper()
	var b strings.Builder
	for c := 0; c < 1200; c += 3 {
		src := (c / 3) % 72
		dst := (src + 7) % 72
		fmt.Fprintf(&b, "%d %d %d %d\n", c, src, dst, 1+(c/3)%3)
	}
	tr, err := workload.ParseTrace([]byte(b.String()), 72)
	if err != nil {
		t.Fatalf("ParseTrace: %v", err)
	}
	return tr
}

func workloadScenarios(t *testing.T) []workloadScenario {
	t.Helper()
	return []workloadScenario{
		{"onoff", core.Workload{Traffic: "ur", Source: "onoff",
			SourceParams: map[string]int{"on": 40, "off": 120}}},
		{"onoff-pareto", core.Workload{Traffic: "ur", Source: "onoff",
			SourceParams: map[string]int{"on": 40, "off": 120, "pareto": 1}}},
		{"drift", core.Workload{Traffic: "ur", Source: "drift",
			SourceParams: map[string]int{"hot": 3, "pct": 40, "period": 250}}},
		{"collective", core.Workload{Traffic: "ur", Source: "collective",
			SourceParams: map[string]int{"op": 2, "phaselen": 150}}},
		{"trace", core.Workload{Traffic: "ur", Source: "trace", Trace: testTrace(t)}},
	}
}

// TestShardedWorkloadMatchesSerial extends the serial ≡ sharded promise
// to every stateful arrival process: per-terminal source state is
// partitioned across shards, so a source that read a neighbouring
// shard's RNG or shared mutable state would diverge (or trip -race,
// under which CI runs this).
func TestShardedWorkloadMatchesSerial(t *testing.T) {
	for _, sc := range workloadScenarios(t) {
		sys, err := core.NewSystem(core.SystemConfig{P: 2, A: 4, H: 2, Seed: 1})
		if err != nil {
			t.Fatalf("NewSystem: %v", err)
		}
		serial, err := sys.RunW(core.AlgUGALLVCH, sc.wl, 0.3, goldenRC())
		if err != nil {
			t.Fatalf("%s: serial run: %v", sc.name, err)
		}
		sharded, err := sys.RunW(core.AlgUGALLVCH, sc.wl, 0.3, goldenRC(), core.WithShards(4))
		if err != nil {
			t.Fatalf("%s: sharded run: %v", sc.name, err)
		}
		if got, want := resultHash(sharded), resultHash(serial); got != want {
			t.Errorf("%s: sharded hash %s, serial %s — arrival process is not shard-deterministic", sc.name, got, want)
		}
	}
}

// TestWorkloadRestoreEquivalence extends the resume ≡ uninterrupted
// matrix to stateful sources: a checkpoint taken mid-dwell (ON/OFF) or
// mid-flow (trace replay) and resumed on a fresh system — at a
// different shard count, both directions — must finish bit-identical.
// This is the proof that source state actually rides in the snapshot:
// a source that reset to cycle zero on restore would diverge
// immediately.
func TestWorkloadRestoreEquivalence(t *testing.T) {
	scenarios := []workloadScenario{
		{"onoff", core.Workload{Traffic: "ur", Source: "onoff",
			SourceParams: map[string]int{"on": 40, "off": 120}}},
		{"trace", core.Workload{Traffic: "ur", Source: "trace", Trace: testTrace(t)}},
	}
	build := func(seed uint64) *core.System {
		sys, err := core.NewSystem(core.SystemConfig{P: 2, A: 4, H: 2, Seed: seed})
		if err != nil {
			t.Fatalf("NewSystem: %v", err)
		}
		return sys
	}
	for _, sc := range scenarios {
		for _, seed := range []uint64{1, 2} {
			res, err := build(seed).RunW(core.AlgUGALLVCH, sc.wl, 0.3, goldenRC())
			if err != nil {
				t.Fatalf("%s seed %d: uninterrupted run: %v", sc.name, seed, err)
			}
			want := resultHash(res)

			for _, pair := range []struct {
				snapShards, resShards int
				every                 int64 // mid-warm-up one way, mid-measurement the other
			}{
				{1, 4, 300},
				{4, 1, 700},
			} {
				var snap []byte
				_, err := build(seed).RunW(core.AlgUGALLVCH, sc.wl, 0.3, goldenRC(),
					core.WithShards(pair.snapShards),
					core.WithCheckpoint(pair.every, func(b []byte) error {
						snap = append([]byte(nil), b...)
						return errStopAfterSnapshot
					}))
				if !errors.Is(err, errStopAfterSnapshot) {
					t.Fatalf("%s seed %d %+v: capture run: %v, want the sink's sentinel", sc.name, seed, pair, err)
				}
				res, err := build(seed).RunW(core.AlgUGALLVCH, sc.wl, 0.3, goldenRC(),
					core.WithShards(pair.resShards), core.WithResume(snap))
				if err != nil {
					t.Fatalf("%s seed %d %+v: resumed run: %v", sc.name, seed, pair, err)
				}
				if got := resultHash(res); got != want {
					t.Errorf("%s seed %d %+v: resumed hash %s, want uninterrupted %s", sc.name, seed, pair, got, want)
				}
			}
		}
	}
}

// TestWorkloadSnapshotRejectsDifferentSource pins the fingerprint scope:
// the source name and parameters are folded into the snapshot
// fingerprint, so a checkpoint taken under one arrival process refuses
// to resume under another instead of silently mixing state layouts.
func TestWorkloadSnapshotRejectsDifferentSource(t *testing.T) {
	sys, err := core.NewSystem(core.SystemConfig{P: 2, A: 4, H: 2, Seed: 1})
	if err != nil {
		t.Fatalf("NewSystem: %v", err)
	}
	onoff := core.Workload{Traffic: "ur", Source: "onoff"}
	var snap []byte
	_, err = sys.RunW(core.AlgUGALLVCH, onoff, 0.3, goldenRC(),
		core.WithCheckpoint(300, func(b []byte) error {
			snap = append([]byte(nil), b...)
			return errStopAfterSnapshot
		}))
	if !errors.Is(err, errStopAfterSnapshot) {
		t.Fatalf("capture run: %v", err)
	}
	// Different source family → different fingerprint.
	drift := core.Workload{Traffic: "ur", Source: "drift"}
	if _, err := sys.RunW(core.AlgUGALLVCH, drift, 0.3, goldenRC(), core.WithResume(snap)); !errors.Is(err, sim.ErrBadSnapshot) {
		t.Errorf("resume under drift source: %v, want sim.ErrBadSnapshot", err)
	}
	// Same family, different parameters → different fingerprint.
	tuned := core.Workload{Traffic: "ur", Source: "onoff", SourceParams: map[string]int{"on": 50}}
	if _, err := sys.RunW(core.AlgUGALLVCH, tuned, 0.3, goldenRC(), core.WithResume(snap)); !errors.Is(err, sim.ErrBadSnapshot) {
		t.Errorf("resume with retuned dwell: %v, want sim.ErrBadSnapshot", err)
	}
	// Built-in engine Bernoulli (no source) → different fingerprint.
	if _, err := sys.Run(core.AlgUGALLVCH, core.PatternUR, 0.3, goldenRC(), core.WithResume(snap)); !errors.Is(err, sim.ErrBadSnapshot) {
		t.Errorf("resume without a source: %v, want sim.ErrBadSnapshot", err)
	}
}
