package core_test

// Topology-zoo determinism tests: every new topology family must give
// the sharded engine nothing to disagree about — shards=1 and shards=N
// produce bit-identical results, pristine and under a transient fault
// timeline, and the shards=1 hashes are pinned as goldens so a routing
// or builder change that silently moves any family's numbers is caught
// the same way the canonical dragonfly's are.

import (
	"fmt"
	"hash/fnv"
	"testing"

	"dragonfly/internal/core"
	"dragonfly/internal/fault"
	"dragonfly/internal/topology"
)

// zooConfigs are the machines under test: one small instance per new
// family (the canonical dragonfly is covered by the original goldens).
var zooConfigs = []struct {
	family string
	params map[string]int
}{
	{"dragonflyplus", map[string]int{"p": 2, "leaves": 4, "spines": 4, "h": 2}},
	{"swapped", map[string]int{"p": 2, "k": 6}},
	{"aries", map[string]int{"p": 1, "blades": 4, "chassis": 2, "bundle": 2, "h": 2, "g": 8}},
}

// zooGolden pins the serial (shards=1) hash per family, seed 1.
// Captured from the first landing of the topology layer; a change
// means the family's simulation results moved.
var zooGolden = map[string]string{
	"dragonflyplus": "d876b600984552b2",
	"swapped":       "2fccd51b84c156d4",
	"aries":         "94b470ce1abc366d",
}

// zooHash runs the family's scenario set at one shard count and folds
// the results into a hash: two pristine runs (adaptive and minimal
// routing) plus one run under a fail-then-recover timeline, so the
// degraded-routing and epoch-switch paths of every family are inside
// the determinism contract.
func zooHash(t *testing.T, family string, params map[string]int, shards int) string {
	t.Helper()
	h := fnv.New64a()

	sys, err := core.NewSystem(core.SystemConfig{Topology: family, TopoParams: params, Seed: 1})
	if err != nil {
		t.Fatalf("NewSystem(%s): %v", family, err)
	}
	for _, r := range []goldenRun{
		{core.AlgUGALLVCH, core.PatternUR, 0.3},
		{core.AlgMIN, core.PatternUR, 0.2},
	} {
		res, err := sys.Run(r.alg, r.pattern, r.load, goldenRC(), core.WithShards(shards))
		if err != nil {
			t.Fatalf("%s shards %d %s/%s@%.2f: %v", family, shards, r.alg, r.pattern, r.load, err)
		}
		hashResult(h, fmt.Sprintf("%s/%s@%.2f", r.alg, r.pattern, r.load), res)
	}

	tl := fault.NewTimeline(1).
		FailChannelsAt(150, topology.ClassGlobal, 3).
		RecoverAllAt(450)
	sched, err := tl.Compile(sys.Topo)
	if err != nil {
		t.Fatalf("%s: Compile: %v", family, err)
	}
	tsys, err := sys.WithTimeline(sched)
	if err != nil {
		t.Fatalf("%s: WithTimeline: %v", family, err)
	}
	res, err := tsys.Run(core.AlgUGALL, core.PatternUR, 0.25, goldenRC(), core.WithShards(shards))
	if err != nil {
		t.Fatalf("%s shards %d timeline run: %v", family, shards, err)
	}
	hashResult(h, fmt.Sprintf("timeline killed=%d rerouted=%d", res.KilledInFlight, res.Rerouted), res)

	return fmt.Sprintf("%016x", h.Sum64())
}

// TestZooGolden pins every family's serial hash.
func TestZooGolden(t *testing.T) {
	for _, cfg := range zooConfigs {
		got := zooHash(t, cfg.family, cfg.params, 1)
		want, ok := zooGolden[cfg.family]
		if !ok {
			t.Errorf("no golden pinned for %s: serial hash is %s", cfg.family, got)
			continue
		}
		if got != want {
			t.Errorf("%s: serial hash %s, want golden %s", cfg.family, got, want)
		}
	}
}

// TestZooShardedMatchesSerial pins shards=1 ≡ shards=N for every new
// family, every shard count of the standard set: the shard partition
// follows each family's group-major numbering, so a family whose
// builder breaks contiguity (or whose routing reads cross-shard state
// out of phase) diverges here.
func TestZooShardedMatchesSerial(t *testing.T) {
	for _, cfg := range zooConfigs {
		want := zooHash(t, cfg.family, cfg.params, 1)
		for _, k := range shardCounts()[1:] {
			if got := zooHash(t, cfg.family, cfg.params, k); got != want {
				t.Errorf("%s shards %d: hash %s, want serial %s", cfg.family, k, got, want)
			}
		}
	}
}
