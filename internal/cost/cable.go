// Package cost implements the technology and cost models of Sections 2
// and 5 of the paper: linear cable-cost fits for electrical and active
// optical signalling (Figure 2, Table 1), a machine-room packaging and
// floor-plan model for cable-length estimation, and per-topology network
// cost inventories that reproduce the comparisons of Figures 18 and 19
// and Table 2.
//
// Absolute 2008 dollars are not the reproduction target — the shapes
// are: the electrical/optical crossover around 10 m, the dragonfly's
// ~20% saving over the flattened butterfly and ~50%+ over the folded
// Clos at scale, and the 3-D torus's high flat cost.
package cost

import "fmt"

// CableTech describes one signalling technology (Table 1).
type CableTech struct {
	// Name of the cable family.
	Name string
	// MaxLengthM is the maximum usable length in metres.
	MaxLengthM float64
	// DataRateGbps is the per-cable data rate (4x lanes).
	DataRateGbps float64
	// PowerW is the active-component power.
	PowerW float64
	// EnergyPJPerBit is the signalling energy per bit.
	EnergyPJPerBit float64
	// Optical reports whether the cable is an active optical cable.
	Optical bool
}

// Table1 returns the cable technologies of the paper's Table 1.
func Table1() []CableTech {
	return []CableTech{
		{Name: "Intel Connects Cable", MaxLengthM: 100, DataRateGbps: 20, PowerW: 1.2, EnergyPJPerBit: 60, Optical: true},
		{Name: "Luxtera Blazar", MaxLengthM: 300, DataRateGbps: 42, PowerW: 2.2, EnergyPJPerBit: 55, Optical: true},
		{Name: "electrical cable", MaxLengthM: 10, DataRateGbps: 10, PowerW: 0.02, EnergyPJPerBit: 2, Optical: false},
	}
}

// CableModel is a linear cost fit $/Gb/s = Slope·length + Intercept
// (Figure 2).
type CableModel struct {
	// Name of the model.
	Name string
	// Slope is the per-metre cost in $/Gb/s/m.
	Slope float64
	// Intercept is the fixed (transceiver) cost in $/Gb/s.
	Intercept float64
}

// CostPerGb returns the cost of lengthM metres of this cable in $/Gb/s.
func (m CableModel) CostPerGb(lengthM float64) float64 {
	if lengthM < 0 {
		lengthM = 0
	}
	return m.Slope*lengthM + m.Intercept
}

// The two cost fits printed in Figure 2.
var (
	// Electrical is the repeatered electrical cable model of the
	// flattened-butterfly paper: $/Gb = 1.4·len + 2.16. Cheap transceivers,
	// expensive metres.
	Electrical = CableModel{Name: "electrical", Slope: 1.4, Intercept: 2.16}
	// Optical is the Intel Connects active optical cable fit:
	// $/Gb = 0.364·len + 9.7103. Expensive end-points, cheap metres.
	Optical = CableModel{Name: "optical", Slope: 0.364, Intercept: 9.7103}
)

// OpticalThresholdM is the length above which the paper's methodology
// switches from electrical to optical cables (Section 5 uses 8 m; the
// pure cost crossover of the two fits is ≈7.3 m and the paper quotes
// ≈10 m).
const OpticalThresholdM = 8.0

// Crossover returns the cable length at which two models cost the same,
// or -1 if they never cross for non-negative lengths.
func Crossover(a, b CableModel) float64 {
	ds := a.Slope - b.Slope
	di := b.Intercept - a.Intercept
	if ds == 0 {
		return -1
	}
	x := di / ds
	if x < 0 {
		return -1
	}
	return x
}

// CheapestCable returns the cost in $/Gb/s of the cheaper signalling
// choice for a cable of the given length, using the paper's 8 m rule.
func CheapestCable(lengthM float64) float64 {
	if lengthM < OpticalThresholdM {
		return Electrical.CostPerGb(lengthM)
	}
	return Optical.CostPerGb(lengthM)
}

// RouterModel prices router ports. Per-port cost falls with radix
// because the fixed chip cost (package, maintenance logic, firmware) is
// amortised over more SerDes — which is why the low-radix 3-D torus
// router is charged more per port (Section 5 "adjust the cost of the
// router appropriately for the low-radix 3-D torus network").
type RouterModel struct {
	// PortCost is the marginal cost per port in $/Gb/s (SerDes lanes,
	// pins, board area).
	PortCost float64
	// ChipOverhead is the fixed per-router cost in $ amortised over the
	// radix.
	ChipOverhead float64
}

// DefaultRouterModel prices a YARC-class high-radix router at roughly
// $8/port/Gb/s and a radix-7 torus router at roughly $23/port/Gb/s.
func DefaultRouterModel() RouterModel {
	return RouterModel{PortCost: 6, ChipOverhead: 120}
}

// PerPort returns the per-port cost of a radix-k router.
func (r RouterModel) PerPort(k int) float64 {
	if k < 1 {
		k = 1
	}
	return r.PortCost + r.ChipOverhead/float64(k)
}

// String describes the model.
func (r RouterModel) String() string {
	return fmt.Sprintf("router-cost(port=$%.2f chip=$%.2f)", r.PortCost, r.ChipOverhead)
}
