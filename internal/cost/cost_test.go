package cost

import (
	"math"
	"testing"
	"testing/quick"

	"dragonfly/internal/topology"
)

func TestCableModelsFigure2(t *testing.T) {
	// The two linear fits printed in Figure 2.
	if got := Electrical.CostPerGb(0); got != 2.16 {
		t.Errorf("electrical intercept = %v, want 2.16", got)
	}
	if got := Electrical.CostPerGb(10); math.Abs(got-16.16) > 1e-9 {
		t.Errorf("electrical at 10m = %v, want 16.16", got)
	}
	if got := Optical.CostPerGb(0); got != 9.7103 {
		t.Errorf("optical intercept = %v, want 9.7103", got)
	}
	// Optical has the higher fixed cost but lower slope.
	if Optical.Intercept <= Electrical.Intercept {
		t.Error("optical intercept should exceed electrical")
	}
	if Optical.Slope >= Electrical.Slope {
		t.Error("optical slope should be below electrical")
	}
	// Negative lengths clamp.
	if Electrical.CostPerGb(-5) != Electrical.CostPerGb(0) {
		t.Error("negative length not clamped")
	}
}

func TestCrossoverNearTenMetres(t *testing.T) {
	// Section 2: "the crossover point is at 10m" (the pure fit crossing
	// is ≈7.3 m; the paper quotes ≈10 m from the figure).
	x := Crossover(Electrical, Optical)
	if x < 5 || x > 12 {
		t.Errorf("crossover = %v m, want 5-12 m", x)
	}
	if Crossover(Electrical, Electrical) != -1 {
		t.Error("parallel models should report no crossover")
	}
}

func TestCheapestCableSwitchesTechnology(t *testing.T) {
	if CheapestCable(2) != Electrical.CostPerGb(2) {
		t.Error("short cables should be electrical")
	}
	if CheapestCable(30) != Optical.CostPerGb(30) {
		t.Error("long cables should be optical")
	}
	// Property: CheapestCable is monotone non-decreasing except at the
	// technology switch, and never exceeds either pure model.
	f := func(lRaw uint16) bool {
		l := float64(lRaw%1000) / 10
		c := CheapestCable(l)
		return c <= Electrical.CostPerGb(l)+1e-9 || c <= Optical.CostPerGb(l)+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestTable1(t *testing.T) {
	techs := Table1()
	if len(techs) != 3 {
		t.Fatalf("Table1 has %d rows, want 3", len(techs))
	}
	optical := 0
	for _, tech := range techs {
		if tech.Name == "" || tech.MaxLengthM <= 0 || tech.DataRateGbps <= 0 {
			t.Errorf("bad row %+v", tech)
		}
		if tech.Optical {
			optical++
			if tech.EnergyPJPerBit < 50 {
				t.Errorf("optical cable %s energy %v, want >= 50 pJ/bit", tech.Name, tech.EnergyPJPerBit)
			}
		}
	}
	if optical != 2 {
		t.Errorf("want 2 optical rows, got %d", optical)
	}
}

func TestRouterModelAmortisesChipCost(t *testing.T) {
	rm := DefaultRouterModel()
	if rm.PerPort(7) <= rm.PerPort(64) {
		t.Error("low-radix per-port cost must exceed high-radix")
	}
	if rm.PerPort(0) != rm.PerPort(1) {
		t.Error("radix clamp failed")
	}
}

func TestLayoutValidate(t *testing.T) {
	bad := []Layout{
		{NodesPerCabinet: 0, CabinetPitchM: 1, CableOverheadM: 1, BackplaneM: 1},
		{NodesPerCabinet: 1, CabinetPitchM: 0, CableOverheadM: 1, BackplaneM: 1},
		{NodesPerCabinet: 1, CabinetPitchM: 1, CableOverheadM: -1, BackplaneM: 1},
		{NodesPerCabinet: 1, CabinetPitchM: 1, CableOverheadM: 1, BackplaneM: 0},
	}
	for i, l := range bad {
		if err := l.Validate(); err == nil {
			t.Errorf("case %d: invalid layout accepted", i)
		}
	}
	if err := DefaultLayout().Validate(); err != nil {
		t.Errorf("default layout rejected: %v", err)
	}
}

func TestLayoutDistances(t *testing.T) {
	l := DefaultLayout()
	if d := l.CabinetDistanceM(0, 0, 16); d != l.BackplaneM {
		t.Errorf("same-cabinet distance %v, want backplane %v", d, l.BackplaneM)
	}
	// Adjacent cabinets on a 4x4 grid: one pitch plus overhead.
	if d := l.CabinetDistanceM(0, 1, 16); d != l.CabinetPitchM+l.CableOverheadM {
		t.Errorf("adjacent distance %v", d)
	}
	// Opposite corners: 6 pitches plus overhead.
	if d := l.CabinetDistanceM(0, 15, 16); d != 6*l.CabinetPitchM+l.CableOverheadM {
		t.Errorf("corner distance %v", d)
	}
	if m := l.MeanPairDistanceM(1); m != l.BackplaneM {
		t.Errorf("single-cabinet mean %v", m)
	}
	mean := l.MeanPairDistanceM(16)
	if mean <= l.CableOverheadM || mean > 6*l.CabinetPitchM+l.CableOverheadM {
		t.Errorf("mean pair distance %v out of range", mean)
	}
}

func TestLayoutMachineDimensionGrows(t *testing.T) {
	l := DefaultLayout()
	prev := 0.0
	for _, n := range []int{256, 1024, 4096, 16384, 65536} {
		e := l.MachineDimensionM(n)
		if e < prev {
			t.Errorf("machine dimension shrank at N=%d", n)
		}
		prev = e
	}
}

func TestDragonflyCostBreakdown(t *testing.T) {
	m := DefaultModel()
	b, err := m.Dragonfly(16384)
	if err != nil {
		t.Fatalf("Dragonfly: %v", err)
	}
	if b.Nodes < 16384 {
		t.Errorf("sized %d nodes, want >= 16384", b.Nodes)
	}
	if b.GlobalChannels == 0 || b.LocalChannels == 0 || b.TerminalChannels != b.Nodes {
		t.Errorf("bad channel inventory: %+v", b)
	}
	// Balanced dragonfly: 0.5 global channels per node.
	perNode := float64(b.GlobalChannels) / float64(b.Nodes)
	if math.Abs(perNode-0.5) > 0.01 {
		t.Errorf("global channels per node = %v, want 0.5", perNode)
	}
	if b.Total() <= 0 || b.PerNode() <= 0 {
		t.Error("non-positive cost")
	}
	sum := b.RouterCost + b.TerminalCost + b.LocalCost + b.GlobalCost
	if math.Abs(sum-b.Total()) > 1e-9 {
		t.Error("Total() does not match the sum of parts")
	}
}

func TestDragonflyCostErrors(t *testing.T) {
	m := DefaultModel()
	if _, err := m.DragonflyConfig(100, 0, 16, 16); err == nil {
		t.Error("p=0 accepted")
	}
	// More nodes than a*h+1 groups can hold.
	if _, err := m.DragonflyConfig(10_000_000, 16, 16, 16); err == nil {
		t.Error("oversized machine accepted")
	}
	bad := m
	bad.Layout.CabinetPitchM = 0
	if _, err := bad.Dragonfly(4096); err == nil {
		t.Error("invalid layout accepted")
	}
}

func TestSmallDragonflyEqualsFlattenedButterfly(t *testing.T) {
	// Section 5: below ~1K nodes the dragonfly is a 1-D flattened
	// butterfly and costs exactly the same.
	m := DefaultModel()
	df, err := m.Dragonfly(512)
	if err != nil {
		t.Fatalf("Dragonfly: %v", err)
	}
	if df.GlobalChannels != 0 {
		t.Errorf("512-node dragonfly has %d global channels, want 0", df.GlobalChannels)
	}
	if df.Routers != 32 {
		t.Errorf("Routers = %d, want 32", df.Routers)
	}
}

func TestFigure19Ordering(t *testing.T) {
	// The headline of Figure 19: for large machines,
	// dragonfly < flattened butterfly < folded Clos < 3-D torus.
	m := DefaultModel()
	for _, n := range []int{8192, 16384, 65536} {
		df, err := m.Dragonfly(n)
		if err != nil {
			t.Fatalf("Dragonfly(%d): %v", n, err)
		}
		fb, err := m.FlattenedButterfly(n)
		if err != nil {
			t.Fatalf("FlattenedButterfly(%d): %v", n, err)
		}
		fc, err := m.FoldedClos(n)
		if err != nil {
			t.Fatalf("FoldedClos(%d): %v", n, err)
		}
		tor, err := m.Torus3D(n)
		if err != nil {
			t.Fatalf("Torus3D(%d): %v", n, err)
		}
		if !(df.PerNode() <= fb.PerNode() && fb.PerNode() < fc.PerNode() && fc.PerNode() < tor.PerNode()) {
			t.Errorf("N=%d: ordering violated: df=%.2f fb=%.2f clos=%.2f torus=%.2f",
				n, df.PerNode(), fb.PerNode(), fc.PerNode(), tor.PerNode())
		}
	}
}

func TestFigure19Savings(t *testing.T) {
	// Shape targets: noticeable savings vs the flattened butterfly at
	// 64K (paper: ~20%), >40% vs the folded Clos, and >60% vs the torus.
	m := DefaultModel()
	df, _ := m.Dragonfly(65536)
	fb, _ := m.FlattenedButterfly(65536)
	fc, _ := m.FoldedClos(65536)
	tor, _ := m.Torus3D(65536)
	if s := 1 - df.PerNode()/fb.PerNode(); s < 0.10 {
		t.Errorf("dragonfly saves only %.0f%% vs flattened butterfly at 64K, want >= 10%%", s*100)
	}
	if s := 1 - df.PerNode()/fc.PerNode(); s < 0.35 {
		t.Errorf("dragonfly saves only %.0f%% vs folded Clos at 64K, want >= 35%%", s*100)
	}
	if s := 1 - df.PerNode()/tor.PerNode(); s < 0.60 {
		t.Errorf("dragonfly saves only %.0f%% vs torus at 64K, want >= 60%%", s*100)
	}
}

func TestFigure18Comparison(t *testing.T) {
	m := DefaultModel()
	c, err := m.CompareAt64K()
	if err != nil {
		t.Fatalf("CompareAt64K: %v", err)
	}
	// The flattened butterfly needs ~2x the global cables of the
	// dragonfly at 64K.
	if c.GlobalCableRatio < 1.7 || c.GlobalCableRatio > 2.1 {
		t.Errorf("global cable ratio = %v, want ~2", c.GlobalCableRatio)
	}
	// And spends roughly half its router ports on global channels,
	// versus the dragonfly's roughly a third (25% on radix-64 parts).
	if c.FBGlobalPortShare < 0.4 || c.FBGlobalPortShare > 0.55 {
		t.Errorf("FB global port share = %v, want ~0.5", c.FBGlobalPortShare)
	}
	if c.DFGlobalPortShare >= c.FBGlobalPortShare {
		t.Error("dragonfly should spend a smaller port share on global channels")
	}
}

func TestTable2Shapes(t *testing.T) {
	rows := Table2()
	if len(rows) != 2 {
		t.Fatalf("Table2 rows = %d", len(rows))
	}
	fb, df := rows[0], rows[1]
	if fb.MinHopsGlobal != 2 || df.MinHopsGlobal != 1 {
		t.Error("minimal global hops: fb should be 2, dragonfly 1")
	}
	if df.AvgCableE <= fb.AvgCableE {
		t.Error("dragonfly trades longer cables (avg 2E/3 vs E/3)")
	}
	if df.MaxCableE != 2 || fb.MaxCableE != 1 {
		t.Error("max cable lengths should be 2E and E")
	}
}

func TestCostMonotoneInNodes(t *testing.T) {
	// Total cost must grow with machine size for every topology.
	m := DefaultModel()
	type fn func(int) (Breakdown, error)
	for name, f := range map[string]fn{
		"dragonfly": m.Dragonfly,
		"fb":        m.FlattenedButterfly,
		"clos":      m.FoldedClos,
		"torus":     m.Torus3D,
	} {
		prev := 0.0
		for _, n := range []int{2048, 4096, 8192, 16384, 32768, 65536} {
			b, err := f(n)
			if err != nil {
				t.Fatalf("%s(%d): %v", name, n, err)
			}
			if b.Total() < prev {
				t.Errorf("%s: total cost shrank at N=%d", name, n)
			}
			prev = b.Total()
		}
	}
}

func TestFoldedClosLevelsRaiseCost(t *testing.T) {
	// Crossing a level boundary (2048 -> 2049 nodes with k=64) adds a
	// whole level of channels: per-node cost must jump.
	m := DefaultModel()
	two, err := m.FoldedClos(2048)
	if err != nil {
		t.Fatal(err)
	}
	three, err := m.FoldedClos(4096)
	if err != nil {
		t.Fatal(err)
	}
	if three.PerNode() <= two.PerNode() {
		t.Errorf("3-level Clos per-node cost %v should exceed 2-level %v", three.PerNode(), two.PerNode())
	}
}

// TestMachineCostMatchesDragonflyConfig: pricing a built canonical
// dragonfly through the generic Machine path must agree with the
// analytic DragonflyConfig path on every census and cost component —
// the generic path reads the Descriptor, the analytic one closed
// forms, and the conformance suite ties Descriptor to the wiring.
func TestMachineCostMatchesDragonflyConfig(t *testing.T) {
	m := DefaultModel()
	d, err := topology.NewDragonfly(16, 16, 16, 0)
	if err != nil {
		t.Fatal(err)
	}
	got, err := m.Machine(d)
	if err != nil {
		t.Fatal(err)
	}
	want, err := m.DragonflyConfig(d.Nodes(), 16, 16, 16)
	if err != nil {
		t.Fatal(err)
	}
	if got.Nodes != want.Nodes || got.Routers != want.Routers || got.RouterRadix != want.RouterRadix {
		t.Errorf("structure mismatch: Machine %+v vs DragonflyConfig %+v", got, want)
	}
	if got.LocalChannels != want.LocalChannels || got.GlobalChannels != want.GlobalChannels || got.TerminalChannels != want.TerminalChannels {
		t.Errorf("census mismatch: Machine %d/%d/%d vs DragonflyConfig %d/%d/%d",
			got.TerminalChannels, got.LocalChannels, got.GlobalChannels,
			want.TerminalChannels, want.LocalChannels, want.GlobalChannels)
	}
	if diff := got.Total() - want.Total(); diff < -1e-6 || diff > 1e-6 {
		t.Errorf("total cost mismatch: Machine %.4f vs DragonflyConfig %.4f", got.Total(), want.Total())
	}
}

// TestMachineCostNonUniformRadix: a Dragonfly+ machine's router cost
// must charge only the ports each router actually has, not
// routers x max radix.
func TestMachineCostNonUniformRadix(t *testing.T) {
	m := DefaultModel()
	dp, err := topology.NewDragonflyPlus(2, 4, 4, 8, 0)
	if err != nil {
		t.Fatal(err)
	}
	got, err := m.Machine(dp)
	if err != nil {
		t.Fatal(err)
	}
	ports := 0
	for r := 0; r < dp.Routers(); r++ {
		ports += dp.Radix(r)
	}
	if ports >= dp.Routers()*dp.RouterRadix() {
		t.Fatalf("test machine is uniform (ports=%d, routers*radix=%d); pick an asymmetric one",
			ports, dp.Routers()*dp.RouterRadix())
	}
	want := float64(ports) * m.Router.PerPort(dp.RouterRadix())
	if diff := got.RouterCost - want; diff < -1e-6 || diff > 1e-6 {
		t.Errorf("router cost %.4f, want per-actual-port %.4f", got.RouterCost, want)
	}
}
