package cost

import (
	"fmt"
	"math"
)

// Layout is the machine-room packaging model (Section 2): nodes are
// packaged into cabinets, cabinets stand on a near-square floor grid,
// and inter-cabinet cables run Manhattan routes through overhead trays
// plus a fixed overhead for the vertical drops at both ends.
type Layout struct {
	// NodesPerCabinet is the packaging density (default 256, roughly a
	// BlackWidow-class cabinet of high-radix routers).
	NodesPerCabinet int
	// CabinetPitchM is the centre-to-centre spacing of adjacent cabinets
	// in metres, aisles amortised in.
	CabinetPitchM float64
	// CableOverheadM is added to every inter-cabinet cable for the
	// vertical runs and slack at both ends.
	CableOverheadM float64
	// BackplaneM is the effective length of an intra-cabinet (backplane
	// or short copper) connection.
	BackplaneM float64
}

// DefaultLayout returns the packaging parameters used by the cost
// studies.
func DefaultLayout() Layout {
	return Layout{
		NodesPerCabinet: 256,
		CabinetPitchM:   1.5,
		CableOverheadM:  4,
		BackplaneM:      1,
	}
}

// Validate reports the first problem with the layout.
func (l Layout) Validate() error {
	switch {
	case l.NodesPerCabinet < 1:
		return fmt.Errorf("cost: NodesPerCabinet must be >= 1 (got %d)", l.NodesPerCabinet)
	case l.CabinetPitchM <= 0:
		return fmt.Errorf("cost: CabinetPitchM must be positive (got %v)", l.CabinetPitchM)
	case l.CableOverheadM < 0:
		return fmt.Errorf("cost: CableOverheadM must be >= 0 (got %v)", l.CableOverheadM)
	case l.BackplaneM <= 0:
		return fmt.Errorf("cost: BackplaneM must be positive (got %v)", l.BackplaneM)
	}
	return nil
}

// Cabinets returns the cabinet count for n nodes.
func (l Layout) Cabinets(n int) int {
	return (n + l.NodesPerCabinet - 1) / l.NodesPerCabinet
}

// GridSide returns the side of the near-square cabinet grid.
func (l Layout) GridSide(cabinets int) int {
	s := int(math.Ceil(math.Sqrt(float64(cabinets))))
	if s < 1 {
		s = 1
	}
	return s
}

// MachineDimensionM returns E, the physical dimension of the machine
// (Table 2's unit): the side of the cabinet grid in metres.
func (l Layout) MachineDimensionM(n int) float64 {
	return float64(l.GridSide(l.Cabinets(n))) * l.CabinetPitchM
}

// CabinetDistanceM returns the cable length between cabinets a and b
// (indices in row-major grid order): Manhattan distance plus overhead.
// A zero distance (same cabinet) returns the backplane length.
func (l Layout) CabinetDistanceM(a, b, cabinets int) float64 {
	if a == b {
		return l.BackplaneM
	}
	side := l.GridSide(cabinets)
	ax, ay := a%side, a/side
	bx, by := b%side, b/side
	manhattan := math.Abs(float64(ax-bx)) + math.Abs(float64(ay-by))
	return manhattan*l.CabinetPitchM + l.CableOverheadM
}

// MeanPairDistanceM returns the average inter-cabinet cable length over
// all unordered cabinet pairs, the expected length of a cable between
// two uniformly random distinct cabinets.
func (l Layout) MeanPairDistanceM(cabinets int) float64 {
	if cabinets < 2 {
		return l.BackplaneM
	}
	// Mean Manhattan distance over a side×side grid (the partially
	// filled last row is a second-order effect): for one axis of length
	// s the mean |ax-bx| over all ordered pairs is (s²-1)/(3s).
	s := float64(l.GridSide(cabinets))
	axis := (s*s - 1) / (3 * s)
	return 2*axis*l.CabinetPitchM + l.CableOverheadM
}
