package cost

import "fmt"

// PowerModel estimates network signalling power from the technology
// characteristics of Table 1. The paper notes (Section 5) that the
// dragonfly's cost reduction "also translates to reduction of power":
// fewer cables, and in particular fewer optical transceivers, directly
// reduce the interconnect's power draw.
type PowerModel struct {
	// OpticalWPerCable is the active-component power of one optical
	// cable (Table 1: 1.2 W for Intel Connects Cables).
	OpticalWPerCable float64
	// ElectricalWPerCable is the transceiver power of one electrical
	// cable (Table 1: 20 mW).
	ElectricalWPerCable float64
	// BackplaneWPerChannel approximates a backplane trace's share of the
	// SerDes power.
	BackplaneWPerChannel float64
}

// DefaultPowerModel returns Table 1's figures.
func DefaultPowerModel() PowerModel {
	return PowerModel{
		OpticalWPerCable:     1.2,
		ElectricalWPerCable:  0.02,
		BackplaneWPerChannel: 0.02,
	}
}

// PowerBreakdown itemises signalling power for one configuration.
type PowerBreakdown struct {
	// Name describes the configuration.
	Name string
	// Nodes is the terminal count.
	Nodes int
	// OpticalCables counts cables run optically (length >= the 8 m
	// threshold); ElectricalCables the rest of the inter-router cables;
	// BackplaneChannels the terminal attachments.
	OpticalCables, ElectricalCables, BackplaneChannels int
	// TotalW is the signalling power in watts.
	TotalW float64
}

// PerNodeW returns watts per terminal.
func (p PowerBreakdown) PerNodeW() float64 {
	if p.Nodes == 0 {
		return 0
	}
	return p.TotalW / float64(p.Nodes)
}

// String renders a summary line.
func (p PowerBreakdown) String() string {
	return fmt.Sprintf("%s: %.2f W/node (%d optical, %d electrical cables)",
		p.Name, p.PerNodeW(), p.OpticalCables, p.ElectricalCables)
}

// Power estimates the signalling power of a costed configuration: global
// cables at or beyond the optical threshold draw optical-transceiver
// power, shorter cables electrical power, and terminal channels
// backplane power.
func (pm PowerModel) Power(b Breakdown) PowerBreakdown {
	p := PowerBreakdown{Name: b.Name, Nodes: b.Nodes}
	p.BackplaneChannels = b.TerminalChannels
	if b.AvgGlobalLenM >= OpticalThresholdM {
		p.OpticalCables = b.GlobalChannels
		p.ElectricalCables = b.LocalChannels
	} else {
		p.ElectricalCables = b.GlobalChannels + b.LocalChannels
	}
	p.TotalW = float64(p.OpticalCables)*pm.OpticalWPerCable +
		float64(p.ElectricalCables)*pm.ElectricalWPerCable +
		float64(p.BackplaneChannels)*pm.BackplaneWPerChannel
	return p
}

// ComparePower returns the per-node power of the four Figure 19
// topologies at the given machine size.
func (m Model) ComparePower(n int) ([]PowerBreakdown, error) {
	pm := DefaultPowerModel()
	type gen struct {
		name string
		fn   func(int) (Breakdown, error)
	}
	var out []PowerBreakdown
	for _, g := range []gen{
		{"dragonfly", m.Dragonfly},
		{"flattened butterfly", m.FlattenedButterfly},
		{"folded Clos", m.FoldedClos},
		{"3-D torus", m.Torus3D},
	} {
		b, err := g.fn(n)
		if err != nil {
			return nil, fmt.Errorf("cost: power for %s: %w", g.name, err)
		}
		out = append(out, pm.Power(b))
	}
	return out, nil
}
