package cost

import "testing"

func TestPowerModelClassifiesCables(t *testing.T) {
	pm := DefaultPowerModel()
	m := DefaultModel()
	df, err := m.Dragonfly(16384)
	if err != nil {
		t.Fatal(err)
	}
	p := pm.Power(df)
	if p.Nodes != df.Nodes {
		t.Errorf("nodes %d != %d", p.Nodes, df.Nodes)
	}
	// A 16K dragonfly's global cables are long: they must be optical.
	if p.OpticalCables != df.GlobalChannels {
		t.Errorf("optical cables %d, want %d", p.OpticalCables, df.GlobalChannels)
	}
	if p.TotalW <= 0 || p.PerNodeW() <= 0 {
		t.Error("non-positive power")
	}
}

func TestPowerComparisonFavoursDragonflyOverButterflyAtScale(t *testing.T) {
	// Fewer optical transceivers -> lower power at 64K, the paper's
	// Section 5 claim (via [14]).
	m := DefaultModel()
	ps, err := m.ComparePower(65536)
	if err != nil {
		t.Fatal(err)
	}
	if len(ps) != 4 {
		t.Fatalf("got %d breakdowns", len(ps))
	}
	df, fb := ps[0], ps[1]
	if df.PerNodeW() >= fb.PerNodeW() {
		t.Errorf("dragonfly %.3f W/node should beat flattened butterfly %.3f at 64K",
			df.PerNodeW(), fb.PerNodeW())
	}
	// The all-electrical torus draws the least signalling power but pays
	// for it in cost — sanity-check it is reported as all-electrical.
	tor := ps[3]
	if tor.OpticalCables != 0 {
		t.Errorf("torus reported %d optical cables", tor.OpticalCables)
	}
}

func TestPowerEmptyBreakdown(t *testing.T) {
	var b Breakdown
	p := DefaultPowerModel().Power(b)
	if p.PerNodeW() != 0 || p.TotalW != 0 {
		t.Error("empty breakdown should cost no power")
	}
}
