package cost

import (
	"fmt"

	"dragonfly/internal/topology"
)

// Breakdown itemises the network cost of one configuration. All money
// figures are in $ per Gb/s of channel bandwidth, matching Figure 2's
// units; PerNode divides by the terminal count to give Figure 19's
// y-axis.
type Breakdown struct {
	// Name describes the configuration.
	Name string
	// Nodes is the terminal count N.
	Nodes int
	// Routers and RouterRadix describe the switch inventory.
	Routers, RouterRadix int
	// TerminalChannels, LocalChannels, GlobalChannels count the
	// bidirectional cables of each class.
	TerminalChannels, LocalChannels, GlobalChannels int
	// AvgGlobalLenM is the mean global cable length.
	AvgGlobalLenM float64
	// RouterCost, TerminalCost, LocalCost, GlobalCost are the totals.
	RouterCost, TerminalCost, LocalCost, GlobalCost float64
}

// Total returns the full network cost.
func (b Breakdown) Total() float64 {
	return b.RouterCost + b.TerminalCost + b.LocalCost + b.GlobalCost
}

// PerNode returns the cost per terminal, Figure 19's metric.
func (b Breakdown) PerNode() float64 {
	if b.Nodes == 0 {
		return 0
	}
	return b.Total() / float64(b.Nodes)
}

// String renders a one-line summary.
func (b Breakdown) String() string {
	return fmt.Sprintf("%s: N=%d $%.2f/node (router %.1f%%, global %.1f%%)",
		b.Name, b.Nodes, b.PerNode(),
		100*b.RouterCost/b.Total(), 100*b.GlobalCost/b.Total())
}

// Model bundles the pricing inputs shared by every topology.
type Model struct {
	Layout Layout
	Router RouterModel
}

// DefaultModel returns the pricing used for the paper's comparisons.
func DefaultModel() Model {
	return Model{Layout: DefaultLayout(), Router: DefaultRouterModel()}
}

// jumperM is the length of a short inter-cabinet jumper between
// neighbouring cabinets of the same group or pod.
func (m Model) jumperM() float64 {
	return m.Layout.CabinetPitchM + 2
}

// localCableM returns the effective local-channel length for a group or
// dimension slice spanning `cabinets` cabinets: backplane runs when it
// fits in one cabinet, a mix of backplane and jumpers otherwise.
func (m Model) localCableM(cabinets int) float64 {
	if cabinets <= 1 {
		return m.Layout.BackplaneM
	}
	// With the group striped across cabinets, roughly half of the
	// fully-connected pairs cross a cabinet boundary.
	return 0.5*m.Layout.BackplaneM + 0.5*m.jumperM()
}

// Dragonfly prices a dragonfly sized like the paper's Figure 18
// configuration: p = a = h = 16 (radix-47 routers from the radix-64
// class), 256-terminal groups packaged one group per cabinet, and as
// many groups as the node count requires (up to a*h+1 = 257 groups,
// 65792 terminals — covering Figure 19's full x-axis).
func (m Model) Dragonfly(n int) (Breakdown, error) {
	// Below ~800 terminals a single fully-connected group of radix-64
	// routers suffices, and the dragonfly degenerates to a 1-D flattened
	// butterfly with identical cost (Section 5: "for networks up to 1K
	// nodes ... the cost of the two networks are identical").
	if s := (n + 15) / 16; s >= 2 && 16+s-1 <= 64 {
		fb, err := m.flattenedButterfly1D(16, s)
		if err != nil {
			return Breakdown{}, err
		}
		fb.Name = fmt.Sprintf("dragonfly(single group = 1-D flattened butterfly, a=%d)", s)
		return fb, nil
	}
	return m.DragonflyConfig(n, 16, 16, 16)
}

// flattenedButterfly1D prices one fully connected dimension of s routers
// with concentration c — a single cabinet-scale machine when it fits.
func (m Model) flattenedButterfly1D(c, s int) (Breakdown, error) {
	if err := m.Layout.Validate(); err != nil {
		return Breakdown{}, err
	}
	nodes := c * s
	radix := c + s - 1
	cabinets := m.Layout.Cabinets(nodes)
	b := Breakdown{
		Name:        fmt.Sprintf("flattened-butterfly(c=%d dims=[%d])", c, s),
		Nodes:       nodes,
		Routers:     s,
		RouterRadix: radix,
	}
	b.TerminalChannels = nodes
	b.LocalChannels = s * (s - 1) / 2
	b.RouterCost = float64(s*radix) * m.Router.PerPort(radix)
	b.TerminalCost = float64(nodes) * Electrical.CostPerGb(m.Layout.BackplaneM)
	b.LocalCost = float64(b.LocalChannels) * CheapestCable(m.localCableM(cabinets))
	return b, nil
}

// DragonflyConfig prices a dragonfly with explicit per-router
// parameters. Groups are placed in consecutive cabinets; every pair of
// groups is connected, and the average global cable length is the mean
// cabinet-pair distance (2E/3 in Table 2's units).
func (m Model) DragonflyConfig(n, p, a, h int) (Breakdown, error) {
	if err := m.Layout.Validate(); err != nil {
		return Breakdown{}, err
	}
	if p < 1 || a < 1 || h < 1 {
		return Breakdown{}, fmt.Errorf("cost: bad dragonfly parameters p=%d a=%d h=%d", p, a, h)
	}
	groupNodes := a * p
	groups := (n + groupNodes - 1) / groupNodes
	if groups < 2 {
		groups = 2
	}
	if groups > a*h+1 {
		return Breakdown{}, fmt.Errorf("cost: %d nodes need %d groups, more than a*h+1=%d", n, groups, a*h+1)
	}
	nodes := groups * groupNodes
	radix := p + a + h - 1
	routers := groups * a
	cabinets := m.Layout.Cabinets(nodes)
	groupCabinets := m.Layout.Cabinets(groupNodes)

	b := Breakdown{
		Name:        fmt.Sprintf("dragonfly(p=%d a=%d h=%d g=%d)", p, a, h, groups),
		Nodes:       nodes,
		Routers:     routers,
		RouterRadix: radix,
	}
	b.TerminalChannels = nodes
	b.LocalChannels = groups * a * (a - 1) / 2
	b.GlobalChannels = groups * a * h / 2
	b.AvgGlobalLenM = m.Layout.MeanPairDistanceM(cabinets)

	b.RouterCost = float64(routers*radix) * m.Router.PerPort(radix)
	b.TerminalCost = float64(b.TerminalChannels) * Electrical.CostPerGb(m.Layout.BackplaneM)
	b.LocalCost = float64(b.LocalChannels) * CheapestCable(m.localCableM(groupCabinets))
	b.GlobalCost = float64(b.GlobalChannels) * CheapestCable(b.AvgGlobalLenM)
	return b, nil
}

// Machine prices any built topology.Machine from its structure
// descriptor and wiring census, with the same placement assumptions as
// DragonflyConfig: groups packed into consecutive cabinets, local
// channels on backplanes or short jumpers depending on the group's
// cabinet span, global channels at the mean cabinet-pair distance.
// Router cost sums the actual per-router port counts (leaf/spine and
// partially-populated machines pay only for the ports they have) at
// the machine's maximum-radix price class.
func (m Model) Machine(mach topology.Machine) (Breakdown, error) {
	if err := m.Layout.Validate(); err != nil {
		return Breakdown{}, err
	}
	desc := mach.Describe()
	b := Breakdown{
		Name:        mach.String(),
		Nodes:       desc.Terminals,
		Routers:     desc.Routers,
		RouterRadix: desc.RouterRadix,
	}
	b.TerminalChannels = desc.TerminalChannels
	b.LocalChannels = desc.LocalChannels
	b.GlobalChannels = desc.GlobalChannels

	ports := 0
	for r := 0; r < desc.Routers; r++ {
		ports += mach.Radix(r)
	}
	b.RouterCost = float64(ports) * m.Router.PerPort(desc.RouterRadix)
	b.TerminalCost = float64(desc.TerminalChannels) * Electrical.CostPerGb(m.Layout.BackplaneM)
	groupCabinets := m.Layout.Cabinets(desc.TerminalsPerGroup)
	b.LocalCost = float64(desc.LocalChannels) * CheapestCable(m.localCableM(groupCabinets))
	if desc.GlobalChannels > 0 {
		b.AvgGlobalLenM = m.Layout.MeanPairDistanceM(m.Layout.Cabinets(desc.Terminals))
		b.GlobalCost = float64(desc.GlobalChannels) * CheapestCable(b.AvgGlobalLenM)
	}
	return b, nil
}

// FlattenedButterfly prices a k-ary n-flat sized for n terminals from
// radix-64 routers with concentration 16: dimension sizes of 16 with the
// last dimension shrunk to fit. Dimension 0 stays inside a cabinet
// (16 routers × 16 terminals = 256 nodes); the channels of every higher
// dimension run along one axis of the cabinet floor, giving the E/3
// average length of Table 2.
func (m Model) FlattenedButterfly(n int) (Breakdown, error) {
	if err := m.Layout.Validate(); err != nil {
		return Breakdown{}, err
	}
	const conc, size = 16, 16
	dims := []int{size}
	capacity := conc * size
	for capacity < n {
		// Grow by adding a dimension sized to fit, capped at `size`.
		need := (n + capacity - 1) / capacity
		if need > size {
			need = size
		}
		if need < 2 {
			need = 2
		}
		dims = append(dims, need)
		capacity *= need
	}
	routers := 1
	radix := conc
	for _, s := range dims {
		routers *= s
		radix += s - 1
	}
	nodes := routers * conc
	b := Breakdown{
		Name:        fmt.Sprintf("flattened-butterfly(c=%d dims=%v)", conc, dims),
		Nodes:       nodes,
		Routers:     routers,
		RouterRadix: radix,
	}
	b.TerminalChannels = nodes
	b.LocalChannels = routers * (dims[0] - 1) / 2
	b.RouterCost = float64(routers*radix) * m.Router.PerPort(radix)
	b.TerminalCost = float64(nodes) * Electrical.CostPerGb(m.Layout.BackplaneM)
	b.LocalCost = float64(b.LocalChannels) * Electrical.CostPerGb(m.Layout.BackplaneM)

	// Higher dimensions: R*(s-1)/2 channels each. The flattened
	// butterfly's wiring constrains the floor plan: every global
	// dimension is laid out along its own axis of the cabinet floor
	// (Figure 18(a)), so a dimension of size s spans s cabinet positions
	// and its channels have mean length (s²-1)/(3s) cabinet pitches —
	// Table 2's E/3. A 2-D flattened butterfly therefore stretches its
	// single global dimension across the whole machine, while the
	// dragonfly packs the same cabinets into a compact square; this is
	// the "shorter average cable length at small sizes" advantage of
	// Section 5.
	var globalCost, totalLen float64
	globals := 0
	for d := 1; d < len(dims); d++ {
		ch := routers * (dims[d] - 1) / 2
		span := float64(dims[d])
		meanM := (span*span - 1) / (3 * span) * m.Layout.CabinetPitchM
		length := meanM + m.Layout.CableOverheadM
		globalCost += float64(ch) * CheapestCable(length)
		totalLen += float64(ch) * length
		globals += ch
	}
	b.GlobalChannels = globals
	b.GlobalCost = globalCost
	if globals > 0 {
		b.AvgGlobalLenM = totalLen / float64(globals)
	}
	return b, nil
}

// FoldedClos prices a radix-64 folded Clos (fat tree). The first level
// gap stays inside a pod of cabinets (short jumpers); every higher level
// crosses the machine like a random cabinet pair.
func (m Model) FoldedClos(n int) (Breakdown, error) {
	if err := m.Layout.Validate(); err != nil {
		return Breakdown{}, err
	}
	fc, err := topology.NewFoldedClos(n, 64)
	if err != nil {
		return Breakdown{}, err
	}
	cabinets := m.Layout.Cabinets(n)
	b := Breakdown{
		Name:        fmt.Sprintf("folded-clos(k=64 levels=%d)", fc.Levels),
		Nodes:       n,
		Routers:     fc.Routers(),
		RouterRadix: 64,
	}
	b.TerminalChannels = n
	b.RouterCost = float64(fc.Routers()*64) * m.Router.PerPort(64)
	b.TerminalCost = float64(n) * Electrical.CostPerGb(m.Layout.BackplaneM)

	var globalCost, totalLen float64
	globals := 0
	for lvl := 0; lvl < fc.Levels-1; lvl++ {
		ch := fc.LevelChannels(lvl)
		var length float64
		if lvl == 0 {
			// Leaf to first aggregation level: within a pod of cabinets.
			length = m.jumperM()
			b.LocalChannels += ch
			b.LocalCost += float64(ch) * CheapestCable(length)
			continue
		}
		length = m.Layout.MeanPairDistanceM(cabinets)
		globalCost += float64(ch) * CheapestCable(length)
		totalLen += float64(ch) * length
		globals += ch
	}
	b.GlobalChannels = globals
	b.GlobalCost = globalCost
	if globals > 0 {
		b.AvgGlobalLenM = totalLen / float64(globals)
	}
	return b, nil
}

// Torus3D prices a 3-D torus: one node per radix-7 router, three
// bidirectional channels per node, all short electrical cables thanks to
// the folded layout, but many of them — and expensive low-radix router
// ports (Section 5).
func (m Model) Torus3D(n int) (Breakdown, error) {
	if err := m.Layout.Validate(); err != nil {
		return Breakdown{}, err
	}
	tor, err := topology.NewTorus3D(n)
	if err != nil {
		return Breakdown{}, err
	}
	nodes := tor.Nodes()
	b := Breakdown{
		Name:        fmt.Sprintf("torus3d(%dx%dx%d)", tor.X, tor.Y, tor.Z),
		Nodes:       nodes,
		Routers:     nodes,
		RouterRadix: 7,
	}
	b.TerminalChannels = nodes
	b.LocalChannels = tor.Channels()
	// A folded torus keeps every neighbour cable within two cabinet
	// pitches.
	length := 2*m.Layout.CabinetPitchM + 2
	b.RouterCost = float64(nodes*7) * m.Router.PerPort(7)
	b.TerminalCost = float64(nodes) * Electrical.CostPerGb(m.Layout.BackplaneM)
	b.LocalCost = float64(b.LocalChannels) * CheapestCable(length)
	return b, nil
}

// Comparison64K reproduces Figure 18: the 64K-node dragonfly
// (p=a=h=16, 256-terminal groups, one cabinet per group) versus the
// 64K-node flattened butterfly (c=16, three dimensions of 16), reporting
// the global-cable counts and the share of router ports spent on global
// channels.
type Comparison64K struct {
	Dragonfly, FlattenedButterfly Breakdown
	// GlobalCableRatio is FB global cables / dragonfly global cables
	// (the paper: 2×).
	GlobalCableRatio float64
	// DFGlobalPortShare and FBGlobalPortShare are the fraction of router
	// ports used by global channels (the paper: 25% vs 50% of the
	// non-terminal ports).
	DFGlobalPortShare, FBGlobalPortShare float64
}

// CompareAt64K computes the Figure 18 comparison.
func (m Model) CompareAt64K() (Comparison64K, error) {
	df, err := m.DragonflyConfig(65536, 16, 16, 16)
	if err != nil {
		return Comparison64K{}, err
	}
	fb, err := m.FlattenedButterfly(65536)
	if err != nil {
		return Comparison64K{}, err
	}
	c := Comparison64K{Dragonfly: df, FlattenedButterfly: fb}
	c.GlobalCableRatio = float64(fb.GlobalChannels) / float64(df.GlobalChannels)
	c.DFGlobalPortShare = float64(2*df.GlobalChannels) / float64(df.Routers*df.RouterRadix)
	c.FBGlobalPortShare = float64(2*fb.GlobalChannels) / float64(fb.Routers*fb.RouterRadix)
	return c, nil
}

// TopologyHops summarises Table 2: hop counts and cable lengths of the
// flattened butterfly and the dragonfly in units of the machine
// dimension E.
type TopologyHops struct {
	Topology                          string
	MinHopsLocal, MinHopsGlobal       int
	NonminHopsLocal, NonminHopsGlobal int
	AvgCableE, MaxCableE              float64
}

// Table2 returns the paper's Table 2.
func Table2() []TopologyHops {
	return []TopologyHops{
		{
			Topology:     "flattened butterfly",
			MinHopsLocal: 1, MinHopsGlobal: 2,
			NonminHopsLocal: 2, NonminHopsGlobal: 4,
			AvgCableE: 1.0 / 3, MaxCableE: 1,
		},
		{
			Topology:     "dragonfly",
			MinHopsLocal: 2, MinHopsGlobal: 1,
			NonminHopsLocal: 3, NonminHopsGlobal: 2,
			AvgCableE: 2.0 / 3, MaxCableE: 2,
		},
	}
}
