package experiments

import (
	"fmt"
	"io"
	"sync"
	"time"

	"dragonfly/internal/parallel"
)

// Exhibit is anything the harness can render.
type Exhibit interface {
	Render(w io.Writer)
}

// Runner executes experiments by paper exhibit id.
type Runner struct {
	// Scale controls simulation fidelity.
	Scale Scale
	// Log, when non-nil, receives progress lines.
	Log io.Writer
	// Jobs caps the number of concurrently running simulations
	// (0 = GOMAXPROCS). Results are identical for every value; only
	// wall-clock time changes.
	Jobs int
}

// Names lists every experiment id in paper order.
func Names() []string {
	return []string{
		"fig1", "table1", "fig2", "fig4", "fig6",
		"fig8", "fig9", "fig10", "fig11", "fig12", "fig14", "fig16",
		"fig18", "fig19", "table2", "resilience", "transient", "topozoo",
		"multitenant",
	}
}

// scaled returns the runner's scale bound to its worker pool: one pool
// per Runner invocation, shared by every exhibit, series and load point
// underneath, so Jobs bounds the whole run. An explicitly pooled Scale
// (Scale.WithPool) is kept as-is.
func (r Runner) scaled() Scale {
	if r.Scale.pool != nil {
		return r.Scale
	}
	pool := parallel.New(r.Jobs)
	if r.Log != nil {
		pool.SetLog(r.Log)
	}
	return r.Scale.WithPool(pool)
}

// Run executes one experiment by id and returns its exhibits.
func (r Runner) Run(name string) ([]Exhibit, error) {
	return r.run(r.scaled(), name)
}

func (r Runner) run(s Scale, name string) ([]Exhibit, error) {
	wrapF := func(f *Figure, err error) ([]Exhibit, error) {
		if err != nil {
			return nil, err
		}
		return []Exhibit{f}, nil
	}
	wrapFs := func(fs []*Figure, err error) ([]Exhibit, error) {
		if err != nil {
			return nil, err
		}
		out := make([]Exhibit, len(fs))
		for i, f := range fs {
			out[i] = f
		}
		return out, nil
	}
	switch name {
	case "fig1":
		return []Exhibit{Fig01()}, nil
	case "table1":
		return []Exhibit{Table01()}, nil
	case "fig2":
		return []Exhibit{Fig02()}, nil
	case "fig4":
		return []Exhibit{Fig04()}, nil
	case "fig6":
		return []Exhibit{Fig06()}, nil
	case "fig8":
		return wrapFs(Fig08(s))
	case "fig9":
		return wrapF(Fig09(s))
	case "fig10":
		return wrapFs(Fig10(s))
	case "fig11":
		return wrapFs(Fig11(s))
	case "fig12":
		return wrapFs(Fig12(s))
	case "fig14":
		return wrapF(Fig14(s))
	case "fig16":
		return wrapFs(Fig16(s))
	case "fig18":
		t, err := Fig18()
		if err != nil {
			return nil, err
		}
		return []Exhibit{t}, nil
	case "fig19":
		f, err := Fig19()
		if err != nil {
			return nil, err
		}
		return []Exhibit{f}, nil
	case "table2":
		return []Exhibit{Table02()}, nil
	case "resilience":
		return wrapFs(Resilience(s))
	case "transient":
		return wrapFs(Transient(s))
	case "multitenant":
		return wrapFs(MultiTenant(s))
	case "topozoo":
		t, err := TopoZoo(s)
		if err != nil {
			return nil, err
		}
		return []Exhibit{t}, nil
	default:
		return nil, fmt.Errorf("experiments: unknown experiment %q (known: %v)", name, Names())
	}
}

// collect executes the named experiments concurrently on the runner's
// worker pool (at most Jobs simulations at once across all of them) and
// returns their exhibits grouped per name, in the given order, with a
// parallel error slice.
func (r Runner) collect(s Scale, names []string) ([][]Exhibit, []error) {
	var logMu sync.Mutex
	logf := func(format string, args ...any) {
		if r.Log == nil {
			return
		}
		logMu.Lock()
		defer logMu.Unlock()
		fmt.Fprintf(r.Log, format, args...)
	}
	logf("running %d experiments on %d workers\n", len(names), s.Pool().Jobs())

	exhibits := make([][]Exhibit, len(names))
	errs := make([]error, len(names))
	s.Pool().ForEach(len(names), func(i int) error {
		start := time.Now()
		exhibits[i], errs[i] = r.run(s, names[i])
		logf("%s done in %.1fs\n", names[i], time.Since(start).Seconds())
		return nil
	})
	return exhibits, errs
}

// RunAll executes every experiment and renders the full report to w.
// The experiments run concurrently (see collect); the report is
// rendered strictly in paper order once everything has finished, so the
// output is byte-identical to a serial run. Like the serial runner,
// exhibits preceding the first failure are still rendered before the
// error is returned.
func (r Runner) RunAll(w io.Writer) error {
	names := Names()
	exhibits, errs := r.collect(r.scaled(), names)
	for i, name := range names {
		if errs[i] != nil {
			return fmt.Errorf("experiments: %s: %w", name, errs[i])
		}
		for _, e := range exhibits[i] {
			e.Render(w)
		}
	}
	return nil
}

// RunJSON executes the named experiments (every experiment when names
// is empty) and writes one machine-readable report to w. Unlike
// RunAll, nothing is written on error: a JSON consumer either gets a
// well-formed report or none.
func (r Runner) RunJSON(w io.Writer, names []string) error {
	if len(names) == 0 {
		names = Names()
	}
	exhibits, errs := r.collect(r.scaled(), names)
	for i, name := range names {
		if errs[i] != nil {
			return fmt.Errorf("experiments: %s: %w", name, errs[i])
		}
	}
	return WriteJSON(w, names, exhibits)
}
