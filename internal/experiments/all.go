package experiments

import (
	"fmt"
	"io"
	"time"
)

// Exhibit is anything the harness can render.
type Exhibit interface {
	Render(w io.Writer)
}

// Runner executes experiments by paper exhibit id.
type Runner struct {
	// Scale controls simulation fidelity.
	Scale Scale
	// Log, when non-nil, receives progress lines.
	Log io.Writer
}

// Names lists every experiment id in paper order.
func Names() []string {
	return []string{
		"fig1", "table1", "fig2", "fig4", "fig6",
		"fig8", "fig9", "fig10", "fig11", "fig12", "fig14", "fig16",
		"fig18", "fig19", "table2",
	}
}

// Run executes one experiment by id and returns its exhibits.
func (r Runner) Run(name string) ([]Exhibit, error) {
	wrapF := func(f *Figure, err error) ([]Exhibit, error) {
		if err != nil {
			return nil, err
		}
		return []Exhibit{f}, nil
	}
	wrapFs := func(fs []*Figure, err error) ([]Exhibit, error) {
		if err != nil {
			return nil, err
		}
		out := make([]Exhibit, len(fs))
		for i, f := range fs {
			out[i] = f
		}
		return out, nil
	}
	switch name {
	case "fig1":
		return []Exhibit{Fig01()}, nil
	case "table1":
		return []Exhibit{Table01()}, nil
	case "fig2":
		return []Exhibit{Fig02()}, nil
	case "fig4":
		return []Exhibit{Fig04()}, nil
	case "fig6":
		return []Exhibit{Fig06()}, nil
	case "fig8":
		return wrapFs(Fig08(r.Scale))
	case "fig9":
		return wrapF(Fig09(r.Scale))
	case "fig10":
		return wrapFs(Fig10(r.Scale))
	case "fig11":
		return wrapFs(Fig11(r.Scale))
	case "fig12":
		return wrapFs(Fig12(r.Scale))
	case "fig14":
		return wrapF(Fig14(r.Scale))
	case "fig16":
		return wrapFs(Fig16(r.Scale))
	case "fig18":
		t, err := Fig18()
		if err != nil {
			return nil, err
		}
		return []Exhibit{t}, nil
	case "fig19":
		f, err := Fig19()
		if err != nil {
			return nil, err
		}
		return []Exhibit{f}, nil
	case "table2":
		return []Exhibit{Table02()}, nil
	default:
		return nil, fmt.Errorf("experiments: unknown experiment %q (known: %v)", name, Names())
	}
}

// RunAll executes every experiment and renders the full report to w.
func (r Runner) RunAll(w io.Writer) error {
	for _, name := range Names() {
		start := time.Now()
		if r.Log != nil {
			fmt.Fprintf(r.Log, "running %s...\n", name)
		}
		exhibits, err := r.Run(name)
		if err != nil {
			return fmt.Errorf("experiments: %s: %w", name, err)
		}
		for _, e := range exhibits {
			e.Render(w)
		}
		if r.Log != nil {
			fmt.Fprintf(r.Log, "  %s done in %.1fs\n", name, time.Since(start).Seconds())
		}
	}
	return nil
}
