package experiments

import (
	"fmt"

	"dragonfly/internal/cost"
	"dragonfly/internal/topology"
)

// Fig01 reproduces Figure 1: the router radix required to connect N
// terminals with at most one global hop when no virtual-router grouping
// is used (k ≈ 2√N).
func Fig01() *Figure {
	f := &Figure{
		ID:     "Figure 1",
		Title:  "Radix required for a one-global-hop flat network",
		XLabel: "N",
		YLabel: "radix k",
	}
	s := Series{Name: "flat network"}
	for _, n := range []int{100, 300, 1000, 3000, 10000, 30000, 100000, 300000, 1000000} {
		s.X = append(s.X, float64(n))
		s.Y = append(s.Y, float64(topology.FlatNetworkRadix(n)))
	}
	f.Series = append(f.Series, s)
	f.Notes = append(f.Notes, "k grows as ~2*sqrt(N): beyond any feasible radix at 1M nodes, motivating the virtual-router group")
	return f
}

// Table01 reproduces Table 1: the cable technologies.
func Table01() *Table {
	t := &Table{
		ID:     "Table 1",
		Title:  "Cable technologies",
		Header: []string{"cable", "distance", "data rate", "power", "E/bit"},
	}
	for _, c := range cost.Table1() {
		t.Rows = append(t.Rows, []string{
			c.Name,
			fmt.Sprintf("<%.0fm", c.MaxLengthM),
			fmt.Sprintf("%.0fGb/s", c.DataRateGbps),
			fmt.Sprintf("%.3gW", c.PowerW),
			fmt.Sprintf("%.0fpJ", c.EnergyPJPerBit),
		})
	}
	return t
}

// Fig02 reproduces Figure 2: cable cost versus length for electrical and
// active optical signalling.
func Fig02() *Figure {
	f := &Figure{
		ID:     "Figure 2",
		Title:  "Cable cost vs length (electrical vs active optical)",
		XLabel: "length (m)",
		YLabel: "$/Gb/s",
	}
	elec := Series{Name: "electrical"}
	opt := Series{Name: "optical"}
	cheap := Series{Name: "cheapest"}
	for l := 0.0; l <= 100; l += 10 {
		elec.X = append(elec.X, l)
		elec.Y = append(elec.Y, cost.Electrical.CostPerGb(l))
		opt.X = append(opt.X, l)
		opt.Y = append(opt.Y, cost.Optical.CostPerGb(l))
		cheap.X = append(cheap.X, l)
		cheap.Y = append(cheap.Y, cost.CheapestCable(l))
	}
	f.Series = []Series{elec, opt, cheap}
	f.Notes = append(f.Notes, fmt.Sprintf("fit crossover at %.1fm (paper quotes ~10m; methodology switches at %.0fm)",
		cost.Crossover(cost.Electrical, cost.Optical), cost.OpticalThresholdM))
	return f
}

// Fig04 reproduces Figure 4: the scalability of the balanced dragonfly
// as router radix increases.
func Fig04() *Figure {
	f := &Figure{
		ID:     "Figure 4",
		Title:  "Balanced dragonfly scalability vs router radix",
		XLabel: "radix k",
		YLabel: "max N",
	}
	s := Series{Name: "dragonfly"}
	flat := Series{Name: "flat network"}
	for k := 4; k <= 80; k += 4 {
		s.X = append(s.X, float64(k))
		s.Y = append(s.Y, float64(topology.BalancedMaxNodes(k)))
		flat.X = append(flat.X, float64(k))
		flat.Y = append(flat.Y, float64(topology.FlatNetworkMaxNodes(k)))
	}
	f.Series = []Series{s, flat}
	f.Notes = append(f.Notes,
		fmt.Sprintf("radix-64 balanced dragonfly scales to %d nodes with diameter 3 (paper: >256K)", topology.BalancedMaxNodes(64)))
	return f
}

// Fig06 reproduces Figure 6: alternative group organisations raising the
// effective radix k' for the same router radix.
func Fig06() *Table {
	t := &Table{
		ID:     "Figure 6",
		Title:  "Group organisations for k=7 routers (p=2, h=2)",
		Header: []string{"group network", "routers/group", "k'", "max groups", "max N"},
	}
	// k' = a(p+h) for a group of a routers; up to a*h+1 groups connect.
	add := func(name string, a, h, p int) {
		kp := a * (p + h)
		maxGroups := a*h + 1
		t.Rows = append(t.Rows, []string{
			name,
			fmt.Sprintf("%d", a),
			fmt.Sprintf("%d", kp),
			fmt.Sprintf("%d", maxGroups),
			fmt.Sprintf("%d", a*p*maxGroups),
		})
	}
	add("1-D flattened butterfly (Figure 5)", 4, 2, 2)
	add("2-D flattened butterfly (Figure 6a)", 4, 2, 2)
	add("3-D flattened butterfly (Figure 6b)", 8, 2, 2)
	t.Notes = append(t.Notes,
		"the 3-D group doubles k' to 32 with the same k=7 router (paper Section 3.2)",
		"max N above uses the maximal one-channel-per-group-pair configuration N = ap(ah+1) = 272; the paper quotes N = 1056 for this variant, which requires packing more global connectivity per pair than that formula admits — we report the conservative bound",
		"the 2-D variant keeps k'=16 but trades ports for intra-group packaging locality")
	return t
}

// Fig18 reproduces Figure 18: the 64K-node dragonfly versus flattened
// butterfly comparison.
func Fig18() (*Table, error) {
	m := cost.DefaultModel()
	c, err := m.CompareAt64K()
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:     "Figure 18",
		Title:  "64K-node comparison: dragonfly vs flattened butterfly",
		Header: []string{"topology", "routers", "radix", "global cables", "global port share", "$/node"},
	}
	for _, b := range []struct {
		bd    cost.Breakdown
		share float64
	}{{c.Dragonfly, c.DFGlobalPortShare}, {c.FlattenedButterfly, c.FBGlobalPortShare}} {
		t.Rows = append(t.Rows, []string{
			b.bd.Name,
			fmt.Sprintf("%d", b.bd.Routers),
			fmt.Sprintf("%d", b.bd.RouterRadix),
			fmt.Sprintf("%d", b.bd.GlobalChannels),
			fmt.Sprintf("%.0f%%", 100*b.share),
			fmt.Sprintf("%.2f", b.bd.PerNode()),
		})
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("flattened butterfly needs %.2fx the global cables of the dragonfly (paper: 2x)", c.GlobalCableRatio))
	return t, nil
}

// Fig19 reproduces Figure 19: network cost per node versus machine size
// for the four topologies.
func Fig19() (*Figure, error) {
	m := cost.DefaultModel()
	f := &Figure{
		ID:     "Figure 19",
		Title:  "Cost per node vs network size",
		XLabel: "N",
		YLabel: "$/node",
	}
	type gen struct {
		name string
		fn   func(int) (cost.Breakdown, error)
	}
	gens := []gen{
		{"dragonfly", m.Dragonfly},
		{"flat bfly", m.FlattenedButterfly},
		{"folded Clos", m.FoldedClos},
		{"3-D torus", m.Torus3D},
	}
	sizes := []int{512, 1024, 2048, 4096, 8192, 16384, 20000, 32768, 65536}
	for _, g := range gens {
		s := Series{Name: g.name}
		for _, n := range sizes {
			b, err := g.fn(n)
			if err != nil {
				return nil, fmt.Errorf("%s at N=%d: %w", g.name, n, err)
			}
			s.X = append(s.X, float64(n))
			s.Y = append(s.Y, b.PerNode())
		}
		f.Series = append(f.Series, s)
	}
	df, _ := m.Dragonfly(65536)
	fb, _ := m.FlattenedButterfly(65536)
	fc, _ := m.FoldedClos(65536)
	tor, _ := m.Torus3D(65536)
	f.Notes = append(f.Notes,
		fmt.Sprintf("at 64K: dragonfly saves %.0f%% vs flattened butterfly (paper ~20%%), %.0f%% vs folded Clos (paper ~52%%), %.0f%% vs torus (paper >60%%)",
			100*(1-df.PerNode()/fb.PerNode()), 100*(1-df.PerNode()/fc.PerNode()), 100*(1-df.PerNode()/tor.PerNode())))
	return f, nil
}

// Table02 reproduces Table 2: the topology comparison of hop counts and
// cable lengths.
func Table02() *Table {
	t := &Table{
		ID:     "Table 2",
		Title:  "Topology comparison (hops; cable length in units of E)",
		Header: []string{"topology", "min diameter", "non-min diameter", "avg cable", "max cable"},
	}
	for _, r := range cost.Table2() {
		t.Rows = append(t.Rows, []string{
			r.Topology,
			fmt.Sprintf("%dhl + %dhg", r.MinHopsLocal, r.MinHopsGlobal),
			fmt.Sprintf("%dhl + %dhg", r.NonminHopsLocal, r.NonminHopsGlobal),
			fmt.Sprintf("%.2gE", r.AvgCableE),
			fmt.Sprintf("%.2gE", r.MaxCableE),
		})
	}
	t.Notes = append(t.Notes, "the dragonfly trades fewer global cables for longer ones — the shape optical signalling rewards")
	return t
}
