// Package experiments regenerates every table and figure of the paper's
// evaluation: each Fig/Table function reproduces the corresponding
// exhibit as structured series or rows, rendered in plain text the way
// the paper reports them. The cmd/dfly-experiments tool and the
// repository's benchmark harness are thin wrappers around this package.
package experiments

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"dragonfly/internal/parallel"
)

// Scale selects simulation fidelity: the paper-scale runs use the 1K
// evaluation network with full warm-up, Quick shrinks everything for
// tests and smoke runs.
type Scale struct {
	// Warmup, Measure, Drain are the phase lengths in cycles.
	Warmup, Measure, Drain int
	// StallLimit is the deadlock-detector horizon.
	StallLimit int64
	// Coarse halves the number of load points per sweep.
	Coarse bool
	// Small switches the simulated machine from the paper's 1K-node
	// evaluation network (p=h=4, a=8) to the 72-node example (p=h=2,
	// a=4).
	Small bool

	// pool runs the scale's simulations; nil means the process-wide
	// shared pool. Set with WithPool (the Runner does this from its Jobs
	// field) so one pool bounds a whole experiment run.
	pool *parallel.Pool
}

// WithPool returns a copy of s whose simulations run on pool. Results
// are identical for every pool — only wall-clock time changes.
func (s Scale) WithPool(pool *parallel.Pool) Scale {
	s.pool = pool
	return s
}

// Pool returns the worker pool this scale's simulations run on,
// defaulting to the process-wide shared pool.
func (s Scale) Pool() *parallel.Pool {
	if s.pool != nil {
		return s.pool
	}
	return parallel.Default()
}

// Paper is the evaluation fidelity of Section 4.2.
func Paper() Scale {
	return Scale{Warmup: 3000, Measure: 2000, Drain: 20000, StallLimit: 10000}
}

// Quick is a reduced fidelity for tests and smoke runs.
func Quick() Scale {
	return Scale{Warmup: 400, Measure: 400, Drain: 6000, StallLimit: 5000, Coarse: true, Small: true}
}

// Series is one curve of a figure. The JSON tags are part of the
// versioned report schema (obs.SchemaVersion) emitted by WriteJSON.
type Series struct {
	// Name labels the curve (routing algorithm, buffer depth, ...).
	Name string `json:"name"`
	// X and Y are the data points.
	X []float64 `json:"x"`
	Y []float64 `json:"y"`
	// Saturated marks points where the network could not sustain the
	// offered load; their latency values are drain-censored.
	Saturated []bool `json:"saturated,omitempty"`
}

// Figure is a reproduced plot: a set of series over a shared x-axis
// meaning.
type Figure struct {
	// ID is the paper exhibit ("Figure 8(a)").
	ID string `json:"id"`
	// Title describes the experiment.
	Title string `json:"title"`
	// XLabel and YLabel name the axes.
	XLabel string `json:"x_label"`
	YLabel string `json:"y_label"`
	// Series holds the curves.
	Series []Series `json:"series"`
	// Notes records deviations and observations for EXPERIMENTS.md.
	Notes []string `json:"notes,omitempty"`
}

// Render writes the figure as an aligned text table: the union of x
// values in the first column, one column per series.
func (f *Figure) Render(w io.Writer) {
	fmt.Fprintf(w, "== %s — %s ==\n", f.ID, f.Title)
	// Merge the series' x values and sort the union numerically: series
	// saturate (and stop) at different loads, so first-series order would
	// emit the later series' extra points out of order.
	seen := map[float64]bool{}
	var xs []float64
	for _, s := range f.Series {
		for _, x := range s.X {
			if !seen[x] {
				seen[x] = true
				xs = append(xs, x)
			}
		}
	}
	sort.Float64s(xs)
	fmt.Fprintf(w, "%-12s", f.XLabel)
	for _, s := range f.Series {
		fmt.Fprintf(w, " %16s", s.Name)
	}
	fmt.Fprintf(w, "   (%s)\n", f.YLabel)
	for _, x := range xs {
		fmt.Fprintf(w, "%-12.4g", x)
		for _, s := range f.Series {
			cell := strings.Repeat(" ", 16)
			for i, sx := range s.X {
				if sx == x {
					mark := ""
					if i < len(s.Saturated) && s.Saturated[i] {
						mark = "*"
					}
					cell = fmt.Sprintf("%15.4g%1s", s.Y[i], mark)
					break
				}
			}
			fmt.Fprintf(w, " %s", cell)
		}
		fmt.Fprintln(w)
	}
	for _, n := range f.Notes {
		fmt.Fprintf(w, "note: %s\n", n)
	}
	fmt.Fprintln(w)
}

// Table is a reproduced table exhibit.
type Table struct {
	// ID is the paper exhibit ("Table 1").
	ID string `json:"id"`
	// Title describes the contents.
	Title string `json:"title"`
	// Header and Rows hold the cells.
	Header []string   `json:"header"`
	Rows   [][]string `json:"rows"`
	// Notes records deviations and observations.
	Notes []string `json:"notes,omitempty"`
}

// Render writes the table with aligned columns.
func (t *Table) Render(w io.Writer) {
	fmt.Fprintf(w, "== %s — %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			fmt.Fprintf(w, "%-*s  ", widths[i], c)
		}
		fmt.Fprintln(w)
	}
	line(t.Header)
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "note: %s\n", n)
	}
	fmt.Fprintln(w)
}

// loads builds a load sweep [from, to] with the given step, honouring
// Scale.Coarse by doubling the step.
func (s Scale) loads(from, to, step float64) []float64 {
	if s.Coarse {
		step *= 2
	}
	var out []float64
	for x := from; x <= to+1e-9; x += step {
		out = append(out, round3(x))
	}
	return out
}

func round3(x float64) float64 {
	return float64(int(x*1000+0.5)) / 1000
}
