package experiments

import (
	"bytes"
	"fmt"
	"strings"
	"testing"
)

func TestAnalyticExhibits(t *testing.T) {
	fig1 := Fig01()
	if len(fig1.Series) == 0 || len(fig1.Series[0].X) == 0 {
		t.Error("Fig01 empty")
	}
	// Radix must be monotone in N.
	ys := fig1.Series[0].Y
	for i := 1; i < len(ys); i++ {
		if ys[i] < ys[i-1] {
			t.Error("Fig01 radix not monotone")
		}
	}

	t1 := Table01()
	if len(t1.Rows) != 3 {
		t.Errorf("Table01 rows = %d, want 3", len(t1.Rows))
	}

	fig2 := Fig02()
	if len(fig2.Series) != 3 {
		t.Errorf("Fig02 series = %d, want 3", len(fig2.Series))
	}
	// At 100m the optical model must be cheaper.
	elec, opt := fig2.Series[0], fig2.Series[1]
	if opt.Y[len(opt.Y)-1] >= elec.Y[len(elec.Y)-1] {
		t.Error("Fig02: optical should win at 100m")
	}
	if opt.Y[0] <= elec.Y[0] {
		t.Error("Fig02: electrical should win at 0m")
	}

	fig4 := Fig04()
	df := fig4.Series[0]
	flat := fig4.Series[1]
	// The dragonfly must dominate the flat network by orders of
	// magnitude at high radix.
	last := len(df.Y) - 1
	if df.Y[last] < 100*flat.Y[last] {
		t.Errorf("Fig04: dragonfly %v vs flat %v, want >100x", df.Y[last], flat.Y[last])
	}

	fig6 := Fig06()
	if len(fig6.Rows) != 3 {
		t.Errorf("Fig06 rows = %d, want 3", len(fig6.Rows))
	}

	t2 := Table02()
	if len(t2.Rows) != 2 {
		t.Errorf("Table02 rows = %d", len(t2.Rows))
	}
}

func TestCostExhibits(t *testing.T) {
	fig18, err := Fig18()
	if err != nil {
		t.Fatalf("Fig18: %v", err)
	}
	if len(fig18.Rows) != 2 {
		t.Errorf("Fig18 rows = %d", len(fig18.Rows))
	}
	fig19, err := Fig19()
	if err != nil {
		t.Fatalf("Fig19: %v", err)
	}
	if len(fig19.Series) != 4 {
		t.Errorf("Fig19 series = %d, want 4", len(fig19.Series))
	}
	// At the largest size the dragonfly must be the cheapest.
	n := len(fig19.Series[0].Y) - 1
	dfy := fig19.Series[0].Y[n]
	for _, s := range fig19.Series[1:] {
		if s.Y[len(s.Y)-1] < dfy {
			t.Errorf("Fig19: %s cheaper than dragonfly at max size", s.Name)
		}
	}
}

func TestQuickSimulationExhibits(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation experiments")
	}
	s := Quick()
	figs8, err := Fig08(s)
	if err != nil {
		t.Fatalf("Fig08: %v", err)
	}
	if len(figs8) != 2 {
		t.Fatalf("Fig08 produced %d figures", len(figs8))
	}
	// Figure 8(b): MIN's worst-case curve must saturate early.
	var minSer *Series
	for i := range figs8[1].Series {
		if figs8[1].Series[i].Name == "MIN" {
			minSer = &figs8[1].Series[i]
		}
	}
	if minSer == nil {
		t.Fatal("MIN series missing")
	}
	sawSat := false
	for _, sat := range minSer.Saturated {
		sawSat = sawSat || sat
	}
	if !sawSat {
		t.Error("Fig 8(b): MIN never saturated on WC traffic")
	}

	fig9, err := Fig09(s)
	if err != nil {
		t.Fatalf("Fig09: %v", err)
	}
	// UGAL-G must load the minimal channel (slot 0) hardest.
	for _, ser := range fig9.Series {
		if ser.Name != "UGAL-G" {
			continue
		}
		for i := 1; i < len(ser.Y); i++ {
			if ser.Y[i] > ser.Y[0]+0.05 {
				t.Errorf("Fig09 UGAL-G: channel %d utilisation %.2f exceeds minimal channel %.2f", i, ser.Y[i], ser.Y[0])
			}
		}
	}

	fig12, err := Fig12(s)
	if err != nil {
		t.Fatalf("Fig12: %v", err)
	}
	if len(fig12) != 2 {
		t.Fatalf("Fig12 produced %d figures", len(fig12))
	}
}

func TestRunnerUnknown(t *testing.T) {
	r := Runner{Scale: Quick()}
	if _, err := r.Run("nope"); err == nil {
		t.Error("unknown experiment accepted")
	}
}

func TestRunnerAnalyticOnly(t *testing.T) {
	r := Runner{Scale: Quick()}
	for _, name := range []string{"fig1", "table1", "fig2", "fig4", "fig6", "fig18", "fig19", "table2"} {
		ex, err := r.Run(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		var buf bytes.Buffer
		for _, e := range ex {
			e.Render(&buf)
		}
		if buf.Len() == 0 {
			t.Errorf("%s rendered nothing", name)
		}
	}
}

func TestFigureRender(t *testing.T) {
	f := &Figure{
		ID: "Figure X", Title: "test", XLabel: "x", YLabel: "y",
		Series: []Series{
			{Name: "a", X: []float64{1, 2}, Y: []float64{10, 20}, Saturated: []bool{false, true}},
			{Name: "b", X: []float64{1}, Y: []float64{11}},
		},
		Notes: []string{"hello"},
	}
	var buf bytes.Buffer
	f.Render(&buf)
	out := buf.String()
	for _, want := range []string{"Figure X", "20*", "note: hello", "a", "b"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q in:\n%s", want, out)
		}
	}
}

func TestFigureRenderSortsXUnion(t *testing.T) {
	// Series that saturate at different loads contribute different x
	// sets; the merged axis must come out numerically sorted no matter
	// the series order.
	f := &Figure{
		ID: "Figure S", Title: "sort", XLabel: "x", YLabel: "y",
		Series: []Series{
			{Name: "late", X: []float64{0.3, 0.5}, Y: []float64{3, 5}},
			{Name: "early", X: []float64{0.1, 0.2}, Y: []float64{1, 2}},
		},
	}
	var buf bytes.Buffer
	f.Render(&buf)
	var xs []float64
	for _, line := range strings.Split(buf.String(), "\n") {
		var x float64
		if _, err := fmt.Sscanf(line, "%g", &x); err == nil {
			xs = append(xs, x)
		}
	}
	if len(xs) != 4 {
		t.Fatalf("expected 4 data rows, got %v in:\n%s", xs, buf.String())
	}
	for i := 1; i < len(xs); i++ {
		if xs[i] < xs[i-1] {
			t.Fatalf("x axis not sorted: %v", xs)
		}
	}
}

func TestTableRender(t *testing.T) {
	tb := &Table{
		ID: "Table X", Title: "test",
		Header: []string{"col1", "c2"},
		Rows:   [][]string{{"a", "bbb"}},
	}
	var buf bytes.Buffer
	tb.Render(&buf)
	if !strings.Contains(buf.String(), "col1") || !strings.Contains(buf.String(), "bbb") {
		t.Errorf("table render broken:\n%s", buf.String())
	}
}

func TestScaleLoads(t *testing.T) {
	s := Scale{}
	ls := s.loads(0.1, 0.5, 0.1)
	if len(ls) != 5 {
		t.Errorf("loads = %v, want 5 points", ls)
	}
	s.Coarse = true
	if got := len(s.loads(0.1, 0.5, 0.1)); got != 3 {
		t.Errorf("coarse loads = %d points, want 3", got)
	}
}

func TestMultiTenantExhibit(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation experiments")
	}
	figs, err := MultiTenant(Quick())
	if err != nil {
		t.Fatalf("MultiTenant: %v", err)
	}
	if len(figs) != 2 {
		t.Fatalf("MultiTenant produced %d figures, want 2", len(figs))
	}
	for _, f := range figs {
		if len(f.Series) != 3 {
			t.Fatalf("%s has %d series, want 3 (alone, confined, spraying)", f.ID, len(f.Series))
		}
		for _, ser := range f.Series {
			if len(ser.X) == 0 || len(ser.X) != len(ser.Y) {
				t.Fatalf("%s series %s malformed: %d x, %d y", f.ID, ser.Name, len(ser.X), len(ser.Y))
			}
		}
	}
	// The baseline must carry real traffic, and sharing the machine with
	// a machine-wide-spraying bursty tenant must not *improve* latency.
	var b bytes.Buffer
	figs[0].Render(&b)
	if !strings.Contains(b.String(), "packet-weighted solo mix") {
		t.Error("latency figure notes missing the interference accounting")
	}
	for _, ser := range figs[1].Series {
		sum := 0.0
		for _, y := range ser.Y {
			sum += y
		}
		if sum <= 0 {
			t.Errorf("throughput series %q accepted nothing", ser.Name)
		}
	}
}

func TestTransientExhibit(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation experiments")
	}
	s := Quick()
	figs, err := Transient(s)
	if err != nil {
		t.Fatalf("Transient: %v", err)
	}
	if len(figs) != 2 {
		t.Fatalf("Transient produced %d figures, want 2", len(figs))
	}
	for _, f := range figs {
		if len(f.Series) != 2 {
			t.Fatalf("%s has %d series, want 2", f.ID, len(f.Series))
		}
		for _, ser := range f.Series {
			if len(ser.X) == 0 || len(ser.X) != len(ser.Y) {
				t.Fatalf("%s series %s malformed: %d x, %d y", f.ID, ser.Name, len(ser.X), len(ser.Y))
			}
		}
	}
	// Acceptance: UGAL-L recovers to at least 95% of its pre-fault
	// accepted rate after the repair.
	fail, recov, end := s.TransientCycles()
	for _, ser := range figs[0].Series {
		if ser.Name != "UGAL-L" {
			continue
		}
		pre, during, post := transientPhaseMeans(ser.X, ser.Y, fail, recov, end)
		if pre <= 0 {
			t.Fatalf("UGAL-L pre-fault throughput %.4f, expected > 0", pre)
		}
		if post < 0.95*pre {
			t.Errorf("UGAL-L recovered to %.4f of pre-fault %.4f (%.0f%%), want >= 95%%", post, pre, 100*post/pre)
		}
		t.Logf("UGAL-L: pre %.4f during %.4f post %.4f (%.1f%% recovery)", pre, during, post, 100*post/pre)
	}
	var b bytes.Buffer
	figs[0].Render(&b)
	if !strings.Contains(b.String(), "killed in flight") {
		t.Error("throughput figure notes missing the fault accounting")
	}
}
