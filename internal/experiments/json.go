package experiments

import (
	"encoding/json"
	"fmt"
	"io"

	"dragonfly/internal/obs"
)

// jsonReport is the machine-readable envelope WriteJSON emits. It
// carries the same schema version as the run reports in internal/obs so
// a consumer checks one number for the whole toolchain.
type jsonReport struct {
	SchemaVersion int           `json:"schema_version"`
	Kind          string        `json:"kind"`
	Exhibits      []jsonExhibit `json:"exhibits"`
}

// jsonExhibit is one exhibit of the report: exactly one of Figure and
// Table is set, discriminated by Type.
type jsonExhibit struct {
	// Experiment is the id the exhibit was produced by ("fig8",
	// "transient", ...).
	Experiment string  `json:"experiment"`
	Type       string  `json:"type"`
	Figure     *Figure `json:"figure,omitempty"`
	Table      *Table  `json:"table,omitempty"`
}

// WriteJSON writes the exhibits of the named experiments as one
// versioned JSON report. The two slices are parallel: exhibits[i]
// holds the exhibits produced by names[i], as returned by Runner.Run.
func WriteJSON(w io.Writer, names []string, exhibits [][]Exhibit) error {
	rep := jsonReport{SchemaVersion: obs.SchemaVersion, Kind: "experiments"}
	for i, name := range names {
		for _, e := range exhibits[i] {
			je := jsonExhibit{Experiment: name}
			switch v := e.(type) {
			case *Figure:
				je.Type = "figure"
				je.Figure = v
			case *Table:
				je.Type = "table"
				je.Table = v
			default:
				return fmt.Errorf("experiments: %s: unknown exhibit type %T", name, e)
			}
			rep.Exhibits = append(rep.Exhibits, je)
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}
