package experiments

import (
	"encoding/json"
	"io"
	"strings"
	"testing"

	"dragonfly/internal/obs"
)

func TestWriteJSONEnvelope(t *testing.T) {
	fig := &Figure{ID: "Figure 9", Title: "t", XLabel: "x", YLabel: "y",
		Series: []Series{{Name: "MIN", X: []float64{0.1}, Y: []float64{12}}}}
	tab := &Table{ID: "Table 1", Title: "t", Header: []string{"a"}, Rows: [][]string{{"1"}}}

	var buf strings.Builder
	err := WriteJSON(&buf, []string{"fig9", "table1"}, [][]Exhibit{{fig}, {tab}})
	if err != nil {
		t.Fatal(err)
	}

	var rep struct {
		SchemaVersion int    `json:"schema_version"`
		Kind          string `json:"kind"`
		Exhibits      []struct {
			Experiment string          `json:"experiment"`
			Type       string          `json:"type"`
			Figure     json.RawMessage `json:"figure"`
			Table      json.RawMessage `json:"table"`
		} `json:"exhibits"`
	}
	if err := json.Unmarshal([]byte(buf.String()), &rep); err != nil {
		t.Fatal(err)
	}
	if rep.SchemaVersion != obs.SchemaVersion || rep.Kind != "experiments" {
		t.Errorf("envelope = version %d kind %q, want %d %q",
			rep.SchemaVersion, rep.Kind, obs.SchemaVersion, "experiments")
	}
	if len(rep.Exhibits) != 2 {
		t.Fatalf("%d exhibits, want 2", len(rep.Exhibits))
	}
	if e := rep.Exhibits[0]; e.Experiment != "fig9" || e.Type != "figure" || e.Figure == nil || e.Table != nil {
		t.Errorf("first exhibit = %+v, want a fig9 figure without table payload", e)
	}
	if e := rep.Exhibits[1]; e.Experiment != "table1" || e.Type != "table" || e.Table == nil || e.Figure != nil {
		t.Errorf("second exhibit = %+v, want a table1 table without figure payload", e)
	}
}

func TestWriteJSONRejectsUnknownExhibit(t *testing.T) {
	var buf strings.Builder
	err := WriteJSON(&buf, []string{"x"}, [][]Exhibit{{stubExhibit{}}})
	if err == nil {
		t.Fatal("unknown exhibit type marshalled without error")
	}
	if buf.Len() != 0 {
		t.Errorf("partial output written before the error: %q", buf.String())
	}
}

type stubExhibit struct{}

func (stubExhibit) Render(io.Writer) {}
