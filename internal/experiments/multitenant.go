package experiments

import (
	"fmt"

	"dragonfly/internal/core"
	"dragonfly/internal/obs"
	"dragonfly/internal/sim"
	"dragonfly/internal/workload"
)

// mtLoad is the offered load of every tenant scenario: the steady
// tenant runs at it continuously, the bursty tenant averages to it over
// its ON/OFF cycle (so its ON intensity is 3x).
const mtLoad = 0.3

// mtOn and mtOff are the bursty tenant's mean dwell times. With
// off = 2*on the ON bursts offer 0.6 flits/cycle/terminal — well above
// the steady tenant's rate but below saturation, so interference shows
// up as latency, not as a collapsed sweep.
const (
	mtOn  = 100
	mtOff = 200
)

// MultiTenant is the slice-placement interference exhibit (not a paper
// figure — the paper simulates one job at a time): two tenants share
// the evaluation machine under group-aligned slice placement, the
// SlicedDragonfly planning model applied to terminals. Tenant A drives
// steady Bernoulli traffic from the first third of the groups; tenant B
// drives ON/OFF bursty traffic from the second third; the last third is
// silent headroom. B runs either confined to its slice (deferred
// destinations redirected to slice members — the placement model) or
// spraying (deferred destinations fall through to machine-wide uniform
// random, crossing A's groups).
//
// The machine-wide mean mixes the two tenant populations — confined B
// concentrates its own traffic over its slice's global cables, spraying
// B enjoys the silent third — so the shared mean alone cannot attribute
// interference. The exhibit therefore also runs each tenant solo and
// reports the shared run's *excess* over the packet-weighted mix of the
// solo baselines: what sharing costs beyond what each job costs itself.
// Expected shape: confinement keeps the excess near zero (the jobs'
// minimal paths touch disjoint routers and cables; only adaptive
// non-minimal detours leak across slices), spraying buys B cheap paths
// at the price of a visible shared excess, and the windowed latency
// breathes with B's ON/OFF duty cycle either way.
func MultiTenant(s Scale) ([]*Figure, error) {
	sys, err := s.evalSystem(16)
	if err != nil {
		return nil, err
	}
	// Group-aligned slices: terminals are contiguous per group
	// (t -> group t/(p*a)), so a slice of whole groups is a contiguous
	// terminal range.
	perGroup := 4 * 8
	if s.Small {
		perGroup = 2 * 4
	}
	terminals := sys.Topo.Nodes()
	groups := terminals / perGroup
	sliceA := groupRange(0, groups/3, perGroup)
	sliceB := groupRange(groups/3, 2*groups/3, perGroup)

	type scenario struct {
		name    string
		tenants func() ([]workload.Tenant, error)
	}
	bursty := func() (sim.Source, error) {
		return workload.NewOnOff(terminals, mtOn, mtOff, false)
	}
	tenantA := func() workload.Tenant {
		return workload.Tenant{Name: "steady", Source: sim.DefaultSource(), Terminals: sliceA, Confined: true}
	}
	tenantB := func(confined bool) (workload.Tenant, error) {
		b, err := bursty()
		if err != nil {
			return workload.Tenant{}, err
		}
		return workload.Tenant{Name: "bursty", Source: b, Terminals: sliceB, Confined: confined}, nil
	}
	// The first three scenarios are the figure series; the two solo-B
	// runs feed only the interference accounting in the notes.
	scenarios := []scenario{
		{"A alone", func() ([]workload.Tenant, error) {
			return []workload.Tenant{tenantA()}, nil
		}},
		{"A+B confined", func() ([]workload.Tenant, error) {
			b, err := tenantB(true)
			if err != nil {
				return nil, err
			}
			return []workload.Tenant{tenantA(), b}, nil
		}},
		{"A+B spraying", func() ([]workload.Tenant, error) {
			b, err := tenantB(false)
			if err != nil {
				return nil, err
			}
			return []workload.Tenant{tenantA(), b}, nil
		}},
		{"B alone confined", func() ([]workload.Tenant, error) {
			b, err := tenantB(true)
			if err != nil {
				return nil, err
			}
			return []workload.Tenant{b}, nil
		}},
		{"B alone spraying", func() ([]workload.Tenant, error) {
			b, err := tenantB(false)
			if err != nil {
				return nil, err
			}
			return []workload.Tenant{b}, nil
		}},
	}

	window := int64(s.Measure) / 8
	if window < 10 {
		window = 10
	}
	horizon := int64(s.Warmup + s.Measure)

	lat := &Figure{
		ID: "MultiTenant (a)", Title: fmt.Sprintf("Packet latency under shared slice placement (%d groups: A steady UR, B ON/OFF %d/%d, last third silent), UGAL-L at %.2f load", groups, mtOn, mtOff, mtLoad),
		XLabel: "cycle", YLabel: "avg latency of packets ejected in window (cycles)",
	}
	thr := &Figure{
		ID: "MultiTenant (b)", Title: "Accepted throughput through the same scenarios (machine-wide, silent third included)",
		XLabel: "cycle", YLabel: "accepted load per window (flits/cycle/terminal)",
	}

	type mtOut struct {
		x, lat, thr []float64
		mean        float64
		count       int64
	}
	out := make([]mtOut, len(scenarios))
	err = s.Pool().ForEach(len(scenarios), func(i int) error {
		var runErr error
		s.Pool().Work(func() {
			runErr = func() error {
				tenants, err := scenarios[i].tenants()
				if err != nil {
					return err
				}
				mt, err := workload.NewMultiTenant(terminals, tenants)
				if err != nil {
					return err
				}
				win := obs.NewWindows(obs.WindowsConfig{Width: window, Terminals: terminals})
				res, err := sys.RunW(core.AlgUGALL, core.Workload{Traffic: "ur"}, mtLoad, s.runCfg(),
					core.WithSource(mt), core.WithCollector(win))
				if err != nil {
					return err
				}
				for _, w := range win.Windows() {
					if w.End > horizon {
						break // drain-phase tail: no injection, not part of the series
					}
					out[i].x = append(out[i].x, float64(w.End))
					out[i].lat = append(out[i].lat, w.LatencyMean)
					out[i].thr = append(out[i].thr, w.Accepted)
				}
				out[i].mean = res.Latency.Mean()
				out[i].count = res.Latency.Count()
				return nil
			}()
		})
		if runErr != nil {
			return fmt.Errorf("%s: %w", scenarios[i].name, runErr)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}

	for i, sc := range scenarios[:3] {
		lat.Series = append(lat.Series, Series{Name: sc.name, X: out[i].x, Y: out[i].lat})
		thr.Series = append(thr.Series, Series{Name: sc.name, X: out[i].x, Y: out[i].thr})
	}
	// Interference accounting: the shared run's mean against the
	// packet-weighted mix of the two solo baselines. Excess ≈ 0 means the
	// jobs did not slow each other beyond what each costs itself.
	mix := func(a, b mtOut) float64 {
		return (a.mean*float64(a.count) + b.mean*float64(b.count)) / float64(a.count+b.count)
	}
	confMix, sprayMix := mix(out[0], out[3]), mix(out[0], out[4])
	lat.Notes = append(lat.Notes, fmt.Sprintf(
		"solo means: A %.1f, B confined %.1f (slice-local UR concentrates over %d groups' cables), B spraying %.1f (machine-wide incl. the silent third)",
		out[0].mean, out[3].mean, len(sliceB)/perGroup, out[4].mean))
	lat.Notes = append(lat.Notes, fmt.Sprintf(
		"shared vs packet-weighted solo mix: confined %.2f vs %.2f (excess %+.1f%%), spraying %.2f vs %.2f (excess %+.1f%%)",
		out[1].mean, confMix, 100*(out[1].mean-confMix)/confMix,
		out[2].mean, sprayMix, 100*(out[2].mean-sprayMix)/sprayMix))
	lat.Notes = append(lat.Notes,
		"expected shape: confinement keeps the sharing excess near zero (disjoint minimal paths; only adaptive non-minimal detours leak across slices), spraying buys B cheap paths through idle groups at the price of a larger shared excess, and the windowed latency breathes with B's ON/OFF duty cycle either way")
	return []*Figure{lat, thr}, nil
}

// groupRange returns the terminals of groups [from, to), ascending.
func groupRange(from, to, perGroup int) []int {
	out := make([]int, 0, (to-from)*perGroup)
	for t := from * perGroup; t < to*perGroup; t++ {
		out = append(out, t)
	}
	return out
}
