package experiments

import (
	"fmt"

	"dragonfly/internal/core"
	"dragonfly/internal/fault"
	"dragonfly/internal/topology"
)

// resilienceFaultSeed makes the fault plans of the resilience exhibit
// reproducible: the same seed yields the same failed channels at every
// fraction, on every worker count.
const resilienceFaultSeed = 1

// failFractions are the x-axis of the resilience exhibit: the fraction
// of global channels failed.
func (s Scale) failFractions() []float64 {
	if s.Coarse {
		return []float64{0, 0.10, 0.20, 0.30}
	}
	return []float64{0, 0.05, 0.10, 0.15, 0.20, 0.25, 0.30}
}

// Resilience is the graceful-degradation exhibit (not a paper figure —
// the paper assumes pristine hardware): saturation throughput and
// low-load latency versus the fraction of failed global channels, MIN
// versus UGAL-L under uniform random traffic. Losing a global channel
// severs the only minimal path between a group pair, so MIN survives
// only through the fault-aware Valiant fallback, while UGAL's adaptive
// rule spreads load around the holes; the expected shape is UGAL
// degrading smoothly and MIN falling off a cliff as soon as a few
// percent of the cables die.
func Resilience(s Scale) ([]*Figure, error) {
	sys, err := s.evalSystem(16)
	if err != nil {
		return nil, err
	}
	algs := []core.Algorithm{core.AlgMIN, core.AlgUGALL}
	fracs := s.failFractions()

	thr := &Figure{
		ID: "Resilience (a)", Title: "Saturation throughput vs. failed global channels, UR traffic",
		XLabel: "failed fraction", YLabel: "max accepted load (flits/cycle/alive terminal)",
	}
	lat := &Figure{
		ID: "Resilience (b)", Title: "Low-load latency vs. failed global channels, UR traffic",
		XLabel: "failed fraction", YLabel: "avg latency (cycles) at the lowest swept load",
	}

	type point struct {
		satThr  float64
		lowLat  float64
		dropped int64
		conn    bool
	}
	njobs := len(algs) * len(fracs)
	pts := make([]point, njobs)
	err = s.Pool().ForEach(njobs, func(k int) error {
		alg := algs[k/len(fracs)]
		frac := fracs[k%len(fracs)]
		plan := fault.NewPlan(resilienceFaultSeed)
		plan.FailFraction(sys.Topo, topology.ClassGlobal, frac)
		fsys := sys.WithFaults(plan)
		points, err := fsys.SweepPool(s.Pool(), alg, core.PatternUR, s.urLoads(), s.runCfg(), 2)
		if err != nil {
			return fmt.Errorf("%s at %.0f%% failed: %w", alg, 100*frac, err)
		}
		if len(points) == 0 {
			return fmt.Errorf("%s at %.0f%% failed: empty sweep", alg, 100*frac)
		}
		p := point{lowLat: points[0].Result.Latency.Mean(), conn: fsys.Degraded().Connected()}
		for _, pt := range points {
			if pt.Result.Accepted > p.satThr {
				p.satThr = pt.Result.Accepted
			}
			p.dropped += pt.Result.Dropped
		}
		pts[k] = p
		return nil
	})
	if err != nil {
		return nil, err
	}

	var droppedNote bool
	for i, alg := range algs {
		ts := Series{Name: string(alg)}
		ls := Series{Name: string(alg)}
		for j, frac := range fracs {
			p := pts[i*len(fracs)+j]
			ts.X = append(ts.X, frac)
			ts.Y = append(ts.Y, p.satThr)
			ls.X = append(ls.X, frac)
			ls.Y = append(ls.Y, p.lowLat)
			if p.dropped > 0 {
				droppedNote = true
				thr.Notes = append(thr.Notes, fmt.Sprintf("%s at %.0f%% failed: %d packets dropped (connected=%v)",
					alg, 100*frac, p.dropped, p.conn))
			}
		}
		thr.Series = append(thr.Series, ts)
		lat.Series = append(lat.Series, ls)
	}
	thr.Notes = append(thr.Notes,
		"expected shape: UGAL-L degrades smoothly with the surviving capacity; MIN cliffs as soon as group pairs lose their only minimal channel and must detour")
	if !droppedNote {
		thr.Notes = append(thr.Notes, "no packets dropped at any fraction: the degraded networks stayed connected within the routing fallback's reach")
	}
	return []*Figure{thr, lat}, nil
}
