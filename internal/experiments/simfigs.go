package experiments

import (
	"fmt"

	"dragonfly/internal/core"
	"dragonfly/internal/metrics"
	"dragonfly/internal/sim"
	"dragonfly/internal/topology"
)

// evalSystem builds the evaluation machine: the paper's 1K-node network
// (p=h=4, a=8, 1056 terminals) or the 72-node example under Scale.Small.
func (s Scale) evalSystem(bufDepth int) (*core.System, error) {
	cfg := core.SystemConfig{P: 4, A: 8, H: 4, BufDepth: bufDepth}
	if s.Small {
		cfg = core.SystemConfig{P: 2, A: 4, H: 2, BufDepth: bufDepth}
	}
	return core.NewSystem(cfg)
}

func (s Scale) runCfg() sim.RunConfig {
	return sim.RunConfig{
		WarmupCycles:  s.Warmup,
		MeasureCycles: s.Measure,
		DrainCycles:   s.Drain,
		StallLimit:    s.StallLimit,
	}
}

// sweep runs a latency-load curve for one algorithm/pattern pair,
// stopping two points after saturation like the paper's plots. The load
// points run on the scale's worker pool.
func (s Scale) sweep(sys *core.System, alg core.Algorithm, pattern core.Pattern, loads []float64) (Series, error) {
	ser := Series{Name: string(alg)}
	points, err := sys.SweepPool(s.Pool(), alg, pattern, loads, s.runCfg(), 2)
	if err != nil {
		return ser, err
	}
	for _, p := range points {
		ser.X = append(ser.X, p.Load)
		ser.Y = append(ser.Y, p.Result.Latency.Mean())
		ser.Saturated = append(ser.Saturated, p.Result.Saturated)
	}
	return ser, nil
}

// urLoads and wcLoads are the sweep ranges of Figures 8, 10 and 16.
func (s Scale) urLoads() []float64 { return s.loads(0.1, 0.95, 0.1) }
func (s Scale) wcLoads() []float64 { return s.loads(0.05, 0.5, 0.05) }

// patternCases are the UR/WC halves shared by Figures 8 and 10.
func (s Scale) patternCases() []struct {
	pattern core.Pattern
	loads   []float64
} {
	return []struct {
		pattern core.Pattern
		loads   []float64
	}{
		{core.PatternUR, s.urLoads()},
		{core.PatternWC, s.wcLoads()},
	}
}

// routingComparison fills the two UR/WC figures with one series per
// algorithm. Every (pattern, algorithm) series is an independent job and
// they all run concurrently on the scale's pool; series order within
// each figure stays the caller's algorithm order.
func (s Scale) routingComparison(sys *core.System, algs []core.Algorithm, out []*Figure) error {
	cases := s.patternCases()
	type job struct {
		fig int
		alg core.Algorithm
	}
	var jobs []job
	for i := range cases {
		for _, alg := range algs {
			jobs = append(jobs, job{fig: i, alg: alg})
		}
	}
	sers := make([]Series, len(jobs))
	err := s.Pool().ForEach(len(jobs), func(k int) error {
		j := jobs[k]
		ser, err := s.sweep(sys, j.alg, cases[j.fig].pattern, cases[j.fig].loads)
		if err != nil {
			return fmt.Errorf("%s/%s: %w", j.alg, cases[j.fig].pattern, err)
		}
		sers[k] = ser
		return nil
	})
	if err != nil {
		return err
	}
	for k, j := range jobs {
		out[j.fig].Series = append(out[j.fig].Series, sers[k])
	}
	return nil
}

// Fig08 reproduces Figure 8: latency versus offered load for MIN, VAL,
// UGAL-G and UGAL-L under (a) uniform random and (b) worst-case traffic.
func Fig08(s Scale) ([]*Figure, error) {
	sys, err := s.evalSystem(16)
	if err != nil {
		return nil, err
	}
	algs := []core.Algorithm{core.AlgMIN, core.AlgVAL, core.AlgUGALG, core.AlgUGALL}
	out := []*Figure{
		{ID: "Figure 8(a)", Title: "Routing comparison, uniform random traffic", XLabel: "offered load", YLabel: "avg latency (cycles), * = saturated"},
		{ID: "Figure 8(b)", Title: "Routing comparison, worst-case traffic", XLabel: "offered load", YLabel: "avg latency (cycles), * = saturated"},
	}
	if err := s.routingComparison(sys, algs, out); err != nil {
		return nil, err
	}
	out[0].Notes = append(out[0].Notes,
		"expected shape: MIN and both UGALs reach near-unit throughput; VAL saturates near 0.5 with ~2x zero-load latency")
	out[1].Notes = append(out[1].Notes,
		"expected shape: MIN saturates at 1/(a*h); VAL and UGAL-G reach ~0.5; UGAL-L suffers high latency at intermediate load")
	return out, nil
}

// Fig09 reproduces Figure 9: per-channel utilisation of a group's global
// channels under worst-case traffic at load 0.2, UGAL-L versus UGAL-G.
// Channel 0 is the minimal channel; channels 1..h-1 share its router.
func Fig09(s Scale) (*Figure, error) {
	sys, err := s.evalSystem(16)
	if err != nil {
		return nil, err
	}
	d := sys.Topo.(*topology.Dragonfly) // evalSystem builds the canonical dragonfly
	f := &Figure{
		ID:     "Figure 9",
		Title:  "Global channel utilisation, WC traffic at load 0.2",
		XLabel: "global channel",
		YLabel: "utilisation",
	}
	algs := []core.Algorithm{core.AlgUGALL, core.AlgUGALG}
	sers := make([]Series, len(algs))
	err = s.Pool().ForEach(len(algs), func(ai int) error {
		alg := algs[ai]
		net, err := sys.NewNetwork(alg, core.PatternWC)
		if err != nil {
			return err
		}
		ser := Series{Name: string(alg)}
		s.Pool().Work(func() {
			net.SetLoad(0.2)
			for i := 0; i < s.Warmup; i++ {
				net.Step()
			}
			util := metrics.NewChannelUtil(net.NumLinks())
			net.AttachMetrics(util)
			for i := 0; i < s.Measure; i++ {
				net.Step()
			}
			net.AttachMetrics(nil)
			// Slot c of every group leads to group (g+1+c mod (g-1)); slot 0
			// is the minimal channel for the WC pattern. Average per slot
			// across groups.
			slots := d.A * d.H
			for c := 0; c < slots; c++ {
				var busy int64
				for grp := 0; grp < d.G; grp++ {
					r := d.GroupRouter(grp, d.SlotRouterIndex(c))
					busy += util.Busy(net.LinkID(r, d.GlobalPort(c)))
				}
				ser.X = append(ser.X, float64(c))
				ser.Y = append(ser.Y, float64(busy)/float64(d.G)/float64(s.Measure))
			}
		})
		sers[ai] = ser
		return nil
	})
	if err != nil {
		return nil, err
	}
	f.Series = sers
	f.Notes = append(f.Notes,
		"channel 0 is the minimal channel; 1..h-1 share its router",
		"expected shape: UGAL-G loads the minimal channel hardest and balances the rest evenly; UGAL-L under-uses the non-minimal channels sharing the minimal channel's router")
	return f, nil
}

// Fig10 reproduces Figure 10: the UGAL-L_VC and UGAL-L_VCH variants
// against UGAL-L and UGAL-G on (a) uniform random and (b) worst-case
// traffic.
func Fig10(s Scale) ([]*Figure, error) {
	sys, err := s.evalSystem(16)
	if err != nil {
		return nil, err
	}
	algs := []core.Algorithm{core.AlgUGALL, core.AlgUGALLVC, core.AlgUGALLVCH, core.AlgUGALG}
	out := []*Figure{
		{ID: "Figure 10(a)", Title: "UGAL-L_VC variants, uniform random traffic", XLabel: "offered load", YLabel: "avg latency (cycles), * = saturated"},
		{ID: "Figure 10(b)", Title: "UGAL-L_VC variants, worst-case traffic", XLabel: "offered load", YLabel: "avg latency (cycles), * = saturated"},
	}
	if err := s.routingComparison(sys, algs, out); err != nil {
		return nil, err
	}
	out[0].Notes = append(out[0].Notes,
		"expected shape: UGAL-L_VC loses throughput on UR (per-VC queues misjudge balanced traffic); the hybrid UGAL-L_VCH restores it")
	out[1].Notes = append(out[1].Notes,
		"expected shape: both VC variants match UGAL-G's WC throughput and cut UGAL-L's intermediate latency")
	return out, nil
}

// Fig11 reproduces Figure 11: minimally- versus non-minimally-routed
// packet latency under UGAL-L and WC traffic, with 16- and 256-flit
// input buffers. The two buffer depths run concurrently, and each
// depth's load points fan out through the sweep engine (stopping one
// point after saturation, like the paper's plot).
func Fig11(s Scale) ([]*Figure, error) {
	bufs := []int{16, 256}
	out := make([]*Figure, len(bufs))
	err := s.Pool().ForEach(len(bufs), func(bi int) error {
		buf := bufs[bi]
		sys, err := s.evalSystem(buf)
		if err != nil {
			return err
		}
		pts, err := sys.SweepPool(s.Pool(), core.AlgUGALL, core.PatternWC, s.wcLoads(), s.runCfg(), 1)
		if err != nil {
			return err
		}
		f := &Figure{
			ID:     fmt.Sprintf("Figure 11 (buffers=%d)", buf),
			Title:  "UGAL-L WC latency split by routing decision",
			XLabel: "offered load",
			YLabel: "avg latency (cycles), * = saturated",
		}
		min := Series{Name: "minimal pkts"}
		nonmin := Series{Name: "non-minimal"}
		avg := Series{Name: "average"}
		for _, p := range pts {
			min.X = append(min.X, p.Load)
			min.Y = append(min.Y, p.Result.MinLatency.Mean())
			min.Saturated = append(min.Saturated, p.Result.Saturated)
			nonmin.X = append(nonmin.X, p.Load)
			nonmin.Y = append(nonmin.Y, p.Result.NonminLatency.Mean())
			nonmin.Saturated = append(nonmin.Saturated, p.Result.Saturated)
			avg.X = append(avg.X, p.Load)
			avg.Y = append(avg.Y, p.Result.Latency.Mean())
			avg.Saturated = append(avg.Saturated, p.Result.Saturated)
		}
		f.Series = []Series{min, nonmin, avg}
		f.Notes = append(f.Notes,
			"expected shape: non-minimal packets track UGAL-G latency while minimal packets pay the buffer-filling penalty, which grows with buffer depth")
		out[bi] = f
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// Fig12 reproduces Figure 12: the latency histogram at offered load 0.25
// under UGAL-L and WC traffic, for 16- and 256-flit buffers — the
// bimodal distribution whose slow mode is the minimally-routed packets.
func Fig12(s Scale) ([]*Figure, error) {
	bufs := []int{16, 256}
	out := make([]*Figure, len(bufs))
	err := s.Pool().ForEach(len(bufs), func(bi int) error {
		buf := bufs[bi]
		sys, err := s.evalSystem(buf)
		if err != nil {
			return err
		}
		rc := s.runCfg()
		rc.Histogram = true
		rc.HistWidth = 4
		var res sim.Result
		var rerr error
		s.Pool().Work(func() {
			res, rerr = sys.Run(core.AlgUGALL, core.PatternWC, 0.25, rc)
		})
		if rerr != nil {
			return rerr
		}
		f := &Figure{
			ID:     fmt.Sprintf("Figure 12 (buffers=%d)", buf),
			Title:  fmt.Sprintf("Latency distribution at load 0.25 (avg=%.1f)", res.Latency.Mean()),
			XLabel: "latency (cycles)",
			YLabel: "fraction of packets",
		}
		all := Series{Name: "all packets"}
		minimal := Series{Name: "minimal pkts"}
		buckets := res.Hist.Buckets()
		minBuckets := res.MinHist.Buckets()
		for i := range buckets {
			x := float64(int64(i) * res.Hist.Width)
			if frac := res.Hist.Fraction(i); frac > 0.0005 {
				all.X = append(all.X, x)
				all.Y = append(all.Y, frac)
			}
			if i < len(minBuckets) && minBuckets[i] > 0 {
				minimal.X = append(minimal.X, x)
				minimal.Y = append(minimal.Y, float64(minBuckets[i])/float64(res.Hist.Total()))
			}
		}
		f.Series = []Series{all, minimal}
		f.Notes = append(f.Notes,
			fmt.Sprintf("minimal packets: %.1f%% of traffic, mean latency %.1f vs %.1f overall",
				100*res.MinimalFraction, res.MinLatency.Mean(), res.Latency.Mean()))
		out[bi] = f
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// Fig14 reproduces Figure 14: UGAL-L latency under WC traffic as the
// input buffer depth varies — shallower buffers give stiffer backpressure
// and lower intermediate latency. All five depth series run concurrently.
func Fig14(s Scale) (*Figure, error) {
	f := &Figure{
		ID:     "Figure 14",
		Title:  "UGAL-L WC latency vs input buffer depth",
		XLabel: "offered load",
		YLabel: "avg latency (cycles), * = saturated",
	}
	bufs := []int{4, 8, 16, 32, 64}
	sers := make([]Series, len(bufs))
	err := s.Pool().ForEach(len(bufs), func(bi int) error {
		sys, err := s.evalSystem(bufs[bi])
		if err != nil {
			return err
		}
		ser, err := s.sweep(sys, core.AlgUGALL, core.PatternWC, s.wcLoads())
		if err != nil {
			return err
		}
		ser.Name = fmt.Sprintf("buffers=%d", bufs[bi])
		sers[bi] = ser
		return nil
	})
	if err != nil {
		return nil, err
	}
	f.Series = sers
	f.Notes = append(f.Notes,
		"expected shape: intermediate latency grows with buffer depth; very shallow buffers trade throughput for stiffness")
	return f, nil
}

// Fig16 reproduces Figure 16: UGAL-L_CR (credit round-trip latency)
// against UGAL-L_VCH and UGAL-G on WC and UR traffic with 16- and
// 256-flit buffers. All twelve (pattern, buffer, algorithm) series are
// independent jobs running concurrently.
func Fig16(s Scale) ([]*Figure, error) {
	algs := []core.Algorithm{core.AlgUGALLVCH, core.AlgUGALLCR, core.AlgUGALG}
	cases := []struct {
		pattern core.Pattern
		buf     int
		loads   []float64
	}{
		{core.PatternWC, 16, s.wcLoads()},
		{core.PatternWC, 256, s.wcLoads()},
		{core.PatternUR, 16, s.urLoads()},
		{core.PatternUR, 256, s.urLoads()},
	}
	out := make([]*Figure, len(cases))
	systems := make([]*core.System, len(cases))
	for i, tc := range cases {
		sys, err := s.evalSystem(tc.buf)
		if err != nil {
			return nil, err
		}
		systems[i] = sys
		out[i] = &Figure{
			ID:     fmt.Sprintf("Figure 16 (%s, buffers=%d)", tc.pattern, tc.buf),
			Title:  "Credit round-trip latency mechanism",
			XLabel: "offered load",
			YLabel: "avg latency (cycles), * = saturated",
		}
		if tc.pattern == core.PatternWC {
			out[i].Notes = append(out[i].Notes,
				"expected shape: UGAL-L_CR cuts the minimal-packet latency hump and is buffer-size independent")
		}
	}
	type job struct {
		fig int
		alg core.Algorithm
	}
	var jobs []job
	for i := range cases {
		for _, alg := range algs {
			jobs = append(jobs, job{fig: i, alg: alg})
		}
	}
	sers := make([]Series, len(jobs))
	err := s.Pool().ForEach(len(jobs), func(k int) error {
		j := jobs[k]
		tc := cases[j.fig]
		ser, err := s.sweep(systems[j.fig], j.alg, tc.pattern, tc.loads)
		if err != nil {
			return fmt.Errorf("%s/%s/buf%d: %w", j.alg, tc.pattern, tc.buf, err)
		}
		sers[k] = ser
		return nil
	})
	if err != nil {
		return nil, err
	}
	for k, j := range jobs {
		out[j.fig].Series = append(out[j.fig].Series, sers[k])
	}
	return out, nil
}

// MinLatencyComparison distils the Figure 16 headline into two numbers:
// the minimally-routed packet latency of UGAL-L_VCH versus UGAL-L_CR at
// WC load 0.3. The two runs execute concurrently.
func MinLatencyComparison(s Scale, buf int) (vch, cr float64, err error) {
	sys, err := s.evalSystem(buf)
	if err != nil {
		return 0, 0, err
	}
	algs := []core.Algorithm{core.AlgUGALLVCH, core.AlgUGALLCR}
	lat := make([]float64, len(algs))
	err = s.Pool().ForEach(len(algs), func(i int) error {
		var res sim.Result
		var rerr error
		s.Pool().Work(func() {
			res, rerr = sys.Run(algs[i], core.PatternWC, 0.3, s.runCfg())
		})
		if rerr != nil {
			return rerr
		}
		lat[i] = res.MinLatency.Mean()
		return nil
	})
	if err != nil {
		return 0, 0, err
	}
	return lat[0], lat[1], nil
}
