package experiments

import (
	"fmt"

	"dragonfly/internal/core"
	"dragonfly/internal/cost"
	"dragonfly/internal/fault"
	"dragonfly/internal/topology"
)

// topoZooFaultSeed seeds the zoo's resilience fault draws, so the same
// channels die for every topology family on every run.
const topoZooFaultSeed = 1

// zooEntry is one column of the topology-zoo exhibit: a registry family
// plus explicit build parameters chosen so every machine in the
// comparison has roughly the same router radix (the technology
// constraint of the paper: a topology spends a router generation's pin
// budget, it doesn't choose it).
type zooEntry struct {
	family string
	params map[string]int
}

// zooEntries returns the equal-radix comparison set. At paper scale the
// machines sit in the radix-12..16 class around the 1K-node evaluation
// network; Quick shrinks them to the radix-6..10 class around the
// 72-node example so tests stay fast.
func (s Scale) zooEntries() []zooEntry {
	if s.Small {
		return []zooEntry{
			{"dragonfly", map[string]int{"p": 2, "a": 4, "h": 2}},
			{"dragonflyplus", map[string]int{"p": 2, "leaves": 4, "spines": 4, "h": 2}},
			{"swapped", map[string]int{"p": 2, "k": 6}},
			{"aries", map[string]int{"p": 1, "blades": 4, "chassis": 2, "bundle": 2, "h": 2, "g": 8}},
		}
	}
	return []zooEntry{
		{"dragonfly", map[string]int{"p": 4, "a": 8, "h": 4}},
		{"dragonflyplus", map[string]int{"p": 4, "leaves": 8, "spines": 8, "h": 4}},
		{"swapped", map[string]int{"p": 4, "k": 12}},
		{"aries", map[string]int{"p": 4, "blades": 8, "chassis": 2, "bundle": 1, "h": 4, "g": 9}},
	}
}

// TopoZoo is the cross-topology exhibit (not a paper figure — the paper
// compares against flattened butterflies and folded Clos networks; this
// compares the dragonfly against its own descendants at equal radix):
// for each registered machine of the equal-radix set it reports the
// structure (N, radix, channel census), the cost per node under the
// Figure 19 pricing model, saturation throughput and low-load latency
// under uniform random traffic with UGAL-L, and resilience — the
// accepted throughput retained after 10% of the global channels fail.
func TopoZoo(s Scale) (*Table, error) {
	entries := s.zooEntries()

	type row struct {
		desc    topology.Descriptor
		radix   int
		perNode float64
		satThr  float64
		lowLat  float64
		degThr  float64
		dropped int64
	}
	rows := make([]row, len(entries))
	model := cost.DefaultModel()

	err := s.Pool().ForEach(len(entries), func(k int) error {
		e := entries[k]
		sys, err := core.NewSystem(core.SystemConfig{
			Topology: e.family, TopoParams: e.params, BufDepth: 16,
		})
		if err != nil {
			return fmt.Errorf("%s: %w", e.family, err)
		}
		r := row{desc: sys.Topo.Describe(), radix: sys.Topo.RouterRadix()}

		bd, err := model.Machine(sys.Topo)
		if err != nil {
			return fmt.Errorf("%s: %w", e.family, err)
		}
		r.perNode = bd.PerNode()

		// Pristine UR sweep: saturation throughput and low-load latency.
		points, err := sys.SweepPool(s.Pool(), core.AlgUGALL, core.PatternUR, s.urLoads(), s.runCfg(), 2)
		if err != nil {
			return fmt.Errorf("%s: %w", e.family, err)
		}
		if len(points) == 0 {
			return fmt.Errorf("%s: empty sweep", e.family)
		}
		r.lowLat = points[0].Result.Latency.Mean()
		for _, pt := range points {
			if pt.Result.Accepted > r.satThr {
				r.satThr = pt.Result.Accepted
			}
		}

		// Resilience: fail 10% of the global channels and re-sweep.
		plan := fault.NewPlan(topoZooFaultSeed)
		plan.FailFraction(sys.Topo, topology.ClassGlobal, 0.10)
		fsys := sys.WithFaults(plan)
		dpoints, err := fsys.SweepPool(s.Pool(), core.AlgUGALL, core.PatternUR, s.urLoads(), s.runCfg(), 2)
		if err != nil {
			return fmt.Errorf("%s degraded: %w", e.family, err)
		}
		for _, pt := range dpoints {
			if pt.Result.Accepted > r.degThr {
				r.degThr = pt.Result.Accepted
			}
			r.dropped += pt.Result.Dropped
		}
		rows[k] = r
		return nil
	})
	if err != nil {
		return nil, err
	}

	t := &Table{
		ID:    "Topology zoo",
		Title: "equal-radix comparison: structure, cost, UR performance and resilience (UGAL-L)",
		Header: []string{"family", "N", "radix", "groups", "local ch", "global ch",
			"$/node", "sat thr", "low lat", "sat thr @10% glb fail", "retained"},
	}
	for k, e := range entries {
		r := rows[k]
		retained := "-"
		if r.satThr > 0 {
			retained = fmt.Sprintf("%.0f%%", 100*r.degThr/r.satThr)
		}
		t.Rows = append(t.Rows, []string{
			e.family,
			fmt.Sprintf("%d", r.desc.Terminals),
			fmt.Sprintf("%d", r.radix),
			fmt.Sprintf("%d", r.desc.Groups),
			fmt.Sprintf("%d", r.desc.LocalChannels),
			fmt.Sprintf("%d", r.desc.GlobalChannels),
			fmt.Sprintf("%.2f", r.perNode),
			fmt.Sprintf("%.3f", r.satThr),
			fmt.Sprintf("%.1f", r.lowLat),
			fmt.Sprintf("%.3f", r.degThr),
			retained,
		})
		if r.dropped > 0 {
			t.Notes = append(t.Notes, fmt.Sprintf("%s: %d packets dropped under the 10%% global-channel fault plan", e.family, r.dropped))
		}
	}
	t.Notes = append(t.Notes,
		"machines are sized to the same router pin budget, so throughput differences reflect wiring, not technology",
		"the swapped dragonfly buys its single global port per router with sparser inter-group wiring: cheap, but less resilient headroom",
		"cost per node uses the Figure 19 pricing model (router ports by radix class, cables by length)")
	return t, nil
}
