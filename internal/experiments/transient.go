package experiments

import (
	"fmt"

	"dragonfly/internal/core"
	"dragonfly/internal/fault"
	"dragonfly/internal/obs"
	"dragonfly/internal/topology"
)

// transientFaultSeed pins the transient exhibit's fault draws, like the
// resilience exhibit's seed.
const transientFaultSeed = 1

// transientLoad is the offered load of the time series: moderate enough
// that the degraded interval stays below saturation and the recovery is
// attributable to the repair, not to drain of a saturated backlog.
const transientLoad = 0.3

// transientFailFraction is the fraction of global channels the event
// severs. At the evaluation networks' one global channel per group
// pair, a quarter of the cables dying cuts the only minimal path of a
// quarter of the group pairs — MIN survives solely through the
// fault-aware Valiant fallback until the repair.
const transientFailFraction = 0.25

// TransientCycles returns the exhibit's event schedule derived from the
// scale: the failure strikes at fail (after a full warm-up of pristine
// steady state), the repair lands at recover, and the series runs to
// end — two measurement windows after the repair, so the recovered
// steady state is visible well past the settling transient.
func (s Scale) TransientCycles() (fail, recover, end int64) {
	fail = int64(s.Warmup)
	recover = fail + int64(s.Measure)
	end = recover + 2*int64(s.Measure)
	return fail, recover, end
}

// Transient is the fail-then-recover time-series exhibit (not a paper
// figure — the paper assumes pristine hardware): windowed accepted
// throughput and packet latency simulated straight through a fault
// timeline that severs a quarter of the global channels and repairs
// them one measurement window later, MIN versus UGAL-L under uniform
// random traffic. The expected shape: both algorithms dip when the
// cables die (in-flight packets on them are destroyed, minimal paths
// vanish), UGAL-L re-balances around the holes and climbs back, and
// after the repair both return to the pre-fault rate — the acceptance
// bar is UGAL-L recovering to at least 95% of its pre-fault accepted
// throughput.
func Transient(s Scale) ([]*Figure, error) {
	fail, recov, end := s.TransientCycles()
	window := int64(s.Measure) / 8
	if window < 10 {
		window = 10
	}

	thr := &Figure{
		ID: "Transient (a)", Title: fmt.Sprintf("Accepted throughput through a fail-recover event (%.0f%% globals at cycle %d, repaired at %d), UR at %.2f load", 100*transientFailFraction, fail, recov, transientLoad),
		XLabel: "cycle", YLabel: "accepted load per window (flits/cycle/terminal)",
	}
	lat := &Figure{
		ID: "Transient (b)", Title: "Packet latency through the same fail-recover event",
		XLabel: "cycle", YLabel: "avg latency of packets ejected in window (cycles)",
	}

	algs := []core.Algorithm{core.AlgMIN, core.AlgUGALL}
	out := make([]transientSeries, len(algs))
	err := s.Pool().ForEach(len(algs), func(i int) error {
		var err error
		s.Pool().Work(func() {
			out[i], err = s.transientRun(algs[i], fail, recov, end, window)
		})
		if err != nil {
			return fmt.Errorf("%s: %w", algs[i], err)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}

	for i, alg := range algs {
		thr.Series = append(thr.Series, Series{Name: string(alg), X: out[i].x, Y: out[i].thr})
		lat.Series = append(lat.Series, Series{Name: string(alg), X: out[i].x, Y: out[i].lat})
		pre, during, post := transientPhaseMeans(out[i].x, out[i].thr, fail, recov, end)
		note := fmt.Sprintf("%s: accepted %.3f pre-fault, %.3f degraded, %.3f recovered (%.0f%% of pre-fault); %d packets killed in flight, %d rerouted, %d dropped",
			alg, pre, during, post, 100*post/pre, out[i].killed, out[i].rerouted, out[i].dropped)
		thr.Notes = append(thr.Notes, note)
	}
	thr.Notes = append(thr.Notes,
		"expected shape: both dip at the failure (in-flight packets on severed cables are destroyed, minimal paths vanish); UGAL-L re-balances around the holes; after the repair both recover the pre-fault rate")
	return []*Figure{thr, lat}, nil
}

// transientSeries is the windowed measurement of one algorithm's run
// through the timeline.
type transientSeries struct {
	x, thr, lat      []float64
	killed, rerouted int64
	dropped          int64
}

// transientRun runs one algorithm straight through the timeline and
// returns the windowed series, measured by the observability layer's
// windowed collector (the normalisation matches the old bespoke
// windowing exactly: accepted = ejections / (terminals * window), mean
// latency over the packets ejected in the window, 0 when none).
func (s Scale) transientRun(alg core.Algorithm, fail, recov, end, window int64) (series transientSeries, err error) {
	sys, err := s.evalSystem(16)
	if err != nil {
		return series, err
	}
	sched, err := fault.NewTimeline(transientFaultSeed).
		FailFractionAt(fail, topology.ClassGlobal, transientFailFraction).
		RecoverAllAt(recov).
		Compile(sys.Topo)
	if err != nil {
		return series, err
	}
	sys, err = sys.WithTimeline(sched)
	if err != nil {
		return series, err
	}
	net, err := sys.NewNetwork(alg, core.PatternUR)
	if err != nil {
		return series, err
	}
	net.SetLoad(transientLoad)

	win := obs.NewWindows(obs.WindowsConfig{
		Width:     window,
		Terminals: sys.Topo.Nodes(),
	})
	net.AttachMetrics(win)
	for cyc := int64(1); cyc <= end; cyc++ {
		if err := net.Step(); err != nil {
			return series, err
		}
	}
	for _, w := range win.Windows() {
		series.x = append(series.x, float64(w.End))
		series.thr = append(series.thr, w.Accepted)
		series.lat = append(series.lat, w.LatencyMean)
	}
	series.killed = net.KilledInFlight()
	series.rerouted = net.Rerouted()
	series.dropped = net.Dropped()
	return series, nil
}

// transientPhaseMeans averages a windowed series over the three phases
// of the event: pristine steady state (the second half of the pre-fault
// interval, past the cold-start ramp), the degraded interval, and the
// recovered steady state (the final pre-fault-sized slice of the run,
// well past the repair transient).
func transientPhaseMeans(x, y []float64, fail, recov, end int64) (pre, during, post float64) {
	mean := func(lo, hi float64) float64 {
		sum, n := 0.0, 0
		for i := range x {
			if x[i] > lo && x[i] <= hi {
				sum += y[i]
				n++
			}
		}
		if n == 0 {
			return 0
		}
		return sum / float64(n)
	}
	pre = mean(float64(fail)/2, float64(fail))
	during = mean(float64(fail), float64(recov))
	post = mean(float64(end)-float64(fail)/2, float64(end))
	return pre, during, post
}
