// Package fault builds deterministic, seeded fault-injection plans for
// topology graphs: individual channels (by class: global, local,
// terminal) and whole routers are marked failed, and the resulting Plan
// is handed to topology.NewDegraded to derive the fault-aware view the
// routing algorithms and the simulator consume.
//
// Plans are deterministic: the same seed and the same sequence of
// builder calls over the same wiring produce the identical plan,
// regardless of host, process, or worker count. All randomness derives
// from the plan seed through the same SplitMix chain the simulator uses
// (sim.DeriveSeed), with one draw counter per plan.
package fault

import (
	"fmt"
	"sort"

	"dragonfly/internal/sim"
	"dragonfly/internal/topology"
)

// Wiring is the structural view a Plan needs to enumerate channels. Any
// *topology.Graph (or topology embedding one) satisfies it.
type Wiring interface {
	Routers() int
	Radix(r int) int
	Port(r, p int) topology.Port
}

type portKey struct{ r, p int }

// Plan is a set of failed routers and failed channel endpoints. It
// implements topology.FaultView. The zero value is unusable; construct
// with NewPlan.
type Plan struct {
	seed uint64
	ctr  uint64 // draw counter: one increment per random decision

	routers map[int]bool
	ports   map[portKey]bool

	failedRouters int
	failedClass   [3]int // dead channels by topology.Class
}

// NewPlan returns an empty fault plan drawing its randomness from seed.
func NewPlan(seed uint64) *Plan {
	return &Plan{
		seed:    seed,
		routers: make(map[int]bool),
		ports:   make(map[portKey]bool),
	}
}

// RouterDown implements topology.FaultView.
func (p *Plan) RouterDown(r int) bool { return p.routers[r] }

// PortDown implements topology.FaultView.
func (p *Plan) PortDown(r, port int) bool { return p.ports[portKey{r, port}] }

// Empty reports whether the plan fails nothing.
func (p *Plan) Empty() bool { return len(p.routers) == 0 && len(p.ports) == 0 }

// Seed returns the plan's seed.
func (p *Plan) Seed() uint64 { return p.seed }

// FailRouter marks router r failed: every channel it terminates is dead
// and its terminals are unreachable. Repeated calls are idempotent.
func (p *Plan) FailRouter(r int) {
	if p.routers[r] {
		return
	}
	p.routers[r] = true
	p.failedRouters++
}

// FailChannel marks the channel attached at (r, port) of w failed,
// marking both endpoints so the failure is symmetric (a cut cable, not
// a one-way fault). Repeated calls on either end are idempotent.
func (p *Plan) FailChannel(w Wiring, r, port int) {
	if p.ports[portKey{r, port}] {
		return
	}
	pt := w.Port(r, port)
	p.ports[portKey{r, port}] = true
	if pt.Class != topology.ClassTerminal {
		p.ports[portKey{pt.PeerRouter, pt.PeerPort}] = true
	}
	p.failedClass[pt.Class]++
}

// channels enumerates the bidirectional channels of class c in w that
// the plan has not yet failed (explicitly or via a failed router), each
// channel once, identified by its lower (router, port) endpoint, in
// canonical ascending order.
func (p *Plan) channels(w Wiring, c topology.Class) []portKey {
	var out []portKey
	for r := 0; r < w.Routers(); r++ {
		for i := 0; i < w.Radix(r); i++ {
			pt := w.Port(r, i)
			if pt.Class != c {
				continue
			}
			if c != topology.ClassTerminal {
				// Count router-to-router channels from the lower end only.
				if pt.PeerRouter < r || (pt.PeerRouter == r && pt.PeerPort < i) {
					continue
				}
				if p.routers[pt.PeerRouter] {
					continue
				}
			}
			if p.routers[r] || p.ports[portKey{r, i}] {
				continue
			}
			out = append(out, portKey{r, i})
		}
	}
	return out
}

// FailRandomChannels fails k channels of class c drawn uniformly,
// without replacement, from the channels of w still alive in the plan.
// It returns the number actually failed (fewer than k when not enough
// live channels remain). The draw order is a partial Fisher–Yates over
// the canonical channel enumeration, so the result is a pure function
// of the plan seed, the draw counter, and the wiring.
func (p *Plan) FailRandomChannels(w Wiring, c topology.Class, k int) int {
	cand := p.channels(w, c)
	failed := 0
	for ; failed < k && len(cand) > 0; failed++ {
		i := int(sim.Mix(sim.DeriveSeed(p.seed, p.ctr)) % uint64(len(cand)))
		p.ctr++
		p.FailChannel(w, cand[i].r, cand[i].p)
		cand[i] = cand[len(cand)-1]
		cand = cand[:len(cand)-1]
	}
	return failed
}

// FailFraction fails fraction f (rounded to the nearest whole channel)
// of the class-c channels of w, counting channels already failed
// against the target. It returns the number newly failed.
func (p *Plan) FailFraction(w Wiring, c topology.Class, f float64) int {
	if f <= 0 {
		return 0
	}
	total := len(p.channels(w, c)) + p.failedClass[c]
	want := int(f*float64(total) + 0.5)
	want -= p.failedClass[c]
	if want <= 0 {
		return 0
	}
	return p.FailRandomChannels(w, c, want)
}

// FailRandomRouters fails k routers drawn uniformly, without
// replacement, from the routers of w still alive in the plan, returning
// the number actually failed.
func (p *Plan) FailRandomRouters(w Wiring, k int) int {
	var cand []int
	for r := 0; r < w.Routers(); r++ {
		if !p.routers[r] {
			cand = append(cand, r)
		}
	}
	failed := 0
	for ; failed < k && len(cand) > 0; failed++ {
		i := int(sim.Mix(sim.DeriveSeed(p.seed, p.ctr)) % uint64(len(cand)))
		p.ctr++
		p.FailRouter(cand[i])
		cand[i] = cand[len(cand)-1]
		cand = cand[:len(cand)-1]
	}
	return failed
}

// failedChannels enumerates the explicitly failed channels of class c,
// each once, identified by its lower (router, port) endpoint, in
// canonical ascending order — the repair-side mirror of channels().
// Channels dead only because a router failed are not included: they are
// not explicit channel faults and revive with the router.
func (p *Plan) failedChannels(w Wiring, c topology.Class) []portKey {
	var out []portKey
	for r := 0; r < w.Routers(); r++ {
		for i := 0; i < w.Radix(r); i++ {
			pt := w.Port(r, i)
			if pt.Class != c || !p.ports[portKey{r, i}] {
				continue
			}
			if c != topology.ClassTerminal {
				if pt.PeerRouter < r || (pt.PeerRouter == r && pt.PeerPort < i) {
					continue
				}
			}
			out = append(out, portKey{r, i})
		}
	}
	return out
}

// RecoverRouter clears router r's failure. Channels that were failed
// explicitly (FailChannel and friends) stay failed; channels dead only
// because the router was down revive with it. Recovering a live router
// is a no-op.
func (p *Plan) RecoverRouter(r int) {
	if !p.routers[r] {
		return
	}
	delete(p.routers, r)
	p.failedRouters--
}

// RecoverChannel clears the explicit failure of the channel attached at
// (r, port), both endpoints. Recovering a live channel is a no-op; the
// channel stays dead in derived views while either endpoint router is
// still down.
func (p *Plan) RecoverChannel(w Wiring, r, port int) {
	if !p.ports[portKey{r, port}] {
		return
	}
	pt := w.Port(r, port)
	delete(p.ports, portKey{r, port})
	if pt.Class != topology.ClassTerminal {
		delete(p.ports, portKey{pt.PeerRouter, pt.PeerPort})
	}
	p.failedClass[pt.Class]--
}

// RecoverRandomChannels repairs k explicitly failed channels of class c
// drawn uniformly, without replacement, from the plan's failed set,
// returning the number actually repaired (fewer than k when fewer are
// failed). The draws come from the same seeded chain as the failure
// draws, so a fail/recover sequence is one deterministic stream.
func (p *Plan) RecoverRandomChannels(w Wiring, c topology.Class, k int) int {
	cand := p.failedChannels(w, c)
	fixed := 0
	for ; fixed < k && len(cand) > 0; fixed++ {
		i := int(sim.Mix(sim.DeriveSeed(p.seed, p.ctr)) % uint64(len(cand)))
		p.ctr++
		p.RecoverChannel(w, cand[i].r, cand[i].p)
		cand[i] = cand[len(cand)-1]
		cand = cand[:len(cand)-1]
	}
	return fixed
}

// RecoverRandomRouters repairs k failed routers drawn uniformly, without
// replacement, returning the number actually repaired.
func (p *Plan) RecoverRandomRouters(k int) int {
	cand := p.FailedRouters()
	fixed := 0
	for ; fixed < k && len(cand) > 0; fixed++ {
		i := int(sim.Mix(sim.DeriveSeed(p.seed, p.ctr)) % uint64(len(cand)))
		p.ctr++
		p.RecoverRouter(cand[i])
		cand[i] = cand[len(cand)-1]
		cand = cand[:len(cand)-1]
	}
	return fixed
}

// RecoverAll clears every failure — routers and channels — returning
// the plan to the pristine state. The draw counter is not reset: a
// later random failure continues the same deterministic stream.
func (p *Plan) RecoverAll() {
	p.routers = make(map[int]bool)
	p.ports = make(map[portKey]bool)
	p.failedRouters = 0
	p.failedClass = [3]int{}
}

// Counts returns the failed router count and the explicitly failed
// channel counts by class (channels dead only because a router failed
// are not included; topology.Degraded.FaultCounts reports those).
func (p *Plan) Counts() (routers, global, local, terminal int) {
	return p.failedRouters,
		p.failedClass[topology.ClassGlobal],
		p.failedClass[topology.ClassLocal],
		p.failedClass[topology.ClassTerminal]
}

// FailedRouters returns the failed router ids in ascending order.
func (p *Plan) FailedRouters() []int {
	out := make([]int, 0, len(p.routers))
	for r := range p.routers {
		out = append(out, r)
	}
	sort.Ints(out)
	return out
}

// String summarises the plan.
func (p *Plan) String() string {
	if p.Empty() {
		return fmt.Sprintf("fault plan (seed %d): no faults", p.seed)
	}
	return fmt.Sprintf("fault plan (seed %d): %d routers, %d global / %d local / %d terminal channels failed",
		p.seed, p.failedRouters,
		p.failedClass[topology.ClassGlobal],
		p.failedClass[topology.ClassLocal],
		p.failedClass[topology.ClassTerminal])
}
