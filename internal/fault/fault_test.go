package fault

import (
	"testing"

	"dragonfly/internal/topology"
)

func testDF(t *testing.T) *topology.Dragonfly {
	t.Helper()
	d, err := topology.NewDragonfly(2, 4, 2, 0) // g=9, 36 routers, 72 terminals
	if err != nil {
		t.Fatalf("NewDragonfly: %v", err)
	}
	return d
}

// samePlans reports whether two plans agree on every router and port of w.
func samePlans(w Wiring, a, b *Plan) bool {
	for r := 0; r < w.Routers(); r++ {
		if a.RouterDown(r) != b.RouterDown(r) {
			return false
		}
		for p := 0; p < w.Radix(r); p++ {
			if a.PortDown(r, p) != b.PortDown(r, p) {
				return false
			}
		}
	}
	return true
}

func TestPlanDeterminism(t *testing.T) {
	// The same seed and the same builder calls must yield the identical
	// plan — this is what makes fault sweeps reproducible across worker
	// counts and hosts.
	d := testDF(t)
	build := func(seed uint64) *Plan {
		p := NewPlan(seed)
		p.FailRandomChannels(d, topology.ClassGlobal, 4)
		p.FailRandomRouters(d, 2)
		p.FailFraction(d, topology.ClassLocal, 0.1)
		return p
	}
	if !samePlans(d, build(42), build(42)) {
		t.Error("same seed produced different plans")
	}
	if samePlans(d, build(42), build(43)) {
		t.Error("different seeds produced the same plan (suspicious for this many draws)")
	}
}

func TestFailChannelMarksBothEnds(t *testing.T) {
	d := testDF(t)
	p := NewPlan(1)
	// First global port of router 0.
	var port = -1
	for i := 0; i < d.Radix(0); i++ {
		if d.Port(0, i).Class == topology.ClassGlobal {
			port = i
			break
		}
	}
	if port < 0 {
		t.Fatal("router 0 has no global port")
	}
	pt := d.Port(0, port)
	p.FailChannel(d, 0, port)
	if !p.PortDown(0, port) {
		t.Error("failed channel not down on the failing end")
	}
	if !p.PortDown(pt.PeerRouter, pt.PeerPort) {
		t.Error("failed channel not down on the peer end (cut cables are symmetric)")
	}
	r, g, l, tm := p.Counts()
	if r != 0 || g != 1 || l != 0 || tm != 0 {
		t.Errorf("Counts() = (%d,%d,%d,%d), want (0,1,0,0)", r, g, l, tm)
	}
	// Idempotent from either end.
	p.FailChannel(d, pt.PeerRouter, pt.PeerPort)
	if _, g, _, _ := p.Counts(); g != 1 {
		t.Errorf("re-failing from the peer end double-counted: %d global", g)
	}
}

func TestFailRandomChannelsExactCount(t *testing.T) {
	d := testDF(t)
	p := NewPlan(5)
	const k = 7
	if got := p.FailRandomChannels(d, topology.ClassGlobal, k); got != k {
		t.Fatalf("FailRandomChannels failed %d, want %d", got, k)
	}
	_, g, l, tm := p.Counts()
	if g != k || l != 0 || tm != 0 {
		t.Errorf("Counts() classes = (%d,%d,%d), want (%d,0,0)", g, l, tm, k)
	}
	// Every marked port really is a global port.
	for r := 0; r < d.Routers(); r++ {
		for i := 0; i < d.Radix(r); i++ {
			if p.PortDown(r, i) && d.Port(r, i).Class != topology.ClassGlobal {
				t.Errorf("non-global port (%d,%d) marked down", r, i)
			}
		}
	}
}

func TestFailRandomChannelsExhaustion(t *testing.T) {
	d := testDF(t)
	p := NewPlan(1)
	// g=9 groups, a*h=8 global ports/router-group... total global
	// channels = routers*h/2.
	total := d.Routers() * 2 / 2
	if got := p.FailRandomChannels(d, topology.ClassGlobal, total+10); got != total {
		t.Errorf("failed %d of %d global channels, want all of them and no more", got, total)
	}
}

func TestFailFractionTargetsTotal(t *testing.T) {
	d := testDF(t)
	total := d.Routers() * 2 / 2 // 36 global channels
	p := NewPlan(9)
	want := int(0.25*float64(total) + 0.5)
	if got := p.FailFraction(d, topology.ClassGlobal, 0.25); got != want {
		t.Errorf("FailFraction(0.25) failed %d, want %d", got, want)
	}
	// A second call to the same fraction fails nothing more: the already
	// failed channels count against the target.
	if got := p.FailFraction(d, topology.ClassGlobal, 0.25); got != 0 {
		t.Errorf("repeated FailFraction(0.25) failed %d more channels", got)
	}
	// Raising the fraction tops up to the new target.
	if got := p.FailFraction(d, topology.ClassGlobal, 0.5); got != total/2-want {
		t.Errorf("FailFraction(0.5) top-up failed %d, want %d", got, total/2-want)
	}
}

func TestFailRouterIdempotent(t *testing.T) {
	p := NewPlan(1)
	p.FailRouter(3)
	p.FailRouter(3)
	if r, _, _, _ := p.Counts(); r != 1 {
		t.Errorf("failed routers = %d, want 1", r)
	}
	if !p.RouterDown(3) || p.RouterDown(4) {
		t.Error("RouterDown wrong")
	}
	if got := p.FailedRouters(); len(got) != 1 || got[0] != 3 {
		t.Errorf("FailedRouters() = %v, want [3]", got)
	}
}

func TestFailRandomRoutersAvoidsRepeats(t *testing.T) {
	d := testDF(t)
	p := NewPlan(2)
	if got := p.FailRandomRouters(d, 5); got != 5 {
		t.Fatalf("FailRandomRouters failed %d, want 5", got)
	}
	if len(p.FailedRouters()) != 5 {
		t.Errorf("distinct failed routers = %d, want 5", len(p.FailedRouters()))
	}
	// Asking for more than exist fails exactly the rest.
	if got := p.FailRandomRouters(d, d.Routers()); got != d.Routers()-5 {
		t.Errorf("second draw failed %d, want %d", got, d.Routers()-5)
	}
}

func TestEmptyAndString(t *testing.T) {
	d := testDF(t)
	p := NewPlan(1)
	if !p.Empty() {
		t.Error("fresh plan not empty")
	}
	if p.Seed() != 1 {
		t.Errorf("Seed() = %d", p.Seed())
	}
	if p.String() == "" {
		t.Error("empty String()")
	}
	p.FailRandomChannels(d, topology.ClassGlobal, 1)
	if p.Empty() {
		t.Error("plan with a failed channel reports Empty")
	}
	if p.String() == "" {
		t.Error("empty String() for non-empty plan")
	}
}
