package fault

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"dragonfly/internal/topology"
)

// Timeline schedules deterministic, seeded fail/recover events at
// simulation cycles: channels by class (random draws or fractions),
// whole routers (by id or random draws), and full recovery. A Timeline
// is a pure description; Compile resolves the random draws against a
// concrete dragonfly and produces the per-epoch degraded views the
// simulator swaps between.
//
// Determinism mirrors Plan: the same seed, the same builder calls and
// the same wiring compile to the identical schedule on every host and
// worker count. All draws come from one seeded SplitMix chain shared
// across the whole timeline, in event order.
type Timeline struct {
	seed   uint64
	events []tevent
}

// opKind is the event verb.
type opKind uint8

const (
	opFailChannels opKind = iota // k random channels of a class
	opFailFraction               // fraction of a class
	opFailRouter                 // a specific router id
	opFailRouters                // k random routers
	opRecoverChannels            // k random failed channels of a class
	opRecoverRouter              // a specific router id
	opRecoverRouters             // k random failed routers
	opRecoverAll                 // clear every failure
)

// tevent is one scheduled event. Events at the same cycle apply in
// insertion order and collapse into a single epoch boundary.
type tevent struct {
	cycle int64
	op    opKind
	class topology.Class
	count int
	frac  float64
	id    int // specific router id
}

// NewTimeline returns an empty timeline drawing its randomness from
// seed.
func NewTimeline(seed uint64) *Timeline {
	return &Timeline{seed: seed}
}

// Seed returns the timeline's seed.
func (tl *Timeline) Seed() uint64 { return tl.seed }

// Empty reports whether the timeline schedules no events.
func (tl *Timeline) Empty() bool { return len(tl.events) == 0 }

// Events returns the number of scheduled events.
func (tl *Timeline) Events() int { return len(tl.events) }

// FailChannelsAt schedules k random channels of class c to fail at the
// given cycle.
func (tl *Timeline) FailChannelsAt(cycle int64, c topology.Class, k int) *Timeline {
	tl.events = append(tl.events, tevent{cycle: cycle, op: opFailChannels, class: c, count: k})
	return tl
}

// FailFractionAt schedules fraction f of the class-c channels to be
// failed (cumulatively, counting channels already down) at the given
// cycle.
func (tl *Timeline) FailFractionAt(cycle int64, c topology.Class, f float64) *Timeline {
	tl.events = append(tl.events, tevent{cycle: cycle, op: opFailFraction, class: c, frac: f})
	return tl
}

// FailRouterAt schedules router id to fail at the given cycle.
func (tl *Timeline) FailRouterAt(cycle int64, id int) *Timeline {
	tl.events = append(tl.events, tevent{cycle: cycle, op: opFailRouter, id: id})
	return tl
}

// FailRoutersAt schedules k random routers to fail at the given cycle.
func (tl *Timeline) FailRoutersAt(cycle int64, k int) *Timeline {
	tl.events = append(tl.events, tevent{cycle: cycle, op: opFailRouters, count: k})
	return tl
}

// RecoverChannelsAt schedules k random explicitly-failed channels of
// class c to be repaired at the given cycle.
func (tl *Timeline) RecoverChannelsAt(cycle int64, c topology.Class, k int) *Timeline {
	tl.events = append(tl.events, tevent{cycle: cycle, op: opRecoverChannels, class: c, count: k})
	return tl
}

// RecoverRouterAt schedules router id to be repaired at the given
// cycle. Channels of the router that were failed explicitly stay down.
func (tl *Timeline) RecoverRouterAt(cycle int64, id int) *Timeline {
	tl.events = append(tl.events, tevent{cycle: cycle, op: opRecoverRouter, id: id})
	return tl
}

// RecoverRoutersAt schedules k random failed routers to be repaired at
// the given cycle.
func (tl *Timeline) RecoverRoutersAt(cycle int64, k int) *Timeline {
	tl.events = append(tl.events, tevent{cycle: cycle, op: opRecoverRouters, count: k})
	return tl
}

// RecoverAllAt schedules every failure to clear at the given cycle.
func (tl *Timeline) RecoverAllAt(cycle int64) *Timeline {
	tl.events = append(tl.events, tevent{cycle: cycle, op: opRecoverAll})
	return tl
}

// String summarises the timeline.
func (tl *Timeline) String() string {
	if tl.Empty() {
		return fmt.Sprintf("fault timeline (seed %d): no events", tl.seed)
	}
	cycles := map[int64]bool{}
	for _, e := range tl.events {
		cycles[e.cycle] = true
	}
	return fmt.Sprintf("fault timeline (seed %d): %d events over %d epochs",
		tl.seed, len(tl.events), len(cycles))
}

// snapshot is the immutable declared fault set of one epoch: a frozen
// copy of the compile-time plan state. It implements topology.FaultView,
// so the epoch's Degraded view and its declared causes travel together.
type snapshot struct {
	routers map[int]bool
	ports   map[portKey]bool
}

// RouterDown implements topology.FaultView.
func (s *snapshot) RouterDown(r int) bool { return s.routers[r] }

// PortDown implements topology.FaultView.
func (s *snapshot) PortDown(r, p int) bool { return s.ports[portKey{r, p}] }

// Epoch is one compiled interval of a schedule: from cycle Start
// (inclusive) until the next epoch's Start, the network operates under
// View.
type Epoch struct {
	// Start is the first cycle this epoch governs.
	Start int64
	// View is the fault-aware topology view of the epoch.
	View *topology.Degraded
	// Faults is the declared fault set the view derives from (failed
	// routers and explicitly failed channel endpoints). Every dead port
	// in View traces back to a declaration here: its own endpoint, its
	// peer endpoint, or a failed endpoint router.
	Faults topology.FaultView
}

// Schedule is a compiled timeline: the epochs in ascending Start order.
// Epochs[0].Start is always 0 (a pristine epoch is synthesised when the
// first event fires later). Views are immutable and may be shared
// across concurrent simulations.
type Schedule struct {
	// Seed is the timeline seed the draws derived from.
	Seed   uint64
	Epochs []Epoch
}

// EpochAt returns the index of the epoch governing the given cycle.
func (s *Schedule) EpochAt(cycle int64) int {
	i := sort.Search(len(s.Epochs), func(i int) bool { return s.Epochs[i].Start > cycle })
	if i == 0 {
		return 0
	}
	return i - 1
}

// Compile resolves the timeline's draws against d and returns the
// epoch schedule. Events at the same cycle apply in insertion order and
// produce one epoch. Compile fails on malformed events (negative
// cycles or counts, fractions outside [0,1], router ids out of range)
// and on any epoch that would leave zero live terminals — a timeline
// must degrade the machine, not erase it.
func (tl *Timeline) Compile(d topology.Machine) (*Schedule, error) {
	evs := make([]tevent, len(tl.events))
	copy(evs, tl.events)
	sort.SliceStable(evs, func(i, j int) bool { return evs[i].cycle < evs[j].cycle })

	for _, e := range evs {
		if e.cycle < 0 {
			return nil, fmt.Errorf("fault: timeline event at negative cycle %d", e.cycle)
		}
		switch e.op {
		case opFailChannels, opFailRouters, opRecoverChannels, opRecoverRouters:
			if e.count < 0 {
				return nil, fmt.Errorf("fault: timeline event at cycle %d: negative count %d", e.cycle, e.count)
			}
		case opFailFraction:
			if math.IsNaN(e.frac) || e.frac < 0 || e.frac > 1 {
				return nil, fmt.Errorf("fault: timeline event at cycle %d: fraction %v out of [0,1]", e.cycle, e.frac)
			}
		case opFailRouter, opRecoverRouter:
			if e.id < 0 || e.id >= d.Routers() {
				return nil, fmt.Errorf("fault: timeline event at cycle %d: router %d out of range [0,%d)", e.cycle, e.id, d.Routers())
			}
		}
	}

	st := NewPlan(tl.seed)
	sched := &Schedule{Seed: tl.seed}
	snap := func(start int64) error {
		ep := Epoch{Start: start, Faults: st.freeze()}
		ep.View = topology.NewDegraded(d, ep.Faults)
		if ep.View.AliveTerminals() == 0 {
			return fmt.Errorf("fault: timeline leaves no live terminals from cycle %d", start)
		}
		sched.Epochs = append(sched.Epochs, ep)
		return nil
	}

	i := 0
	for i < len(evs) {
		cycle := evs[i].cycle
		if len(sched.Epochs) == 0 && cycle > 0 {
			if err := snap(0); err != nil {
				return nil, err
			}
		}
		for ; i < len(evs) && evs[i].cycle == cycle; i++ {
			tl.apply(st, d, evs[i])
		}
		if err := snap(cycle); err != nil {
			return nil, err
		}
	}
	if len(sched.Epochs) == 0 {
		if err := snap(0); err != nil {
			return nil, err
		}
	}
	return sched, nil
}

// apply executes one event against the compile-time plan state.
func (tl *Timeline) apply(st *Plan, d topology.Machine, e tevent) {
	switch e.op {
	case opFailChannels:
		st.FailRandomChannels(d, e.class, e.count)
	case opFailFraction:
		st.FailFraction(d, e.class, e.frac)
	case opFailRouter:
		st.FailRouter(e.id)
	case opFailRouters:
		st.FailRandomRouters(d, e.count)
	case opRecoverChannels:
		st.RecoverRandomChannels(d, e.class, e.count)
	case opRecoverRouter:
		st.RecoverRouter(e.id)
	case opRecoverRouters:
		st.RecoverRandomRouters(e.count)
	case opRecoverAll:
		st.RecoverAll()
	}
}

// freeze copies the plan's declared fault set into an immutable
// snapshot.
func (p *Plan) freeze() *snapshot {
	s := &snapshot{
		routers: make(map[int]bool, len(p.routers)),
		ports:   make(map[portKey]bool, len(p.ports)),
	}
	for r := range p.routers {
		s.routers[r] = true
	}
	for k := range p.ports {
		s.ports[k] = true
	}
	return s
}

// classNames maps the spec grammar's class keywords.
var classNames = map[string]topology.Class{
	"global":   topology.ClassGlobal,
	"local":    topology.ClassLocal,
	"terminal": topology.ClassTerminal,
}

// ParseTimeline parses the -fault-timeline spec grammar into a
// timeline drawing its randomness from seed:
//
//	spec   := event (';' event)*
//	event  := '@' CYCLE verb arg...
//	verb   := 'fail' | 'recover'
//	arg    := CLASS '=' AMOUNT   (CLASS: global, local, terminal)
//	        | 'routers=' COUNT   (random routers)
//	        | 'router=' ID       (a specific router)
//	        | 'all'              (recover only: clear every failure)
//	AMOUNT := fraction in (0,1) for fail (e.g. 0.25), else a count
//
// Example: "@2000 fail global=0.25; @4000 fail router=7; @8000 recover all"
// fails a quarter of the global channels at cycle 2000, router 7 at
// cycle 4000, and repairs everything at cycle 8000.
func ParseTimeline(spec string, seed uint64) (*Timeline, error) {
	tl := NewTimeline(seed)
	for _, raw := range strings.Split(spec, ";") {
		ev := strings.TrimSpace(raw)
		if ev == "" {
			continue
		}
		fields := strings.Fields(ev)
		if len(fields) < 2 || !strings.HasPrefix(fields[0], "@") {
			return nil, fmt.Errorf("fault: bad timeline event %q: want \"@CYCLE fail|recover args\"", ev)
		}
		var cycle int64
		if _, err := fmt.Sscanf(fields[0][1:], "%d", &cycle); err != nil || cycle < 0 {
			return nil, fmt.Errorf("fault: bad timeline cycle %q", fields[0])
		}
		verb := fields[1]
		if verb != "fail" && verb != "recover" {
			return nil, fmt.Errorf("fault: bad timeline verb %q (want fail or recover)", verb)
		}
		args := fields[2:]
		if len(args) == 0 {
			return nil, fmt.Errorf("fault: timeline event %q has nothing to %s", ev, verb)
		}
		for _, arg := range args {
			if err := tl.parseArg(cycle, verb, arg); err != nil {
				return nil, err
			}
		}
	}
	return tl, nil
}

// parseArg appends the builder call for one event argument.
func (tl *Timeline) parseArg(cycle int64, verb, arg string) error {
	if arg == "all" {
		if verb != "recover" {
			return fmt.Errorf("fault: timeline: \"all\" is only valid after recover")
		}
		tl.RecoverAllAt(cycle)
		return nil
	}
	key, val, ok := strings.Cut(arg, "=")
	if !ok {
		return fmt.Errorf("fault: bad timeline argument %q (want key=value or all)", arg)
	}
	num, err := parseAmount(val)
	if err != nil {
		return fmt.Errorf("fault: bad timeline amount %q: %w", arg, err)
	}
	isFrac := num > 0 && num < 1
	count := int(num + 0.5)
	switch {
	case key == "router":
		if isFrac {
			return fmt.Errorf("fault: timeline: router=%s wants an id, not a fraction", val)
		}
		if verb == "fail" {
			tl.FailRouterAt(cycle, count)
		} else {
			tl.RecoverRouterAt(cycle, count)
		}
	case key == "routers":
		if isFrac {
			return fmt.Errorf("fault: timeline: routers=%s wants a count, not a fraction", val)
		}
		if verb == "fail" {
			tl.FailRoutersAt(cycle, count)
		} else {
			tl.RecoverRoutersAt(cycle, count)
		}
	default:
		c, ok := classNames[key]
		if !ok {
			return fmt.Errorf("fault: timeline: unknown key %q (want global, local, terminal, routers, router)", key)
		}
		switch {
		case verb == "fail" && isFrac:
			tl.FailFractionAt(cycle, c, num)
		case verb == "fail":
			tl.FailChannelsAt(cycle, c, count)
		case isFrac:
			return fmt.Errorf("fault: timeline: recover %s=%s wants a count, not a fraction", key, val)
		default:
			tl.RecoverChannelsAt(cycle, c, count)
		}
	}
	return nil
}

// parseAmount parses a non-negative count or fraction.
func parseAmount(s string) (float64, error) {
	var v float64
	if _, err := fmt.Sscanf(s, "%g", &v); err != nil {
		return 0, err
	}
	if math.IsNaN(v) || math.IsInf(v, 0) || v < 0 {
		return 0, fmt.Errorf("amount %v out of range", v)
	}
	return v, nil
}
