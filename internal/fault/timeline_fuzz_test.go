package fault

import (
	"testing"

	"dragonfly/internal/topology"
)

// fuzzDF builds the small fuzz topology (36 routers, 72 terminals).
func fuzzDF(f *testing.F) *topology.Dragonfly {
	f.Helper()
	d, err := topology.NewDragonfly(2, 4, 2, 0)
	if err != nil {
		f.Fatalf("NewDragonfly: %v", err)
	}
	return d
}

// checkSchedule asserts the structural contract of a compiled
// schedule: epochs sorted from cycle 0, every epoch live, and — the
// core property — no undeclared dead state: every port the view marks
// dead traces back to a declared fault (its own endpoint, its peer's
// endpoint, or a down endpoint router), and every declared fault is
// actually dead in the view.
func checkSchedule(t *testing.T, d *topology.Dragonfly, sched *Schedule) {
	t.Helper()
	if len(sched.Epochs) == 0 {
		t.Fatal("schedule has no epochs")
	}
	if sched.Epochs[0].Start != 0 {
		t.Fatalf("first epoch starts at %d, want 0", sched.Epochs[0].Start)
	}
	for i, e := range sched.Epochs {
		if i > 0 && e.Start <= sched.Epochs[i-1].Start {
			t.Fatalf("epoch starts not strictly increasing: %d then %d", sched.Epochs[i-1].Start, e.Start)
		}
		if e.View == nil || e.Faults == nil {
			t.Fatalf("epoch %d missing view or fault set", i)
		}
		if e.View.AliveTerminals() == 0 {
			t.Fatalf("epoch %d compiled with zero live terminals", i)
		}
		for r := 0; r < d.Routers(); r++ {
			if e.Faults.RouterDown(r) && !e.View.RouterDown(r) {
				t.Fatalf("epoch %d: router %d declared down but alive in view", i, r)
			}
			for p := 0; p < d.Radix(r); p++ {
				port := d.Port(r, p)
				declared := e.Faults.PortDown(r, p) || e.Faults.RouterDown(r)
				if port.PeerRouter >= 0 {
					declared = declared || e.Faults.PortDown(port.PeerRouter, port.PeerPort) ||
						e.Faults.RouterDown(port.PeerRouter)
				}
				if declared && e.View.Alive(r, p) {
					t.Fatalf("epoch %d: port (%d,%d) declared dead but alive in view", i, r, p)
				}
				if !declared && !e.View.Alive(r, p) {
					t.Fatalf("epoch %d: port (%d,%d) dead in view with no declared cause", i, r, p)
				}
				// Channel deadness is endpoint-symmetric.
				if port.PeerRouter >= 0 &&
					e.View.Alive(r, p) != e.View.Alive(port.PeerRouter, port.PeerPort) {
					t.Fatalf("epoch %d: port (%d,%d) and its peer disagree on liveness", i, r, p)
				}
			}
		}
	}
}

// FuzzTimelineCompile drives the compiler with arbitrary event
// orderings built from the fuzz input and asserts that every schedule
// it accepts satisfies checkSchedule — in particular that epoch
// compilation never yields a dead port without a declared cause.
func FuzzTimelineCompile(f *testing.F) {
	d := fuzzDF(f)
	f.Add(uint64(1), []byte{0, 10, 0, 3, 7, 20, 0, 0})
	f.Add(uint64(2), []byte{2, 5, 0, 200, 4, 50, 1, 2, 7, 90, 0, 0})
	f.Add(uint64(3), []byte{1, 0, 0, 25, 1, 0, 1, 80, 3, 30, 0, 2})
	f.Add(uint64(4), []byte{})
	f.Fuzz(func(t *testing.T, seed uint64, data []byte) {
		tl := NewTimeline(seed)
		classes := []topology.Class{topology.ClassGlobal, topology.ClassLocal, topology.ClassTerminal}
		// Each 4-byte chunk is one event: (op, cycle, class, amount).
		// Values are folded into valid builder inputs — the fuzz target
		// exercises orderings and recover/fail interleavings, not the
		// validation rejections (those have explicit tests).
		for len(data) >= 4 {
			op, cyc, cls, amt := data[0], data[1], data[2], data[3]
			data = data[4:]
			cycle := int64(cyc) * 7
			c := classes[int(cls)%len(classes)]
			count := int(amt % 8)
			switch op % 8 {
			case 0:
				tl.FailChannelsAt(cycle, c, count)
			case 1:
				// Cap fractions so the terminal class cannot erase the
				// machine (which Compile rightly rejects).
				tl.FailFractionAt(cycle, c, float64(amt%90)/100)
			case 2:
				tl.FailRouterAt(cycle, int(amt)%d.Routers())
			case 3:
				tl.FailRoutersAt(cycle, count)
			case 4:
				tl.RecoverChannelsAt(cycle, c, count)
			case 5:
				tl.RecoverRouterAt(cycle, int(amt)%d.Routers())
			case 6:
				tl.RecoverRoutersAt(cycle, count)
			case 7:
				tl.RecoverAllAt(cycle)
			}
		}
		sched, err := tl.Compile(d)
		if err != nil {
			// The only legitimate rejection for in-range inputs is a
			// machine-erasing epoch (random router draws can kill every
			// router that still has terminals).
			return
		}
		checkSchedule(t, d, sched)
	})
}

// FuzzParseTimeline throws arbitrary spec strings at the parser: it
// must never panic, and everything it accepts must either compile into
// a well-formed schedule or be rejected by Compile's validation.
func FuzzParseTimeline(f *testing.F) {
	d := fuzzDF(f)
	f.Add("@2000 fail global=0.25; @4000 fail router=7; @8000 recover all", uint64(1))
	f.Add("@0 fail local=3; @10 recover local=1", uint64(2))
	f.Add("@5 fail routers=2 global=1; @9 recover routers=1", uint64(3))
	f.Add("", uint64(4))
	f.Add(";;;", uint64(5))
	f.Add("@1 fail terminal=1", uint64(6))
	f.Fuzz(func(t *testing.T, spec string, seed uint64) {
		tl, err := ParseTimeline(spec, seed)
		if err != nil {
			return
		}
		sched, err := tl.Compile(d)
		if err != nil {
			return
		}
		checkSchedule(t, d, sched)
	})
}
