package fault

import (
	"strings"
	"testing"

	"dragonfly/internal/topology"
)

func TestTimelineCompileEpochs(t *testing.T) {
	d := testDF(t)
	// Events inserted out of cycle order: the compiler must sort them.
	tl := NewTimeline(7).
		FailChannelsAt(100, topology.ClassGlobal, 2).
		FailRouterAt(50, 3)
	sched, err := tl.Compile(d)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	if len(sched.Epochs) != 3 {
		t.Fatalf("epochs: %d, want 3 (pristine, @50, @100)", len(sched.Epochs))
	}
	wantStarts := []int64{0, 50, 100}
	for i, e := range sched.Epochs {
		if e.Start != wantStarts[i] {
			t.Errorf("epoch %d start %d, want %d", i, e.Start, wantStarts[i])
		}
		if e.View == nil || e.Faults == nil {
			t.Fatalf("epoch %d missing view or fault set", i)
		}
	}
	if r, g, l, term := sched.Epochs[0].View.FaultCounts(); r+g+l+term != 0 {
		t.Errorf("synthesised pristine epoch has faults: %d routers %d/%d/%d channels", r, g, l, term)
	}
	if r, _, _, _ := sched.Epochs[1].View.FaultCounts(); r != 1 {
		t.Errorf("epoch @50: %d routers down, want 1", r)
	}
	if !sched.Epochs[1].View.RouterDown(3) {
		t.Error("epoch @50: router 3 not down")
	}
	// Router 3 being down kills its own 2 global channels on top of the
	// 2 explicitly failed ones.
	if r, g, _, _ := sched.Epochs[2].View.FaultCounts(); r != 1 || g != 4 {
		t.Errorf("epoch @100: %d routers %d globals down, want 1 and 4", r, g)
	}
}

func TestTimelineEpochAt(t *testing.T) {
	d := testDF(t)
	sched, err := NewTimeline(1).
		FailChannelsAt(50, topology.ClassGlobal, 1).
		RecoverAllAt(200).
		Compile(d)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	cases := []struct {
		cycle int64
		want  int
	}{{0, 0}, {49, 0}, {50, 1}, {199, 1}, {200, 2}, {1 << 40, 2}}
	for _, c := range cases {
		if got := sched.EpochAt(c.cycle); got != c.want {
			t.Errorf("EpochAt(%d) = %d, want %d", c.cycle, got, c.want)
		}
	}
}

func TestTimelineRecoverAllRestoresPristine(t *testing.T) {
	d := testDF(t)
	sched, err := NewTimeline(3).
		FailFractionAt(10, topology.ClassGlobal, 0.25).
		FailRoutersAt(10, 2).
		RecoverAllAt(500).
		Compile(d)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	last := sched.Epochs[len(sched.Epochs)-1]
	if last.Start != 500 {
		t.Fatalf("final epoch starts at %d, want 500", last.Start)
	}
	if r, g, l, term := last.View.FaultCounts(); r+g+l+term != 0 {
		t.Errorf("recover-all epoch still has faults: %d routers, %d/%d/%d channels", r, g, l, term)
	}
	if got := last.View.AliveTerminals(); got != d.Terminals() {
		t.Errorf("recover-all epoch: %d live terminals, want %d", got, d.Terminals())
	}
}

func TestTimelineSameCycleEventsCollapse(t *testing.T) {
	d := testDF(t)
	sched, err := NewTimeline(1).
		FailChannelsAt(100, topology.ClassGlobal, 1).
		FailChannelsAt(100, topology.ClassLocal, 2).
		FailRouterAt(100, 8).
		Compile(d)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	if len(sched.Epochs) != 2 {
		t.Fatalf("epochs: %d, want 2 (three same-cycle events collapse into one boundary)", len(sched.Epochs))
	}
	// FaultCounts counts router-induced channel deaths too: router 8
	// contributes its own 2 global and 3 local channels on top of the
	// explicit 1 global + 2 local failures.
	r, g, l, _ := sched.Epochs[1].View.FaultCounts()
	if r != 1 || g != 3 || l != 5 {
		t.Errorf("collapsed epoch counts: %d routers %d global %d local, want 1/3/5", r, g, l)
	}
}

func TestTimelineCompileDeterminism(t *testing.T) {
	d := testDF(t)
	build := func() *Schedule {
		sched, err := NewTimeline(42).
			FailFractionAt(100, topology.ClassGlobal, 0.2).
			FailRoutersAt(300, 3).
			RecoverChannelsAt(600, topology.ClassGlobal, 2).
			RecoverRoutersAt(600, 1).
			Compile(d)
		if err != nil {
			t.Fatalf("Compile: %v", err)
		}
		return sched
	}
	a, b := build(), build()
	if len(a.Epochs) != len(b.Epochs) {
		t.Fatalf("epoch counts differ: %d vs %d", len(a.Epochs), len(b.Epochs))
	}
	for i := range a.Epochs {
		for r := 0; r < d.Routers(); r++ {
			for p := 0; p < d.Radix(r); p++ {
				if a.Epochs[i].View.Alive(r, p) != b.Epochs[i].View.Alive(r, p) {
					t.Fatalf("epoch %d: port (%d,%d) liveness differs between identical compiles", i, r, p)
				}
			}
		}
	}
}

// TestTimelineCycleZeroMatchesPlan pins the equivalence the golden
// tests rely on: a timeline whose only events fire at cycle 0 compiles
// to exactly the fault set a standing Plan with the same seed and the
// same calls produces.
func TestTimelineCycleZeroMatchesPlan(t *testing.T) {
	d := testDF(t)
	sched, err := NewTimeline(5).
		FailFractionAt(0, topology.ClassGlobal, 0.10).
		Compile(d)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	if len(sched.Epochs) != 1 {
		t.Fatalf("epochs: %d, want 1", len(sched.Epochs))
	}
	plan := NewPlan(5)
	plan.FailFraction(d, topology.ClassGlobal, 0.10)
	for r := 0; r < d.Routers(); r++ {
		if sched.Epochs[0].Faults.RouterDown(r) != plan.RouterDown(r) {
			t.Fatalf("router %d: timeline and plan disagree", r)
		}
		for p := 0; p < d.Radix(r); p++ {
			if sched.Epochs[0].Faults.PortDown(r, p) != plan.PortDown(r, p) {
				t.Fatalf("port (%d,%d): timeline and plan disagree", r, p)
			}
		}
	}
}

func TestTimelineCompileErrors(t *testing.T) {
	d := testDF(t)
	cases := []struct {
		name string
		tl   *Timeline
	}{
		{"negative cycle", NewTimeline(1).FailChannelsAt(-5, topology.ClassGlobal, 1)},
		{"negative count", NewTimeline(1).FailChannelsAt(10, topology.ClassGlobal, -1)},
		{"fraction > 1", NewTimeline(1).FailFractionAt(10, topology.ClassGlobal, 1.5)},
		{"negative fraction", NewTimeline(1).FailFractionAt(10, topology.ClassGlobal, -0.1)},
		{"router out of range", NewTimeline(1).FailRouterAt(10, d.Routers())},
		{"negative router", NewTimeline(1).FailRouterAt(10, -1)},
		{"no live terminals", NewTimeline(1).FailFractionAt(10, topology.ClassTerminal, 1.0)},
	}
	for _, c := range cases {
		if _, err := c.tl.Compile(d); err == nil {
			t.Errorf("%s: compiled without error", c.name)
		}
	}
}

func TestTimelineRecoveryBuilders(t *testing.T) {
	d := testDF(t)
	// Fail 4 globals, recover 2 of them: the final epoch must hold
	// exactly 2 failed globals, and the recovered ones must be drawn
	// from the failed set (never newly failed channels).
	sched, err := NewTimeline(9).
		FailChannelsAt(10, topology.ClassGlobal, 4).
		RecoverChannelsAt(20, topology.ClassGlobal, 2).
		Compile(d)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	_, gFail, _, _ := sched.Epochs[1].View.FaultCounts()
	_, gRec, _, _ := sched.Epochs[2].View.FaultCounts()
	if gFail != 4 || gRec != 2 {
		t.Fatalf("global fault counts: %d then %d, want 4 then 2", gFail, gRec)
	}
	// Every port dead in the recovered epoch was dead in the failed one.
	for r := 0; r < d.Routers(); r++ {
		for p := 0; p < d.Radix(r); p++ {
			if !sched.Epochs[2].View.Alive(r, p) && sched.Epochs[1].View.Alive(r, p) {
				t.Fatalf("port (%d,%d) dead after recovery but alive before", r, p)
			}
		}
	}

	// Router recovery by id.
	sched, err = NewTimeline(9).
		FailRouterAt(10, 4).
		RecoverRouterAt(20, 4).
		Compile(d)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	if sched.Epochs[1].View.RouterDown(4) != true || sched.Epochs[2].View.RouterDown(4) != false {
		t.Error("router 4 fail/recover sequence wrong")
	}
}

func TestParseTimeline(t *testing.T) {
	d := testDF(t)
	tl, err := ParseTimeline("@2000 fail global=0.25; @4000 fail router=7; @8000 recover all", 1)
	if err != nil {
		t.Fatalf("ParseTimeline: %v", err)
	}
	if tl.Events() != 3 {
		t.Fatalf("events: %d, want 3", tl.Events())
	}
	sched, err := tl.Compile(d)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	if len(sched.Epochs) != 4 {
		t.Fatalf("epochs: %d, want 4", len(sched.Epochs))
	}
	if !sched.Epochs[2].View.RouterDown(7) {
		t.Error("router 7 not down after @4000")
	}
	if r, g, l, term := sched.Epochs[3].View.FaultCounts(); r+g+l+term != 0 {
		t.Error("recover all did not clear the faults")
	}

	// Counts, multiple args per event, blank events tolerated.
	tl, err = ParseTimeline(" @10 fail global=3 routers=2 ;; @20 recover global=1 ", 1)
	if err != nil {
		t.Fatalf("ParseTimeline: %v", err)
	}
	if tl.Events() != 3 {
		t.Fatalf("events: %d, want 3", tl.Events())
	}

	bad := []string{
		"fail global=1",            // missing @CYCLE
		"@x fail global=1",         // bad cycle
		"@-5 fail global=1",        // negative cycle
		"@10 explode global=1",     // bad verb
		"@10 fail",                 // nothing to fail
		"@10 fail all",             // all is recover-only
		"@10 fail widgets=1",       // unknown key
		"@10 fail router=0.5",      // router id as fraction
		"@10 recover global=0.5",   // recover fraction
		"@10 fail global",          // missing =value
		"@10 fail global=banana",   // unparseable amount
		"@10 fail routers=0.25",    // router count as fraction
		"@10 fail global=-2",       // negative amount
	}
	for _, spec := range bad {
		if _, err := ParseTimeline(spec, 1); err == nil {
			t.Errorf("spec %q parsed without error", spec)
		}
	}
}

func TestTimelineString(t *testing.T) {
	tl := NewTimeline(4)
	if s := tl.String(); !strings.Contains(s, "no events") {
		t.Errorf("empty timeline string: %q", s)
	}
	tl.FailChannelsAt(10, topology.ClassGlobal, 1).RecoverAllAt(20)
	if s := tl.String(); !strings.Contains(s, "2 events") || !strings.Contains(s, "2 epochs") {
		t.Errorf("timeline string: %q", s)
	}
}
