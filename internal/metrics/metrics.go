// Package metrics is the simulator's instrumentation layer: a small
// event interface the cycle engine emits into, with implementations
// that aggregate per-channel utilization, input-buffer VC occupancy
// histograms, credit round-trip samples and drop/stall counters.
//
// The layer is designed to cost nothing when unused. The simulator
// holds a Collector interface value that is nil in the common case, and
// every emission site in the hot loop is guarded by a single nil check
// — a plain simulation pays one untaken branch per event site and no
// interface call, no allocation, no counter write. Attaching a
// collector (Network.AttachMetrics) switches the events on for exactly
// as long as it stays attached.
package metrics

// Collector receives instrumentation events from the cycle engine.
// Implementations must not retain references into simulator state and
// must be cheap: events fire from the hot loop, once per flit or
// credit. A nil Collector is the zero-cost "off" state; use Multi to
// fan events out to several collectors.
type Collector interface {
	// ChannelFlit records one flit forwarded onto the channel with the
	// given link id (Network.LinkID maps (router, port) to link ids).
	ChannelFlit(link int)
	// VCOccupancy records the occupancy of input buffer (router, port,
	// vc) right after a flit was delivered into it.
	VCOccupancy(router, port, vc, occupancy int)
	// CreditRTT records one measured credit round-trip time on output
	// (router, port): the cycles from flit departure to credit return.
	CreditRTT(router, port int, rtt int64)
	// Drop records a packet dropped as unroutable at the given router.
	Drop(router int)
	// Stall records a deadlock-detector trip at the given cycle.
	Stall(cycle int64)
	// Kill records a packet destroyed in flight by a fault-timeline
	// epoch swap (its channel failed or its router went down) at the
	// given router. Distinct from Drop: a killed packet was routable,
	// the fault simply destroyed it.
	Kill(router int)
	// Reroute records a queued packet re-pointed at a new output after
	// an epoch swap killed its chosen channel, at the given router.
	Reroute(router int)
	// EpochSwitch records a fault-timeline epoch becoming active at the
	// given cycle.
	EpochSwitch(cycle int64, epoch int)
}

// ChannelUtil counts flits per channel, the measurement behind the
// paper's Figure 9 (per-channel utilization). Only ChannelFlit is
// active; every other event is a no-op.
type ChannelUtil struct {
	busy   []int64
	window int64
}

// NewChannelUtil returns a counter set for a network with the given
// number of links (Network.NumLinks).
func NewChannelUtil(links int) *ChannelUtil {
	return &ChannelUtil{busy: make([]int64, links)}
}

// ChannelFlit implements Collector.
func (u *ChannelUtil) ChannelFlit(link int) { u.busy[link]++ }

// VCOccupancy implements Collector (no-op).
func (u *ChannelUtil) VCOccupancy(int, int, int, int) {}

// CreditRTT implements Collector (no-op).
func (u *ChannelUtil) CreditRTT(int, int, int64) {}

// Drop implements Collector (no-op).
func (u *ChannelUtil) Drop(int) {}

// Stall implements Collector (no-op).
func (u *ChannelUtil) Stall(int64) {}

// Kill implements Collector (no-op).
func (u *ChannelUtil) Kill(int) {}

// Reroute implements Collector (no-op).
func (u *ChannelUtil) Reroute(int) {}

// EpochSwitch implements Collector (no-op).
func (u *ChannelUtil) EpochSwitch(int64, int) {}

// Busy returns the flit count recorded on link id since the last Reset.
func (u *ChannelUtil) Busy(link int) int64 { return u.busy[link] }

// Links returns the number of tracked channels.
func (u *ChannelUtil) Links() int { return len(u.busy) }

// Reset clears all counters.
func (u *ChannelUtil) Reset() {
	for i := range u.busy {
		u.busy[i] = 0
	}
	u.window = 0
}

// SetWindow records the measurement window length used to normalise
// Utilization.
func (u *ChannelUtil) SetWindow(cycles int64) { u.window = cycles }

// Utilization returns Busy(link) divided by the recorded window, or 0
// when no window was set.
func (u *ChannelUtil) Utilization(link int) float64 {
	if u.window <= 0 {
		return 0
	}
	return float64(u.busy[link]) / float64(u.window)
}

// Full aggregates every event the engine emits: channel counters, an
// input-buffer VC occupancy histogram, credit round-trip statistics and
// drop/stall counts. It is the "turn everything on" collector used by
// diagnostics; sweeps that only need one signal should attach the
// narrower collector instead.
type Full struct {
	// Channels is the per-link flit counter (nil until the first event
	// if constructed with zero links — use NewFull).
	Channels *ChannelUtil
	// VCHist[occ] counts deliveries that found their input VC at
	// occupancy occ (post-increment); the histogram of the paper's
	// buffer-depth discussion. Grows on demand.
	VCHist []int64
	// RTT aggregates credit round-trip samples.
	RTTCount, RTTSum, RTTMax int64
	// Drops counts packets dropped as unroutable; Stalls counts
	// deadlock-detector trips.
	Drops, Stalls int64
	// Kills counts packets destroyed in flight by fault-timeline epoch
	// swaps; Reroutes counts queued packets re-pointed after a swap.
	Kills, Reroutes int64
	// Epochs counts fault-timeline epoch activations (the pristine
	// starting epoch included when a timeline is installed).
	Epochs int64
	// LastEpoch is the most recently activated epoch index, -1 before
	// any EpochSwitch event.
	LastEpoch int
}

// NewFull returns a Full collector for a network with the given number
// of links.
func NewFull(links int) *Full {
	return &Full{Channels: NewChannelUtil(links), LastEpoch: -1}
}

// ChannelFlit implements Collector.
func (f *Full) ChannelFlit(link int) { f.Channels.busy[link]++ }

// VCOccupancy implements Collector.
func (f *Full) VCOccupancy(_, _, _, occupancy int) {
	for occupancy >= len(f.VCHist) {
		f.VCHist = append(f.VCHist, 0)
	}
	f.VCHist[occupancy]++
}

// CreditRTT implements Collector.
func (f *Full) CreditRTT(_, _ int, rtt int64) {
	f.RTTCount++
	f.RTTSum += rtt
	if rtt > f.RTTMax {
		f.RTTMax = rtt
	}
}

// Drop implements Collector.
func (f *Full) Drop(int) { f.Drops++ }

// Stall implements Collector.
func (f *Full) Stall(int64) { f.Stalls++ }

// Kill implements Collector.
func (f *Full) Kill(int) { f.Kills++ }

// Reroute implements Collector.
func (f *Full) Reroute(int) { f.Reroutes++ }

// EpochSwitch implements Collector.
func (f *Full) EpochSwitch(_ int64, epoch int) {
	f.Epochs++
	f.LastEpoch = epoch
}

// RTTMean returns the average credit round-trip sample, 0 if none.
func (f *Full) RTTMean() float64 {
	if f.RTTCount == 0 {
		return 0
	}
	return float64(f.RTTSum) / float64(f.RTTCount)
}

// Multi fans every event out to all collectors in order.
type Multi []Collector

// ChannelFlit implements Collector.
func (m Multi) ChannelFlit(link int) {
	for _, c := range m {
		c.ChannelFlit(link)
	}
}

// VCOccupancy implements Collector.
func (m Multi) VCOccupancy(router, port, vc, occupancy int) {
	for _, c := range m {
		c.VCOccupancy(router, port, vc, occupancy)
	}
}

// CreditRTT implements Collector.
func (m Multi) CreditRTT(router, port int, rtt int64) {
	for _, c := range m {
		c.CreditRTT(router, port, rtt)
	}
}

// Drop implements Collector.
func (m Multi) Drop(router int) {
	for _, c := range m {
		c.Drop(router)
	}
}

// Stall implements Collector.
func (m Multi) Stall(cycle int64) {
	for _, c := range m {
		c.Stall(cycle)
	}
}

// Kill implements Collector.
func (m Multi) Kill(router int) {
	for _, c := range m {
		c.Kill(router)
	}
}

// Reroute implements Collector.
func (m Multi) Reroute(router int) {
	for _, c := range m {
		c.Reroute(router)
	}
}

// EpochSwitch implements Collector.
func (m Multi) EpochSwitch(cycle int64, epoch int) {
	for _, c := range m {
		c.EpochSwitch(cycle, epoch)
	}
}
