// Package metrics is the simulator's instrumentation layer: a small
// event interface the cycle engine emits into, with implementations
// that aggregate per-channel utilization, input-buffer VC occupancy
// histograms, credit round-trip samples and drop/stall counters.
//
// The layer is designed to cost nothing when unused. The simulator
// holds a Collector interface value that is nil in the common case, and
// every emission site in the hot loop is guarded by a single nil check
// — a plain simulation pays one untaken branch per event site and no
// interface call, no allocation, no counter write. Attaching a
// collector (Network.AttachMetrics) switches the events on for exactly
// as long as it stays attached.
//
// # Core interface and extension interfaces
//
// Collector is deliberately small: the five events every run can emit.
// Everything else — fault-timeline events, per-ejection and per-hop
// records, cycle boundaries, link liveness — lives in optional
// extension interfaces (FaultObserver, EpochObserver, EjectObserver,
// CycleObserver, HopObserver, LinkStateObserver) that the engine
// discovers once, by type assertion, when the collector is attached.
// A collector subscribes to an event family by implementing its
// interface; adding a new extension interface never breaks existing
// implementations. Embed Nop to satisfy the core interface with
// no-ops and override only the events you consume.
package metrics

// Collector receives the core instrumentation events from the cycle
// engine. Implementations must not retain references into simulator
// state and must be cheap: events fire from the hot loop, once per
// flit or credit. A nil Collector is the zero-cost "off" state; use
// Multi to fan events out to several collectors, and embed Nop so
// only the events you consume need methods.
type Collector interface {
	// ChannelFlit records one flit forwarded onto the channel with the
	// given link id (Network.LinkID maps (router, port) to link ids).
	ChannelFlit(link int)
	// VCOccupancy records the occupancy of input buffer (router, port,
	// vc) right after a flit was delivered into it.
	VCOccupancy(router, port, vc, occupancy int)
	// CreditRTT records one measured credit round-trip time on output
	// (router, port): the cycles from flit departure to credit return.
	CreditRTT(router, port int, rtt int64)
	// Drop records a packet dropped as unroutable at the given router.
	Drop(router int)
	// Stall records a deadlock-detector trip at the given cycle.
	Stall(cycle int64)
}

// FaultObserver is the extension interface for fault-timeline packet
// events. Collectors that implement it alongside Collector receive
// them; everyone else never sees them.
type FaultObserver interface {
	// Kill records a packet destroyed in flight by a fault-timeline
	// epoch swap (its channel failed or its router went down) at the
	// given router. Distinct from Drop: a killed packet was routable,
	// the fault simply destroyed it.
	Kill(router int)
	// Reroute records a queued packet re-pointed at a new output after
	// an epoch swap killed its chosen channel, at the given router.
	Reroute(router int)
}

// EpochObserver is the extension interface for fault-timeline epoch
// activations.
type EpochObserver interface {
	// EpochSwitch records a fault-timeline epoch becoming active at the
	// given cycle.
	EpochSwitch(cycle int64, epoch int)
}

// CycleObserver is the extension interface for cycle boundaries: the
// engine calls CycleEnd exactly once per simulated cycle, after every
// router has been serviced. Windowed collectors (internal/obs) use it
// to close measurement windows deterministically.
type CycleObserver interface {
	CycleEnd(cycle int64)
}

// Eject is the payload of an ejection event: one packet leaving the
// network at its destination terminal.
type Eject struct {
	// Cycle is the ejection cycle; Packet the network-unique packet id.
	Cycle  int64
	Packet uint64
	// Router is the destination router the packet ejected at.
	Router int
	// Latency is ejection minus creation time, source queueing included
	// (the paper's latency definition).
	Latency int64
	// Minimal reports the source-router routing decision; Measured that
	// the packet was injected inside a measurement window.
	Minimal, Measured bool
}

// EjectObserver is the extension interface for per-ejection records.
// It fires for every ejected packet, measured or not, which is what
// windowed throughput/latency series need.
type EjectObserver interface {
	PacketEjected(e Eject)
}

// Hop is the payload of a per-hop trace event: one flit departing a
// router onto a channel. The JSON tags are part of the versioned
// report schema (internal/obs).
type Hop struct {
	// Packet is the network-unique packet id; Cycle the departure cycle.
	Packet uint64 `json:"packet"`
	Cycle  int64  `json:"cycle"`
	// Router, Port and VC locate the traversed output; Link is the
	// channel id (Network.LinkID).
	Router int `json:"router"`
	Port   int `json:"port"`
	VC     int `json:"vc"`
	Link   int `json:"link"`
	// Minimal and Phase1 snapshot the routing state: the source decision
	// and whether the packet is heading for its final destination group.
	Minimal bool `json:"minimal"`
	Phase1  bool `json:"phase1"`
	// CreditStall counts the cycles this output VC spent with flits
	// waiting but no downstream credits since its previous departure —
	// the credit-backpressure component of the hop's queueing delay.
	CreditStall int64 `json:"credit_stall"`
}

// HopObserver is the extension interface for per-hop trace records.
// It fires once per flit per traversed channel, so implementations
// (internal/obs.Tracer samples and bounds them) must be cheap.
type HopObserver interface {
	PacketHop(h Hop)
}

// LinkStateObserver is the extension interface for channel liveness
// transitions. The engine reports every link that is dead at attach
// time (so collectors see standing fault plans), then every death and
// revival a fault-timeline epoch swap causes. Transitions are edges:
// a link is reported dead once, not once per cycle.
type LinkStateObserver interface {
	LinkState(link int, alive bool, cycle int64)
}

// Nop implements every core Collector event as a no-op. Embed it to
// build collectors that only consume some events — added core events
// then never break implementors.
type Nop struct{}

// ChannelFlit implements Collector (no-op).
func (Nop) ChannelFlit(int) {}

// VCOccupancy implements Collector (no-op).
func (Nop) VCOccupancy(int, int, int, int) {}

// CreditRTT implements Collector (no-op).
func (Nop) CreditRTT(int, int, int64) {}

// Drop implements Collector (no-op).
func (Nop) Drop(int) {}

// Stall implements Collector (no-op).
func (Nop) Stall(int64) {}

// ChannelUtil counts flits per channel, the measurement behind the
// paper's Figure 9 (per-channel utilization). Only ChannelFlit is
// active among the core events; it additionally subscribes to link
// liveness and cycle boundaries so Utilization can exclude the cycles
// a channel was dead under a fault plan or timeline.
type ChannelUtil struct {
	Nop
	busy   []int64
	window int64
	// Dead-time accounting: deadNow marks links currently dead (fed by
	// LinkState edges), deadCount is the number of true entries, and
	// deadTime accumulates one cycle per dead link per CycleEnd. All
	// three stay nil/zero on pristine networks, where CycleEnd is a
	// single compare.
	deadNow   []bool
	deadTime  []int64
	deadCount int
}

// NewChannelUtil returns a counter set for a network with the given
// number of links (Network.NumLinks).
func NewChannelUtil(links int) *ChannelUtil {
	return &ChannelUtil{busy: make([]int64, links)}
}

// ChannelFlit implements Collector.
func (u *ChannelUtil) ChannelFlit(link int) { u.busy[link]++ }

// LinkState implements LinkStateObserver: it opens and closes a link's
// dead interval. Idempotent per state (re-reporting a dead link dead
// changes nothing), so re-attachment is safe.
func (u *ChannelUtil) LinkState(link int, alive bool, _ int64) {
	if u.deadNow == nil {
		if alive {
			return
		}
		u.deadNow = make([]bool, len(u.busy))
		u.deadTime = make([]int64, len(u.busy))
	}
	if u.deadNow[link] == !alive {
		return
	}
	u.deadNow[link] = !alive
	if alive {
		u.deadCount--
	} else {
		u.deadCount++
	}
}

// CycleEnd implements CycleObserver: every currently-dead link accrues
// one dead cycle. A pristine network pays one compare per cycle.
func (u *ChannelUtil) CycleEnd(int64) {
	if u.deadCount == 0 {
		return
	}
	for l, dead := range u.deadNow {
		if dead {
			u.deadTime[l]++
		}
	}
}

// Busy returns the flit count recorded on link id since the last Reset.
func (u *ChannelUtil) Busy(link int) int64 { return u.busy[link] }

// Links returns the number of tracked channels.
func (u *ChannelUtil) Links() int { return len(u.busy) }

// DeadCycles returns the number of observed cycles link id spent dead
// since the last Reset (0 without LinkState/CycleEnd feeds).
func (u *ChannelUtil) DeadCycles(link int) int64 {
	if u.deadTime == nil {
		return 0
	}
	return u.deadTime[link]
}

// Reset clears the counters, the window and the accumulated dead time.
// Links currently dead stay marked dead (their next interval starts
// accruing immediately), so Reset at a measurement boundary starts a
// clean window without losing liveness state.
func (u *ChannelUtil) Reset() {
	for i := range u.busy {
		u.busy[i] = 0
	}
	for i := range u.deadTime {
		u.deadTime[i] = 0
	}
	u.window = 0
}

// SetWindow records the measurement window length used to normalise
// Utilization. The window is the number of cycles the collector was
// attached for (equivalently: the CycleEnd events it received) —
// sim.Run sets MeasureCycles because it attaches the collector for
// exactly the measurement phase.
func (u *ChannelUtil) SetWindow(cycles int64) { u.window = cycles }

// Utilization returns the fraction of the recorded window the channel
// was busy, counting only the cycles the channel was alive: Busy(link)
// divided by window minus DeadCycles(link). A channel dead for the
// whole window (or an unset window) reports 0.
func (u *ChannelUtil) Utilization(link int) float64 {
	alive := u.window - u.DeadCycles(link)
	if alive <= 0 {
		return 0
	}
	return float64(u.busy[link]) / float64(alive)
}

// Full aggregates every event the engine emits: channel counters, an
// input-buffer VC occupancy histogram, credit round-trip statistics,
// drop/stall counts and (via the extension interfaces) the fault
// events. It is the "turn everything on" collector used by
// diagnostics; sweeps that only need one signal should attach the
// narrower collector instead.
type Full struct {
	// Channels is the per-link flit counter (nil until the first event
	// if constructed with zero links — use NewFull).
	Channels *ChannelUtil
	// VCHist[occ] counts deliveries that found their input VC at
	// occupancy occ (post-increment); the histogram of the paper's
	// buffer-depth discussion. Grows on demand.
	VCHist []int64
	// RTT aggregates credit round-trip samples.
	RTTCount, RTTSum, RTTMax int64
	// Drops counts packets dropped as unroutable; Stalls counts
	// deadlock-detector trips.
	Drops, Stalls int64
	// Kills counts packets destroyed in flight by fault-timeline epoch
	// swaps; Reroutes counts queued packets re-pointed after a swap.
	Kills, Reroutes int64
	// Epochs counts fault-timeline epoch activations (the pristine
	// starting epoch included when a timeline is installed).
	Epochs int64
	// LastEpoch is the most recently activated epoch index, -1 before
	// any EpochSwitch event.
	LastEpoch int
}

// NewFull returns a Full collector for a network with the given number
// of links.
func NewFull(links int) *Full {
	return &Full{Channels: NewChannelUtil(links), LastEpoch: -1}
}

// ChannelFlit implements Collector.
func (f *Full) ChannelFlit(link int) { f.Channels.busy[link]++ }

// VCOccupancy implements Collector.
func (f *Full) VCOccupancy(_, _, _, occupancy int) {
	for occupancy >= len(f.VCHist) {
		f.VCHist = append(f.VCHist, 0)
	}
	f.VCHist[occupancy]++
}

// CreditRTT implements Collector.
func (f *Full) CreditRTT(_, _ int, rtt int64) {
	f.RTTCount++
	f.RTTSum += rtt
	if rtt > f.RTTMax {
		f.RTTMax = rtt
	}
}

// Drop implements Collector.
func (f *Full) Drop(int) { f.Drops++ }

// Stall implements Collector.
func (f *Full) Stall(int64) { f.Stalls++ }

// Kill implements FaultObserver.
func (f *Full) Kill(int) { f.Kills++ }

// Reroute implements FaultObserver.
func (f *Full) Reroute(int) { f.Reroutes++ }

// EpochSwitch implements EpochObserver.
func (f *Full) EpochSwitch(_ int64, epoch int) {
	f.Epochs++
	f.LastEpoch = epoch
}

// LinkState implements LinkStateObserver by forwarding to the channel
// counters' dead-time accounting.
func (f *Full) LinkState(link int, alive bool, cycle int64) {
	if f.Channels != nil {
		f.Channels.LinkState(link, alive, cycle)
	}
}

// CycleEnd implements CycleObserver by forwarding to the channel
// counters' dead-time accounting.
func (f *Full) CycleEnd(cycle int64) {
	if f.Channels != nil {
		f.Channels.CycleEnd(cycle)
	}
}

// RTTMean returns the average credit round-trip sample, 0 if none.
func (f *Full) RTTMean() float64 {
	if f.RTTCount == 0 {
		return 0
	}
	return float64(f.RTTSum) / float64(f.RTTCount)
}

// Multi fans every event out to all collectors in order. Core events
// reach every element; extension events reach the elements that
// implement the matching extension interface. Multi itself implements
// every extension interface, so the engine always discovers the full
// event set and per-element subscription is resolved inside the
// fan-out.
type Multi []Collector

// ChannelFlit implements Collector.
func (m Multi) ChannelFlit(link int) {
	for _, c := range m {
		c.ChannelFlit(link)
	}
}

// VCOccupancy implements Collector.
func (m Multi) VCOccupancy(router, port, vc, occupancy int) {
	for _, c := range m {
		c.VCOccupancy(router, port, vc, occupancy)
	}
}

// CreditRTT implements Collector.
func (m Multi) CreditRTT(router, port int, rtt int64) {
	for _, c := range m {
		c.CreditRTT(router, port, rtt)
	}
}

// Drop implements Collector.
func (m Multi) Drop(router int) {
	for _, c := range m {
		c.Drop(router)
	}
}

// Stall implements Collector.
func (m Multi) Stall(cycle int64) {
	for _, c := range m {
		c.Stall(cycle)
	}
}

// Kill implements FaultObserver.
func (m Multi) Kill(router int) {
	for _, c := range m {
		if o, ok := c.(FaultObserver); ok {
			o.Kill(router)
		}
	}
}

// Reroute implements FaultObserver.
func (m Multi) Reroute(router int) {
	for _, c := range m {
		if o, ok := c.(FaultObserver); ok {
			o.Reroute(router)
		}
	}
}

// EpochSwitch implements EpochObserver.
func (m Multi) EpochSwitch(cycle int64, epoch int) {
	for _, c := range m {
		if o, ok := c.(EpochObserver); ok {
			o.EpochSwitch(cycle, epoch)
		}
	}
}

// CycleEnd implements CycleObserver.
func (m Multi) CycleEnd(cycle int64) {
	for _, c := range m {
		if o, ok := c.(CycleObserver); ok {
			o.CycleEnd(cycle)
		}
	}
}

// PacketEjected implements EjectObserver.
func (m Multi) PacketEjected(e Eject) {
	for _, c := range m {
		if o, ok := c.(EjectObserver); ok {
			o.PacketEjected(e)
		}
	}
}

// PacketHop implements HopObserver.
func (m Multi) PacketHop(h Hop) {
	for _, c := range m {
		if o, ok := c.(HopObserver); ok {
			o.PacketHop(h)
		}
	}
}

// LinkState implements LinkStateObserver.
func (m Multi) LinkState(link int, alive bool, cycle int64) {
	for _, c := range m {
		if o, ok := c.(LinkStateObserver); ok {
			o.LinkState(link, alive, cycle)
		}
	}
}
