package metrics

import "testing"

// The core interface and the extension set are part of the package's
// API contract; pin who implements what at compile time.
var (
	_ Collector = Nop{}
	_ Collector = (*ChannelUtil)(nil)
	_ Collector = (*Full)(nil)
	_ Collector = Multi(nil)

	_ LinkStateObserver = (*ChannelUtil)(nil)
	_ CycleObserver     = (*ChannelUtil)(nil)

	_ FaultObserver     = (*Full)(nil)
	_ EpochObserver     = (*Full)(nil)
	_ LinkStateObserver = (*Full)(nil)
	_ CycleObserver     = (*Full)(nil)

	_ FaultObserver     = Multi(nil)
	_ EpochObserver     = Multi(nil)
	_ CycleObserver     = Multi(nil)
	_ EjectObserver     = Multi(nil)
	_ HopObserver       = Multi(nil)
	_ LinkStateObserver = Multi(nil)
)

func TestChannelUtil(t *testing.T) {
	u := NewChannelUtil(4)
	if u.Links() != 4 {
		t.Fatalf("Links = %d, want 4", u.Links())
	}
	u.ChannelFlit(1)
	u.ChannelFlit(1)
	u.ChannelFlit(3)
	if u.Busy(1) != 2 || u.Busy(3) != 1 || u.Busy(0) != 0 {
		t.Errorf("busy counts wrong: %d %d %d", u.Busy(0), u.Busy(1), u.Busy(3))
	}
	u.SetWindow(4)
	if got := u.Utilization(1); got != 0.5 {
		t.Errorf("Utilization(1) = %v, want 0.5", got)
	}
	u.Reset()
	if u.Busy(1) != 0 || u.Utilization(1) != 0 {
		t.Error("Reset did not clear counters and window")
	}
	// The narrow collector ignores every other core event (via Nop).
	u.VCOccupancy(0, 0, 0, 5)
	u.CreditRTT(0, 0, 10)
	u.Drop(0)
	u.Stall(1)
	if u.Busy(0) != 0 {
		t.Error("unrelated events perturbed channel counters")
	}
}

// TestChannelUtilSubscribesNarrowly pins the extension subscriptions:
// the flit counter consumes link liveness and cycle boundaries (for
// dead-time accounting) and nothing else — fault-packet, epoch, eject
// and hop events must stay free for sweeps that only count flits.
func TestChannelUtilSubscribesNarrowly(t *testing.T) {
	var c Collector = NewChannelUtil(2)
	if _, ok := c.(FaultObserver); ok {
		t.Error("ChannelUtil should not subscribe to fault-packet events")
	}
	if _, ok := c.(EpochObserver); ok {
		t.Error("ChannelUtil should not subscribe to epoch events")
	}
	if _, ok := c.(EjectObserver); ok {
		t.Error("ChannelUtil should not subscribe to ejection events")
	}
	if _, ok := c.(HopObserver); ok {
		t.Error("ChannelUtil should not subscribe to hop events")
	}
}

// TestChannelUtilDeadWindow exercises the dead-time accounting across
// simulated epoch swaps: utilization must be normalised by the cycles
// a link was alive, not the raw window.
func TestChannelUtilDeadWindow(t *testing.T) {
	u := NewChannelUtil(2)
	// Link 1 dies at cycle 0 and revives after 4 of the 10 cycles.
	u.LinkState(1, false, 0)
	for c := int64(1); c <= 10; c++ {
		if c == 5 {
			u.LinkState(1, true, c)
		}
		u.CycleEnd(c)
		if c > 4 { // alive cycles: one flit each on both links
			u.ChannelFlit(0)
			u.ChannelFlit(1)
		}
	}
	u.SetWindow(10)
	if got := u.DeadCycles(1); got != 4 {
		t.Fatalf("DeadCycles(1) = %d, want 4", got)
	}
	if got := u.Utilization(0); got != 0.6 {
		t.Errorf("Utilization(0) = %v, want 0.6 (6 flits / 10 alive cycles)", got)
	}
	if got := u.Utilization(1); got != 1.0 {
		t.Errorf("Utilization(1) = %v, want 1.0 (6 flits / 6 alive cycles)", got)
	}
}

// TestChannelUtilDeadWholeWindow: a link dead for the entire window
// reports utilization 0, not a division-by-zero artefact.
func TestChannelUtilDeadWholeWindow(t *testing.T) {
	u := NewChannelUtil(1)
	u.LinkState(0, false, 0)
	for c := int64(1); c <= 5; c++ {
		u.CycleEnd(c)
	}
	u.SetWindow(5)
	if got := u.Utilization(0); got != 0 {
		t.Errorf("Utilization of fully-dead link = %v, want 0", got)
	}
}

// TestChannelUtilResetKeepsLiveness: Reset opens a fresh measurement
// window (counters, window, dead time cleared) but a link that is dead
// at the boundary stays dead — its next interval starts accruing in
// the new window immediately.
func TestChannelUtilResetKeepsLiveness(t *testing.T) {
	u := NewChannelUtil(1)
	u.LinkState(0, false, 0)
	u.CycleEnd(1)
	u.CycleEnd(2)
	u.Reset()
	if got := u.DeadCycles(0); got != 0 {
		t.Fatalf("DeadCycles after Reset = %d, want 0", got)
	}
	u.CycleEnd(3)
	if got := u.DeadCycles(0); got != 1 {
		t.Errorf("DeadCycles in new window = %d, want 1 (link still dead across Reset)", got)
	}
	// Idempotent re-report (re-attachment) must not double-count.
	u.LinkState(0, false, 3)
	u.CycleEnd(4)
	if got := u.DeadCycles(0); got != 2 {
		t.Errorf("DeadCycles after redundant LinkState = %d, want 2", got)
	}
}

func TestFullCollector(t *testing.T) {
	f := NewFull(2)
	f.ChannelFlit(0)
	f.VCOccupancy(1, 2, 0, 3)
	f.VCOccupancy(1, 2, 0, 1)
	f.CreditRTT(0, 1, 10)
	f.CreditRTT(0, 1, 30)
	f.Drop(5)
	f.Stall(100)
	f.Kill(3)
	f.Kill(4)
	f.Reroute(3)
	f.EpochSwitch(0, 0)
	f.EpochSwitch(200, 1)
	if f.Channels.Busy(0) != 1 {
		t.Error("channel count not recorded")
	}
	if len(f.VCHist) != 4 || f.VCHist[3] != 1 || f.VCHist[1] != 1 {
		t.Errorf("VC histogram wrong: %v", f.VCHist)
	}
	if f.RTTCount != 2 || f.RTTSum != 40 || f.RTTMax != 30 {
		t.Errorf("RTT aggregates wrong: n=%d sum=%d max=%d", f.RTTCount, f.RTTSum, f.RTTMax)
	}
	if f.RTTMean() != 20 {
		t.Errorf("RTTMean = %v, want 20", f.RTTMean())
	}
	if f.Drops != 1 || f.Stalls != 1 {
		t.Errorf("drop/stall counters wrong: %d %d", f.Drops, f.Stalls)
	}
	if f.Kills != 2 || f.Reroutes != 1 {
		t.Errorf("kill/reroute counters wrong: %d %d", f.Kills, f.Reroutes)
	}
	if f.Epochs != 2 || f.LastEpoch != 1 {
		t.Errorf("epoch counters wrong: %d last %d", f.Epochs, f.LastEpoch)
	}
}

// TestFullForwardsLiveness: Full's link-state and cycle events feed its
// channel counters' dead-time accounting.
func TestFullForwardsLiveness(t *testing.T) {
	f := NewFull(2)
	f.LinkState(1, false, 0)
	f.CycleEnd(1)
	f.CycleEnd(2)
	if got := f.Channels.DeadCycles(1); got != 2 {
		t.Errorf("DeadCycles(1) = %d, want 2", got)
	}
}

func TestFullLastEpochStartsUnset(t *testing.T) {
	if f := NewFull(1); f.LastEpoch != -1 {
		t.Errorf("LastEpoch = %d before any EpochSwitch, want -1", f.LastEpoch)
	}
}

func TestRTTMeanEmpty(t *testing.T) {
	var f Full
	if f.RTTMean() != 0 {
		t.Error("RTTMean on empty collector should be 0")
	}
}

// recorder implements every core and extension event and counts them.
type recorder struct {
	Nop
	flits, occs, rtts, drops, stalls int
	kills, reroutes, epochs          int
	cycles, ejects, hops, linkStates int
	lastEject                        Eject
	lastHop                          Hop
}

func (r *recorder) ChannelFlit(int)                { r.flits++ }
func (r *recorder) VCOccupancy(int, int, int, int) { r.occs++ }
func (r *recorder) CreditRTT(int, int, int64)      { r.rtts++ }
func (r *recorder) Drop(int)                       { r.drops++ }
func (r *recorder) Stall(int64)                    { r.stalls++ }
func (r *recorder) Kill(int)                       { r.kills++ }
func (r *recorder) Reroute(int)                    { r.reroutes++ }
func (r *recorder) EpochSwitch(int64, int)         { r.epochs++ }
func (r *recorder) CycleEnd(int64)                 { r.cycles++ }
func (r *recorder) PacketEjected(e Eject)          { r.ejects++; r.lastEject = e }
func (r *recorder) PacketHop(h Hop)                { r.hops++; r.lastHop = h }
func (r *recorder) LinkState(int, bool, int64)     { r.linkStates++ }

// TestMultiFansOut drives every event — core and extension — through a
// Multi and verifies each child that subscribes receives it exactly
// once, while the Nop-based child that subscribes to nothing beyond
// the core neither receives extension events nor breaks the fan-out.
func TestMultiFansOut(t *testing.T) {
	a := &recorder{}
	b := &recorder{}
	narrow := NewChannelUtil(2) // subscribes to LinkState+CycleEnd only
	m := Multi{a, narrow, b}

	m.ChannelFlit(1)
	m.VCOccupancy(0, 1, 2, 3)
	m.CreditRTT(0, 0, 7)
	m.Drop(1)
	m.Stall(9)
	m.Kill(2)
	m.Reroute(2)
	m.EpochSwitch(100, 1)
	m.LinkState(1, false, 100)
	m.CycleEnd(101)
	m.PacketEjected(Eject{Cycle: 101, Packet: 42, Router: 3, Latency: 17, Minimal: true, Measured: true})
	m.PacketHop(Hop{Packet: 42, Cycle: 99, Router: 3, Port: 1, VC: 0, Link: 5, Minimal: true, CreditStall: 2})

	for i, r := range []*recorder{a, b} {
		if r.flits != 1 || r.occs != 1 || r.rtts != 1 || r.drops != 1 || r.stalls != 1 {
			t.Errorf("recorder %d missed core events: %+v", i, r)
		}
		if r.kills != 1 || r.reroutes != 1 || r.epochs != 1 {
			t.Errorf("recorder %d missed fault/epoch events: %+v", i, r)
		}
		if r.cycles != 1 || r.ejects != 1 || r.hops != 1 || r.linkStates != 1 {
			t.Errorf("recorder %d missed cycle/eject/hop/link events: %+v", i, r)
		}
		if r.lastEject.Packet != 42 || r.lastEject.Latency != 17 || !r.lastEject.Minimal {
			t.Errorf("recorder %d got wrong Eject payload: %+v", i, r.lastEject)
		}
		if r.lastHop.Link != 5 || r.lastHop.CreditStall != 2 {
			t.Errorf("recorder %d got wrong Hop payload: %+v", i, r.lastHop)
		}
	}
	// The narrow child saw the core flit plus its two extension events.
	if narrow.Busy(1) != 1 {
		t.Error("narrow child missed the core flit event")
	}
	if narrow.DeadCycles(1) != 1 {
		t.Error("narrow child missed LinkState/CycleEnd dispatch")
	}
}

// TestMultiSelectiveDispatch: extension events reach only the children
// that implement the matching interface, in order.
func TestMultiSelectiveDispatch(t *testing.T) {
	full := NewFull(1)
	r := &recorder{}
	m := Multi{full, Nop{}, r}
	m.Kill(0)
	m.PacketHop(Hop{Packet: 1})
	if full.Kills != 1 {
		t.Error("Full missed the Kill dispatch")
	}
	if r.kills != 1 || r.hops != 1 {
		t.Error("recorder missed extension dispatch")
	}
}
