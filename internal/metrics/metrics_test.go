package metrics

import "testing"

func TestChannelUtil(t *testing.T) {
	u := NewChannelUtil(4)
	if u.Links() != 4 {
		t.Fatalf("Links = %d, want 4", u.Links())
	}
	u.ChannelFlit(1)
	u.ChannelFlit(1)
	u.ChannelFlit(3)
	if u.Busy(1) != 2 || u.Busy(3) != 1 || u.Busy(0) != 0 {
		t.Errorf("busy counts wrong: %d %d %d", u.Busy(0), u.Busy(1), u.Busy(3))
	}
	u.SetWindow(4)
	if got := u.Utilization(1); got != 0.5 {
		t.Errorf("Utilization(1) = %v, want 0.5", got)
	}
	u.Reset()
	if u.Busy(1) != 0 || u.Utilization(1) != 0 {
		t.Error("Reset did not clear counters and window")
	}
	// The narrow collector ignores every other event.
	u.VCOccupancy(0, 0, 0, 5)
	u.CreditRTT(0, 0, 10)
	u.Drop(0)
	u.Stall(1)
}

func TestFullCollector(t *testing.T) {
	f := NewFull(2)
	f.ChannelFlit(0)
	f.VCOccupancy(1, 2, 0, 3)
	f.VCOccupancy(1, 2, 0, 1)
	f.CreditRTT(0, 1, 10)
	f.CreditRTT(0, 1, 30)
	f.Drop(5)
	f.Stall(100)
	f.Kill(3)
	f.Kill(4)
	f.Reroute(3)
	f.EpochSwitch(0, 0)
	f.EpochSwitch(200, 1)
	if f.Channels.Busy(0) != 1 {
		t.Error("channel count not recorded")
	}
	if len(f.VCHist) != 4 || f.VCHist[3] != 1 || f.VCHist[1] != 1 {
		t.Errorf("VC histogram wrong: %v", f.VCHist)
	}
	if f.RTTCount != 2 || f.RTTSum != 40 || f.RTTMax != 30 {
		t.Errorf("RTT aggregates wrong: n=%d sum=%d max=%d", f.RTTCount, f.RTTSum, f.RTTMax)
	}
	if f.RTTMean() != 20 {
		t.Errorf("RTTMean = %v, want 20", f.RTTMean())
	}
	if f.Drops != 1 || f.Stalls != 1 {
		t.Errorf("drop/stall counters wrong: %d %d", f.Drops, f.Stalls)
	}
	if f.Kills != 2 || f.Reroutes != 1 {
		t.Errorf("kill/reroute counters wrong: %d %d", f.Kills, f.Reroutes)
	}
	if f.Epochs != 2 || f.LastEpoch != 1 {
		t.Errorf("epoch counters wrong: %d last %d", f.Epochs, f.LastEpoch)
	}
}

func TestFullLastEpochStartsUnset(t *testing.T) {
	if f := NewFull(1); f.LastEpoch != -1 {
		t.Errorf("LastEpoch = %d before any EpochSwitch, want -1", f.LastEpoch)
	}
}

func TestRTTMeanEmpty(t *testing.T) {
	var f Full
	if f.RTTMean() != 0 {
		t.Error("RTTMean on empty collector should be 0")
	}
}

func TestMultiFansOut(t *testing.T) {
	a := NewFull(2)
	b := NewFull(2)
	m := Multi{a, b}
	m.ChannelFlit(1)
	m.VCOccupancy(0, 1, 2, 3)
	m.CreditRTT(0, 0, 7)
	m.Drop(1)
	m.Stall(9)
	m.Kill(2)
	m.Reroute(2)
	m.EpochSwitch(100, 1)
	for i, f := range []*Full{a, b} {
		if f.Channels.Busy(1) != 1 || f.RTTCount != 1 || f.Drops != 1 || f.Stalls != 1 || len(f.VCHist) != 4 {
			t.Errorf("collector %d missed events", i)
		}
		if f.Kills != 1 || f.Reroutes != 1 || f.Epochs != 1 || f.LastEpoch != 1 {
			t.Errorf("collector %d missed fault events", i)
		}
	}
}

// TestChannelUtilFaultEventsNoOp pins that the narrow collector
// ignores the fault-timeline events (they must stay free for sweeps
// that only count flits).
func TestChannelUtilFaultEventsNoOp(t *testing.T) {
	u := NewChannelUtil(2)
	u.Kill(0)
	u.Reroute(1)
	u.EpochSwitch(50, 2)
	if u.Busy(0) != 0 || u.Busy(1) != 0 {
		t.Error("fault events perturbed channel counters")
	}
}
