package obs

import (
	"encoding/json"
	"io"

	"dragonfly/internal/metrics"
	"dragonfly/internal/sim"
)

// SchemaVersion identifies the JSON report layout. Consumers must
// check it before interpreting anything else; it bumps on any
// incompatible change (field removal, meaning change) and stays put
// for pure additions.
const SchemaVersion = 1

// Report is the machine-readable output of a run: the versioned
// envelope around load-sweep results, windowed telemetry and sampled
// traces. dfly-sim -json emits one; dfly-experiments -json emits one
// per exhibit alongside the exhibit payload.
type Report struct {
	SchemaVersion int `json:"schema_version"`
	// Kind says what produced the report: "sweep" (dfly-sim load
	// sweep), "run" (single load point), or "experiment".
	Kind string `json:"kind"`

	// Run identity, where meaningful.
	Topology  string `json:"topology,omitempty"`
	Algorithm string `json:"algorithm,omitempty"`
	Pattern   string `json:"pattern,omitempty"`
	Seed      uint64 `json:"seed,omitempty"`

	// Points are the per-load results of a sweep (one element for a
	// single run).
	Points []Point `json:"points,omitempty"`
	// Windows is the windowed time series, when collected.
	Windows []Window `json:"windows,omitempty"`
	// Trace is the sampled per-hop record stream, when collected.
	Trace []metrics.Hop `json:"trace,omitempty"`
}

// NewReport returns an empty report of the given kind carrying the
// current schema version.
func NewReport(kind string) *Report {
	return &Report{SchemaVersion: SchemaVersion, Kind: kind}
}

// Write renders the report as indented JSON.
func (r *Report) Write(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// Point is one load point of a sweep.
type Point struct {
	Load   float64 `json:"load"`
	Result Result  `json:"result"`
}

// Result is the JSON shape of sim.Result: the aggregates flattened
// out of the streaming accumulators, stable under SchemaVersion.
type Result struct {
	Offered         float64 `json:"offered"`
	Accepted        float64 `json:"accepted"`
	LatencyMean     float64 `json:"latency_mean"`
	LatencyMin      float64 `json:"latency_min"`
	LatencyMax      float64 `json:"latency_max"`
	LatencyCount    int64   `json:"latency_count"`
	LatencyP99      int64   `json:"latency_p99,omitempty"`
	MinLatencyMean  float64 `json:"min_latency_mean"`
	NonminLatency   float64 `json:"nonmin_latency_mean"`
	MinimalFraction float64 `json:"minimal_fraction"`
	Saturated       bool    `json:"saturated"`
	Cycles          int64   `json:"cycles"`
	DrainTimeout    bool    `json:"drain_timeout"`
	Dropped         int64   `json:"dropped,omitempty"`
	KilledInFlight  int64   `json:"killed_in_flight,omitempty"`
	Rerouted        int64   `json:"rerouted,omitempty"`
	AliveTerminals  int     `json:"alive_terminals"`
}

// MakeResult flattens a sim.Result into its JSON shape. The p99
// latency is resolved from the histogram when the run collected one.
func MakeResult(r sim.Result) Result {
	out := Result{
		Offered:         r.Offered,
		Accepted:        r.Accepted,
		LatencyMean:     r.Latency.Mean(),
		LatencyMin:      r.Latency.Min(),
		LatencyMax:      r.Latency.Max(),
		LatencyCount:    r.Latency.Count(),
		MinLatencyMean:  r.MinLatency.Mean(),
		NonminLatency:   r.NonminLatency.Mean(),
		MinimalFraction: r.MinimalFraction,
		Saturated:       r.Saturated,
		Cycles:          r.Cycles,
		DrainTimeout:    r.DrainTimeout,
		Dropped:         r.Dropped,
		KilledInFlight:  r.KilledInFlight,
		Rerouted:        r.Rerouted,
		AliveTerminals:  r.AliveTerminals,
	}
	if r.Hist != nil && r.Hist.Total() > 0 {
		out.LatencyP99 = r.Hist.Percentile(0.99)
	}
	return out
}

// LinkClasses builds the link-id → class table (true = global) a
// WindowsConfig needs, from a built network.
func LinkClasses(net *sim.Network) []bool {
	classes := make([]bool, net.NumLinks())
	for i := range classes {
		classes[i] = net.LinkIsGlobal(i)
	}
	return classes
}
