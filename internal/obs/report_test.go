package obs_test

import (
	"encoding/json"
	"strings"
	"testing"

	"dragonfly/internal/metrics"
	"dragonfly/internal/obs"
)

// reportGolden pins the serialized report layout. A diff here is a
// schema change: compatible additions update the golden, anything else
// must bump obs.SchemaVersion.
const reportGolden = `{
  "schema_version": 1,
  "kind": "run",
  "topology": "dragonfly(p=2 a=4 h=2 g=9 N=72 k=7 k'=16)",
  "algorithm": "UGAL-L",
  "pattern": "UR",
  "seed": 7,
  "points": [
    {
      "load": 0.25,
      "result": {
        "offered": 0.25,
        "accepted": 0.24,
        "latency_mean": 12.5,
        "latency_min": 4,
        "latency_max": 80,
        "latency_count": 1000,
        "latency_p99": 64,
        "min_latency_mean": 10,
        "nonmin_latency_mean": 18,
        "minimal_fraction": 0.75,
        "saturated": false,
        "cycles": 5400,
        "drain_timeout": false,
        "dropped": 2,
        "alive_terminals": 72
      }
    }
  ],
  "windows": [
    {
      "start": 0,
      "end": 100,
      "ejected": 240,
      "accepted": 0.033,
      "latency_mean": 12.5,
      "latency_p99": 60,
      "util_local": 0.4,
      "util_global": 0.5,
      "vc_occ": [
        0,
        200,
        40
      ],
      "drops": 2
    }
  ],
  "trace": [
    {
      "packet": 42,
      "cycle": 17,
      "router": 3,
      "port": 5,
      "vc": 1,
      "link": 29,
      "minimal": true,
      "phase1": true,
      "credit_stall": 4
    }
  ]
}
`

func goldenReport() *obs.Report {
	rep := obs.NewReport("run")
	rep.Topology = "dragonfly(p=2 a=4 h=2 g=9 N=72 k=7 k'=16)"
	rep.Algorithm = "UGAL-L"
	rep.Pattern = "UR"
	rep.Seed = 7
	rep.Points = []obs.Point{{
		Load: 0.25,
		Result: obs.Result{
			Offered: 0.25, Accepted: 0.24,
			LatencyMean: 12.5, LatencyMin: 4, LatencyMax: 80,
			LatencyCount: 1000, LatencyP99: 64,
			MinLatencyMean: 10, NonminLatency: 18, MinimalFraction: 0.75,
			Cycles: 5400, Dropped: 2, AliveTerminals: 72,
		},
	}}
	rep.Windows = []obs.Window{{
		Start: 0, End: 100, Ejected: 240, Accepted: 0.033,
		LatencyMean: 12.5, LatencyP99: 60,
		UtilLocal: 0.4, UtilGlobal: 0.5,
		VCOcc: []int64{0, 200, 40}, Drops: 2,
	}}
	rep.Trace = []metrics.Hop{{
		Packet: 42, Cycle: 17, Router: 3, Port: 5, VC: 1, Link: 29,
		Minimal: true, Phase1: true, CreditStall: 4,
	}}
	return rep
}

func TestReportGolden(t *testing.T) {
	var buf strings.Builder
	if err := goldenReport().Write(&buf); err != nil {
		t.Fatal(err)
	}
	if got := buf.String(); got != reportGolden {
		t.Errorf("report JSON drifted from the golden layout.\ngot:\n%s\nwant:\n%s", got, reportGolden)
	}
}

// TestReportSchemaVersionLeads checks the version is a plain top-level
// field a consumer can sniff before committing to the layout.
func TestReportSchemaVersionLeads(t *testing.T) {
	var buf strings.Builder
	if err := goldenReport().Write(&buf); err != nil {
		t.Fatal(err)
	}
	var envelope struct {
		SchemaVersion int    `json:"schema_version"`
		Kind          string `json:"kind"`
	}
	if err := json.Unmarshal([]byte(buf.String()), &envelope); err != nil {
		t.Fatal(err)
	}
	if envelope.SchemaVersion != obs.SchemaVersion {
		t.Errorf("schema_version %d, want %d", envelope.SchemaVersion, obs.SchemaVersion)
	}
	if envelope.Kind != "run" {
		t.Errorf("kind %q, want %q", envelope.Kind, "run")
	}
}
