package obs

import (
	"dragonfly/internal/metrics"
	"dragonfly/internal/sim"
)

// Tracer records the per-hop history of a deterministic sample of
// packets into a bounded ring. It subscribes only to the hop event
// (metrics.HopObserver), so attaching one enables the engine's per-hop
// instrumentation — including the credit-stall cycle counters that
// ride on each record — and nothing else.
//
// Sampling is a pure function of the packet id and the tracer seed:
// packet p is sampled iff Mix(p ^ seed) % every == 0, so reruns of a
// deterministic simulation sample the same packets, and two tracers
// with the same parameters agree across hosts.
type Tracer struct {
	metrics.Nop
	every uint64
	seed  uint64
	ring  []metrics.Hop
	next  int
}

// NewTracer builds a tracer sampling ~1/every packets (every >= 1;
// 1 traces everything) into a ring of at most capHops records; once
// full, the oldest records are overwritten.
func NewTracer(every int, seed uint64, capHops int) *Tracer {
	if every < 1 {
		every = 1
	}
	if capHops < 1 {
		capHops = 4096
	}
	return &Tracer{
		every: uint64(every),
		seed:  seed,
		ring:  make([]metrics.Hop, 0, capHops),
	}
}

// Sampled reports whether the tracer records the given packet id.
func (t *Tracer) Sampled(packet uint64) bool {
	return t.every == 1 || sim.Mix(packet^t.seed)%t.every == 0
}

// PacketHop implements metrics.HopObserver.
func (t *Tracer) PacketHop(h metrics.Hop) {
	if !t.Sampled(h.Packet) {
		return
	}
	if len(t.ring) < cap(t.ring) {
		t.ring = append(t.ring, h)
		return
	}
	t.ring[t.next] = h
	t.next++
	if t.next == len(t.ring) {
		t.next = 0
	}
}

// Records returns every retained hop record, oldest first. The result
// is freshly allocated.
func (t *Tracer) Records() []metrics.Hop {
	out := make([]metrics.Hop, 0, len(t.ring))
	if len(t.ring) == cap(t.ring) {
		out = append(out, t.ring[t.next:]...)
		out = append(out, t.ring[:t.next]...)
		return out
	}
	return append(out, t.ring...)
}

// Trace returns the retained hop records of one packet, in hop order
// (records are emitted in cycle order and never reordered by the ring).
func (t *Tracer) Trace(packet uint64) []metrics.Hop {
	var out []metrics.Hop
	for _, h := range t.Records() {
		if h.Packet == packet {
			out = append(out, h)
		}
	}
	return out
}

// PacketIDs returns the distinct sampled packet ids retained in the
// ring, in first-seen order.
func (t *Tracer) PacketIDs() []uint64 {
	seen := make(map[uint64]bool)
	var out []uint64
	for _, h := range t.Records() {
		if !seen[h.Packet] {
			seen[h.Packet] = true
			out = append(out, h.Packet)
		}
	}
	return out
}
