package obs_test

import (
	"testing"

	"dragonfly/internal/core"
	"dragonfly/internal/metrics"
	"dragonfly/internal/obs"
)

func TestTracerSamplingDeterministic(t *testing.T) {
	a := obs.NewTracer(8, 42, 16)
	b := obs.NewTracer(8, 42, 16)
	other := obs.NewTracer(8, 43, 16)
	sampled, diverged := 0, false
	for p := uint64(0); p < 4096; p++ {
		if a.Sampled(p) != b.Sampled(p) {
			t.Fatalf("packet %d: same (every, seed) disagree", p)
		}
		if a.Sampled(p) != other.Sampled(p) {
			diverged = true
		}
		if a.Sampled(p) {
			sampled++
		}
	}
	// The mixer spreads ids uniformly: ~1/8 of 4096 = 512, allow wide
	// slack — the property under test is determinism, not exact rate.
	if sampled < 256 || sampled > 1024 {
		t.Errorf("sampled %d of 4096 at 1/8, want roughly 512", sampled)
	}
	if !diverged {
		t.Errorf("seed change did not change the sample")
	}

	all := obs.NewTracer(1, 0, 16)
	for p := uint64(0); p < 64; p++ {
		if !all.Sampled(p) {
			t.Fatalf("every=1 skipped packet %d", p)
		}
	}
}

func TestTracerRingWrap(t *testing.T) {
	tr := obs.NewTracer(1, 0, 4)
	for i := 0; i < 6; i++ {
		tr.PacketHop(metrics.Hop{Packet: 7, Cycle: int64(i)})
	}
	recs := tr.Records()
	if len(recs) != 4 {
		t.Fatalf("ring of 4 retained %d records", len(recs))
	}
	for i, h := range recs {
		if want := int64(i + 2); h.Cycle != want {
			t.Errorf("record %d at cycle %d, want %d (oldest first after wrap)", i, h.Cycle, want)
		}
	}
}

// TestTraceReplay is the end-to-end acceptance check of the tracer: it
// runs a real simulation with every packet traced, then replays each
// packet's hop records against the topology's port map — hop i leaves
// router R through port P, so hop i+1 must start at the peer router of
// (R, P), and every record's link id must agree with the network's own
// port-to-link table.
func TestTraceReplay(t *testing.T) {
	sys, err := core.NewSystem(core.SystemConfig{P: 2, A: 4, H: 2})
	if err != nil {
		t.Fatal(err)
	}
	net, err := sys.NewNetwork(core.AlgUGALLVCH, core.PatternUR)
	if err != nil {
		t.Fatal(err)
	}
	net.SetLoad(0.1)
	// Big enough that the ring never wraps: a wrapped ring drops a
	// packet's oldest hops and the replay below would see a false gap.
	tr := obs.NewTracer(1, 0, 1<<16)
	net.AttachMetrics(tr)
	for cyc := 0; cyc < 150; cyc++ {
		if err := net.Step(); err != nil {
			t.Fatal(err)
		}
	}

	ids := tr.PacketIDs()
	if len(ids) == 0 {
		t.Fatal("no packets traced")
	}
	if n := len(tr.Records()); n == 1<<16 {
		t.Fatal("trace ring filled up: the replay needs complete histories")
	}
	topo := net.Topology()
	replayed := 0
	for _, pid := range ids {
		hops := tr.Trace(pid)
		for i, h := range hops {
			if h.Link != net.LinkID(h.Router, h.Port) {
				t.Fatalf("packet %d hop %d: link %d, want %d for router %d port %d",
					pid, i, h.Link, net.LinkID(h.Router, h.Port), h.Router, h.Port)
			}
			if i == 0 {
				continue
			}
			prev := hops[i-1]
			pt := topo.Port(prev.Router, prev.Port)
			if pt.PeerRouter != h.Router {
				t.Fatalf("packet %d hop %d: router %d, but hop %d left router %d port %d toward router %d",
					pid, i, h.Router, i-1, prev.Router, prev.Port, pt.PeerRouter)
			}
			if h.Cycle <= prev.Cycle {
				t.Fatalf("packet %d hop %d at cycle %d, not after hop %d at cycle %d",
					pid, i, h.Cycle, i-1, prev.Cycle)
			}
		}
		if len(hops) > 1 {
			replayed++
		}
	}
	if replayed == 0 {
		t.Fatal("no multi-hop packet to replay")
	}
}

// TestTracerSamplesSubset checks the sampled run traces exactly the
// packets the sampler admits: a rerun with every=4 retains a strict,
// Sampled-consistent subset of the ids an every=1 run saw.
func TestTracerSamplesSubset(t *testing.T) {
	run := func(every int) *obs.Tracer {
		sys, err := core.NewSystem(core.SystemConfig{P: 2, A: 4, H: 2})
		if err != nil {
			t.Fatal(err)
		}
		net, err := sys.NewNetwork(core.AlgUGALLVCH, core.PatternUR)
		if err != nil {
			t.Fatal(err)
		}
		net.SetLoad(0.1)
		tr := obs.NewTracer(every, 9, 1<<16)
		net.AttachMetrics(tr)
		for cyc := 0; cyc < 100; cyc++ {
			if err := net.Step(); err != nil {
				t.Fatal(err)
			}
		}
		return tr
	}
	all, sampled := run(1), run(4)
	seen := make(map[uint64]bool)
	for _, id := range all.PacketIDs() {
		seen[id] = true
	}
	ids := sampled.PacketIDs()
	if len(ids) == 0 || len(ids) >= len(all.PacketIDs()) {
		t.Fatalf("every=4 traced %d of %d packets, want a strict non-empty subset",
			len(ids), len(all.PacketIDs()))
	}
	for _, id := range ids {
		if !seen[id] {
			t.Errorf("sampled packet %d never appeared in the full trace", id)
		}
		if !sampled.Sampled(id) {
			t.Errorf("packet %d retained but not admitted by Sampled", id)
		}
	}
}
