// Package obs is the simulator's observability layer: windowed time
// series, sampled packet tracing, and machine-readable run reports,
// all built on the metrics extension interfaces so they attach to any
// Network and cost nothing when absent.
//
// The package sits between metrics (the event vocabulary, which it
// consumes) and core (the experiment driver, which attaches its
// collectors via functional options). It deliberately does not import
// core.
package obs

import (
	"slices"

	"dragonfly/internal/metrics"
)

// WindowsConfig parameterises a windowed time-series collector.
type WindowsConfig struct {
	// Width is the window length in cycles (>= 1).
	Width int64
	// Terminals normalises the accepted rate: flits per cycle per
	// terminal. Use the topology's full terminal count so a degraded
	// network's series dips instead of silently re-normalising.
	Terminals int
	// LinkClasses, when non-nil, maps link id to class (true = global)
	// and enables the per-class utilization columns. Build it with
	// Network.LinkID/LinkIsGlobal, or LinkClasses.
	LinkClasses []bool
}

// Window is one closed measurement window of the time series. The
// window covers cycles (Start, End].
type Window struct {
	Start int64 `json:"start"`
	End   int64 `json:"end"`
	// Ejected counts packets ejected in the window; Accepted is the
	// same normalised to flits/cycle/terminal.
	Ejected  int64   `json:"ejected"`
	Accepted float64 `json:"accepted"`
	// LatencyMean and LatencyP99 aggregate the latency (creation to
	// ejection) of the packets ejected in the window; 0 when none.
	LatencyMean float64 `json:"latency_mean"`
	LatencyP99  float64 `json:"latency_p99"`
	// UtilLocal and UtilGlobal are the mean busy fraction of the local
	// and global channels over the window (0 without LinkClasses).
	UtilLocal  float64 `json:"util_local"`
	UtilGlobal float64 `json:"util_global"`
	// VCOcc is the window's input-buffer occupancy heatmap column:
	// VCOcc[o] counts flit deliveries that found their input VC at
	// occupancy o (post-increment). Nil when nothing was delivered.
	VCOcc []int64 `json:"vc_occ,omitempty"`
	// Drops, Kills and Reroutes count the fault-path events that
	// landed in the window.
	Drops    int64 `json:"drops,omitempty"`
	Kills    int64 `json:"kills,omitempty"`
	Reroutes int64 `json:"reroutes,omitempty"`
}

// Windows accumulates per-window telemetry from the metrics events: it
// subscribes to ejections, flit forwards, VC deliveries, fault events
// and cycle boundaries, and closes a Window every Width cycles. Attach
// it with Network.AttachMetrics (stack with metrics.Multi if another
// collector is active) and read the series back with Windows.
//
// A window closes on the CycleEnd event of its last cycle, so a run of
// k*Width cycles yields exactly k full windows. A trailing partial
// window (cycles past the last Width boundary) is closed by Flush —
// called automatically by core.Run and friends when the run finishes,
// or by hand — as a final short window covering (Start, End] with
// End − Start < Width; without a Flush it is discarded.
type Windows struct {
	metrics.Nop
	cfg      WindowsConfig
	locals   int
	globals  int
	winStart int64

	wins []Window

	// Current-window accumulators. latScratch is the p99 sort buffer:
	// percentiles must not reorder lats itself, which callers may be
	// reading interleaved with window closes.
	ejected    int64
	latSum     int64
	lats       []int64
	latScratch []int64
	localFlits  int64
	globalFlits int64
	vcOcc       []int64
	vcAny       bool
	drops       int64
	kills       int64
	reroutes    int64
}

// NewWindows builds a windowed collector. Width and Terminals must be
// positive.
func NewWindows(cfg WindowsConfig) *Windows {
	if cfg.Width < 1 {
		cfg.Width = 1
	}
	w := &Windows{cfg: cfg}
	for _, g := range cfg.LinkClasses {
		if g {
			w.globals++
		} else {
			w.locals++
		}
	}
	return w
}

// Windows returns the closed windows, oldest first. The slice aliases
// the collector's storage; it is valid until the next event.
func (w *Windows) Windows() []Window { return w.wins }

// PacketEjected implements metrics.EjectObserver.
func (w *Windows) PacketEjected(e metrics.Eject) {
	w.ejected++
	w.latSum += e.Latency
	w.lats = append(w.lats, e.Latency)
}

// ChannelFlit implements the metrics.Collector event.
func (w *Windows) ChannelFlit(link int) {
	if w.cfg.LinkClasses == nil {
		return
	}
	if w.cfg.LinkClasses[link] {
		w.globalFlits++
	} else {
		w.localFlits++
	}
}

// VCOccupancy implements the metrics.Collector event.
func (w *Windows) VCOccupancy(_, _, _, occupancy int) {
	for occupancy >= len(w.vcOcc) {
		w.vcOcc = append(w.vcOcc, 0)
	}
	w.vcOcc[occupancy]++
	w.vcAny = true
}

// Drop implements the metrics.Collector event.
func (w *Windows) Drop(int) { w.drops++ }

// Kill implements metrics.FaultObserver.
func (w *Windows) Kill(int) { w.kills++ }

// Reroute implements metrics.FaultObserver.
func (w *Windows) Reroute(int) { w.reroutes++ }

// CycleEnd implements metrics.CycleObserver: it closes the window when
// Width cycles have elapsed since the last close.
func (w *Windows) CycleEnd(cycle int64) {
	if cycle-w.winStart < w.cfg.Width {
		return
	}
	w.close(cycle)
}

// Flush closes the current partial window at the given cycle. The
// flushed window covers (Start, End] like every other window, but its
// span End − Start may be shorter than Width — packets ejected after
// the last full-window boundary land here instead of vanishing. Flush
// is idempotent for the same cycle (a no-op when no cycles elapsed
// since the last close), so core.Run's automatic finish flush and an
// explicit caller flush compose safely.
func (w *Windows) Flush(cycle int64) {
	if cycle > w.winStart {
		w.close(cycle)
	}
}

func (w *Windows) close(cycle int64) {
	win := Window{
		Start:    w.winStart,
		End:      cycle,
		Ejected:  w.ejected,
		Drops:    w.drops,
		Kills:    w.kills,
		Reroutes: w.reroutes,
	}
	span := float64(cycle - w.winStart)
	if w.cfg.Terminals > 0 {
		win.Accepted = float64(w.ejected) / (float64(w.cfg.Terminals) * span)
	}
	if w.ejected > 0 {
		win.LatencyMean = float64(w.latSum) / float64(w.ejected)
		// p99 sorts its argument; hand it a scratch copy so the latency
		// accumulator keeps insertion order for any interleaved reader.
		w.latScratch = append(w.latScratch[:0], w.lats...)
		win.LatencyP99 = p99(w.latScratch)
	}
	if w.locals > 0 {
		win.UtilLocal = float64(w.localFlits) / (float64(w.locals) * span)
	}
	if w.globals > 0 {
		win.UtilGlobal = float64(w.globalFlits) / (float64(w.globals) * span)
	}
	if w.vcAny {
		win.VCOcc = append([]int64(nil), w.vcOcc...)
	}
	w.wins = append(w.wins, win)

	w.winStart = cycle
	w.ejected, w.latSum = 0, 0
	w.lats = w.lats[:0]
	w.localFlits, w.globalFlits = 0, 0
	for i := range w.vcOcc {
		w.vcOcc[i] = 0
	}
	w.vcAny = false
	w.drops, w.kills, w.reroutes = 0, 0, 0
}

// p99 returns the 99th-percentile sample (the smallest value with at
// least 99% of samples <= it). It sorts xs in place: callers own the
// slice and must pass a scratch copy if the original order matters.
func p99(xs []int64) float64 {
	slices.Sort(xs)
	idx := (99*len(xs) + 99) / 100 // ceil(0.99 n)
	if idx < 1 {
		idx = 1
	}
	return float64(xs[idx-1])
}
