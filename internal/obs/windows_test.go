package obs_test

import (
	"math"
	"testing"

	"dragonfly/internal/metrics"
	"dragonfly/internal/obs"
)

// step advances the collector one cycle: the engine fires CycleEnd once
// per Network.Step, after the routers have emitted their events.
func step(w *obs.Windows, cycle int64) { w.CycleEnd(cycle) }

func TestWindowsCloseEveryWidth(t *testing.T) {
	w := obs.NewWindows(obs.WindowsConfig{Width: 10, Terminals: 4})
	for cyc := int64(1); cyc <= 25; cyc++ {
		w.PacketEjected(metrics.Eject{Cycle: cyc, Latency: 5})
		step(w, cyc)
	}
	wins := w.Windows()
	if len(wins) != 2 {
		t.Fatalf("25 cycles at width 10: %d windows, want 2 (partial tail open)", len(wins))
	}
	for i, win := range wins {
		wantStart, wantEnd := int64(i*10), int64((i+1)*10)
		if win.Start != wantStart || win.End != wantEnd {
			t.Errorf("window %d covers (%d,%d], want (%d,%d]", i, win.Start, win.End, wantStart, wantEnd)
		}
		if win.Ejected != 10 {
			t.Errorf("window %d ejected %d, want 10", i, win.Ejected)
		}
		// 10 ejections / (4 terminals * 10 cycles).
		if math.Abs(win.Accepted-0.25) > 1e-12 {
			t.Errorf("window %d accepted %g, want 0.25", i, win.Accepted)
		}
	}

	w.Flush(25)
	if got := len(w.Windows()); got != 3 {
		t.Fatalf("after Flush: %d windows, want 3", got)
	}
	tail := w.Windows()[2]
	if tail.Start != 20 || tail.End != 25 || tail.Ejected != 5 {
		t.Errorf("flushed tail = (%d,%d] ejected %d, want (20,25] ejected 5", tail.Start, tail.End, tail.Ejected)
	}
	// Span-normalised: 5 ejections / (4 terminals * 5 cycles).
	if math.Abs(tail.Accepted-0.25) > 1e-12 {
		t.Errorf("flushed tail accepted %g, want 0.25", tail.Accepted)
	}
	if w.Flush(25); len(w.Windows()) != 3 {
		t.Errorf("second Flush at the same cycle closed an empty window")
	}
}

func TestWindowsLatencyStats(t *testing.T) {
	w := obs.NewWindows(obs.WindowsConfig{Width: 100, Terminals: 1})
	// 99 packets at latency 10, one at 500: p99 must pick a 10 (the
	// smallest sample with >= 99% of samples at or below it), the mean
	// sits just above 10.
	for i := 0; i < 99; i++ {
		w.PacketEjected(metrics.Eject{Latency: 10})
	}
	w.PacketEjected(metrics.Eject{Latency: 500})
	step(w, 100)
	win := w.Windows()[0]
	wantMean := (99*10.0 + 500) / 100
	if math.Abs(win.LatencyMean-wantMean) > 1e-9 {
		t.Errorf("latency mean %g, want %g", win.LatencyMean, wantMean)
	}
	if win.LatencyP99 != 10 {
		t.Errorf("latency p99 %g, want 10", win.LatencyP99)
	}

	// An empty window reports zeros, not NaN.
	step(w, 200)
	empty := w.Windows()[1]
	if empty.LatencyMean != 0 || empty.LatencyP99 != 0 || empty.Accepted != 0 {
		t.Errorf("empty window = %+v, want zero latency and accepted", empty)
	}
}

// TestWindowsCloseKeepsLatencyOrder is the regression test for the
// in-place p99 sort: closing a window must not reorder any state a
// caller can observe, so two windows closed with reads interleaved
// between them report exactly the same numbers as an uninterrupted
// run, and an already-read window never changes retroactively.
func TestWindowsCloseKeepsLatencyOrder(t *testing.T) {
	feed := func(w *obs.Windows, interleave bool) []obs.Window {
		// Window 1: descending latencies, so a p99 that sorts shared
		// state in place leaves a reordered trail behind.
		for _, lat := range []int64{500, 400, 10, 20, 30} {
			w.PacketEjected(metrics.Eject{Latency: lat})
		}
		step(w, 10)
		if interleave {
			_ = w.Windows()[0]
		}
		for _, lat := range []int64{7, 900, 3} {
			w.PacketEjected(metrics.Eject{Latency: lat})
		}
		if interleave {
			_ = w.Windows()[0]
		}
		step(w, 20)
		return append([]obs.Window(nil), w.Windows()...)
	}

	plain := feed(obs.NewWindows(obs.WindowsConfig{Width: 10, Terminals: 1}), false)
	read := feed(obs.NewWindows(obs.WindowsConfig{Width: 10, Terminals: 1}), true)
	if len(plain) != 2 || len(read) != 2 {
		t.Fatalf("window counts: plain %d, interleaved %d, want 2", len(plain), len(read))
	}
	for i := range plain {
		if plain[i].LatencyMean != read[i].LatencyMean || plain[i].LatencyP99 != read[i].LatencyP99 {
			t.Errorf("window %d diverges under interleaved reads: mean %g vs %g, p99 %g vs %g",
				i, plain[i].LatencyMean, read[i].LatencyMean, plain[i].LatencyP99, read[i].LatencyP99)
		}
	}
	if want := (500 + 400 + 10 + 20 + 30) / 5.0; plain[0].LatencyMean != want {
		t.Errorf("window 0 mean %g, want %g", plain[0].LatencyMean, want)
	}
	if plain[0].LatencyP99 != 500 {
		t.Errorf("window 0 p99 %g, want 500", plain[0].LatencyP99)
	}
	if want := (7 + 900 + 3) / 3.0; plain[1].LatencyMean != want {
		t.Errorf("window 1 mean %g, want %g (close leaked state across the reset)", plain[1].LatencyMean, want)
	}
	if plain[1].LatencyP99 != 900 {
		t.Errorf("window 1 p99 %g, want 900", plain[1].LatencyP99)
	}
}

func TestWindowsUtilizationSplit(t *testing.T) {
	// Links 0,1 local; link 2 global.
	w := obs.NewWindows(obs.WindowsConfig{
		Width: 10, Terminals: 1,
		LinkClasses: []bool{false, false, true},
	})
	for i := 0; i < 6; i++ {
		w.ChannelFlit(0)
	}
	for i := 0; i < 8; i++ {
		w.ChannelFlit(2)
	}
	step(w, 10)
	win := w.Windows()[0]
	if want := 6.0 / (2 * 10); math.Abs(win.UtilLocal-want) > 1e-12 {
		t.Errorf("local util %g, want %g", win.UtilLocal, want)
	}
	if want := 8.0 / (1 * 10); math.Abs(win.UtilGlobal-want) > 1e-12 {
		t.Errorf("global util %g, want %g", win.UtilGlobal, want)
	}
}

func TestWindowsVCOccupancyAndFaults(t *testing.T) {
	w := obs.NewWindows(obs.WindowsConfig{Width: 10, Terminals: 1})
	w.VCOccupancy(0, 0, 0, 1)
	w.VCOccupancy(0, 0, 0, 3)
	w.VCOccupancy(0, 0, 0, 1)
	w.Drop(0)
	w.Kill(0)
	w.Kill(1)
	w.Reroute(2)
	step(w, 10)
	step(w, 20)
	first, second := w.Windows()[0], w.Windows()[1]

	wantOcc := []int64{0, 2, 0, 1}
	if len(first.VCOcc) != len(wantOcc) {
		t.Fatalf("vc occ %v, want %v", first.VCOcc, wantOcc)
	}
	for i, c := range wantOcc {
		if first.VCOcc[i] != c {
			t.Errorf("vc occ[%d] = %d, want %d", i, first.VCOcc[i], c)
		}
	}
	if first.Drops != 1 || first.Kills != 2 || first.Reroutes != 1 {
		t.Errorf("fault counters = %d/%d/%d, want 1/2/1", first.Drops, first.Kills, first.Reroutes)
	}
	// The accumulators reset at the window boundary.
	if second.VCOcc != nil || second.Drops != 0 || second.Kills != 0 || second.Reroutes != 0 {
		t.Errorf("second window inherited first window's events: %+v", second)
	}
}
