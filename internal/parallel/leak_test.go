package parallel_test

// Goroutine-leak audit of the worker-pool engine: ForEach must join
// every goroutine it spawns and Work/WorkCtx must release their slot on
// every path — normal completion, per-job errors, and cancellation
// while queued. Each scenario is bracketed by a before/after
// runtime.NumGoroutine comparison with a settle loop, so a leaked
// worker (or a leaked slot, which would deadlock the follow-up full
// fan-out) fails the test rather than a later one.

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"dragonfly/internal/parallel"
)

// settleGoroutines polls until the goroutine count returns to within
// slack of base or the deadline passes, returning the final count.
// Finished goroutines take a beat to be reaped, so a raw immediate
// comparison would flake.
func settleGoroutines(base, slack int) int {
	deadline := time.Now().Add(5 * time.Second)
	n := runtime.NumGoroutine()
	for n > base+slack && time.Now().Before(deadline) {
		runtime.Gosched()
		time.Sleep(10 * time.Millisecond)
		n = runtime.NumGoroutine()
	}
	return n
}

// checkNoLeaks runs scenario and verifies the goroutine count settles
// back, then proves no worker slot leaked by saturating the pool.
func checkNoLeaks(t *testing.T, pool *parallel.Pool, name string, scenario func()) {
	t.Helper()
	base := runtime.NumGoroutine()
	scenario()
	if got := settleGoroutines(base, 2); got > base+2 {
		t.Errorf("%s: %d goroutines before, %d after settle (leak)", name, base, got)
	}
	// A leaked slot would make a full-width fan-out hang: run one with a
	// watchdog. Jobs() concurrent Works need every slot back.
	done := make(chan struct{})
	go func() {
		defer close(done)
		var ran atomic.Int32
		pool.ForEach(pool.Jobs(), func(int) error {
			pool.Work(func() { ran.Add(1) })
			return nil
		})
		if int(ran.Load()) != pool.Jobs() {
			t.Errorf("%s: post-scenario fan-out ran %d of %d jobs", name, ran.Load(), pool.Jobs())
		}
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatalf("%s: pool wedged after scenario: a worker slot leaked", name)
	}
}

func TestPoolNoLeaksNormalPath(t *testing.T) {
	pool := parallel.New(4)
	checkNoLeaks(t, pool, "normal", func() {
		var n atomic.Int32
		if err := pool.ForEach(64, func(i int) error {
			pool.Work(func() { n.Add(1) })
			return nil
		}); err != nil {
			t.Errorf("ForEach: %v", err)
		}
		if n.Load() != 64 {
			t.Errorf("ran %d of 64 jobs", n.Load())
		}
	})
}

func TestPoolNoLeaksErrorPath(t *testing.T) {
	pool := parallel.New(3)
	sentinel := errors.New("job failed")
	checkNoLeaks(t, pool, "error", func() {
		err := pool.ForEach(32, func(i int) error {
			pool.Work(func() {})
			if i%5 == 0 {
				return fmt.Errorf("job %d: %w", i, sentinel)
			}
			return nil
		})
		if !errors.Is(err, sentinel) {
			t.Errorf("ForEach error = %v, want the lowest-index job error", err)
		}
	})
}

func TestPoolNoLeaksCancelPath(t *testing.T) {
	pool := parallel.New(2)
	checkNoLeaks(t, pool, "cancel", func() {
		ctx, cancel := context.WithCancel(context.Background())
		defer cancel()
		release := make(chan struct{})
		started := make(chan struct{}, 2)
		var wg sync.WaitGroup
		// Fill both slots with jobs that block until released.
		for i := 0; i < 2; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				pool.Work(func() {
					started <- struct{}{}
					<-release
				})
			}()
		}
		<-started
		<-started
		// Every further WorkCtx now queues behind a full pool; cancel
		// must fail all of them without running fn.
		errs := make(chan error, 8)
		for i := 0; i < 8; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				errs <- pool.WorkCtx(ctx, func() {
					t.Error("canceled WorkCtx ran its function")
				})
			}()
		}
		cancel()
		for i := 0; i < 8; i++ {
			if err := <-errs; !errors.Is(err, context.Canceled) {
				t.Errorf("queued WorkCtx returned %v, want context.Canceled", err)
			}
		}
		close(release)
		wg.Wait()
	})
}
