// Package parallel is the worker-pool engine behind concurrent
// simulation sweeps: it bounds how many cycle-accurate simulations run
// at once while leaving every coordination layer (load sweeps, figure
// series, whole experiments) free to fan out.
//
// The design separates the two concerns that usually tangle a nested
// worker pool into a deadlock:
//
//   - ForEach is a pure fan-out/join coordinator. It spawns one
//     goroutine per index, imposes no concurrency limit of its own, and
//     never holds a worker slot — so a ForEach nested inside another
//     ForEach (a per-series sweep inside a per-figure loop inside the
//     all-experiments loop) is always safe, even on a one-worker pool.
//   - Work is the unit of bounded concurrency. Leaf jobs — one
//     simulation run each — wrap their heavy work in Work, which blocks
//     until one of the pool's slots is free.
//
// A sim.Network is strictly single-threaded; the pool only ever runs
// *independent* networks concurrently. Determinism therefore falls out
// of job independence: every job derives its seed from the job identity
// alone (see sim.DeriveSeed), writes its result into its own index, and
// the pool's scheduling order cannot influence any result bit.
package parallel

import (
	"context"
	"fmt"
	"io"
	"runtime"
	"sync"
)

// Pool bounds the number of concurrently running simulations.
// A Pool is safe for use by multiple goroutines.
type Pool struct {
	jobs int
	sem  chan struct{}

	mu  sync.Mutex
	log io.Writer
}

// New returns a pool with the given number of worker slots; jobs <= 0
// means runtime.GOMAXPROCS(0).
func New(jobs int) *Pool {
	if jobs <= 0 {
		jobs = runtime.GOMAXPROCS(0)
	}
	return &Pool{jobs: jobs, sem: make(chan struct{}, jobs)}
}

var (
	defaultOnce sync.Once
	defaultPool *Pool
)

// Default returns the process-wide shared pool, sized to GOMAXPROCS at
// first use. Callers that do not thread an explicit pool (library users
// calling core.System.Sweep directly) share it, so independent sweeps
// running at the same time still respect one machine-wide limit.
func Default() *Pool {
	defaultOnce.Do(func() { defaultPool = New(0) })
	return defaultPool
}

// Jobs returns the pool's worker-slot count.
func (p *Pool) Jobs() int { return p.jobs }

// SetLog directs per-job progress lines (Logf) to w; nil disables them.
func (p *Pool) SetLog(w io.Writer) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.log = w
}

// Logf writes one progress line, serialised across workers. It is a
// no-op unless SetLog installed a writer.
func (p *Pool) Logf(format string, args ...any) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.log == nil {
		return
	}
	fmt.Fprintf(p.log, format, args...)
}

// Work runs fn while holding one of the pool's worker slots, blocking
// until a slot is free. Only leaf work (one simulation run) may be
// wrapped in Work; coordinators must not call Work around code that
// itself reaches Work, or a one-worker pool would deadlock on itself.
func (p *Pool) Work(fn func()) {
	p.sem <- struct{}{}
	defer func() { <-p.sem }()
	fn()
}

// WorkCtx is Work that gives up waiting for a slot when ctx is done,
// returning the context's error without running fn. Once fn starts it
// runs to completion — cancellation of already-running work is the
// work's own business (simulation runs observe the same context inside
// the engine via sim.RunCtx). The slot is always released; a canceled
// WorkCtx leaks neither a slot nor a goroutine.
func (p *Pool) WorkCtx(ctx context.Context, fn func()) error {
	select {
	case p.sem <- struct{}{}:
	case <-ctx.Done():
		return ctx.Err()
	}
	defer func() { <-p.sem }()
	fn()
	return nil
}

// ForEach runs fn(0), …, fn(n-1) on their own goroutines and waits for
// all of them. It imposes no concurrency limit itself — bounding happens
// where the work is, via Work — so ForEach calls nest freely.
//
// Every job runs to completion regardless of other jobs' errors (sweep
// results are speculative; the caller truncates). The error returned is
// the lowest-index one, which keeps error reporting independent of
// scheduling order.
func (p *Pool) ForEach(n int, fn func(i int) error) error {
	if n <= 0 {
		return nil
	}
	errs := make([]error, n)
	var wg sync.WaitGroup
	wg.Add(n)
	for i := 0; i < n; i++ {
		go func(i int) {
			defer wg.Done()
			errs[i] = fn(i)
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
