package parallel

import (
	"errors"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
)

func TestNewDefaultsToGOMAXPROCS(t *testing.T) {
	if got, want := New(0).Jobs(), runtime.GOMAXPROCS(0); got != want {
		t.Errorf("New(0).Jobs() = %d, want %d", got, want)
	}
	if got := New(-3).Jobs(); got != runtime.GOMAXPROCS(0) {
		t.Errorf("New(-3).Jobs() = %d", got)
	}
	if got := New(7).Jobs(); got != 7 {
		t.Errorf("New(7).Jobs() = %d, want 7", got)
	}
}

func TestForEachVisitsEveryIndex(t *testing.T) {
	p := New(3)
	n := 50
	seen := make([]int32, n)
	if err := p.ForEach(n, func(i int) error {
		atomic.AddInt32(&seen[i], 1)
		return nil
	}); err != nil {
		t.Fatalf("ForEach: %v", err)
	}
	for i, c := range seen {
		if c != 1 {
			t.Errorf("index %d visited %d times", i, c)
		}
	}
	if err := p.ForEach(0, func(int) error { t.Error("fn called for n=0"); return nil }); err != nil {
		t.Errorf("ForEach(0) = %v", err)
	}
}

func TestForEachReturnsLowestIndexError(t *testing.T) {
	p := New(4)
	errLow, errHigh := errors.New("low"), errors.New("high")
	err := p.ForEach(10, func(i int) error {
		switch i {
		case 3:
			return errLow
		case 7:
			return errHigh
		}
		return nil
	})
	if err != errLow {
		t.Errorf("ForEach error = %v, want the lowest-index error %v", err, errLow)
	}
}

func TestWorkBoundsConcurrency(t *testing.T) {
	const jobs = 3
	p := New(jobs)
	var cur, max int32
	err := p.ForEach(24, func(int) error {
		p.Work(func() {
			c := atomic.AddInt32(&cur, 1)
			for {
				m := atomic.LoadInt32(&max)
				if c <= m || atomic.CompareAndSwapInt32(&max, m, c) {
					break
				}
			}
			runtime.Gosched()
			atomic.AddInt32(&cur, -1)
		})
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if max > jobs {
		t.Errorf("observed %d concurrent Work bodies, limit %d", max, jobs)
	}
}

func TestNestedForEachDoesNotDeadlockOnOneWorker(t *testing.T) {
	p := New(1)
	var leaves int32
	err := p.ForEach(4, func(int) error {
		// Coordinator level: no slot held, so the nested leaves can run
		// even though the pool has a single worker.
		return p.ForEach(3, func(int) error {
			p.Work(func() { atomic.AddInt32(&leaves, 1) })
			return nil
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	if leaves != 12 {
		t.Errorf("ran %d leaf jobs, want 12", leaves)
	}
}

func TestLogf(t *testing.T) {
	p := New(2)
	p.Logf("dropped: no writer installed")
	var sb strings.Builder
	p.SetLog(&sb)
	p.Logf("job %d done\n", 7)
	if got := sb.String(); got != "job 7 done\n" {
		t.Errorf("Logf wrote %q", got)
	}
	p.SetLog(nil)
	p.Logf("dropped again")
	if got := sb.String(); got != "job 7 done\n" {
		t.Errorf("Logf after SetLog(nil) wrote %q", got)
	}
}

func TestDefaultIsShared(t *testing.T) {
	if Default() != Default() {
		t.Error("Default() must return one shared pool")
	}
}
