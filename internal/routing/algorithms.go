package routing

import (
	"fmt"

	"dragonfly/internal/sim"
)

// MIN is minimal routing (Section 4.1): at most one local hop in the
// source group, one global channel, and one local hop in the destination
// group. Ideal on benign traffic, pathological on adversarial patterns.
type MIN struct{ base }

// NewMIN returns minimal routing over d.
func NewMIN(d Topo) *MIN { return &MIN{base{topo: d}} }

// Name implements sim.Routing.
func (*MIN) Name() string { return "MIN" }

// Decide implements sim.Routing: always minimal.
func (m *MIN) Decide(net *sim.Network, r *sim.Router, pkt *sim.Packet) {
	pkt.Minimal = true
	pkt.InterGroup = -1
}

// VAL is Valiant's randomized algorithm applied at the group level
// (Section 4.1): every packet first routes minimally to a random
// intermediate group, then minimally to its destination. It halves the
// worst case at the price of halving best-case throughput.
type VAL struct{ base }

// NewVAL returns Valiant routing over d.
func NewVAL(d Topo) *VAL { return &VAL{base{topo: d}} }

// Name implements sim.Routing.
func (*VAL) Name() string { return "VAL" }

// Decide implements sim.Routing: always non-minimal through a random
// intermediate group.
func (v *VAL) Decide(net *sim.Network, r *sim.Router, pkt *sim.Packet) {
	gs := v.topo.RouterGroup(r.ID)
	if v.topo.TerminalRouter(pkt.Dst) == r.ID {
		pkt.Minimal = true
		pkt.InterGroup = -1
		return
	}
	gi := v.pickInterGroup(gs, pkt.Seed)
	if gi == gs {
		// Single-group topology: no intermediate group exists, so the
		// "Valiant" path is the minimal one.
		pkt.Minimal = true
		pkt.InterGroup = -1
		return
	}
	pkt.Minimal = false
	pkt.InterGroup = gi
}

// UGALMode selects the congestion-estimate flavour of UGAL.
type UGALMode int

const (
	// UGALLocal is conventional UGAL-L: total output-queue estimates at
	// the source router.
	UGALLocal UGALMode = iota
	// UGALLocalVC is UGAL-L_VC: per-VC queue estimates, separating
	// minimal (VC1) from non-minimal (VC0) occupancy (Section 4.3.1).
	UGALLocalVC
	// UGALLocalVCH is UGAL-L_VCH: per-VC estimates only when the two
	// candidate paths leave through the same output port, total
	// estimates otherwise (the paper's hybrid rule).
	UGALLocalVCH
	// UGALGlobal is UGAL-G: an ideal implementation reading the queues
	// of the actual global channels, wherever they are in the group.
	UGALGlobal
)

// String names the mode like the paper does.
func (m UGALMode) String() string {
	switch m {
	case UGALLocal:
		return "UGAL-L"
	case UGALLocalVC:
		return "UGAL-L_VC"
	case UGALLocalVCH:
		return "UGAL-L_VCH"
	case UGALGlobal:
		return "UGAL-G"
	default:
		return fmt.Sprintf("UGALMode(%d)", int(m))
	}
}

// UGAL chooses between the minimal and a random Valiant path per packet
// by comparing queue-length × hop-count products (Singh's UGAL), with
// the congestion estimate selected by Mode.
type UGAL struct {
	base
	// Mode selects the congestion estimate.
	Mode UGALMode
	// CreditRT marks the UGAL-L_CR configuration: the decision rule is
	// UGAL-L_VCH and the simulator must run with Config.DelayCredits.
	CreditRT bool
}

// NewUGAL returns a UGAL router over d with the given mode.
func NewUGAL(d Topo, mode UGALMode) *UGAL {
	return &UGAL{base: base{topo: d}, Mode: mode}
}

// NewUGALCR returns the UGAL-L_CR configuration: UGAL-L_VCH decisions
// designed to run with the credit round-trip latency mechanism enabled
// (sim.Config.DelayCredits = true; see NeedsCreditDelay).
func NewUGALCR(d Topo) *UGAL {
	return &UGAL{base: base{topo: d}, Mode: UGALLocalVCH, CreditRT: true}
}

// Name implements sim.Routing.
func (u *UGAL) Name() string {
	if u.CreditRT {
		return "UGAL-L_CR"
	}
	return u.Mode.String()
}

// NeedsCreditDelay reports that the simulator should enable the delayed-
// credit mechanism for this algorithm.
func (u *UGAL) NeedsCreditDelay() bool { return u.CreditRT }

// Decide implements sim.Routing: the source-router adaptive choice.
func (u *UGAL) Decide(net *sim.Network, r *sim.Router, pkt *sim.Packet) {
	t := u.topo
	dstR := t.TerminalRouter(pkt.Dst)
	if dstR == r.ID {
		pkt.Minimal = true
		pkt.InterGroup = -1
		return
	}
	gs := t.RouterGroup(r.ID)
	gd := t.RouterGroup(dstR)
	gi := u.pickInterGroup(gs, pkt.Seed)
	if gi == gs {
		// Single-group topology: no non-minimal candidate exists.
		pkt.Minimal = true
		pkt.InterGroup = -1
		return
	}

	hm := u.minimalHops(r.ID, dstR, pkt.Seed)
	hnm := u.nonminimalHops(r.ID, dstR, gi, pkt.Seed)

	portM, vcM := u.hop(r.ID, dstR, gd, true, pkt.Seed)
	portNm, vcNm := u.hop(r.ID, dstR, gi, false, pkt.Seed)

	var qm, qnm int
	switch u.Mode {
	case UGALLocal:
		qm = r.OutputQueue(portM)
		qnm = r.OutputQueue(portNm)
	case UGALLocalVC:
		qm = r.OutputQueueVC(portM, vcM)
		qnm = r.OutputQueueVC(portNm, vcNm)
	case UGALLocalVCH:
		if portM == portNm {
			qm = r.OutputQueueVC(portM, vcM)
			qnm = r.OutputQueueVC(portNm, vcNm)
		} else {
			qm = r.OutputQueue(portM)
			qnm = r.OutputQueue(portNm)
		}
	case UGALGlobal:
		qm, qnm = u.globalQueues(net, r, dstR, gs, gd, gi, pkt.Seed, portM, portNm)
	}

	if qm*hm <= qnm*hnm {
		pkt.Minimal = true
		pkt.InterGroup = -1
		return
	}
	pkt.Minimal = false
	pkt.InterGroup = gi
}

// globalQueues implements the UGAL-G oracle: the congestion of the two
// candidate paths is read at the routers that actually source their
// global channels, regardless of where in the group those routers are.
// For an intra-group minimal path (no global channel) the local output
// queue stands in.
func (u *UGAL) globalQueues(net *sim.Network, r *sim.Router, dstR, gs, gd, gi int, seed uint64, portM, portNm int) (qm, qnm int) {
	t := u.topo
	if gs == gd {
		qm = r.OutputQueue(portM)
	} else {
		slot := u.chooseSlot(gs, gd, seed)
		owner := net.RouterAt(t.GroupRouter(gs, t.SlotRouterIndex(slot)))
		qm = owner.OutputQueue(t.GlobalPort(slot))
	}
	if gi == gs {
		qnm = qm
	} else {
		slot := u.chooseSlot(gs, gi, seed)
		owner := net.RouterAt(t.GroupRouter(gs, t.SlotRouterIndex(slot)))
		qnm = owner.OutputQueue(t.GlobalPort(slot))
	}
	return qm, qnm
}
