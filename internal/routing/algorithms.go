package routing

import (
	"fmt"

	"dragonfly/internal/sim"
)

// MIN is minimal routing (Section 4.1): at most one local hop in the
// source group, one global channel, and one local hop in the destination
// group. Ideal on benign traffic, pathological on adversarial patterns.
type MIN struct{ base }

// NewMIN returns minimal routing over d.
func NewMIN(d Topo) *MIN { return &MIN{newBase(d)} }

// Name implements sim.Routing.
func (*MIN) Name() string { return "MIN" }

// Decide implements sim.Routing: always minimal on a pristine topology.
// On a degraded one, a source-destination group pair whose every direct
// global channel died falls back to a Valiant detour through a live
// intermediate group (the VC scheme already covers non-minimal paths,
// so the fallback stays within the deadlock-free ordering); a
// destination no fallback can reach is reported unroutable.
func (m *MIN) Decide(net *sim.Network, r *sim.Router, hs *sim.HopState) error {
	if m.deg != nil {
		return m.decideWithFaults(r, hs, false)
	}
	hs.Minimal = true
	hs.InterGroup = -1
	return nil
}

// decideWithFaults is the shared minimal-preferred decision under a
// fault plan: route minimally when a live minimal path exists, detour
// through a live intermediate group otherwise. forceDetour skips the
// minimal preference (VAL's behaviour).
func (b *base) decideWithFaults(r *sim.Router, hs *sim.HopState, forceDetour bool) error {
	t := b.topo
	if b.deg.TerminalDown(hs.Dst) {
		return &sim.UnroutableError{Src: hs.Src, Dst: hs.Dst, Router: r.ID}
	}
	dstR := t.TerminalRouter(hs.Dst)
	gs := t.RouterGroup(r.ID)
	gd := t.RouterGroup(dstR)
	minFeasible := dstR == r.ID || gs == gd || b.deg.LiveChannels(gs, gd) > 0
	if minFeasible && (!forceDetour || dstR == r.ID) {
		hs.Minimal = true
		hs.InterGroup = -1
		return nil
	}
	gi, ok := b.pickLiveInterGroup(gs, gd, hs.Seed)
	if ok && gi != gs {
		hs.Minimal = false
		hs.InterGroup = gi
		return nil
	}
	if minFeasible {
		// forceDetour with no usable intermediate group (single-group
		// machine, or faults severed them all): minimal still works.
		hs.Minimal = true
		hs.InterGroup = -1
		return nil
	}
	return &sim.UnroutableError{Src: hs.Src, Dst: hs.Dst, Router: r.ID}
}

// VAL is Valiant's randomized algorithm applied at the group level
// (Section 4.1): every packet first routes minimally to a random
// intermediate group, then minimally to its destination. It halves the
// worst case at the price of halving best-case throughput.
type VAL struct{ base }

// NewVAL returns Valiant routing over d.
func NewVAL(d Topo) *VAL { return &VAL{newBase(d)} }

// Name implements sim.Routing.
func (*VAL) Name() string { return "VAL" }

// Decide implements sim.Routing: always non-minimal through a random
// intermediate group. On a degraded topology the intermediate group is
// drawn among the groups whose detour channels survived.
func (v *VAL) Decide(net *sim.Network, r *sim.Router, hs *sim.HopState) error {
	if v.deg != nil {
		return v.decideWithFaults(r, hs, true)
	}
	gs := v.topo.RouterGroup(r.ID)
	if v.topo.TerminalRouter(hs.Dst) == r.ID {
		hs.Minimal = true
		hs.InterGroup = -1
		return nil
	}
	gi := v.pickInterGroup(gs, hs.Seed)
	if gi == gs {
		// Single-group topology: no intermediate group exists, so the
		// "Valiant" path is the minimal one.
		hs.Minimal = true
		hs.InterGroup = -1
		return nil
	}
	hs.Minimal = false
	hs.InterGroup = gi
	return nil
}

// UGALMode selects the congestion-estimate flavour of UGAL.
type UGALMode int

const (
	// UGALLocal is conventional UGAL-L: total output-queue estimates at
	// the source router.
	UGALLocal UGALMode = iota
	// UGALLocalVC is UGAL-L_VC: per-VC queue estimates, separating
	// minimal (VC1) from non-minimal (VC0) occupancy (Section 4.3.1).
	UGALLocalVC
	// UGALLocalVCH is UGAL-L_VCH: per-VC estimates only when the two
	// candidate paths leave through the same output port, total
	// estimates otherwise (the paper's hybrid rule).
	UGALLocalVCH
	// UGALGlobal is UGAL-G: an ideal implementation reading the queues
	// of the actual global channels, wherever they are in the group.
	UGALGlobal
)

// String names the mode like the paper does.
func (m UGALMode) String() string {
	switch m {
	case UGALLocal:
		return "UGAL-L"
	case UGALLocalVC:
		return "UGAL-L_VC"
	case UGALLocalVCH:
		return "UGAL-L_VCH"
	case UGALGlobal:
		return "UGAL-G"
	default:
		return fmt.Sprintf("UGALMode(%d)", int(m))
	}
}

// UGAL chooses between the minimal and a random Valiant path per packet
// by comparing queue-length × hop-count products (Singh's UGAL), with
// the congestion estimate selected by Mode.
type UGAL struct {
	base
	// Mode selects the congestion estimate.
	Mode UGALMode
	// CreditRT marks the UGAL-L_CR configuration: the decision rule is
	// UGAL-L_VCH and the simulator must run with Config.DelayCredits.
	CreditRT bool
}

// NewUGAL returns a UGAL router over d with the given mode.
func NewUGAL(d Topo, mode UGALMode) *UGAL {
	return &UGAL{base: newBase(d), Mode: mode}
}

// NewUGALCR returns the UGAL-L_CR configuration: UGAL-L_VCH decisions
// designed to run with the credit round-trip latency mechanism enabled
// (sim.Config.DelayCredits = true; see NeedsCreditDelay).
func NewUGALCR(d Topo) *UGAL {
	return &UGAL{base: newBase(d), Mode: UGALLocalVCH, CreditRT: true}
}

// Name implements sim.Routing.
func (u *UGAL) Name() string {
	if u.CreditRT {
		return "UGAL-L_CR"
	}
	return u.Mode.String()
}

// NeedsCreditDelay reports that the simulator should enable the delayed-
// credit mechanism for this algorithm.
func (u *UGAL) NeedsCreditDelay() bool { return u.CreditRT }

// Decide implements sim.Routing: the source-router adaptive choice. On
// a degraded topology the minimal and Valiant candidates are restricted
// to surviving channels; when only one candidate survives it is taken
// without a queue comparison, and when neither does the packet is
// unroutable.
func (u *UGAL) Decide(net *sim.Network, r *sim.Router, hs *sim.HopState) error {
	t := u.topo
	if u.deg != nil && u.deg.TerminalDown(hs.Dst) {
		return &sim.UnroutableError{Src: hs.Src, Dst: hs.Dst, Router: r.ID}
	}
	dstR := t.TerminalRouter(hs.Dst)
	if dstR == r.ID {
		hs.Minimal = true
		hs.InterGroup = -1
		return nil
	}
	gs := t.RouterGroup(r.ID)
	gd := t.RouterGroup(dstR)

	var gi int
	if u.deg != nil {
		minFeasible := gs == gd || u.deg.LiveChannels(gs, gd) > 0
		var giOK bool
		gi, giOK = u.pickLiveInterGroup(gs, gd, hs.Seed)
		switch {
		case !minFeasible && !giOK:
			return &sim.UnroutableError{Src: hs.Src, Dst: hs.Dst, Router: r.ID}
		case !giOK:
			// No usable intermediate group: minimal without comparison.
			hs.Minimal = true
			hs.InterGroup = -1
			return nil
		case !minFeasible:
			// Minimal path severed: forced Valiant detour.
			hs.Minimal = false
			hs.InterGroup = gi
			return nil
		}
	} else {
		gi = u.pickInterGroup(gs, hs.Seed)
		if gi == gs {
			// Single-group topology: no non-minimal candidate exists.
			hs.Minimal = true
			hs.InterGroup = -1
			return nil
		}
	}

	hm := u.minimalHops(r.ID, dstR, hs.Seed)
	hnm := u.nonminimalHops(r.ID, dstR, gi, hs.Seed)

	portM, vcM, errM := u.hop(r.ID, dstR, gd, true, hs.Seed)
	portNm, vcNm, errNm := u.hop(r.ID, dstR, gi, false, hs.Seed)
	// Either candidate's first hop can be locally severed even when the
	// group pair keeps live channels; fall back to the other candidate.
	switch {
	case errM != nil && errNm != nil:
		return &sim.UnroutableError{Src: hs.Src, Dst: hs.Dst, Router: r.ID}
	case errM != nil:
		hs.Minimal = false
		hs.InterGroup = gi
		return nil
	case errNm != nil:
		hs.Minimal = true
		hs.InterGroup = -1
		return nil
	}

	var qm, qnm int
	switch u.Mode {
	case UGALLocal:
		qm = r.OutputQueue(portM)
		qnm = r.OutputQueue(portNm)
	case UGALLocalVC:
		qm = r.OutputQueueVC(portM, vcM)
		qnm = r.OutputQueueVC(portNm, vcNm)
	case UGALLocalVCH:
		if portM == portNm {
			qm = r.OutputQueueVC(portM, vcM)
			qnm = r.OutputQueueVC(portNm, vcNm)
		} else {
			qm = r.OutputQueue(portM)
			qnm = r.OutputQueue(portNm)
		}
	case UGALGlobal:
		qm, qnm = u.globalQueues(net, r, dstR, gs, gd, gi, hs.Seed, portM, portNm)
	}

	if qm*hm <= qnm*hnm {
		hs.Minimal = true
		hs.InterGroup = -1
		return nil
	}
	hs.Minimal = false
	hs.InterGroup = gi
	return nil
}

// globalQueues implements the UGAL-G oracle: the congestion of the two
// candidate paths is read at the routers that actually source their
// global channels, regardless of where in the group those routers are.
// For an intra-group minimal path (no global channel) the local output
// queue stands in.
func (u *UGAL) globalQueues(net *sim.Network, r *sim.Router, dstR, gs, gd, gi int, seed uint64, portM, portNm int) (qm, qnm int) {
	t := u.topo
	if gs == gd {
		qm = r.OutputQueue(portM)
	} else if slot := u.chooseSlot(gs, gd, seed); slot < 0 {
		qm = r.OutputQueue(portM) // severed pair: callers never reach here
	} else {
		owner := net.RouterAt(t.GroupRouter(gs, t.SlotRouterIndex(slot)))
		qm = owner.OutputQueue(t.GlobalPort(slot))
	}
	if gi == gs {
		qnm = qm
	} else if slot := u.chooseSlot(gs, gi, seed); slot < 0 {
		qnm = r.OutputQueue(portNm)
	} else {
		owner := net.RouterAt(t.GroupRouter(gs, t.SlotRouterIndex(slot)))
		qnm = owner.OutputQueue(t.GlobalPort(slot))
	}
	return qm, qnm
}
