package routing

import (
	"testing"

	"dragonfly/internal/fault"
	"dragonfly/internal/sim"
	"dragonfly/internal/topology"
	"dragonfly/internal/traffic"
)

// severPair fails every global channel between groups ga and gb.
func severPair(t *testing.T, d *topology.Dragonfly, ga, gb int) *topology.Degraded {
	t.Helper()
	plan := fault.NewPlan(1)
	for idx := 0; idx < d.A; idx++ {
		r := d.GroupRouter(ga, idx)
		for p := 0; p < d.Radix(r); p++ {
			pt := d.Port(r, p)
			if pt.Class == topology.ClassGlobal && d.RouterGroup(pt.PeerRouter) == gb {
				plan.FailChannel(d, r, p)
			}
		}
	}
	dg := topology.NewDegraded(d, plan)
	if dg.LiveChannels(ga, gb) != 0 {
		t.Fatalf("severPair left %d live channels between %d and %d", dg.LiveChannels(ga, gb), ga, gb)
	}
	return dg
}

// isolateGroup fails every global channel touching group g.
func isolateGroup(t *testing.T, d *topology.Dragonfly, g int) *topology.Degraded {
	t.Helper()
	plan := fault.NewPlan(1)
	for idx := 0; idx < d.A; idx++ {
		r := d.GroupRouter(g, idx)
		for p := 0; p < d.Radix(r); p++ {
			if d.Port(r, p).Class == topology.ClassGlobal {
				plan.FailChannel(d, r, p)
			}
		}
	}
	dg := topology.NewDegraded(d, plan)
	if dg.Connected() {
		t.Fatal("isolateGroup left the network connected")
	}
	return dg
}

// nextGroupTraffic sends every terminal's packets to the same-position
// terminal of the next group, so all traffic crosses exactly one group
// boundary.
type nextGroupTraffic struct{ d *topology.Dragonfly }

func (nextGroupTraffic) Name() string { return "nextgroup" }
func (tr nextGroupTraffic) Dest(src int, _ uint64) int {
	return (src + tr.d.TerminalsPerGroup()) % tr.d.Nodes()
}

// TestMINDetoursAroundSeveredPair: killing the only minimal global
// channel between two groups must not strand their traffic — fault-aware
// MIN falls back to a Valiant detour through a live intermediate group
// and still delivers everything.
func TestMINDetoursAroundSeveredPair(t *testing.T) {
	d := testDF(t) // 1 channel per group pair at this size
	dg := severPair(t, d, 0, 1)
	m := NewMIN(dg)
	net, err := sim.New(dg, testCfg(), m, nextGroupTraffic{d})
	if err != nil {
		t.Fatalf("sim.New: %v", err)
	}
	crossDelivered, detours := 0, 0
	net.OnEject = func(p *sim.Packet, now int64) {
		if d.TerminalGroup(p.Src) == 0 && d.TerminalGroup(p.Dst) == 1 {
			crossDelivered++
			if !p.Minimal {
				detours++
			}
		}
	}
	net.SetLoad(0.2)
	for i := 0; i < 2000; i++ {
		if err := net.Step(); err != nil {
			t.Fatalf("Step: %v", err)
		}
	}
	if crossDelivered == 0 {
		t.Fatal("no packets delivered across the severed pair")
	}
	if detours != crossDelivered {
		t.Errorf("%d of %d severed-pair packets claim a minimal route that no longer exists",
			crossDelivered-detours, crossDelivered)
	}
	if got := net.Dropped(); got != 0 {
		t.Errorf("%d packets dropped on a connected degraded network", got)
	}
}

// TestVCLevelsMonotoneUnderFaults re-runs the deadlock-freedom VC check
// with a fault plan active: detoured paths must climb the same
// (class, VC) ladder as pristine ones.
func TestVCLevelsMonotoneUnderFaults(t *testing.T) {
	d := testDF(t)
	plan := fault.NewPlan(7)
	plan.FailRandomChannels(d, topology.ClassGlobal, 8) // ~22% of the 36 channels
	plan.FailRandomChannels(d, topology.ClassLocal, 4)
	dg := topology.NewDegraded(d, plan)
	for _, mk := range []func() sim.Routing{
		func() sim.Routing { return NewMIN(dg) },
		func() sim.Routing { return NewVAL(dg) },
		func() sim.Routing { return NewUGAL(dg, UGALLocal) },
		func() sim.Routing { return NewUGAL(dg, UGALLocalVCH) },
	} {
		rec := &hopRecorder{inner: mk(), topo: d, bad: t.Errorf, lastVC: map[uint64]vcState{}}
		net, err := sim.New(dg, testCfg(), rec, traffic.NewUniformRandom(d.Nodes()))
		if err != nil {
			t.Fatalf("sim.New: %v", err)
		}
		net.SetLoad(0.3)
		for i := 0; i < 1500; i++ {
			if err := net.Step(); err != nil {
				t.Fatalf("%s: Step: %v", rec.Name(), err)
			}
		}
	}
}

// TestDisconnectedGroupDropsNotHangs: with a group fully cut off, its
// cross-group traffic is unroutable; the simulator must count drops and
// keep running rather than wedge or error out.
func TestDisconnectedGroupDropsNotHangs(t *testing.T) {
	d := testDF(t)
	dg := isolateGroup(t, d, 0)
	for _, mk := range []func() sim.Routing{
		func() sim.Routing { return NewMIN(dg) },
		func() sim.Routing { return NewUGAL(dg, UGALLocal) },
	} {
		rt := mk()
		net, err := sim.New(dg, testCfg(), rt, nextGroupTraffic{d})
		if err != nil {
			t.Fatalf("sim.New: %v", err)
		}
		net.SetLoad(0.2)
		for i := 0; i < 2000; i++ {
			if err := net.Step(); err != nil {
				t.Fatalf("%s: Step: %v", rt.Name(), err)
			}
		}
		if net.Dropped() == 0 {
			t.Errorf("%s: no drops with group 0 cut off and all its traffic cross-group", rt.Name())
		}
	}
}

// TestEmptyPlanBitIdenticalRouting: attaching an all-alive fault plan
// must not change a single routing decision — the degraded code paths
// reduce exactly to the pristine ones.
func TestEmptyPlanBitIdenticalRouting(t *testing.T) {
	d := testDF(t)
	dg := topology.NewDegraded(d, fault.NewPlan(1))
	for _, mk := range []struct {
		name               string
		pristine, degraded sim.Routing
	}{
		{"MIN", NewMIN(d), NewMIN(dg)},
		{"VAL", NewVAL(d), NewVAL(dg)},
		{"UGAL-L", NewUGAL(d, UGALLocal), NewUGAL(dg, UGALLocal)},
	} {
		run := func(rt sim.Routing, topo sim.Topology) (ejected int, latSum int64) {
			net, err := sim.New(topo, testCfg(), rt, traffic.NewUniformRandom(d.Nodes()))
			if err != nil {
				t.Fatalf("sim.New: %v", err)
			}
			net.OnEject = func(p *sim.Packet, now int64) {
				ejected++
				latSum += now - p.CreateTime
			}
			net.SetLoad(0.3)
			for i := 0; i < 1500; i++ {
				if err := net.Step(); err != nil {
					t.Fatalf("Step: %v", err)
				}
			}
			return
		}
		e1, l1 := run(mk.pristine, d)
		e2, l2 := run(mk.degraded, dg)
		if e1 != e2 || l1 != l2 {
			t.Errorf("%s: empty fault plan changed the simulation: %d pkts/%d lat vs %d pkts/%d lat",
				mk.name, e1, l1, e2, l2)
		}
	}
}
