// Regression test for the pickInterGroup divide-by-zero: on a topology
// with a single group, VAL and every UGAL variant used to panic with a
// mod-by-zero when drawing the Valiant intermediate group. They must
// instead fall back to minimal routing. The test lives in an external
// package so it can drive the full stack through core.
package routing_test

import (
	"testing"

	"dragonfly/internal/core"
	"dragonfly/internal/sim"
)

func TestSingleGroupFallsBackToMinimal(t *testing.T) {
	sys, err := core.NewSystem(core.SystemConfig{P: 2, A: 4, H: 2, Groups: 1})
	if err != nil {
		t.Fatalf("1-group system: %v", err)
	}
	rc := sim.RunConfig{WarmupCycles: 200, MeasureCycles: 200, DrainCycles: 5000}
	for _, alg := range []core.Algorithm{core.AlgVAL, core.AlgUGALL, core.AlgUGALG, core.AlgUGALLVC, core.AlgUGALLVCH, core.AlgUGALLCR} {
		res, err := sys.Run(alg, core.PatternUR, 0.3, rc)
		if err != nil {
			t.Errorf("%s on 1-group dragonfly: %v", alg, err)
			continue
		}
		if res.Latency.Count() == 0 {
			t.Errorf("%s on 1-group dragonfly measured no packets", alg)
		}
		// With no other group to bounce through, every packet must have
		// been routed minimally.
		if res.MinimalFraction != 1 {
			t.Errorf("%s on 1-group dragonfly routed %.2f%% minimally, want 100%%",
				alg, 100*res.MinimalFraction)
		}
	}
}

func TestSingleGroupWorstCaseTraffic(t *testing.T) {
	// The WC pattern degenerates to intra-group random traffic when
	// g = 1; it must still simulate without panicking under VAL.
	sys, err := core.NewSystem(core.SystemConfig{P: 2, A: 4, H: 2, Groups: 1})
	if err != nil {
		t.Fatal(err)
	}
	rc := sim.RunConfig{WarmupCycles: 200, MeasureCycles: 200, DrainCycles: 5000}
	if _, err := sys.Run(core.AlgVAL, core.PatternWC, 0.2, rc); err != nil {
		t.Errorf("VAL/WC on 1-group dragonfly: %v", err)
	}
}
