// Package routing implements the dragonfly routing algorithms of
// Section 4 of the paper:
//
//   - MIN — minimal routing (Section 4.1, three steps).
//   - VAL — Valiant randomized routing over intermediate groups
//     (Section 4.1, five steps).
//   - UGAL-L — universal globally-adaptive load-balanced routing using
//     local queue estimates at the source router.
//   - UGAL-G — the ideal variant with oracle access to the queues of
//     every global channel in the source group.
//   - UGAL-L_VC — queue estimates discriminated by virtual channel
//     (Section 4.3.1).
//   - UGAL-L_VCH — the hybrid: VC discrimination only when the minimal
//     and non-minimal candidates share an output port (Section 4.3.1).
//   - UGAL-L_CR — UGAL-L_VCH on top of the credit round-trip latency
//     mechanism (Section 4.3.2); the mechanism itself lives in
//     internal/sim and is switched on via Config.DelayCredits.
//
// Virtual channels are assigned per Figure 7 to break routing deadlock:
// along any path the (class, VC) level is non-decreasing —
// non-minimal paths use l:VC0 → g:VC0 → l:VC1 → g:VC1 → l:VC2 and
// minimal paths the suffix l:VC1 → g:VC1 → l:VC2. Minimal and
// non-minimal packets therefore use distinct VCs on a shared first local
// hop (VC1 vs. VC0), which is exactly the discrimination UGAL-L_VC
// needs.
package routing

import (
	"dragonfly/internal/sim"
)

// VCs is the number of virtual channels the algorithms require
// (Figure 7: two for minimal plus a third for non-minimal routing).
const VCs = 3

// Virtual-channel levels (see the package comment).
const (
	vcPhase0  = 0 // local and global hops towards the intermediate group
	vcPhase1  = 1 // local and global hops towards the destination group
	vcDestHop = 2 // the final local hop inside the destination group
)

// Topo is the structural view of a dragonfly-family machine the
// routing algorithms need: a structural subset of topology.Machine, so
// every registered topology — *topology.Dragonfly, *DragonflyFB,
// *DragonflyPlus, *Swapped, *Aries — implements it, as do the
// fault-aware Degraded/Switched wrappers. The one structural invariant
// the algorithms assume is the dragonfly family's: any two groups are
// connected by at least one direct global channel, so minimal paths
// take exactly one global hop and Valiant paths two.
type Topo interface {
	// Groups returns the group count.
	Groups() int
	// TerminalRouter and TerminalPort locate a terminal.
	TerminalRouter(t int) int
	TerminalPort(t int) int
	// RouterGroup, RouterIndex and GroupRouter convert between router
	// ids and (group, in-group index) pairs.
	RouterGroup(r int) int
	RouterIndex(r int) int
	GroupRouter(grp, idx int) int
	// LocalRoute returns the next-hop local port from in-group index
	// `from` towards `to`; LocalHops the intra-group distance.
	LocalRoute(from, to int) int
	LocalHops(from, to int) int
	// GlobalPort and SlotRouterIndex locate a global-channel slot;
	// ChannelsBetween, GlobalSlot and GlobalEntryRouter describe the
	// inter-group wiring.
	GlobalPort(slot int) int
	SlotRouterIndex(slot int) int
	ChannelsBetween(ga, gb int) int
	GlobalSlot(grp, dst, m int) int
	GlobalEntryRouter(grp, dst, slot int) int
}

// DegradedTopo is the fault-aware structural view the algorithms need
// on top of Topo. *topology.Degraded implements it; when a topology
// handed to a constructor satisfies it, the algorithm routes around the
// dead channels it describes.
type DegradedTopo interface {
	Topo
	// Alive reports whether the channel attached at (router, port) can
	// carry flits.
	Alive(router, port int) bool
	// RouterDown reports that router r failed entirely.
	RouterDown(r int) bool
	// TerminalDown reports that terminal t is unreachable.
	TerminalDown(t int) bool
	// LiveChannels counts the surviving global channels between two
	// groups.
	LiveChannels(ga, gb int) int
	// LiveGlobalSlot returns the m-th surviving global-channel slot from
	// grp to dst (m wrapped into the live count), or -1 when none
	// survive.
	LiveGlobalSlot(grp, dst, m int) int
	// RoutersPerGroup returns the group size (for local detours).
	RoutersPerGroup() int
}

// SeededTopo is the optional bundle-spreading capability of topologies
// with parallel local links (topology.SeededLocal): LocalRouteSeeded is
// LocalRoute with a deterministic per-packet choice among the parallel
// cables of a local hop. Detected by type assertion in newBase; direct
// local hops then spread over the bundle while hop counts and detours
// keep using LocalRoute/LocalHops (every cable of a bundle is one hop).
type SeededTopo interface {
	LocalRouteSeeded(from, to int, seed uint64) int
}

// base carries the dragonfly structure all algorithms share. deg is
// non-nil when the topology is a fault-aware degraded view; every
// structural query then consults channel liveness. sl is non-nil when
// the topology spreads parallel local links per packet.
type base struct {
	topo Topo
	deg  DegradedTopo
	sl   SeededTopo
}

// newBase wraps t, detecting a degraded (fault-aware) topology and the
// optional local-bundle capability.
func newBase(t Topo) base {
	b := base{topo: t}
	if d, ok := t.(DegradedTopo); ok {
		b.deg = d
	}
	if s, ok := t.(SeededTopo); ok {
		b.sl = s
	}
	return b
}

// errNoLivePath is the internal marker hop helpers return when the
// fault plan severed every channel the requested hop could use; callers
// holding packet context convert it to *sim.UnroutableError.
var errNoLivePath = &internalNoPathError{}

type internalNoPathError struct{}

func (*internalNoPathError) Error() string { return "routing: no live channel for hop" }

// hop computes the switch request (output port, VC) for a packet at
// router rID heading for target group tg with destination router dstR.
// phase1 reports whether tg is the packet's final destination group.
// seed drives the deterministic choice among parallel global channels,
// so Decide-time congestion queries inspect exactly the channel NextHop
// will use. On a degraded topology it returns errNoLivePath when no
// live channel can make progress.
func (b *base) hop(rID, dstR, tg int, phase1 bool, seed uint64) (port, vc int, err error) {
	t := b.topo
	cur := t.RouterGroup(rID)
	idx := t.RouterIndex(rID)
	if cur == tg {
		// Local hop(s) inside the destination group (dimension-order for
		// flattened-butterfly groups, direct otherwise).
		port, err = b.localPort(rID, t.RouterIndex(dstR), seed)
		return port, vcDestHop, err
	}
	slot := b.chooseSlot(cur, tg, seed)
	if slot < 0 {
		return 0, 0, errNoLivePath
	}
	level := vcPhase0
	if phase1 {
		level = vcPhase1
	}
	if t.SlotRouterIndex(slot) == idx {
		return t.GlobalPort(slot), level, nil
	}
	port, err = b.localPort(rID, t.SlotRouterIndex(slot), seed)
	return port, level, err
}

// localPort returns the local output port from rID toward the router
// with in-group index toIdx. On a pristine topology this is the direct
// next hop; on a degraded one, a dead direct channel is detoured
// through one live intermediate router of the group, chosen
// deterministically from the packet seed. The detour stays on the same
// VC — legal here because the fully connected group's local hops are
// acyclic in the detour's two-hop pattern, though pathological fault
// plans could in principle defeat the ordering, which is exactly what
// the stall detector's diagnostic snapshot exists to expose.
func (b *base) localPort(rID, toIdx int, seed uint64) (int, error) {
	t := b.topo
	idx := t.RouterIndex(rID)
	direct := t.LocalRoute(idx, toIdx)
	if b.sl != nil {
		direct = b.sl.LocalRouteSeeded(idx, toIdx, seed)
	}
	if b.deg == nil || b.deg.Alive(rID, direct) {
		return direct, nil
	}
	grp := t.RouterGroup(rID)
	a := b.deg.RoutersPerGroup()
	start := int(sim.Mix(seed^0x94d049bb133111eb) % uint64(a))
	for i := 0; i < a; i++ {
		w := start + i
		if w >= a {
			w -= a
		}
		if w == idx || w == toIdx {
			continue
		}
		first := t.LocalRoute(idx, w)
		if !b.deg.Alive(rID, first) {
			continue
		}
		if !b.deg.Alive(t.GroupRouter(grp, w), t.LocalRoute(w, toIdx)) {
			continue
		}
		return first, nil
	}
	return 0, errNoLivePath
}

// chooseSlot picks the global-channel slot from group cur to group tg,
// deterministically per packet, uniformly among the parallel channels of
// the pair — on a degraded topology, among the pair's surviving
// channels (-1 when none survive). With an empty fault plan the live
// slot list equals the full slot enumeration, so the choice is
// bit-identical to the pristine one.
func (b *base) chooseSlot(cur, tg int, seed uint64) int {
	if b.deg != nil {
		n := b.deg.LiveChannels(cur, tg)
		if n == 0 {
			return -1
		}
		m := 0
		if n > 1 {
			m = int(sim.Mix(seed+uint64(cur)*0x9e37) % uint64(n))
		}
		return b.deg.LiveGlobalSlot(cur, tg, m)
	}
	n := b.topo.ChannelsBetween(cur, tg)
	m := 0
	if n > 1 {
		m = int(sim.Mix(seed+uint64(cur)*0x9e37) % uint64(n))
	}
	return b.topo.GlobalSlot(cur, tg, m)
}

// NextHop resolves the packet's phase and target group, then computes
// the hop request. It satisfies sim.Routing for every algorithm. On a
// degraded topology it returns a *sim.UnroutableError when the fault
// plan severed every channel the hop could use; the simulator drops the
// packet and counts it.
func (b *base) NextHop(net *sim.Network, r *sim.Router, hs *sim.HopState) error {
	t := b.topo
	dstR := t.TerminalRouter(hs.Dst)
	if r.ID == dstR {
		hs.Port = t.TerminalPort(hs.Dst)
		hs.VC = 0
		return nil
	}
	cur := t.RouterGroup(r.ID)
	if !hs.Phase1 && cur == hs.InterGroup {
		hs.Phase1 = true
	}
	tg := t.RouterGroup(dstR)
	if !hs.Phase1 {
		tg = hs.InterGroup
	}
	if !hs.Phase1 && cur == tg {
		// InterGroup equals the source group: degenerate to phase 1.
		hs.Phase1 = true
		tg = t.RouterGroup(dstR)
	}
	port, vc, err := b.hop(r.ID, dstR, tg, hs.Phase1, hs.Seed)
	if err != nil {
		return &sim.UnroutableError{Src: hs.Src, Dst: hs.Dst, Router: r.ID}
	}
	hs.Port, hs.VC = port, vc
	return nil
}

// minimalHops returns H_m: the router-to-router channel count of the
// minimal path from rID to dstR using the packet's slot choice: the
// intra-group hops to the global channel, the global channel, and the
// intra-group hops inside the destination group.
func (b *base) minimalHops(rID, dstR int, seed uint64) int {
	if rID == dstR {
		return 0
	}
	t := b.topo
	gs, gd := t.RouterGroup(rID), t.RouterGroup(dstR)
	if gs == gd {
		return t.LocalHops(t.RouterIndex(rID), t.RouterIndex(dstR))
	}
	slot := b.chooseSlot(gs, gd, seed)
	if slot < 0 {
		return infeasibleHops // no surviving channel: never preferable
	}
	hops := t.LocalHops(t.RouterIndex(rID), t.SlotRouterIndex(slot)) + 1
	entry := t.GlobalEntryRouter(gs, gd, slot)
	return hops + t.LocalHops(t.RouterIndex(entry), t.RouterIndex(dstR))
}

// infeasibleHops is the hop count reported for a path with no surviving
// channel, large enough that the UGAL product rule never selects it.
const infeasibleHops = 1 << 20

// nonminimalHops returns H_nm: the channel count of the Valiant path
// through intermediate group gi, following the same deterministic slot
// choices NextHop will make.
func (b *base) nonminimalHops(rID, dstR, gi int, seed uint64) int {
	t := b.topo
	gs, gd := t.RouterGroup(rID), t.RouterGroup(dstR)
	if gi == gs {
		return b.minimalHops(rID, dstR, seed)
	}
	slot1 := b.chooseSlot(gs, gi, seed)
	if slot1 < 0 {
		return infeasibleHops
	}
	hops := t.LocalHops(t.RouterIndex(rID), t.SlotRouterIndex(slot1)) + 1
	rx := t.GlobalEntryRouter(gs, gi, slot1)
	if gi == gd {
		return hops + t.LocalHops(t.RouterIndex(rx), t.RouterIndex(dstR))
	}
	slot2 := b.chooseSlot(gi, gd, seed)
	if slot2 < 0 {
		return infeasibleHops
	}
	hops += t.LocalHops(t.RouterIndex(rx), t.SlotRouterIndex(slot2)) + 1
	entry := t.GlobalEntryRouter(gi, gd, slot2)
	return hops + t.LocalHops(t.RouterIndex(entry), t.RouterIndex(dstR))
}

// pickInterGroup draws the Valiant intermediate group for a packet,
// uniform over all groups except the source group (a candidate equal to
// the source group carries no load-balancing value). On a single-group
// topology there is no other group to draw, so it returns gs itself —
// callers treat that as "route minimally" — instead of dividing by zero.
func (b *base) pickInterGroup(gs int, seed uint64) int {
	g := b.topo.Groups()
	if g <= 1 {
		return gs
	}
	gi := int(sim.Mix(seed^0xd1b54a32d192ed03) % uint64(g-1))
	if gi >= gs {
		gi++
	}
	return gi
}

// liveInter reports whether gi is a usable Valiant intermediate group
// for traffic from gs to gd under the fault plan: distinct from the
// source, reachable from it over a surviving global channel, and with a
// surviving onward channel to the destination group (trivially true
// when gi is the destination group itself).
func (b *base) liveInter(gs, gd, gi int) bool {
	return gi != gs && b.deg.LiveChannels(gs, gi) > 0 &&
		(gi == gd || b.deg.LiveChannels(gi, gd) > 0)
}

// pickLiveInterGroup draws the Valiant intermediate group uniformly
// among the groups still usable under the fault plan, deterministically
// per packet. It uses the same seed mixing as pickInterGroup and
// enumerates candidates in ascending group order, so with an empty
// fault plan the draw is bit-identical to pickInterGroup. ok is false
// when no usable intermediate group exists (single-group machine, or
// the faults severed them all).
func (b *base) pickLiveInterGroup(gs, gd int, seed uint64) (gi int, ok bool) {
	g := b.topo.Groups()
	count := 0
	for c := 0; c < g; c++ {
		if b.liveInter(gs, gd, c) {
			count++
		}
	}
	if count == 0 {
		return gs, false
	}
	want := int(sim.Mix(seed^0xd1b54a32d192ed03) % uint64(count))
	for c := 0; c < g; c++ {
		if !b.liveInter(gs, gd, c) {
			continue
		}
		if want == 0 {
			return c, true
		}
		want--
	}
	return gs, false // unreachable: count bounded want
}
