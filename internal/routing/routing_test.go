package routing

import (
	"testing"
	"testing/quick"

	"dragonfly/internal/sim"
	"dragonfly/internal/topology"
	"dragonfly/internal/traffic"
)

func testDF(t *testing.T) *topology.Dragonfly {
	t.Helper()
	d, err := topology.NewDragonfly(2, 4, 2, 0)
	if err != nil {
		t.Fatalf("NewDragonfly: %v", err)
	}
	return d
}

func testCfg() sim.Config {
	cfg := sim.DefaultConfig()
	cfg.VCs = VCs
	return cfg
}

// traceHops runs a network and records, for every delivered packet, the
// sequence constraints we care about via the OnEject hook plus a custom
// NextHop wrapper.
type hopRecorder struct {
	inner sim.Routing
	topo  *topology.Dragonfly
	// class overrides the port classifier (set for the DragonflyFB
	// variant; defaults to topo.PortClass).
	class func(port int) topology.Class
	bad   func(format string, args ...any)
	// lastVC tracks the last VC assigned per packet id, to check
	// monotonicity per hop class.
	lastVC map[uint64]vcState
}

type vcState struct {
	class topology.Class
	vc    int
}

func (h *hopRecorder) Name() string { return h.inner.Name() }

func (h *hopRecorder) Decide(net *sim.Network, r *sim.Router, hs *sim.HopState) error {
	return h.inner.Decide(net, r, hs)
}

// classLevel maps a (channel class, VC) pair to its position in the
// acyclic channel ordering of Figure 7:
// (l,0) < (g,0) < (l,1) < (g,1) < (l,2).
func classLevel(c topology.Class, vc int) int {
	if c == topology.ClassGlobal {
		return 2*vc + 1
	}
	return 2 * vc
}

func (h *hopRecorder) NextHop(net *sim.Network, r *sim.Router, hs *sim.HopState) error {
	if err := h.inner.NextHop(net, r, hs); err != nil {
		return err
	}
	classify := h.class
	if classify == nil {
		classify = h.topo.PortClass
	}
	cls := classify(hs.Port)
	if cls == topology.ClassTerminal {
		delete(h.lastVC, hs.ID)
		return nil
	}
	cur := vcState{class: cls, vc: hs.VC}
	if prev, ok := h.lastVC[hs.ID]; ok {
		lc, lp := classLevel(cur.class, cur.vc), classLevel(prev.class, prev.vc)
		// Equal levels are legal only for consecutive local hops of one
		// group visit (dimension-order routing inside a flattened-
		// butterfly group is acyclic within a VC class).
		sameLocal := lc == lp && cur.class == topology.ClassLocal && prev.class == topology.ClassLocal
		if lc < lp || (lc == lp && !sameLocal) {
			h.bad("packet %d: VC level not increasing: (%v,%d) -> (%v,%d)",
				hs.ID, prev.class, prev.vc, cur.class, cur.vc)
		}
	}
	h.lastVC[hs.ID] = cur
	return nil
}

func TestVCLevelsMonotone(t *testing.T) {
	// The deadlock-freedom argument needs the (class, VC) level to
	// strictly increase along every path. Exercise every algorithm on
	// both traffic patterns and verify each assigned hop.
	d := testDF(t)
	for _, mk := range []func() sim.Routing{
		func() sim.Routing { return NewMIN(d) },
		func() sim.Routing { return NewVAL(d) },
		func() sim.Routing { return NewUGAL(d, UGALLocal) },
		func() sim.Routing { return NewUGAL(d, UGALGlobal) },
		func() sim.Routing { return NewUGAL(d, UGALLocalVC) },
		func() sim.Routing { return NewUGAL(d, UGALLocalVCH) },
		func() sim.Routing { return NewUGALCR(d) },
	} {
		inner := mk()
		rec := &hopRecorder{inner: inner, topo: d, bad: t.Errorf, lastVC: map[uint64]vcState{}}
		net, err := sim.New(d, testCfg(), rec, traffic.NewWorstCase(d))
		if err != nil {
			t.Fatalf("sim.New: %v", err)
		}
		net.SetLoad(0.3)
		for i := 0; i < 1500; i++ {
			net.Step()
		}
		net2, err := sim.New(d, testCfg(), &hopRecorder{inner: mk(), topo: d, bad: t.Errorf, lastVC: map[uint64]vcState{}}, traffic.NewUniformRandom(d.Nodes()))
		if err != nil {
			t.Fatalf("sim.New: %v", err)
		}
		net2.SetLoad(0.3)
		for i := 0; i < 1500; i++ {
			net2.Step()
		}
	}
}

func TestMINAlwaysMinimal(t *testing.T) {
	d := testDF(t)
	m := NewMIN(d)
	net, err := sim.New(d, testCfg(), m, traffic.NewUniformRandom(d.Nodes()))
	if err != nil {
		t.Fatalf("sim.New: %v", err)
	}
	checked := 0
	net.OnEject = func(p *sim.Packet, now int64) {
		checked++
		if !p.Minimal {
			t.Error("MIN produced a non-minimal packet")
		}
		if p.Hops() > 3 {
			t.Errorf("MIN packet took %d hops", p.Hops())
		}
	}
	net.SetLoad(0.2)
	for i := 0; i < 1000; i++ {
		net.Step()
	}
	if checked == 0 {
		t.Fatal("no packets delivered")
	}
}

func TestVALAlwaysNonminimalAcrossGroups(t *testing.T) {
	d := testDF(t)
	v := NewVAL(d)
	net, err := sim.New(d, testCfg(), v, traffic.NewWorstCase(d))
	if err != nil {
		t.Fatalf("sim.New: %v", err)
	}
	checked := 0
	net.OnEject = func(p *sim.Packet, now int64) {
		checked++
		if p.Minimal {
			t.Error("VAL produced a minimal packet for cross-group traffic")
		}
		if p.Hops() > 5 {
			t.Errorf("VAL packet took %d hops, want <= 5", p.Hops())
		}
	}
	net.SetLoad(0.2)
	for i := 0; i < 1000; i++ {
		net.Step()
	}
	if checked == 0 {
		t.Fatal("no packets delivered")
	}
}

func TestUGALModeNames(t *testing.T) {
	d := testDF(t)
	cases := map[string]sim.Routing{
		"MIN":        NewMIN(d),
		"VAL":        NewVAL(d),
		"UGAL-L":     NewUGAL(d, UGALLocal),
		"UGAL-G":     NewUGAL(d, UGALGlobal),
		"UGAL-L_VC":  NewUGAL(d, UGALLocalVC),
		"UGAL-L_VCH": NewUGAL(d, UGALLocalVCH),
		"UGAL-L_CR":  NewUGALCR(d),
	}
	for want, alg := range cases {
		if alg.Name() != want {
			t.Errorf("Name() = %q, want %q", alg.Name(), want)
		}
	}
	if !NewUGALCR(d).NeedsCreditDelay() {
		t.Error("UGAL-L_CR must request the credit-delay mechanism")
	}
	if NewUGAL(d, UGALLocalVCH).NeedsCreditDelay() {
		t.Error("UGAL-L_VCH must not request the credit-delay mechanism")
	}
}

func TestHopCountsMatchPaths(t *testing.T) {
	// minimalHops/nonminimalHops (the H_m, H_nm of the decision rule)
	// must equal the hops the packet actually takes when routed that way.
	d := testDF(t)
	base := &base{topo: d}
	f := func(srcRaw, dstRaw uint16, seed uint64) bool {
		src := int(srcRaw) % d.Nodes()
		dst := int(dstRaw) % d.Nodes()
		rs, rd := d.TerminalRouter(src), d.TerminalRouter(dst)
		hm := base.minimalHops(rs, rd, seed)
		if rs == rd {
			return hm == 0
		}
		// Walk the minimal path manually using hop().
		hops := 0
		cur := rs
		for cur != rd {
			port, _, err := base.hop(cur, rd, d.RouterGroup(rd), true, seed)
			if err != nil {
				return false
			}
			pt := d.Port(cur, port)
			if pt.Class == topology.ClassTerminal {
				return false
			}
			cur = pt.PeerRouter
			hops++
			if hops > 3 {
				return false
			}
		}
		return hops == hm
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestNonminimalHopsWithinBounds(t *testing.T) {
	d := testDF(t)
	b := &base{topo: d}
	f := func(srcRaw, dstRaw uint16, giRaw uint8, seed uint64) bool {
		src := int(srcRaw) % d.Routers()
		dst := int(dstRaw) % d.Routers()
		gi := int(giRaw) % d.G
		if src == dst {
			return true
		}
		h := b.nonminimalHops(src, dst, gi, seed)
		return h >= 1 && h <= 5
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestPickInterGroupExcludesSource(t *testing.T) {
	d := testDF(t)
	b := &base{topo: d}
	f := func(gsRaw uint8, seed uint64) bool {
		gs := int(gsRaw) % d.G
		gi := b.pickInterGroup(gs, seed)
		return gi != gs && gi >= 0 && gi < d.G
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

func TestPickInterGroupCoversAllGroups(t *testing.T) {
	d := testDF(t)
	b := &base{topo: d}
	seen := make(map[int]bool)
	for s := uint64(0); s < 2000; s++ {
		seen[b.pickInterGroup(0, sim.Mix(s))] = true
	}
	if len(seen) != d.G-1 {
		t.Errorf("intermediate groups covered: %d, want %d", len(seen), d.G-1)
	}
}

func TestChooseSlotDeterministicPerPacket(t *testing.T) {
	// Decide-time congestion queries must inspect the same slot NextHop
	// later uses, which requires determinism in (seed, group) alone.
	d, err := topology.NewDragonfly(2, 4, 2, 5) // multiple channels per pair
	if err != nil {
		t.Fatalf("NewDragonfly: %v", err)
	}
	b := &base{topo: d}
	for seed := uint64(0); seed < 200; seed++ {
		a := b.chooseSlot(1, 3, seed)
		if b.chooseSlot(1, 3, seed) != a {
			t.Fatal("chooseSlot not deterministic")
		}
		if d.SlotTarget(1, a) != 3 {
			t.Fatalf("chooseSlot returned slot %d not leading to group 3", a)
		}
	}
}

func TestChooseSlotSpreadsOverParallelChannels(t *testing.T) {
	d, err := topology.NewDragonfly(2, 4, 2, 3) // ah=8 slots over 2 peers: 4 channels per pair
	if err != nil {
		t.Fatalf("NewDragonfly: %v", err)
	}
	b := &base{topo: d}
	n := d.ChannelsBetween(0, 1)
	if n < 2 {
		t.Fatalf("expected parallel channels, got %d", n)
	}
	counts := map[int]int{}
	for s := uint64(0); s < 4000; s++ {
		counts[b.chooseSlot(0, 1, sim.Mix(s))]++
	}
	if len(counts) != n {
		t.Errorf("slot choice covered %d of %d parallel channels", len(counts), n)
	}
	for slot, c := range counts {
		if c < 4000/n/2 {
			t.Errorf("slot %d underused: %d of 4000", slot, c)
		}
	}
}
