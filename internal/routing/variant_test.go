package routing

import (
	"testing"

	"dragonfly/internal/sim"
	"dragonfly/internal/topology"
	"dragonfly/internal/traffic"
)

// The Figure 6(b) variant — flattened-butterfly intra-group networks —
// must work end-to-end with every routing algorithm through the same
// Topo interface.

func fbTopo(t *testing.T) *topology.DragonflyFB {
	t.Helper()
	d, err := topology.NewDragonflyFB(2, []int{2, 2, 2}, 2, 0)
	if err != nil {
		t.Fatalf("NewDragonflyFB: %v", err)
	}
	return d
}

func TestDragonflyFBEndToEnd(t *testing.T) {
	d := fbTopo(t)
	for _, mk := range []func() sim.Routing{
		func() sim.Routing { return NewMIN(d) },
		func() sim.Routing { return NewVAL(d) },
		func() sim.Routing { return NewUGAL(d, UGALLocal) },
		func() sim.Routing { return NewUGAL(d, UGALGlobal) },
		func() sim.Routing { return NewUGAL(d, UGALLocalVCH) },
		func() sim.Routing { return NewUGALCR(d) },
	} {
		alg := mk()
		cfg := testCfg()
		if u, ok := alg.(*UGAL); ok && u.NeedsCreditDelay() {
			cfg.DelayCredits = true
		}
		net, err := sim.New(d, cfg, alg, traffic.NewUniformRandom(d.Nodes()))
		if err != nil {
			t.Fatalf("%s: sim.New: %v", alg.Name(), err)
		}
		res, err := sim.Run(net, sim.RunConfig{Load: 0.15, WarmupCycles: 400, MeasureCycles: 400, DrainCycles: 15000, StallLimit: 5000})
		if err != nil {
			t.Fatalf("%s: Run: %v", alg.Name(), err)
		}
		if res.Latency.Count() == 0 {
			t.Errorf("%s: no packets delivered on FB-group dragonfly", alg.Name())
		}
		if res.DrainTimeout {
			t.Errorf("%s: drain timeout at light load", alg.Name())
		}
	}
}

func TestDragonflyFBHopBound(t *testing.T) {
	// Minimal routing on the 2x2x2-group variant: at most
	// 3 (dims) + 1 (global) + 3 (dims) = 7 channels.
	d := fbTopo(t)
	net, err := sim.New(d, testCfg(), NewMIN(d), traffic.NewUniformRandom(d.Nodes()))
	if err != nil {
		t.Fatalf("sim.New: %v", err)
	}
	worst := 0
	net.OnEject = func(p *sim.Packet, now int64) {
		if p.Hops() > worst {
			worst = p.Hops()
		}
	}
	net.SetLoad(0.2)
	for i := 0; i < 1500; i++ {
		net.Step()
	}
	if worst == 0 {
		t.Fatal("no packets delivered")
	}
	if worst > 7 {
		t.Errorf("minimal packet took %d hops, want <= 7", worst)
	}
}

func TestDragonflyFBWorstCaseAdaptivity(t *testing.T) {
	// The WC pattern generalises: UGAL must beat MIN's single-channel
	// bottleneck on the variant too.
	d := fbTopo(t)
	run := func(alg sim.Routing) float64 {
		net, err := sim.New(d, testCfg(), alg, traffic.NewWorstCase(d))
		if err != nil {
			t.Fatalf("sim.New: %v", err)
		}
		res, err := sim.Run(net, sim.RunConfig{Load: 0.25, WarmupCycles: 800, MeasureCycles: 800, DrainCycles: 4000, StallLimit: 5000})
		if err != nil {
			t.Fatalf("%s: Run: %v", alg.Name(), err)
		}
		return res.Accepted
	}
	minAcc := run(NewMIN(d))
	ugalAcc := run(NewUGAL(d, UGALLocalVCH))
	if ugalAcc < 2*minAcc {
		t.Errorf("UGAL-L_VCH accepted %.3f vs MIN %.3f on WC; want at least 2x", ugalAcc, minAcc)
	}
}

func TestDragonflyFBVCLevelsMonotone(t *testing.T) {
	// The deadlock-freedom ladder must hold on the variant: dimension-
	// order local hops stay within one VC class per group visit.
	d := fbTopo(t)
	rec := &hopRecorder{inner: NewUGAL(d, UGALLocalVCH), topo: nil, bad: t.Errorf, lastVC: map[uint64]vcState{}}
	rec.class = d.PortClass
	net, err := sim.New(d, testCfg(), rec, traffic.NewWorstCase(d))
	if err != nil {
		t.Fatalf("sim.New: %v", err)
	}
	net.SetLoad(0.3)
	for i := 0; i < 1200; i++ {
		net.Step()
	}
}
