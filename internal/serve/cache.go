package serve

import (
	"container/list"
	"sync"
)

// cache is the LRU result cache keyed by the canonical job hash. A hit
// returns the exact bytes of the original report — the simulator is
// deterministic and the hash covers every result-affecting parameter,
// so serving the stored bytes IS re-running the job, bit for bit.
type cache struct {
	mu   sync.Mutex
	cap  int
	lru  *list.List // front = most recent; values are *cacheEntry
	byID map[string]*list.Element

	hits, misses, evictions int64
}

type cacheEntry struct {
	hash   string
	report []byte
}

// newCache builds a cache holding up to capacity reports; capacity <= 0
// disables caching (every get misses, every put is dropped).
func newCache(capacity int) *cache {
	return &cache{cap: capacity, lru: list.New(), byID: make(map[string]*list.Element)}
}

func (c *cache) get(hash string) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.byID[hash]
	if !ok {
		c.misses++
		return nil, false
	}
	c.hits++
	c.lru.MoveToFront(el)
	return el.Value.(*cacheEntry).report, true
}

func (c *cache) put(hash string, report []byte) {
	if c.cap <= 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.byID[hash]; ok {
		// Deterministic engine: a duplicate put carries identical bytes.
		// Keep the original and just refresh recency.
		c.lru.MoveToFront(el)
		return
	}
	c.byID[hash] = c.lru.PushFront(&cacheEntry{hash: hash, report: report})
	for c.lru.Len() > c.cap {
		oldest := c.lru.Back()
		c.lru.Remove(oldest)
		delete(c.byID, oldest.Value.(*cacheEntry).hash)
		c.evictions++
	}
}

// counters returns (entries, hits, misses, evictions) for the stats
// endpoint.
func (c *cache) counters() (int, int64, int64, int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lru.Len(), c.hits, c.misses, c.evictions
}
