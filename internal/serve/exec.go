package serve

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"runtime/debug"
	"time"

	"dragonfly/internal/core"
	"dragonfly/internal/fault"
	"dragonfly/internal/obs"
	"dragonfly/internal/sim"
	"dragonfly/internal/workload"
)

// worker pulls jobs off the queue until the server quits. Jobs already
// settled by a queued-state cancellation come off the queue terminal;
// begin rejects them and the worker moves on.
func (s *Server) worker() {
	defer s.workerWG.Done()
	for {
		select {
		case <-s.quit:
			return
		case job := <-s.queue:
			s.runJob(job)
		}
	}
}

// runJob executes one job with the full hardening contract: a timeout
// context (the server default, shortened by the submission's
// timeout_ms), panic isolation (a crashing job becomes a structured
// failure; the worker and server survive), and error classification
// into the job's terminal states.
func (s *Server) runJob(job *Job) {
	timeout := s.cfg.JobTimeout
	if ms := job.Spec.TimeoutMS; ms > 0 {
		if d := time.Duration(ms) * time.Millisecond; timeout <= 0 || d < timeout {
			timeout = d
		}
	}
	var ctx context.Context
	var cancel context.CancelFunc
	if timeout > 0 {
		ctx, cancel = context.WithTimeout(s.baseCtx, timeout)
	} else {
		ctx, cancel = context.WithCancel(s.baseCtx)
	}
	defer cancel()

	if !job.begin(cancel) {
		return // canceled while queued; already terminal and accounted
	}
	s.journalRunning(job)

	report, panicked, err := s.executeIsolated(ctx, job)
	switch {
	case panicked:
		job.finishFailed("panic", err.Error(), 0, 0)
	case err == nil:
		s.cache.put(job.Hash, report)
		job.finishDone(report, false)
	default:
		var ce *sim.CanceledError
		cycle, inFlight := int64(0), 0
		if errors.As(err, &ce) {
			cycle, inFlight = ce.Cycle, ce.InFlight
		}
		switch {
		case errors.Is(err, context.DeadlineExceeded):
			job.finishFailed("timeout",
				fmt.Sprintf("job exceeded its %v timeout: %v", timeout, err), cycle, inFlight)
		case errors.Is(err, context.Canceled):
			job.finishCanceled(err.Error(), cycle, inFlight)
		case errors.Is(err, sim.ErrBadSnapshot) && job.dropResume():
			// The recovery checkpoint was unusable (corrupt body, or a
			// machine drift the fingerprint caught). Transient by
			// definition: the job itself is fine — retry from scratch.
			s.retryJob(job, fmt.Sprintf("recovery checkpoint unusable (%v)", err))
		default:
			job.finishFailed("error", err.Error(), cycle, inFlight)
		}
	}
}

// executeIsolated runs execute under a recover barrier. A panic
// anywhere in the simulation stack is converted into an error carrying
// the stack trace, so one poisoned job can never take down the worker
// (which would strand the queue) or the process.
func (s *Server) executeIsolated(ctx context.Context, job *Job) (report []byte, panicked bool, err error) {
	defer func() {
		if r := recover(); r != nil {
			panicked = true
			err = fmt.Errorf("job panicked: %v\n%s", r, debug.Stack())
		}
	}()
	if s.testHook != nil {
		s.testHook(job)
	}
	report, err = s.execute(ctx, job)
	return report, false, err
}

// execute builds the simulation from the job's canonical spec and runs
// it, returning the marshaled versioned report. The spec was validated
// at submission, so errors here are simulation outcomes (stall,
// cancellation, timeout), not misconfiguration.
func (s *Server) execute(ctx context.Context, job *Job) ([]byte, error) {
	spec := job.Spec
	sys, err := core.NewSystem(core.SystemConfig{
		Topology: spec.Family, TopoParams: spec.Params,
		BufDepth: spec.BufDepth, Seed: spec.Seed, Shards: spec.Shards,
	})
	if err != nil {
		return nil, err
	}
	if spec.Timeline != "" {
		tl, err := fault.ParseTimeline(spec.Timeline, spec.FailSeed)
		if err != nil {
			return nil, err
		}
		sched, err := tl.Compile(sys.Topo)
		if err != nil {
			return nil, err
		}
		if sys, err = sys.WithTimeline(sched); err != nil {
			return nil, err
		}
	}
	alg, err := core.ParseAlgorithm(spec.Algorithm)
	if err != nil {
		return nil, err
	}
	wl, err := specWorkload(spec, sys.Topo.Nodes())
	if err != nil {
		return nil, err
	}
	rc := sim.RunConfig{
		WarmupCycles:  spec.Warmup,
		MeasureCycles: spec.Measure,
		DrainCycles:   spec.Drain,
	}

	rep := obs.NewReport(spec.Kind)
	rep.Topology = fmt.Sprintf("%v", sys.Topo)
	rep.Algorithm = spec.Algorithm
	rep.Pattern = spec.Pattern
	rep.Seed = spec.Seed

	switch spec.Kind {
	case KindRun:
		opts := []core.RunOption{core.WithContext(ctx)}
		if s.store != nil && spec.Window == 0 {
			// Durable server: checkpoint the engine periodically so a
			// crash resumes this job instead of restarting it. Windowed
			// runs are excluded — the live collector is not part of a
			// snapshot — and recover from scratch instead.
			id, hash := job.ID, job.Hash
			opts = append(opts, core.WithCheckpoint(s.cfg.CheckpointEvery, func(snap []byte) error {
				if err := s.store.writeCheckpoint(id, hash, snap); err != nil && !errors.Is(err, errStoreClosed) {
					s.cfg.Logf("serve: job %s: write checkpoint: %v", id, err)
				}
				// Checkpointing is best-effort acceleration: a failed write
				// must not fail the run, it only means recovery starts
				// further back.
				return nil
			}))
		}
		if snap := job.resumeSnapshot(); snap != nil {
			opts = append(opts, core.WithResume(snap))
		}
		var win *liveWindows
		if spec.Window > 0 {
			probe, err := sys.NewNetworkFor(alg, wl)
			if err != nil {
				return nil, err
			}
			win = &liveWindows{
				Windows: obs.NewWindows(obs.WindowsConfig{
					Width:       spec.Window,
					Terminals:   sys.Topo.Nodes(),
					LinkClasses: obs.LinkClasses(probe),
				}),
				job: job,
			}
			opts = append(opts, core.WithCollector(win))
		}
		// The run itself is leaf work: it claims a slot on the shared
		// simulation pool so the server's workers and any co-resident
		// sweeps respect one machine-wide concurrency limit. The slot
		// wait aborts with the job's context.
		var res sim.Result
		var runErr error
		if err := s.pool.WorkCtx(ctx, func() {
			res, runErr = sys.RunW(alg, wl, spec.Loads[0], rc, opts...)
		}); err != nil {
			return nil, fmt.Errorf("serve: canceled waiting for a simulation slot: %w", err)
		}
		if runErr != nil {
			return nil, runErr
		}
		rep.Points = []obs.Point{{Load: spec.Loads[0], Result: obs.MakeResult(res)}}
		if win != nil {
			rep.Windows = win.Windows.Windows()
		}

	case KindSweep:
		// SweepPool is a coordinator — it wraps its own leaf work in
		// pool.Work — so it must not itself run under a pool slot.
		// Completed points stream out as "point" events in load order.
		pts, err := sys.SweepPoolW(s.pool, alg, wl, spec.Loads, rc, 2,
			core.WithContext(ctx),
			core.WithProgress(func(ev core.ProgressEvent) {
				job.publish(Event{Type: "point", Data: obs.Point{Load: ev.Load, Result: obs.MakeResult(ev.Result)}})
			}))
		if err != nil {
			return nil, err
		}
		for _, p := range pts {
			rep.Points = append(rep.Points, obs.Point{Load: p.Load, Result: obs.MakeResult(p.Result)})
		}
	}

	var buf bytes.Buffer
	if err := rep.Write(&buf); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// specWorkload rebuilds the run's Workload from a canonical JobSpec.
// Specs journaled before the workload redesign carry only the legacy
// Pattern spelling (empty Traffic); they map through core.PatternWorkload
// exactly as Normalize would have mapped them.
func specWorkload(spec JobSpec, terminals int) (core.Workload, error) {
	if spec.Traffic == "" {
		pat, err := core.ParsePattern(spec.Pattern)
		if err != nil {
			return core.Workload{}, err
		}
		return core.PatternWorkload(pat), nil
	}
	wl := core.Workload{
		Traffic:       spec.Traffic,
		TrafficParams: spec.TrafficParams,
		Source:        spec.Source,
		SourceParams:  spec.SourceParams,
	}
	if spec.Source == "trace" {
		tr, err := workload.ParseTrace([]byte(spec.Trace), terminals)
		if err != nil {
			return core.Workload{}, fmt.Errorf("serve: journaled trace no longer parses: %w", err)
		}
		wl.Trace = tr
	}
	return wl, nil
}

// liveWindows wraps obs.Windows to stream each window to the job's SSE
// feed the moment it closes, instead of only embedding the series in
// the final report. The embedded collector does all the accumulation;
// the wrapper intercepts the two events that close windows (the cycle
// boundary and the finish flush) and publishes whatever newly appeared.
type liveWindows struct {
	*obs.Windows
	job  *Job
	sent int
}

// CycleEnd implements metrics.CycleObserver: close windows as usual,
// then stream any window that just closed.
func (l *liveWindows) CycleEnd(cycle int64) {
	l.Windows.CycleEnd(cycle)
	l.publishNew()
}

// Flush closes the trailing partial window (called by core on run
// finish) and streams it.
func (l *liveWindows) Flush(cycle int64) {
	l.Windows.Flush(cycle)
	l.publishNew()
}

func (l *liveWindows) publishNew() {
	wins := l.Windows.Windows()
	for ; l.sent < len(wins); l.sent++ {
		l.job.publish(Event{Type: "window", Data: wins[l.sent]})
	}
}
