package serve

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"math"
	"sort"
)

// jobHashVersion is the first line fed to the digest. Bump it whenever
// the canonical encoding below changes meaning — a version bump
// invalidates every cached result, which is exactly right when the
// encoding (and therefore the equality relation) moves.
//
// The durable formats follow the same compatibility policy, each behind
// its own magic: engine snapshots ("dfly-snap/1", internal/sim),
// checkpoint framing ("dfly-ckpt/1", store.go) and the journal record
// version (journalVersion). Any encoding change bumps the corresponding
// version, and an old artifact is then *refused* with a typed error —
// snapshots and checkpoints are simply recomputed (a refused checkpoint
// re-runs the job from scratch), and mismatched journal lines are
// quarantined on replay. Nothing ever attempts to read an
// other-versioned encoding.
const jobHashVersion = "dfly-job/3"

// Hash returns the canonical job digest: a hex SHA-256 over a
// line-oriented rendering of every result-affecting field, in a fixed
// order, with floats encoded by their IEEE-754 bit patterns (the cache
// promises bit-identical results, so the key must distinguish loads
// that differ in the last ulp).
//
// Two submissions hash equally iff they describe the same computation:
// field order in the JSON body, spelled-out defaults, and the engine
// shard count (bit-identical by contract) all cancel out. The digest is
// stable across processes and platforms — there is no map iteration,
// pointer value or host-order dependency in the encoding — so a cache
// can be warmed by one server build and consulted by another.
func (s JobSpec) Hash() string {
	h := sha256.New()
	fmt.Fprintf(h, "%s\n", jobHashVersion)
	fmt.Fprintf(h, "kind=%s\n", s.Kind)
	fmt.Fprintf(h, "topology=%s\n", s.Family)
	for _, k := range sortedKeys(s.Params) {
		fmt.Fprintf(h, "param.%s=%d\n", k, s.Params[k])
	}
	fmt.Fprintf(h, "buf=%d\n", s.BufDepth)
	fmt.Fprintf(h, "seed=%d\n", s.Seed)
	fmt.Fprintf(h, "alg=%s\n", s.Algorithm)
	// The traffic and workload halves hash by their canonical family +
	// fully-defaulted params (dfly-job/3); the legacy pattern enum
	// canonicalised into them at Normalize, and a trace enters by its
	// content digest, so reformatted traces (comments, spacing) share a
	// cache entry.
	fmt.Fprintf(h, "traffic=%s\n", s.Traffic)
	for _, k := range sortedKeys(s.TrafficParams) {
		fmt.Fprintf(h, "tparam.%s=%d\n", k, s.TrafficParams[k])
	}
	fmt.Fprintf(h, "source=%s\n", s.Source)
	for _, k := range sortedKeys(s.SourceParams) {
		fmt.Fprintf(h, "sparam.%s=%d\n", k, s.SourceParams[k])
	}
	fmt.Fprintf(h, "trace=%016x\n", s.TraceHash)
	for _, l := range s.Loads {
		fmt.Fprintf(h, "load=%016x\n", math.Float64bits(l))
	}
	fmt.Fprintf(h, "warmup=%d\nmeasure=%d\ndrain=%d\n", s.Warmup, s.Measure, s.Drain)
	fmt.Fprintf(h, "timeline=%q\nfailseed=%d\n", s.Timeline, s.FailSeed)
	fmt.Fprintf(h, "window=%d\n", s.Window)
	return hex.EncodeToString(h.Sum(nil))
}

// sortedKeys returns a parameter map's keys in sorted order, so the
// encoding never depends on map iteration.
func sortedKeys(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
