package serve

import (
	"testing"
)

// baseSubmission returns a fully spelled-out valid submission the hash
// tests mutate one field at a time.
func baseSubmission() Submission {
	return Submission{
		Kind:      KindRun,
		Topology:  TopologySpec{P: 2, A: 4, H: 2, BufDepth: 16},
		Algorithm: "UGAL-L_VCH",
		Pattern:   "WC",
		Seed:      7,
		Load:      0.25,
		Run:       RunSpec{Warmup: 200, Measure: 200, Drain: 2000},
	}
}

func mustHash(t *testing.T, sub Submission) string {
	t.Helper()
	spec, err := sub.Normalize(Limits{})
	if err != nil {
		t.Fatalf("Normalize(%+v): %v", sub, err)
	}
	return spec.Hash()
}

// TestHashDefaultsCancelOut pins the canonicalisation property: a
// submission that spells out every default hashes identically to one
// that omits them all, so the cache never runs the same machine twice
// because two clients phrased it differently.
func TestHashDefaultsCancelOut(t *testing.T) {
	terse := Submission{Kind: KindRun, Algorithm: "MIN", Pattern: "UR", Load: 0.1}
	spelled := Submission{
		Kind:      KindRun,
		Topology:  TopologySpec{P: 4, A: 8, H: 4, BufDepth: 16},
		Algorithm: "MIN",
		Pattern:   "UR",
		Seed:      1,
		Load:      0.1,
		Run:       RunSpec{Warmup: 3000, Measure: 2000, Drain: 30000},
		FailSeed:  1,
	}
	if a, b := mustHash(t, terse), mustHash(t, spelled); a != b {
		t.Errorf("defaulted submission hashes %s, spelled-out %s: want equal", a, b)
	}
}

// TestHashSpellingsCancelOut pins the stronger canonicalisation
// property of dfly-job/2: the legacy p/a/h shorthand and the registry
// family+params spelling of the same machine share one hash (and
// therefore one cache entry), including when the family spelling leans
// on schema defaults.
func TestHashSpellingsCancelOut(t *testing.T) {
	legacy := Submission{Kind: KindRun, Algorithm: "MIN", Pattern: "UR", Load: 0.1,
		Topology: TopologySpec{P: 2, A: 4, H: 2}}
	family := Submission{Kind: KindRun, Algorithm: "MIN", Pattern: "UR", Load: 0.1,
		Topology: TopologySpec{Family: "dragonfly", Params: map[string]int{"p": 2, "a": 4, "h": 2}}}
	if a, b := mustHash(t, legacy), mustHash(t, family); a != b {
		t.Errorf("legacy spelling hashes %s, family spelling %s: want equal", a, b)
	}
	// Schema defaults cancel too: the default dragonfly by any name.
	terse := Submission{Kind: KindRun, Algorithm: "MIN", Pattern: "UR", Load: 0.1}
	fam := Submission{Kind: KindRun, Algorithm: "MIN", Pattern: "UR", Load: 0.1,
		Topology: TopologySpec{Family: "dragonfly"}}
	if a, b := mustHash(t, terse), mustHash(t, fam); a != b {
		t.Errorf("default dragonfly hashes %s by shorthand, %s by family: want equal", a, b)
	}
}

// TestHashFamiliesDistinct: different families with overlapping
// parameter values must not collide.
func TestHashFamiliesDistinct(t *testing.T) {
	seen := map[string]string{}
	for _, topo := range []TopologySpec{
		{Family: "dragonfly", Params: map[string]int{"p": 2, "a": 4, "h": 2}},
		{Family: "dragonflyplus", Params: map[string]int{"p": 2, "leaves": 4, "spines": 4, "h": 2}},
		{Family: "swapped", Params: map[string]int{"p": 2, "k": 4}},
		{Family: "aries", Params: map[string]int{"p": 1, "blades": 4, "chassis": 2, "bundle": 2, "h": 2, "g": 4}},
	} {
		h := mustHash(t, Submission{Kind: KindRun, Algorithm: "MIN", Pattern: "UR", Load: 0.1, Topology: topo})
		if prev, dup := seen[h]; dup {
			t.Errorf("families %s and %s share hash %s", prev, topo.Family, h)
		}
		seen[h] = topo.Family
	}
}

// TestNormalizeTopologyRejections: the family spelling is validated as
// deeply as the legacy one.
func TestNormalizeTopologyRejections(t *testing.T) {
	for name, topo := range map[string]TopologySpec{
		"unknown family":  {Family: "hypercube"},
		"unknown param":   {Family: "swapped", Params: map[string]int{"p": 2, "q": 4}},
		"mixed spellings": {Family: "swapped", P: 2},
		"params w/o family": {Params: map[string]int{"p": 2}},
		"invalid build":   {Family: "swapped", Params: map[string]int{"p": 2, "k": 4, "m": 9}},
	} {
		sub := Submission{Kind: KindRun, Algorithm: "MIN", Pattern: "UR", Load: 0.1, Topology: topo}
		if _, err := sub.Normalize(Limits{}); err == nil {
			t.Errorf("%s: Normalize accepted %+v", name, topo)
		}
	}
}

// TestHashGolden pins the exact digest of a fixed submission. A change
// here means the canonical encoding moved: every cached result in every
// deployment is invalidated, so the change must be deliberate and come
// with a jobHashVersion bump.
func TestHashGolden(t *testing.T) {
	const want = "93ff8682c363f2e67fa715fd9923809556df5b63b1185c60dec04f279d1d147e"
	got := mustHash(t, Submission{Kind: KindRun, Algorithm: "MIN", Pattern: "UR", Load: 0.1})
	if got != want {
		t.Errorf("golden job hash moved:\n got %s\nwant %s\n(bump jobHashVersion if the encoding changed deliberately)", got, want)
	}
}

// TestHashFieldSensitivity proves every semantic field reaches the
// digest: mutating any one of them alone must change the hash, or the
// cache would serve a result computed for a different machine.
func TestHashFieldSensitivity(t *testing.T) {
	base := mustHash(t, baseSubmission())
	mutations := map[string]func(*Submission){
		"kind":      func(s *Submission) { s.Kind = KindSweep; s.Load = 0; s.Loads = []float64{0.25} },
		"p":         func(s *Submission) { s.Topology.P = 3 },
		"a":         func(s *Submission) { s.Topology.A = 6 },
		"h":         func(s *Submission) { s.Topology.H = 3 },
		"groups":    func(s *Submission) { s.Topology.Groups = 5 },
		"buf_depth": func(s *Submission) { s.Topology.BufDepth = 8 },
		"seed":      func(s *Submission) { s.Seed = 8 },
		"algorithm": func(s *Submission) { s.Algorithm = "MIN" },
		"pattern":   func(s *Submission) { s.Pattern = "UR" },
		"load":      func(s *Submission) { s.Load = 0.26 },
		"warmup":    func(s *Submission) { s.Run.Warmup = 201 },
		"measure":   func(s *Submission) { s.Run.Measure = 201 },
		"drain":     func(s *Submission) { s.Run.Drain = 2001 },
		"timeline":  func(s *Submission) { s.Timeline = "@100 fail global=0.1" },
		"fail_seed": func(s *Submission) { s.Timeline = "@100 fail global=0.1"; s.FailSeed = 2 },
		"window":    func(s *Submission) { s.Window = 100 },
		"traffic": func(s *Submission) {
			s.Pattern, s.Traffic = "", "hotspot"
		},
		"traffic_params": func(s *Submission) {
			s.Pattern, s.Traffic = "", "hotspot"
			s.TrafficParams = map[string]int{"hot": 2}
		},
		"workload": func(s *Submission) { s.Workload = "onoff" },
		"workload_params": func(s *Submission) {
			s.Workload = "onoff"
			s.WorkloadParams = map[string]int{"on": 50}
		},
		"trace": func(s *Submission) {
			s.Workload, s.Trace = "trace", "0 0 1 1\n"
		},
	}
	for field, mutate := range mutations {
		sub := baseSubmission()
		mutate(&sub)
		if got := mustHash(t, sub); got == base {
			t.Errorf("mutating %s did not change the job hash", field)
		}
	}
	// fail_seed must differ from the bare-timeline mutation too, not
	// just from base.
	tl := baseSubmission()
	tl.Timeline = "@100 fail global=0.1"
	seeded := baseSubmission()
	seeded.Timeline = "@100 fail global=0.1"
	seeded.FailSeed = 2
	if mustHash(t, tl) == mustHash(t, seeded) {
		t.Error("fail_seed does not reach the job hash")
	}
	// The parameterised mutations must differ from their bare-family
	// counterparts too, or the params never reached the digest.
	bare := baseSubmission()
	bare.Pattern, bare.Traffic = "", "hotspot"
	par := baseSubmission()
	par.Pattern, par.Traffic = "", "hotspot"
	par.TrafficParams = map[string]int{"hot": 2}
	if mustHash(t, bare) == mustHash(t, par) {
		t.Error("traffic_params do not reach the job hash")
	}
	bw := baseSubmission()
	bw.Workload = "onoff"
	pw := baseSubmission()
	pw.Workload = "onoff"
	pw.WorkloadParams = map[string]int{"on": 50}
	if mustHash(t, bw) == mustHash(t, pw) {
		t.Error("workload_params do not reach the job hash")
	}
	// A trace hashes by content: different flows, different hash.
	ta := baseSubmission()
	ta.Workload, ta.Trace = "trace", "0 0 1 1\n"
	tb := baseSubmission()
	tb.Workload, tb.Trace = "trace", "0 0 1 2\n"
	if mustHash(t, ta) == mustHash(t, tb) {
		t.Error("trace content does not reach the job hash")
	}
}

// TestHashWorkloadSpellingsCancelOut pins the dfly-job/3
// canonicalisation: the legacy pattern enum and the registry family are
// one cache entry, an explicit bernoulli workload is the default
// spelled out, spelled-out schema defaults cancel, and a trace hashes
// by its canonical flow content — comments and whitespace cancel.
func TestHashWorkloadSpellingsCancelOut(t *testing.T) {
	base := mustHash(t, Submission{Kind: KindRun, Algorithm: "MIN", Pattern: "UR", Load: 0.1})
	for name, sub := range map[string]Submission{
		"registry ur":        {Kind: KindRun, Algorithm: "MIN", Traffic: "ur", Load: 0.1},
		"case-folded":        {Kind: KindRun, Algorithm: "MIN", Traffic: "UR", Load: 0.1},
		"explicit bernoulli": {Kind: KindRun, Algorithm: "MIN", Pattern: "UR", Workload: "bernoulli", Load: 0.1},
	} {
		if got := mustHash(t, sub); got != base {
			t.Errorf("%s hashes %s, legacy pattern %s: want one cache entry", name, got, base)
		}
	}
	// Spelled-out workload schema defaults cancel against the bare family.
	bare := Submission{Kind: KindRun, Algorithm: "MIN", Pattern: "UR", Workload: "onoff", Load: 0.1}
	spelled := Submission{Kind: KindRun, Algorithm: "MIN", Pattern: "UR", Workload: "onoff",
		WorkloadParams: map[string]int{"on": 100, "off": 300, "pareto": 0}, Load: 0.1}
	if a, b := mustHash(t, bare), mustHash(t, spelled); a != b {
		t.Errorf("defaulted onoff hashes %s, spelled-out %s: want equal", a, b)
	}
	// Trace reformatting cancels: same flows, different spelling.
	ta := Submission{Kind: KindRun, Algorithm: "MIN", Pattern: "UR", Workload: "trace",
		Trace: "0 0 1 1\n5 2 3 2\n", Load: 0.1}
	tb := Submission{Kind: KindRun, Algorithm: "MIN", Pattern: "UR", Workload: "trace",
		Trace: "# same flows\n0   0 1 1\n\n5\t2 3 2 # comment\n", Load: 0.1}
	if a, b := mustHash(t, ta), mustHash(t, tb); a != b {
		t.Errorf("reformatted trace hashes %s vs %s: want equal (content digest)", a, b)
	}
}

// TestNormalizeWorkloadRejections: the workload stanza is validated as
// deeply as the topology one.
func TestNormalizeWorkloadRejections(t *testing.T) {
	for name, mutate := range map[string]func(*Submission){
		"pattern and traffic":      func(s *Submission) { s.Traffic = "ur" },
		"unknown traffic":          func(s *Submission) { s.Pattern, s.Traffic = "", "chaos" },
		"unknown traffic param":    func(s *Submission) { s.Pattern, s.Traffic = "", "hotspot"; s.TrafficParams = map[string]int{"heat": 3} },
		"bad traffic param":        func(s *Submission) { s.Pattern, s.Traffic = "", "hotspot"; s.TrafficParams = map[string]int{"pct": 200} },
		"traffic params w/o fam":   func(s *Submission) { s.TrafficParams = map[string]int{"hot": 1} },
		"unknown workload":         func(s *Submission) { s.Workload = "burst" },
		"unknown workload param":   func(s *Submission) { s.Workload = "onoff"; s.WorkloadParams = map[string]int{"dwell": 5} },
		"bad workload param":       func(s *Submission) { s.Workload = "onoff"; s.WorkloadParams = map[string]int{"on": -1} },
		"workload params w/o fam":  func(s *Submission) { s.WorkloadParams = map[string]int{"on": 50} },
		"trace w/o trace workload": func(s *Submission) { s.Trace = "0 0 1 1\n" },
		"trace w/ other workload":  func(s *Submission) { s.Workload = "onoff"; s.Trace = "0 0 1 1\n" },
		"trace workload w/o trace": func(s *Submission) { s.Workload = "trace" },
		"malformed trace":          func(s *Submission) { s.Workload = "trace"; s.Trace = "0 0 1\n" },
	} {
		sub := baseSubmission()
		mutate(&sub)
		if _, err := sub.Normalize(Limits{}); err == nil {
			t.Errorf("%s: Normalize accepted %+v", name, sub)
		}
	}
	// And the trace size limit bites.
	sub := baseSubmission()
	sub.Workload, sub.Trace = "trace", "0 0 1 1\n"
	if _, err := sub.Normalize(Limits{MaxTraceBytes: 4}); err == nil {
		t.Error("MaxTraceBytes did not reject an oversized trace")
	}
}

// TestHashExecutionKnobsUnhashed pins the other direction: shards (the
// engine is bit-identical for every count) and timeout_ms (an execution
// bound) must NOT change the hash — a cached result answers them all.
func TestHashExecutionKnobsUnhashed(t *testing.T) {
	base := mustHash(t, baseSubmission())
	sharded := baseSubmission()
	sharded.Shards = 4
	if got := mustHash(t, sharded); got != base {
		t.Errorf("shards changed the job hash (%s vs %s): a cached result would be recomputed per shard count", got, base)
	}
	timed := baseSubmission()
	timed.TimeoutMS = 5000
	if got := mustHash(t, timed); got != base {
		t.Errorf("timeout_ms changed the job hash (%s vs %s)", got, base)
	}
}

// TestHashLoadBitSensitivity: loads hash by IEEE-754 bit pattern, so
// two loads differing in the last ulp get distinct cache entries.
func TestHashLoadBitSensitivity(t *testing.T) {
	a := baseSubmission()
	b := baseSubmission()
	b.Load = a.Load + 1e-16
	if b.Load == a.Load {
		t.Skip("increment vanished; pick a bigger ulp")
	}
	if mustHash(t, a) == mustHash(t, b) {
		t.Error("loads differing in the last ulp share a hash")
	}
}
