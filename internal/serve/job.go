package serve

import (
	"context"
	"sync"
	"time"
)

// State is a job's position in its lifecycle. The machine is strictly
// forward:
//
//	queued ──▶ running ──▶ done
//	   │          ├──────▶ failed   (error, panic, timeout)
//	   └──────────┴──────▶ canceled (client DELETE, server drain)
//
// plus the submission-time shortcut queued-with-cached-result ──▶ done.
// Terminal states (done, failed, canceled) are final: the job's report
// or error never changes afterwards, its SSE subscribers are closed,
// and the server's drain accounting (jobWG) is released exactly once.
type State string

// The job states.
const (
	StateQueued   State = "queued"
	StateRunning  State = "running"
	StateDone     State = "done"
	StateFailed   State = "failed"
	StateCanceled State = "canceled"
)

// terminal reports whether s is final.
func terminal(s State) bool {
	return s == StateDone || s == StateFailed || s == StateCanceled
}

// Event is one server-sent event on a job's feed: a state transition
// ("state"), a closed telemetry window ("window", run jobs with a
// window width), or a completed sweep point ("point").
type Event struct {
	Type string
	Data any
}

// Status is the JSON view of a job returned by the status endpoints
// and carried in "state" events.
type Status struct {
	ID        string `json:"id"`
	State     State  `json:"state"`
	Hash      string `json:"hash"`
	Kind      string `json:"kind"`
	Algorithm string `json:"algorithm"`
	Pattern   string `json:"pattern"`
	// Cached marks a job answered from the result cache without
	// simulating.
	Cached bool `json:"cached,omitempty"`
	// Error and ErrorKind describe a failed or canceled job:
	// ErrorKind is one of "error", "panic", "timeout", "canceled".
	Error     string `json:"error,omitempty"`
	ErrorKind string `json:"error_kind,omitempty"`
	// CycleReached and InFlightAtStop are the partial-run diagnostics
	// of a canceled or timed-out job: how far the engine got and how
	// many packets it abandoned.
	CycleReached   int64 `json:"cycle_reached,omitempty"`
	InFlightAtStop int   `json:"in_flight_at_stop,omitempty"`
	// DroppedEvents counts SSE events dropped because a subscriber's
	// buffer was full (slow consumer backpressure: the job never
	// blocks on its observers).
	DroppedEvents int64 `json:"dropped_events,omitempty"`
	SubmittedAt   int64 `json:"submitted_unix_ms"`
	StartedAt     int64 `json:"started_unix_ms,omitempty"`
	FinishedAt    int64 `json:"finished_unix_ms,omitempty"`
}

// Job is one submitted simulation: its canonical spec, lifecycle
// state, result, and SSE subscribers. All mutable state is behind mu;
// the spec, id and hash are immutable after creation.
type Job struct {
	ID   string
	Spec JobSpec
	Hash string

	mu        sync.Mutex
	state     State
	cached    bool
	errMsg    string
	errKind   string
	cycle     int64 // partial-run diagnostics (canceled/timeout)
	inFlight  int
	report    []byte // the versioned JSON report of a done job
	cancel    context.CancelFunc
	cancelReq bool
	subs      map[chan Event]struct{}
	dropped   int64
	submitted time.Time
	started   time.Time
	finished  time.Time

	// resume is the engine checkpoint a recovered job restarts from
	// (nil: from scratch); attempt counts transient-failure retries.
	resume  []byte
	attempt int

	// onTerminal is the server's drain-accounting hook, invoked exactly
	// once, on the transition into a terminal state.
	onTerminal func()
}

func newJob(id string, spec JobSpec, hash string, onTerminal func()) *Job {
	return &Job{
		ID:         id,
		Spec:       spec,
		Hash:       hash,
		state:      StateQueued,
		subs:       make(map[chan Event]struct{}),
		submitted:  time.Now(),
		onTerminal: onTerminal,
	}
}

// Status snapshots the job for JSON rendering.
func (j *Job) Status() Status {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.statusLocked()
}

func (j *Job) statusLocked() Status {
	st := Status{
		ID:             j.ID,
		State:          j.state,
		Hash:           j.Hash,
		Kind:           j.Spec.Kind,
		Algorithm:      j.Spec.Algorithm,
		Pattern:        j.Spec.Pattern,
		Cached:         j.cached,
		Error:          j.errMsg,
		ErrorKind:      j.errKind,
		CycleReached:   j.cycle,
		InFlightAtStop: j.inFlight,
		DroppedEvents:  j.dropped,
		SubmittedAt:    j.submitted.UnixMilli(),
	}
	if !j.started.IsZero() {
		st.StartedAt = j.started.UnixMilli()
	}
	if !j.finished.IsZero() {
		st.FinishedAt = j.finished.UnixMilli()
	}
	return st
}

// Report returns the finished job's JSON report bytes (nil until done).
func (j *Job) Report() []byte {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.report
}

// begin moves queued → running and installs the run's cancel func. It
// returns false when the job is already terminal (canceled while
// queued): the worker must skip it without touching drain accounting —
// the cancellation already settled it.
func (j *Job) begin(cancel context.CancelFunc) bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state != StateQueued {
		return false
	}
	j.state = StateRunning
	j.started = time.Now()
	j.cancel = cancel
	j.publishLocked(Event{Type: "state", Data: j.statusLocked()})
	return true
}

// Cancel requests cancellation: a queued job goes terminal right here;
// a running job has its context canceled and goes terminal when the
// engine returns from its next cycle-batch checkpoint. Idempotent, and
// a no-op on terminal jobs. Reports whether the request had any effect.
func (j *Job) Cancel(reason string) bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	switch {
	case terminal(j.state):
		return false
	case j.state == StateQueued:
		j.errKind = "canceled"
		j.errMsg = reason
		j.finishLocked(StateCanceled)
		return true
	default: // running
		if j.cancelReq {
			return false
		}
		j.cancelReq = true
		if j.cancel != nil {
			j.cancel()
		}
		return true
	}
}

// requeue returns a running job to queued for a retry. False when the
// job went terminal meanwhile or a client cancellation is pending — in
// either case it must not be resurrected.
func (j *Job) requeue() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state != StateRunning || j.cancelReq {
		return false
	}
	j.state = StateQueued
	j.cancel = nil
	j.publishLocked(Event{Type: "state", Data: j.statusLocked()})
	return true
}

// resumeSnapshot returns the checkpoint a recovered job should restart
// from, if any.
func (j *Job) resumeSnapshot() []byte {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.resume
}

// dropResume clears the recovery checkpoint, reporting whether there
// was one — the caller retries from scratch exactly once per snapshot.
func (j *Job) dropResume() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.resume == nil {
		return false
	}
	j.resume = nil
	return true
}

// bumpAttempt increments and returns the retry counter.
func (j *Job) bumpAttempt() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.attempt++
	return j.attempt
}

// finishDone records the report and completes the job.
func (j *Job) finishDone(report []byte, cached bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if terminal(j.state) {
		return
	}
	j.report = report
	j.cached = cached
	j.finishLocked(StateDone)
}

// finishFailed completes the job with an error. kind is the
// classification ("error", "panic", "timeout"); cycle/inFlight carry
// the partial-run diagnostics where the failure has them.
func (j *Job) finishFailed(kind, msg string, cycle int64, inFlight int) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if terminal(j.state) {
		return
	}
	j.errKind = kind
	j.errMsg = msg
	j.cycle = cycle
	j.inFlight = inFlight
	j.finishLocked(StateFailed)
}

// finishCanceled completes a running job whose context was canceled.
func (j *Job) finishCanceled(msg string, cycle int64, inFlight int) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if terminal(j.state) {
		return
	}
	j.errKind = "canceled"
	j.errMsg = msg
	j.cycle = cycle
	j.inFlight = inFlight
	j.finishLocked(StateCanceled)
}

// finishLocked is the single terminal transition: set the state, stamp
// the time, notify subscribers with a final "state" event, close every
// subscription, and release the server's drain accounting. Callers
// hold mu and have checked the state is not already terminal.
func (j *Job) finishLocked(s State) {
	j.state = s
	j.finished = time.Now()
	j.cancel = nil
	j.publishLocked(Event{Type: "state", Data: j.statusLocked()})
	for ch := range j.subs {
		close(ch)
	}
	j.subs = nil
	if j.onTerminal != nil {
		j.onTerminal()
	}
}

// publish fans an event out to every subscriber without ever blocking:
// a subscriber whose buffer is full loses the event (counted in
// DroppedEvents) rather than stalling the simulation.
func (j *Job) publish(ev Event) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.publishLocked(ev)
}

func (j *Job) publishLocked(ev Event) {
	for ch := range j.subs {
		select {
		case ch <- ev:
		default:
			j.dropped++
		}
	}
}

// subscribe registers an SSE consumer and returns its event channel
// plus a status snapshot to send first. On a terminal job the channel
// comes back already closed — the consumer sends the snapshot and is
// done. The channel is closed by the job's terminal transition;
// consumers must also call unsubscribe on their own exit so an aborted
// client doesn't accumulate dead buffers.
func (j *Job) subscribe(buf int) (chan Event, Status) {
	j.mu.Lock()
	defer j.mu.Unlock()
	snap := j.statusLocked()
	ch := make(chan Event, buf)
	if terminal(j.state) {
		close(ch)
		return ch, snap
	}
	j.subs[ch] = struct{}{}
	return ch, snap
}

// unsubscribe removes a consumer registered by subscribe. Safe after
// the job went terminal (the map is gone; nothing to do).
func (j *Job) unsubscribe(ch chan Event) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.subs != nil {
		delete(j.subs, ch)
	}
}
