package serve

// FuzzJournalDecode drives the two durable-input parsers — journal
// records (decodeRecord) and checkpoint framing (parseCheckpoint) —
// with arbitrary bytes. The contract under fuzz: never panic, never
// allocate proportionally to a hostile length prefix (line-JSON and the
// framed header have none, but the decoder must still bound itself),
// and reject every malformed input with an error wrapping
// ErrCorruptRecord so replay can quarantine it.

import (
	"encoding/json"
	"errors"
	"testing"
)

func FuzzJournalDecode(f *testing.F) {
	// Well-formed records of each type, as the journal writes them.
	seed := func(r record) {
		b, err := json.Marshal(r)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(b)
	}
	spec := JobSpec{Kind: KindRun, Family: "dragonfly", Algorithm: "MIN", Pattern: "UR",
		Seed: 1, Loads: []float64{0.1}, Warmup: 50, Measure: 50, Drain: 1000}
	seed(record{V: journalVersion, Type: recAccepted, ID: "j000001", TS: 1700000000000, Spec: &spec, Hash: "abc"})
	seed(record{V: journalVersion, Type: recState, ID: "j000001", State: StateRunning})
	seed(record{V: journalVersion, Type: recState, ID: "j000001", State: StateDone, Cached: true})
	seed(record{V: journalVersion, Type: recState, ID: "j000001", State: StateFailed, ErrKind: "timeout", Err: "x"})
	seed(record{V: journalVersion, Type: recRetry, ID: "j000001", Attempt: 2})

	// Malformed shapes replay must survive: wrong version, unknown type,
	// trailing garbage, truncations, raw garbage, and checkpoint framing
	// with and without its magic.
	f.Add([]byte(`{"v":99,"type":"state","id":"j1","state":"done"}`))
	f.Add([]byte(`{"v":1,"type":"nonsense","id":"j1"}`))
	f.Add([]byte(`{"v":1,"type":"state","id":"j1","state":"done"}{"v":1}`))
	f.Add([]byte(`{"v":1,"type":"accepted","id":"j00`))
	f.Add([]byte("\x00\xff\xfe garbage"))
	f.Add([]byte(ckptMagic + `{"id":"j000001","hash":"abc"}` + "\n" + "snapshotbytes"))
	f.Add([]byte(ckptMagic + `{"id":"j000001"`))
	f.Add([]byte("dfly-ckpt/9\nx"))

	f.Fuzz(func(t *testing.T, data []byte) {
		if rec, err := decodeRecord(data); err != nil {
			if !errors.Is(err, ErrCorruptRecord) {
				t.Fatalf("decodeRecord error does not wrap ErrCorruptRecord: %v", err)
			}
		} else if rec.Type != recAccepted && rec.Type != recState && rec.Type != recRetry {
			t.Fatalf("decodeRecord accepted unknown type %q", rec.Type)
		}
		if _, _, _, err := parseCheckpoint(data); err != nil && !errors.Is(err, ErrCorruptRecord) {
			t.Fatalf("parseCheckpoint error does not wrap ErrCorruptRecord: %v", err)
		}
	})
}
