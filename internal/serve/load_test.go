package serve

// The load test is the tentpole's acceptance gate: hundreds of
// concurrent submissions mixing valid jobs, invalid jobs, oversized
// bodies, client-aborted requests and one deliberately panicking job,
// against a small worker set and a bounded queue. Afterwards it proves
// the hardening contract held: every accepted job reached a terminal
// state (none lost), the panicking job failed structurally without
// hurting its worker, rejected submissions got real 429 backpressure,
// a cached resubmission returns byte-identical results to a fresh
// server computing the same job, shutdown drains within its deadline,
// and the goroutine count settles back to the baseline.
//
// CI runs it under -race with -short (reduced concurrency); the full
// width runs in the regular suite.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"dragonfly/internal/parallel"
)

const chaosPanicSeed = 31337

// loadSubmission builds the i'th valid job of the storm. Seeds cycle
// through a small set so the storm exercises cache hits alongside
// misses; loads differ per seed so distinct specs stay distinct.
func loadSubmission(i int) Submission {
	sub := tinySubmission()
	sub.Seed = uint64(1 + i%4)
	sub.Load = 0.05 + 0.01*float64(i%12)
	if i%8 == 0 {
		sub.Kind = KindSweep
		sub.Load = 0
		sub.Loads = []float64{0.05, 0.1}
	}
	return sub
}

func TestServerLoad(t *testing.T) {
	n := 240
	if testing.Short() {
		n = 60
	}
	settleBaseline := runtime.NumGoroutine()

	pool := parallel.New(4)
	srv := New(Config{
		QueueDepth: 16,
		Workers:    4,
		Pool:       pool,
		JobTimeout: time.Minute,
	})
	srv.testHook = func(j *Job) {
		if j.Spec.Seed == chaosPanicSeed {
			panic("injected chaos monkey")
		}
		// Pad each job a little so the storm outruns the workers and the
		// bounded queue actually overflows — otherwise these tiny jobs
		// drain as fast as they arrive and the 429 path goes untested.
		time.Sleep(10 * time.Millisecond)
	}
	ts := httptest.NewServer(srv)
	client := ts.Client()

	var (
		mu       sync.Mutex
		accepted []string
		panicJob string
	)
	var got429, got400, got413, aborted atomic.Int64

	// submitUntilAccepted retries through 429 backpressure — the
	// contract is that a full queue is a retryable condition, not an
	// error — and records the accepted job.
	submitUntilAccepted := func(t *testing.T, sub Submission) string {
		body, err := json.Marshal(sub)
		if err != nil {
			t.Errorf("marshal: %v", err)
			return ""
		}
		deadline := time.Now().Add(60 * time.Second)
		for time.Now().Before(deadline) {
			resp, err := client.Post(ts.URL+"/v1/jobs", "application/json", bytes.NewReader(body))
			if err != nil {
				t.Errorf("POST: %v", err)
				return ""
			}
			switch resp.StatusCode {
			case http.StatusAccepted, http.StatusOK:
				var st Status
				err := json.NewDecoder(resp.Body).Decode(&st)
				resp.Body.Close()
				if err != nil {
					t.Errorf("decode: %v", err)
					return ""
				}
				mu.Lock()
				accepted = append(accepted, st.ID)
				mu.Unlock()
				return st.ID
			case http.StatusTooManyRequests:
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				got429.Add(1)
				time.Sleep(10 * time.Millisecond)
			default:
				resp.Body.Close()
				t.Errorf("submit: unexpected status %d", resp.StatusCode)
				return ""
			}
		}
		t.Error("submission never accepted within the retry budget")
		return ""
	}

	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			switch i % 8 {
			case 7: // invalid: must be rejected up front, never queued
				bad := tinySubmission()
				bad.Algorithm = "NO-SUCH-ALG"
				body, _ := json.Marshal(bad)
				resp, err := client.Post(ts.URL+"/v1/jobs", "application/json", bytes.NewReader(body))
				if err != nil {
					t.Errorf("invalid POST: %v", err)
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusBadRequest {
					t.Errorf("invalid submission: status %d, want 400", resp.StatusCode)
				}
				got400.Add(1)
			case 6: // oversized body: 413, connection survives
				huge := fmt.Sprintf(`{"kind":"run","algorithm":"MIN","pattern":"UR","timeline":%q}`,
					strings.Repeat("x", 2<<20))
				resp, err := client.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(huge))
				if err != nil {
					// The server may slam the connection mid-upload once the
					// limit trips; either way the body was refused.
					aborted.Add(1)
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusRequestEntityTooLarge {
					t.Errorf("oversized submission: status %d, want 413", resp.StatusCode)
				}
				got413.Add(1)
			case 5: // client abort: give up on the request almost immediately
				ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
				body, _ := json.Marshal(loadSubmission(i))
				req, _ := http.NewRequestWithContext(ctx, http.MethodPost, ts.URL+"/v1/jobs", bytes.NewReader(body))
				req.Header.Set("Content-Type", "application/json")
				resp, err := client.Do(req)
				if err == nil {
					// Landed before the deadline: it is a normal accepted job.
					var st Status
					if resp.StatusCode == http.StatusAccepted || resp.StatusCode == http.StatusOK {
						if json.NewDecoder(resp.Body).Decode(&st) == nil {
							mu.Lock()
							accepted = append(accepted, st.ID)
							mu.Unlock()
						}
					}
					io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
				} else {
					aborted.Add(1)
				}
				cancel()
			default: // valid work, retried through backpressure
				id := submitUntilAccepted(t, loadSubmission(i))
				if id != "" && i%16 == 2 {
					// Some clients watch the SSE feed and abandon it mid-
					// stream: the server must shed them without leaking.
					ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
					req, _ := http.NewRequestWithContext(ctx, http.MethodGet, ts.URL+"/v1/jobs/"+id+"/events", nil)
					if resp, err := client.Do(req); err == nil {
						io.Copy(io.Discard, resp.Body)
						resp.Body.Close()
					}
					cancel()
					aborted.Add(1)
				}
			}
		}(i)
	}
	// One poisoned job rides along with the storm.
	wg.Add(1)
	go func() {
		defer wg.Done()
		bad := tinySubmission()
		bad.Seed = chaosPanicSeed
		if id := submitUntilAccepted(t, bad); id != "" {
			mu.Lock()
			panicJob = id
			mu.Unlock()
		}
	}()
	wg.Wait()

	if got429.Load() == 0 {
		t.Logf("note: queue never overflowed (no 429s exercised at n=%d)", n)
	}
	t.Logf("storm: %d accepted, %d backpressured, %d invalid, %d oversized, %d aborted",
		len(accepted), got429.Load(), got400.Load(), got413.Load(), aborted.Load())

	// No lost jobs: every accepted job reaches a terminal state.
	doneStates := map[State]int{}
	for _, id := range accepted {
		st := waitTerminal(t, ts, id)
		doneStates[st.State]++
		if st.State == StateFailed && st.ErrorKind != "panic" {
			t.Errorf("job %s failed unexpectedly: %s (%s)", id, st.Error, st.ErrorKind)
		}
	}
	t.Logf("terminal states: %v", doneStates)

	// The poisoned job failed structurally; its worker survived (all
	// other jobs completed above, which needed all four workers).
	if panicJob == "" {
		t.Fatal("the panicking job was never accepted")
	}
	if st := getStatus(t, ts, panicJob); st.State != StateFailed || st.ErrorKind != "panic" {
		t.Errorf("poisoned job = %q/%q, want failed/panic", st.State, st.ErrorKind)
	}

	// Cached vs fresh, bit for bit: resubmit one of the storm's specs
	// (a guaranteed hit now) and compare against a pristine server with
	// caching disabled computing the same job from scratch.
	spec := loadSubmission(1)
	cachedSt, code := submit(t, ts, spec)
	if code != http.StatusOK || !cachedSt.Cached {
		t.Fatalf("resubmission after the storm: status %d cached:%v, want a 200 cache hit", code, cachedSt.Cached)
	}
	cachedRep := getReport(t, ts, cachedSt.ID)

	fresh := New(Config{Workers: 1, CacheSize: -1, Pool: pool})
	fts := httptest.NewServer(fresh)
	freshSt, code := submit(t, fts, spec)
	if code != http.StatusAccepted {
		t.Fatalf("fresh-server submit: %d", code)
	}
	if st := waitTerminal(t, fts, freshSt.ID); st.State != StateDone {
		t.Fatalf("fresh-server job finished %q", st.State)
	}
	freshRep := getReport(t, fts, freshSt.ID)
	if !bytes.Equal(cachedRep, freshRep) {
		t.Errorf("cached report is not bit-identical to a fresh computation:\ncached: %d bytes\nfresh:  %d bytes", len(cachedRep), len(freshRep))
	}
	fctx, fcancel := context.WithTimeout(context.Background(), 30*time.Second)
	if err := fresh.Shutdown(fctx); err != nil {
		t.Errorf("fresh server Shutdown: %v", err)
	}
	fcancel()
	fts.Close()

	// Graceful exit: with all work already terminal, drain must be
	// near-instant and error-free.
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Errorf("Shutdown after the storm: %v", err)
	}
	ts.Close()
	client.CloseIdleConnections()

	// Zero goroutine leaks across the whole exercise: workers joined,
	// SSE feeds shed, canceled waiters returned.
	deadline := time.Now().Add(10 * time.Second)
	goroutines := runtime.NumGoroutine()
	for goroutines > settleBaseline+3 && time.Now().Before(deadline) {
		time.Sleep(20 * time.Millisecond)
		goroutines = runtime.NumGoroutine()
	}
	if goroutines > settleBaseline+3 {
		buf := make([]byte, 1<<20)
		t.Errorf("goroutine leak: %d before the storm, %d after settling\n%s",
			settleBaseline, goroutines, buf[:runtime.Stack(buf, true)])
	}
}

// TestServerLoadRestart is the durability half of the load exercise: a
// storm of valid jobs against a durable server, a simulated SIGKILL
// with the queue still full, on-disk damage, then a restart on the same
// data directory. Every accepted job must reach done on the restarted
// server — zero losses — the recovered backlog (far deeper than the
// queue) must land through the deferred-enqueue path, and the whole
// cycle must settle back to the goroutine baseline.
func TestServerLoadRestart(t *testing.T) {
	n := 80
	if testing.Short() {
		n = 30
	}
	settleBaseline := runtime.NumGoroutine()
	dir := t.TempDir()
	pool := parallel.New(4)

	cfg := Config{
		QueueDepth:      16,
		Workers:         4,
		Pool:            pool,
		JobTimeout:      time.Minute,
		CheckpointEvery: 200,
	}
	srv, ts := durableServer(t, dir, cfg)
	// Pad jobs so the storm outruns the workers and the crash lands on a
	// full queue, not an idle server.
	srv.testHook = func(j *Job) { time.Sleep(20 * time.Millisecond) }
	client := ts.Client()

	var (
		mu       sync.Mutex
		accepted []string
	)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sub := loadSubmission(i)
			if i%10 == 3 {
				// Windowed runs are excluded from checkpointing; they must
				// still recover (from scratch) like everything else.
				sub.Kind = KindRun
				sub.Loads = nil
				sub.Load = 0.07
				sub.Window = 25
			}
			body, err := json.Marshal(sub)
			if err != nil {
				t.Errorf("marshal: %v", err)
				return
			}
			deadline := time.Now().Add(60 * time.Second)
			for time.Now().Before(deadline) {
				resp, err := client.Post(ts.URL+"/v1/jobs", "application/json", bytes.NewReader(body))
				if err != nil {
					t.Errorf("POST: %v", err)
					return
				}
				if resp.StatusCode == http.StatusTooManyRequests {
					io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
					time.Sleep(10 * time.Millisecond)
					continue
				}
				var st Status
				decErr := json.NewDecoder(resp.Body).Decode(&st)
				resp.Body.Close()
				if resp.StatusCode != http.StatusAccepted && resp.StatusCode != http.StatusOK {
					t.Errorf("submit: unexpected status %d", resp.StatusCode)
					return
				}
				if decErr != nil {
					t.Errorf("decode: %v", decErr)
					return
				}
				mu.Lock()
				accepted = append(accepted, st.ID)
				mu.Unlock()
				return
			}
			t.Error("submission never accepted within the retry budget")
		}(i)
	}
	// Crash only after every submission settled: the invariant under test
	// is that an acknowledged job is durable, which needs the ack to have
	// happened.
	wg.Wait()

	srv.crashForTest()
	ts.Close()

	// The same damage a real crash leaves behind.
	if err := os.WriteFile(filepath.Join(dir, "checkpoints", "junk.snap.tmp9"), []byte("torn"), 0o644); err != nil {
		t.Fatal(err)
	}
	jf, err := os.OpenFile(filepath.Join(dir, "journal.log"), os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := jf.WriteString("not json at all\n{\"v\":1,\"type\":\"accepted\",\"id\":\"j0"); err != nil {
		t.Fatal(err)
	}
	jf.Close()

	// Restart with a deliberately narrow queue so the recovered backlog
	// exceeds it: recovery must route the overflow through deferred
	// enqueues rather than drop accepted jobs.
	restartCfg := cfg
	restartCfg.QueueDepth = 2
	srv2, ts2 := durableServer(t, dir, restartCfg)
	client = ts2.Client()

	for _, path := range []string{"/healthz", "/readyz"} {
		resp, err := client.Get(ts2.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("GET %s after restart: %d, want 200", path, resp.StatusCode)
		}
	}

	// Zero lost jobs: every id accepted before the kill reaches done on
	// the restarted server (nothing in this storm fails or cancels).
	for _, id := range accepted {
		if st := waitTerminal(t, ts2, id); st.State != StateDone {
			t.Errorf("recovered job %s ended %q (%s), want done", id, st.State, st.Error)
		}
	}
	st := srv2.stats()
	t.Logf("restart: %d accepted pre-crash, %d records replayed, %d jobs recovered, %d quarantined",
		len(accepted), st.JournalReplays, st.JobsRecovered, st.RecordsQuarantined)
	if st.JobsRecovered == 0 {
		t.Error("no jobs recovered: the crash landed on an idle server (storm too small?)")
	}
	if st.RecordsQuarantined != 1 {
		t.Errorf("records_quarantined = %d, want 1 (the planted corrupt line)", st.RecordsQuarantined)
	}

	// Spot-check determinism across the crash: a storm spec recomputed on
	// a pristine cache-less server matches the recovered report bit for
	// bit.
	spec := loadSubmission(1)
	cachedSt, code := submit(t, ts2, spec)
	if code != http.StatusOK && code != http.StatusAccepted {
		t.Fatalf("resubmission after restart: status %d", code)
	}
	if fin := waitTerminal(t, ts2, cachedSt.ID); fin.State != StateDone {
		t.Fatalf("resubmission finished %q", fin.State)
	}
	recoveredRep := getReport(t, ts2, cachedSt.ID)

	fresh := New(Config{Workers: 1, CacheSize: -1, Pool: pool})
	fts := httptest.NewServer(fresh)
	freshSt, code := submit(t, fts, spec)
	if code != http.StatusAccepted {
		t.Fatalf("fresh-server submit: %d", code)
	}
	if st := waitTerminal(t, fts, freshSt.ID); st.State != StateDone {
		t.Fatalf("fresh-server job finished %q", st.State)
	}
	if freshRep := getReport(t, fts, freshSt.ID); !bytes.Equal(recoveredRep, freshRep) {
		t.Error("report recovered across the crash is not bit-identical to a fresh computation")
	}
	fctx, fcancel := context.WithTimeout(context.Background(), 30*time.Second)
	if err := fresh.Shutdown(fctx); err != nil {
		t.Errorf("fresh server Shutdown: %v", err)
	}
	fcancel()
	fts.Close()

	// This time exit gracefully: drain, close, and settle to baseline.
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := srv2.Shutdown(ctx); err != nil {
		t.Errorf("Shutdown after recovery: %v", err)
	}
	ts2.Close()
	client.CloseIdleConnections()

	deadline := time.Now().Add(10 * time.Second)
	goroutines := runtime.NumGoroutine()
	for goroutines > settleBaseline+3 && time.Now().Before(deadline) {
		time.Sleep(20 * time.Millisecond)
		goroutines = runtime.NumGoroutine()
	}
	if goroutines > settleBaseline+3 {
		buf := make([]byte, 1<<20)
		t.Errorf("goroutine leak: %d before the exercise, %d after settling\n%s",
			settleBaseline, goroutines, buf[:runtime.Stack(buf, true)])
	}
}
