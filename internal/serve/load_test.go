package serve

// The load test is the tentpole's acceptance gate: hundreds of
// concurrent submissions mixing valid jobs, invalid jobs, oversized
// bodies, client-aborted requests and one deliberately panicking job,
// against a small worker set and a bounded queue. Afterwards it proves
// the hardening contract held: every accepted job reached a terminal
// state (none lost), the panicking job failed structurally without
// hurting its worker, rejected submissions got real 429 backpressure,
// a cached resubmission returns byte-identical results to a fresh
// server computing the same job, shutdown drains within its deadline,
// and the goroutine count settles back to the baseline.
//
// CI runs it under -race with -short (reduced concurrency); the full
// width runs in the regular suite.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"dragonfly/internal/parallel"
)

const chaosPanicSeed = 31337

// loadSubmission builds the i'th valid job of the storm. Seeds cycle
// through a small set so the storm exercises cache hits alongside
// misses; loads differ per seed so distinct specs stay distinct.
func loadSubmission(i int) Submission {
	sub := tinySubmission()
	sub.Seed = uint64(1 + i%4)
	sub.Load = 0.05 + 0.01*float64(i%12)
	if i%8 == 0 {
		sub.Kind = KindSweep
		sub.Load = 0
		sub.Loads = []float64{0.05, 0.1}
	}
	return sub
}

func TestServerLoad(t *testing.T) {
	n := 240
	if testing.Short() {
		n = 60
	}
	settleBaseline := runtime.NumGoroutine()

	pool := parallel.New(4)
	srv := New(Config{
		QueueDepth: 16,
		Workers:    4,
		Pool:       pool,
		JobTimeout: time.Minute,
	})
	srv.testHook = func(j *Job) {
		if j.Spec.Seed == chaosPanicSeed {
			panic("injected chaos monkey")
		}
		// Pad each job a little so the storm outruns the workers and the
		// bounded queue actually overflows — otherwise these tiny jobs
		// drain as fast as they arrive and the 429 path goes untested.
		time.Sleep(10 * time.Millisecond)
	}
	ts := httptest.NewServer(srv)
	client := ts.Client()

	var (
		mu       sync.Mutex
		accepted []string
		panicJob string
	)
	var got429, got400, got413, aborted atomic.Int64

	// submitUntilAccepted retries through 429 backpressure — the
	// contract is that a full queue is a retryable condition, not an
	// error — and records the accepted job.
	submitUntilAccepted := func(t *testing.T, sub Submission) string {
		body, err := json.Marshal(sub)
		if err != nil {
			t.Errorf("marshal: %v", err)
			return ""
		}
		deadline := time.Now().Add(60 * time.Second)
		for time.Now().Before(deadline) {
			resp, err := client.Post(ts.URL+"/v1/jobs", "application/json", bytes.NewReader(body))
			if err != nil {
				t.Errorf("POST: %v", err)
				return ""
			}
			switch resp.StatusCode {
			case http.StatusAccepted, http.StatusOK:
				var st Status
				err := json.NewDecoder(resp.Body).Decode(&st)
				resp.Body.Close()
				if err != nil {
					t.Errorf("decode: %v", err)
					return ""
				}
				mu.Lock()
				accepted = append(accepted, st.ID)
				mu.Unlock()
				return st.ID
			case http.StatusTooManyRequests:
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				got429.Add(1)
				time.Sleep(10 * time.Millisecond)
			default:
				resp.Body.Close()
				t.Errorf("submit: unexpected status %d", resp.StatusCode)
				return ""
			}
		}
		t.Error("submission never accepted within the retry budget")
		return ""
	}

	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			switch i % 8 {
			case 7: // invalid: must be rejected up front, never queued
				bad := tinySubmission()
				bad.Algorithm = "NO-SUCH-ALG"
				body, _ := json.Marshal(bad)
				resp, err := client.Post(ts.URL+"/v1/jobs", "application/json", bytes.NewReader(body))
				if err != nil {
					t.Errorf("invalid POST: %v", err)
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusBadRequest {
					t.Errorf("invalid submission: status %d, want 400", resp.StatusCode)
				}
				got400.Add(1)
			case 6: // oversized body: 413, connection survives
				huge := fmt.Sprintf(`{"kind":"run","algorithm":"MIN","pattern":"UR","timeline":%q}`,
					strings.Repeat("x", 2<<20))
				resp, err := client.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(huge))
				if err != nil {
					// The server may slam the connection mid-upload once the
					// limit trips; either way the body was refused.
					aborted.Add(1)
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusRequestEntityTooLarge {
					t.Errorf("oversized submission: status %d, want 413", resp.StatusCode)
				}
				got413.Add(1)
			case 5: // client abort: give up on the request almost immediately
				ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
				body, _ := json.Marshal(loadSubmission(i))
				req, _ := http.NewRequestWithContext(ctx, http.MethodPost, ts.URL+"/v1/jobs", bytes.NewReader(body))
				req.Header.Set("Content-Type", "application/json")
				resp, err := client.Do(req)
				if err == nil {
					// Landed before the deadline: it is a normal accepted job.
					var st Status
					if resp.StatusCode == http.StatusAccepted || resp.StatusCode == http.StatusOK {
						if json.NewDecoder(resp.Body).Decode(&st) == nil {
							mu.Lock()
							accepted = append(accepted, st.ID)
							mu.Unlock()
						}
					}
					io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
				} else {
					aborted.Add(1)
				}
				cancel()
			default: // valid work, retried through backpressure
				id := submitUntilAccepted(t, loadSubmission(i))
				if id != "" && i%16 == 2 {
					// Some clients watch the SSE feed and abandon it mid-
					// stream: the server must shed them without leaking.
					ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
					req, _ := http.NewRequestWithContext(ctx, http.MethodGet, ts.URL+"/v1/jobs/"+id+"/events", nil)
					if resp, err := client.Do(req); err == nil {
						io.Copy(io.Discard, resp.Body)
						resp.Body.Close()
					}
					cancel()
					aborted.Add(1)
				}
			}
		}(i)
	}
	// One poisoned job rides along with the storm.
	wg.Add(1)
	go func() {
		defer wg.Done()
		bad := tinySubmission()
		bad.Seed = chaosPanicSeed
		if id := submitUntilAccepted(t, bad); id != "" {
			mu.Lock()
			panicJob = id
			mu.Unlock()
		}
	}()
	wg.Wait()

	if got429.Load() == 0 {
		t.Logf("note: queue never overflowed (no 429s exercised at n=%d)", n)
	}
	t.Logf("storm: %d accepted, %d backpressured, %d invalid, %d oversized, %d aborted",
		len(accepted), got429.Load(), got400.Load(), got413.Load(), aborted.Load())

	// No lost jobs: every accepted job reaches a terminal state.
	doneStates := map[State]int{}
	for _, id := range accepted {
		st := waitTerminal(t, ts, id)
		doneStates[st.State]++
		if st.State == StateFailed && st.ErrorKind != "panic" {
			t.Errorf("job %s failed unexpectedly: %s (%s)", id, st.Error, st.ErrorKind)
		}
	}
	t.Logf("terminal states: %v", doneStates)

	// The poisoned job failed structurally; its worker survived (all
	// other jobs completed above, which needed all four workers).
	if panicJob == "" {
		t.Fatal("the panicking job was never accepted")
	}
	if st := getStatus(t, ts, panicJob); st.State != StateFailed || st.ErrorKind != "panic" {
		t.Errorf("poisoned job = %q/%q, want failed/panic", st.State, st.ErrorKind)
	}

	// Cached vs fresh, bit for bit: resubmit one of the storm's specs
	// (a guaranteed hit now) and compare against a pristine server with
	// caching disabled computing the same job from scratch.
	spec := loadSubmission(1)
	cachedSt, code := submit(t, ts, spec)
	if code != http.StatusOK || !cachedSt.Cached {
		t.Fatalf("resubmission after the storm: status %d cached:%v, want a 200 cache hit", code, cachedSt.Cached)
	}
	cachedRep := getReport(t, ts, cachedSt.ID)

	fresh := New(Config{Workers: 1, CacheSize: -1, Pool: pool})
	fts := httptest.NewServer(fresh)
	freshSt, code := submit(t, fts, spec)
	if code != http.StatusAccepted {
		t.Fatalf("fresh-server submit: %d", code)
	}
	if st := waitTerminal(t, fts, freshSt.ID); st.State != StateDone {
		t.Fatalf("fresh-server job finished %q", st.State)
	}
	freshRep := getReport(t, fts, freshSt.ID)
	if !bytes.Equal(cachedRep, freshRep) {
		t.Errorf("cached report is not bit-identical to a fresh computation:\ncached: %d bytes\nfresh:  %d bytes", len(cachedRep), len(freshRep))
	}
	fctx, fcancel := context.WithTimeout(context.Background(), 30*time.Second)
	if err := fresh.Shutdown(fctx); err != nil {
		t.Errorf("fresh server Shutdown: %v", err)
	}
	fcancel()
	fts.Close()

	// Graceful exit: with all work already terminal, drain must be
	// near-instant and error-free.
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Errorf("Shutdown after the storm: %v", err)
	}
	ts.Close()
	client.CloseIdleConnections()

	// Zero goroutine leaks across the whole exercise: workers joined,
	// SSE feeds shed, canceled waiters returned.
	deadline := time.Now().Add(10 * time.Second)
	goroutines := runtime.NumGoroutine()
	for goroutines > settleBaseline+3 && time.Now().Before(deadline) {
		time.Sleep(20 * time.Millisecond)
		goroutines = runtime.NumGoroutine()
	}
	if goroutines > settleBaseline+3 {
		buf := make([]byte, 1<<20)
		t.Errorf("goroutine leak: %d before the storm, %d after settling\n%s",
			settleBaseline, goroutines, buf[:runtime.Stack(buf, true)])
	}
}
