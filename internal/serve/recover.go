package serve

// Recovery and retry: how a durable Server turns a replayed journal
// back into live state, persists job outcomes as they happen, and
// re-executes jobs after transient failures.
//
// The recovery state machine, per replayed job (last journaled state →
// action):
//
//	done              → reload results/<hash>.json, restore terminal,
//	                    warm the cache; missing/unreadable result file
//	                    → re-enqueue (the journal record outran the
//	                    file; determinism makes the re-run identical)
//	failed, canceled  → restore terminal as recorded
//	queued, running   → re-enqueue, resuming a "run" job from
//	                    checkpoints/<id>.snap when one exists and names
//	                    this job's spec hash; otherwise from scratch
//
// A re-enqueued job whose checkpoint turns out to be unusable at
// execution time (the engine refuses it with sim.ErrBadSnapshot) drops
// the snapshot and retries from scratch through the backoff schedule
// below — a transient condition, not a job failure.

import (
	"errors"
	"fmt"
	"hash/fnv"
	"os"
	"time"
)

// terminalHook is the onTerminal callback of every accepted job:
// persist the outcome, then release the drain accounting. finishLocked
// invokes it with job.mu already held in this goroutine, so it reads
// the job's fields directly instead of taking the lock again.
func (s *Server) terminalHook(job *Job) func() {
	return func() {
		if s.store != nil {
			s.persistTerminalLocked(job)
		}
		s.jobWG.Done()
	}
}

// persistTerminalLocked makes a terminal transition durable: the result
// file first (for done jobs), then the journal record, then the
// now-obsolete checkpoint is dropped. Write-ahead in that order on
// purpose — a journaled "done" whose result file is missing would
// replay into a silent gap, while a result file without its record
// merely re-runs to the identical bytes. Called with job.mu held.
func (s *Server) persistTerminalLocked(job *Job) {
	if job.state == StateDone {
		if err := s.store.writeResult(job.Hash, job.report); err != nil {
			if !errors.Is(err, errStoreClosed) {
				s.cfg.Logf("serve: job %s: persist result: %v", job.ID, err)
			}
			return
		}
	}
	rec := record{
		V: journalVersion, Type: recState, ID: job.ID, State: job.state,
		ErrKind: job.errKind, Err: job.errMsg, Cached: job.cached,
	}
	if err := s.store.appendRecord(rec); err != nil && !errors.Is(err, errStoreClosed) {
		s.cfg.Logf("serve: job %s: journal terminal state: %v", job.ID, err)
	}
	s.store.removeCheckpoint(job.ID)
}

// journalAccepted journals a submission before the client is
// acknowledged: once the 202/200 goes out, the job survives any crash.
func (s *Server) journalAccepted(job *Job) {
	if s.store == nil {
		return
	}
	spec := job.Spec
	err := s.store.appendRecord(record{
		V: journalVersion, Type: recAccepted, ID: job.ID,
		TS: job.submitted.UnixMilli(), Spec: &spec, Hash: job.Hash,
	})
	if err != nil && !errors.Is(err, errStoreClosed) {
		s.cfg.Logf("serve: job %s: journal accepted: %v", job.ID, err)
	}
}

// journalRunning marks the start of execution. Purely informational for
// replay (queued and running recover identically), but it records how
// far each job got, which the quarantine and debugging paths care
// about.
func (s *Server) journalRunning(job *Job) {
	if s.store == nil {
		return
	}
	err := s.store.appendRecord(record{V: journalVersion, Type: recState, ID: job.ID, State: StateRunning})
	if err != nil && !errors.Is(err, errStoreClosed) {
		s.cfg.Logf("serve: job %s: journal running: %v", job.ID, err)
	}
}

// recoverJobs rebuilds the job table from the replayed journal. Runs in
// Open before the workers start and before the handler is reachable, so
// recovered jobs hold the head of the queue and no lock ordering is at
// stake yet.
func (s *Server) recoverJobs(rep *replayResult) {
	s.nextID = rep.maxID
	s.journalReplays = rep.records
	for _, id := range rep.order {
		rj := rep.jobs[id]
		switch rj.state {
		case StateDone:
			report, err := s.store.readResult(rj.hash)
			if err != nil {
				s.cfg.Logf("serve: recovery: job %s finished but its result file is unreadable (%v): re-running", id, err)
				s.requeueRecovered(rj, nil)
				continue
			}
			s.restoreTerminal(rj, report)
			s.cache.put(rj.hash, report)
		case StateFailed, StateCanceled:
			s.restoreTerminal(rj, nil)
		default: // queued or running: the dead process never settled it
			if report, ok := s.cache.get(rj.hash); ok {
				// An identical job already finished during this replay:
				// settle from the warm cache exactly as a submission would.
				s.finishRecoveredFromCache(rj, report)
				continue
			}
			var resume []byte
			if rj.spec.Kind == KindRun && rj.spec.Window == 0 {
				hash, snap, err := s.store.readCheckpoint(id)
				switch {
				case errors.Is(err, os.ErrNotExist):
					// Never checkpointed; from scratch.
				case err != nil:
					s.cfg.Logf("serve: recovery: job %s checkpoint unreadable (%v): re-running from scratch", id, err)
					s.store.removeCheckpoint(id)
				case hash != rj.hash:
					s.cfg.Logf("serve: recovery: job %s checkpoint belongs to another spec: re-running from scratch", id)
					s.store.removeCheckpoint(id)
				default:
					resume = snap
				}
			}
			s.requeueRecovered(rj, resume)
		}
	}
}

// restoreTerminal republishes a job the journal already settled. No
// drain accounting: the job needs no worker and can never transition
// again.
func (s *Server) restoreTerminal(rj *replayedJob, report []byte) {
	job := newJob(rj.id, rj.spec, rj.hash, nil)
	job.state = rj.state
	job.report = report
	job.cached = rj.cached
	job.errKind, job.errMsg = rj.errKind, rj.errMsg
	if rj.submitted > 0 {
		job.submitted = time.UnixMilli(rj.submitted)
	}
	s.mu.Lock()
	s.jobs[rj.id] = job
	s.order = append(s.order, rj.id)
	s.submitted++
	s.mu.Unlock()
}

// requeueRecovered puts an unfinished replayed job back on the queue,
// with full drain accounting — from here on it is indistinguishable
// from a freshly accepted job, except for the resume snapshot it may
// carry.
func (s *Server) requeueRecovered(rj *replayedJob, resume []byte) {
	job := s.recoveredJob(rj)
	job.resume = resume
	select {
	case s.queue <- job:
	default:
		// More recovered work than queue depth: a full queue is
		// backpressure, never a reason to drop an accepted job. Defer the
		// enqueue; the blocking retry lands it once the workers drain.
		s.deferEnqueue(job, retryDelay(1, job.ID))
	}
}

// finishRecoveredFromCache settles a recovered job from the result an
// identical job produced, the same way a submission cache hit would.
func (s *Server) finishRecoveredFromCache(rj *replayedJob, report []byte) {
	job := s.recoveredJob(rj)
	job.finishDone(report, true)
}

// recoveredJob builds and indexes a live replayed job.
func (s *Server) recoveredJob(rj *replayedJob) *Job {
	job := newJob(rj.id, rj.spec, rj.hash, nil)
	job.onTerminal = s.terminalHook(job)
	job.attempt = rj.attempt
	if rj.submitted > 0 {
		job.submitted = time.UnixMilli(rj.submitted)
	}
	s.jobWG.Add(1)
	s.mu.Lock()
	s.jobs[rj.id] = job
	s.order = append(s.order, rj.id)
	s.submitted++
	s.jobsRecovered++
	s.mu.Unlock()
	return job
}

// retryJob reschedules a job after a transient failure, with capped
// exponential backoff. Attempts past RetryMax fail the job for real.
func (s *Server) retryJob(job *Job, reason string) {
	attempt := job.bumpAttempt()
	s.mu.Lock()
	s.jobsRetried++
	max := s.cfg.RetryMax
	s.mu.Unlock()
	if max < 0 || attempt > max {
		job.finishFailed("error", fmt.Sprintf("%s (gave up after %d attempts)", reason, attempt), 0, 0)
		return
	}
	s.cfg.Logf("serve: job %s: %s: retry %d/%d", job.ID, reason, attempt, max)
	if s.store != nil {
		err := s.store.appendRecord(record{V: journalVersion, Type: recRetry, ID: job.ID, Attempt: attempt})
		if err != nil && !errors.Is(err, errStoreClosed) {
			s.cfg.Logf("serve: job %s: journal retry: %v", job.ID, err)
		}
	}
	if !job.requeue() {
		// The client canceled while the retry was being arranged; settle
		// the cancellation instead of resurrecting the job.
		job.finishCanceled("canceled during retry", 0, 0)
		return
	}
	s.deferEnqueue(job, retryDelay(attempt, job.ID))
}

// retryDelay is the backoff schedule: 100ms doubling per attempt,
// capped at 30s, plus a deterministic per-(job, attempt) jitter so a
// herd of recovered jobs does not thunder back in lockstep.
func retryDelay(attempt int, id string) time.Duration {
	shift := uint(attempt - 1)
	if shift > 8 {
		shift = 8
	}
	d := 100 * time.Millisecond << shift
	if d > 30*time.Second {
		d = 30 * time.Second
	}
	h := fnv.New32a()
	fmt.Fprintf(h, "%s/%d", id, attempt)
	return d + time.Duration(h.Sum32()%64)*time.Millisecond
}

// deferEnqueue re-queues a job after delay. The timer is tracked so
// shutdown and the crash simulation can stop it; once fired, the send
// blocks until a queue slot frees or the server quits.
func (s *Server) deferEnqueue(job *Job, delay time.Duration) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.crashed {
		return
	}
	s.retryTimers[job.ID] = time.AfterFunc(delay, func() {
		s.mu.Lock()
		delete(s.retryTimers, job.ID)
		s.mu.Unlock()
		select {
		case s.queue <- job:
		case <-s.quit:
			job.Cancel("server stopped before the deferred job could be queued")
		}
	})
}

// stopRetryTimers cancels every pending backoff timer. Timers that
// already fired are goroutines blocked on the queue send; closing quit
// releases them.
func (s *Server) stopRetryTimers() {
	s.mu.Lock()
	timers := s.retryTimers
	s.retryTimers = make(map[string]*time.Timer)
	s.mu.Unlock()
	for _, t := range timers {
		t.Stop()
	}
}

// crashForTest simulates a SIGKILL for the recovery tests. The store
// detaches first — nothing that happens afterwards reaches disk, which
// is exactly the view a dead process leaves — then running jobs are cut
// off mid-cycle through the base context and the workers are joined so
// a test can reopen the data dir without racing the old process.
// Deliberately skipped: draining, jobWG, any terminal bookkeeping — a
// real SIGKILL runs none of them.
func (s *Server) crashForTest() {
	s.mu.Lock()
	if s.crashed {
		s.mu.Unlock()
		return
	}
	s.crashed = true
	timers := s.retryTimers
	s.retryTimers = make(map[string]*time.Timer)
	s.mu.Unlock()
	for _, t := range timers {
		t.Stop()
	}
	if s.store != nil {
		s.store.detach()
	}
	s.baseCancel()
	close(s.quit)
	s.workerWG.Wait()
}
