package serve

// Crash-recovery tests: a durable server is killed mid-flight
// (crashForTest — the store detaches first, exactly the view a SIGKILL
// leaves on disk), the data directory is additionally vandalized the
// way real crashes vandalize it (torn temp files, a corrupt journal
// line, a torn final line), and a fresh server on the same directory
// must recover every accepted job with zero losses and bit-identical
// results.

import (
	"bytes"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// longSubmission is a run big enough to be caught mid-flight: the tiny
// 2/4/2 machine with a long warmup so checkpoints appear well before
// the finish line.
func longSubmission() Submission {
	return Submission{
		Kind:      KindRun,
		Topology:  TopologySpec{P: 2, A: 4, H: 2},
		Algorithm: "MIN",
		Pattern:   "UR",
		Seed:      7,
		Load:      0.2,
		Run:       RunSpec{Warmup: 20000, Measure: 2000, Drain: 5000},
	}
}

// durableServer opens a Server on dir and fronts it with httptest. No
// cleanup is registered: crash tests tear down by hand (crashForTest or
// Shutdown) at the point in the scenario where the "process" dies.
func durableServer(t *testing.T, dir string, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	cfg.DataDir = dir
	if cfg.Logf == nil {
		cfg.Logf = t.Logf
	}
	srv, err := Open(cfg)
	if err != nil {
		t.Fatalf("Open(%s): %v", dir, err)
	}
	return srv, httptest.NewServer(srv)
}

// waitForCheckpoint polls until checkpoints/<id>.snap exists — the
// engine has durably passed at least one cycle-batch boundary.
func waitForCheckpoint(t *testing.T, dir, id string) {
	t.Helper()
	path := filepath.Join(dir, "checkpoints", id+".snap")
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		if _, err := os.Stat(path); err == nil {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("job %s never wrote a checkpoint", id)
}

// referenceReport runs sub on a fresh in-memory server and returns the
// report bytes — the uninterrupted ground truth a recovered run must
// reproduce exactly.
func referenceReport(t *testing.T, sub Submission) []byte {
	t.Helper()
	_, ts := testServer(t, Config{Workers: 1, QueueDepth: 4})
	st, code := submit(t, ts, sub)
	if code != http.StatusAccepted && code != http.StatusOK {
		t.Fatalf("reference submit: status %d", code)
	}
	if fin := waitTerminal(t, ts, st.ID); fin.State != StateDone {
		t.Fatalf("reference run ended %q (%s)", fin.State, fin.Error)
	}
	return getReport(t, ts, st.ID)
}

// TestCrashRecovery is the headline durability scenario: finished and
// in-flight jobs survive a kill plus on-disk damage, recover without
// loss, and the resumed run is bit-identical to an uninterrupted one.
func TestCrashRecovery(t *testing.T) {
	dir := t.TempDir()
	srv, ts := durableServer(t, dir, Config{Workers: 2, QueueDepth: 16, CheckpointEvery: 500})

	// A quick job runs to completion — its result must survive verbatim.
	quick, code := submit(t, ts, tinySubmission())
	if code != http.StatusAccepted {
		t.Fatalf("quick submit: status %d", code)
	}
	if fin := waitTerminal(t, ts, quick.ID); fin.State != StateDone {
		t.Fatalf("quick job ended %q (%s)", fin.State, fin.Error)
	}
	quickReport := getReport(t, ts, quick.ID)

	// A long job gets caught mid-run, after at least one checkpoint.
	long, code := submit(t, ts, longSubmission())
	if code != http.StatusAccepted {
		t.Fatalf("long submit: status %d", code)
	}
	waitForCheckpoint(t, dir, long.ID)

	srv.crashForTest()
	ts.Close()

	// Vandalize the data dir the way real crashes do: a torn checkpoint
	// temp file, a corrupt (but complete) journal line, and a torn final
	// line from a write cut off mid-record.
	if err := os.WriteFile(filepath.Join(dir, "checkpoints", "junk.snap.tmp123"), []byte("torn"), 0o644); err != nil {
		t.Fatal(err)
	}
	jf, err := os.OpenFile(filepath.Join(dir, "journal.log"), os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := jf.WriteString("{\"v\":1,\"type\":\"nonsense\",\"id\":\"jx\"}\n{\"v\":1,\"type\":\"state\",\"id\":\"j00"); err != nil {
		t.Fatal(err)
	}
	jf.Close()

	// Restart on the same directory.
	srv2, ts2 := durableServer(t, dir, Config{Workers: 2, QueueDepth: 16, CheckpointEvery: 500})
	defer ts2.Close()
	defer srv2.crashForTest()

	// The finished job is back, done, with the exact same bytes, without
	// re-running (its submission timestamp was restored from the journal).
	if st := getStatus(t, ts2, quick.ID); st.State != StateDone {
		t.Fatalf("recovered quick job state %q, want done", st.State)
	} else if st.SubmittedAt != quick.SubmittedAt {
		t.Errorf("recovered quick job submitted_unix_ms %d, want %d (journal timestamp)", st.SubmittedAt, quick.SubmittedAt)
	}
	if got := getReport(t, ts2, quick.ID); !bytes.Equal(got, quickReport) {
		t.Error("recovered quick job report differs from the original bytes")
	}

	// The interrupted job finishes from its checkpoint, bit-identical to
	// an uninterrupted run of the same spec.
	if fin := waitTerminal(t, ts2, long.ID); fin.State != StateDone {
		t.Fatalf("recovered long job ended %q (%s)", fin.State, fin.Error)
	}
	if got, want := getReport(t, ts2, long.ID), referenceReport(t, longSubmission()); !bytes.Equal(got, want) {
		t.Error("resumed run is not bit-identical to an uninterrupted run")
	}

	// The result cache was warmed from disk: resubmitting the quick spec
	// answers 200 from cache, byte-identical.
	rerun, code := submit(t, ts2, tinySubmission())
	if code != http.StatusOK || !rerun.Cached {
		t.Errorf("resubmit after recovery: status %d cached=%v, want 200 cached", code, rerun.Cached)
	}

	// Damage accounting: exactly the planted line quarantined, the torn
	// tail dropped, the temp debris swept.
	st := srv2.stats()
	if !st.Durable || st.JournalReplays == 0 || st.JobsRecovered == 0 {
		t.Errorf("stats after recovery: durable=%v replayed=%d recovered=%d", st.Durable, st.JournalReplays, st.JobsRecovered)
	}
	if st.RecordsQuarantined != 1 {
		t.Errorf("records_quarantined = %d, want 1", st.RecordsQuarantined)
	}
	if q, err := os.ReadFile(filepath.Join(dir, "journal.quarantine")); err != nil || !bytes.Contains(q, []byte("nonsense")) {
		t.Errorf("quarantine file missing the corrupt line (err=%v)", err)
	}
	if debris, _ := filepath.Glob(filepath.Join(dir, "checkpoints", "*.tmp*")); len(debris) != 0 {
		t.Errorf("temp debris not swept: %v", debris)
	}
}

// TestRecoveryRetriesCorruptCheckpoint: a checkpoint whose body was
// corrupted on disk (framing intact, engine CRC broken) must not fail
// the job — the engine refuses the snapshot, the server drops it and
// retries from scratch through the backoff schedule, and the result is
// still bit-identical.
func TestRecoveryRetriesCorruptCheckpoint(t *testing.T) {
	dir := t.TempDir()
	srv, ts := durableServer(t, dir, Config{Workers: 1, QueueDepth: 4, CheckpointEvery: 500})

	long, code := submit(t, ts, longSubmission())
	if code != http.StatusAccepted {
		t.Fatalf("submit: status %d", code)
	}
	waitForCheckpoint(t, dir, long.ID)
	srv.crashForTest()
	ts.Close()

	// Flip the last byte: that's inside the engine snapshot's trailing
	// CRC, so the store-level framing still parses and recovery hands the
	// engine a snapshot it will reject at resume time.
	path := filepath.Join(dir, "checkpoints", long.ID+".snap")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-1] ^= 0xFF
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	srv2, ts2 := durableServer(t, dir, Config{Workers: 1, QueueDepth: 4, CheckpointEvery: 500})
	defer ts2.Close()
	defer srv2.crashForTest()

	if fin := waitTerminal(t, ts2, long.ID); fin.State != StateDone {
		t.Fatalf("job ended %q (%s), want done via retry-from-scratch", fin.State, fin.Error)
	}
	if st := srv2.stats(); st.JobsRetried < 1 {
		t.Errorf("jobs_retried = %d, want >= 1", st.JobsRetried)
	}
	if got, want := getReport(t, ts2, long.ID), referenceReport(t, longSubmission()); !bytes.Equal(got, want) {
		t.Error("retried run is not bit-identical to an uninterrupted run")
	}
}
