// Package serve is the long-running simulation service behind
// cmd/dfly-serve: an HTTP/JSON façade over internal/core hardened for
// unattended operation. Jobs are validated at submission, queued onto a
// bounded queue (full queue → 429 + Retry-After, never an unbounded
// backlog), executed on a fixed worker set with per-job timeouts and
// panic isolation (a crashing job fails structurally; the server keeps
// serving), observable live over SSE, and answered from an LRU result
// cache when an identical job (by canonical hash — see JobSpec.Hash)
// already ran. Shutdown drains: in-flight jobs get a deadline to finish,
// then are canceled through the same context plumbing the engine
// observes at cycle-batch checkpoints, and the accounting guarantees no
// accepted job is ever silently lost.
//
// With Config.DataDir the server is additionally durable (see store.go
// and recover.go): accepted jobs and their state transitions are
// journaled write-ahead, finished reports are persisted content-
// addressed, running jobs checkpoint their engine state periodically,
// and a process restarted on the same directory replays the journal —
// finished jobs keep their exact result bytes, interrupted jobs
// re-enqueue and resume from their last checkpoint, bit-identical to
// never having crashed.
package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"net/http"
	"strconv"
	"sync"
	"time"

	"context"

	"dragonfly/internal/parallel"
	"dragonfly/internal/topology"
	"dragonfly/internal/traffic"
	"dragonfly/internal/workload"
)

// Config parameterises a Server. Zero values take the stated defaults.
type Config struct {
	// QueueDepth bounds the submission queue (default 64). A full queue
	// rejects with 429 and a Retry-After hint — backpressure, not
	// buffering: memory stays bounded no matter how fast clients submit.
	QueueDepth int
	// Workers is the number of jobs executed concurrently (default 2).
	// Each worker's simulation work additionally respects the machine-
	// wide Pool, so Workers bounds jobs in flight while the pool bounds
	// simulations in flight.
	Workers int
	// JobTimeout caps each job's execution (default 2m; negative
	// disables). A submission's timeout_ms may shorten it, never extend.
	JobTimeout time.Duration
	// MaxBody caps a submission body in bytes (default 1 MiB).
	MaxBody int64
	// CacheSize is the result-cache capacity in reports (default 256;
	// negative disables caching).
	CacheSize int
	// Pool is the simulation worker pool (nil = parallel.Default()).
	Pool *parallel.Pool
	// Limits bounds what one submission may ask for. The zero value is
	// unlimited.
	Limits Limits
	// DataDir, when non-empty, makes the server durable: accepted jobs,
	// state transitions and results are journaled under it (write-ahead,
	// fsync'd before the submission is acknowledged), running "run" jobs
	// checkpoint their engine state every CheckpointEvery cycles, and a
	// server restarted on the same directory replays the journal —
	// finished jobs keep their exact result bytes, interrupted jobs
	// re-enqueue and resume from their last checkpoint. Empty (the
	// default) means fully in-memory. Use Open, not New: replay can fail.
	DataDir string
	// CheckpointEvery is the cycle interval between durable checkpoints
	// of running jobs (default 5000; only meaningful with DataDir).
	CheckpointEvery int64
	// RetryMax caps re-execution attempts after a transient failure —
	// an unusable recovery checkpoint, say (default 3; negative
	// disables retries).
	RetryMax int
	// Logf receives operational warnings: journal quarantines, failed
	// durable writes, recovery decisions. Default log.Printf.
	Logf func(format string, args ...any)
}

func (c Config) withDefaults() Config {
	if c.QueueDepth == 0 {
		c.QueueDepth = 64
	}
	if c.Workers == 0 {
		c.Workers = 2
	}
	if c.JobTimeout == 0 {
		c.JobTimeout = 2 * time.Minute
	}
	if c.MaxBody == 0 {
		c.MaxBody = 1 << 20
	}
	if c.CacheSize == 0 {
		c.CacheSize = 256
	}
	if c.Pool == nil {
		c.Pool = parallel.Default()
	}
	if c.CheckpointEvery == 0 {
		c.CheckpointEvery = 5000
	}
	if c.RetryMax == 0 {
		c.RetryMax = 3
	}
	if c.Logf == nil {
		c.Logf = log.Printf
	}
	return c
}

// Server is the simulation service: an http.Handler plus the worker set
// and queue behind it. Create with New, serve via any http.Server, stop
// with Shutdown.
type Server struct {
	cfg   Config
	pool  *parallel.Pool
	mux   *http.ServeMux
	cache *cache

	// baseCtx parents every job context; baseCancel is the drain
	// deadline's hammer — it cancels all running jobs at once.
	baseCtx    context.Context
	baseCancel context.CancelFunc

	queue    chan *Job
	quit     chan struct{} // closed to stop idle workers
	workerWG sync.WaitGroup
	jobWG    sync.WaitGroup // one count per accepted, non-terminal job

	// store is the durable state (nil for an in-memory server).
	store *store

	mu       sync.Mutex
	draining bool
	ready    bool // set once Open finished (journal replayed, workers up)
	crashed  bool // crashForTest ran; the server is a corpse
	jobs     map[string]*Job
	order    []string // submission order, for GET /v1/jobs
	nextID   uint64
	// retryTimers holds the pending backoff timers of deferred
	// re-executions, so shutdown and the crash simulation can stop them.
	retryTimers map[string]*time.Timer

	submitted int64
	rejected  int64 // 429s (backpressure), not validation failures

	journalReplays int64 // journal records replayed at startup
	jobsRecovered  int64 // jobs re-enqueued or re-finished by recovery
	jobsRetried    int64 // transient-failure re-executions scheduled

	// testHook, when set, runs inside each job's panic-isolation scope
	// just before execution — the load test injects a panicking job
	// through it.
	testHook func(*Job)
}

// New builds an in-memory Server and starts its workers. A durable
// server (Config.DataDir) must use Open instead — journal replay can
// fail, and New has no error to return; it panics if handed a DataDir.
func New(cfg Config) *Server {
	if cfg.DataDir != "" {
		panic("serve.New: Config.DataDir requires Open (journal replay can fail)")
	}
	s, err := Open(cfg)
	if err != nil {
		panic(err) // unreachable: only the DataDir path can fail
	}
	return s
}

// Open builds a Server and starts its workers. With Config.DataDir it
// first replays the journal: jobs the previous process finished come
// back terminal with their exact result bytes (and warm the cache),
// jobs it had merely accepted are re-enqueued — resuming from their
// last engine checkpoint where one exists — before any new submission
// can jump the line.
func Open(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:         cfg,
		pool:        cfg.Pool,
		cache:       newCache(cfg.CacheSize),
		queue:       make(chan *Job, cfg.QueueDepth),
		quit:        make(chan struct{}),
		jobs:        make(map[string]*Job),
		retryTimers: make(map[string]*time.Timer),
	}
	s.baseCtx, s.baseCancel = context.WithCancel(context.Background())

	s.mux = http.NewServeMux()
	s.mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	s.mux.HandleFunc("GET /v1/jobs", s.handleList)
	s.mux.HandleFunc("GET /v1/jobs/{id}", s.handleStatus)
	s.mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleCancel)
	s.mux.HandleFunc("GET /v1/jobs/{id}/events", s.handleEvents)
	s.mux.HandleFunc("GET /v1/jobs/{id}/report", s.handleReport)
	s.mux.HandleFunc("GET /v1/topologies", s.handleTopologies)
	s.mux.HandleFunc("GET /v1/traffic", s.handleTraffic)
	s.mux.HandleFunc("GET /v1/stats", s.handleStats)
	s.mux.HandleFunc("GET /healthz", s.handleHealth)
	s.mux.HandleFunc("GET /readyz", s.handleReady)

	if cfg.DataDir != "" {
		st, rep, err := openStore(cfg.DataDir, cfg.Logf)
		if err != nil {
			return nil, err
		}
		s.store = st
		s.recoverJobs(rep)
	}

	s.workerWG.Add(cfg.Workers)
	for i := 0; i < cfg.Workers; i++ {
		go s.worker()
	}
	s.mu.Lock()
	s.ready = true
	s.mu.Unlock()
	return s, nil
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// Shutdown drains the server: new submissions are refused with 503,
// jobs already accepted get until ctx's deadline to finish, and past
// the deadline everything still alive is canceled — queued jobs
// directly, running jobs through their contexts, which the engine
// observes within one cycle batch. Shutdown returns once every
// accepted job has reached a terminal state and every worker has
// exited; no accepted job is ever lost. It is not safe to call
// Shutdown concurrently with itself.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	s.draining = true
	s.mu.Unlock()

	drained := make(chan struct{})
	go func() {
		s.jobWG.Wait()
		close(drained)
	}()

	var err error
	select {
	case <-drained:
	case <-ctx.Done():
		err = ctx.Err()
		// Deadline passed: settle queued jobs in place and cancel
		// running ones. Workers draining the queue will see the
		// already-terminal jobs and skip them.
		s.mu.Lock()
		for _, job := range s.jobs {
			job.Cancel("server shutting down")
		}
		s.mu.Unlock()
		s.baseCancel()
		<-drained
	}

	close(s.quit)
	s.workerWG.Wait()
	s.baseCancel()
	s.stopRetryTimers()
	if s.store != nil {
		s.store.detach()
	}
	return err
}

// --- submission -----------------------------------------------------

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBody)
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	var sub Submission
	if err := dec.Decode(&sub); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			writeError(w, http.StatusRequestEntityTooLarge,
				fmt.Sprintf("request body over the %d-byte limit", tooBig.Limit))
			return
		}
		writeError(w, http.StatusBadRequest, "bad JSON: "+err.Error())
		return
	}
	spec, err := sub.Normalize(s.cfg.Limits)
	if err != nil {
		var re *RequestError
		if errors.As(err, &re) {
			writeError(w, re.Status, re.Msg)
		} else {
			writeError(w, http.StatusBadRequest, err.Error())
		}
		return
	}
	hash := spec.Hash()

	// Cache hit: the job is born terminal — no queue slot, no worker.
	if report, ok := s.cache.get(hash); ok {
		job, ok := s.accept(spec, hash)
		if !ok {
			writeError(w, http.StatusServiceUnavailable, "server is shutting down")
			return
		}
		s.index(job)
		s.journalAccepted(job)
		job.finishDone(report, true)
		writeJSON(w, http.StatusOK, job.Status())
		return
	}

	job, ok := s.accept(spec, hash)
	if !ok {
		writeError(w, http.StatusServiceUnavailable, "server is shutting down")
		return
	}
	select {
	case s.queue <- job:
		s.index(job)
		s.journalAccepted(job)
		writeJSON(w, http.StatusAccepted, job.Status())
	default:
		// Refused: the job was never indexed, so nothing else holds a
		// reference — releasing its drain count here is the only Done it
		// will ever get.
		s.jobWG.Done()
		s.mu.Lock()
		s.rejected++
		s.mu.Unlock()
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusTooManyRequests,
			fmt.Sprintf("job queue full (%d pending): retry later", s.cfg.QueueDepth))
	}
}

// accept creates a job and takes its drain count under the submission
// lock. The draining check and the jobWG increment happen atomically,
// so Shutdown can never begin waiting between a job's acceptance and
// its accounting: once draining is set, no new count appears. The job
// is not yet visible to clients or to Shutdown's cancel loop — index
// publishes it once its fate (queued, or born-cached done) is settled;
// a job refused by a full queue is never published at all.
func (s *Server) accept(spec JobSpec, hash string) (*Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		return nil, false
	}
	s.nextID++
	id := fmt.Sprintf("j%06d", s.nextID)
	s.jobWG.Add(1)
	job := newJob(id, spec, hash, nil)
	job.onTerminal = s.terminalHook(job)
	return job, true
}

// index publishes an accepted job to the lookup and listing tables.
func (s *Server) index(job *Job) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.jobs[job.ID] = job
	s.order = append(s.order, job.ID)
	s.submitted++
}

// --- queries --------------------------------------------------------

func (s *Server) lookup(r *http.Request) (*Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	job, ok := s.jobs[r.PathValue("id")]
	return job, ok
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	out := make([]Status, 0, len(s.order))
	for _, id := range s.order {
		out = append(out, s.jobs[id].Status())
	}
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	job, ok := s.lookup(r)
	if !ok {
		writeError(w, http.StatusNotFound, "no such job")
		return
	}
	writeJSON(w, http.StatusOK, job.Status())
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	job, ok := s.lookup(r)
	if !ok {
		writeError(w, http.StatusNotFound, "no such job")
		return
	}
	job.Cancel("canceled by client")
	writeJSON(w, http.StatusOK, job.Status())
}

func (s *Server) handleReport(w http.ResponseWriter, r *http.Request) {
	job, ok := s.lookup(r)
	if !ok {
		writeError(w, http.StatusNotFound, "no such job")
		return
	}
	st := job.Status()
	if st.State != StateDone {
		writeError(w, http.StatusConflict,
			fmt.Sprintf("job is %s: the report exists only for state %q", st.State, StateDone))
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(job.Report())
}

// handleEvents streams the job's lifecycle as server-sent events: an
// immediate "state" snapshot, then live "state"/"window"/"point" events
// until the job goes terminal or the client disconnects. A slow client
// never stalls the simulation — events overflowing the subscriber
// buffer are dropped and counted.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	job, ok := s.lookup(r)
	if !ok {
		writeError(w, http.StatusNotFound, "no such job")
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusNotImplemented, "streaming unsupported")
		return
	}
	ch, snap := job.subscribe(64)
	defer job.unsubscribe(ch)

	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)
	writeSSE(w, Event{Type: "state", Data: snap})
	fl.Flush()

	for {
		select {
		case ev, open := <-ch:
			if !open {
				return // terminal transition closed the feed
			}
			writeSSE(w, ev)
			fl.Flush()
		case <-r.Context().Done():
			return // client went away; unsubscribe drops the buffer
		}
	}
}

func writeSSE(w http.ResponseWriter, ev Event) {
	data, err := json.Marshal(ev.Data)
	if err != nil {
		data = []byte(`{"error":"unencodable event"}`)
	}
	fmt.Fprintf(w, "event: %s\ndata: %s\n\n", ev.Type, data)
}

// --- introspection --------------------------------------------------

// Stats is the GET /v1/stats payload.
type Stats struct {
	Submitted   int64         `json:"submitted"`
	Rejected    int64         `json:"rejected_429"`
	ByState     map[State]int `json:"by_state"`
	QueueLen    int           `json:"queue_len"`
	QueueDepth  int           `json:"queue_depth"`
	Workers     int           `json:"workers"`
	Draining    bool          `json:"draining"`
	Ready       bool          `json:"ready"`
	CacheSize   int           `json:"cache_entries"`
	CacheHits   int64         `json:"cache_hits"`
	CacheMisses int64         `json:"cache_misses"`
	// CacheEvictions counts reports pushed out of the LRU by capacity.
	CacheEvictions int64 `json:"cache_evictions"`
	// Durable reports whether the server runs with a DataDir; the
	// counters below are only ever non-zero when it does.
	Durable bool `json:"durable"`
	// JournalReplays counts journal records replayed at startup.
	JournalReplays int64 `json:"journal_records_replayed"`
	// JobsRecovered counts jobs the replay re-enqueued or re-finished.
	JobsRecovered int64 `json:"jobs_recovered"`
	// JobsRetried counts transient-failure re-executions scheduled.
	JobsRetried int64 `json:"jobs_retried"`
	// RecordsQuarantined counts corrupt journal lines moved aside.
	RecordsQuarantined int64 `json:"records_quarantined"`
}

func (s *Server) stats() Stats {
	s.mu.Lock()
	st := Stats{
		Submitted:      s.submitted,
		Rejected:       s.rejected,
		ByState:        make(map[State]int),
		QueueLen:       len(s.queue),
		QueueDepth:     s.cfg.QueueDepth,
		Workers:        s.cfg.Workers,
		Draining:       s.draining,
		Ready:          s.ready && !s.draining,
		Durable:        s.store != nil,
		JournalReplays: s.journalReplays,
		JobsRecovered:  s.jobsRecovered,
		JobsRetried:    s.jobsRetried,
	}
	for _, job := range s.jobs {
		st.ByState[job.Status().State]++
	}
	s.mu.Unlock()
	st.CacheSize, st.CacheHits, st.CacheMisses, st.CacheEvictions = s.cache.counters()
	if s.store != nil {
		st.RecordsQuarantined = s.store.quarantinedCount()
	}
	return st
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.stats())
}

// TopologyInfo is one entry of the GET /v1/topologies listing: a
// registered topology family and its parameter schema, enough for a
// client to compose a valid "topology" stanza without guessing.
type TopologyInfo struct {
	Name   string               `json:"name"`
	Doc    string               `json:"doc"`
	Params []topology.ParamSpec `json:"params"`
}

func (s *Server) handleTopologies(w http.ResponseWriter, r *http.Request) {
	fams := topology.Families()
	out := make([]TopologyInfo, len(fams))
	for i, f := range fams {
		out[i] = TopologyInfo{Name: f.Name, Doc: f.Doc, Params: f.Params}
	}
	writeJSON(w, http.StatusOK, map[string]any{"topologies": out})
}

// TrafficInfo is one entry of the GET /v1/traffic listing: a registered
// traffic-pattern family and its parameter schema, for the submission's
// "traffic"/"traffic_params" stanza.
type TrafficInfo struct {
	Name   string              `json:"name"`
	Doc    string              `json:"doc"`
	Params []traffic.ParamSpec `json:"params"`
}

// WorkloadInfo is the arrival-process half of the listing, for the
// "workload"/"workload_params" stanza.
type WorkloadInfo struct {
	Name   string               `json:"name"`
	Doc    string               `json:"doc"`
	Params []workload.ParamSpec `json:"params"`
}

// handleTraffic lists both halves of the workload registry: traffic
// families (where packets go) and arrival-process families (when they
// are offered), each with its parameter schema.
func (s *Server) handleTraffic(w http.ResponseWriter, r *http.Request) {
	tfams := traffic.Families()
	tout := make([]TrafficInfo, len(tfams))
	for i, f := range tfams {
		tout[i] = TrafficInfo{Name: f.Name, Doc: f.Doc, Params: f.Params}
	}
	wfams := workload.Families()
	wout := make([]WorkloadInfo, len(wfams))
	for i, f := range wfams {
		wout[i] = WorkloadInfo{Name: f.Name, Doc: f.Doc, Params: f.Params}
	}
	writeJSON(w, http.StatusOK, map[string]any{"traffic": tout, "workloads": wout})
}

// handleHealth is the liveness probe: 200 for as long as the process
// serves HTTP at all, draining or not. Whether the server should
// receive traffic is /readyz's question.
func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// handleReady is the readiness probe: 503 until startup (including the
// journal replay of a durable server) has finished, and 503 again once
// draining begins — the signal for a load balancer to stop routing
// new work here while the process stays alive to finish what it has.
func (s *Server) handleReady(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	ready, draining := s.ready, s.draining
	s.mu.Unlock()
	switch {
	case draining:
		writeError(w, http.StatusServiceUnavailable, "draining")
	case !ready:
		writeError(w, http.StatusServiceUnavailable, "starting: journal replay in progress")
	default:
		writeJSON(w, http.StatusOK, map[string]string{"status": "ready"})
	}
}

// --- JSON plumbing --------------------------------------------------

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, map[string]any{"error": msg, "status": strconv.Itoa(status)})
}
