// Package serve is the long-running simulation service behind
// cmd/dfly-serve: an HTTP/JSON façade over internal/core hardened for
// unattended operation. Jobs are validated at submission, queued onto a
// bounded queue (full queue → 429 + Retry-After, never an unbounded
// backlog), executed on a fixed worker set with per-job timeouts and
// panic isolation (a crashing job fails structurally; the server keeps
// serving), observable live over SSE, and answered from an LRU result
// cache when an identical job (by canonical hash — see JobSpec.Hash)
// already ran. Shutdown drains: in-flight jobs get a deadline to finish,
// then are canceled through the same context plumbing the engine
// observes at cycle-batch checkpoints, and the accounting guarantees no
// accepted job is ever silently lost.
package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"sync"
	"time"

	"context"

	"dragonfly/internal/parallel"
	"dragonfly/internal/topology"
)

// Config parameterises a Server. Zero values take the stated defaults.
type Config struct {
	// QueueDepth bounds the submission queue (default 64). A full queue
	// rejects with 429 and a Retry-After hint — backpressure, not
	// buffering: memory stays bounded no matter how fast clients submit.
	QueueDepth int
	// Workers is the number of jobs executed concurrently (default 2).
	// Each worker's simulation work additionally respects the machine-
	// wide Pool, so Workers bounds jobs in flight while the pool bounds
	// simulations in flight.
	Workers int
	// JobTimeout caps each job's execution (default 2m; negative
	// disables). A submission's timeout_ms may shorten it, never extend.
	JobTimeout time.Duration
	// MaxBody caps a submission body in bytes (default 1 MiB).
	MaxBody int64
	// CacheSize is the result-cache capacity in reports (default 256;
	// negative disables caching).
	CacheSize int
	// Pool is the simulation worker pool (nil = parallel.Default()).
	Pool *parallel.Pool
	// Limits bounds what one submission may ask for. The zero value is
	// unlimited.
	Limits Limits
}

func (c Config) withDefaults() Config {
	if c.QueueDepth == 0 {
		c.QueueDepth = 64
	}
	if c.Workers == 0 {
		c.Workers = 2
	}
	if c.JobTimeout == 0 {
		c.JobTimeout = 2 * time.Minute
	}
	if c.MaxBody == 0 {
		c.MaxBody = 1 << 20
	}
	if c.CacheSize == 0 {
		c.CacheSize = 256
	}
	if c.Pool == nil {
		c.Pool = parallel.Default()
	}
	return c
}

// Server is the simulation service: an http.Handler plus the worker set
// and queue behind it. Create with New, serve via any http.Server, stop
// with Shutdown.
type Server struct {
	cfg   Config
	pool  *parallel.Pool
	mux   *http.ServeMux
	cache *cache

	// baseCtx parents every job context; baseCancel is the drain
	// deadline's hammer — it cancels all running jobs at once.
	baseCtx    context.Context
	baseCancel context.CancelFunc

	queue    chan *Job
	quit     chan struct{} // closed to stop idle workers
	workerWG sync.WaitGroup
	jobWG    sync.WaitGroup // one count per accepted, non-terminal job

	mu       sync.Mutex
	draining bool
	jobs     map[string]*Job
	order    []string // submission order, for GET /v1/jobs
	nextID   uint64

	submitted int64
	rejected  int64 // 429s (backpressure), not validation failures

	// testHook, when set, runs inside each job's panic-isolation scope
	// just before execution — the load test injects a panicking job
	// through it.
	testHook func(*Job)
}

// New builds a Server and starts its workers.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:   cfg,
		pool:  cfg.Pool,
		cache: newCache(cfg.CacheSize),
		queue: make(chan *Job, cfg.QueueDepth),
		quit:  make(chan struct{}),
		jobs:  make(map[string]*Job),
	}
	s.baseCtx, s.baseCancel = context.WithCancel(context.Background())

	s.mux = http.NewServeMux()
	s.mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	s.mux.HandleFunc("GET /v1/jobs", s.handleList)
	s.mux.HandleFunc("GET /v1/jobs/{id}", s.handleStatus)
	s.mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleCancel)
	s.mux.HandleFunc("GET /v1/jobs/{id}/events", s.handleEvents)
	s.mux.HandleFunc("GET /v1/jobs/{id}/report", s.handleReport)
	s.mux.HandleFunc("GET /v1/topologies", s.handleTopologies)
	s.mux.HandleFunc("GET /v1/stats", s.handleStats)
	s.mux.HandleFunc("GET /healthz", s.handleHealth)

	s.workerWG.Add(cfg.Workers)
	for i := 0; i < cfg.Workers; i++ {
		go s.worker()
	}
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// Shutdown drains the server: new submissions are refused with 503,
// jobs already accepted get until ctx's deadline to finish, and past
// the deadline everything still alive is canceled — queued jobs
// directly, running jobs through their contexts, which the engine
// observes within one cycle batch. Shutdown returns once every
// accepted job has reached a terminal state and every worker has
// exited; no accepted job is ever lost. It is not safe to call
// Shutdown concurrently with itself.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	s.draining = true
	s.mu.Unlock()

	drained := make(chan struct{})
	go func() {
		s.jobWG.Wait()
		close(drained)
	}()

	var err error
	select {
	case <-drained:
	case <-ctx.Done():
		err = ctx.Err()
		// Deadline passed: settle queued jobs in place and cancel
		// running ones. Workers draining the queue will see the
		// already-terminal jobs and skip them.
		s.mu.Lock()
		for _, job := range s.jobs {
			job.Cancel("server shutting down")
		}
		s.mu.Unlock()
		s.baseCancel()
		<-drained
	}

	close(s.quit)
	s.workerWG.Wait()
	s.baseCancel()
	return err
}

// --- submission -----------------------------------------------------

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBody)
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	var sub Submission
	if err := dec.Decode(&sub); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			writeError(w, http.StatusRequestEntityTooLarge,
				fmt.Sprintf("request body over the %d-byte limit", tooBig.Limit))
			return
		}
		writeError(w, http.StatusBadRequest, "bad JSON: "+err.Error())
		return
	}
	spec, err := sub.Normalize(s.cfg.Limits)
	if err != nil {
		var re *RequestError
		if errors.As(err, &re) {
			writeError(w, re.Status, re.Msg)
		} else {
			writeError(w, http.StatusBadRequest, err.Error())
		}
		return
	}
	hash := spec.Hash()

	// Cache hit: the job is born terminal — no queue slot, no worker.
	if report, ok := s.cache.get(hash); ok {
		job, ok := s.accept(spec, hash)
		if !ok {
			writeError(w, http.StatusServiceUnavailable, "server is shutting down")
			return
		}
		s.index(job)
		job.finishDone(report, true)
		writeJSON(w, http.StatusOK, job.Status())
		return
	}

	job, ok := s.accept(spec, hash)
	if !ok {
		writeError(w, http.StatusServiceUnavailable, "server is shutting down")
		return
	}
	select {
	case s.queue <- job:
		s.index(job)
		writeJSON(w, http.StatusAccepted, job.Status())
	default:
		// Refused: the job was never indexed, so nothing else holds a
		// reference — releasing its drain count here is the only Done it
		// will ever get.
		s.jobWG.Done()
		s.mu.Lock()
		s.rejected++
		s.mu.Unlock()
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusTooManyRequests,
			fmt.Sprintf("job queue full (%d pending): retry later", s.cfg.QueueDepth))
	}
}

// accept creates a job and takes its drain count under the submission
// lock. The draining check and the jobWG increment happen atomically,
// so Shutdown can never begin waiting between a job's acceptance and
// its accounting: once draining is set, no new count appears. The job
// is not yet visible to clients or to Shutdown's cancel loop — index
// publishes it once its fate (queued, or born-cached done) is settled;
// a job refused by a full queue is never published at all.
func (s *Server) accept(spec JobSpec, hash string) (*Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		return nil, false
	}
	s.nextID++
	id := fmt.Sprintf("j%06d", s.nextID)
	s.jobWG.Add(1)
	return newJob(id, spec, hash, s.jobWG.Done), true
}

// index publishes an accepted job to the lookup and listing tables.
func (s *Server) index(job *Job) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.jobs[job.ID] = job
	s.order = append(s.order, job.ID)
	s.submitted++
}

// --- queries --------------------------------------------------------

func (s *Server) lookup(r *http.Request) (*Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	job, ok := s.jobs[r.PathValue("id")]
	return job, ok
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	out := make([]Status, 0, len(s.order))
	for _, id := range s.order {
		out = append(out, s.jobs[id].Status())
	}
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	job, ok := s.lookup(r)
	if !ok {
		writeError(w, http.StatusNotFound, "no such job")
		return
	}
	writeJSON(w, http.StatusOK, job.Status())
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	job, ok := s.lookup(r)
	if !ok {
		writeError(w, http.StatusNotFound, "no such job")
		return
	}
	job.Cancel("canceled by client")
	writeJSON(w, http.StatusOK, job.Status())
}

func (s *Server) handleReport(w http.ResponseWriter, r *http.Request) {
	job, ok := s.lookup(r)
	if !ok {
		writeError(w, http.StatusNotFound, "no such job")
		return
	}
	st := job.Status()
	if st.State != StateDone {
		writeError(w, http.StatusConflict,
			fmt.Sprintf("job is %s: the report exists only for state %q", st.State, StateDone))
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(job.Report())
}

// handleEvents streams the job's lifecycle as server-sent events: an
// immediate "state" snapshot, then live "state"/"window"/"point" events
// until the job goes terminal or the client disconnects. A slow client
// never stalls the simulation — events overflowing the subscriber
// buffer are dropped and counted.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	job, ok := s.lookup(r)
	if !ok {
		writeError(w, http.StatusNotFound, "no such job")
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusNotImplemented, "streaming unsupported")
		return
	}
	ch, snap := job.subscribe(64)
	defer job.unsubscribe(ch)

	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)
	writeSSE(w, Event{Type: "state", Data: snap})
	fl.Flush()

	for {
		select {
		case ev, open := <-ch:
			if !open {
				return // terminal transition closed the feed
			}
			writeSSE(w, ev)
			fl.Flush()
		case <-r.Context().Done():
			return // client went away; unsubscribe drops the buffer
		}
	}
}

func writeSSE(w http.ResponseWriter, ev Event) {
	data, err := json.Marshal(ev.Data)
	if err != nil {
		data = []byte(`{"error":"unencodable event"}`)
	}
	fmt.Fprintf(w, "event: %s\ndata: %s\n\n", ev.Type, data)
}

// --- introspection --------------------------------------------------

// Stats is the GET /v1/stats payload.
type Stats struct {
	Submitted   int64         `json:"submitted"`
	Rejected    int64         `json:"rejected_429"`
	ByState     map[State]int `json:"by_state"`
	QueueLen    int           `json:"queue_len"`
	QueueDepth  int           `json:"queue_depth"`
	Workers     int           `json:"workers"`
	Draining    bool          `json:"draining"`
	CacheSize   int           `json:"cache_entries"`
	CacheHits   int64         `json:"cache_hits"`
	CacheMisses int64         `json:"cache_misses"`
}

func (s *Server) stats() Stats {
	s.mu.Lock()
	st := Stats{
		Submitted:  s.submitted,
		Rejected:   s.rejected,
		ByState:    make(map[State]int),
		QueueLen:   len(s.queue),
		QueueDepth: s.cfg.QueueDepth,
		Workers:    s.cfg.Workers,
		Draining:   s.draining,
	}
	for _, job := range s.jobs {
		st.ByState[job.Status().State]++
	}
	s.mu.Unlock()
	st.CacheSize, st.CacheHits, st.CacheMisses = s.cache.counters()
	return st
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.stats())
}

// TopologyInfo is one entry of the GET /v1/topologies listing: a
// registered topology family and its parameter schema, enough for a
// client to compose a valid "topology" stanza without guessing.
type TopologyInfo struct {
	Name   string               `json:"name"`
	Doc    string               `json:"doc"`
	Params []topology.ParamSpec `json:"params"`
}

func (s *Server) handleTopologies(w http.ResponseWriter, r *http.Request) {
	fams := topology.Families()
	out := make([]TopologyInfo, len(fams))
	for i, f := range fams {
		out[i] = TopologyInfo{Name: f.Name, Doc: f.Doc, Params: f.Params}
	}
	writeJSON(w, http.StatusOK, map[string]any{"topologies": out})
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	draining := s.draining
	s.mu.Unlock()
	if draining {
		writeError(w, http.StatusServiceUnavailable, "draining")
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// --- JSON plumbing --------------------------------------------------

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, map[string]any{"error": msg, "status": strconv.Itoa(status)})
}
