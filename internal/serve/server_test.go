package serve

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// tinySubmission is a run small enough to finish in well under a
// second: the 2/4/2 nine-group dragonfly with short phases.
func tinySubmission() Submission {
	return Submission{
		Kind:      KindRun,
		Topology:  TopologySpec{P: 2, A: 4, H: 2},
		Algorithm: "MIN",
		Pattern:   "UR",
		Load:      0.1,
		Run:       RunSpec{Warmup: 50, Measure: 50, Drain: 1000},
	}
}

// testServer builds a Server plus an httptest front end and tears both
// down at test end (Shutdown first, so no job outlives the test).
func testServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	srv := New(cfg)
	ts := httptest.NewServer(srv)
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
		ts.Close()
	})
	return srv, ts
}

func submit(t *testing.T, ts *httptest.Server, sub Submission) (Status, int) {
	t.Helper()
	body, err := json.Marshal(sub)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	resp, err := ts.Client().Post(ts.URL+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST /v1/jobs: %v", err)
	}
	defer resp.Body.Close()
	var st Status
	if resp.StatusCode == http.StatusOK || resp.StatusCode == http.StatusAccepted {
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			t.Fatalf("decode submit response: %v", err)
		}
	}
	return st, resp.StatusCode
}

func getStatus(t *testing.T, ts *httptest.Server, id string) Status {
	t.Helper()
	resp, err := ts.Client().Get(ts.URL + "/v1/jobs/" + id)
	if err != nil {
		t.Fatalf("GET job: %v", err)
	}
	defer resp.Body.Close()
	var st Status
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatalf("decode status: %v", err)
	}
	return st
}

// waitTerminal polls a job until it leaves the queue/run states.
func waitTerminal(t *testing.T, ts *httptest.Server, id string) Status {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		st := getStatus(t, ts, id)
		if terminal(st.State) {
			return st
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("job %s did not reach a terminal state", id)
	return Status{}
}

func getReport(t *testing.T, ts *httptest.Server, id string) []byte {
	t.Helper()
	resp, err := ts.Client().Get(ts.URL + "/v1/jobs/" + id + "/report")
	if err != nil {
		t.Fatalf("GET report: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET report: status %d", resp.StatusCode)
	}
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatalf("read report: %v", err)
	}
	return buf.Bytes()
}

// TestSubmitWorkloadJobs runs the new workload stanza end to end: an
// ON/OFF bursty run and a trace replay both complete and report, the
// pattern label carries the arrival process, and an identical trace
// submission (reformatted) answers from the cache.
func TestSubmitWorkloadJobs(t *testing.T) {
	_, ts := testServer(t, Config{Workers: 2})

	onoff := tinySubmission()
	onoff.Workload = "onoff"
	onoff.WorkloadParams = map[string]int{"on": 20, "off": 60}
	st, code := submit(t, ts, onoff)
	if code != http.StatusAccepted {
		t.Fatalf("submit onoff: status %d, want 202", code)
	}
	if fin := waitTerminal(t, ts, st.ID); fin.State != StateDone {
		t.Fatalf("onoff job finished %q: %s", fin.State, fin.Error)
	} else if fin.Pattern != "UR+onoff" {
		t.Errorf("onoff job pattern label %q, want %q", fin.Pattern, "UR+onoff")
	}
	getReport(t, ts, st.ID)

	trace := tinySubmission()
	trace.Workload = "trace"
	trace.Trace = "0 0 5 3\n10 1 6 2\n"
	st, code = submit(t, ts, trace)
	if code != http.StatusAccepted {
		t.Fatalf("submit trace: status %d, want 202", code)
	}
	if fin := waitTerminal(t, ts, st.ID); fin.State != StateDone {
		t.Fatalf("trace job finished %q: %s", fin.State, fin.Error)
	}

	// Reformatted trace, same flows: must answer from the cache.
	again := tinySubmission()
	again.Workload = "trace"
	again.Trace = "# same\n0 0 5 3\n10  1 6 2\n"
	st2, _ := submit(t, ts, again)
	if st2.Hash != st.Hash {
		t.Errorf("reformatted trace hashed %s, original %s: want one cache entry", st2.Hash, st.Hash)
	}
	if fin := waitTerminal(t, ts, st2.ID); !fin.Cached {
		t.Errorf("reformatted trace re-simulated instead of hitting the cache")
	}
}

// TestTrafficListing pins GET /v1/traffic: both registry halves are
// listed with schemas, enough for a client to compose a submission.
func TestTrafficListing(t *testing.T) {
	_, ts := testServer(t, Config{Workers: 1})
	resp, err := ts.Client().Get(ts.URL + "/v1/traffic")
	if err != nil {
		t.Fatalf("GET /v1/traffic: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /v1/traffic: status %d", resp.StatusCode)
	}
	var body struct {
		Traffic   []TrafficInfo  `json:"traffic"`
		Workloads []WorkloadInfo `json:"workloads"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatalf("decode: %v", err)
	}
	tnames := map[string]bool{}
	for _, f := range body.Traffic {
		tnames[f.Name] = true
	}
	for _, want := range []string{"ur", "wc", "hotspot", "perm"} {
		if !tnames[want] {
			t.Errorf("traffic listing is missing family %q", want)
		}
	}
	wnames := map[string]bool{}
	var onoffParams int
	for _, f := range body.Workloads {
		wnames[f.Name] = true
		if f.Name == "onoff" {
			onoffParams = len(f.Params)
		}
	}
	for _, want := range []string{"bernoulli", "onoff", "drift", "collective", "trace"} {
		if !wnames[want] {
			t.Errorf("workload listing is missing family %q", want)
		}
	}
	if onoffParams == 0 {
		t.Error("onoff family listed without its parameter schema")
	}
}

func TestSubmitRunToCompletion(t *testing.T) {
	_, ts := testServer(t, Config{Workers: 2})
	st, code := submit(t, ts, tinySubmission())
	if code != http.StatusAccepted {
		t.Fatalf("submit status %d, want 202", code)
	}
	if st.State != StateQueued && st.State != StateRunning {
		t.Fatalf("fresh job state %q", st.State)
	}
	fin := waitTerminal(t, ts, st.ID)
	if fin.State != StateDone {
		t.Fatalf("job finished %q (%s: %s), want done", fin.State, fin.ErrorKind, fin.Error)
	}
	var rep struct {
		SchemaVersion int    `json:"schema_version"`
		Kind          string `json:"kind"`
		Points        []struct {
			Load   float64 `json:"load"`
			Result struct {
				Accepted float64 `json:"accepted"`
			} `json:"result"`
		} `json:"points"`
	}
	if err := json.Unmarshal(getReport(t, ts, st.ID), &rep); err != nil {
		t.Fatalf("report is not JSON: %v", err)
	}
	if rep.SchemaVersion != 1 || rep.Kind != "run" || len(rep.Points) != 1 {
		t.Errorf("report = version %d kind %q with %d points, want version 1 run with 1 point", rep.SchemaVersion, rep.Kind, len(rep.Points))
	}
	if rep.Points[0].Result.Accepted <= 0 {
		t.Errorf("accepted throughput %v, want > 0", rep.Points[0].Result.Accepted)
	}
}

func TestSubmitSweepToCompletion(t *testing.T) {
	_, ts := testServer(t, Config{Workers: 1})
	sub := tinySubmission()
	sub.Kind = KindSweep
	sub.Load = 0
	sub.Loads = []float64{0.05, 0.1}
	st, code := submit(t, ts, sub)
	if code != http.StatusAccepted {
		t.Fatalf("submit status %d, want 202", code)
	}
	fin := waitTerminal(t, ts, st.ID)
	if fin.State != StateDone {
		t.Fatalf("sweep finished %q (%s)", fin.State, fin.Error)
	}
	var rep struct {
		Kind   string `json:"kind"`
		Points []any  `json:"points"`
	}
	if err := json.Unmarshal(getReport(t, ts, st.ID), &rep); err != nil {
		t.Fatalf("report: %v", err)
	}
	if rep.Kind != "sweep" || len(rep.Points) != 2 {
		t.Errorf("report kind %q with %d points, want sweep with 2", rep.Kind, len(rep.Points))
	}
}

func TestSubmitValidation(t *testing.T) {
	_, ts := testServer(t, Config{})
	cases := []struct {
		name string
		mut  func(*Submission)
		want int
	}{
		{"bad algorithm", func(s *Submission) { s.Algorithm = "RIP" }, 400},
		{"bad pattern", func(s *Submission) { s.Pattern = "chaos" }, 400},
		{"missing kind", func(s *Submission) { s.Kind = "" }, 400},
		{"load out of range", func(s *Submission) { s.Load = 1.5 }, 400},
		{"run with loads", func(s *Submission) { s.Loads = []float64{0.1} }, 400},
		{"bad timeline", func(s *Submission) { s.Timeline = "@banana explode" }, 400},
		{"negative window", func(s *Submission) { s.Window = -5 }, 400},
	}
	for _, tc := range cases {
		sub := tinySubmission()
		tc.mut(&sub)
		if _, code := submit(t, ts, sub); code != tc.want {
			t.Errorf("%s: status %d, want %d", tc.name, code, tc.want)
		}
	}

	// Unknown fields are typos, not silently-dropped options.
	resp, err := ts.Client().Post(ts.URL+"/v1/jobs", "application/json",
		strings.NewReader(`{"kind":"run","algorithm":"MIN","pattern":"UR","lod":0.3}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 400 {
		t.Errorf("unknown field: status %d, want 400", resp.StatusCode)
	}
}

func TestSubmitOversizedBody(t *testing.T) {
	_, ts := testServer(t, Config{MaxBody: 512})
	huge := fmt.Sprintf(`{"kind":"run","algorithm":"MIN","pattern":"UR","timeline":%q}`, strings.Repeat("x", 4096))
	resp, err := ts.Client().Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(huge))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Errorf("oversized body: status %d, want 413", resp.StatusCode)
	}
}

func TestQueueBackpressure(t *testing.T) {
	block := make(chan struct{})
	srv, ts := testServer(t, Config{QueueDepth: 2, Workers: 1})
	srv.testHook = func(j *Job) {
		if j.Spec.Seed == 999 {
			<-block
		}
	}

	blocker := tinySubmission()
	blocker.Seed = 999
	bst, code := submit(t, ts, blocker)
	if code != http.StatusAccepted {
		t.Fatalf("blocker: status %d", code)
	}
	// Wait for the blocker to occupy the only worker, then fill the
	// queue exactly.
	deadline := time.Now().Add(5 * time.Second)
	for getStatus(t, ts, bst.ID).State != StateRunning && time.Now().Before(deadline) {
		time.Sleep(2 * time.Millisecond)
	}
	var queued []string
	for i := 0; i < 2; i++ {
		sub := tinySubmission()
		sub.Seed = uint64(100 + i)
		st, code := submit(t, ts, sub)
		if code != http.StatusAccepted {
			t.Fatalf("fill %d: status %d, want 202", i, code)
		}
		queued = append(queued, st.ID)
	}
	over := tinySubmission()
	over.Seed = 500
	body, _ := json.Marshal(over)
	resp, err := ts.Client().Post(ts.URL+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overflow submit: status %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 without a Retry-After header")
	}

	// Release the blocker: everything accepted must still complete.
	close(block)
	for _, id := range append(queued, bst.ID) {
		if st := waitTerminal(t, ts, id); st.State != StateDone {
			t.Errorf("job %s finished %q after backpressure, want done", id, st.State)
		}
	}
}

func TestCancelRunningJob(t *testing.T) {
	_, ts := testServer(t, Config{Workers: 1})
	sub := tinySubmission()
	sub.Run = RunSpec{Warmup: 5_000_000, Measure: 1000, Drain: 1000} // minutes of work
	st, code := submit(t, ts, sub)
	if code != http.StatusAccepted {
		t.Fatalf("submit: %d", code)
	}
	deadline := time.Now().Add(5 * time.Second)
	for getStatus(t, ts, st.ID).State != StateRunning && time.Now().Before(deadline) {
		time.Sleep(2 * time.Millisecond)
	}
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+st.ID, nil)
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	fin := waitTerminal(t, ts, st.ID)
	if fin.State != StateCanceled {
		t.Fatalf("canceled job finished %q (%s)", fin.State, fin.Error)
	}
	if fin.ErrorKind != "canceled" {
		t.Errorf("error_kind %q, want canceled", fin.ErrorKind)
	}
	if fin.CycleReached <= 0 {
		t.Errorf("canceled mid-warmup but cycle_reached = %d, want > 0", fin.CycleReached)
	}
}

func TestJobTimeout(t *testing.T) {
	_, ts := testServer(t, Config{Workers: 1})
	sub := tinySubmission()
	sub.Run = RunSpec{Warmup: 5_000_000, Measure: 1000, Drain: 1000}
	sub.TimeoutMS = 50
	st, code := submit(t, ts, sub)
	if code != http.StatusAccepted {
		t.Fatalf("submit: %d", code)
	}
	fin := waitTerminal(t, ts, st.ID)
	if fin.State != StateFailed || fin.ErrorKind != "timeout" {
		t.Fatalf("timed-out job = %q/%q (%s), want failed/timeout", fin.State, fin.ErrorKind, fin.Error)
	}
}

func TestPanicIsolation(t *testing.T) {
	srv, ts := testServer(t, Config{Workers: 1})
	srv.testHook = func(j *Job) {
		if j.Spec.Seed == 666 {
			panic("injected failure")
		}
	}
	bad := tinySubmission()
	bad.Seed = 666
	bst, _ := submit(t, ts, bad)
	fin := waitTerminal(t, ts, bst.ID)
	if fin.State != StateFailed || fin.ErrorKind != "panic" {
		t.Fatalf("panicking job = %q/%q, want failed/panic", fin.State, fin.ErrorKind)
	}
	if !strings.Contains(fin.Error, "injected failure") {
		t.Errorf("panic message lost: %q", fin.Error)
	}
	// The worker that recovered the panic must still serve jobs.
	srv.testHook = nil
	ok, _ := submit(t, ts, tinySubmission())
	if st := waitTerminal(t, ts, ok.ID); st.State != StateDone {
		t.Fatalf("job after panic finished %q: the worker died", st.State)
	}
}

func TestCacheHit(t *testing.T) {
	_, ts := testServer(t, Config{Workers: 1})
	sub := tinySubmission()
	first, code := submit(t, ts, sub)
	if code != http.StatusAccepted {
		t.Fatalf("first submit: %d", code)
	}
	if st := waitTerminal(t, ts, first.ID); st.State != StateDone {
		t.Fatalf("first run finished %q", st.State)
	}
	rep1 := getReport(t, ts, first.ID)

	second, code := submit(t, ts, sub)
	if code != http.StatusOK {
		t.Fatalf("cached submit: status %d, want 200", code)
	}
	if !second.Cached || second.State != StateDone {
		t.Fatalf("cached job = cached:%v state:%q, want cached done", second.Cached, second.State)
	}
	if rep2 := getReport(t, ts, second.ID); !bytes.Equal(rep1, rep2) {
		t.Error("cached report differs from the original bytes")
	}

	// A different seed is a different machine: must miss.
	other := tinySubmission()
	other.Seed = 2
	third, code := submit(t, ts, other)
	if code != http.StatusAccepted || third.Cached {
		t.Fatalf("different-seed submit = %d cached:%v, want a 202 miss", code, third.Cached)
	}
	waitTerminal(t, ts, third.ID)
}

// TestSSEStream reads a windowed run's event feed end to end: state
// transitions, at least one live window, and a clean stream close at
// the terminal state.
func TestSSEStream(t *testing.T) {
	srv, ts := testServer(t, Config{Workers: 1})
	// Hold execution until the SSE client is attached, so the live
	// window events have a subscriber to reach.
	attached := make(chan struct{})
	srv.testHook = func(*Job) { <-attached }
	sub := tinySubmission()
	sub.Run = RunSpec{Warmup: 400, Measure: 400, Drain: 2000}
	sub.Window = 100
	st, code := submit(t, ts, sub)
	if code != http.StatusAccepted {
		t.Fatalf("submit: %d", code)
	}
	resp, err := ts.Client().Get(ts.URL + "/v1/jobs/" + st.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	close(attached)
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("Content-Type %q", ct)
	}
	events := map[string]int{}
	var lastState Status
	sc := bufio.NewScanner(resp.Body)
	var evType string
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "event: "):
			evType = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			events[evType]++
			if evType == "state" {
				if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &lastState); err != nil {
					t.Fatalf("bad state event: %v", err)
				}
			}
		}
	}
	// The stream ends when the job goes terminal and the server closes
	// the feed; scanner just runs out of input.
	if !terminal(lastState.State) {
		t.Errorf("last streamed state %q, want a terminal state", lastState.State)
	}
	if events["window"] == 0 {
		t.Error("no live window events on a windowed run")
	}
	if events["state"] < 2 {
		t.Errorf("%d state events, want at least snapshot+terminal", events["state"])
	}
}

func TestShutdownRefusesNewWork(t *testing.T) {
	srv := New(Config{Workers: 1})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	st, code := submit(t, ts, tinySubmission())
	if code != http.StatusAccepted {
		t.Fatalf("submit: %d", code)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v (accepted work should finish well within the deadline)", err)
	}
	if fin := getStatus(t, ts, st.ID); fin.State != StateDone {
		t.Errorf("job accepted before drain finished %q, want done", fin.State)
	}
	if _, code := submit(t, ts, tinySubmission()); code != http.StatusServiceUnavailable {
		t.Errorf("submit while draining: status %d, want 503", code)
	}
	resp, err := ts.Client().Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("readyz while draining: %d, want 503", resp.StatusCode)
	}
	// Liveness is a different question: the process is up, so healthz
	// stays 200 even while draining.
	resp, err = ts.Client().Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("healthz while draining: %d, want 200", resp.StatusCode)
	}
}

// TestShutdownDeadlineCancelsStragglers: a job far exceeding the drain
// deadline is canceled through its context, Shutdown returns promptly,
// and the job lands in canceled — never lost, never still running.
func TestShutdownDeadlineCancelsStragglers(t *testing.T) {
	srv := New(Config{Workers: 1})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	sub := tinySubmission()
	sub.Run = RunSpec{Warmup: 50_000_000, Measure: 1000, Drain: 1000}
	st, code := submit(t, ts, sub)
	if code != http.StatusAccepted {
		t.Fatalf("submit: %d", code)
	}
	deadline := time.Now().Add(5 * time.Second)
	for getStatus(t, ts, st.ID).State != StateRunning && time.Now().Before(deadline) {
		time.Sleep(2 * time.Millisecond)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 300*time.Millisecond)
	defer cancel()
	start := time.Now()
	err := srv.Shutdown(ctx)
	if err == nil {
		t.Fatal("Shutdown returned nil with an unfinishable job: the drain deadline did not fire")
	}
	if took := time.Since(start); took > 10*time.Second {
		t.Fatalf("Shutdown took %v after its 300ms deadline", took)
	}
	fin := getStatus(t, ts, st.ID)
	if fin.State != StateCanceled {
		t.Errorf("straggler finished %q, want canceled", fin.State)
	}
}

// TestTopologiesEndpoint: GET /v1/topologies lists every registered
// family with its parameter schema.
func TestTopologiesEndpoint(t *testing.T) {
	_, ts := testServer(t, Config{})
	resp, err := ts.Client().Get(ts.URL + "/v1/topologies")
	if err != nil {
		t.Fatalf("GET /v1/topologies: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /v1/topologies: status %d", resp.StatusCode)
	}
	var body struct {
		Topologies []TopologyInfo `json:"topologies"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatalf("decode: %v", err)
	}
	want := map[string]bool{"dragonfly": false, "dragonflyfb": false, "dragonflyplus": false, "swapped": false, "aries": false}
	for _, ti := range body.Topologies {
		if _, ok := want[ti.Name]; ok {
			want[ti.Name] = true
		}
		if len(ti.Params) == 0 {
			t.Errorf("family %s listed without a parameter schema", ti.Name)
		}
	}
	for name, seen := range want {
		if !seen {
			t.Errorf("family %s missing from /v1/topologies", name)
		}
	}
}

// TestSubmitFamilyJob runs a non-dragonfly family end to end through
// the service, with a fault timeline for good measure.
func TestSubmitFamilyJob(t *testing.T) {
	_, ts := testServer(t, Config{})
	sub := Submission{
		Kind:      KindRun,
		Topology:  TopologySpec{Family: "swapped", Params: map[string]int{"p": 2, "k": 4}},
		Algorithm: "MIN",
		Pattern:   "UR",
		Load:      0.1,
		Run:       RunSpec{Warmup: 50, Measure: 50, Drain: 1000},
		Timeline:  "@20 fail global=0.25",
	}
	st, code := submit(t, ts, sub)
	if code != http.StatusAccepted && code != http.StatusOK {
		t.Fatalf("submit family job: status %d", code)
	}
	fin := waitTerminal(t, ts, st.ID)
	if fin.State != StateDone {
		t.Fatalf("family job finished %s (%s: %s)", fin.State, fin.ErrorKind, fin.Error)
	}
	report := getReport(t, ts, st.ID)
	if !strings.Contains(string(report), "swapped") {
		t.Errorf("report does not name the swapped topology: %s", report)
	}
}
