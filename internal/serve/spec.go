package serve

import (
	"fmt"
	"math"
	"sort"

	"dragonfly/internal/core"
	"dragonfly/internal/fault"
	"dragonfly/internal/sim"
	"dragonfly/internal/topology"
	"dragonfly/internal/traffic"
	"dragonfly/internal/workload"
)

// Job kinds.
const (
	KindRun   = "run"   // one load point
	KindSweep = "sweep" // a latency-load curve
)

// Submission is the JSON body of POST /v1/jobs: what to simulate.
// Omitted fields take the same defaults as the CLI tools, and the
// defaulted form is what gets hashed — two submissions that mean the
// same machine share one cache entry regardless of which defaults they
// spelled out.
type Submission struct {
	// Kind selects "run" (one load point) or "sweep" (a load list).
	Kind string `json:"kind"`
	// Topology is the dragonfly under test.
	Topology TopologySpec `json:"topology"`
	// Algorithm and Pattern name a routing algorithm and traffic
	// pattern (core.Algorithms / core.Patterns).
	Algorithm string `json:"algorithm"`
	Pattern   string `json:"pattern,omitempty"`
	// Traffic selects a registry traffic family with parameters
	// (GET /v1/traffic lists families and schemas), the general form of
	// Pattern; the two are mutually exclusive, and a legacy Pattern
	// canonicalises to its family before hashing, so {"pattern":"UR"}
	// and {"traffic":"ur"} share one cache entry.
	Traffic       string         `json:"traffic,omitempty"`
	TrafficParams map[string]int `json:"traffic_params,omitempty"`
	// Workload selects an arrival-process family driving injection
	// ("bernoulli", "onoff", "drift", "collective", "trace"); empty is
	// the Bernoulli default. Trace carries the flow-trace text (lines
	// of "cycle src dst count") required by — and only by — workload
	// "trace".
	Workload       string         `json:"workload,omitempty"`
	WorkloadParams map[string]int `json:"workload_params,omitempty"`
	Trace          string         `json:"trace,omitempty"`
	// Seed makes the run reproducible (default 1).
	Seed uint64 `json:"seed,omitempty"`
	// Shards partitions the engine (0 = serial). Results are
	// bit-identical for every value, so shards do NOT enter the job
	// hash: a cached result computed at any shard count answers them
	// all.
	Shards int `json:"shards,omitempty"`
	// Load is the offered load of a "run" job; Loads the points of a
	// "sweep" (flits/cycle/terminal, each in [0,1]).
	Load  float64   `json:"load,omitempty"`
	Loads []float64 `json:"loads,omitempty"`
	// Run is the measurement recipe.
	Run RunSpec `json:"run"`
	// Timeline, when non-empty, is a transient fault schedule in the
	// fault.ParseTimeline grammar ("@2000 fail global=0.25; ...");
	// FailSeed seeds its random draws (default 1).
	Timeline string `json:"timeline,omitempty"`
	FailSeed uint64 `json:"fail_seed,omitempty"`
	// Window, for "run" jobs, collects a windowed telemetry series
	// (obs.Windows) of this width in cycles, streamed live over the
	// job's SSE feed and embedded in the report.
	Window int64 `json:"window,omitempty"`
	// TimeoutMS overrides the server's per-job timeout, clamped to it
	// (a client may ask for less time, never more).
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
}

// TopologySpec is the machine configuration of a submission. Two
// spellings are accepted: the canonical-dragonfly shorthand (p/a/h/
// groups, zero values taking the paper defaults p=h=4, a=8), or a
// registry family name plus its parameter map (GET /v1/topologies
// lists the families and schemas). The two spellings may not be mixed,
// and both canonicalise to family+params before hashing, so a legacy
// {"p":4,"a":8,"h":4} body and {"family":"dragonfly"} share one cache
// entry.
type TopologySpec struct {
	// Family selects a registered topology family ("dragonfly",
	// "dragonflyplus", "swapped", "aries", ...). Empty means the
	// canonical dragonfly described by P/A/H/Groups.
	Family string `json:"family,omitempty"`
	// Params are the family's build parameters; omitted keys take the
	// schema defaults. Only valid alongside Family.
	Params map[string]int `json:"params,omitempty"`

	P        int `json:"p,omitempty"`
	A        int `json:"a,omitempty"`
	H        int `json:"h,omitempty"`
	Groups   int `json:"groups,omitempty"`
	BufDepth int `json:"buf_depth,omitempty"`
}

// RunSpec is the measurement recipe of a submission. Zero values take
// the 1K-network defaults (3000/2000/30000).
type RunSpec struct {
	Warmup  int `json:"warmup,omitempty"`
	Measure int `json:"measure,omitempty"`
	Drain   int `json:"drain,omitempty"`
}

// JobSpec is the canonical, fully-defaulted form of a submission: the
// value the job hash covers and the executor consumes. Every field is
// semantic — it can change the report — except Shards (bit-identical
// by the engine's contract) and TimeoutMS (an execution bound, not a
// result parameter), which ride along unhashed.
type JobSpec struct {
	Kind string
	// Family and Params are the canonical machine description: the
	// registry family plus its fully-defaulted parameter map (the
	// built machine's Descriptor.Params), whichever spelling the
	// submission used.
	Family    string
	Params    map[string]int
	BufDepth  int
	Seed      uint64
	Algorithm string
	// Pattern is the display name of the traffic half (the submitted
	// legacy spelling, or the canonical family name); the hash covers
	// the canonical Traffic/TrafficParams below, never this.
	Pattern string
	// Traffic and TrafficParams are the canonical traffic description:
	// the registry family (lower-case) plus its fully-defaulted
	// parameter map, whichever spelling the submission used.
	Traffic       string
	TrafficParams map[string]int
	// Source and SourceParams are the canonical arrival process; empty
	// Source is the Bernoulli default (an explicit "bernoulli"
	// canonicalises to empty, sharing its cache entry).
	Source       string
	SourceParams map[string]int
	// Trace is the raw flow-trace text of a "trace" workload (journaled
	// with the spec so recovery can rebuild the source); TraceHash is
	// its content digest — the only part of the trace the job hash
	// covers, stable across comment/whitespace reformatting.
	Trace     string
	TraceHash uint64
	Loads     []float64
	Warmup    int
	Measure   int
	Drain     int
	Timeline  string
	FailSeed  uint64
	Window    int64
	Shards    int // unhashed
	TimeoutMS int64
}

// Normalize validates the submission and returns its canonical spec.
// Every rejection is a *RequestError with an HTTP 400 status; the
// validation is deep enough that execution failures can only come from
// the simulation itself (stall, timeout, cancel), never from a
// malformed job that slipped into the queue.
func (sub Submission) Normalize(limits Limits) (JobSpec, error) {
	var s JobSpec
	switch sub.Kind {
	case KindRun, KindSweep:
		s.Kind = sub.Kind
	case "":
		return s, badRequest("kind is required: %q or %q", KindRun, KindSweep)
	default:
		return s, badRequest("unknown kind %q (want %q or %q)", sub.Kind, KindRun, KindSweep)
	}

	// Topology: both spellings canonicalise to family + the built
	// machine's fully-defaulted parameter map, so the hash is canonical
	// over meaning, not spelling. Building the machine here (cheap:
	// structural only) is also the validation.
	s.BufDepth = sub.Topology.BufDepth
	if s.BufDepth == 0 {
		s.BufDepth = 16
	}
	if s.BufDepth < 0 {
		return s, badRequest("topology: buf_depth must be non-negative")
	}
	var topo topology.Machine
	if sub.Topology.Family != "" {
		if sub.Topology.P != 0 || sub.Topology.A != 0 || sub.Topology.H != 0 || sub.Topology.Groups != 0 {
			return s, badRequest("topology: family %q and the p/a/h/groups shorthand are mutually exclusive", sub.Topology.Family)
		}
		m, err := topology.Build(sub.Topology.Family, sub.Topology.Params)
		if err != nil {
			return s, badRequest("topology: %v", err)
		}
		topo = m
	} else {
		if len(sub.Topology.Params) > 0 {
			return s, badRequest(`topology: "params" needs a "family"`)
		}
		p, a, h := sub.Topology.P, sub.Topology.A, sub.Topology.H
		if p == 0 && a == 0 && h == 0 {
			p, a, h = 4, 8, 4
		}
		if p < 0 || a < 0 || h < 0 || sub.Topology.Groups < 0 {
			return s, badRequest("topology parameters must be non-negative")
		}
		d, err := topology.NewDragonfly(p, a, h, sub.Topology.Groups)
		if err != nil {
			return s, badRequest("topology: %v", err)
		}
		topo = d
	}
	desc := topo.Describe()
	s.Family, s.Params = desc.Family, desc.Params
	if max := limits.MaxNodes; max > 0 && topo.Nodes() > max {
		return s, badRequest("topology has %d terminals, over the server's limit of %d", topo.Nodes(), max)
	}

	if _, err := core.ParseAlgorithm(sub.Algorithm); err != nil {
		return s, badRequest("%v", err)
	}
	s.Algorithm = sub.Algorithm

	s.Seed = sub.Seed
	if s.Seed == 0 {
		s.Seed = 1
	}
	if sub.Shards < 0 {
		return s, badRequest("shards must be >= 0")
	}
	s.Shards = sub.Shards

	// Traffic: the legacy pattern enum and the registry spelling both
	// canonicalise to family + fully-defaulted params, so the hash is
	// canonical over meaning here too. Building the pattern against the
	// real machine is the validation.
	tenv := traffic.Env{Terminals: topo.Nodes(), Grouped: topo, Seed: s.Seed}
	switch {
	case sub.Traffic != "":
		if sub.Pattern != "" {
			return s, badRequest("pattern %q and traffic %q are mutually exclusive; set one", sub.Pattern, sub.Traffic)
		}
		fam, params, err := canonFamily("traffic", sub.Traffic, sub.TrafficParams, traffic.FamilyNames(), trafficSchema)
		if err != nil {
			return s, badRequest("%v", err)
		}
		if _, err := traffic.Build(fam, tenv, params); err != nil {
			return s, badRequest("%v", err)
		}
		s.Traffic, s.TrafficParams = fam, params
		s.Pattern = fam
	default:
		if len(sub.TrafficParams) > 0 {
			return s, badRequest(`"traffic_params" needs a "traffic" family`)
		}
		pat, err := core.ParsePattern(sub.Pattern)
		if err != nil {
			return s, badRequest("%v", err)
		}
		w := core.PatternWorkload(pat)
		fam, params, err := canonFamily("traffic", w.Traffic, nil, traffic.FamilyNames(), trafficSchema)
		if err != nil {
			return s, badRequest("%v", err)
		}
		if _, err := traffic.Build(fam, tenv, params); err != nil {
			return s, badRequest("%v", err)
		}
		s.Traffic, s.TrafficParams = fam, params
		s.Pattern = sub.Pattern
	}

	// Workload: canonicalise the arrival process. An explicit
	// "bernoulli" is the default spelled out, so it canonicalises to the
	// empty Source and shares the legacy cache entries.
	switch {
	case sub.Workload != "":
		fam, params, err := canonFamily("workload", sub.Workload, sub.WorkloadParams, workload.FamilyNames(), workloadSchema)
		if err != nil {
			return s, badRequest("%v", err)
		}
		wenv := workload.Env{Terminals: topo.Nodes(), Seed: s.Seed}
		if fam == "trace" {
			if sub.Trace == "" {
				return s, badRequest(`workload "trace" needs the flow trace in "trace" (lines of "cycle src dst count")`)
			}
			if max := limits.MaxTraceBytes; max > 0 && len(sub.Trace) > max {
				return s, badRequest("trace is %d bytes, over the server's limit of %d", len(sub.Trace), max)
			}
			tr, err := workload.ParseTrace([]byte(sub.Trace), topo.Nodes())
			if err != nil {
				return s, badRequest("%v", err)
			}
			wenv.Trace = tr
			s.Trace, s.TraceHash = sub.Trace, tr.Hash()
		} else if sub.Trace != "" {
			return s, badRequest(`"trace" needs workload "trace", not %q`, fam)
		}
		if _, err := workload.Build(fam, wenv, params); err != nil {
			return s, badRequest("%v", err)
		}
		if fam != "bernoulli" {
			s.Source, s.SourceParams = fam, params
			s.Pattern = s.Pattern + "+" + fam
		}
	default:
		if len(sub.WorkloadParams) > 0 {
			return s, badRequest(`"workload_params" needs a "workload" family`)
		}
		if sub.Trace != "" {
			return s, badRequest(`"trace" needs workload "trace"`)
		}
	}

	switch s.Kind {
	case KindRun:
		if len(sub.Loads) > 0 {
			return s, badRequest(`"run" jobs take "load", not "loads"`)
		}
		s.Loads = []float64{sub.Load}
	case KindSweep:
		if sub.Load != 0 {
			return s, badRequest(`"sweep" jobs take "loads", not "load"`)
		}
		if len(sub.Loads) == 0 {
			return s, badRequest(`"sweep" jobs need a non-empty "loads" list`)
		}
		if max := limits.MaxSweepPoints; max > 0 && len(sub.Loads) > max {
			return s, badRequest("sweep has %d load points, over the server's limit of %d", len(sub.Loads), max)
		}
		s.Loads = append([]float64(nil), sub.Loads...)
	}
	for _, l := range s.Loads {
		if math.IsNaN(l) || math.IsInf(l, 0) || l < 0 || l > 1 {
			return s, badRequest("load %v out of range: want a fraction in [0,1]", l)
		}
	}

	s.Warmup, s.Measure, s.Drain = sub.Run.Warmup, sub.Run.Measure, sub.Run.Drain
	if s.Warmup == 0 && s.Measure == 0 && s.Drain == 0 {
		def := sim.DefaultRunConfig(0)
		s.Warmup, s.Measure, s.Drain = def.WarmupCycles, def.MeasureCycles, def.DrainCycles
	}
	rc := sim.RunConfig{Load: s.Loads[0], WarmupCycles: s.Warmup, MeasureCycles: s.Measure, DrainCycles: s.Drain}
	if err := rc.Validate(); err != nil {
		return s, badRequest("%v", err)
	}
	if max := limits.MaxCycles; max > 0 && int64(s.Warmup)+int64(s.Measure)+int64(s.Drain) > max {
		return s, badRequest("run asks for up to %d cycles, over the server's limit of %d", int64(s.Warmup)+int64(s.Measure)+int64(s.Drain), max)
	}

	s.Timeline = sub.Timeline
	s.FailSeed = sub.FailSeed
	if s.FailSeed == 0 {
		s.FailSeed = 1
	}
	if s.Timeline != "" {
		tl, err := fault.ParseTimeline(s.Timeline, s.FailSeed)
		if err != nil {
			return s, badRequest("timeline: %v", err)
		}
		if _, err := tl.Compile(topo); err != nil {
			return s, badRequest("timeline: %v", err)
		}
	}

	if sub.Window < 0 {
		return s, badRequest("window must be >= 0")
	}
	if sub.Window > 0 && s.Kind != KindRun {
		return s, badRequest(`"window" telemetry applies to "run" jobs only`)
	}
	s.Window = sub.Window

	if sub.TimeoutMS < 0 {
		return s, badRequest("timeout_ms must be >= 0")
	}
	s.TimeoutMS = sub.TimeoutMS
	return s, nil
}

// Limits bounds what a single submission may demand of the server.
type Limits struct {
	// MaxNodes caps the terminal count of a submitted topology
	// (0 = unlimited).
	MaxNodes int
	// MaxSweepPoints caps a sweep's load list (0 = unlimited).
	MaxSweepPoints int
	// MaxCycles caps warmup+measure+drain (0 = unlimited).
	MaxCycles int64
	// MaxTraceBytes caps the flow-trace text of a "trace" workload
	// (0 = unlimited; the request body cap still applies).
	MaxTraceBytes int
}

// famSchema is the registry-agnostic view of one family's parameter
// schema: just names and defaults, enough to canonicalise a submission
// (the registries' own Build validates values afterwards).
type famSchema struct {
	name   string
	params []schemaParam
}

type schemaParam struct {
	name string
	def  int
}

// trafficSchema adapts the traffic registry for canonFamily.
func trafficSchema(name string) (famSchema, bool) {
	f, ok := traffic.FamilyByName(name)
	if !ok {
		return famSchema{}, false
	}
	fs := famSchema{name: f.Name}
	for _, p := range f.Params {
		fs.params = append(fs.params, schemaParam{p.Name, p.Default})
	}
	return fs, true
}

// workloadSchema adapts the workload registry for canonFamily.
func workloadSchema(name string) (famSchema, bool) {
	f, ok := workload.FamilyByName(name)
	if !ok {
		return famSchema{}, false
	}
	fs := famSchema{name: f.Name}
	for _, p := range f.Params {
		fs.params = append(fs.params, schemaParam{p.Name, p.Default})
	}
	return fs, true
}

// canonFamily resolves a family spelling to its canonical (lower-case)
// name and fully-defaulted parameter map: schema defaults first, the
// submission's keys on top, unknown keys rejected. The fully-defaulted
// map is what the job hash covers, so spelled-out defaults cancel out
// exactly like the topology spelling does.
func canonFamily(kind, name string, given map[string]int, names []string, lookup func(string) (famSchema, bool)) (string, map[string]int, error) {
	f, ok := lookup(name)
	if !ok {
		return "", nil, fmt.Errorf("%s: unknown family %q (supported: %v)", kind, name, names)
	}
	full := make(map[string]int, len(f.params))
	valid := make([]string, len(f.params))
	for i, p := range f.params {
		full[p.name] = p.def
		valid[i] = p.name
	}
	var unknown []string
	for k, v := range given {
		if _, ok := full[k]; !ok {
			unknown = append(unknown, k)
			continue
		}
		full[k] = v
	}
	if len(unknown) > 0 {
		sort.Strings(unknown)
		return "", nil, fmt.Errorf("%s: family %q: unknown parameter(s) %v (valid: %v)", kind, f.name, unknown, valid)
	}
	return f.name, full, nil
}

// RequestError is a rejected request: a message plus the HTTP status it
// maps to. Every validation failure is one, so handlers can write the
// structured error without switching on error strings.
type RequestError struct {
	Status int
	Msg    string
}

// Error returns the rejection message.
func (e *RequestError) Error() string { return e.Msg }

func badRequest(format string, args ...any) *RequestError {
	return &RequestError{Status: 400, Msg: fmt.Sprintf(format, args...)}
}
