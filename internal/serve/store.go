package serve

// Durable state for a Server (Config.DataDir):
//
//	<data-dir>/journal.log          write-ahead journal, one JSON record per line
//	<data-dir>/journal.quarantine   corrupt journal lines, moved aside on replay
//	<data-dir>/results/<hash>.json  content-addressed finished reports
//	<data-dir>/checkpoints/<id>.snap  latest engine checkpoint of a running job
//
// The journal is the source of truth for which jobs exist and where
// they got to. Every append is fsync'd under the store lock, and the
// "accepted" record for a submission is durable before the client sees
// its 202 — a job the server acknowledged is never lost. Result and
// checkpoint files are written via a same-directory temp file, fsync
// and rename, so a reader (including the replaying next process) only
// ever sees complete files; a crash mid-write leaves a *.tmp* that the
// next open sweeps.
//
// Replay tolerates exactly the damage a crash can cause. A torn final
// line (append cut mid-record) is dropped with a warning. A corrupt or
// version-mismatched line anywhere else is moved to journal.quarantine
// with a warning and counted — never silently skipped, never fatal.
// After any such surgery the journal is rewritten atomically from the
// surviving records, so the damage is handled once, not on every
// restart. A "state" record whose "accepted" record was quarantined is
// an orphan and is ignored; the same applies to the benign submission
// race where a very fast job's terminal record lands just before its
// accepted record — the replayed job simply re-runs, and determinism
// makes the re-run byte-identical.

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
)

// journalVersion is the record format spoken by this build. A record
// carrying any other version is quarantined on replay, like corruption:
// the reader that understands it can pick it out of the quarantine
// file, and this reader never misinterprets it.
const journalVersion = 1

// ckptMagic heads every checkpoint file. The engine snapshot inside
// carries its own "dfly-snap/1" version and CRC; this outer header
// binds the snapshot to a job id and spec hash so a checkpoint is
// never resumed under the wrong job.
const ckptMagic = "dfly-ckpt/1\n"

// ErrCorruptRecord is wrapped by every decode failure of a journal
// record or checkpoint file: corruption and version mismatches are
// typed, recoverable conditions — quarantine or re-run — never panics.
var ErrCorruptRecord = errors.New("serve: corrupt durable record")

// errStoreClosed reports a durable write attempted after the store
// detached (clean shutdown or simulated crash).
var errStoreClosed = errors.New("serve: store is closed")

// The journal record types.
const (
	recAccepted = "accepted" // a submission was acknowledged; carries the full spec
	recState    = "state"    // a state transition (running, or a terminal state)
	recRetry    = "retry"    // a transient failure scheduled a re-execution
)

// record is one journal line. Type decides which fields are meaningful.
type record struct {
	V       int      `json:"v"`
	Type    string   `json:"type"`
	ID      string   `json:"id"`
	TS      int64    `json:"ts_unix_ms,omitempty"`
	Spec    *JobSpec `json:"spec,omitempty"`
	Hash    string   `json:"hash,omitempty"`
	State   State    `json:"state,omitempty"`
	ErrKind string   `json:"error_kind,omitempty"`
	Err     string   `json:"error,omitempty"`
	Attempt int      `json:"attempt,omitempty"`
	Cached  bool     `json:"cached,omitempty"`
}

// decodeRecord parses and validates one journal line. Every rejection
// wraps ErrCorruptRecord; nothing here panics, and no corrupt input can
// drive an allocation beyond the line's own length.
func decodeRecord(line []byte) (record, error) {
	var r record
	dec := json.NewDecoder(bytes.NewReader(line))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&r); err != nil {
		return r, fmt.Errorf("%w: %v", ErrCorruptRecord, err)
	}
	if dec.More() {
		return r, fmt.Errorf("%w: trailing data after the record", ErrCorruptRecord)
	}
	if r.V != journalVersion {
		return r, fmt.Errorf("%w: record version %d (this build speaks %d)", ErrCorruptRecord, r.V, journalVersion)
	}
	if r.ID == "" {
		return r, fmt.Errorf("%w: record without a job id", ErrCorruptRecord)
	}
	switch r.Type {
	case recAccepted:
		if r.Spec == nil || r.Hash == "" {
			return r, fmt.Errorf("%w: accepted record missing its spec or hash", ErrCorruptRecord)
		}
	case recState:
		switch r.State {
		case StateQueued, StateRunning, StateDone, StateFailed, StateCanceled:
		default:
			return r, fmt.Errorf("%w: unknown state %q", ErrCorruptRecord, r.State)
		}
	case recRetry:
		if r.Attempt <= 0 {
			return r, fmt.Errorf("%w: retry record with attempt %d", ErrCorruptRecord, r.Attempt)
		}
	default:
		return r, fmt.Errorf("%w: unknown record type %q", ErrCorruptRecord, r.Type)
	}
	return r, nil
}

// replayedJob is one job reconstructed from the journal: its spec plus
// the last state the dead process recorded for it.
type replayedJob struct {
	id        string
	spec      JobSpec
	hash      string
	state     State
	errKind   string
	errMsg    string
	cached    bool
	attempt   int
	submitted int64 // unix ms from the accepted record
}

// replayResult is everything openStore recovered from the journal.
type replayResult struct {
	jobs    map[string]*replayedJob
	order   []string // accepted order
	maxID   uint64   // highest numeric job id seen, to continue the sequence
	records int64    // valid records replayed
}

func (rep *replayResult) apply(r record) {
	rep.records++
	switch r.Type {
	case recAccepted:
		if _, dup := rep.jobs[r.ID]; dup {
			return
		}
		rep.jobs[r.ID] = &replayedJob{
			id: r.ID, spec: *r.Spec, hash: r.Hash,
			state: StateQueued, submitted: r.TS,
		}
		rep.order = append(rep.order, r.ID)
		if n := idNumber(r.ID); n > rep.maxID {
			rep.maxID = n
		}
	case recState:
		j := rep.jobs[r.ID]
		if j == nil {
			return // orphan (see the package comment above)
		}
		j.state, j.errKind, j.errMsg, j.cached = r.State, r.ErrKind, r.Err, r.Cached
	case recRetry:
		if j := rep.jobs[r.ID]; j != nil {
			j.attempt = r.Attempt
		}
	}
}

// idNumber extracts the sequence number from a "j%06d" job id.
func idNumber(id string) uint64 {
	n, err := strconv.ParseUint(strings.TrimPrefix(id, "j"), 10, 64)
	if err != nil {
		return 0
	}
	return n
}

// store owns a Server's durable state. All methods are safe for
// concurrent use; after detach every write is refused with
// errStoreClosed, which is exactly the view a dead process leaves.
type store struct {
	dir  string
	logf func(format string, args ...any)

	mu          sync.Mutex
	f           *os.File // journal append handle; nil once detached
	closed      bool
	quarantined int64
}

// openStore prepares dir, replays the journal, and leaves the store
// ready for appends.
func openStore(dir string, logf func(string, ...any)) (*store, *replayResult, error) {
	st := &store{dir: dir, logf: logf}
	for _, d := range []string{dir, filepath.Join(dir, "results"), filepath.Join(dir, "checkpoints")} {
		if err := os.MkdirAll(d, 0o755); err != nil {
			return nil, nil, fmt.Errorf("serve: data dir: %w", err)
		}
	}
	st.sweepTempFiles()
	rep, err := st.replayJournal()
	if err != nil {
		return nil, nil, err
	}
	f, err := os.OpenFile(st.journalPath(), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("serve: open journal: %w", err)
	}
	st.f = f
	return st, rep, nil
}

func (st *store) journalPath() string        { return filepath.Join(st.dir, "journal.log") }
func (st *store) resultPath(h string) string { return filepath.Join(st.dir, "results", h+".json") }
func (st *store) checkpointPath(id string) string {
	return filepath.Join(st.dir, "checkpoints", id+".snap")
}

// sweepTempFiles removes *.tmp* debris a crash left mid-atomic-write.
// The rename never happened, so nothing referenced these files.
func (st *store) sweepTempFiles() {
	for _, sub := range []string{".", "results", "checkpoints"} {
		matches, _ := filepath.Glob(filepath.Join(st.dir, sub, "*.tmp*"))
		for _, m := range matches {
			st.logf("serve: sweeping torn temp file %s (crash mid-write)", m)
			os.Remove(m)
		}
	}
}

// replayJournal reads journal.log into a replayResult, quarantining
// corrupt lines and dropping a torn tail. If anything had to be cut,
// the journal is rewritten atomically from the surviving records.
func (st *store) replayJournal() (*replayResult, error) {
	rep := &replayResult{jobs: make(map[string]*replayedJob)}
	raw, err := os.ReadFile(st.journalPath())
	if errors.Is(err, os.ErrNotExist) {
		return rep, nil
	}
	if err != nil {
		return nil, fmt.Errorf("serve: read journal: %w", err)
	}
	var valid [][]byte
	dirty := false
	body := raw
	for {
		nl := bytes.IndexByte(body, '\n')
		if nl < 0 {
			break
		}
		line := body[:nl]
		body = body[nl+1:]
		if len(bytes.TrimSpace(line)) == 0 {
			dirty = true
			continue
		}
		r, err := decodeRecord(line)
		if err != nil {
			st.quarantine(line, err)
			dirty = true
			continue
		}
		rep.apply(r)
		valid = append(valid, line)
	}
	if len(body) > 0 {
		st.logf("serve: journal: dropping torn %d-byte tail (crash mid-append)", len(body))
		dirty = true
	}
	if dirty {
		var buf bytes.Buffer
		for _, l := range valid {
			buf.Write(l)
			buf.WriteByte('\n')
		}
		if err := writeFileAtomic(st.journalPath(), buf.Bytes()); err != nil {
			return nil, fmt.Errorf("serve: rewrite journal after repair: %w", err)
		}
	}
	return rep, nil
}

// quarantine moves one corrupt journal line aside with a warning.
func (st *store) quarantine(line []byte, cause error) {
	st.quarantined++
	st.logf("serve: journal: quarantined corrupt record: %v", cause)
	qf, err := os.OpenFile(filepath.Join(st.dir, "journal.quarantine"),
		os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		st.logf("serve: journal: quarantine file: %v", err)
		return
	}
	defer qf.Close()
	qf.Write(line)
	qf.Write([]byte{'\n'})
}

func (st *store) quarantinedCount() int64 {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.quarantined
}

// appendRecord journals one record, fsync'd before returning: when this
// succeeds the record survives any crash.
func (st *store) appendRecord(r record) error {
	data, err := json.Marshal(r)
	if err != nil {
		return err
	}
	data = append(data, '\n')
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.closed || st.f == nil {
		return errStoreClosed
	}
	if _, err := st.f.Write(data); err != nil {
		return err
	}
	return st.f.Sync()
}

// detach stops all durable writes and closes the journal. Used by the
// clean shutdown and by the crash simulation alike: afterwards the
// on-disk state is frozen exactly as a dead process would leave it.
func (st *store) detach() {
	st.mu.Lock()
	defer st.mu.Unlock()
	st.closed = true
	if st.f != nil {
		st.f.Close()
		st.f = nil
	}
}

func (st *store) detached() bool {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.closed
}

// writeResult persists a finished report under its content address.
// Results for the same hash are byte-identical by the engine's
// determinism, so an existing file is already correct.
func (st *store) writeResult(hash string, report []byte) error {
	if st.detached() {
		return errStoreClosed
	}
	path := st.resultPath(hash)
	if _, err := os.Stat(path); err == nil {
		return nil
	}
	return writeFileAtomic(path, report)
}

func (st *store) readResult(hash string) ([]byte, error) {
	return os.ReadFile(st.resultPath(hash))
}

// ckptMeta is the JSON line between a checkpoint file's magic and its
// engine snapshot.
type ckptMeta struct {
	ID   string `json:"id"`
	Hash string `json:"hash"`
}

// writeCheckpoint atomically replaces the job's checkpoint file with a
// fresh engine snapshot. The previous checkpoint stays valid until the
// rename lands, so a crash at any instant leaves a usable file.
func (st *store) writeCheckpoint(id, hash string, snap []byte) error {
	if st.detached() {
		return errStoreClosed
	}
	meta, err := json.Marshal(ckptMeta{ID: id, Hash: hash})
	if err != nil {
		return err
	}
	buf := make([]byte, 0, len(ckptMagic)+len(meta)+1+len(snap))
	buf = append(buf, ckptMagic...)
	buf = append(buf, meta...)
	buf = append(buf, '\n')
	buf = append(buf, snap...)
	return writeFileAtomic(st.checkpointPath(id), buf)
}

// parseCheckpoint splits a checkpoint file into its metadata and the
// engine snapshot. Only the outer framing is validated here — the
// snapshot's own magic and CRC are checked by the engine on restore.
func parseCheckpoint(data []byte) (id, hash string, snap []byte, err error) {
	if !bytes.HasPrefix(data, []byte(ckptMagic)) {
		return "", "", nil, fmt.Errorf("%w: not a dfly-ckpt/1 file", ErrCorruptRecord)
	}
	rest := data[len(ckptMagic):]
	nl := bytes.IndexByte(rest, '\n')
	if nl < 0 {
		return "", "", nil, fmt.Errorf("%w: checkpoint missing its metadata line", ErrCorruptRecord)
	}
	var m ckptMeta
	if err := json.Unmarshal(rest[:nl], &m); err != nil {
		return "", "", nil, fmt.Errorf("%w: checkpoint metadata: %v", ErrCorruptRecord, err)
	}
	if m.ID == "" || m.Hash == "" {
		return "", "", nil, fmt.Errorf("%w: checkpoint metadata incomplete", ErrCorruptRecord)
	}
	return m.ID, m.Hash, rest[nl+1:], nil
}

// readCheckpoint loads and validates the job's checkpoint framing.
func (st *store) readCheckpoint(id string) (hash string, snap []byte, err error) {
	data, err := os.ReadFile(st.checkpointPath(id))
	if err != nil {
		return "", nil, err
	}
	cid, hash, snap, err := parseCheckpoint(data)
	if err != nil {
		return "", nil, err
	}
	if cid != id {
		return "", nil, fmt.Errorf("%w: checkpoint names job %s, but the file belongs to %s", ErrCorruptRecord, cid, id)
	}
	return hash, snap, nil
}

// removeCheckpoint deletes a terminal job's checkpoint. A detached
// store leaves it in place — exactly what a crash would do.
func (st *store) removeCheckpoint(id string) {
	if st.detached() {
		return
	}
	os.Remove(st.checkpointPath(id))
}

// writeFileAtomic replaces path with data via a same-directory temp
// file, fsync'd before the rename: readers (and the next process's
// replay) only ever observe complete files.
func writeFileAtomic(path string, data []byte) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(data); err == nil {
		err = tmp.Sync()
	}
	if err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return nil
}
