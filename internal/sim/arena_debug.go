//go:build dflydebug

package sim

// arenaDebug switches on the arena liveness checks: alloc panics if it
// hands out a ref that is still in flight, release panics on a
// double-free. The constant lets the compiler delete the checks (and
// the live column) entirely from normal builds.
//
//	go test -tags dflydebug ./internal/sim/
const arenaDebug = true
