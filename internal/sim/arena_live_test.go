//go:build dflydebug

package sim

import "testing"

// The dflydebug build tag arms the arena liveness checks; these tests
// prove the checks actually fire. Running the ordinary test suite under
// the tag (CI does: go test -tags dflydebug ./...) then turns every
// simulation test into a no-index-reuse-while-in-flight proof.

func TestArenaDebugDoubleFreePanics(t *testing.T) {
	var a arena
	ref := a.alloc()
	a.release(ref)
	defer func() {
		if recover() == nil {
			t.Error("double release did not panic under dflydebug")
		}
	}()
	a.release(ref)
}

func TestArenaDebugLiveTracking(t *testing.T) {
	var a arena
	r1 := a.alloc()
	if !a.live[r1] {
		t.Error("allocated slot not marked live")
	}
	a.release(r1)
	if a.live[r1] {
		t.Error("released slot still marked live")
	}
}
