//go:build !dflydebug

package sim

// arenaDebug is off in normal builds; see arena_debug.go.
const arenaDebug = false
