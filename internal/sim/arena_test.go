package sim

import "testing"

func TestArenaAllocResetsSlot(t *testing.T) {
	var a arena
	ref := a.alloc()
	a.dst[ref] = 7
	a.flags[ref] = pfMinimal | pfMeasured
	a.interGrp[ref] = 3
	a.hops[ref] = 5
	a.release(ref)
	got := a.alloc()
	if got != ref {
		t.Fatalf("LIFO free list did not hand back the hot slot: got %d, want %d", got, ref)
	}
	if a.dst[got] != 0 || a.flags[got] != 0 || a.interGrp[got] != 0 || a.hops[got] != 0 {
		t.Error("alloc did not reset the recycled slot")
	}
}

func TestArenaRecyclingKeepsInUseBounded(t *testing.T) {
	// The drop and eject paths both release into the same free list; a
	// workload that frees as much as it allocates must not grow the
	// arena past its first high-water mark.
	var a arena
	live := make([]int32, 0, 64)
	for i := 0; i < 64; i++ {
		live = append(live, a.alloc())
	}
	capAfterWarmup := a.capacity()
	for round := 0; round < 10000; round++ {
		// Free one (alternating "eject" from the front and "drop" from the
		// back of the live set) and allocate one.
		var ref int32
		if round%2 == 0 {
			ref = live[0]
			live = live[1:]
		} else {
			ref = live[len(live)-1]
			live = live[:len(live)-1]
		}
		a.release(ref)
		live = append(live, a.alloc())
	}
	if a.capacity() != capAfterWarmup {
		t.Errorf("arena grew from %d to %d slots under a recycling workload", capAfterWarmup, a.capacity())
	}
	if got := a.inUse(); got != len(live) {
		t.Errorf("inUse = %d, want %d", got, len(live))
	}
}

func TestArenaNoRefHandedOutTwice(t *testing.T) {
	// Until released, a ref must never be handed out again, across
	// growth included.
	var a arena
	seen := make(map[int32]bool)
	for i := 0; i < 1000; i++ {
		ref := a.alloc()
		if seen[ref] {
			t.Fatalf("ref %d handed out while in flight", ref)
		}
		seen[ref] = true
	}
}

func TestArenaGrowDoubles(t *testing.T) {
	var a arena
	a.alloc()
	if a.capacity() != 256 {
		t.Fatalf("first chunk = %d slots, want 256", a.capacity())
	}
	for i := 1; i < 257; i++ {
		a.alloc()
	}
	if a.capacity() != 512 {
		t.Fatalf("after 257 allocs capacity = %d, want 512", a.capacity())
	}
	if a.inUse() != 257 {
		t.Fatalf("inUse = %d, want 257", a.inUse())
	}
}

func TestArenaViewRoundTrip(t *testing.T) {
	var a arena
	ref := a.alloc()
	a.id[ref] = 99
	a.seed[ref] = 0xdead
	a.src[ref] = 3
	a.dst[ref] = 11
	a.create[ref] = 100
	a.inject[ref] = 110
	a.flags[ref] = pfMinimal | pfPhase1 | pfDecided | pfMeasured
	a.interGrp[ref] = -1
	a.nextPort[ref] = 4
	a.nextVC[ref] = 2
	a.inPort[ref] = 1
	a.bufVC[ref] = 1
	a.hops[ref] = 3
	var p Packet
	a.view(ref, &p)
	if p.ID != 99 || p.Seed != 0xdead || p.Src != 3 || p.Dst != 11 {
		t.Error("identity fields wrong in view")
	}
	if p.CreateTime != 100 || p.InjectTime != 110 || p.EjectTime != 0 {
		t.Error("time fields wrong in view")
	}
	if !p.Minimal || !p.Phase1() || !p.Decided || !p.Measured {
		t.Error("flag fields wrong in view")
	}
	if p.InterGroup != -1 || p.NextPort != 4 || p.NextVC != 2 || p.InPort != 1 || p.BufVC != 1 || p.Hops() != 3 {
		t.Error("hop fields wrong in view")
	}
}
