package sim_test

// Cancellation tests: RunCtx must observe its context at cycle-batch
// checkpoints in every phase, return the typed *CanceledError with the
// partial-run snapshot, and never corrupt the network or the
// measurement state doing so.

import (
	"context"
	"errors"
	"testing"
	"time"

	"dragonfly/internal/metrics"
	"dragonfly/internal/routing"
	"dragonfly/internal/sim"
	"dragonfly/internal/traffic"
)

// cancelAt is a collector that cancels a context when the simulation
// reaches a given cycle — a deterministic cancellation trigger, unlike
// a timer.
type cancelAt struct {
	metrics.Nop
	cycle  int64
	cancel context.CancelFunc
}

func (c *cancelAt) CycleEnd(cycle int64) {
	if cycle >= c.cycle {
		c.cancel()
	}
}

func TestRunCtxPreCanceled(t *testing.T) {
	d := testDragonfly(t)
	net := newNet(t, d, testConfig(), routing.NewMIN(d), traffic.NewUniformRandom(d.Nodes()))
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := sim.RunCtx(ctx, net, sim.RunConfig{Load: 0.1, WarmupCycles: 500, MeasureCycles: 500, DrainCycles: 5000})
	if err == nil {
		t.Fatal("RunCtx with a pre-canceled context returned nil")
	}
	if !errors.Is(err, sim.ErrCanceled) {
		t.Errorf("error %v does not wrap sim.ErrCanceled", err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Errorf("error %v does not carry the context cause", err)
	}
	var ce *sim.CanceledError
	if !errors.As(err, &ce) {
		t.Fatalf("error %v is not a *sim.CanceledError", err)
	}
	if ce.Phase != sim.PhaseWarmup {
		t.Errorf("pre-canceled run stopped in %v, want warm-up", ce.Phase)
	}
	if net.Now() != 0 {
		t.Errorf("pre-canceled run advanced the network to cycle %d", net.Now())
	}
}

func TestRunCtxCancelMidRun(t *testing.T) {
	d := testDragonfly(t)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	net := newNet(t, d, testConfig(), routing.NewUGAL(d, routing.UGALLocalVCH), traffic.NewUniformRandom(d.Nodes()))
	const at = 300
	net.AttachMetrics(&cancelAt{cycle: at, cancel: cancel})
	res, err := sim.RunCtx(ctx, net, sim.RunConfig{Load: 0.2, WarmupCycles: 2000, MeasureCycles: 2000, DrainCycles: 20000})
	if err == nil {
		t.Fatal("mid-run cancel returned nil")
	}
	var ce *sim.CanceledError
	if !errors.As(err, &ce) {
		t.Fatalf("error %v is not a *sim.CanceledError", err)
	}
	// The checkpoint fires within one cycle batch of the trigger.
	if ce.Cycle < at || ce.Cycle > at+128 {
		t.Errorf("canceled at cycle %d, want within a checkpoint batch of %d", ce.Cycle, at)
	}
	if ce.Phase != sim.PhaseWarmup {
		t.Errorf("stopped in %v, want warm-up (canceled at cycle %d of a 2000-cycle warm-up)", ce.Phase, at)
	}
	if ce.InFlight <= 0 {
		t.Errorf("in-flight snapshot %d, want > 0 at load 0.2", ce.InFlight)
	}
	if res.Cycles != 0 {
		t.Errorf("partial result claims %d completed cycles", res.Cycles)
	}
	// The network is a valid paused simulation: with the cancellation
	// cleared, a fresh Run on the same network must complete.
	net.AttachMetrics(nil)
	if _, err := sim.Run(net, sim.RunConfig{Load: 0.1, WarmupCycles: 100, MeasureCycles: 200, DrainCycles: 20000}); err != nil {
		t.Fatalf("run after a canceled run on the same network: %v", err)
	}
}

func TestRunCtxDeadline(t *testing.T) {
	d := testDragonfly(t)
	ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
	defer cancel()
	net := newNet(t, d, testConfig(), routing.NewUGAL(d, routing.UGALLocalVCH), traffic.NewWorstCase(d))
	// A run far longer than the deadline: the engine must notice.
	_, err := sim.RunCtx(ctx, net, sim.RunConfig{Load: 0.2, WarmupCycles: 50_000_000, MeasureCycles: 1000, DrainCycles: 20000})
	if err == nil {
		t.Fatal("RunCtx outlived a 1ms deadline")
	}
	if !errors.Is(err, sim.ErrCanceled) || !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("error %v should wrap both ErrCanceled and DeadlineExceeded", err)
	}
}

func TestRunCtxBackgroundIsFree(t *testing.T) {
	d := testDragonfly(t)
	net := newNet(t, d, testConfig(), routing.NewMIN(d), traffic.NewUniformRandom(d.Nodes()))
	res, err := sim.RunCtx(context.Background(), net, sim.RunConfig{Load: 0.1, WarmupCycles: 200, MeasureCycles: 200, DrainCycles: 20000})
	if err != nil {
		t.Fatalf("RunCtx(Background): %v", err)
	}
	if res.Latency.Count() == 0 {
		t.Error("no packets measured")
	}
}
