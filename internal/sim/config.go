// Package sim is a cycle-accurate flit-level interconnection-network
// simulator in the style the paper evaluates with (Section 4.2):
// single-cycle input-queued routers with virtual channels and
// credit-based flow control, Bernoulli packet injection, and the
// warm-up → tagged-measurement → drain methodology of Dally & Towles.
//
// The simulator is topology-agnostic: it consumes the wiring table of a
// topology.Graph and delegates every path decision to a Routing
// implementation (internal/routing provides the paper's algorithms). It
// also implements the paper's credit round-trip latency mechanism
// (Section 4.3.2, Figure 17(b)): per-output credit-timestamp queues
// measure t_crt, and returned credits are delayed by the output's
// congestion estimate t_d relative to the least-congested output, which
// stiffens backpressure without shrinking buffers.
package sim

import (
	"fmt"

	"dragonfly/internal/topology"
)

// Config parameterises a simulation.
type Config struct {
	// BufDepth is the input-buffer depth per virtual channel, in flits.
	// The paper uses 16 by default and 256 to emulate a YARC-class
	// router's virtual cut-through buffers.
	BufDepth int
	// OutDepth is the output-buffer depth per virtual channel. The
	// modelled router is two-stage (input and output buffered, like the
	// YARC router the paper references): a flit frees its input slot
	// when it crosses the crossbar into the output buffer. The output
	// stage is a small decoupling FIFO — congestion must queue in the
	// credit-visible input buffers, or upstream routers could never
	// sense it (Section 4.3). 0 means the default of 4.
	OutDepth int
	// VCs is the number of virtual channels per port. The dragonfly
	// routing algorithms need 3 (two for minimal routing plus one more
	// for non-minimal, Figure 7).
	VCs int
	// LocalLatency and GlobalLatency are the cycle counts to traverse
	// local/terminal and global channels. Global channels are the long
	// optical cables, so they default higher.
	LocalLatency, GlobalLatency int
	// DelayCredits enables the credit round-trip latency mechanism
	// (UGAL-L_CR): returned credits are delayed by t_d(out)−min t_d so
	// upstream routers sense downstream congestion sooner. Credits
	// returning across global channels are never delayed.
	DelayCredits bool
	// DelaySlack tunes the credit-delay gate: an output's congestion
	// estimate must exceed twice the router's least-congested output
	// plus this slack before its credits are delayed, so the ordinary
	// queueing jitter of a loaded but balanced network does not trigger
	// the mechanism. 0 means the default of 8 cycles.
	DelaySlack int
	// Seed makes runs reproducible.
	Seed uint64
	// Shards is the number of parallel engine shards the network is
	// partitioned into (see shard.go). 0 or 1 runs the serial engine;
	// any value is clamped to the group count (grouped topologies) or
	// the router count. Results are bit-identical for every shard
	// count.
	Shards int
}

// DefaultConfig returns the paper's baseline simulation parameters.
func DefaultConfig() Config {
	return Config{
		BufDepth:      16,
		VCs:           3,
		LocalLatency:  1,
		GlobalLatency: 2,
		Seed:          1,
	}
}

// Validate reports the first problem with the configuration as a
// *ConfigError.
func (c Config) Validate() error {
	switch {
	case c.BufDepth < 1:
		return &ConfigError{Param: "BufDepth", Value: fmt.Sprint(c.BufDepth), Reason: "input buffers need at least one slot"}
	case c.OutDepth < 0:
		return &ConfigError{Param: "OutDepth", Value: fmt.Sprint(c.OutDepth), Reason: "output depth must be >= 0 (0 takes the default)"}
	case c.VCs < 1:
		return &ConfigError{Param: "VCs", Value: fmt.Sprint(c.VCs), Reason: "at least one virtual channel is required"}
	case c.LocalLatency < 1:
		return &ConfigError{Param: "LocalLatency", Value: fmt.Sprint(c.LocalLatency), Reason: "channel latencies are at least one cycle"}
	case c.GlobalLatency < 1:
		return &ConfigError{Param: "GlobalLatency", Value: fmt.Sprint(c.GlobalLatency), Reason: "channel latencies are at least one cycle"}
	case c.Shards < 0:
		return &ConfigError{Param: "Shards", Value: fmt.Sprint(c.Shards), Reason: "shard count must be >= 0 (0 runs the serial engine)"}
	}
	return nil
}

// HopState is the caller-owned scratch a routing query operates on: the
// simulator copies the packet's routing-relevant state out of its arena
// into a HopState it owns, passes the pointer down, and copies the
// writable fields back afterwards. Routing implementations therefore
// never allocate and never see (or retain) simulator packet storage.
type HopState struct {
	// ID, Seed, Src and Dst identify the packet; read-only for routing.
	ID       uint64
	Seed     uint64
	Src, Dst int

	// Minimal and InterGroup are the source decision: set by Decide,
	// read by NextHop. InterGroup is -1 for minimal packets.
	Minimal    bool
	InterGroup int

	// Phase1 reports that the packet is heading for its final
	// destination group. NextHop sets it when the packet reaches its
	// Valiant intermediate group (the simulator sets it for minimal
	// packets right after Decide).
	Phase1 bool

	// Port and VC are NextHop's outputs: the switch request for the
	// current hop.
	Port, VC int
}

// Routing decides packet paths. Implementations live in internal/routing;
// the simulator calls Decide exactly once per packet — when it first
// reaches the head of its source queue at the source router — and
// NextHop every time a packet is buffered at a router (including right
// after Decide), to obtain the switch request for the current hop.
//
// Both methods read and write the caller-owned *HopState; neither may
// retain it past the call. NextHop must set hs.Port/hs.VC; a Port that
// is a terminal port of the current router ejects the packet.
//
// Both methods may return an error wrapping ErrUnroutable when the
// packet's destination cannot be reached (a fault plan severed every
// legal path); the simulator then drops the packet, counts it in
// Result.Dropped, and the run continues. Any other error aborts the run.
type Routing interface {
	// Name identifies the algorithm in results and logs.
	Name() string
	// Decide makes the source-router adaptive decision (minimal vs.
	// Valiant, intermediate group) for the packet described by hs, which
	// is at router r.
	Decide(net *Network, r *Router, hs *HopState) error
	// NextHop computes the current hop's output port and VC for the
	// packet described by hs, buffered at router r.
	NextHop(net *Network, r *Router, hs *HopState) error
}

// Traffic supplies each injected packet's destination terminal.
// Implementations live in internal/traffic.
type Traffic interface {
	// Name identifies the pattern.
	Name() string
	// Dest returns the destination terminal for a packet injected at
	// terminal src. rand is a fresh 64-bit random value the pattern may
	// use for randomized destinations.
	Dest(src int, rand uint64) int
}

// Topology is the wiring view the simulator needs; *topology.Graph and
// the concrete topologies embedding it satisfy it.
type Topology interface {
	Routers() int
	Terminals() int
	Radix(router int) int
	Port(router, port int) topology.Port
	TerminalRouter(terminal int) int
	TerminalPort(terminal int) int
}

// DegradedTopology is the fault-aware wiring view (topology.Degraded
// implements it): Alive reports whether the channel attached at
// (router, port) can carry flits. When the topology handed to New
// implements it, links whose either endpoint is dead carry no flits,
// and terminals attached to dead ports neither inject nor count in the
// throughput normalisation.
type DegradedTopology interface {
	Topology
	Alive(router, port int) bool
}
