package sim

import (
	"errors"
	"fmt"

	"dragonfly/internal/topology"
)

// This file is the simulator half of the fault-timeline machinery: the
// Network tracks a schedule of epochs (compiled by internal/fault into
// immutable topology.Degraded views) and swaps the active view at event
// cycles, reconciling the flow-control state so the run continues
// seamlessly across the change.
//
// The swap happens at the start of the event cycle, before any flit or
// credit delivery:
//
//   - Links that died lose their in-flight flits (the packets are killed
//     and counted in KilledInFlight — a severed cable loses what was on
//     it) and their credit queues freeze: a dead link carries nothing in
//     either direction until it revives.
//   - Routers that died lose every buffered packet, source queues
//     included, and their sensor state resets.
//   - Links that revived are "retrained": both delay lines clear and the
//     sender's credit count is recomputed as depth minus the receiver's
//     current input occupancy, which restores the per-(port, VC) credit
//     conservation invariant exactly (asserted under the dflydebug tag).
//   - Packets buffered at live routers but queued towards a dead output
//     are rescued: routing re-resolves them against the new view, and
//     only the truly unroutable ones are dropped (counted in Dropped,
//     like any routing-level drop).
//
// Determinism: the swap iterates routers, ports, VCs and links in index
// order and consults only per-network state, so a timeline run is
// bit-identical across hosts and worker counts. With a sharded engine
// the swap still runs serially, on the coordinator, at the per-cycle
// barrier after the mailbox drain — every mailbox is provably empty, so
// the kill/rescue passes see exactly the state the serial engine would.

// Epoch is one interval of a fault timeline as the simulator consumes
// it: View governs the network from cycle Start until the next epoch's
// Start. Schedules are compiled by internal/fault and converted by the
// caller (fault cannot be imported from here — the dependency points
// the other way).
type Epoch struct {
	// Start is the first cycle the view governs. The first epoch must
	// start at cycle 0.
	Start int64
	// View is the fault-aware topology of the epoch.
	View *topology.Degraded
}

// SwitchedTopology is the topology contract a fault timeline needs:
// a degraded view the simulator (and the routing algorithm sharing the
// same value) can swap between epochs. *topology.Switched implements
// it.
type SwitchedTopology interface {
	DegradedTopology
	// SetEpoch swaps the active fault view.
	SetEpoch(*topology.Degraded)
	// Epoch returns the active fault view.
	Epoch() *topology.Degraded
}

// SetTimeline installs a compiled fault timeline. It must be called
// before the first Step, on a network built over a SwitchedTopology
// (so the routing algorithm observes the same epoch swaps). The first
// epoch is applied immediately; subsequent epochs apply at the start
// of their Start cycle, before any delivery.
func (n *Network) SetTimeline(epochs []Epoch) error {
	if len(epochs) == 0 {
		return fmt.Errorf("sim: SetTimeline with no epochs")
	}
	if _, ok := n.topo.(SwitchedTopology); !ok {
		return fmt.Errorf("sim: topology %T cannot swap fault epochs (need a SwitchedTopology)", n.topo)
	}
	if n.now != 0 {
		return fmt.Errorf("sim: SetTimeline after the simulation started (cycle %d)", n.now)
	}
	if epochs[0].Start != 0 {
		return fmt.Errorf("sim: first epoch starts at cycle %d, want 0", epochs[0].Start)
	}
	for i, e := range epochs {
		if e.View == nil {
			return fmt.Errorf("sim: epoch %d has no view", i)
		}
		if i > 0 && e.Start <= epochs[i-1].Start {
			return fmt.Errorf("sim: epoch starts not strictly increasing (%d then %d)",
				epochs[i-1].Start, e.Start)
		}
	}
	n.epochs = epochs
	n.epochIdx = 0
	n.routerDead = make([]bool, len(n.routers))
	// Adopt epoch 0. The network is empty before the first Step, so
	// this only recomputes link and terminal liveness (there is nothing
	// to kill or rescue yet) — including undoing any liveness New
	// derived from a view pre-set on the switched topology.
	return n.applyEpoch(epochs[0].View)
}

// ActiveEpoch returns the index of the governing epoch (0 when no
// timeline is installed).
func (n *Network) ActiveEpoch() int { return n.epochIdx }

// KilledInFlight returns the number of packets destroyed by fault
// events: flits on a link when it died, and packets buffered at a
// router when it died. Distinct from Dropped, which counts packets
// routing abandoned as unroutable.
func (n *Network) KilledInFlight() int64 { return n.killedInFlight }

// Rerouted returns the number of buffered packets re-resolved against
// a new epoch because their queued output died.
func (n *Network) Rerouted() int64 { return n.rerouted }

// advanceEpochs applies every epoch whose Start has been reached. Run
// from Step after the cycle counter advances, before delivery: flits
// that would have completed a dead link exactly at the event cycle are
// killed, not delivered.
func (n *Network) advanceEpochs() error {
	for n.epochIdx+1 < len(n.epochs) && n.epochs[n.epochIdx+1].Start <= n.now {
		n.epochIdx++
		if err := n.applyEpoch(n.epochs[n.epochIdx].View); err != nil {
			return err
		}
	}
	return nil
}

// applyEpoch reconciles the running network with a new fault view. See
// the file comment for the semantics of each pass.
func (n *Network) applyEpoch(v *topology.Degraded) error {
	sw := n.topo.(SwitchedTopology)
	sw.SetEpoch(v) // routing sees the new view from this instant

	// Pass 1: routers that died lose their buffered packets and reset.
	for r := range n.routers {
		down := v.RouterDown(r)
		if down && !n.routerDead[r] {
			n.purgeRouter(&n.routers[r])
		}
		n.routerDead[r] = down
	}

	// Pass 2: link transitions. Death kills the in-flight flits and
	// freezes the link; revival retrains it and reconciles the
	// sender's credits against the receiver's surviving occupancy.
	// Flits riding link l live in the arena of the shard owning l.dst.
	for i := range n.links {
		l := &n.links[i]
		dead := !v.Alive(l.src, l.srcPort)
		switch {
		case dead && !l.dead:
			for l.flits.len() > 0 {
				e := l.flits.pop()
				n.killPacket(n.shardForRouter(l.dst), e.ref, l.dst)
			}
			l.dead = true
			if n.mcLink != nil {
				n.mcLink.LinkState(i, false, n.now)
			}
		case !dead && l.dead:
			n.reviveLink(l)
			l.dead = false
			if n.mcLink != nil {
				n.mcLink.LinkState(i, true, n.now)
			}
		}
	}

	// Pass 3: rescue packets queued at live routers towards dead
	// outputs, re-resolving them against the new view.
	for r := range n.routers {
		if n.routerDead[r] {
			continue
		}
		if err := n.rescueRouter(&n.routers[r]); err != nil {
			return err
		}
	}

	// Pass 4: terminal liveness. Terminals that died lose their source
	// queues and stop injecting (their RNG keeps drawing, preserving
	// the per-terminal streams); revived ones resume.
	alive := 0
	for t := 0; t < n.topo.Terminals(); t++ {
		a := v.Alive(n.topo.TerminalRouter(t), n.topo.TerminalPort(t))
		if !a && n.termAlive[t] {
			rt := &n.routers[n.topo.TerminalRouter(t)]
			q := &rt.srcQ[n.topo.TerminalPort(t)]
			for q.len() > 0 {
				n.killPacket(n.shardForRouter(rt.ID), q.pop(), rt.ID)
			}
		}
		n.termAlive[t] = a
		if a {
			alive++
		}
	}
	n.aliveTerms = alive
	if alive == 0 {
		return fmt.Errorf("sim: epoch at cycle %d leaves no live terminals", n.now)
	}

	// The event reshaped the network; give the stall watchdog a fresh
	// horizon to observe the reconfigured state.
	n.touchLastMove()
	if n.mcEpoch != nil {
		n.mcEpoch.EpochSwitch(n.now, n.epochIdx)
	}
	if arenaDebug {
		if err := n.CheckFlowInvariants(); err != nil {
			return err
		}
	}
	return nil
}

// killPacket destroys an in-flight packet hit by a fault event; sh is
// the shard whose arena owns ref. The caller handles any input-slot
// accounting (purged routers zero their occupancy wholesale; flits on a
// wire hold no slot yet).
func (n *Network) killPacket(sh *shard, ref int32, router int) {
	if sh.ar.flags[ref]&pfMeasured != 0 {
		sh.outstanding--
	}
	sh.inFlight--
	n.killedInFlight++
	if n.mcFault != nil {
		n.mcFault.Kill(router)
	}
	sh.ar.release(ref)
}

// purgeRouter empties a router that died: every buffered packet
// (source queues, crossbar wait queues, output buffers) is killed and
// the sensor state resets. Credits are left stale — every link of a
// dead router is dead, and revival reconciles them per link.
func (n *Network) purgeRouter(r *Router) {
	sh := n.shardForRouter(r.ID)
	for p := 0; p < r.radix; p++ {
		if r.isTerm[p] {
			q := &r.srcQ[p]
			for q.len() > 0 {
				n.killPacket(sh, q.pop(), r.ID)
			}
		}
		r.ctq[p].clear()
		r.td[p] = 0
		r.crossTd[p] = 0
		r.outRR[p] = 0
	}
	for i := range r.waitQ {
		for r.waitQ[i].len() > 0 {
			n.killPacket(sh, r.waitQ[i].pop(), r.ID)
		}
		for r.outQ[i].len() > 0 {
			n.killPacket(sh, r.outQ[i].pop(), r.ID)
		}
		r.inOcc[i] = 0
	}
}

// reviveLink retrains a channel that came back: both delay lines
// clear, the sender's round-trip sensors reset, and the sender's
// credit count is recomputed as buffer depth minus the receiver's
// surviving input occupancy — packets that arrived over the link
// before it died and are still buffered downstream return their
// credits through the revived link when they depart, so conservation
// holds from the first cycle.
func (n *Network) reviveLink(l *link) {
	l.flits.clear()
	l.credits.clear()
	src := &n.routers[l.src]
	dst := &n.routers[l.dst]
	src.ctq[l.srcPort].clear()
	src.td[l.srcPort] = 0
	src.crossTd[l.srcPort] = 0
	for vc := 0; vc < src.vcs; vc++ {
		src.credits[src.pv(l.srcPort, vc)] = int32(src.depth) - dst.inOcc[dst.pv(l.dstPort, vc)]
	}
}

// rescueRouter re-resolves every packet queued at a live router
// towards a dead output. Wait-queue packets keep their input slots and
// re-enter the wait queue of their new hop; output-buffer packets have
// already paid their input slot and move between output buffers (the
// bounded depth may transiently overshoot — the ring grows, and the
// bound re-establishes as the channel drains). Unroutable packets are
// dropped: with full input-slot accounting from the wait queue, without
// it from the output buffer.
func (n *Network) rescueRouter(r *Router) error {
	sh := n.shardForRouter(r.ID)
	for out := 0; out < r.radix; out++ {
		lid := r.outLink[out]
		if lid == nilLink || !n.links[lid].dead {
			continue
		}
		base := out * r.vcs
		for vc := 0; vc < r.vcs; vc++ {
			w := &r.waitQ[base+vc]
			for w.len() > 0 {
				n.rescueBuf = append(n.rescueBuf, w.pop())
			}
			for _, ref := range n.rescueBuf {
				if err := n.nextHop(sh, r, ref); err != nil {
					if errors.Is(err, ErrUnroutable) {
						n.drop(sh, r, ref)
						continue
					}
					n.rescueBuf = n.rescueBuf[:0]
					return err
				}
				r.waitQ[r.pv(int(sh.ar.nextPort[ref]), int(sh.ar.nextVC[ref]))].push(ref)
				n.rerouted++
				if n.mcFault != nil {
					n.mcFault.Reroute(r.ID)
				}
			}
			n.rescueBuf = n.rescueBuf[:0]

			q := &r.outQ[base+vc]
			for q.len() > 0 {
				n.rescueBuf = append(n.rescueBuf, q.pop())
			}
			for _, ref := range n.rescueBuf {
				if err := n.nextHop(sh, r, ref); err != nil {
					if errors.Is(err, ErrUnroutable) {
						n.dropDeparted(sh, r.ID, ref)
						continue
					}
					n.rescueBuf = n.rescueBuf[:0]
					return err
				}
				r.outQ[r.pv(int(sh.ar.nextPort[ref]), int(sh.ar.nextVC[ref]))].push(ref)
				n.rerouted++
				if n.mcFault != nil {
					n.mcFault.Reroute(r.ID)
				}
			}
			n.rescueBuf = n.rescueBuf[:0]
		}
	}
	return nil
}

// dropDeparted abandons an unroutable packet that already crossed the
// crossbar: its input slot was freed (and the credit returned) at
// transfer time, so only the global accounting updates.
func (n *Network) dropDeparted(sh *shard, router int, ref int32) {
	if sh.ar.flags[ref]&pfMeasured != 0 {
		sh.outstanding--
	}
	sh.inFlight--
	sh.dropped++
	sh.lastMove = n.now
	n.emitDrop(sh, router)
	sh.ar.release(ref)
}

// CheckFlowInvariants verifies the per-(link, VC) credit conservation
// law on every live link: the sender's free credits, the receiver's
// input occupancy, the flits in flight and the credits in flight must
// sum to the buffer depth. Between sharded Steps, flits and credits
// posted to a mailbox but not yet drained are in flight too and are
// counted from the outboxes. Epoch swaps re-establish the law by
// construction; this check (run automatically after every swap under
// the dflydebug build tag, and callable from tests in any build)
// proves it.
func (n *Network) CheckFlowInvariants() error {
	// In-transit mailbox entries per (link, vc). Keyed link<<8|vc; VCs
	// are far below 256.
	var transit map[int64]int
	if len(n.shards) > 1 {
		transit = make(map[int64]int)
		for s := range n.shards {
			sh := &n.shards[s]
			for _, out := range sh.flitOut {
				for i := range out {
					transit[int64(out[i].link)<<8|int64(out[i].vc)]++
				}
			}
			for _, out := range sh.credOut {
				for i := range out {
					transit[int64(out[i].link)<<8|int64(out[i].vc)]++
				}
			}
		}
	}
	for i := range n.links {
		l := &n.links[i]
		if l.dead {
			continue
		}
		src := &n.routers[l.src]
		dst := &n.routers[l.dst]
		for vc := 0; vc < src.vcs; vc++ {
			sum := int(src.credits[src.pv(l.srcPort, vc)]) +
				int(dst.inOcc[dst.pv(l.dstPort, vc)]) +
				l.flits.countVC(uint8(vc)) +
				l.credits.countVC(uint8(vc)) +
				transit[int64(i)<<8|int64(vc)]
			if sum != src.depth {
				return &InvariantError{Kind: "credit conservation", Router: l.src, Port: l.srcPort, VC: vc, Cycle: n.now}
			}
		}
	}
	return nil
}
