package sim

import (
	"errors"
	"fmt"
	"strings"
)

// Phase identifies the measurement phase a Run error occurred in.
type Phase uint8

const (
	// PhaseWarmup is the pre-measurement steady-state phase.
	PhaseWarmup Phase = iota
	// PhaseMeasure is the tagged-injection window.
	PhaseMeasure
	// PhaseDrain is the post-measurement drain of tagged packets.
	PhaseDrain
)

// String names the phase the way the run methodology does.
func (p Phase) String() string {
	switch p {
	case PhaseWarmup:
		return "warm-up"
	case PhaseMeasure:
		return "measurement"
	case PhaseDrain:
		return "drain"
	default:
		return fmt.Sprintf("phase(%d)", uint8(p))
	}
}

// ErrStalled is the sentinel every stall (deadlock-detector) failure
// wraps; match it with errors.Is and retrieve the diagnostic snapshot
// with errors.As on *StallError.
var ErrStalled = errors.New("sim: no flit moved (deadlock?)")

// HotVC identifies one heavily occupied input-buffer virtual channel in
// a stall diagnostic: the flits parked there are the ones not moving.
type HotVC struct {
	// Router and Port locate the input buffer; VC the virtual channel.
	Router, Port, VC int
	// Occupancy is the number of flits held in the buffer.
	Occupancy int
	// Waiting is the number of packets queued at Router for output Port
	// (crossbar wait queue plus output buffer), a hint at which output
	// the buffered flits are blocked on.
	Waiting int
}

// StallError reports that no flit moved for StallLimit cycles while
// packets were in flight — the deadlock-detector trip — together with a
// snapshot of the wedged state so deadlocks (for example under fault
// plans that defeat the VC ordering) can be debugged rather than
// guessed at.
type StallError struct {
	// Phase is the run phase the detector fired in.
	Phase Phase
	// Cycle is the simulation cycle at detection time.
	Cycle int64
	// StallLimit is the detector horizon that elapsed without progress.
	StallLimit int64
	// InFlight is the number of packets buffered or on channels.
	InFlight int
	// Hot lists the highest-occupancy input-buffer VCs (most occupied
	// first, at most a handful) — the likely deadlock participants.
	Hot []HotVC
	// Epoch is the fault-timeline epoch the detector fired in (0 when
	// no timeline is installed).
	Epoch int
	// DeadRouters, DeadGlobal, DeadLocal and DeadTerminal are the fault
	// counts of the active view at detection time (all zero on a
	// pristine network): a stall right after an epoch swap is usually
	// livelock against these.
	DeadRouters, DeadGlobal, DeadLocal, DeadTerminal int
}

// faulted reports that the stall happened under a non-trivial fault
// state worth printing.
func (e *StallError) faulted() bool {
	return e.Epoch > 0 || e.DeadRouters > 0 || e.DeadGlobal > 0 || e.DeadLocal > 0 || e.DeadTerminal > 0
}

// Error renders the stall with its diagnostic snapshot.
func (e *StallError) Error() string {
	var b strings.Builder
	fmt.Fprintf(&b, "sim: no flit moved for %d cycles during %s (deadlock?) at cycle %d; %d packets in flight",
		e.StallLimit, e.Phase, e.Cycle, e.InFlight)
	if e.faulted() {
		fmt.Fprintf(&b, "; epoch %d (%d routers, %d global / %d local / %d terminal channels dead)",
			e.Epoch, e.DeadRouters, e.DeadGlobal, e.DeadLocal, e.DeadTerminal)
	}
	if len(e.Hot) > 0 {
		b.WriteString("; top occupancy:")
		for i, h := range e.Hot {
			if i > 0 {
				b.WriteString(",")
			}
			fmt.Fprintf(&b, " r%d.p%d.vc%d=%d(wait %d)", h.Router, h.Port, h.VC, h.Occupancy, h.Waiting)
		}
	}
	return b.String()
}

// Unwrap makes errors.Is(err, ErrStalled) match.
func (e *StallError) Unwrap() error { return ErrStalled }

// ErrCanceled is the sentinel every cancellation failure wraps: the
// run's context was canceled (or its deadline expired) and the engine
// stopped at the next cycle-batch checkpoint. Match it with errors.Is
// and retrieve the partial-run snapshot with errors.As on
// *CanceledError. The underlying context error is also in the chain, so
// errors.Is(err, context.DeadlineExceeded) distinguishes a timeout from
// an explicit cancel.
var ErrCanceled = errors.New("sim: run canceled")

// CanceledError reports that a run observed its context's cancellation
// and stopped, together with how far it got. Cancellation is observed
// only at cycle-batch checkpoints between Steps — it never mutates
// simulation state mid-cycle — so a canceled run's network is a valid
// (merely unfinished) simulation, and re-running the same configuration
// to completion on a fresh network is bit-identical to a run that was
// never canceled.
type CanceledError struct {
	// Phase is the run phase the cancellation was observed in.
	Phase Phase
	// Cycle is the simulation cycle reached when the run stopped.
	Cycle int64
	// InFlight is the number of packets buffered or on channels at
	// cancellation — the work the run abandoned.
	InFlight int
	// Cause is the context's error: context.Canceled or
	// context.DeadlineExceeded.
	Cause error
}

// Error describes the interrupted run.
func (e *CanceledError) Error() string {
	return fmt.Sprintf("sim: run canceled during %s at cycle %d (%d packets in flight): %v",
		e.Phase, e.Cycle, e.InFlight, e.Cause)
}

// Unwrap exposes both the ErrCanceled sentinel and the context cause,
// so errors.Is matches either.
func (e *CanceledError) Unwrap() []error { return []error{ErrCanceled, e.Cause} }

// ErrUnroutable is the sentinel wrapped by every "destination truly
// unreachable" routing failure; match with errors.Is. The simulator
// drops unroutable packets (counting them in Result.Dropped) instead of
// aborting the run, so the sentinel surfaces to callers only through
// routing algorithms used standalone.
var ErrUnroutable = errors.New("routing: destination unreachable")

// UnroutableError identifies the packet a routing algorithm could not
// route: the destination terminal is down, or every path the algorithm
// may legally take (one minimal global hop, or a Valiant detour through
// a live intermediate group) is severed by the fault plan.
type UnroutableError struct {
	// Src and Dst are the packet's terminals (Src may be -1 when the
	// query is not packet-bound).
	Src, Dst int
	// Router is where routing gave up.
	Router int
}

// Error describes the unroutable packet.
func (e *UnroutableError) Error() string {
	return fmt.Sprintf("routing: no live route to terminal %d (packet from %d, at router %d)", e.Dst, e.Src, e.Router)
}

// Unwrap makes errors.Is(err, ErrUnroutable) match.
func (e *UnroutableError) Unwrap() error { return ErrUnroutable }

// ConfigError reports an invalid configuration value (Config or
// RunConfig): which parameter, what it was, and why it is rejected.
// Validation happens before the simulation touches the value, so a bad
// configuration is a typed error instead of a downstream panic (NaN
// loads, for example, would otherwise silently never inject).
type ConfigError struct {
	// Param is the offending field name ("Load", "MeasureCycles", ...).
	Param string
	// Value is the rejected value, rendered.
	Value string
	// Reason says what the field requires.
	Reason string
}

// Error describes the rejected parameter.
func (e *ConfigError) Error() string {
	return fmt.Sprintf("sim: invalid config: %s = %s (%s)", e.Param, e.Value, e.Reason)
}

// ErrBadSnapshot is the sentinel every snapshot decode failure wraps:
// the bytes handed to Restore/ResumeCtx are not a usable dfly-snap/1
// snapshot — truncated, corrupt, a different (unsupported) snapshot
// version, or taken from a network this one does not match. Match it
// with errors.Is and retrieve the diagnostic with errors.As on
// *SnapshotError. Restoring from a bad snapshot never panics and never
// allocates proportional to a corrupt length field; it also cannot be
// rolled back, so on error the target network must be discarded.
var ErrBadSnapshot = errors.New("sim: bad snapshot")

// SnapshotError says why a snapshot was rejected.
type SnapshotError struct {
	// Reason is the first problem the decoder found.
	Reason string
}

// Error describes the rejected snapshot.
func (e *SnapshotError) Error() string { return "sim: snapshot: " + e.Reason }

// Unwrap makes errors.Is(err, ErrBadSnapshot) match.
func (e *SnapshotError) Unwrap() error { return ErrBadSnapshot }

// InvariantError reports a violated flow-control invariant (buffer or
// credit overflow): a simulator or routing bug. It fails the run it
// occurred in instead of panicking, so one poisoned simulation cannot
// kill a whole parallel sweep worker pool.
type InvariantError struct {
	// Kind names the violated invariant ("buffer overflow", "credit
	// overflow").
	Kind string
	// Router, Port and VC locate the violation.
	Router, Port, VC int
	// Cycle is the simulation cycle it was detected.
	Cycle int64
}

// Error describes the violation.
func (e *InvariantError) Error() string {
	return fmt.Sprintf("sim: %s at router %d port %d vc %d (flow-control bug) at cycle %d",
		e.Kind, e.Router, e.Port, e.VC, e.Cycle)
}
