package sim

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"

	"dragonfly/internal/metrics"
	"dragonfly/internal/topology"
)

// Network is a running simulation instance: the routers, channels and
// terminals of one topology, plus injection and measurement state.
//
// The hot state is allocation-free by construction: packets live in
// struct-of-arrays arenas and move through the queues as int32 refs,
// routers and links are value slices, and the per-query scratch
// (HopState, the OnEject Packet view) is owned by the engine shards and
// reused. Steady-state cycles allocate only when a queue, an arena or a
// mailbox has to grow past its high-water mark.
//
// The engine is partitioned into one or more shards (see shard.go);
// the single-shard partition is the serial engine and runs entirely on
// the calling goroutine. Results are bit-identical for any shard count.
type Network struct {
	topo    Topology
	cfg     Config
	routing Routing
	traffic Traffic

	now     int64
	routers []Router
	links   []link

	termRNG []RNG
	// termSeq numbers each terminal's injections; packet ids are
	// terminal<<32 | seq, so id assignment is shard-local and identical
	// for every shard count.
	termSeq []uint64

	// source is the arrival process (never nil; Bernoulli by default).
	// srcGated caches the loadGated capability so the zero-load
	// injection fast path costs one bool test, not a type assertion.
	source   Source
	srcGated bool

	// Engine shards: the partition of routers/terminals/arena state
	// (always at least one), the router→shard map, the prebuilt phase
	// closures and their barrier. inPhase is true only while the
	// parallel main phase runs, and gates event buffering and mailbox
	// routing; it is written exclusively by the coordinator between
	// barriers.
	shards      []shard
	routerShard []int32
	drainFns    []func()
	mainFns     []func()
	wg          sync.WaitGroup
	inPhase     bool

	// Fault state, populated when the topology implements
	// DegradedTopology: terminals attached to dead ports or dead routers
	// neither inject nor count toward throughput normalisation, and
	// dropped (per shard) counts packets abandoned because routing found
	// no live path (errors wrapping ErrUnroutable).
	termAlive  []bool
	aliveTerms int

	// Timeline state (SetTimeline): the epoch schedule, the governing
	// epoch index, per-router down flags for transition detection, the
	// fault-kill and reroute counters, and the rescue scratch buffer.
	// Epoch swaps always run serially on the coordinator.
	epochs         []Epoch
	epochIdx       int
	routerDead     []bool
	killedInFlight int64
	rerouted       int64
	rescueBuf      []int32

	// Injection control.
	load float64

	// Cancellation (SetContext): Step polls ctxDone at cycle-batch
	// checkpoints (every ctxCheckInterval cycles, before the cycle body
	// runs) and returns a *CanceledError when it is closed. ctxDone is
	// nil when no cancelable context is installed — the common case pays
	// one untaken branch per cycle and nothing else.
	ctx     context.Context
	ctxDone <-chan struct{}

	// Measurement state (driven by Run). Both flags are written only
	// between Steps and read (never written) inside the phases.
	measuring   bool
	countWindow bool

	// mc receives instrumentation events when a collector is attached;
	// nil (the default) turns every emission site into one untaken
	// branch. The typed sinks below cache the collector's extension
	// interfaces (resolved once, at AttachMetrics) so the hot loop pays
	// a nil check per event site instead of a type assertion per event.
	mc      metrics.Collector
	mcFault metrics.FaultObserver
	mcEpoch metrics.EpochObserver
	mcCycle metrics.CycleObserver
	mcEject metrics.EjectObserver
	mcHop   metrics.HopObserver
	mcLink  metrics.LinkStateObserver

	// OnEject, when non-nil, observes every ejected packet before its
	// arena slot is recycled; the *Packet is a reused view and must not
	// be retained. With more than one shard the calls are replayed on
	// the coordinator at the end of each cycle, in ascending router
	// order — the serial order.
	OnEject func(p *Packet, now int64)
}

// New builds a network over topo with the given algorithm and traffic
// pattern. The topology is not copied; it must not be mutated afterwards.
func New(topo Topology, cfg Config, routing Routing, traffic Traffic) (*Network, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if topo.Routers() == 0 || topo.Terminals() == 0 {
		return nil, fmt.Errorf("sim: topology has no routers or terminals")
	}
	n := &Network{
		topo:    topo,
		cfg:     cfg,
		routing: routing,
		traffic: traffic,
	}
	n.routers = make([]Router, topo.Routers())
	for r := range n.routers {
		n.routers[r].init(r, topo, cfg)
	}
	// Build one directed link per non-terminal port direction, then
	// cross-wire the in/out ids (two passes so append can't invalidate
	// ids handed out earlier).
	for r := range n.routers {
		rt := &n.routers[r]
		for p := 0; p < rt.radix; p++ {
			pt := topo.Port(r, p)
			if pt.Class == topology.ClassTerminal {
				continue
			}
			lat := int64(cfg.LocalLatency)
			if pt.Class == topology.ClassGlobal {
				lat = int64(cfg.GlobalLatency)
			}
			id := len(n.links)
			n.links = append(n.links, link{
				id:      id,
				src:     r,
				srcPort: p,
				dst:     pt.PeerRouter,
				dstPort: pt.PeerPort,
				latency: lat,
				global:  pt.Class == topology.ClassGlobal,
			})
			l := &n.links[id]
			// One flit enters per cycle and rides for `latency` cycles,
			// so the delay line never holds more than latency+1 flits;
			// credits are 1:1 with downstream buffer slots.
			l.flits.reserve(int(lat) + 1)
			l.credits.reserve(cfg.VCs * cfg.BufDepth)
			rt.outLink[p] = int32(id)
			rt.tcrt0[p] = 2 * lat
			// Credits for router-to-router outputs start full.
			for vc := 0; vc < cfg.VCs; vc++ {
				rt.credits[rt.pv(p, vc)] = int32(cfg.BufDepth)
			}
		}
	}
	for i := range n.links {
		l := &n.links[i]
		n.routers[l.dst].inLink[l.dstPort] = int32(i)
	}
	n.termRNG = make([]RNG, topo.Terminals())
	for t := range n.termRNG {
		n.termRNG[t] = NewRNG(cfg.Seed, uint64(t))
	}
	n.source = bernoulli{}
	n.srcGated = true
	n.termSeq = make([]uint64, topo.Terminals())
	n.termAlive = make([]bool, topo.Terminals())
	for t := range n.termAlive {
		n.termAlive[t] = true
	}
	n.aliveTerms = topo.Terminals()
	if deg, ok := topo.(DegradedTopology); ok {
		for i := range n.links {
			l := &n.links[i]
			l.dead = !deg.Alive(l.src, l.srcPort)
		}
		for t := 0; t < topo.Terminals(); t++ {
			if !deg.Alive(topo.TerminalRouter(t), topo.TerminalPort(t)) {
				n.termAlive[t] = false
				n.aliveTerms--
			}
		}
		if n.aliveTerms == 0 {
			return nil, fmt.Errorf("sim: fault plan leaves no live terminals")
		}
	}
	n.buildShards(cfg.Shards)
	return n, nil
}

// ctxCheckInterval is the cycle-batch granularity of the cancellation
// checkpoint: Step polls the installed context's done channel once
// every this many cycles (a power of two). Cancellation latency is
// therefore at most ctxCheckInterval cycle bodies.
const ctxCheckInterval = 64

// SetContext installs ctx as the engine's cancellation signal: every
// subsequent Step observes it at cycle-batch checkpoints (both the
// serial and the sharded engine — the checkpoint sits before the
// per-cycle pipeline dispatch) and returns a *CanceledError wrapping
// ErrCanceled once it is done. A nil ctx, or one that can never be
// canceled (context.Background), uninstalls the check entirely and
// restores the zero-cost path. RunCtx installs and removes the run's
// context automatically; SetContext is for callers driving Step by
// hand.
func (n *Network) SetContext(ctx context.Context) {
	if ctx == nil {
		n.ctx, n.ctxDone = nil, nil
		return
	}
	n.ctx, n.ctxDone = ctx, ctx.Done()
}

// Now returns the current cycle.
func (n *Network) Now() int64 { return n.now }

// Config returns the simulation configuration.
func (n *Network) Config() Config { return n.cfg }

// Topology returns the wiring the network was built over.
func (n *Network) Topology() Topology { return n.topo }

// RouterAt returns the simulation state of router id. Routing algorithms
// use it for remote (UGAL-G) or local congestion queries.
func (n *Network) RouterAt(id int) *Router { return &n.routers[id] }

// SetLoad sets the offered load scalar per terminal per cycle, in
// flits (load 1.0 = every terminal injects every cycle). The installed
// Source interprets it: the default Bernoulli source injects with this
// probability each cycle, bursty sources modulate it, trace replay
// ignores it.
func (n *Network) SetLoad(load float64) { n.load = load }

// Source returns the installed arrival process (never nil).
func (n *Network) Source() Source { return n.source }

// SetSource installs s as the arrival process for every terminal. It
// must be called before the first Step — source state is part of the
// snapshot fingerprint, and swapping processes mid-run would make the
// run irreproducible. A nil s restores the default Bernoulli source.
func (n *Network) SetSource(s Source) error {
	if n.now != 0 {
		return fmt.Errorf("sim: SetSource after the simulation started (cycle %d)", n.now)
	}
	if s == nil {
		s = bernoulli{}
	}
	if w := s.StateWords(); w < 0 || w > maxSourceStateWords {
		return &ConfigError{Param: "Source", Value: s.Name(),
			Reason: fmt.Sprintf("StateWords %d outside [0, %d]", w, maxSourceStateWords)}
	}
	n.source = s
	g, ok := s.(loadGated)
	n.srcGated = ok && g.LoadGated()
	return nil
}

// AttachMetrics installs c as the instrumentation sink; nil detaches it
// and restores the zero-cost path. The previous collector is returned so
// callers can stack and restore.
//
// The extension interfaces (metrics.FaultObserver and friends) are
// resolved here, once: a collector subscribes to an event family by
// implementing its interface. If c implements
// metrics.LinkStateObserver, every currently-dead link is reported to
// it immediately, so collectors see standing fault plans (and the
// in-progress epoch of a timeline) without waiting for the next
// transition.
func (n *Network) AttachMetrics(c metrics.Collector) (prev metrics.Collector) {
	prev = n.mc
	n.mc = c
	n.mcFault, _ = c.(metrics.FaultObserver)
	n.mcEpoch, _ = c.(metrics.EpochObserver)
	n.mcCycle, _ = c.(metrics.CycleObserver)
	n.mcEject, _ = c.(metrics.EjectObserver)
	n.mcHop, _ = c.(metrics.HopObserver)
	n.mcLink, _ = c.(metrics.LinkStateObserver)
	if n.mcHop != nil {
		// Fresh tracer: discard credit-stall cycles accrued while no
		// tracer was listening (or destined for a previous tracer).
		for i := range n.routers {
			s := n.routers[i].stallCyc
			for j := range s {
				s[j] = 0
			}
		}
	}
	if n.mcLink != nil {
		for i := range n.links {
			if n.links[i].dead {
				n.mcLink.LinkState(i, false, n.now)
			}
		}
	}
	return prev
}

// Metrics returns the currently attached collector, nil when metrics are
// off.
func (n *Network) Metrics() metrics.Collector { return n.mc }

// NumLinks returns the number of directed router-to-router channels.
func (n *Network) NumLinks() int { return len(n.links) }

// LinkID maps (router, output port) to the id metrics events carry, -1
// when the port has no channel (terminal ports).
func (n *Network) LinkID(router, port int) int {
	l := n.routers[router].outLink[port]
	if l == nilLink {
		return -1
	}
	return int(l)
}

// LinkIsGlobal reports whether channel id is a global (inter-group)
// channel. Collectors use it to split utilization by channel class.
func (n *Network) LinkIsGlobal(link int) bool { return n.links[link].global }

// InFlight returns the number of packets buffered or on channels
// (shard mailboxes included).
func (n *Network) InFlight() int { return n.totalInFlight() }

// Dropped returns the number of packets abandoned because routing found
// no live path (fault plans only; always 0 on a pristine topology).
func (n *Network) Dropped() int64 { return n.totalDropped() }

// AliveTerminals returns the number of terminals that can inject and
// eject under the current fault plan.
func (n *Network) AliveTerminals() int { return n.aliveTerms }

// loadHop fills the shard's routing scratch from arena slot ref.
func (n *Network) loadHop(sh *shard, ref int32) {
	f := sh.ar.flags[ref]
	sh.hs.ID = sh.ar.id[ref]
	sh.hs.Seed = sh.ar.seed[ref]
	sh.hs.Src = int(sh.ar.src[ref])
	sh.hs.Dst = int(sh.ar.dst[ref])
	sh.hs.Minimal = f&pfMinimal != 0
	sh.hs.InterGroup = int(sh.ar.interGrp[ref])
	sh.hs.Phase1 = f&pfPhase1 != 0
	sh.hs.Port = int(sh.ar.nextPort[ref])
	sh.hs.VC = int(sh.ar.nextVC[ref])
}

// storeHop writes the scratch's writable fields back to arena slot ref.
func (n *Network) storeHop(sh *shard, ref int32) {
	f := sh.ar.flags[ref] &^ (pfMinimal | pfPhase1)
	if sh.hs.Minimal {
		f |= pfMinimal
	}
	if sh.hs.Phase1 {
		f |= pfPhase1
	}
	sh.ar.flags[ref] = f
	sh.ar.interGrp[ref] = int32(sh.hs.InterGroup)
	sh.ar.nextPort[ref] = int16(sh.hs.Port)
	sh.ar.nextVC[ref] = int8(sh.hs.VC)
}

// decide runs the source-router routing decision for slot ref at r.
func (n *Network) decide(sh *shard, r *Router, ref int32) error {
	n.loadHop(sh, ref)
	if err := n.routing.Decide(n, r, &sh.hs); err != nil {
		return err
	}
	n.storeHop(sh, ref)
	return nil
}

// nextHop computes the switch request for slot ref buffered at r.
func (n *Network) nextHop(sh *shard, r *Router, ref int32) error {
	n.loadHop(sh, ref)
	if err := n.routing.NextHop(n, r, &sh.hs); err != nil {
		return err
	}
	n.storeHop(sh, ref)
	return nil
}

// Step advances the simulation one cycle: deliver flits and credits that
// completed their channel latency, inject new packets, make the
// source-queue routing decisions, eject arrived packets, and forward one
// flit per output channel on every router. It returns a non-nil error —
// an *InvariantError or an aborting routing error — only when the
// network state can no longer be trusted; unroutable packets are dropped
// and counted, not errors.
//
// With more than one shard the cycle runs as drain → epoch swap →
// parallel main phase → event fold (see shard.go); with one shard it
// runs inline on the calling goroutine.
func (n *Network) Step() error {
	// Cancellation checkpoint: observed between cycles, before anything
	// mutates, so an interrupted network is a valid partial simulation.
	// The batch interval bounds polling cost on tiny networks; one cycle
	// of a large network already dwarfs the non-blocking channel check.
	if n.ctxDone != nil && n.now&(ctxCheckInterval-1) == 0 {
		select {
		case <-n.ctxDone:
			return &CanceledError{Cycle: n.now, InFlight: n.totalInFlight(), Cause: context.Cause(n.ctx)}
		default:
		}
	}
	n.now++
	if len(n.shards) > 1 {
		return n.stepSharded()
	}
	if n.epochs != nil {
		if err := n.advanceEpochs(); err != nil {
			return err
		}
	}
	if err := n.mainShard(&n.shards[0]); err != nil {
		return err
	}
	if n.mcCycle != nil {
		n.mcCycle.CycleEnd(n.now)
	}
	return nil
}

// deliver moves flits and credits whose latency elapsed into their
// destination routers, walking the shard's links in ascending id order
// (single-shard: all links, both sides — the serial order). Delivered
// flits are routed immediately and placed in the virtual output queue
// of their next hop.
func (n *Network) deliver(sh *shard) error {
	for _, sl := range sh.linkOrder {
		l := &n.links[sl.id]
		if l.dead {
			// A dead channel delivers nothing in either direction: its
			// queues are frozen until a revival retrains them. (Static
			// fault plans never queue anything on a dead link, so this
			// skip changes nothing for them.)
			continue
		}
		if sl.flit {
			for {
				f := l.flits.peek()
				if f == nil || f.at > n.now {
					break
				}
				e := l.flits.pop()
				rt := &n.routers[l.dst]
				occ := &rt.inOcc[rt.pv(l.dstPort, int(e.vc))]
				if *occ >= int32(rt.depth) {
					return &InvariantError{Kind: "buffer overflow", Router: l.dst, Port: l.dstPort, VC: int(e.vc), Cycle: n.now}
				}
				*occ++
				if n.mc != nil {
					if n.inPhase {
						sh.ev = append(sh.ev, evRec{kind: evVCOcc, hop: metrics.Hop{
							Router: l.dst, Port: l.dstPort, VC: int(e.vc), CreditStall: int64(*occ)}})
					} else {
						n.mc.VCOccupancy(l.dst, l.dstPort, int(e.vc), int(*occ))
					}
				}
				ref := e.ref
				sh.ar.inPort[ref] = int16(l.dstPort)
				sh.ar.bufVC[ref] = int8(e.vc)
				sh.ar.hops[ref]++
				sh.ar.arrive[ref] = n.now
				if err := n.nextHop(sh, rt, ref); err != nil {
					if errors.Is(err, ErrUnroutable) {
						n.drop(sh, rt, ref)
						continue
					}
					return err
				}
				rt.waitQ[rt.pv(int(sh.ar.nextPort[ref]), int(sh.ar.nextVC[ref]))].push(ref)
			}
		}
		if sl.cred {
			for {
				c := l.credits.peek()
				if c == nil || c.at > n.now {
					break
				}
				e := l.credits.pop()
				rt := &n.routers[l.src]
				cr := &rt.credits[rt.pv(l.srcPort, int(e.vc))]
				*cr++
				if *cr > int32(rt.depth) {
					return &InvariantError{Kind: "credit overflow", Router: l.src, Port: l.srcPort, VC: int(e.vc), Cycle: n.now}
				}
				// Credit round-trip measurement (Figure 17(b)): pop the send
				// timestamp and refresh t_d for this output.
				if ts := rt.ctq[l.srcPort].peek(); ts != nil {
					sent := rt.ctq[l.srcPort].pop()
					tcrt := n.now - sent.at
					if n.mc != nil {
						if n.inPhase {
							sh.ev = append(sh.ev, evRec{kind: evRTT, hop: metrics.Hop{
								Router: l.src, Port: l.srcPort, CreditStall: tcrt}})
						} else {
							n.mc.CreditRTT(l.src, l.srcPort, tcrt)
						}
					}
					td := tcrt - rt.tcrt0[l.srcPort]
					if td < 0 {
						td = 0
					}
					rt.td[l.srcPort] = ewma(rt.td[l.srcPort], td)
				}
			}
		}
	}
	return nil
}

// drop abandons a packet that routing declared unroutable at router r:
// its input-buffer slot is freed, the credit returned upstream (plain,
// without the congestion delay — the next port is not meaningful for an
// unrouted packet), and the packet is counted in Dropped. Dropping is
// forward progress: it resets the stall detector like any flit movement.
func (n *Network) drop(sh *shard, r *Router, ref int32) {
	inP := int(sh.ar.inPort[ref])
	bvc := int(sh.ar.bufVC[ref])
	r.inOcc[r.pv(inP, bvc)]--
	if up := r.inLink[inP]; up != nilLink {
		ul := &n.links[up]
		n.pushCredit(sh, ul, uint8(bvc), n.now+ul.latency)
	}
	if sh.ar.flags[ref]&pfMeasured != 0 {
		sh.outstanding--
	}
	sh.inFlight--
	sh.dropped++
	sh.lastMove = n.now
	n.emitDrop(sh, r.ID)
	sh.ar.release(ref)
}

// inject runs the arrival process at the shard's terminals: the Source
// decides whether a packet is offered (one gate decision per terminal
// per cycle, drawing from the terminal's own RNG stream), and either
// forces the destination or defers it to the traffic pattern. With the
// default Bernoulli source the draw sequence — gate, per-packet seed,
// destination — is exactly the pre-Source engine's, which is what keeps
// the legacy golden hashes pinned.
func (n *Network) inject(sh *shard) {
	if n.load <= 0 && n.srcGated {
		return
	}
	for _, t32 := range sh.terms {
		t := int(t32)
		r := &n.termRNG[t]
		fire, fdst := n.source.Arrive(t, n.now, n.load, r)
		if !fire {
			continue
		}
		if !n.termAlive[t] {
			continue // dead terminal: draws consumed, nothing injected
		}
		ref := sh.ar.alloc()
		sh.ar.id[ref] = uint64(t)<<32 | n.termSeq[t]
		n.termSeq[t]++
		sh.ar.seed[ref] = r.Next()
		sh.ar.src[ref] = int32(t)
		if fdst >= 0 {
			sh.ar.dst[ref] = int32(fdst)
		} else {
			sh.ar.dst[ref] = int32(n.traffic.Dest(t, r.Next()))
		}
		sh.ar.create[ref] = n.now
		sh.ar.interGrp[ref] = -1
		sh.ar.inPort[ref] = -1
		if n.measuring {
			sh.ar.flags[ref] |= pfMeasured
			sh.outstanding++
		}
		sh.inFlight++
		if n.countWindow {
			sh.injectedWindow++
		}
		rt := &n.routers[n.topo.TerminalRouter(t)]
		rt.srcQ[n.topo.TerminalPort(t)].push(ref)
	}
}

// admitSources moves at most one packet per terminal per cycle from its
// source queue into the router's terminal input buffer (the terminal
// channel bandwidth), making the source-router routing decision at that
// moment. Admission requires a free input slot, so source queues feel
// the router's backpressure like any upstream channel.
func (n *Network) admitSources(sh *shard, r *Router) error {
	for p := 0; p < r.radix; p++ {
		if !r.isTerm[p] {
			continue
		}
		head := r.srcQ[p].peek()
		if head == nilRef || r.inOcc[r.pv(p, 0)] >= int32(r.depth) {
			continue
		}
		r.srcQ[p].pop()
		r.inOcc[r.pv(p, 0)]++
		sh.ar.inPort[head] = int16(p)
		sh.ar.bufVC[head] = 0
		sh.ar.inject[head] = n.now
		sh.ar.arrive[head] = n.now
		sh.ar.flags[head] |= pfDecided
		if err := n.decide(sh, r, head); err != nil {
			if errors.Is(err, ErrUnroutable) {
				n.drop(sh, r, head)
				continue
			}
			return err
		}
		if sh.ar.flags[head]&pfMinimal != 0 {
			sh.ar.flags[head] |= pfPhase1
		}
		if err := n.nextHop(sh, r, head); err != nil {
			if errors.Is(err, ErrUnroutable) {
				n.drop(sh, r, head)
				continue
			}
			return err
		}
		r.waitQ[r.pv(int(sh.ar.nextPort[head]), int(sh.ar.nextVC[head]))].push(head)
	}
	return nil
}

// eject drains every flit queued for a terminal output. Ejection
// bandwidth is unconstrained, modelling the paper's assumption of
// sufficient router speedup so that ejection is never the bottleneck.
// Inside the parallel phase, ejection observers (collector, OnEject)
// are deferred: the arena ref is buffered and replayed — in serial
// router order — at the end-of-cycle fold.
func (n *Network) eject(sh *shard, r *Router) {
	for p := 0; p < r.radix; p++ {
		if !r.isTerm[p] {
			continue
		}
		for vc := 0; vc < r.vcs; vc++ {
			q := &r.waitQ[r.pv(p, vc)]
			for q.len() > 0 {
				ref := q.pop()
				n.departed(sh, r, ref)
				if sh.ar.flags[ref]&pfMeasured != 0 {
					sh.outstanding--
				}
				sh.inFlight--
				if n.countWindow {
					sh.ejectedWindow++
				}
				sh.lastMove = n.now
				if n.inPhase && (n.mcEject != nil || n.OnEject != nil) {
					sh.ev = append(sh.ev, evRec{kind: evEject, ref: ref, hop: metrics.Hop{Router: r.ID}})
					continue // slot released after replay
				}
				if n.mcEject != nil {
					f := sh.ar.flags[ref]
					n.mcEject.PacketEjected(metrics.Eject{
						Cycle:    n.now,
						Packet:   sh.ar.id[ref],
						Router:   r.ID,
						Latency:  n.now - sh.ar.create[ref],
						Minimal:  f&pfMinimal != 0,
						Measured: f&pfMeasured != 0,
					})
				}
				if n.OnEject != nil {
					sh.ar.view(ref, &sh.ejectView)
					sh.ejectView.EjectTime = n.now
					n.OnEject(&sh.ejectView, n.now)
				}
				sh.ar.release(ref)
			}
		}
	}
}

// departed frees arena slot ref's input-buffer slot and returns the
// credit upstream when it crosses the crossbar (or ejects) at router r.
func (n *Network) departed(sh *shard, r *Router, ref int32) {
	inP := int(sh.ar.inPort[ref])
	bvc := int(sh.ar.bufVC[ref])
	r.inOcc[r.pv(inP, bvc)]--
	upID := r.inLink[inP]
	if upID == nilLink {
		return // terminal input: the freed slot is visible directly
	}
	up := &n.links[upID]
	var delay int64
	// Credit round-trip congestion signalling: delay the credit by the
	// congestion estimate of the output the packet went to, relative to
	// the router's least-congested output. Credits crossing global
	// channels are never delayed (Section 4.3.2), which both bounds the
	// mechanism and keeps the expensive channels fully utilisable.
	nextPort := int(sh.ar.nextPort[ref])
	if n.cfg.DelayCredits && !up.global && !r.isTerm[nextPort] {
		// The delay uses only the locally measured crossing wait; folding
		// the downstream round-trip excess back in would compound the
		// delays recursively hop-by-hop and throttle uniformly loaded
		// networks. The baseline subtracted is the router's second most
		// congested output (the robust form of the paper's variance
		// trick): only an outlier output — a genuine hot spot — delays
		// credits, never the queueing jitter of a busy balanced router.
		slack := int64(n.cfg.DelaySlack)
		if slack == 0 {
			slack = 8
		}
		if out := r.outLink[nextPort]; out != nilLink && n.links[out].global {
			base := r.baseCrossTD()
			if td := r.crossTd[nextPort]; td > 2*base+slack {
				delay = td - base - slack
			}
		}
	}
	n.pushCredit(sh, up, uint8(bvc), n.now+up.latency+delay)
}

// transfer crosses the crossbar: flits move from waitQ into the bounded
// output buffers at unlimited rate (the "sufficient speedup" of Section
// 4.2), freeing their input slots and returning credits upstream.
func (n *Network) transfer(sh *shard, r *Router) {
	for out := 0; out < r.radix; out++ {
		if r.outLink[out] == nilLink {
			continue // terminal outputs eject straight from waitQ
		}
		base := out * r.vcs
		for vc := 0; vc < r.vcs; vc++ {
			w := &r.waitQ[base+vc]
			q := &r.outQ[base+vc]
			for w.len() > 0 && q.len() < r.outDepth {
				ref := w.pop()
				if n.cfg.DelayCredits {
					r.crossTd[out] = asymEwma(r.crossTd[out], n.now-sh.ar.arrive[ref])
				}
				n.departed(sh, r, ref)
				q.push(ref)
			}
		}
	}
}

// allocate forwards at most one flit per output channel per cycle from
// the output buffer, round-robin over the output's VCs. A flit leaving
// for a router owned by another shard is posted into that shard's
// mailbox (with its full arena payload) instead of onto the link; the
// receiver re-homes it at the start of the next cycle, before any
// delivery can be due.
func (n *Network) allocate(sh *shard, r *Router) {
	for out := 0; out < r.radix; out++ {
		lid := r.outLink[out]
		if lid == nilLink {
			continue // terminal outputs are handled by eject
		}
		l := &n.links[lid]
		if l.dead {
			continue // failed channel: carries no flits
		}
		base := out * r.vcs
		start := int(r.outRR[out])
		for i := 0; i < r.vcs; i++ {
			vc := start + i
			if vc >= r.vcs {
				vc -= r.vcs
			}
			q := &r.outQ[base+vc]
			if q.len() == 0 || r.credits[base+vc] <= 0 {
				// Credit-stall accounting, only while a hop tracer is
				// attached: flits are waiting but the downstream buffer has
				// no free slot.
				if n.mcHop != nil && q.len() > 0 {
					r.stallCyc[base+vc]++
				}
				continue
			}
			ref := q.pop()
			r.credits[base+vc]--
			r.ctq[out].push(0, n.now)
			if n.mc != nil {
				if n.inPhase {
					sh.ev = append(sh.ev, evRec{kind: evFlit, hop: metrics.Hop{Link: l.id}})
				} else {
					n.mc.ChannelFlit(l.id)
				}
			}
			if n.mcHop != nil {
				f := sh.ar.flags[ref]
				h := metrics.Hop{
					Packet:      sh.ar.id[ref],
					Cycle:       n.now,
					Router:      r.ID,
					Port:        out,
					VC:          vc,
					Link:        l.id,
					Minimal:     f&pfMinimal != 0,
					Phase1:      f&pfPhase1 != 0,
					CreditStall: r.stallCyc[base+vc],
				}
				if n.inPhase {
					sh.ev = append(sh.ev, evRec{kind: evHop, hop: h})
				} else {
					n.mcHop.PacketHop(h)
				}
				r.stallCyc[base+vc] = 0
			}
			if ds := n.routerShard[l.dst]; int(ds) != sh.idx {
				fl := sh.ar.flags[ref]
				sh.flitOut[ds] = append(sh.flitOut[ds], flitXfer{
					at:       n.now + l.latency,
					create:   sh.ar.create[ref],
					inject:   sh.ar.inject[ref],
					id:       sh.ar.id[ref],
					seed:     sh.ar.seed[ref],
					link:     int32(l.id),
					dst:      sh.ar.dst[ref],
					src:      sh.ar.src[ref],
					interGrp: sh.ar.interGrp[ref],
					nextPort: sh.ar.nextPort[ref],
					hops:     sh.ar.hops[ref],
					nextVC:   sh.ar.nextVC[ref],
					vc:       uint8(vc),
					flags:    fl,
				})
				if fl&pfMeasured != 0 {
					sh.outstanding--
				}
				sh.inFlight--
				sh.ar.release(ref)
			} else {
				l.flits.push(flitEntry{ref: ref, vc: uint8(vc), at: n.now + l.latency})
			}
			rr := vc + 1
			if rr >= r.vcs {
				rr -= r.vcs
			}
			r.outRR[out] = int32(rr)
			sh.lastMove = n.now
			break
		}
	}
}

// stallError builds the deadlock-detector diagnostic: which phase
// tripped it, how many packets are wedged, and the most occupied
// input-buffer VCs (the likely deadlock participants).
func (n *Network) stallError(phase Phase, limit int64) *StallError {
	if n.mc != nil {
		n.mc.Stall(n.now)
	}
	e := &StallError{
		Phase:      phase,
		Cycle:      n.now,
		StallLimit: limit,
		InFlight:   n.totalInFlight(),
		Epoch:      n.epochIdx,
	}
	// Attach the fault context: a stall right after an epoch swap is
	// usually livelock against the dead channels, and the per-class dead
	// counts say which.
	if n.epochs != nil {
		e.DeadRouters, e.DeadGlobal, e.DeadLocal, e.DeadTerminal = n.epochs[n.epochIdx].View.FaultCounts()
	} else if fc, ok := n.topo.(interface{ FaultCounts() (int, int, int, int) }); ok {
		e.DeadRouters, e.DeadGlobal, e.DeadLocal, e.DeadTerminal = fc.FaultCounts()
	}
	for i := range n.routers {
		r := &n.routers[i]
		for p := 0; p < r.radix; p++ {
			for vc := 0; vc < r.vcs; vc++ {
				occ := int(r.inOcc[r.pv(p, vc)])
				if occ == 0 {
					continue
				}
				waiting := 0
				for wvc := 0; wvc < r.vcs; wvc++ {
					waiting += r.waitQ[r.pv(p, wvc)].len()
					if r.outLink[p] != nilLink {
						waiting += r.outQ[r.pv(p, wvc)].len()
					}
				}
				e.Hot = append(e.Hot, HotVC{Router: r.ID, Port: p, VC: vc, Occupancy: occ, Waiting: waiting})
			}
		}
	}
	sort.Slice(e.Hot, func(i, j int) bool {
		if e.Hot[i].Occupancy != e.Hot[j].Occupancy {
			return e.Hot[i].Occupancy > e.Hot[j].Occupancy
		}
		if e.Hot[i].Router != e.Hot[j].Router {
			return e.Hot[i].Router < e.Hot[j].Router
		}
		if e.Hot[i].Port != e.Hot[j].Port {
			return e.Hot[i].Port < e.Hot[j].Port
		}
		return e.Hot[i].VC < e.Hot[j].VC
	})
	const keep = 5
	if len(e.Hot) > keep {
		e.Hot = e.Hot[:keep:keep]
	}
	return e
}

// TotalSourceBacklog sums the source-queue lengths across all terminals,
// a cheap saturation indicator.
func (n *Network) TotalSourceBacklog() int {
	total := 0
	for i := range n.routers {
		r := &n.routers[i]
		for p := 0; p < r.radix; p++ {
			if r.isTerm[p] {
				total += r.srcQ[p].len()
			}
		}
	}
	return total
}
