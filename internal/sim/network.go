package sim

import (
	"errors"
	"fmt"
	"sort"

	"dragonfly/internal/metrics"
	"dragonfly/internal/topology"
)

// Network is a running simulation instance: the routers, channels and
// terminals of one topology, plus injection and measurement state.
//
// The hot state is allocation-free by construction: packets live in a
// struct-of-arrays arena and move through the queues as int32 refs,
// routers and links are value slices, and the per-query scratch
// (HopState, the OnEject Packet view) is owned by the Network and
// reused. Steady-state cycles allocate only when a queue or the arena
// has to grow past its high-water mark.
type Network struct {
	topo    Topology
	cfg     Config
	routing Routing
	traffic Traffic

	now     int64
	routers []Router
	links   []link

	termRNG []rng
	ar      arena
	nextID  uint64

	// Fault state, populated when the topology implements
	// DegradedTopology: terminals attached to dead ports or dead routers
	// neither inject nor count toward throughput normalisation, and
	// dropped counts packets abandoned because routing found no live
	// path (errors wrapping ErrUnroutable).
	termAlive  []bool
	aliveTerms int
	dropped    int64

	// Timeline state (SetTimeline): the epoch schedule, the governing
	// epoch index, per-router down flags for transition detection, the
	// fault-kill and reroute counters, and the rescue scratch buffer.
	epochs         []Epoch
	epochIdx       int
	routerDead     []bool
	killedInFlight int64
	rerouted       int64
	rescueBuf      []int32

	// Injection control.
	load float64

	// Measurement state (driven by Run).
	measuring   bool
	outstanding int // measured packets still in flight
	inFlight    int // all packets in flight (for deadlock detection)
	lastMove    int64

	injectedWindow int64
	ejectedWindow  int64
	countWindow    bool

	// mc receives instrumentation events when a collector is attached;
	// nil (the default) turns every emission site into one untaken
	// branch. The typed sinks below cache the collector's extension
	// interfaces (resolved once, at AttachMetrics) so the hot loop pays
	// a nil check per event site instead of a type assertion per event.
	mc      metrics.Collector
	mcFault metrics.FaultObserver
	mcEpoch metrics.EpochObserver
	mcCycle metrics.CycleObserver
	mcEject metrics.EjectObserver
	mcHop   metrics.HopObserver
	mcLink  metrics.LinkStateObserver

	// hs is the routing scratch: filled from the arena before every
	// Decide/NextHop call, written back after. ejectView is the Packet
	// materialised for OnEject. Both are reused across calls.
	hs        HopState
	ejectView Packet

	// OnEject, when non-nil, observes every ejected packet before its
	// arena slot is recycled; the *Packet is a reused view and must not
	// be retained.
	OnEject func(p *Packet, now int64)
}

// New builds a network over topo with the given algorithm and traffic
// pattern. The topology is not copied; it must not be mutated afterwards.
func New(topo Topology, cfg Config, routing Routing, traffic Traffic) (*Network, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if topo.Routers() == 0 || topo.Terminals() == 0 {
		return nil, fmt.Errorf("sim: topology has no routers or terminals")
	}
	n := &Network{
		topo:    topo,
		cfg:     cfg,
		routing: routing,
		traffic: traffic,
	}
	n.routers = make([]Router, topo.Routers())
	for r := range n.routers {
		n.routers[r].init(r, topo, cfg)
	}
	// Build one directed link per non-terminal port direction, then
	// cross-wire the in/out ids (two passes so append can't invalidate
	// ids handed out earlier).
	for r := range n.routers {
		rt := &n.routers[r]
		for p := 0; p < rt.radix; p++ {
			pt := topo.Port(r, p)
			if pt.Class == topology.ClassTerminal {
				continue
			}
			lat := int64(cfg.LocalLatency)
			if pt.Class == topology.ClassGlobal {
				lat = int64(cfg.GlobalLatency)
			}
			id := len(n.links)
			n.links = append(n.links, link{
				id:      id,
				src:     r,
				srcPort: p,
				dst:     pt.PeerRouter,
				dstPort: pt.PeerPort,
				latency: lat,
				global:  pt.Class == topology.ClassGlobal,
			})
			l := &n.links[id]
			// One flit enters per cycle and rides for `latency` cycles,
			// so the delay line never holds more than latency+1 flits;
			// credits are 1:1 with downstream buffer slots.
			l.flits.reserve(int(lat) + 1)
			l.credits.reserve(cfg.VCs * cfg.BufDepth)
			rt.outLink[p] = int32(id)
			rt.tcrt0[p] = 2 * lat
			// Credits for router-to-router outputs start full.
			for vc := 0; vc < cfg.VCs; vc++ {
				rt.credits[rt.pv(p, vc)] = int32(cfg.BufDepth)
			}
		}
	}
	for i := range n.links {
		l := &n.links[i]
		n.routers[l.dst].inLink[l.dstPort] = int32(i)
	}
	n.termRNG = make([]rng, topo.Terminals())
	for t := range n.termRNG {
		n.termRNG[t] = newRNG(cfg.Seed, uint64(t))
	}
	n.termAlive = make([]bool, topo.Terminals())
	for t := range n.termAlive {
		n.termAlive[t] = true
	}
	n.aliveTerms = topo.Terminals()
	if deg, ok := topo.(DegradedTopology); ok {
		for i := range n.links {
			l := &n.links[i]
			l.dead = !deg.Alive(l.src, l.srcPort)
		}
		for t := 0; t < topo.Terminals(); t++ {
			if !deg.Alive(topo.TerminalRouter(t), topo.TerminalPort(t)) {
				n.termAlive[t] = false
				n.aliveTerms--
			}
		}
		if n.aliveTerms == 0 {
			return nil, fmt.Errorf("sim: fault plan leaves no live terminals")
		}
	}
	return n, nil
}

// Now returns the current cycle.
func (n *Network) Now() int64 { return n.now }

// Config returns the simulation configuration.
func (n *Network) Config() Config { return n.cfg }

// Topology returns the wiring the network was built over.
func (n *Network) Topology() Topology { return n.topo }

// RouterAt returns the simulation state of router id. Routing algorithms
// use it for remote (UGAL-G) or local congestion queries.
func (n *Network) RouterAt(id int) *Router { return &n.routers[id] }

// SetLoad sets the Bernoulli injection probability per terminal per
// cycle, in flits (load 1.0 = every terminal injects every cycle).
func (n *Network) SetLoad(load float64) { n.load = load }

// AttachMetrics installs c as the instrumentation sink; nil detaches it
// and restores the zero-cost path. The previous collector is returned so
// callers can stack and restore.
//
// The extension interfaces (metrics.FaultObserver and friends) are
// resolved here, once: a collector subscribes to an event family by
// implementing its interface. If c implements
// metrics.LinkStateObserver, every currently-dead link is reported to
// it immediately, so collectors see standing fault plans (and the
// in-progress epoch of a timeline) without waiting for the next
// transition.
func (n *Network) AttachMetrics(c metrics.Collector) (prev metrics.Collector) {
	prev = n.mc
	n.mc = c
	n.mcFault, _ = c.(metrics.FaultObserver)
	n.mcEpoch, _ = c.(metrics.EpochObserver)
	n.mcCycle, _ = c.(metrics.CycleObserver)
	n.mcEject, _ = c.(metrics.EjectObserver)
	n.mcHop, _ = c.(metrics.HopObserver)
	n.mcLink, _ = c.(metrics.LinkStateObserver)
	if n.mcHop != nil {
		// Fresh tracer: discard credit-stall cycles accrued while no
		// tracer was listening (or destined for a previous tracer).
		for i := range n.routers {
			s := n.routers[i].stallCyc
			for j := range s {
				s[j] = 0
			}
		}
	}
	if n.mcLink != nil {
		for i := range n.links {
			if n.links[i].dead {
				n.mcLink.LinkState(i, false, n.now)
			}
		}
	}
	return prev
}

// Metrics returns the currently attached collector, nil when metrics are
// off.
func (n *Network) Metrics() metrics.Collector { return n.mc }

// NumLinks returns the number of directed router-to-router channels.
func (n *Network) NumLinks() int { return len(n.links) }

// LinkID maps (router, output port) to the id metrics events carry, -1
// when the port has no channel (terminal ports).
func (n *Network) LinkID(router, port int) int {
	l := n.routers[router].outLink[port]
	if l == nilLink {
		return -1
	}
	return int(l)
}

// LinkIsGlobal reports whether channel id is a global (inter-group)
// channel. Collectors use it to split utilization by channel class.
func (n *Network) LinkIsGlobal(link int) bool { return n.links[link].global }

// InFlight returns the number of packets buffered or on channels.
func (n *Network) InFlight() int { return n.inFlight }

// Dropped returns the number of packets abandoned because routing found
// no live path (fault plans only; always 0 on a pristine topology).
func (n *Network) Dropped() int64 { return n.dropped }

// AliveTerminals returns the number of terminals that can inject and
// eject under the current fault plan.
func (n *Network) AliveTerminals() int { return n.aliveTerms }

// loadHop fills the routing scratch from arena slot ref.
func (n *Network) loadHop(ref int32) {
	f := n.ar.flags[ref]
	n.hs.ID = n.ar.id[ref]
	n.hs.Seed = n.ar.seed[ref]
	n.hs.Src = int(n.ar.src[ref])
	n.hs.Dst = int(n.ar.dst[ref])
	n.hs.Minimal = f&pfMinimal != 0
	n.hs.InterGroup = int(n.ar.interGrp[ref])
	n.hs.Phase1 = f&pfPhase1 != 0
	n.hs.Port = int(n.ar.nextPort[ref])
	n.hs.VC = int(n.ar.nextVC[ref])
}

// storeHop writes the scratch's writable fields back to arena slot ref.
func (n *Network) storeHop(ref int32) {
	f := n.ar.flags[ref] &^ (pfMinimal | pfPhase1)
	if n.hs.Minimal {
		f |= pfMinimal
	}
	if n.hs.Phase1 {
		f |= pfPhase1
	}
	n.ar.flags[ref] = f
	n.ar.interGrp[ref] = int32(n.hs.InterGroup)
	n.ar.nextPort[ref] = int16(n.hs.Port)
	n.ar.nextVC[ref] = int8(n.hs.VC)
}

// decide runs the source-router routing decision for slot ref at r.
func (n *Network) decide(r *Router, ref int32) error {
	n.loadHop(ref)
	if err := n.routing.Decide(n, r, &n.hs); err != nil {
		return err
	}
	n.storeHop(ref)
	return nil
}

// nextHop computes the switch request for slot ref buffered at r.
func (n *Network) nextHop(r *Router, ref int32) error {
	n.loadHop(ref)
	if err := n.routing.NextHop(n, r, &n.hs); err != nil {
		return err
	}
	n.storeHop(ref)
	return nil
}

// Step advances the simulation one cycle: deliver flits and credits that
// completed their channel latency, inject new packets, make the
// source-queue routing decisions, eject arrived packets, and forward one
// flit per output channel on every router. It returns a non-nil error —
// an *InvariantError or an aborting routing error — only when the
// network state can no longer be trusted; unroutable packets are dropped
// and counted, not errors.
func (n *Network) Step() error {
	n.now++
	if n.epochs != nil {
		if err := n.advanceEpochs(); err != nil {
			return err
		}
	}
	if err := n.deliver(); err != nil {
		return err
	}
	n.inject()
	for i := range n.routers {
		r := &n.routers[i]
		if err := n.admitSources(r); err != nil {
			return err
		}
		n.eject(r)
		n.transfer(r)
		n.allocate(r)
	}
	if n.mcCycle != nil {
		n.mcCycle.CycleEnd(n.now)
	}
	return nil
}

// deliver moves flits and credits whose latency elapsed into their
// destination routers. Delivered flits are routed immediately and placed
// in the virtual output queue of their next hop.
func (n *Network) deliver() error {
	for li := range n.links {
		l := &n.links[li]
		if l.dead {
			// A dead channel delivers nothing in either direction: its
			// queues are frozen until a revival retrains them. (Static
			// fault plans never queue anything on a dead link, so this
			// skip changes nothing for them.)
			continue
		}
		for {
			f := l.flits.peek()
			if f == nil || f.at > n.now {
				break
			}
			e := l.flits.pop()
			rt := &n.routers[l.dst]
			occ := &rt.inOcc[rt.pv(l.dstPort, int(e.vc))]
			if *occ >= int32(rt.depth) {
				return &InvariantError{Kind: "buffer overflow", Router: l.dst, Port: l.dstPort, VC: int(e.vc), Cycle: n.now}
			}
			*occ++
			if n.mc != nil {
				n.mc.VCOccupancy(l.dst, l.dstPort, int(e.vc), int(*occ))
			}
			ref := e.ref
			n.ar.inPort[ref] = int16(l.dstPort)
			n.ar.bufVC[ref] = int8(e.vc)
			n.ar.hops[ref]++
			n.ar.arrive[ref] = n.now
			if err := n.nextHop(rt, ref); err != nil {
				if errors.Is(err, ErrUnroutable) {
					n.drop(rt, ref)
					continue
				}
				return err
			}
			rt.waitQ[rt.pv(int(n.ar.nextPort[ref]), int(n.ar.nextVC[ref]))].push(ref)
		}
		for {
			c := l.credits.peek()
			if c == nil || c.at > n.now {
				break
			}
			e := l.credits.pop()
			rt := &n.routers[l.src]
			cr := &rt.credits[rt.pv(l.srcPort, int(e.vc))]
			*cr++
			if *cr > int32(rt.depth) {
				return &InvariantError{Kind: "credit overflow", Router: l.src, Port: l.srcPort, VC: int(e.vc), Cycle: n.now}
			}
			// Credit round-trip measurement (Figure 17(b)): pop the send
			// timestamp and refresh t_d for this output.
			if ts := rt.ctq[l.srcPort].peek(); ts != nil {
				sent := rt.ctq[l.srcPort].pop()
				tcrt := n.now - sent.at
				if n.mc != nil {
					n.mc.CreditRTT(l.src, l.srcPort, tcrt)
				}
				td := tcrt - rt.tcrt0[l.srcPort]
				if td < 0 {
					td = 0
				}
				rt.td[l.srcPort] = ewma(rt.td[l.srcPort], td)
			}
		}
	}
	return nil
}

// drop abandons a packet that routing declared unroutable at router r:
// its input-buffer slot is freed, the credit returned upstream (plain,
// without the congestion delay — the next port is not meaningful for an
// unrouted packet), and the packet is counted in Dropped. Dropping is
// forward progress: it resets the stall detector like any flit movement.
func (n *Network) drop(r *Router, ref int32) {
	inP := int(n.ar.inPort[ref])
	bvc := int(n.ar.bufVC[ref])
	r.inOcc[r.pv(inP, bvc)]--
	if up := r.inLink[inP]; up != nilLink {
		ul := &n.links[up]
		ul.credits.push(uint8(bvc), n.now+ul.latency)
	}
	if n.ar.flags[ref]&pfMeasured != 0 {
		n.outstanding--
	}
	n.inFlight--
	n.dropped++
	n.lastMove = n.now
	if n.mc != nil {
		n.mc.Drop(r.ID)
	}
	n.ar.release(ref)
}

// inject performs the Bernoulli injection process at every terminal.
func (n *Network) inject() {
	if n.load <= 0 {
		return
	}
	for t := 0; t < n.topo.Terminals(); t++ {
		r := &n.termRNG[t]
		if r.Float64() >= n.load {
			continue
		}
		if !n.termAlive[t] {
			continue // dead terminal: draws consumed, nothing injected
		}
		ref := n.ar.alloc()
		n.ar.id[ref] = n.nextID
		n.nextID++
		n.ar.seed[ref] = r.Next()
		n.ar.src[ref] = int32(t)
		n.ar.dst[ref] = int32(n.traffic.Dest(t, r.Next()))
		n.ar.create[ref] = n.now
		n.ar.interGrp[ref] = -1
		n.ar.inPort[ref] = -1
		if n.measuring {
			n.ar.flags[ref] |= pfMeasured
			n.outstanding++
		}
		n.inFlight++
		if n.countWindow {
			n.injectedWindow++
		}
		rt := &n.routers[n.topo.TerminalRouter(t)]
		rt.srcQ[n.topo.TerminalPort(t)].push(ref)
	}
}

// admitSources moves at most one packet per terminal per cycle from its
// source queue into the router's terminal input buffer (the terminal
// channel bandwidth), making the source-router routing decision at that
// moment. Admission requires a free input slot, so source queues feel
// the router's backpressure like any upstream channel.
func (n *Network) admitSources(r *Router) error {
	for p := 0; p < r.radix; p++ {
		if !r.isTerm[p] {
			continue
		}
		head := r.srcQ[p].peek()
		if head == nilRef || r.inOcc[r.pv(p, 0)] >= int32(r.depth) {
			continue
		}
		r.srcQ[p].pop()
		r.inOcc[r.pv(p, 0)]++
		n.ar.inPort[head] = int16(p)
		n.ar.bufVC[head] = 0
		n.ar.inject[head] = n.now
		n.ar.arrive[head] = n.now
		n.ar.flags[head] |= pfDecided
		if err := n.decide(r, head); err != nil {
			if errors.Is(err, ErrUnroutable) {
				n.drop(r, head)
				continue
			}
			return err
		}
		if n.ar.flags[head]&pfMinimal != 0 {
			n.ar.flags[head] |= pfPhase1
		}
		if err := n.nextHop(r, head); err != nil {
			if errors.Is(err, ErrUnroutable) {
				n.drop(r, head)
				continue
			}
			return err
		}
		r.waitQ[r.pv(int(n.ar.nextPort[head]), int(n.ar.nextVC[head]))].push(head)
	}
	return nil
}

// eject drains every flit queued for a terminal output. Ejection
// bandwidth is unconstrained, modelling the paper's assumption of
// sufficient router speedup so that ejection is never the bottleneck.
func (n *Network) eject(r *Router) {
	for p := 0; p < r.radix; p++ {
		if !r.isTerm[p] {
			continue
		}
		for vc := 0; vc < r.vcs; vc++ {
			q := &r.waitQ[r.pv(p, vc)]
			for q.len() > 0 {
				ref := q.pop()
				n.departed(r, ref)
				if n.ar.flags[ref]&pfMeasured != 0 {
					n.outstanding--
				}
				n.inFlight--
				if n.countWindow {
					n.ejectedWindow++
				}
				n.lastMove = n.now
				if n.mcEject != nil {
					f := n.ar.flags[ref]
					n.mcEject.PacketEjected(metrics.Eject{
						Cycle:    n.now,
						Packet:   n.ar.id[ref],
						Router:   r.ID,
						Latency:  n.now - n.ar.create[ref],
						Minimal:  f&pfMinimal != 0,
						Measured: f&pfMeasured != 0,
					})
				}
				if n.OnEject != nil {
					n.ar.view(ref, &n.ejectView)
					n.ejectView.EjectTime = n.now
					n.OnEject(&n.ejectView, n.now)
				}
				n.ar.release(ref)
			}
		}
	}
}

// departed frees arena slot ref's input-buffer slot and returns the
// credit upstream when it crosses the crossbar (or ejects) at router r.
func (n *Network) departed(r *Router, ref int32) {
	inP := int(n.ar.inPort[ref])
	bvc := int(n.ar.bufVC[ref])
	r.inOcc[r.pv(inP, bvc)]--
	upID := r.inLink[inP]
	if upID == nilLink {
		return // terminal input: the freed slot is visible directly
	}
	up := &n.links[upID]
	var delay int64
	// Credit round-trip congestion signalling: delay the credit by the
	// congestion estimate of the output the packet went to, relative to
	// the router's least-congested output. Credits crossing global
	// channels are never delayed (Section 4.3.2), which both bounds the
	// mechanism and keeps the expensive channels fully utilisable.
	nextPort := int(n.ar.nextPort[ref])
	if n.cfg.DelayCredits && !up.global && !r.isTerm[nextPort] {
		// The delay uses only the locally measured crossing wait; folding
		// the downstream round-trip excess back in would compound the
		// delays recursively hop-by-hop and throttle uniformly loaded
		// networks. The baseline subtracted is the router's second most
		// congested output (the robust form of the paper's variance
		// trick): only an outlier output — a genuine hot spot — delays
		// credits, never the queueing jitter of a busy balanced router.
		slack := int64(n.cfg.DelaySlack)
		if slack == 0 {
			slack = 8
		}
		if out := r.outLink[nextPort]; out != nilLink && n.links[out].global {
			base := r.baseCrossTD()
			if td := r.crossTd[nextPort]; td > 2*base+slack {
				delay = td - base - slack
			}
		}
	}
	up.credits.push(uint8(bvc), n.now+up.latency+delay)
}

// transfer crosses the crossbar: flits move from waitQ into the bounded
// output buffers at unlimited rate (the "sufficient speedup" of Section
// 4.2), freeing their input slots and returning credits upstream.
func (n *Network) transfer(r *Router) {
	for out := 0; out < r.radix; out++ {
		if r.outLink[out] == nilLink {
			continue // terminal outputs eject straight from waitQ
		}
		base := out * r.vcs
		for vc := 0; vc < r.vcs; vc++ {
			w := &r.waitQ[base+vc]
			q := &r.outQ[base+vc]
			for w.len() > 0 && q.len() < r.outDepth {
				ref := w.pop()
				if n.cfg.DelayCredits {
					r.crossTd[out] = asymEwma(r.crossTd[out], n.now-n.ar.arrive[ref])
				}
				n.departed(r, ref)
				q.push(ref)
			}
		}
	}
}

// allocate forwards at most one flit per output channel per cycle from
// the output buffer, round-robin over the output's VCs.
func (n *Network) allocate(r *Router) {
	for out := 0; out < r.radix; out++ {
		lid := r.outLink[out]
		if lid == nilLink {
			continue // terminal outputs are handled by eject
		}
		l := &n.links[lid]
		if l.dead {
			continue // failed channel: carries no flits
		}
		base := out * r.vcs
		start := int(r.outRR[out])
		for i := 0; i < r.vcs; i++ {
			vc := start + i
			if vc >= r.vcs {
				vc -= r.vcs
			}
			q := &r.outQ[base+vc]
			if q.len() == 0 || r.credits[base+vc] <= 0 {
				// Credit-stall accounting, only while a hop tracer is
				// attached: flits are waiting but the downstream buffer has
				// no free slot.
				if n.mcHop != nil && q.len() > 0 {
					r.stallCyc[base+vc]++
				}
				continue
			}
			ref := q.pop()
			r.credits[base+vc]--
			r.ctq[out].push(0, n.now)
			l.flits.push(flitEntry{ref: ref, vc: uint8(vc), at: n.now + l.latency})
			if n.mc != nil {
				n.mc.ChannelFlit(l.id)
			}
			if n.mcHop != nil {
				f := n.ar.flags[ref]
				n.mcHop.PacketHop(metrics.Hop{
					Packet:      n.ar.id[ref],
					Cycle:       n.now,
					Router:      r.ID,
					Port:        out,
					VC:          vc,
					Link:        l.id,
					Minimal:     f&pfMinimal != 0,
					Phase1:      f&pfPhase1 != 0,
					CreditStall: r.stallCyc[base+vc],
				})
				r.stallCyc[base+vc] = 0
			}
			rr := vc + 1
			if rr >= r.vcs {
				rr -= r.vcs
			}
			r.outRR[out] = int32(rr)
			n.lastMove = n.now
			break
		}
	}
}

// stallError builds the deadlock-detector diagnostic: which phase
// tripped it, how many packets are wedged, and the most occupied
// input-buffer VCs (the likely deadlock participants).
func (n *Network) stallError(phase Phase, limit int64) *StallError {
	if n.mc != nil {
		n.mc.Stall(n.now)
	}
	e := &StallError{
		Phase:      phase,
		Cycle:      n.now,
		StallLimit: limit,
		InFlight:   n.inFlight,
		Epoch:      n.epochIdx,
	}
	// Attach the fault context: a stall right after an epoch swap is
	// usually livelock against the dead channels, and the per-class dead
	// counts say which.
	if n.epochs != nil {
		e.DeadRouters, e.DeadGlobal, e.DeadLocal, e.DeadTerminal = n.epochs[n.epochIdx].View.FaultCounts()
	} else if fc, ok := n.topo.(interface{ FaultCounts() (int, int, int, int) }); ok {
		e.DeadRouters, e.DeadGlobal, e.DeadLocal, e.DeadTerminal = fc.FaultCounts()
	}
	for i := range n.routers {
		r := &n.routers[i]
		for p := 0; p < r.radix; p++ {
			for vc := 0; vc < r.vcs; vc++ {
				occ := int(r.inOcc[r.pv(p, vc)])
				if occ == 0 {
					continue
				}
				waiting := 0
				for wvc := 0; wvc < r.vcs; wvc++ {
					waiting += r.waitQ[r.pv(p, wvc)].len()
					if r.outLink[p] != nilLink {
						waiting += r.outQ[r.pv(p, wvc)].len()
					}
				}
				e.Hot = append(e.Hot, HotVC{Router: r.ID, Port: p, VC: vc, Occupancy: occ, Waiting: waiting})
			}
		}
	}
	sort.Slice(e.Hot, func(i, j int) bool {
		if e.Hot[i].Occupancy != e.Hot[j].Occupancy {
			return e.Hot[i].Occupancy > e.Hot[j].Occupancy
		}
		if e.Hot[i].Router != e.Hot[j].Router {
			return e.Hot[i].Router < e.Hot[j].Router
		}
		if e.Hot[i].Port != e.Hot[j].Port {
			return e.Hot[i].Port < e.Hot[j].Port
		}
		return e.Hot[i].VC < e.Hot[j].VC
	})
	const keep = 5
	if len(e.Hot) > keep {
		e.Hot = e.Hot[:keep:keep]
	}
	return e
}

// TotalSourceBacklog sums the source-queue lengths across all terminals,
// a cheap saturation indicator.
func (n *Network) TotalSourceBacklog() int {
	total := 0
	for i := range n.routers {
		r := &n.routers[i]
		for p := 0; p < r.radix; p++ {
			if r.isTerm[p] {
				total += r.srcQ[p].len()
			}
		}
	}
	return total
}
