package sim

import (
	"errors"
	"fmt"
	"sort"

	"dragonfly/internal/topology"
)

// Network is a running simulation instance: the routers, channels and
// terminals of one topology, plus injection and measurement state.
type Network struct {
	topo    Topology
	cfg     Config
	routing Routing
	traffic Traffic

	now     int64
	routers []*Router
	links   []*link

	termRNG []rng
	pool    packetPool
	nextID  uint64

	// Fault state, populated when the topology implements
	// DegradedTopology: terminals attached to dead ports or dead routers
	// neither inject nor count toward throughput normalisation, and
	// dropped counts packets abandoned because routing found no live
	// path (errors wrapping ErrUnroutable).
	termAlive  []bool
	aliveTerms int
	dropped    int64

	// Injection control.
	load float64

	// Measurement state (driven by Run).
	measuring   bool
	outstanding int // measured packets still in flight
	inFlight    int // all packets in flight (for deadlock detection)
	lastMove    int64

	injectedWindow int64
	ejectedWindow  int64
	countWindow    bool

	// utilization counting (enabled on demand); indexed by link id.
	util []int64

	// OnEject, when non-nil, observes every ejected packet before it is
	// recycled; the packet must not be retained.
	OnEject func(p *Packet, now int64)
}

// New builds a network over topo with the given algorithm and traffic
// pattern. The topology is not copied; it must not be mutated afterwards.
func New(topo Topology, cfg Config, routing Routing, traffic Traffic) (*Network, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if topo.Routers() == 0 || topo.Terminals() == 0 {
		return nil, fmt.Errorf("sim: topology has no routers or terminals")
	}
	n := &Network{
		topo:    topo,
		cfg:     cfg,
		routing: routing,
		traffic: traffic,
	}
	n.routers = make([]*Router, topo.Routers())
	for r := range n.routers {
		n.routers[r] = newRouter(r, topo, cfg)
	}
	// Build one directed link per non-terminal port direction and cross-
	// wire the in/out references.
	for r := range n.routers {
		rt := n.routers[r]
		for p := 0; p < rt.radix; p++ {
			pt := topo.Port(r, p)
			if pt.Class == topology.ClassTerminal {
				continue
			}
			lat := int64(cfg.LocalLatency)
			if pt.Class == topology.ClassGlobal {
				lat = int64(cfg.GlobalLatency)
			}
			l := &link{
				id:      len(n.links),
				src:     r,
				srcPort: p,
				dst:     pt.PeerRouter,
				dstPort: pt.PeerPort,
				latency: lat,
				global:  pt.Class == topology.ClassGlobal,
			}
			n.links = append(n.links, l)
			rt.outLink[p] = l
			rt.tcrt0[p] = 2 * lat
			// Credits for router-to-router outputs start full.
			for vc := 0; vc < cfg.VCs; vc++ {
				rt.credits[p][vc] = cfg.BufDepth
			}
		}
	}
	for _, l := range n.links {
		n.routers[l.dst].inLink[l.dstPort] = l
	}
	n.termRNG = make([]rng, topo.Terminals())
	for t := range n.termRNG {
		n.termRNG[t] = newRNG(cfg.Seed, uint64(t))
	}
	n.termAlive = make([]bool, topo.Terminals())
	for t := range n.termAlive {
		n.termAlive[t] = true
	}
	n.aliveTerms = topo.Terminals()
	if deg, ok := topo.(DegradedTopology); ok {
		for _, l := range n.links {
			l.dead = !deg.Alive(l.src, l.srcPort)
		}
		for t := 0; t < topo.Terminals(); t++ {
			if !deg.Alive(topo.TerminalRouter(t), topo.TerminalPort(t)) {
				n.termAlive[t] = false
				n.aliveTerms--
			}
		}
		if n.aliveTerms == 0 {
			return nil, fmt.Errorf("sim: fault plan leaves no live terminals")
		}
	}
	return n, nil
}

// Now returns the current cycle.
func (n *Network) Now() int64 { return n.now }

// Config returns the simulation configuration.
func (n *Network) Config() Config { return n.cfg }

// Topology returns the wiring the network was built over.
func (n *Network) Topology() Topology { return n.topo }

// RouterAt returns the simulation state of router id. Routing algorithms
// use it for remote (UGAL-G) or local congestion queries.
func (n *Network) RouterAt(id int) *Router { return n.routers[id] }

// SetLoad sets the Bernoulli injection probability per terminal per
// cycle, in flits (load 1.0 = every terminal injects every cycle).
func (n *Network) SetLoad(load float64) { n.load = load }

// EnableUtilization switches on per-channel flit counting.
func (n *Network) EnableUtilization() {
	if n.util == nil {
		n.util = make([]int64, len(n.links))
	}
}

// ResetUtilization clears the per-channel counters.
func (n *Network) ResetUtilization() {
	for i := range n.util {
		n.util[i] = 0
	}
}

// ChannelBusy returns the flit count recorded on the outgoing channel of
// (router, port) since utilization counting was last reset, or -1 if the
// port has no channel or counting is off.
func (n *Network) ChannelBusy(router, port int) int64 {
	l := n.routers[router].outLink[port]
	if l == nil || n.util == nil {
		return -1
	}
	return n.util[l.id]
}

// InFlight returns the number of packets buffered or on channels.
func (n *Network) InFlight() int { return n.inFlight }

// Dropped returns the number of packets abandoned because routing found
// no live path (fault plans only; always 0 on a pristine topology).
func (n *Network) Dropped() int64 { return n.dropped }

// AliveTerminals returns the number of terminals that can inject and
// eject under the current fault plan.
func (n *Network) AliveTerminals() int { return n.aliveTerms }

// Step advances the simulation one cycle: deliver flits and credits that
// completed their channel latency, inject new packets, make the
// source-queue routing decisions, eject arrived packets, and forward one
// flit per output channel on every router. It returns a non-nil error —
// an *InvariantError or an aborting routing error — only when the
// network state can no longer be trusted; unroutable packets are dropped
// and counted, not errors.
func (n *Network) Step() error {
	n.now++
	if err := n.deliver(); err != nil {
		return err
	}
	n.inject()
	for _, r := range n.routers {
		if err := n.admitSources(r); err != nil {
			return err
		}
		n.eject(r)
		n.transfer(r)
		n.allocate(r)
	}
	return nil
}

// deliver moves flits and credits whose latency elapsed into their
// destination routers. Delivered flits are routed immediately and placed
// in the virtual output queue of their next hop.
func (n *Network) deliver() error {
	for _, l := range n.links {
		for {
			f := l.flits.peek()
			if f == nil || f.at > n.now {
				break
			}
			e := l.flits.pop()
			rt := n.routers[l.dst]
			occ := &rt.inOcc[l.dstPort][e.vc]
			if *occ >= rt.depth {
				return &InvariantError{Kind: "buffer overflow", Router: l.dst, Port: l.dstPort, VC: int(e.vc), Cycle: n.now}
			}
			*occ++
			e.pkt.InPort = l.dstPort
			e.pkt.BufVC = int(e.vc)
			e.pkt.hops++
			e.pkt.arrive = n.now
			if err := n.routing.NextHop(n, rt, e.pkt); err != nil {
				if errors.Is(err, ErrUnroutable) {
					n.drop(rt, e.pkt)
					continue
				}
				return err
			}
			rt.waitQ[e.pkt.NextPort][e.pkt.NextVC].push(e.pkt)
		}
		for {
			c := l.credits.peek()
			if c == nil || c.at > n.now {
				break
			}
			e := l.credits.pop()
			rt := n.routers[l.src]
			rt.credits[l.srcPort][e.vc]++
			if rt.credits[l.srcPort][e.vc] > rt.depth {
				return &InvariantError{Kind: "credit overflow", Router: l.src, Port: l.srcPort, VC: int(e.vc), Cycle: n.now}
			}
			// Credit round-trip measurement (Figure 17(b)): pop the send
			// timestamp and refresh t_d for this output.
			if ts := rt.ctq[l.srcPort].peek(); ts != nil {
				sent := rt.ctq[l.srcPort].pop()
				tcrt := n.now - sent.at
				td := tcrt - rt.tcrt0[l.srcPort]
				if td < 0 {
					td = 0
				}
				rt.td[l.srcPort] = ewma(rt.td[l.srcPort], td)
			}
		}
	}
	return nil
}

// drop abandons a packet that routing declared unroutable at router r:
// its input-buffer slot is freed, the credit returned upstream (plain,
// without the congestion delay — pkt.NextPort is not meaningful for an
// unrouted packet), and the packet is counted in Dropped. Dropping is
// forward progress: it resets the stall detector like any flit movement.
func (n *Network) drop(r *Router, pkt *Packet) {
	r.inOcc[pkt.InPort][pkt.BufVC]--
	if up := r.inLink[pkt.InPort]; up != nil {
		up.credits.push(uint8(pkt.BufVC), n.now+up.latency)
	}
	if pkt.Measured {
		n.outstanding--
	}
	n.inFlight--
	n.dropped++
	n.lastMove = n.now
	n.pool.put(pkt)
}

// inject performs the Bernoulli injection process at every terminal.
func (n *Network) inject() {
	if n.load <= 0 {
		return
	}
	for t := 0; t < n.topo.Terminals(); t++ {
		r := &n.termRNG[t]
		if r.Float64() >= n.load {
			continue
		}
		if !n.termAlive[t] {
			continue // dead terminal: draws consumed, nothing injected
		}
		p := n.pool.get()
		p.ID = n.nextID
		n.nextID++
		p.Seed = r.Next()
		p.Src = t
		p.Dst = n.traffic.Dest(t, r.Next())
		p.CreateTime = n.now
		p.InterGroup = -1
		p.InPort = -1
		p.Measured = n.measuring
		if p.Measured {
			n.outstanding++
		}
		n.inFlight++
		if n.countWindow {
			n.injectedWindow++
		}
		rt := n.routers[n.topo.TerminalRouter(t)]
		rt.srcQ[n.topo.TerminalPort(t)].push(p)
	}
}

// admitSources moves at most one packet per terminal per cycle from its
// source queue into the router's terminal input buffer (the terminal
// channel bandwidth), making the source-router routing decision at that
// moment. Admission requires a free input slot, so source queues feel
// the router's backpressure like any upstream channel.
func (n *Network) admitSources(r *Router) error {
	for p := 0; p < r.radix; p++ {
		if !r.isTerm[p] {
			continue
		}
		head := r.srcQ[p].peek()
		if head == nil || r.inOcc[p][0] >= r.depth {
			continue
		}
		r.srcQ[p].pop()
		r.inOcc[p][0]++
		head.InPort = p
		head.BufVC = 0
		head.InjectTime = n.now
		head.arrive = n.now
		head.Decided = true
		if err := n.routing.Decide(n, r, head); err != nil {
			if errors.Is(err, ErrUnroutable) {
				n.drop(r, head)
				continue
			}
			return err
		}
		if head.Minimal {
			head.SetPhase1()
		}
		if err := n.routing.NextHop(n, r, head); err != nil {
			if errors.Is(err, ErrUnroutable) {
				n.drop(r, head)
				continue
			}
			return err
		}
		r.waitQ[head.NextPort][head.NextVC].push(head)
	}
	return nil
}

// eject drains every flit queued for a terminal output. Ejection
// bandwidth is unconstrained, modelling the paper's assumption of
// sufficient router speedup so that ejection is never the bottleneck.
func (n *Network) eject(r *Router) {
	for p := 0; p < r.radix; p++ {
		if !r.isTerm[p] {
			continue
		}
		for vc := 0; vc < r.vcs; vc++ {
			q := &r.waitQ[p][vc]
			for q.len() > 0 {
				pkt := q.pop()
				n.departed(r, pkt)
				pkt.EjectTime = n.now
				if pkt.Measured {
					n.outstanding--
				}
				n.inFlight--
				if n.countWindow {
					n.ejectedWindow++
				}
				n.lastMove = n.now
				if n.OnEject != nil {
					n.OnEject(pkt, n.now)
				}
				n.pool.put(pkt)
			}
		}
	}
}

// departed frees packet pkt's input-buffer slot and returns the credit
// upstream when it crosses the crossbar (or ejects) at router r.
func (n *Network) departed(r *Router, pkt *Packet) {
	r.inOcc[pkt.InPort][pkt.BufVC]--
	up := r.inLink[pkt.InPort]
	if up == nil {
		return // terminal input: the freed slot is visible directly
	}
	var delay int64
	// Credit round-trip congestion signalling: delay the credit by the
	// congestion estimate of the output the packet went to, relative to
	// the router's least-congested output. Credits crossing global
	// channels are never delayed (Section 4.3.2), which both bounds the
	// mechanism and keeps the expensive channels fully utilisable.
	if n.cfg.DelayCredits && !up.global && !r.isTerm[pkt.NextPort] {
		// The delay uses only the locally measured crossing wait; folding
		// the downstream round-trip excess back in would compound the
		// delays recursively hop-by-hop and throttle uniformly loaded
		// networks. The baseline subtracted is the router's second most
		// congested output (the robust form of the paper's variance
		// trick): only an outlier output — a genuine hot spot — delays
		// credits, never the queueing jitter of a busy balanced router.
		slack := int64(n.cfg.DelaySlack)
		if slack == 0 {
			slack = 8
		}
		if out := r.outLink[pkt.NextPort]; out != nil && out.global {
			base := r.baseCrossTD()
			if td := r.crossTd[pkt.NextPort]; td > 2*base+slack {
				delay = td - base - slack
			}
		}
	}
	up.credits.push(uint8(pkt.BufVC), n.now+up.latency+delay)
}

// transfer crosses the crossbar: flits move from waitQ into the bounded
// output buffers at unlimited rate (the "sufficient speedup" of Section
// 4.2), freeing their input slots and returning credits upstream.
func (n *Network) transfer(r *Router) {
	for out := 0; out < r.radix; out++ {
		if r.outLink[out] == nil {
			continue // terminal outputs eject straight from waitQ
		}
		for vc := 0; vc < r.vcs; vc++ {
			w := &r.waitQ[out][vc]
			q := &r.outQ[out][vc]
			for w.len() > 0 && q.len() < r.outDepth {
				pkt := w.pop()
				if n.cfg.DelayCredits {
					r.crossTd[out] = asymEwma(r.crossTd[out], n.now-pkt.arrive)
				}
				n.departed(r, pkt)
				q.push(pkt)
			}
		}
	}
}

// allocate forwards at most one flit per output channel per cycle from
// the output buffer, round-robin over the output's VCs.
func (n *Network) allocate(r *Router) {
	for out := 0; out < r.radix; out++ {
		l := r.outLink[out]
		if l == nil {
			continue // terminal outputs are handled by eject
		}
		if l.dead {
			continue // failed channel: carries no flits
		}
		start := r.outRR[out]
		for i := 0; i < r.vcs; i++ {
			vc := start + i
			if vc >= r.vcs {
				vc -= r.vcs
			}
			q := &r.outQ[out][vc]
			if q.len() == 0 || r.credits[out][vc] <= 0 {
				continue
			}
			pkt := q.pop()
			r.credits[out][vc]--
			r.ctq[out].push(0, n.now)
			l.flits.push(flitEntry{pkt: pkt, vc: uint8(vc), at: n.now + l.latency})
			if n.util != nil {
				n.util[l.id]++
			}
			r.outRR[out] = vc + 1
			if r.outRR[out] >= r.vcs {
				r.outRR[out] -= r.vcs
			}
			n.lastMove = n.now
			break
		}
	}
}

// stallError builds the deadlock-detector diagnostic: which phase
// tripped it, how many packets are wedged, and the most occupied
// input-buffer VCs (the likely deadlock participants).
func (n *Network) stallError(phase Phase, limit int64) *StallError {
	e := &StallError{
		Phase:      phase,
		Cycle:      n.now,
		StallLimit: limit,
		InFlight:   n.inFlight,
	}
	for _, r := range n.routers {
		for p := 0; p < r.radix; p++ {
			for vc := 0; vc < r.vcs; vc++ {
				occ := r.inOcc[p][vc]
				if occ == 0 {
					continue
				}
				waiting := 0
				for wvc := 0; wvc < r.vcs; wvc++ {
					waiting += r.waitQ[p][wvc].len()
					if r.outLink[p] != nil {
						waiting += r.outQ[p][wvc].len()
					}
				}
				e.Hot = append(e.Hot, HotVC{Router: r.ID, Port: p, VC: vc, Occupancy: occ, Waiting: waiting})
			}
		}
	}
	sort.Slice(e.Hot, func(i, j int) bool {
		if e.Hot[i].Occupancy != e.Hot[j].Occupancy {
			return e.Hot[i].Occupancy > e.Hot[j].Occupancy
		}
		if e.Hot[i].Router != e.Hot[j].Router {
			return e.Hot[i].Router < e.Hot[j].Router
		}
		if e.Hot[i].Port != e.Hot[j].Port {
			return e.Hot[i].Port < e.Hot[j].Port
		}
		return e.Hot[i].VC < e.Hot[j].VC
	})
	const keep = 5
	if len(e.Hot) > keep {
		e.Hot = e.Hot[:keep:keep]
	}
	return e
}

// TotalSourceBacklog sums the source-queue lengths across all terminals,
// a cheap saturation indicator.
func (n *Network) TotalSourceBacklog() int {
	total := 0
	for _, r := range n.routers {
		for p := 0; p < r.radix; p++ {
			if r.isTerm[p] {
				total += r.srcQ[p].len()
			}
		}
	}
	return total
}
