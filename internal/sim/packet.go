package sim

// Packet is a single-flit packet, the unit of transfer in the simulator.
// Section 4.2 of the paper evaluates with single-flit packets to separate
// routing from flow-control effects; the simulator follows suit (the
// paper's footnote 6 reports that larger packets with virtual cut-through
// do not change the trends).
type Packet struct {
	// ID is unique over the lifetime of a Network.
	ID uint64
	// Seed drives the packet's deterministic random choices (intermediate
	// group, slot selection among parallel global channels).
	Seed uint64
	// Src and Dst are terminal ids.
	Src, Dst int

	// CreateTime is the cycle the packet entered its source queue;
	// InjectTime the cycle it was admitted into its source router;
	// EjectTime the cycle it reached its destination terminal. Latency is
	// Eject-Create, which includes source queueing, as in the paper.
	CreateTime, InjectTime, EjectTime int64

	// Minimal reports the routing decision made at the source router.
	Minimal bool
	// InterGroup is the Valiant intermediate group for non-minimal
	// packets, -1 for minimal ones.
	InterGroup int
	// phase1 becomes true once a non-minimal packet has reached its
	// intermediate group and heads for the real destination. Minimal
	// packets start in phase 1.
	phase1 bool

	// Decided marks that the source-router routing decision has been made
	// (it happens once, when the packet first reaches the head of its
	// source queue).
	Decided bool

	// NextPort and NextVC are the current hop's switch request, set by
	// the routing algorithm when the packet is buffered at a router.
	NextPort, NextVC int

	// InPort and BufVC identify the input buffer slot the packet
	// occupies at its current router: the port it was delivered on and
	// the virtual channel it travelled in (the NextVC of the previous
	// hop). The credit returned upstream when the packet departs names
	// them. InPort is -1 for packets injected from a source queue.
	InPort, BufVC int

	// Measured marks packets created inside the measurement window.
	Measured bool

	hops   int
	arrive int64 // cycle the packet arrived at its current router

	next *Packet // pool free list
}

// Phase1 reports whether the packet is heading for its final destination
// group (true) or still for its Valiant intermediate group (false).
func (p *Packet) Phase1() bool { return p.phase1 }

// SetPhase1 advances a non-minimal packet to its second phase. Routing
// algorithms call it when the packet reaches its intermediate group.
func (p *Packet) SetPhase1() { p.phase1 = true }

// packetPool recycles packets to keep the hot loop allocation-free.
type packetPool struct {
	free *Packet
}

func (pp *packetPool) get() *Packet {
	if pp.free == nil {
		return &Packet{}
	}
	p := pp.free
	pp.free = p.next
	*p = Packet{}
	return p
}

func (pp *packetPool) put(p *Packet) {
	p.next = pp.free
	pp.free = p
}

// Hops counts the router-to-router channels the packet has traversed;
// maintained by the simulator, used by tests and diagnostics.
func (p *Packet) Hops() int { return p.hops }
