package sim

// The simulator stores packet state in a per-network arena: parallel
// slices (struct of arrays) indexed by a packet ref, recycled through a
// free list. The hot loop moves int32 refs through the queues and
// touches only the columns a phase needs — no per-packet heap object,
// no pointer chasing, and growth allocates whole columns at a time
// instead of one packet per injection.
//
// Packet (below) is the observer view of one slot, materialised only
// for the OnEject hook and diagnostics.

// nilRef is the "no packet" ref.
const nilRef int32 = -1

// Packet flag bits (arena.flags column).
const (
	pfMinimal uint8 = 1 << iota // source decision was minimal
	pfPhase1                    // heading for the final destination group
	pfDecided                   // source-router decision made
	pfMeasured                  // injected inside the measurement window
)

// arena is the struct-of-arrays packet store. Every column has the same
// length (the arena capacity); free holds the recyclable refs, LIFO so
// a just-freed slot is reused while still cache-hot. Single-flit
// packets (Section 4.2) make the slot the unit of everything.
type arena struct {
	free []int32

	// Hot columns, read/written every hop.
	dst      []int32 // destination terminal
	seed     []uint64
	flags    []uint8
	interGrp []int32 // Valiant intermediate group, -1 for minimal
	nextPort []int16 // current switch request
	nextVC   []int8
	inPort   []int16 // occupied input-buffer slot (-1 from source queue)
	bufVC    []int8
	arrive   []int64 // cycle of arrival at the current router
	create   []int64 // cycle the packet entered its source queue

	// Cold columns, touched at injection/ejection only.
	id     []uint64
	src    []int32
	inject []int64
	hops   []int16

	// live tracks in-flight slots for the dflydebug build-tag checks;
	// nil (and never touched) in normal builds.
	live []bool
}

// cap returns the arena capacity in slots.
func (a *arena) capacity() int { return len(a.dst) }

// inUse returns the number of slots currently allocated.
func (a *arena) inUse() int { return len(a.dst) - len(a.free) }

// grow doubles the arena (minimum 256 slots), appending the new refs to
// the free list in descending order so allocation hands out ascending
// refs from a fresh chunk.
func (a *arena) grow() {
	old := len(a.dst)
	next := old * 2
	if next == 0 {
		next = 256
	}
	add := next - old
	a.dst = append(a.dst, make([]int32, add)...)
	a.seed = append(a.seed, make([]uint64, add)...)
	a.flags = append(a.flags, make([]uint8, add)...)
	a.interGrp = append(a.interGrp, make([]int32, add)...)
	a.nextPort = append(a.nextPort, make([]int16, add)...)
	a.nextVC = append(a.nextVC, make([]int8, add)...)
	a.inPort = append(a.inPort, make([]int16, add)...)
	a.bufVC = append(a.bufVC, make([]int8, add)...)
	a.arrive = append(a.arrive, make([]int64, add)...)
	a.create = append(a.create, make([]int64, add)...)
	a.id = append(a.id, make([]uint64, add)...)
	a.src = append(a.src, make([]int32, add)...)
	a.inject = append(a.inject, make([]int64, add)...)
	a.hops = append(a.hops, make([]int16, add)...)
	if arenaDebug {
		a.live = append(a.live, make([]bool, add)...)
	}
	if cap(a.free) < next {
		free := make([]int32, len(a.free), next)
		copy(free, a.free)
		a.free = free
	}
	for ref := next - 1; ref >= old; ref-- {
		a.free = append(a.free, int32(ref))
	}
}

// alloc takes a slot off the free list (growing if empty) and resets
// its columns to the zero packet.
func (a *arena) alloc() int32 {
	if len(a.free) == 0 {
		a.grow()
	}
	ref := a.free[len(a.free)-1]
	a.free = a.free[:len(a.free)-1]
	if arenaDebug {
		if a.live[ref] {
			panic("sim: arena handed out a ref that is still in flight")
		}
		a.live[ref] = true
	}
	a.dst[ref] = 0
	a.seed[ref] = 0
	a.flags[ref] = 0
	a.interGrp[ref] = 0
	a.nextPort[ref] = 0
	a.nextVC[ref] = 0
	a.inPort[ref] = 0
	a.bufVC[ref] = 0
	a.arrive[ref] = 0
	a.create[ref] = 0
	a.id[ref] = 0
	a.src[ref] = 0
	a.inject[ref] = 0
	a.hops[ref] = 0
	return ref
}

// release returns a slot to the free list.
func (a *arena) release(ref int32) {
	if arenaDebug {
		if !a.live[ref] {
			panic("sim: arena double-free")
		}
		a.live[ref] = false
	}
	a.free = append(a.free, ref)
}

// view materialises the observer Packet for a slot. EjectTime is not
// arena state (the slot is released at ejection); the caller stamps it.
func (a *arena) view(ref int32, p *Packet) {
	f := a.flags[ref]
	p.ID = a.id[ref]
	p.Seed = a.seed[ref]
	p.Src = int(a.src[ref])
	p.Dst = int(a.dst[ref])
	p.CreateTime = a.create[ref]
	p.InjectTime = a.inject[ref]
	p.EjectTime = 0
	p.Minimal = f&pfMinimal != 0
	p.InterGroup = int(a.interGrp[ref])
	p.phase1 = f&pfPhase1 != 0
	p.Decided = f&pfDecided != 0
	p.NextPort = int(a.nextPort[ref])
	p.NextVC = int(a.nextVC[ref])
	p.InPort = int(a.inPort[ref])
	p.BufVC = int(a.bufVC[ref])
	p.Measured = f&pfMeasured != 0
	p.hops = int(a.hops[ref])
}

// Packet is the observer view of a single-flit packet (Section 4.2 of
// the paper evaluates with single-flit packets to separate routing from
// flow-control effects; the simulator follows suit). The engine stores
// packet state in its arena; a Packet is materialised from it for the
// OnEject hook and must not be retained past the call.
type Packet struct {
	// ID is unique over the lifetime of a Network.
	ID uint64
	// Seed drives the packet's deterministic random choices (intermediate
	// group, slot selection among parallel global channels).
	Seed uint64
	// Src and Dst are terminal ids.
	Src, Dst int

	// CreateTime is the cycle the packet entered its source queue;
	// InjectTime the cycle it was admitted into its source router;
	// EjectTime the cycle it reached its destination terminal. Latency is
	// Eject-Create, which includes source queueing, as in the paper.
	CreateTime, InjectTime, EjectTime int64

	// Minimal reports the routing decision made at the source router.
	Minimal bool
	// InterGroup is the Valiant intermediate group for non-minimal
	// packets, -1 for minimal ones.
	InterGroup int
	// phase1 reports that the packet was heading for its final
	// destination group (minimal packets always are).
	phase1 bool

	// Decided marks that the source-router routing decision has been
	// made (it happens once, when the packet first reaches the head of
	// its source queue).
	Decided bool

	// NextPort and NextVC are the current hop's switch request, set by
	// the routing algorithm when the packet is buffered at a router.
	NextPort, NextVC int

	// InPort and BufVC identify the input buffer slot the packet
	// occupies at its current router: the port it was delivered on and
	// the virtual channel it travelled in (the NextVC of the previous
	// hop). InPort is -1 for packets injected from a source queue.
	InPort, BufVC int

	// Measured marks packets created inside the measurement window.
	Measured bool

	hops int
}

// Phase1 reports whether the packet was heading for its final
// destination group (true) or still for its Valiant intermediate group.
func (p *Packet) Phase1() bool { return p.phase1 }

// Hops counts the router-to-router channels the packet traversed.
func (p *Packet) Hops() int { return p.hops }
