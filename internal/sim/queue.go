package sim

// The simulator's FIFOs are power-of-two ring buffers: the wrap is a
// single mask (`& (len-1)`) instead of a modulo, and the payloads are
// arena refs and small structs, so a queue never holds pointers for the
// garbage collector to trace.

// pow2 rounds n up to the next power of two (minimum 8).
func pow2(n int) int {
	c := 8
	for c < n {
		c <<= 1
	}
	return c
}

// pktQueue is a growable FIFO of packet refs. Input-buffer queues are
// bounded by credits, source queues are unbounded; both use the same
// structure.
type pktQueue struct {
	buf  []int32
	head int
	n    int
}

func (q *pktQueue) len() int { return q.n }

// peek returns the head ref, nilRef when empty.
func (q *pktQueue) peek() int32 {
	if q.n == 0 {
		return nilRef
	}
	return q.buf[q.head]
}

func (q *pktQueue) push(ref int32) {
	if q.n == len(q.buf) {
		q.grow(len(q.buf) * 2)
	}
	q.buf[(q.head+q.n)&(len(q.buf)-1)] = ref
	q.n++
}

// pop removes and returns the head ref, nilRef when empty.
func (q *pktQueue) pop() int32 {
	if q.n == 0 {
		return nilRef
	}
	ref := q.buf[q.head]
	q.head = (q.head + 1) & (len(q.buf) - 1)
	q.n--
	return ref
}

func (q *pktQueue) grow(want int) {
	nb := make([]int32, pow2(want))
	mask := len(q.buf) - 1
	for i := 0; i < q.n; i++ {
		nb[i] = q.buf[(q.head+i)&mask]
	}
	q.buf = nb
	q.head = 0
}

// reserve pre-sizes an empty ring so steady-state pushes never allocate.
func (q *pktQueue) reserve(n int) {
	if len(q.buf) == 0 {
		q.buf = make([]int32, pow2(n))
	}
}

// flitEntry is a packet in flight on a link.
type flitEntry struct {
	at  int64
	ref int32
	vc  uint8
}

// flitQueue is a FIFO delay line for flits on a channel. Entries are
// enqueued with non-decreasing delivery times because every flit on a
// given channel has the same latency.
type flitQueue struct {
	buf  []flitEntry
	head int
	n    int
}

func (q *flitQueue) len() int { return q.n }

func (q *flitQueue) push(e flitEntry) {
	if q.n == len(q.buf) {
		q.grow(len(q.buf) * 2)
	}
	q.buf[(q.head+q.n)&(len(q.buf)-1)] = e
	q.n++
}

func (q *flitQueue) peek() *flitEntry {
	if q.n == 0 {
		return nil
	}
	return &q.buf[q.head]
}

func (q *flitQueue) pop() flitEntry {
	e := q.buf[q.head]
	q.head = (q.head + 1) & (len(q.buf) - 1)
	q.n--
	return e
}

func (q *flitQueue) grow(want int) {
	nb := make([]flitEntry, pow2(want))
	mask := len(q.buf) - 1
	for i := 0; i < q.n; i++ {
		nb[i] = q.buf[(q.head+i)&mask]
	}
	q.buf = nb
	q.head = 0
}

// reserve pre-sizes an empty ring so steady-state pushes never allocate.
func (q *flitQueue) reserve(n int) {
	if len(q.buf) == 0 {
		q.buf = make([]flitEntry, pow2(n))
	}
}

// clear empties the queue, keeping its storage.
func (q *flitQueue) clear() {
	q.head = 0
	q.n = 0
}

// countVC counts the queued flits travelling on vc (invariant checks).
func (q *flitQueue) countVC(vc uint8) int {
	c := 0
	mask := len(q.buf) - 1
	for i := 0; i < q.n; i++ {
		if q.buf[(q.head+i)&mask].vc == vc {
			c++
		}
	}
	return c
}

// creditEntry is a credit on its way back upstream.
type creditEntry struct {
	vc uint8
	at int64
}

// creditQueue is the upstream delay line for credits. The credit
// round-trip mechanism can delay individual credits, so delivery times
// are forced monotone on push: flits and credits are 1:1 and keep
// ordering (Section 4.3.2), meaning a delayed credit holds back the ones
// behind it.
type creditQueue struct {
	buf    []creditEntry
	head   int
	n      int
	lastAt int64
}

func (q *creditQueue) len() int { return q.n }

func (q *creditQueue) push(vc uint8, at int64) {
	if at < q.lastAt {
		at = q.lastAt
	}
	q.lastAt = at
	if q.n == len(q.buf) {
		q.grow(len(q.buf) * 2)
	}
	q.buf[(q.head+q.n)&(len(q.buf)-1)] = creditEntry{vc: vc, at: at}
	q.n++
}

func (q *creditQueue) peek() *creditEntry {
	if q.n == 0 {
		return nil
	}
	return &q.buf[q.head]
}

func (q *creditQueue) pop() creditEntry {
	e := q.buf[q.head]
	q.head = (q.head + 1) & (len(q.buf) - 1)
	q.n--
	return e
}

func (q *creditQueue) grow(want int) {
	nb := make([]creditEntry, pow2(want))
	mask := len(q.buf) - 1
	for i := 0; i < q.n; i++ {
		nb[i] = q.buf[(q.head+i)&mask]
	}
	q.buf = nb
	q.head = 0
}

// reserve pre-sizes an empty ring so steady-state pushes never allocate.
func (q *creditQueue) reserve(n int) {
	if len(q.buf) == 0 {
		q.buf = make([]creditEntry, pow2(n))
	}
}

// clear empties the queue and resets the monotone-delivery clamp,
// keeping the storage (link retraining after a fault revival).
func (q *creditQueue) clear() {
	q.head = 0
	q.n = 0
	q.lastAt = 0
}

// countVC counts the queued credits for vc (invariant checks).
func (q *creditQueue) countVC(vc uint8) int {
	c := 0
	mask := len(q.buf) - 1
	for i := 0; i < q.n; i++ {
		if q.buf[(q.head+i)&mask].vc == vc {
			c++
		}
	}
	return c
}
