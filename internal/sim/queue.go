package sim

// pktQueue is a growable FIFO of packets (ring buffer). Input-buffer
// queues are bounded by credits, source queues are unbounded; both use
// the same structure.
type pktQueue struct {
	buf  []*Packet
	head int
	n    int
}

func (q *pktQueue) len() int { return q.n }

func (q *pktQueue) peek() *Packet {
	if q.n == 0 {
		return nil
	}
	return q.buf[q.head]
}

func (q *pktQueue) push(p *Packet) {
	if q.n == len(q.buf) {
		q.grow()
	}
	q.buf[(q.head+q.n)%len(q.buf)] = p
	q.n++
}

func (q *pktQueue) pop() *Packet {
	if q.n == 0 {
		return nil
	}
	p := q.buf[q.head]
	q.buf[q.head] = nil
	q.head = (q.head + 1) % len(q.buf)
	q.n--
	return p
}

func (q *pktQueue) grow() {
	cap := len(q.buf) * 2
	if cap == 0 {
		cap = 8
	}
	nb := make([]*Packet, cap)
	for i := 0; i < q.n; i++ {
		nb[i] = q.buf[(q.head+i)%len(q.buf)]
	}
	q.buf = nb
	q.head = 0
}

// flitEntry is a packet in flight on a link.
type flitEntry struct {
	pkt *Packet
	vc  uint8
	at  int64
}

// flitQueue is a FIFO delay line for flits on a channel. Entries are
// enqueued with non-decreasing delivery times because every flit on a
// given channel has the same latency.
type flitQueue struct {
	buf  []flitEntry
	head int
	n    int
}

func (q *flitQueue) len() int { return q.n }

func (q *flitQueue) push(e flitEntry) {
	if q.n == len(q.buf) {
		q.growTo(2 * (len(q.buf) + 4))
	}
	q.buf[(q.head+q.n)%len(q.buf)] = e
	q.n++
}

func (q *flitQueue) peek() *flitEntry {
	if q.n == 0 {
		return nil
	}
	return &q.buf[q.head]
}

func (q *flitQueue) pop() flitEntry {
	e := q.buf[q.head]
	q.buf[q.head] = flitEntry{}
	q.head = (q.head + 1) % len(q.buf)
	q.n--
	return e
}

func (q *flitQueue) growTo(cap int) {
	nb := make([]flitEntry, cap)
	for i := 0; i < q.n; i++ {
		nb[i] = q.buf[(q.head+i)%len(q.buf)]
	}
	q.buf = nb
	q.head = 0
}

// creditEntry is a credit on its way back upstream.
type creditEntry struct {
	vc uint8
	at int64
}

// creditQueue is the upstream delay line for credits. The credit
// round-trip mechanism can delay individual credits, so delivery times
// are forced monotone on push: flits and credits are 1:1 and keep
// ordering (Section 4.3.2), meaning a delayed credit holds back the ones
// behind it.
type creditQueue struct {
	buf    []creditEntry
	head   int
	n      int
	lastAt int64
}

func (q *creditQueue) len() int { return q.n }

func (q *creditQueue) push(vc uint8, at int64) {
	if at < q.lastAt {
		at = q.lastAt
	}
	q.lastAt = at
	if q.n == len(q.buf) {
		q.growTo(2 * (len(q.buf) + 4))
	}
	q.buf[(q.head+q.n)%len(q.buf)] = creditEntry{vc: vc, at: at}
	q.n++
}

func (q *creditQueue) peek() *creditEntry {
	if q.n == 0 {
		return nil
	}
	return &q.buf[q.head]
}

func (q *creditQueue) pop() creditEntry {
	e := q.buf[q.head]
	q.head = (q.head + 1) % len(q.buf)
	q.n--
	return e
}

func (q *creditQueue) growTo(cap int) {
	nb := make([]creditEntry, cap)
	for i := 0; i < q.n; i++ {
		nb[i] = q.buf[(q.head+i)%len(q.buf)]
	}
	q.buf = nb
	q.head = 0
}
