package sim

import (
	"testing"
	"testing/quick"
)

func TestPktQueueFIFO(t *testing.T) {
	var q pktQueue
	if q.pop() != nilRef || q.peek() != nilRef || q.len() != 0 {
		t.Fatal("empty queue misbehaves")
	}
	for i := int32(0); i < 20; i++ {
		q.push(i)
	}
	if q.len() != 20 {
		t.Fatalf("len = %d", q.len())
	}
	for i := int32(0); i < 20; i++ {
		if q.peek() != i {
			t.Fatalf("peek out of order at %d", i)
		}
		if q.pop() != i {
			t.Fatalf("pop out of order at %d", i)
		}
	}
	if q.len() != 0 {
		t.Fatal("queue not empty after draining")
	}
}

func TestPktQueueWrapAround(t *testing.T) {
	// Interleave pushes and pops so head wraps around the ring multiple
	// times, including across growth.
	var q pktQueue
	next := int32(0)
	want := int32(0)
	for round := 0; round < 200; round++ {
		for i := 0; i < 3; i++ {
			q.push(next)
			next++
		}
		for i := 0; i < 2; i++ {
			ref := q.pop()
			if ref != want {
				t.Fatalf("round %d: popped %d, want %d", round, ref, want)
			}
			want++
		}
	}
	for q.len() > 0 {
		ref := q.pop()
		if ref != want {
			t.Fatalf("drain: popped %d, want %d", ref, want)
		}
		want++
	}
	if want != next {
		t.Fatalf("lost packets: %d of %d", want, next)
	}
}

func TestQueueCapacityStaysPowerOfTwo(t *testing.T) {
	// The masked wrap is only correct on power-of-two rings; growth must
	// preserve the invariant from every starting size.
	var q pktQueue
	for i := int32(0); i < 1000; i++ {
		q.push(i)
		if c := len(q.buf); c&(c-1) != 0 {
			t.Fatalf("capacity %d not a power of two after %d pushes", c, i+1)
		}
	}
	for i := int32(0); i < 1000; i++ {
		if q.pop() != i {
			t.Fatalf("order lost at %d", i)
		}
	}
}

func TestFlitQueueOrderAndGrowth(t *testing.T) {
	var q flitQueue
	for i := 0; i < 100; i++ {
		q.push(flitEntry{ref: int32(i), vc: uint8(i % 3), at: int64(i)})
	}
	for i := 0; i < 100; i++ {
		e := q.peek()
		if e == nil || e.ref != int32(i) || e.at != int64(i) {
			t.Fatalf("entry %d out of order", i)
		}
		q.pop()
	}
	if q.len() != 0 {
		t.Fatal("not drained")
	}
}

func TestCreditQueueMonotoneDelivery(t *testing.T) {
	// The credit-delay mechanism can compute earlier delivery times for
	// later credits; the queue must clamp them monotone (credits keep
	// their wire order).
	var q creditQueue
	q.push(0, 100)
	q.push(1, 50) // would overtake; must clamp to 100
	q.push(2, 150)
	wants := []int64{100, 100, 150}
	for i, want := range wants {
		e := q.peek()
		if e == nil || e.at != want {
			t.Fatalf("credit %d: at=%v, want %d", i, e, want)
		}
		q.pop()
	}
}

func TestCreditQueuePropertyFIFOCount(t *testing.T) {
	f := func(ats []int16) bool {
		var q creditQueue
		for i, at := range ats {
			q.push(uint8(i%3), int64(at))
		}
		n := 0
		last := int64(-1 << 62)
		for q.len() > 0 {
			e := q.pop()
			if e.at < last {
				return false
			}
			last = e.at
			n++
		}
		return n == len(ats)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestAsymEwmaAttackAndDecay(t *testing.T) {
	// Slow attack: a single high sample barely moves the estimate.
	if got := asymEwma(0, 320); got > 10 {
		t.Errorf("attack too fast: %d", got)
	}
	// Repeated high samples converge upward.
	v := int64(0)
	for i := 0; i < 400; i++ {
		v = asymEwma(v, 320)
	}
	if v < 300 {
		t.Errorf("attack did not converge: %d", v)
	}
	// Decay is symmetric (1/32 gain down).
	v2 := asymEwma(v, 0)
	if v2 >= v || v-v2 > v/16+1 {
		t.Errorf("decay rate wrong: %d -> %d", v, v2)
	}
}

func TestEwma(t *testing.T) {
	if got := ewma(0, 40); got != 10 {
		t.Errorf("ewma(0,40) = %d, want 10", got)
	}
	if got := ewma(100, 100); got != 100 {
		t.Errorf("ewma fixed point broken: %d", got)
	}
}

func TestRNGStreamsDiffer(t *testing.T) {
	// Neighbouring streams must not replay each other's sequences with a
	// fixed shift — the bug class that synchronised the whole network.
	a := NewRNG(1, 10)
	b := NewRNG(1, 11)
	aVals := make([]uint64, 32)
	bVals := make([]uint64, 32)
	for i := range aVals {
		aVals[i] = a.Next()
		bVals[i] = b.Next()
	}
	for shift := 0; shift < 8; shift++ {
		same := 0
		for i := 0; i+shift < len(aVals); i++ {
			if aVals[i+shift] == bVals[i] || bVals[i+shift] == aVals[i] {
				same++
			}
		}
		if same > 0 {
			t.Fatalf("streams overlap at shift %d", shift)
		}
	}
}

func TestRNGIntnAndFloat64Ranges(t *testing.T) {
	r := NewRNG(7, 3)
	for i := 0; i < 10000; i++ {
		if v := r.Intn(13); v < 0 || v >= 13 {
			t.Fatalf("Intn out of range: %d", v)
		}
		if f := r.Float64(); f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
	}
}
