package sim

// RNG is a SplitMix64 pseudo-random generator: tiny, fast, and
// deterministic across platforms. Every terminal owns one, so simulation
// results are reproducible for a given Config.Seed regardless of
// iteration order, and packets carry a seed of their own so routing
// choices (intermediate groups, slot selection) are a pure function of
// the packet.
type RNG struct{ state uint64 }

// NewRNG seeds a generator. The stream id is passed through two full
// mixing rounds before it touches the state: distinct streams must land
// at effectively random offsets of the SplitMix64 sequence. (A linear
// state offset like state = seed + gamma*stream makes stream t+1 replay
// stream t's outputs shifted by one step — neighbouring terminals would
// inject identical destination sequences one cycle apart, which
// synchronises the whole network.)
func NewRNG(seed, stream uint64) RNG {
	return RNG{state: DeriveSeed(seed, stream)}
}

// DeriveSeed folds the given parts into base, producing a seed that is a
// pure function of (base, parts) with every part passed through two full
// SplitMix64 mixing rounds. It is the derivation the per-terminal RNG
// streams use, exported so parallel execution engines can give each
// independent job (a load point, a series, an experiment) its own
// deterministic seed: because the derived seed depends only on the job's
// identity and never on shared generator state, results are bit-identical
// whether the jobs run serially or concurrently, in any order.
func DeriveSeed(base uint64, parts ...uint64) uint64 {
	s := base
	for _, p := range parts {
		s = Mix(Mix(p+0x632be59bd9b4e019) ^ s)
	}
	return s
}

// Next returns the next 64-bit value.
func (r *RNG) Next() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Intn returns a value in [0, n). n must be positive.
func (r *RNG) Intn(n int) int {
	return int(r.Next() % uint64(n))
}

// Float64 returns a value in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Next()>>11) / float64(1<<53)
}

// Mix hashes a value through one SplitMix64 finalizer, used to derive
// per-packet deterministic choices without consuming generator state.
func Mix(v uint64) uint64 {
	v += 0x9e3779b97f4a7c15
	v = (v ^ (v >> 30)) * 0xbf58476d1ce4e5b9
	v = (v ^ (v >> 27)) * 0x94d049bb133111eb
	return v ^ (v >> 31)
}
