package sim

import "dragonfly/internal/topology"

// link is one direction of a bidirectional channel: flits flow from
// (src, srcPort) to (dst, dstPort) with a fixed latency, and the credits
// for those flits flow back along the same wires.
type link struct {
	id           int
	src, srcPort int
	dst, dstPort int
	latency      int64
	global       bool
	// dead marks a channel severed by a fault plan: the allocator never
	// forwards a flit onto it, so it carries nothing for the whole run.
	dead    bool
	flits   flitQueue
	credits creditQueue
}

// nilLink is the "no channel on this port" link id.
const nilLink int32 = -1

// Router holds the per-router simulation state.
//
// The modelled router is two-stage buffered, like the YARC router the
// paper builds on (footnote 10), with "sufficient speedup" so the
// crossbar is never the bottleneck (Section 4.2):
//
//   - Arriving flits occupy a credit-managed input-buffer slot per
//     (input port, VC) and queue in waitQ, the virtual output queue of
//     their next hop.
//   - The crossbar moves any number of flits per cycle from waitQ into
//     the bounded output buffer outQ (depth outDepth per VC); the move
//     frees the input slot and returns its credit upstream.
//   - Each output channel sends at most one flit per cycle from outQ —
//     channel bandwidth is the real constraint.
//
// When an output is congested its outQ fills, flits back up in waitQ
// still holding input slots, the input buffers fill, and upstream
// credits dry up — the backpressure chain of the paper's Figure 13 —
// while traffic crossing the same router toward uncongested outputs is
// unaffected.
//
// All per-(port, VC) state lives in flat slices indexed port*vcs+vc
// (the pv helper), so a router's working set is a handful of
// contiguous arrays rather than a tree of small allocations.
type Router struct {
	// ID is the router's index in the topology.
	ID    int
	radix int
	vcs   int
	depth int
	// outDepth is the output-buffer depth per VC.
	outDepth int

	// srcQ[port] is the unbounded source (injection) queue of the
	// terminal attached at `port`; unused for non-terminal ports.
	srcQ []pktQueue

	// waitQ[pv(port,vc)] holds flits routed to output `port`, VC `vc`,
	// that have not crossed the crossbar yet; these flits still occupy
	// their input-buffer slots. Terminal outputs (ejection) drain
	// directly from waitQ.
	waitQ []pktQueue

	// outQ[pv(port,vc)] is the bounded output buffer feeding the channel.
	outQ []pktQueue

	// inOcc[pv(port,vc)] counts flits delivered on (port, vc) that have
	// not crossed the crossbar (or ejected) yet; bounded by depth via
	// upstream credits. Terminal ports use vc 0: the slot a packet
	// admitted from the source queue occupies.
	inOcc []int32

	// credits[pv(port,vc)] counts free downstream buffer slots for
	// output `port`, VC `vc`. Terminal (ejection) ports have no credits.
	credits []int32

	// outRR[port] round-robins over the VCs of an output.
	outRR []int32

	// stallCyc[pv(port,vc)] accumulates credit-stall cycles (flits
	// waiting, no downstream credit) on an output VC since its last
	// departure. Maintained only while a hop tracer is attached; the
	// count rides out on the next metrics.Hop and resets.
	stallCyc []int64

	// Credit round-trip state (Section 4.3.2): ctq holds the send
	// timestamp of every outstanding flit per output port; td is the
	// smoothed downstream congestion estimate t_crt - t_crt0; crossTd is
	// the smoothed crossing wait (arrival to crossbar transfer) towards
	// each output — the component of the credit round-trip an upstream
	// router would attribute to this router. Their sum is the congestion
	// estimate the delayed-credit mechanism uses.
	ctq     []creditQueue // timestamp FIFO (vc field unused)
	td      []int64
	crossTd []int64
	tcrt0   []int64

	// outLink[port] is the id of the channel carrying flits out of this
	// router (nilLink for terminal ports); inLink[port] the reverse
	// direction feeding the input. Ids index Network.links.
	outLink []int32
	inLink  []int32

	// isTerm marks terminal ports.
	isTerm []bool
}

// pv maps (port, vc) to the index of the flat per-(port, VC) slices.
func (r *Router) pv(port, vc int) int { return port*r.vcs + vc }

func (r *Router) init(id int, topo Topology, cfg Config) {
	radix := topo.Radix(id)
	out := cfg.OutDepth
	if out == 0 {
		out = 4
	}
	r.ID = id
	r.radix = radix
	r.vcs = cfg.VCs
	r.depth = cfg.BufDepth
	r.outDepth = out
	r.srcQ = make([]pktQueue, radix)
	r.waitQ = make([]pktQueue, radix*cfg.VCs)
	r.outQ = make([]pktQueue, radix*cfg.VCs)
	r.inOcc = make([]int32, radix*cfg.VCs)
	r.credits = make([]int32, radix*cfg.VCs)
	r.outRR = make([]int32, radix)
	r.stallCyc = make([]int64, radix*cfg.VCs)
	r.ctq = make([]creditQueue, radix)
	r.td = make([]int64, radix)
	r.crossTd = make([]int64, radix)
	r.tcrt0 = make([]int64, radix)
	r.outLink = make([]int32, radix)
	r.inLink = make([]int32, radix)
	r.isTerm = make([]bool, radix)
	for p := 0; p < radix; p++ {
		r.outLink[p] = nilLink
		r.inLink[p] = nilLink
		r.isTerm[p] = topo.Port(id, p).Class == topology.ClassTerminal
	}
	// Pre-size every ring to its steady-state bound so the hot loop
	// never allocates: waitQ backs the input buffer (depth flits per
	// VC), outQ is bounded by outDepth, and a port's credit queue holds
	// at most one credit per downstream buffer slot. Source queues are
	// unbounded but start at the buffer depth and amortize from there.
	for p := 0; p < radix; p++ {
		r.srcQ[p].reserve(cfg.BufDepth)
		r.ctq[p].reserve(cfg.VCs * cfg.BufDepth)
		for vc := 0; vc < cfg.VCs; vc++ {
			r.waitQ[r.pv(p, vc)].reserve(cfg.BufDepth)
			r.outQ[r.pv(p, vc)].reserve(out)
		}
	}
}

// Radix returns the number of ports (terminal ports included).
func (r *Router) Radix() int { return r.radix }

// IsTerminalPort reports whether port p attaches a terminal.
func (r *Router) IsTerminalPort(p int) bool { return r.isTerm[p] }

// Credits returns the free downstream slots for (port, vc).
func (r *Router) Credits(port, vc int) int { return int(r.credits[r.pv(port, vc)]) }

// DownstreamQueueVC estimates the occupancy of the downstream buffer fed
// by output `port`, VC `vc`: buffer depth minus available credits. It
// counts flits buffered downstream plus flits and credits in flight.
func (r *Router) DownstreamQueueVC(port, vc int) int {
	return r.depth - int(r.credits[r.pv(port, vc)])
}

// DownstreamQueue sums DownstreamQueueVC over all VCs of `port`.
func (r *Router) DownstreamQueue(port int) int {
	q := 0
	base := port * r.vcs
	for vc := 0; vc < r.vcs; vc++ {
		q += r.depth - int(r.credits[base+vc])
	}
	return q
}

// PendingOut returns the number of packets queued at this router for
// output `port`, in the output buffer or still waiting to cross.
func (r *Router) PendingOut(port int) int {
	n := 0
	base := port * r.vcs
	for vc := 0; vc < r.vcs; vc++ {
		n += r.waitQ[base+vc].len() + r.outQ[base+vc].len()
	}
	return n
}

// PendingOutVC returns the queued count for (port, vc).
func (r *Router) PendingOutVC(port, vc int) int {
	i := r.pv(port, vc)
	return r.waitQ[i].len() + r.outQ[i].len()
}

// OutputQueue is the congestion estimate UGAL uses for an output port:
// packets waiting here for the port plus the estimated downstream
// occupancy. It is the simulator's analogue of the paper's q.
func (r *Router) OutputQueue(port int) int {
	return r.PendingOut(port) + r.DownstreamQueue(port)
}

// OutputQueueVC is the per-VC congestion estimate (the paper's q_vc),
// used by the UGAL-L_VC variants to discriminate minimal from
// non-minimal occupancy on a shared output port.
func (r *Router) OutputQueueVC(port, vc int) int {
	return r.PendingOutVC(port, vc) + r.DownstreamQueueVC(port, vc)
}

// InputOccupancy returns the occupied slots of input buffer (port, vc).
func (r *Router) InputOccupancy(port, vc int) int { return int(r.inOcc[r.pv(port, vc)]) }

// SourceQueueLen returns the backlog of the source queue on terminal
// port p (0 for non-terminal ports).
func (r *Router) SourceQueueLen(p int) int {
	if !r.isTerm[p] {
		return 0
	}
	return r.srcQ[p].len()
}

// BufferedPackets returns the number of packets held at the router,
// source queues included.
func (r *Router) BufferedPackets() int {
	n := 0
	for p := 0; p < r.radix; p++ {
		n += r.srcQ[p].len()
	}
	for i := range r.waitQ {
		n += r.waitQ[i].len() + r.outQ[i].len()
	}
	return n
}

// TD returns the current congestion estimate t_d of output `port`: the
// smoothed local crossing wait plus the downstream credit round-trip
// excess.
func (r *Router) TD(port int) int64 { return r.crossTd[port] + r.td[port] }

// CrossTD returns the smoothed crossing wait of output `port`.
func (r *Router) CrossTD(port int) int64 { return r.crossTd[port] }

// RTTTD returns the smoothed credit round-trip excess of output `port`.
func (r *Router) RTTTD(port int) int64 { return r.td[port] }

// minTD returns min over non-terminal outputs of t_d, the baseline the
// credit-delay mechanism subtracts so the least-congested output sees no
// delay and uniformly congested routers delay nothing (the paper's
// variance estimate).
func (r *Router) minTD() int64 {
	min := int64(-1)
	for p := 0; p < r.radix; p++ {
		if r.isTerm[p] {
			continue
		}
		if td := r.crossTd[p] + r.td[p]; min < 0 || td < min {
			min = td
		}
	}
	if min < 0 {
		return 0
	}
	return min
}

// baseCrossTD returns the second-largest smoothed crossing wait over
// the non-terminal outputs, the congestion baseline of the router. A
// genuine hot spot is an outlier: one output far above every other.
// When several outputs are congested together the router is simply
// busy, the baseline rises with the load, and no output qualifies —
// the robust form of the paper's variance estimate, which exists
// precisely so that uniformly loaded routers delay nothing.
func (r *Router) baseCrossTD() int64 {
	var max1, max2 int64 = -1, -1
	for p := 0; p < r.radix; p++ {
		if r.isTerm[p] {
			continue
		}
		td := r.crossTd[p]
		switch {
		case td > max1:
			max2 = max1
			max1 = td
		case td > max2:
			max2 = td
		}
	}
	if max2 < 0 {
		return 0
	}
	return max2
}

// ewma folds a new sample into a 1/4-gain exponentially weighted moving
// average, the smoothing applied to the credit round-trip sensor.
func ewma(old, sample int64) int64 { return (3*old + sample) / 4 }

// asymEwma filters the crossing-wait sensor with a slow attack and a
// fast decay: a hot spot must persist (tens of crossings) before it
// registers, and the estimate collapses as soon as the waits drop. This
// keeps the short-lived queueing transients of a busy balanced network
// from triggering credit delays, while a persistently oversubscribed
// channel — whose waits stay high for as long as the adversarial
// traffic lasts — registers fully.
func asymEwma(old, sample int64) int64 {
	if sample > old {
		return old + (sample-old+31)/32
	}
	return old - (old-sample+31)/32
}
