package sim

import (
	"context"
	"errors"
	"fmt"
	"math"

	"dragonfly/internal/metrics"
	"dragonfly/internal/stats"
)

// RunConfig controls one simulation run: the standard warm-up →
// tagged-measurement → drain methodology of Section 4.2 (packets injected
// during the measurement window are labelled, and the simulation runs
// until every labelled packet has left the system).
type RunConfig struct {
	// Load is the offered load in flits/cycle/terminal.
	Load float64
	// WarmupCycles runs the network to steady state before measuring.
	WarmupCycles int
	// MeasureCycles is the tagged-injection window length.
	MeasureCycles int
	// DrainCycles caps the drain phase; if tagged packets remain after
	// this many extra cycles the run is marked saturated.
	DrainCycles int
	// Histogram, when true, collects latency histograms (Figure 12).
	Histogram bool
	// HistWidth is the histogram bucket width in cycles (default 2).
	HistWidth int64
	// Utilization, when true, attaches a metrics.ChannelUtil collector
	// for exactly the measurement phase and reports it in
	// Result.ChannelUtil (Figure 9). Any collector already attached via
	// Network.AttachMetrics keeps receiving events alongside it and is
	// restored when the measurement window closes.
	Utilization bool
	// StallLimit aborts the run if no flit moves for this many cycles
	// while packets are in flight — a deadlock detector. Default 10000.
	StallLimit int64
}

// Validate reports the first problem with the run parameters as a
// *ConfigError. Run calls it before touching the network, so a NaN load
// or a non-positive measurement window is rejected up front instead of
// surfacing as a division by zero or a run that silently never injects.
// A zero warm-up is valid (deliberately cold-started stress tests use
// it); only negative phase lengths and an empty measurement window are
// not.
func (rc RunConfig) Validate() error {
	switch {
	case math.IsNaN(rc.Load) || math.IsInf(rc.Load, 0):
		return &ConfigError{Param: "Load", Value: fmt.Sprint(rc.Load), Reason: "load must be a finite fraction in [0,1]"}
	case rc.Load < 0 || rc.Load > 1:
		return &ConfigError{Param: "Load", Value: fmt.Sprint(rc.Load), Reason: "load is a fraction of channel capacity in [0,1]"}
	case rc.WarmupCycles < 0:
		return &ConfigError{Param: "WarmupCycles", Value: fmt.Sprint(rc.WarmupCycles), Reason: "warm-up must be >= 0 cycles"}
	case rc.MeasureCycles <= 0:
		return &ConfigError{Param: "MeasureCycles", Value: fmt.Sprint(rc.MeasureCycles), Reason: "the measurement window needs at least one cycle"}
	case rc.DrainCycles < 0:
		return &ConfigError{Param: "DrainCycles", Value: fmt.Sprint(rc.DrainCycles), Reason: "the drain cap must be >= 0 cycles"}
	case rc.HistWidth < 0:
		return &ConfigError{Param: "HistWidth", Value: fmt.Sprint(rc.HistWidth), Reason: "bucket width must be >= 0 (0 takes the default)"}
	case rc.StallLimit < 0:
		return &ConfigError{Param: "StallLimit", Value: fmt.Sprint(rc.StallLimit), Reason: "the stall horizon must be >= 0 (0 takes the default)"}
	}
	return nil
}

// DefaultRunConfig returns measurement parameters suited to the 1K-node
// evaluation network.
func DefaultRunConfig(load float64) RunConfig {
	return RunConfig{
		Load:          load,
		WarmupCycles:  3000,
		MeasureCycles: 2000,
		DrainCycles:   30000,
		HistWidth:     2,
		StallLimit:    10000,
	}
}

// Result reports one run's measurements.
type Result struct {
	stats.Summary
	// Hist, MinHist and NonminHist are latency histograms of measured
	// packets (nil unless RunConfig.Histogram).
	Hist, MinHist, NonminHist *stats.Histogram
	// Cycles is the total number of simulated cycles.
	Cycles int64
	// DrainTimeout reports that tagged packets were still in flight when
	// the drain cap was reached — the usual saturation signature.
	DrainTimeout bool
	// Dropped is the number of packets abandoned during this run because
	// routing found no live path under the active fault plan (errors
	// wrapping ErrUnroutable). Always 0 on a pristine or still-connected
	// topology.
	Dropped int64
	// KilledInFlight is the number of packets destroyed by fault-timeline
	// epoch swaps during this run: flits caught on a channel that failed,
	// or buffered in a router that went down. Distinct from Dropped, which
	// counts routing-level give-ups on packets that were still intact.
	// Always 0 without a timeline.
	KilledInFlight int64
	// Rerouted is the number of queued packets an epoch swap re-pointed
	// at a new output after their previously chosen channel died. Always
	// 0 without a timeline.
	Rerouted int64
	// AliveTerminals is the number of terminals injecting under the
	// active fault plan; Accepted is normalised by it, so a degraded
	// network is judged on the capacity it still has.
	AliveTerminals int
	// ChannelUtil holds the per-channel flit counts collected over
	// exactly the measurement phase (nil unless RunConfig.Utilization).
	// Its window is set to MeasureCycles, so Utilization(link) is the
	// fraction of the measurement window the channel was busy — of the
	// cycles it was alive, under a fault timeline (dead cycles are
	// excluded from the denominator via the link-state events).
	ChannelUtil *metrics.ChannelUtil
}

// Run executes the full warm-up/measure/drain sequence on net and
// returns the measurements. The network keeps its state afterwards, so
// successive runs at increasing load on a fresh network per load point
// are the intended usage. Run cannot be canceled; long-running callers
// should use RunCtx.
func Run(net *Network, rc RunConfig) (Result, error) {
	return RunCtx(context.Background(), net, rc)
}

// RunCtx is Run observing ctx: the engine polls the context at
// cycle-batch checkpoints (every few dozen cycles, between cycle
// bodies) in all three phases, and returns a *CanceledError — wrapping
// both ErrCanceled and the context's cause, tagged with the phase it
// stopped in — once ctx is done. The partial Result accompanies the
// error: measurements accumulated up to the checkpoint (latency
// accumulators, cycle count) are intact, because cancellation only
// observes state, never mutates it. The network itself is left a valid
// paused simulation; a fresh network re-run to completion is
// bit-identical to a run that was never canceled.
func RunCtx(ctx context.Context, net *Network, rc RunConfig) (Result, error) {
	if err := rc.Validate(); err != nil {
		return Result{}, err
	}
	if rc.StallLimit <= 0 {
		rc.StallLimit = 10000
	}
	if rc.HistWidth <= 0 {
		rc.HistWidth = 2
	}

	res := Result{}
	res.Offered = rc.Load
	if rc.Histogram {
		res.Hist = stats.NewHistogram(rc.HistWidth)
		res.MinHist = stats.NewHistogram(rc.HistWidth)
		res.NonminHist = stats.NewHistogram(rc.HistWidth)
	}
	var minCount, totalCount int64
	net.OnEject = func(p *Packet, now int64) {
		if !p.Measured {
			return
		}
		lat := float64(now - p.CreateTime)
		res.Latency.Add(lat)
		totalCount++
		if p.Minimal {
			res.MinLatency.Add(lat)
			minCount++
			if res.MinHist != nil {
				res.MinHist.Add(now - p.CreateTime)
			}
		} else {
			res.NonminLatency.Add(lat)
			if res.NonminHist != nil {
				res.NonminHist.Add(now - p.CreateTime)
			}
		}
		if res.Hist != nil {
			res.Hist.Add(now - p.CreateTime)
		}
	}
	// Reset the measurement state on every exit path, error returns
	// included: a stall error inside the measurement loop must not leave
	// net.measuring/net.countWindow set (tagging warm-up packets and
	// corrupting window counts of any later run on this network), the
	// ejection observer must never outlive the run whose Result it
	// captures, and the collector this run attached must not keep
	// counting (or keep costing) in later runs on the same network — a
	// Utilization run followed by a plain run must leave the plain run on
	// the zero-cost path. The observer is cleared first so no packet can
	// be counted against a half-reset window.
	prevCollector := net.Metrics()
	prevCtx := net.ctx
	net.SetContext(ctx)
	defer func() {
		net.OnEject = nil
		net.measuring = false
		net.countWindow = false
		net.AttachMetrics(prevCollector)
		net.SetContext(prevCtx)
	}()

	net.SetLoad(rc.Load)
	dropped0 := net.totalDropped()
	killed0 := net.killedInFlight
	rerouted0 := net.rerouted
	res.AliveTerminals = net.aliveTerms
	stalled := func() bool {
		return net.totalInFlight() > 0 && net.now-net.maxLastMove() > rc.StallLimit
	}
	// phase runs one simulation phase for up to limit cycles, stopping
	// early when stop says so, and converts detector trips and Step
	// failures into phase-tagged errors.
	phase := func(ph Phase, limit int, stop func() bool) error {
		for i := 0; i < limit; i++ {
			if stop != nil && stop() {
				return nil
			}
			if err := net.Step(); err != nil {
				var ce *CanceledError
				if errors.As(err, &ce) {
					ce.Phase = ph
				}
				return fmt.Errorf("sim: %s phase: %w", ph, err)
			}
			if stalled() {
				return net.stallError(ph, rc.StallLimit)
			}
		}
		return nil
	}

	// Warm-up.
	if err := phase(PhaseWarmup, rc.WarmupCycles, nil); err != nil {
		return res, err
	}

	// Measurement.
	if rc.Utilization {
		res.ChannelUtil = metrics.NewChannelUtil(net.NumLinks())
		res.ChannelUtil.SetWindow(int64(rc.MeasureCycles))
		if prevCollector != nil {
			net.AttachMetrics(metrics.Multi{prevCollector, res.ChannelUtil})
		} else {
			net.AttachMetrics(res.ChannelUtil)
		}
	}
	net.measuring = true
	net.countWindow = true
	net.resetWindowCounts()
	if err := phase(PhaseMeasure, rc.MeasureCycles, nil); err != nil {
		return res, err
	}
	net.measuring = false
	net.countWindow = false
	if rc.Utilization {
		// The utilization window is exactly the measurement phase: detach
		// so the drain neither counts flits nor accrues dead time.
		net.AttachMetrics(prevCollector)
	}
	res.Accepted = float64(net.totalEjectedWindow()) / (float64(net.aliveTerms) * float64(rc.MeasureCycles))

	// Drain every tagged packet.
	drained := func() bool { return net.totalOutstanding() <= 0 }
	if err := phase(PhaseDrain, rc.DrainCycles, drained); err != nil {
		return res, err
	}
	res.DrainTimeout = !drained()

	if totalCount > 0 {
		res.MinimalFraction = float64(minCount) / float64(totalCount)
	}
	res.Cycles = net.now
	res.Dropped = net.totalDropped() - dropped0
	res.KilledInFlight = net.killedInFlight - killed0
	res.Rerouted = net.rerouted - rerouted0
	res.Saturated = res.DrainTimeout || res.Accepted < rc.Load*0.95
	return res, nil
}
