package sim

import (
	"context"
	"errors"
	"fmt"
	"math"

	"dragonfly/internal/metrics"
	"dragonfly/internal/stats"
)

// RunConfig controls one simulation run: the standard warm-up →
// tagged-measurement → drain methodology of Section 4.2 (packets injected
// during the measurement window are labelled, and the simulation runs
// until every labelled packet has left the system).
type RunConfig struct {
	// Load is the offered load in flits/cycle/terminal.
	Load float64
	// WarmupCycles runs the network to steady state before measuring.
	WarmupCycles int
	// MeasureCycles is the tagged-injection window length.
	MeasureCycles int
	// DrainCycles caps the drain phase; if tagged packets remain after
	// this many extra cycles the run is marked saturated.
	DrainCycles int
	// Histogram, when true, collects latency histograms (Figure 12).
	Histogram bool
	// HistWidth is the histogram bucket width in cycles (default 2).
	HistWidth int64
	// Utilization, when true, attaches a metrics.ChannelUtil collector
	// for exactly the measurement phase and reports it in
	// Result.ChannelUtil (Figure 9). Any collector already attached via
	// Network.AttachMetrics keeps receiving events alongside it and is
	// restored when the measurement window closes. Incompatible with
	// CheckpointEvery: collector state is not part of a snapshot.
	Utilization bool
	// StallLimit aborts the run if no flit moves for this many cycles
	// while packets are in flight — a deadlock detector. Default 10000.
	StallLimit int64
	// CheckpointEvery, when > 0, captures a dfly-snap/1 checkpoint —
	// engine state plus the run's accumulated measurement state — every
	// CheckpointEvery cycles and hands it to CheckpointSink. Checkpoints
	// are taken between Steps (the same cycle-batch boundaries
	// cancellation observes), so they never see a half-applied cycle, and
	// resuming one via ResumeCtx finishes bit-identical to a run that was
	// never interrupted.
	CheckpointEvery int64
	// CheckpointSink receives each checkpoint's encoded bytes. A sink
	// error aborts the run with a phase-tagged error wrapping it — the
	// right behaviour both for unwritable checkpoint storage and for
	// callers that deliberately stop a run at its first checkpoint.
	CheckpointSink func(snapshot []byte) error
}

// Validate reports the first problem with the run parameters as a
// *ConfigError. Run calls it before touching the network, so a NaN load
// or a non-positive measurement window is rejected up front instead of
// surfacing as a division by zero or a run that silently never injects.
// A zero warm-up is valid (deliberately cold-started stress tests use
// it); only negative phase lengths and an empty measurement window are
// not.
func (rc RunConfig) Validate() error {
	switch {
	case math.IsNaN(rc.Load) || math.IsInf(rc.Load, 0):
		return &ConfigError{Param: "Load", Value: fmt.Sprint(rc.Load), Reason: "load must be a finite fraction in [0,1]"}
	case rc.Load < 0 || rc.Load > 1:
		return &ConfigError{Param: "Load", Value: fmt.Sprint(rc.Load), Reason: "load is a fraction of channel capacity in [0,1]"}
	case rc.WarmupCycles < 0:
		return &ConfigError{Param: "WarmupCycles", Value: fmt.Sprint(rc.WarmupCycles), Reason: "warm-up must be >= 0 cycles"}
	case rc.MeasureCycles <= 0:
		return &ConfigError{Param: "MeasureCycles", Value: fmt.Sprint(rc.MeasureCycles), Reason: "the measurement window needs at least one cycle"}
	case rc.DrainCycles < 0:
		return &ConfigError{Param: "DrainCycles", Value: fmt.Sprint(rc.DrainCycles), Reason: "the drain cap must be >= 0 cycles"}
	case rc.HistWidth < 0:
		return &ConfigError{Param: "HistWidth", Value: fmt.Sprint(rc.HistWidth), Reason: "bucket width must be >= 0 (0 takes the default)"}
	case rc.StallLimit < 0:
		return &ConfigError{Param: "StallLimit", Value: fmt.Sprint(rc.StallLimit), Reason: "the stall horizon must be >= 0 (0 takes the default)"}
	case rc.CheckpointEvery < 0:
		return &ConfigError{Param: "CheckpointEvery", Value: fmt.Sprint(rc.CheckpointEvery), Reason: "the checkpoint interval must be >= 0 cycles (0 disables checkpointing)"}
	case rc.CheckpointEvery > 0 && rc.CheckpointSink == nil:
		return &ConfigError{Param: "CheckpointSink", Value: "nil", Reason: "a checkpoint interval needs a sink to receive the snapshots"}
	case rc.CheckpointSink != nil && rc.CheckpointEvery == 0:
		return &ConfigError{Param: "CheckpointEvery", Value: "0", Reason: "a checkpoint sink needs an interval (CheckpointEvery > 0)"}
	case rc.CheckpointEvery > 0 && rc.Utilization:
		return &ConfigError{Param: "CheckpointEvery", Value: fmt.Sprint(rc.CheckpointEvery), Reason: "utilization collection cannot be checkpointed (collector state is not part of a snapshot)"}
	}
	return nil
}

// DefaultRunConfig returns measurement parameters suited to the 1K-node
// evaluation network.
func DefaultRunConfig(load float64) RunConfig {
	return RunConfig{
		Load:          load,
		WarmupCycles:  3000,
		MeasureCycles: 2000,
		DrainCycles:   30000,
		HistWidth:     2,
		StallLimit:    10000,
	}
}

// Result reports one run's measurements.
type Result struct {
	stats.Summary
	// Hist, MinHist and NonminHist are latency histograms of measured
	// packets (nil unless RunConfig.Histogram).
	Hist, MinHist, NonminHist *stats.Histogram
	// Cycles is the total number of simulated cycles.
	Cycles int64
	// DrainTimeout reports that tagged packets were still in flight when
	// the drain cap was reached — the usual saturation signature.
	DrainTimeout bool
	// Dropped is the number of packets abandoned during this run because
	// routing found no live path under the active fault plan (errors
	// wrapping ErrUnroutable). Always 0 on a pristine or still-connected
	// topology.
	Dropped int64
	// KilledInFlight is the number of packets destroyed by fault-timeline
	// epoch swaps during this run: flits caught on a channel that failed,
	// or buffered in a router that went down. Distinct from Dropped, which
	// counts routing-level give-ups on packets that were still intact.
	// Always 0 without a timeline.
	KilledInFlight int64
	// Rerouted is the number of queued packets an epoch swap re-pointed
	// at a new output after their previously chosen channel died. Always
	// 0 without a timeline.
	Rerouted int64
	// AliveTerminals is the number of terminals injecting under the
	// active fault plan; Accepted is normalised by it, so a degraded
	// network is judged on the capacity it still has.
	AliveTerminals int
	// ChannelUtil holds the per-channel flit counts collected over
	// exactly the measurement phase (nil unless RunConfig.Utilization).
	// Its window is set to MeasureCycles, so Utilization(link) is the
	// fraction of the measurement window the channel was busy — of the
	// cycles it was alive, under a fault timeline (dead cycles are
	// excluded from the denominator via the link-state events).
	ChannelUtil *metrics.ChannelUtil
}

// Phase positions as stored in a checkpoint's run section.
const (
	phaseWarmupIdx  = uint8(PhaseWarmup)
	phaseMeasureIdx = uint8(PhaseMeasure)
	phaseDrainIdx   = uint8(PhaseDrain)
)

// runState is the complete RunCtx measurement state — everything a
// snapshot of the engine does not already cover — carried in a
// checkpoint's run section so a resumed run continues the exact
// accumulator recurrences and phase position of the interrupted one.
type runState struct {
	// rc echoes the run parameters the checkpoint was taken under;
	// ResumeCtx refuses to continue under different ones.
	rc RunConfig
	// res accumulates the Result under construction (the OnEject
	// observer feeds its accumulators and histograms).
	res Result
	// minCount and totalCount drive MinimalFraction.
	minCount, totalCount int64
	// dropped0, killed0 and rerouted0 are the run-start baselines the
	// finished Result's deltas are taken against.
	dropped0, killed0, rerouted0 int64
	// phaseIdx and iterDone are the position: iterDone cycles of phase
	// phaseIdx are complete.
	phaseIdx uint8
	iterDone int64
}

// Run executes the full warm-up/measure/drain sequence on net and
// returns the measurements. The network keeps its state afterwards, so
// successive runs at increasing load on a fresh network per load point
// are the intended usage. Run cannot be canceled; long-running callers
// should use RunCtx.
func Run(net *Network, rc RunConfig) (Result, error) {
	return RunCtx(context.Background(), net, rc)
}

// RunCtx is Run observing ctx: the engine polls the context at
// cycle-batch checkpoints (every few dozen cycles, between cycle
// bodies) in all three phases, and returns a *CanceledError — wrapping
// both ErrCanceled and the context's cause, tagged with the phase it
// stopped in — once ctx is done. The partial Result accompanies the
// error: measurements accumulated up to the checkpoint (latency
// accumulators, cycle count) are intact, because cancellation only
// observes state, never mutates it. The network itself is left a valid
// paused simulation; a fresh network re-run to completion is
// bit-identical to a run that was never canceled.
func RunCtx(ctx context.Context, net *Network, rc RunConfig) (Result, error) {
	if err := rc.Validate(); err != nil {
		return Result{}, err
	}
	normalizeRunConfig(&rc)
	st := &runState{rc: rc}
	st.res.Offered = rc.Load
	if rc.Histogram {
		st.res.Hist = stats.NewHistogram(rc.HistWidth)
		st.res.MinHist = stats.NewHistogram(rc.HistWidth)
		st.res.NonminHist = stats.NewHistogram(rc.HistWidth)
	}
	return runPhases(ctx, net, rc, st, false)
}

// ResumeCtx continues a run from a checkpoint taken by a RunCtx with
// CheckpointEvery set. net must be freshly built over the same
// topology, configuration, routing, traffic and timeline the
// checkpoint's network had (any shard count), and rc must carry the
// same run parameters the checkpointed run was started with —
// CheckpointEvery and CheckpointSink are free to differ, so a resumed
// run can itself keep checkpointing. The finished Result is
// bit-identical to the uninterrupted run's.
//
// A snapshot that does not decode against net is a *SnapshotError
// (wrapping ErrBadSnapshot); on any error the network may hold
// partially restored state and must be discarded.
func ResumeCtx(ctx context.Context, net *Network, rc RunConfig, snap []byte) (Result, error) {
	if err := rc.Validate(); err != nil {
		return Result{}, err
	}
	if rc.Utilization {
		return Result{}, &ConfigError{Param: "Utilization", Value: "true", Reason: "utilization collection cannot resume from a checkpoint (collector state is not part of a snapshot)"}
	}
	normalizeRunConfig(&rc)
	rs, err := net.restore(snap, true)
	if err != nil {
		return Result{}, err
	}
	if c := rs.rc; math.Float64bits(c.Load) != math.Float64bits(rc.Load) ||
		c.WarmupCycles != rc.WarmupCycles || c.MeasureCycles != rc.MeasureCycles ||
		c.DrainCycles != rc.DrainCycles || c.Histogram != rc.Histogram ||
		c.HistWidth != rc.HistWidth || c.StallLimit != rc.StallLimit {
		return Result{}, &SnapshotError{Reason: fmt.Sprintf(
			"checkpointed run parameters (load %v, warmup %d, measure %d, drain %d, histogram %t/%d, stall %d) do not match the resume's (load %v, warmup %d, measure %d, drain %d, histogram %t/%d, stall %d)",
			c.Load, c.WarmupCycles, c.MeasureCycles, c.DrainCycles, c.Histogram, c.HistWidth, c.StallLimit,
			rc.Load, rc.WarmupCycles, rc.MeasureCycles, rc.DrainCycles, rc.Histogram, rc.HistWidth, rc.StallLimit)}
	}
	rs.rc = rc
	return runPhases(ctx, net, rc, rs, true)
}

// normalizeRunConfig applies the documented defaults (after Validate).
func normalizeRunConfig(rc *RunConfig) {
	if rc.StallLimit <= 0 {
		rc.StallLimit = 10000
	}
	if rc.HistWidth <= 0 {
		rc.HistWidth = 2
	}
}

// runPhases drives the warm-up/measure/drain sequence from st's phase
// position to completion. For a fresh run st starts at warm-up cycle 0;
// for a resumed one st and the network both sit exactly where the
// checkpoint was taken, so the first loop iteration re-fires that same
// checkpoint (bit-identical, harmless) and continues.
func runPhases(ctx context.Context, net *Network, rc RunConfig, st *runState, resumed bool) (Result, error) {
	net.OnEject = func(p *Packet, now int64) {
		if !p.Measured {
			return
		}
		lat := float64(now - p.CreateTime)
		st.res.Latency.Add(lat)
		st.totalCount++
		if p.Minimal {
			st.res.MinLatency.Add(lat)
			st.minCount++
			if st.res.MinHist != nil {
				st.res.MinHist.Add(now - p.CreateTime)
			}
		} else {
			st.res.NonminLatency.Add(lat)
			if st.res.NonminHist != nil {
				st.res.NonminHist.Add(now - p.CreateTime)
			}
		}
		if st.res.Hist != nil {
			st.res.Hist.Add(now - p.CreateTime)
		}
	}
	// Reset the measurement state on every exit path, error returns
	// included: a stall error inside the measurement loop must not leave
	// net.measuring/net.countWindow set (tagging warm-up packets and
	// corrupting window counts of any later run on this network), the
	// ejection observer must never outlive the run whose Result it
	// captures, and the collector this run attached must not keep
	// counting (or keep costing) in later runs on the same network — a
	// Utilization run followed by a plain run must leave the plain run on
	// the zero-cost path. The observer is cleared first so no packet can
	// be counted against a half-reset window.
	prevCollector := net.Metrics()
	prevCtx := net.ctx
	net.SetContext(ctx)
	defer func() {
		net.OnEject = nil
		net.measuring = false
		net.countWindow = false
		net.AttachMetrics(prevCollector)
		net.SetContext(prevCtx)
	}()

	net.SetLoad(rc.Load)
	if !resumed {
		st.dropped0 = net.totalDropped()
		st.killed0 = net.killedInFlight
		st.rerouted0 = net.rerouted
		st.res.AliveTerminals = net.aliveTerms
	}
	stalled := func() bool {
		return net.totalInFlight() > 0 && net.now-net.maxLastMove() > rc.StallLimit
	}
	checkpoint := func(ph Phase, done int64) error {
		st.phaseIdx, st.iterDone = uint8(ph), done
		snap, err := net.snapshot(st)
		if err != nil {
			return fmt.Errorf("sim: %s phase: checkpoint: %w", ph, err)
		}
		if err := rc.CheckpointSink(snap); err != nil {
			return fmt.Errorf("sim: %s phase: checkpoint sink: %w", ph, err)
		}
		return nil
	}
	// phase runs one simulation phase from its start-th to its limit-th
	// cycle, stopping early when stop says so, and converts detector
	// trips and Step failures into phase-tagged errors. Checkpoints fire
	// between Steps, before the cycle that lands on the interval.
	phase := func(ph Phase, start, limit int64, stop func() bool) error {
		for i := start; i < limit; i++ {
			if stop != nil && stop() {
				return nil
			}
			if rc.CheckpointEvery > 0 && net.now > 0 && net.now%rc.CheckpointEvery == 0 {
				if err := checkpoint(ph, i); err != nil {
					return err
				}
			}
			if err := net.Step(); err != nil {
				var ce *CanceledError
				if errors.As(err, &ce) {
					ce.Phase = ph
				}
				return fmt.Errorf("sim: %s phase: %w", ph, err)
			}
			if stalled() {
				return net.stallError(ph, rc.StallLimit)
			}
		}
		return nil
	}

	// Warm-up.
	if st.phaseIdx == phaseWarmupIdx {
		if err := phase(PhaseWarmup, st.iterDone, int64(rc.WarmupCycles), nil); err != nil {
			return st.res, err
		}
		// Measurement setup. A resume into the measurement phase skips
		// this: the window flags and counters were restored with the
		// engine.
		if rc.Utilization {
			st.res.ChannelUtil = metrics.NewChannelUtil(net.NumLinks())
			st.res.ChannelUtil.SetWindow(int64(rc.MeasureCycles))
			if prevCollector != nil {
				net.AttachMetrics(metrics.Multi{prevCollector, st.res.ChannelUtil})
			} else {
				net.AttachMetrics(st.res.ChannelUtil)
			}
		}
		net.measuring = true
		net.countWindow = true
		net.resetWindowCounts()
		st.phaseIdx, st.iterDone = phaseMeasureIdx, 0
	}

	// Measurement.
	if st.phaseIdx == phaseMeasureIdx {
		if err := phase(PhaseMeasure, st.iterDone, int64(rc.MeasureCycles), nil); err != nil {
			return st.res, err
		}
		net.measuring = false
		net.countWindow = false
		if rc.Utilization {
			// The utilization window is exactly the measurement phase: detach
			// so the drain neither counts flits nor accrues dead time.
			net.AttachMetrics(prevCollector)
		}
		st.res.Accepted = float64(net.totalEjectedWindow()) / (float64(net.aliveTerms) * float64(rc.MeasureCycles))
		st.phaseIdx, st.iterDone = phaseDrainIdx, 0
	}

	// Drain every tagged packet. A resume into the drain phase keeps the
	// checkpointed Accepted: recomputing it here could disagree if a
	// timeline changed aliveTerms between the window's close and the
	// checkpoint.
	drained := func() bool { return net.totalOutstanding() <= 0 }
	if err := phase(PhaseDrain, st.iterDone, int64(rc.DrainCycles), drained); err != nil {
		return st.res, err
	}
	st.res.DrainTimeout = !drained()

	if st.totalCount > 0 {
		st.res.MinimalFraction = float64(st.minCount) / float64(st.totalCount)
	}
	st.res.Cycles = net.now
	st.res.Dropped = net.totalDropped() - st.dropped0
	st.res.KilledInFlight = net.killedInFlight - st.killed0
	st.res.Rerouted = net.rerouted - st.rerouted0
	st.res.Saturated = st.res.DrainTimeout || st.res.Accepted < rc.Load*0.95
	return st.res, nil
}
