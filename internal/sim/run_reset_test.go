package sim

import (
	"strings"
	"testing"

	"dragonfly/internal/topology"
)

// loopRouting wedges the network on purpose: every packet is forwarded
// to local port 1 on VC 0 forever and never ejected, so input buffers
// and credits exhaust and the stall detector fires.
type loopRouting struct{}

func (loopRouting) Name() string                              { return "loop" }
func (loopRouting) Decide(*Network, *Router, *HopState) error { return nil }
func (loopRouting) NextHop(_ *Network, _ *Router, hs *HopState) error {
	hs.Port = 1 // the single local port of a p=1, a=2 router
	hs.VC = 0
	return nil
}

// ringTraffic sends every packet to the next terminal (it is never
// delivered; loopRouting discards the destination).
type ringTraffic struct{ n int }

func (ringTraffic) Name() string                 { return "ring" }
func (r ringTraffic) Dest(src int, _ uint64) int { return (src + 1) % r.n }

func wedgedNetwork(t *testing.T) *Network {
	t.Helper()
	d, err := topology.NewDragonfly(1, 2, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.BufDepth = 1
	net, err := New(d, cfg, loopRouting{}, ringTraffic{n: d.Terminals()})
	if err != nil {
		t.Fatal(err)
	}
	return net
}

// TestRunResetsMeasurementStateOnStallError is the regression test for
// the measurement-state leak: an error return from inside the
// measurement loop used to leave net.measuring and net.countWindow set,
// so any later run on the same network tagged its warm-up packets and
// mis-counted its window.
func TestRunResetsMeasurementStateOnStallError(t *testing.T) {
	net := wedgedNetwork(t)
	_, err := Run(net, RunConfig{
		Load:          1,
		WarmupCycles:  0,
		MeasureCycles: 100000,
		DrainCycles:   100,
		StallLimit:    50,
	})
	if err == nil {
		t.Fatal("wedged network did not report a stall")
	}
	if !strings.Contains(err.Error(), "measurement") {
		t.Fatalf("stall not during measurement: %v", err)
	}
	if net.measuring {
		t.Error("net.measuring still set after failed run")
	}
	if net.countWindow {
		t.Error("net.countWindow still set after failed run")
	}
	if net.OnEject != nil {
		t.Error("net.OnEject still installed after failed run")
	}
}

// TestRunResetsObserverOnWarmupError covers the earlier exit path: a
// stall during warm-up must also clear the ejection observer.
func TestRunResetsObserverOnWarmupError(t *testing.T) {
	net := wedgedNetwork(t)
	_, err := Run(net, RunConfig{
		Load:          1,
		WarmupCycles:  100000,
		MeasureCycles: 100,
		DrainCycles:   100,
		StallLimit:    50,
	})
	if err == nil {
		t.Fatal("wedged network did not report a stall")
	}
	if !strings.Contains(err.Error(), "warm-up") {
		t.Fatalf("stall not during warm-up: %v", err)
	}
	if net.OnEject != nil || net.measuring || net.countWindow {
		t.Error("measurement state leaked after warm-up failure")
	}
}
