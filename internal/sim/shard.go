package sim

import (
	"fmt"

	"dragonfly/internal/metrics"
)

// The sharded engine partitions the network into contiguous ranges of
// groups (or of routers, when the topology has no group structure) and
// advances each range on its own goroutine. Every shard owns the full
// per-cycle pipeline — deliver, inject, admit, eject, transfer,
// allocate — for its routers, its terminals and its packet arena, so
// the hot loop stays allocation-free and lock-free within a shard.
//
// The only state crossing a shard boundary is what crosses a link whose
// endpoints live in different shards: flits leaving the sender's last
// router and credits returning upstream. Those are posted into
// per-(sender, receiver) mailboxes during the cycle and drained by the
// receiving shard at the start of the next cycle, before delivery — the
// same cycle the serial engine would pop them off the wire, because
// every channel latency is at least one cycle. Per link there is a
// single producer (flits: the shard of the link's source router;
// credits: the shard of its destination router) and a single consumer,
// and at most one flit enters a link per cycle, so queue order — and
// therefore every routing decision, credit clamp and ejection — is
// bit-identical to the serial engine for any shard count.
//
// Determinism of aggregation: collector events and OnEject callbacks
// raised inside the parallel phase are buffered per shard and replayed
// on the coordinator in shard order once the barrier closes. Shards
// cover ascending router ranges, so the replayed ejection order equals
// the serial router-major order exactly, which keeps the
// floating-point accumulation order (and hence golden hashes) stable.
// Within one cycle the *event stream* a collector sees is grouped by
// shard rather than interleaved per router; all counts, and the order
// of ejections, are identical.
//
// Fault timelines compose with sharding because epoch swaps land on
// the barrier: advanceEpochs runs serially on the coordinator between
// the mailbox drain and the parallel phase, when every mailbox is
// empty and no shard is running.

// shardLink is one entry of a shard's per-cycle link walk. A shard
// handles the flit side of the links it owns the destination router of
// and the credit side of the links it owns the source router of; the
// two flags let a single ascending-id walk process both sides in the
// serial engine's exact per-link order.
type shardLink struct {
	id   int32
	flit bool // this shard pops delivered flits (owns l.dst)
	cred bool // this shard pops returned credits (owns l.src)
}

// flitXfer carries one flit across a shard boundary: the link it rides
// plus the packet's full arena payload. The sender releases its arena
// slot when it posts the record; the receiver allocates a fresh slot in
// its own arena when it drains the mailbox.
type flitXfer struct {
	at       int64
	create   int64
	inject   int64
	id       uint64
	seed     uint64
	link     int32
	dst      int32
	src      int32
	interGrp int32
	nextPort int16
	hops     int16
	nextVC   int8
	vc       uint8
	flags    uint8
}

// credXfer carries one upstream credit across a shard boundary.
type credXfer struct {
	at   int64
	link int32
	vc   uint8
}

// Buffered-event kinds (evRec.kind). Non-hop kinds reuse metrics.Hop
// fields as scratch: VCOccupancy and CreditRTT store their value in
// CreditStall, Drop uses only Router, Eject carries the arena ref.
const (
	evFlit uint8 = iota
	evVCOcc
	evRTT
	evDrop
	evHop
	evEject
)

// evRec is one buffered instrumentation event, replayed at the
// end-of-cycle fold.
type evRec struct {
	kind uint8
	ref  int32 // evEject: arena slot, released after replay
	hop  metrics.Hop
}

// shard is the per-goroutine slice of the network: a contiguous router
// range with its own arena, scratch, counters and outboxes.
type shard struct {
	idx    int
	r0, r1 int     // owned routers: [r0, r1)
	g0, g1 int     // owned groups: [g0, g1), -1 when ungrouped
	terms  []int32 // owned terminals, ascending

	linkOrder []shardLink

	ar        arena
	hs        HopState
	ejectView Packet

	// Movement and measurement counters; Network-level totals sum these
	// plus the in-transit mailbox entries.
	outstanding    int
	inFlight       int
	lastMove       int64
	dropped        int64
	injectedWindow int64
	ejectedWindow  int64

	// Outboxes, indexed by receiving shard (the self slot stays nil):
	// appended during the parallel phase, drained — and reset — by the
	// receiver at the start of the next cycle.
	flitOut [][]flitXfer
	credOut [][]credXfer

	// Buffered collector/OnEject events, replayed in shard order.
	ev []evRec

	// err carries a phase failure to the coordinator.
	err error
}

// groupedTopology is the optional structural view that lets the
// partition align with group boundaries; every dragonfly view
// (pristine, Degraded, Switched) implements it by embedding. Group
// alignment matters for UGAL-G, whose congestion oracle reads sibling
// routers of the packet's source group.
type groupedTopology interface {
	Groups() int
	RouterGroup(router int) int
}

// Shards returns the number of engine shards (1 = serial engine).
func (n *Network) Shards() int { return len(n.shards) }

// SetShards repartitions the network across k engine shards. It must be
// called before the first Step; k is clamped to the group count (or the
// router count for ungrouped topologies), and 0 or 1 selects the serial
// engine. Results are bit-identical for every k.
func (n *Network) SetShards(k int) error {
	if k < 0 {
		return &ConfigError{Param: "Shards", Value: fmt.Sprint(k), Reason: "shard count must be >= 0 (0 runs the serial engine)"}
	}
	if n.now != 0 {
		return fmt.Errorf("sim: SetShards after the simulation started (cycle %d)", n.now)
	}
	n.buildShards(k)
	return nil
}

// buildShards computes the partition and the per-shard state for k
// shards (clamped; minimum 1).
func (n *Network) buildShards(k int) {
	nR := len(n.routers)
	if k < 1 {
		k = 1
	}
	if k > nR {
		k = nR
	}
	grouped, isGrouped := n.topo.(groupedTopology)
	var groupShard []int32
	if isGrouped {
		g := grouped.Groups()
		if k > g {
			k = g
		}
		groupShard = make([]int32, g)
		for s := 0; s < k; s++ {
			for gi := s * g / k; gi < (s+1)*g/k; gi++ {
				groupShard[gi] = int32(s)
			}
		}
	}
	n.routerShard = make([]int32, nR)
	if isGrouped {
		for r := 0; r < nR; r++ {
			n.routerShard[r] = groupShard[grouped.RouterGroup(r)]
		}
	} else {
		// Ungrouped fallback: contiguous router ranges.
		for s := 0; s < k; s++ {
			for r := s * nR / k; r < (s+1)*nR/k; r++ {
				n.routerShard[r] = int32(s)
			}
		}
	}
	n.shards = make([]shard, k)
	for s := range n.shards {
		sh := &n.shards[s]
		sh.idx = s
		sh.g0, sh.g1 = -1, -1
		if isGrouped {
			g := grouped.Groups()
			sh.g0, sh.g1 = s*g/k, (s+1)*g/k
		}
		sh.r0, sh.r1 = -1, -1
		sh.flitOut = make([][]flitXfer, k)
		sh.credOut = make([][]credXfer, k)
	}
	for r := 0; r < nR; r++ {
		sh := &n.shards[n.routerShard[r]]
		if sh.r0 < 0 {
			sh.r0 = r
		} else if r != sh.r1 {
			// The walk below assumes each shard's routers are contiguous
			// and ascending; grouped topologies number routers
			// group-major, so this cannot trip. Guard it anyway.
			panic("sim: shard router range not contiguous")
		}
		sh.r1 = r + 1
	}
	for t := 0; t < n.topo.Terminals(); t++ {
		sh := &n.shards[n.routerShard[n.topo.TerminalRouter(t)]]
		sh.terms = append(sh.terms, int32(t))
	}
	for li := range n.links {
		l := &n.links[li]
		fs := n.routerShard[l.dst]
		cs := n.routerShard[l.src]
		for _, s := range [2]int32{fs, cs} {
			sh := &n.shards[s]
			e := shardLink{id: int32(li)}
			if len(sh.linkOrder) > 0 && sh.linkOrder[len(sh.linkOrder)-1].id == int32(li) {
				e = sh.linkOrder[len(sh.linkOrder)-1]
				sh.linkOrder = sh.linkOrder[:len(sh.linkOrder)-1]
			}
			e.flit = e.flit || s == fs
			e.cred = e.cred || s == cs
			sh.linkOrder = append(sh.linkOrder, e)
			if fs == cs {
				break // one entry with both sides
			}
		}
	}
	// Prebuilt phase closures: Step spawns these verbatim every cycle,
	// so the steady state allocates nothing.
	n.drainFns = make([]func(), k)
	n.mainFns = make([]func(), k)
	for s := range n.shards {
		sh := &n.shards[s]
		n.drainFns[s] = func() {
			n.drainShard(sh)
			n.wg.Done()
		}
		n.mainFns[s] = func() {
			sh.err = n.mainShard(sh)
			n.wg.Done()
		}
	}
}

// shardForRouter returns the shard owning router r.
func (n *Network) shardForRouter(r int) *shard { return &n.shards[n.routerShard[r]] }

// runPhase runs one per-shard phase to completion on all shards.
func (n *Network) runPhase(fns []func()) {
	n.wg.Add(len(fns))
	for i := range fns {
		go fns[i]()
	}
	n.wg.Wait()
}

// stepSharded is Step's parallel body: drain the mailboxes filled last
// cycle, apply any epoch swap on the (empty-mailbox) barrier, run the
// main pipeline phase, then fold the buffered events in shard order.
func (n *Network) stepSharded() error {
	n.runPhase(n.drainFns)
	if n.epochs != nil {
		if err := n.advanceEpochs(); err != nil {
			return err
		}
	}
	n.inPhase = true
	n.runPhase(n.mainFns)
	n.inPhase = false
	for i := range n.shards {
		if err := n.shards[i].err; err != nil {
			return err
		}
	}
	for i := range n.shards {
		n.replayShard(&n.shards[i])
	}
	if n.mcCycle != nil {
		n.mcCycle.CycleEnd(n.now)
	}
	return nil
}

// drainShard moves last cycle's inbound mailbox traffic onto this
// shard's links: flits are re-homed into the shard's arena, credits
// pushed into the upstream delay lines. Every delivery time in a
// mailbox is at least the current cycle (channel latencies are >= 1),
// so draining before deliver reproduces the serial pop timing exactly.
func (n *Network) drainShard(sh *shard) {
	for si := range n.shards {
		src := &n.shards[si]
		in := src.flitOut[sh.idx]
		for i := range in {
			x := &in[i]
			ref := sh.ar.alloc()
			sh.ar.dst[ref] = x.dst
			sh.ar.seed[ref] = x.seed
			sh.ar.flags[ref] = x.flags
			sh.ar.interGrp[ref] = x.interGrp
			sh.ar.nextPort[ref] = x.nextPort
			sh.ar.nextVC[ref] = x.nextVC
			sh.ar.create[ref] = x.create
			sh.ar.id[ref] = x.id
			sh.ar.src[ref] = x.src
			sh.ar.inject[ref] = x.inject
			sh.ar.hops[ref] = x.hops
			sh.inFlight++
			if x.flags&pfMeasured != 0 {
				sh.outstanding++
			}
			n.links[x.link].flits.push(flitEntry{at: x.at, ref: ref, vc: x.vc})
		}
		src.flitOut[sh.idx] = in[:0]
		cin := src.credOut[sh.idx]
		for i := range cin {
			c := &cin[i]
			n.links[c.link].credits.push(c.vc, c.at)
		}
		src.credOut[sh.idx] = cin[:0]
	}
}

// mainShard runs the per-cycle pipeline over this shard's links,
// terminals and routers.
func (n *Network) mainShard(sh *shard) error {
	if err := n.deliver(sh); err != nil {
		return err
	}
	n.inject(sh)
	for ri := sh.r0; ri < sh.r1; ri++ {
		r := &n.routers[ri]
		if err := n.admitSources(sh, r); err != nil {
			return err
		}
		n.eject(sh, r)
		n.transfer(sh, r)
		n.allocate(sh, r)
	}
	return nil
}

// replayShard feeds one shard's buffered events to the collector (and
// OnEject) on the coordinator, then resets the buffer. Ejected packets
// buffered by reference are materialised here and their slots released.
func (n *Network) replayShard(sh *shard) {
	for i := range sh.ev {
		e := &sh.ev[i]
		switch e.kind {
		case evFlit:
			n.mc.ChannelFlit(e.hop.Link)
		case evVCOcc:
			n.mc.VCOccupancy(e.hop.Router, e.hop.Port, e.hop.VC, int(e.hop.CreditStall))
		case evRTT:
			n.mc.CreditRTT(e.hop.Router, e.hop.Port, e.hop.CreditStall)
		case evDrop:
			n.mc.Drop(e.hop.Router)
		case evHop:
			n.mcHop.PacketHop(e.hop)
		case evEject:
			ref := e.ref
			if n.mcEject != nil {
				f := sh.ar.flags[ref]
				n.mcEject.PacketEjected(metrics.Eject{
					Cycle:    n.now,
					Packet:   sh.ar.id[ref],
					Router:   e.hop.Router,
					Latency:  n.now - sh.ar.create[ref],
					Minimal:  f&pfMinimal != 0,
					Measured: f&pfMeasured != 0,
				})
			}
			if n.OnEject != nil {
				sh.ar.view(ref, &sh.ejectView)
				sh.ejectView.EjectTime = n.now
				n.OnEject(&sh.ejectView, n.now)
			}
			sh.ar.release(ref)
		}
	}
	sh.ev = sh.ev[:0]
}

// pushCredit returns a credit upstream on link l, routing it through
// the mailbox when the link's source router lives in another shard.
// Called from phase code (drop, departed) with the acting shard, and
// from serial coordinator contexts (epoch rescue) where the mailboxes
// are empty and the direct push is always correct.
func (n *Network) pushCredit(sh *shard, l *link, vc uint8, at int64) {
	if n.inPhase {
		if ss := n.routerShard[l.src]; int(ss) != sh.idx {
			sh.credOut[ss] = append(sh.credOut[ss], credXfer{link: int32(l.id), at: at, vc: vc})
			return
		}
	}
	l.credits.push(vc, at)
}

// emitDrop reports a routing-level drop, buffering it when raised
// inside the parallel phase.
func (n *Network) emitDrop(sh *shard, router int) {
	if n.mc == nil {
		return
	}
	if n.inPhase {
		sh.ev = append(sh.ev, evRec{kind: evDrop, hop: metrics.Hop{Router: router}})
		return
	}
	n.mc.Drop(router)
}

// Totals: Network-level counters are the sum of the per-shard counters
// plus the packets sitting in mailboxes between the allocate that
// posted them and the drain that re-homes them.

func (n *Network) totalInFlight() int {
	t := 0
	for i := range n.shards {
		sh := &n.shards[i]
		t += sh.inFlight
		for _, out := range sh.flitOut {
			t += len(out)
		}
	}
	return t
}

func (n *Network) totalOutstanding() int {
	t := 0
	for i := range n.shards {
		sh := &n.shards[i]
		t += sh.outstanding
		for _, out := range sh.flitOut {
			for j := range out {
				if out[j].flags&pfMeasured != 0 {
					t++
				}
			}
		}
	}
	return t
}

func (n *Network) totalDropped() int64 {
	var t int64
	for i := range n.shards {
		t += n.shards[i].dropped
	}
	return t
}

func (n *Network) totalEjectedWindow() int64 {
	var t int64
	for i := range n.shards {
		t += n.shards[i].ejectedWindow
	}
	return t
}

func (n *Network) totalInjectedWindow() int64 {
	var t int64
	for i := range n.shards {
		t += n.shards[i].injectedWindow
	}
	return t
}

func (n *Network) maxLastMove() int64 {
	var m int64
	for i := range n.shards {
		if lm := n.shards[i].lastMove; lm > m {
			m = lm
		}
	}
	return m
}

func (n *Network) resetWindowCounts() {
	for i := range n.shards {
		n.shards[i].injectedWindow = 0
		n.shards[i].ejectedWindow = 0
	}
}

func (n *Network) touchLastMove() {
	for i := range n.shards {
		n.shards[i].lastMove = n.now
	}
}
