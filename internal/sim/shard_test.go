package sim_test

import (
	"testing"

	"dragonfly/internal/sim"
	"dragonfly/internal/traffic"
)

// TestSetShardsValidation covers the shard-count API contract: negative
// counts are rejected, oversized counts clamp to the group count, and
// re-partitioning a network that has already stepped is refused (the
// partition must be fixed before any state exists to split).
func TestSetShardsValidation(t *testing.T) {
	d := testDragonfly(t) // 9 groups, 36 routers
	net := newNet(t, d, testConfig(), buildAlg(t, d, "MIN"), traffic.NewUniformRandom(d.Nodes()))

	if err := net.SetShards(-1); err == nil {
		t.Error("SetShards(-1) accepted")
	}
	if got := net.Shards(); got != 1 {
		t.Fatalf("fresh network has %d shards, want 1", got)
	}
	if err := net.SetShards(1000); err != nil {
		t.Fatalf("SetShards(1000): %v", err)
	}
	if got := net.Shards(); got != d.G {
		t.Errorf("SetShards(1000) gave %d shards, want clamp to %d groups", got, d.G)
	}
	if err := net.SetShards(0); err != nil {
		t.Fatalf("SetShards(0): %v", err)
	}
	if got := net.Shards(); got != 1 {
		t.Errorf("SetShards(0) gave %d shards, want the serial engine", got)
	}

	net.SetLoad(0.2)
	if err := net.Step(); err != nil {
		t.Fatalf("Step: %v", err)
	}
	if err := net.SetShards(4); err == nil {
		t.Error("SetShards accepted after the simulation started")
	}
}

// TestShardedFlowInvariants steps a sharded network and checks the
// per-(link, VC) credit conservation law between cycles: packets
// sitting in the inter-shard mailboxes are in transit and must be
// counted against the credits their departure consumed.
func TestShardedFlowInvariants(t *testing.T) {
	d := testDragonfly(t)
	net := newNet(t, d, testConfig(), buildAlg(t, d, "UGAL-L_VCH"), traffic.NewUniformRandom(d.Nodes()))
	if err := net.SetShards(3); err != nil {
		t.Fatalf("SetShards: %v", err)
	}
	net.SetLoad(0.3)
	for i := 0; i < 300; i++ {
		if err := net.Step(); err != nil {
			t.Fatalf("Step %d: %v", i, err)
		}
		if i%50 == 49 {
			if err := net.CheckFlowInvariants(); err != nil {
				t.Fatalf("cycle %d: %v", i+1, err)
			}
		}
	}
	if net.InFlight() == 0 {
		t.Error("nothing in flight at load 0.3 after 300 cycles")
	}
}

// TestShardedRunMatchesSerial is the sim-level determinism check: the
// same run through sim.Run on fresh networks with 1 and 3 shards must
// produce identical measurements field by field (the core-level golden
// tests pin the same property through System.Run).
func TestShardedRunMatchesSerial(t *testing.T) {
	run := func(shards int) sim.Result {
		d := testDragonfly(t)
		net := newNet(t, d, testConfig(), buildAlg(t, d, "UGAL-L_VCH"), traffic.NewUniformRandom(d.Nodes()))
		if err := net.SetShards(shards); err != nil {
			t.Fatalf("SetShards(%d): %v", shards, err)
		}
		res, err := sim.Run(net, sim.RunConfig{
			Load: 0.25, WarmupCycles: 400, MeasureCycles: 400, DrainCycles: 20000,
		})
		if err != nil {
			t.Fatalf("shards=%d: Run: %v", shards, err)
		}
		return res
	}
	serial, sharded := run(1), run(3)
	if serial.Latency.Count() != sharded.Latency.Count() ||
		serial.Latency.Mean() != sharded.Latency.Mean() ||
		serial.Accepted != sharded.Accepted ||
		serial.MinimalFraction != sharded.MinimalFraction ||
		serial.Cycles != sharded.Cycles {
		t.Errorf("serial and 3-shard runs diverge:\n serial  count=%d mean=%v acc=%v minfrac=%v cycles=%d\n sharded count=%d mean=%v acc=%v minfrac=%v cycles=%d",
			serial.Latency.Count(), serial.Latency.Mean(), serial.Accepted, serial.MinimalFraction, serial.Cycles,
			sharded.Latency.Count(), sharded.Latency.Mean(), sharded.Accepted, sharded.MinimalFraction, sharded.Cycles)
	}
}
