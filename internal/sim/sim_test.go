package sim_test

import (
	"errors"
	"math"
	"testing"

	"dragonfly/internal/metrics"
	"dragonfly/internal/routing"
	"dragonfly/internal/sim"
	"dragonfly/internal/topology"
	"dragonfly/internal/traffic"
)

func testDragonfly(t *testing.T) *topology.Dragonfly {
	t.Helper()
	d, err := topology.NewDragonfly(2, 4, 2, 0) // N=72, the paper's Figure 5 example
	if err != nil {
		t.Fatalf("NewDragonfly: %v", err)
	}
	return d
}

func testConfig() sim.Config {
	cfg := sim.DefaultConfig()
	cfg.VCs = routing.VCs
	return cfg
}

func newNet(t *testing.T, d *topology.Dragonfly, cfg sim.Config, rt sim.Routing, tr sim.Traffic) *sim.Network {
	t.Helper()
	net, err := sim.New(d, cfg, rt, tr)
	if err != nil {
		t.Fatalf("sim.New: %v", err)
	}
	return net
}

func TestConfigValidation(t *testing.T) {
	bad := []sim.Config{
		{BufDepth: 0, VCs: 3, LocalLatency: 1, GlobalLatency: 1},
		{BufDepth: 16, VCs: 0, LocalLatency: 1, GlobalLatency: 1},
		{BufDepth: 16, VCs: 3, LocalLatency: 0, GlobalLatency: 1},
		{BufDepth: 16, VCs: 3, LocalLatency: 1, GlobalLatency: 0},
		{BufDepth: 16, OutDepth: -1, VCs: 3, LocalLatency: 1, GlobalLatency: 1},
	}
	for i, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("case %d: invalid config accepted: %+v", i, cfg)
		}
	}
	if err := sim.DefaultConfig().Validate(); err != nil {
		t.Errorf("default config rejected: %v", err)
	}
}

func TestRunDeliversEverything(t *testing.T) {
	d := testDragonfly(t)
	for _, algName := range []string{"MIN", "VAL", "UGAL-L", "UGAL-G", "UGAL-L_VC", "UGAL-L_VCH", "UGAL-L_CR"} {
		alg := buildAlg(t, d, algName)
		cfg := testConfig()
		cfg.DelayCredits = algName == "UGAL-L_CR"
		net := newNet(t, d, cfg, alg, traffic.NewUniformRandom(d.Nodes()))
		res, err := sim.Run(net, sim.RunConfig{
			Load: 0.2, WarmupCycles: 500, MeasureCycles: 500, DrainCycles: 20000, StallLimit: 5000,
		})
		if err != nil {
			t.Fatalf("%s: Run: %v", algName, err)
		}
		if res.DrainTimeout {
			t.Errorf("%s: drain timed out at low load", algName)
		}
		if res.Latency.Count() == 0 {
			t.Errorf("%s: no measured packets", algName)
		}
		if got := res.Accepted; got < 0.18 || got > 0.22 {
			t.Errorf("%s: accepted %v, want ~0.2", algName, got)
		}
		if res.Latency.Mean() < 2 || res.Latency.Mean() > 100 {
			t.Errorf("%s: mean latency %v out of sane range", algName, res.Latency.Mean())
		}
	}
}

func buildAlg(t *testing.T, d *topology.Dragonfly, name string) sim.Routing {
	t.Helper()
	switch name {
	case "MIN":
		return routing.NewMIN(d)
	case "VAL":
		return routing.NewVAL(d)
	case "UGAL-L":
		return routing.NewUGAL(d, routing.UGALLocal)
	case "UGAL-G":
		return routing.NewUGAL(d, routing.UGALGlobal)
	case "UGAL-L_VC":
		return routing.NewUGAL(d, routing.UGALLocalVC)
	case "UGAL-L_VCH":
		return routing.NewUGAL(d, routing.UGALLocalVCH)
	case "UGAL-L_CR":
		return routing.NewUGALCR(d)
	default:
		t.Fatalf("unknown algorithm %q", name)
		return nil
	}
}

func TestDeterminism(t *testing.T) {
	d := testDragonfly(t)
	run := func() sim.Result {
		net := newNet(t, d, testConfig(), routing.NewUGAL(d, routing.UGALLocalVCH), traffic.NewWorstCase(d))
		res, err := sim.Run(net, sim.RunConfig{Load: 0.25, WarmupCycles: 400, MeasureCycles: 400, DrainCycles: 20000})
		if err != nil {
			t.Fatalf("Run: %v", err)
		}
		return res
	}
	a, b := run(), run()
	if a.Latency.Mean() != b.Latency.Mean() || a.Latency.Count() != b.Latency.Count() {
		t.Errorf("identical seeds diverged: %v/%d vs %v/%d",
			a.Latency.Mean(), a.Latency.Count(), b.Latency.Mean(), b.Latency.Count())
	}
	if a.Accepted != b.Accepted {
		t.Errorf("accepted diverged: %v vs %v", a.Accepted, b.Accepted)
	}
}

func TestSeedChangesResults(t *testing.T) {
	d := testDragonfly(t)
	run := func(seed uint64) sim.Result {
		cfg := testConfig()
		cfg.Seed = seed
		net := newNet(t, d, cfg, routing.NewMIN(d), traffic.NewUniformRandom(d.Nodes()))
		res, err := sim.Run(net, sim.RunConfig{Load: 0.3, WarmupCycles: 400, MeasureCycles: 400, DrainCycles: 20000})
		if err != nil {
			t.Fatalf("Run: %v", err)
		}
		return res
	}
	if run(1).Latency.Count() == run(2).Latency.Count() && run(1).Latency.Mean() == run(2).Latency.Mean() {
		t.Error("different seeds produced identical results (suspicious)")
	}
}

func TestZeroLoadLatencyMatchesPathLength(t *testing.T) {
	// At near-zero load every packet should traverse its minimal path
	// uncontended: up to local+global+local, i.e. at most
	// 2*LocalLatency + GlobalLatency cycles.
	d := testDragonfly(t)
	cfg := testConfig()
	net := newNet(t, d, cfg, routing.NewMIN(d), traffic.NewUniformRandom(d.Nodes()))
	maxLat := int64(0)
	net.OnEject = func(p *sim.Packet, now int64) {
		if l := now - p.CreateTime; l > maxLat {
			maxLat = l
		}
	}
	net.SetLoad(0.005)
	for i := 0; i < 3000; i++ {
		net.Step()
	}
	want := int64(2*cfg.LocalLatency + cfg.GlobalLatency)
	if maxLat > want+2 { // tiny slack for rare same-cycle collisions
		t.Errorf("zero-load max latency %d, want <= %d", maxLat, want)
	}
	if maxLat == 0 {
		t.Error("no packets delivered")
	}
}

func TestMinimalHopBound(t *testing.T) {
	// Minimal routing must never exceed 3 router-to-router hops
	// (Section 4.1); Valiant must never exceed 5.
	d := testDragonfly(t)
	for _, tc := range []struct {
		alg  sim.Routing
		want int
	}{
		{routing.NewMIN(d), 3},
		{routing.NewVAL(d), 5},
	} {
		net := newNet(t, d, testConfig(), tc.alg, traffic.NewUniformRandom(d.Nodes()))
		worst := 0
		net.OnEject = func(p *sim.Packet, now int64) {
			if p.Hops() > worst {
				worst = p.Hops()
			}
		}
		net.SetLoad(0.3)
		for i := 0; i < 2000; i++ {
			net.Step()
		}
		if worst > tc.want {
			t.Errorf("%s: packet took %d hops, want <= %d", tc.alg.Name(), worst, tc.want)
		}
	}
}

func TestPacketConservation(t *testing.T) {
	// Stop injecting and drain: every packet must leave the network and
	// every credit must come home.
	d := testDragonfly(t)
	net := newNet(t, d, testConfig(), routing.NewUGAL(d, routing.UGALLocalVCH), traffic.NewWorstCase(d))
	injected := 0
	ejected := 0
	net.OnEject = func(p *sim.Packet, now int64) { ejected++ }
	net.SetLoad(0.4)
	for i := 0; i < 2000; i++ {
		net.Step()
	}
	injected = ejected + net.InFlight() + net.TotalSourceBacklog()
	_ = injected
	net.SetLoad(0)
	for i := 0; i < 60000 && net.InFlight() > 0; i++ {
		net.Step()
	}
	if net.InFlight() != 0 {
		t.Fatalf("packets stuck after drain: %d", net.InFlight())
	}
	// A few extra cycles to land the last credits.
	for i := 0; i < 64; i++ {
		net.Step()
	}
	for r := 0; r < d.Routers(); r++ {
		rt := net.RouterAt(r)
		for p := 0; p < d.Radix(r); p++ {
			if rt.IsTerminalPort(p) {
				continue
			}
			for vc := 0; vc < 3; vc++ {
				if c := rt.Credits(p, vc); c != 16 {
					t.Fatalf("credit leak: router %d port %d vc %d has %d/16 credits", r, p, vc, c)
				}
			}
			if q := rt.PendingOut(p); q != 0 {
				t.Fatalf("router %d port %d still has %d pending flits", r, p, q)
			}
		}
	}
}

func TestDeadlockFreedomUnderStress(t *testing.T) {
	// Drive every algorithm at overload on the adversarial pattern; the
	// stall detector inside Run would error on a routing deadlock.
	if testing.Short() {
		t.Skip("stress test")
	}
	d := testDragonfly(t)
	for _, algName := range []string{"MIN", "VAL", "UGAL-L", "UGAL-G", "UGAL-L_VC", "UGAL-L_VCH", "UGAL-L_CR"} {
		alg := buildAlg(t, d, algName)
		cfg := testConfig()
		cfg.BufDepth = 4 // shallow buffers make deadlock most likely
		cfg.DelayCredits = algName == "UGAL-L_CR"
		net := newNet(t, d, cfg, alg, traffic.NewWorstCase(d))
		net.SetLoad(1.0)
		last := 0
		for i := 0; i < 4000; i++ {
			net.Step()
			if i%500 == 499 {
				cur := net.InFlight()
				_ = cur
				_ = last
			}
		}
		// Forward progress: ejections must keep happening at full load.
		count := 0
		net.OnEject = func(p *sim.Packet, now int64) { count++ }
		for i := 0; i < 500; i++ {
			net.Step()
		}
		if count == 0 {
			t.Errorf("%s: no packets delivered during 500 cycles at overload (deadlock?)", algName)
		}
	}
}

func TestWorstCaseMinimalThroughputBound(t *testing.T) {
	// Figure 8(b): under the WC pattern, minimal routing is limited to
	// 1/(a*h) of capacity because each group funnels everything through
	// one global channel.
	d := testDragonfly(t) // a*h = 8
	net := newNet(t, d, testConfig(), routing.NewMIN(d), traffic.NewWorstCase(d))
	res, err := sim.Run(net, sim.RunConfig{Load: 0.5, WarmupCycles: 1500, MeasureCycles: 1000, DrainCycles: 2000})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	bound := 1.0 / float64(d.A*d.H)
	if res.Accepted > bound*1.15 {
		t.Errorf("MIN/WC accepted %v, theoretical bound %v", res.Accepted, bound)
	}
	if !res.Saturated {
		t.Error("MIN/WC at load 0.5 should report saturation")
	}
}

func TestValiantHalvesCapacity(t *testing.T) {
	// VAL doubles global-channel load, so UR traffic saturates near 0.5.
	d := testDragonfly(t)
	net := newNet(t, d, testConfig(), routing.NewVAL(d), traffic.NewUniformRandom(d.Nodes()))
	res, err := sim.Run(net, sim.RunConfig{Load: 0.42, WarmupCycles: 1500, MeasureCycles: 1000, DrainCycles: 30000})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Saturated {
		t.Errorf("VAL/UR saturated at 0.42; should sustain just below 0.5 (accepted %v)", res.Accepted)
	}
	net2 := newNet(t, d, testConfig(), routing.NewVAL(d), traffic.NewUniformRandom(d.Nodes()))
	res2, err := sim.Run(net2, sim.RunConfig{Load: 0.65, WarmupCycles: 1500, MeasureCycles: 1000, DrainCycles: 3000})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !res2.Saturated {
		t.Errorf("VAL/UR at 0.65 should saturate (accepted %v)", res2.Accepted)
	}
}

func TestUGALAdaptsOnWorstCase(t *testing.T) {
	// UGAL variants must beat MIN's 1/(ah) bound on WC traffic by
	// routing non-minimally.
	d := testDragonfly(t)
	for _, algName := range []string{"UGAL-L", "UGAL-G", "UGAL-L_VC", "UGAL-L_VCH", "UGAL-L_CR"} {
		alg := buildAlg(t, d, algName)
		cfg := testConfig()
		cfg.DelayCredits = algName == "UGAL-L_CR"
		net := newNet(t, d, cfg, alg, traffic.NewWorstCase(d))
		res, err := sim.Run(net, sim.RunConfig{Load: 0.3, WarmupCycles: 1500, MeasureCycles: 1000, DrainCycles: 30000})
		if err != nil {
			t.Fatalf("%s: Run: %v", algName, err)
		}
		if res.Accepted < 0.25 {
			t.Errorf("%s/WC accepted %v at load 0.3, want ~0.3", algName, res.Accepted)
		}
		if res.MinimalFraction > 0.5 {
			t.Errorf("%s/WC routed %.0f%% minimally; adversarial traffic needs mostly non-minimal",
				algName, res.MinimalFraction*100)
		}
	}
}

func TestUGALPrefersMinimalOnUniform(t *testing.T) {
	d := testDragonfly(t)
	for _, algName := range []string{"UGAL-L", "UGAL-G", "UGAL-L_VCH"} {
		alg := buildAlg(t, d, algName)
		net := newNet(t, d, testConfig(), alg, traffic.NewUniformRandom(d.Nodes()))
		res, err := sim.Run(net, sim.RunConfig{Load: 0.3, WarmupCycles: 1000, MeasureCycles: 1000, DrainCycles: 30000})
		if err != nil {
			t.Fatalf("%s: Run: %v", algName, err)
		}
		if res.MinimalFraction < 0.5 {
			t.Errorf("%s/UR routed only %.0f%% minimally at light load", algName, res.MinimalFraction*100)
		}
	}
}

func TestChannelUtilizationCounting(t *testing.T) {
	d := testDragonfly(t)
	net := newNet(t, d, testConfig(), routing.NewMIN(d), traffic.NewUniformRandom(d.Nodes()))
	util := metrics.NewChannelUtil(net.NumLinks())
	net.AttachMetrics(util)
	net.SetLoad(0.3)
	for i := 0; i < 1000; i++ {
		net.Step()
	}
	total := int64(0)
	seen := false
	for r := 0; r < d.Routers(); r++ {
		for p := 0; p < d.Radix(r); p++ {
			l := net.LinkID(r, p)
			if l < 0 {
				continue
			}
			b := util.Busy(l)
			total += b
			seen = true
			if b > 1000 {
				t.Fatalf("channel (%d,%d) busy %d cycles out of 1000", r, p, b)
			}
		}
	}
	if !seen || total == 0 {
		t.Error("no utilization recorded")
	}
	util.Reset()
	for l := 0; l < util.Links(); l++ {
		if util.Busy(l) > 0 {
			t.Fatal("reset did not clear counters")
		}
	}
	// Detach: later steps must not count.
	net.AttachMetrics(nil)
	for i := 0; i < 100; i++ {
		net.Step()
	}
	for l := 0; l < util.Links(); l++ {
		if util.Busy(l) > 0 {
			t.Fatal("detached collector still counting")
		}
	}
}

func TestRunConfigValidation(t *testing.T) {
	d := testDragonfly(t)
	net := newNet(t, d, testConfig(), routing.NewMIN(d), traffic.NewUniformRandom(d.Nodes()))
	cases := []struct {
		name  string
		rc    sim.RunConfig
		param string
	}{
		{"negative load", sim.RunConfig{Load: -0.1, MeasureCycles: 10}, "Load"},
		{"load > 1", sim.RunConfig{Load: 1.5, MeasureCycles: 10}, "Load"},
		{"NaN load", sim.RunConfig{Load: math.NaN(), MeasureCycles: 10}, "Load"},
		{"+Inf load", sim.RunConfig{Load: math.Inf(1), MeasureCycles: 10}, "Load"},
		{"-Inf load", sim.RunConfig{Load: math.Inf(-1), MeasureCycles: 10}, "Load"},
		{"negative warmup", sim.RunConfig{Load: 0.1, WarmupCycles: -1, MeasureCycles: 10}, "WarmupCycles"},
		{"zero measure", sim.RunConfig{Load: 0.1, MeasureCycles: 0}, "MeasureCycles"},
		{"negative measure", sim.RunConfig{Load: 0.1, MeasureCycles: -5}, "MeasureCycles"},
		{"negative drain", sim.RunConfig{Load: 0.1, MeasureCycles: 10, DrainCycles: -1}, "DrainCycles"},
		{"negative hist width", sim.RunConfig{Load: 0.1, MeasureCycles: 10, HistWidth: -2}, "HistWidth"},
		{"negative stall limit", sim.RunConfig{Load: 0.1, MeasureCycles: 10, StallLimit: -1}, "StallLimit"},
	}
	for _, c := range cases {
		_, err := sim.Run(net, c.rc)
		if err == nil {
			t.Errorf("%s: accepted", c.name)
			continue
		}
		var ce *sim.ConfigError
		if !errors.As(err, &ce) {
			t.Errorf("%s: error %v is not a *ConfigError", c.name, err)
			continue
		}
		if ce.Param != c.param {
			t.Errorf("%s: rejected parameter %q, want %q (%v)", c.name, ce.Param, c.param, err)
		}
	}
	// Zero warm-up is valid: cold-start stress tests rely on it.
	if err := (sim.RunConfig{Load: 0.1, MeasureCycles: 10}).Validate(); err != nil {
		t.Errorf("zero warm-up rejected: %v", err)
	}
}

func TestConfigErrorTyped(t *testing.T) {
	err := sim.Config{BufDepth: 0, VCs: 3, LocalLatency: 1, GlobalLatency: 1}.Validate()
	var ce *sim.ConfigError
	if !errors.As(err, &ce) {
		t.Fatalf("Config.Validate error %v is not a *ConfigError", err)
	}
	if ce.Param != "BufDepth" {
		t.Errorf("rejected parameter %q, want BufDepth", ce.Param)
	}
	if ce.Error() == "" || ce.Value != "0" {
		t.Errorf("unexpected rendering: %q (value %q)", ce.Error(), ce.Value)
	}
}

func TestHistogramCollection(t *testing.T) {
	d := testDragonfly(t)
	net := newNet(t, d, testConfig(), routing.NewMIN(d), traffic.NewUniformRandom(d.Nodes()))
	res, err := sim.Run(net, sim.RunConfig{
		Load: 0.2, WarmupCycles: 300, MeasureCycles: 500, DrainCycles: 20000,
		Histogram: true, HistWidth: 2,
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Hist == nil || res.Hist.Total() == 0 {
		t.Fatal("histogram empty")
	}
	if res.Hist.Total() != res.Latency.Count() {
		t.Errorf("histogram total %d != latency count %d", res.Hist.Total(), res.Latency.Count())
	}
	if res.MinHist.Total()+res.NonminHist.Total() != res.Hist.Total() {
		t.Error("min + nonmin histograms do not partition the total")
	}
}

func TestCreditRTTSensing(t *testing.T) {
	// Under WC congestion with the delayed-credit mechanism on, the
	// router owning the overloaded minimal global channel must develop a
	// large congestion estimate for it while its other outputs stay low.
	d := testDragonfly(t)
	cfg := testConfig()
	cfg.DelayCredits = true
	net := newNet(t, d, cfg, routing.NewMIN(d), traffic.NewWorstCase(d))
	net.SetLoad(0.3)
	for i := 0; i < 2000; i++ {
		net.Step()
	}
	// Group 1's minimal channel to group 2 is slot 0, owned by the first
	// router of the group.
	owner := net.RouterAt(d.GroupRouter(1, 0))
	hot := owner.TD(d.GlobalPort(0))
	if hot <= 0 {
		t.Errorf("congested global channel has TD=%d, want > 0", hot)
	}
}

func TestTwoGroupDragonflySimulates(t *testing.T) {
	// Degenerate small configuration: 2 groups, single global channel
	// pair; everything must still deliver.
	d, err := topology.NewDragonfly(1, 2, 1, 0)
	if err != nil {
		t.Fatalf("NewDragonfly: %v", err)
	}
	net := newNet(t, d, testConfig(), routing.NewMIN(d), traffic.NewUniformRandom(d.Nodes()))
	res, err := sim.Run(net, sim.RunConfig{Load: 0.2, WarmupCycles: 200, MeasureCycles: 400, DrainCycles: 10000})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Latency.Count() == 0 {
		t.Error("no packets delivered in 2-group dragonfly")
	}
}

func TestMixIsDeterministic(t *testing.T) {
	if sim.Mix(42) != sim.Mix(42) {
		t.Error("Mix not deterministic")
	}
	if sim.Mix(1) == sim.Mix(2) {
		t.Error("Mix(1) == Mix(2)")
	}
}

// TestMetricsRunThenPlainRunBitIdentical proves the zero-cost
// instrumentation never changes results: on the same network, a
// Utilization run followed by a plain run produces exactly the numbers
// the plain-plain sequence does — Run's cleanup must fully detach the
// collector it attached.
func TestMetricsRunThenPlainRunBitIdentical(t *testing.T) {
	second := func(firstUtil bool) sim.Result {
		d := testDragonfly(t)
		net := newNet(t, d, testConfig(), routing.NewUGAL(d, routing.UGALLocalVCH), traffic.NewUniformRandom(d.Nodes()))
		rc := sim.RunConfig{Load: 0.2, WarmupCycles: 300, MeasureCycles: 300, DrainCycles: 10000}
		rc.Utilization = firstUtil
		first, err := sim.Run(net, rc)
		if err != nil {
			t.Fatalf("first run: %v", err)
		}
		if firstUtil && first.ChannelUtil == nil {
			t.Fatal("Utilization run did not collect channel utilization")
		}
		if net.Metrics() != nil {
			t.Fatal("collector still attached after Run returned")
		}
		rc.Utilization = false
		res, err := sim.Run(net, rc)
		if err != nil {
			t.Fatalf("second run: %v", err)
		}
		return res
	}
	withUtil := second(true)
	plain := second(false)
	if withUtil.Accepted != plain.Accepted ||
		withUtil.Latency.Mean() != plain.Latency.Mean() ||
		withUtil.Latency.Count() != plain.Latency.Count() ||
		withUtil.Cycles != plain.Cycles {
		t.Errorf("plain run after a metrics run diverged: accepted %v vs %v, latency %v/%d vs %v/%d, cycles %d vs %d",
			withUtil.Accepted, plain.Accepted,
			withUtil.Latency.Mean(), withUtil.Latency.Count(),
			plain.Latency.Mean(), plain.Latency.Count(),
			withUtil.Cycles, plain.Cycles)
	}
}
