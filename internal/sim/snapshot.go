package sim

import (
	"encoding/binary"
	"fmt"
	"hash"
	"hash/crc32"
	"hash/fnv"
	"math"

	"dragonfly/internal/stats"
)

// Snapshot/Restore: the dfly-snap/1 versioned binary encoding of the
// complete engine state, captured only between Steps (the cycle-batch
// checkpoints every other engine facility — cancellation, epoch swaps —
// already uses).
//
// The encoding is canonical with respect to sharding: packets are
// serialised in place, by walking the router queues and link delay
// lines in ascending id order — the serial engine's order — carrying
// their full arena payload, never arena refs or free-list positions.
// Restore allocates fresh slots in whichever shard owns each location
// under the restoring network's partition, so a snapshot taken at
// shards=N restores correctly at any shard count, and arena layout
// (which is behaviourally irrelevant) is free to differ.
//
// Before encoding, any in-transit mailbox traffic of the sharded engine
// is drained serially — exactly the drain the next Step would perform
// first, so the canonical form is also a bit-identical continuation
// point. Collector state (AttachMetrics, hop tracers) is NOT part of a
// snapshot: observers re-attach after Restore.
//
// Layout (all integers little-endian, fixed width; floats as IEEE-754
// bits):
//
//	magic "dfly-snap/1\n"                       12 bytes
//	fingerprint                                 u64
//	flags                                       u8 (bit 0: run section)
//	network section                             (see appendNetwork)
//	run section, when flagged                   (see runState.append)
//	CRC-32C over everything above               u32
//
// The fingerprint is an FNV-64a hash of everything a snapshot is only
// meaningful relative to: the Config (minus Shards), the full link
// wiring, the terminal attachment, the routing and traffic names, and
// the fault liveness (the static plan's, or every epoch of the
// timeline). Restore refuses a snapshot whose fingerprint differs from
// the target network's — restoring onto the wrong machine is a typed
// error, not a corrupt simulation.

// snapMagic opens every dfly-snap/1 snapshot. A different version
// string is a decode error by construction: there is no cross-version
// compatibility, matching the dfly-job hash policy (see
// internal/serve/hash.go).
const snapMagic = "dfly-snap/1\n"

// snapFlagRun marks a snapshot carrying RunCtx measurement state (a
// checkpoint) in addition to engine state.
const snapFlagRun = 1 << 0

// packetWire is the encoded size of one packet payload.
const packetWire = 8 + 8 + 4 + 4 + 1 + 4 + 2 + 1 + 2 + 1 + 8 + 8 + 8 + 2

var snapCRC = crc32.MakeTable(crc32.Castagnoli)

// Snapshot captures the complete engine state between Steps. The
// returned bytes restore on a freshly built Network with the same
// topology, configuration, routing, traffic and timeline — at any
// shard count. Snapshotting a sharded network first drains its
// mailboxes (the drain the next Step would perform anyway), so the
// continuation is bit-identical whether or not a snapshot was taken.
func (n *Network) Snapshot() ([]byte, error) {
	return n.snapshot(nil)
}

func (n *Network) snapshot(rs *runState) ([]byte, error) {
	for i := range n.shards {
		n.drainShard(&n.shards[i])
	}
	b := make([]byte, 0, n.snapshotSizeHint())
	b = append(b, snapMagic...)
	b = binary.LittleEndian.AppendUint64(b, n.fingerprint())
	var flags byte
	if rs != nil {
		flags |= snapFlagRun
	}
	b = append(b, flags)
	b = n.appendNetwork(b)
	if rs != nil {
		b = rs.append(b)
	}
	b = binary.LittleEndian.AppendUint32(b, crc32.Checksum(b, snapCRC))
	return b, nil
}

// snapshotSizeHint estimates the encoded size so the encoder allocates
// once in the common case.
func (n *Network) snapshotSizeHint() int {
	perRouter := 0
	if len(n.routers) > 0 {
		r := &n.routers[0]
		perRouter = r.radix*(4+8+8+12) + r.radix*r.vcs*(8+3*4)
	}
	return 256 + (17+8*n.source.StateWords())*len(n.termRNG) + perRouter*len(n.routers) +
		24*len(n.links) + (packetWire+4)*n.totalInFlight()
}

// Restore rebuilds the engine state from a dfly-snap/1 snapshot. The
// receiver must be freshly built (no Step taken) over the same
// topology, configuration, routing, traffic and — when the snapshot
// was taken under one — the same timeline (SetTimeline first). The
// shard count is free to differ from the snapshotting network's.
//
// Failures are *SnapshotError (wrapping ErrBadSnapshot): truncation,
// corruption, a version or fingerprint mismatch. On error the network
// may hold partially restored state and must be discarded.
func (n *Network) Restore(snap []byte) error {
	_, err := n.restore(snap, false)
	return err
}

// restore is Restore plus the run section: with wantRun, the snapshot
// must carry RunCtx measurement state (ResumeCtx requires it).
func (n *Network) restore(snap []byte, wantRun bool) (*runState, error) {
	if n.now != 0 {
		return nil, &SnapshotError{Reason: fmt.Sprintf("restore requires a fresh network (this one is at cycle %d)", n.now)}
	}
	if len(snap) < len(snapMagic)+8+1+4 {
		return nil, &SnapshotError{Reason: "shorter than the snapshot header"}
	}
	if string(snap[:len(snapMagic)]) != snapMagic {
		head := snap[:len(snapMagic)]
		return nil, &SnapshotError{Reason: fmt.Sprintf("bad magic %q (want %q; unknown or incompatible snapshot version)", head, snapMagic)}
	}
	body := snap[:len(snap)-4]
	if got, want := crc32.Checksum(body, snapCRC), binary.LittleEndian.Uint32(snap[len(snap)-4:]); got != want {
		return nil, &SnapshotError{Reason: fmt.Sprintf("CRC mismatch (computed %08x, stored %08x)", got, want)}
	}
	d := &snapDec{b: body[len(snapMagic):]}
	if fp, want := d.u64(), n.fingerprint(); d.err == nil && fp != want {
		return nil, &SnapshotError{Reason: fmt.Sprintf("fingerprint %016x does not match this network (%016x): different topology, config, routing, traffic or timeline", fp, want)}
	}
	flags := d.u8()
	if d.err == nil && flags&^snapFlagRun != 0 {
		d.fail("unknown flag bits %#x", flags)
	}
	if d.err != nil {
		return nil, d.err
	}
	if err := n.decodeNetwork(d); err != nil {
		return nil, err
	}
	var rs *runState
	if flags&snapFlagRun != 0 {
		rs = &runState{}
		if err := d.run(rs); err != nil {
			return nil, err
		}
	} else if wantRun {
		return nil, &SnapshotError{Reason: "snapshot carries no run section (captured by Snapshot, not a RunCtx checkpoint)"}
	}
	if d.err == nil && len(d.b) != 0 {
		d.fail("%d trailing bytes after the last section", len(d.b))
	}
	if d.err != nil {
		return nil, d.err
	}
	if arenaDebug {
		if err := n.CheckFlowInvariants(); err != nil {
			return nil, err
		}
	}
	return rs, nil
}

// fingerprint hashes everything a snapshot is only meaningful relative
// to. Config.Shards is deliberately excluded: snapshots are
// shard-count independent.
func (n *Network) fingerprint() uint64 {
	h := fnv.New64a()
	var scratch [6 * 8]byte
	put := func(vals ...uint64) {
		b := scratch[:0]
		for _, v := range vals {
			b = binary.LittleEndian.AppendUint64(b, v)
		}
		h.Write(b)
	}
	b1 := func(v bool) uint64 {
		if v {
			return 1
		}
		return 0
	}
	put(uint64(n.cfg.BufDepth), uint64(n.cfg.OutDepth), uint64(n.cfg.VCs),
		uint64(n.cfg.LocalLatency), uint64(n.cfg.GlobalLatency), b1(n.cfg.DelayCredits))
	put(uint64(n.cfg.DelaySlack), n.cfg.Seed)
	put(uint64(len(n.routers)), uint64(n.topo.Terminals()), uint64(len(n.links)))
	h.Write([]byte(n.routing.Name()))
	h.Write([]byte{0})
	h.Write([]byte(n.traffic.Name()))
	h.Write([]byte{0})
	// The source fingerprint (family + canonical parameters) guards the
	// per-terminal source-state section: a resume under a differently-
	// configured arrival process is refused, not silently diverged.
	h.Write([]byte(n.source.Fingerprint()))
	h.Write([]byte{0})
	for i := range n.links {
		l := &n.links[i]
		put(uint64(l.src), uint64(l.srcPort), uint64(l.dst), uint64(l.dstPort), uint64(l.latency), b1(l.global))
	}
	for t := 0; t < n.topo.Terminals(); t++ {
		put(uint64(n.topo.TerminalRouter(t)), uint64(n.topo.TerminalPort(t)))
	}
	// Fault liveness must hash identically on the snapshotting network
	// (mid-run, mutable link state) and on a fresh restore target, so it
	// is read from the topology views, never from link.dead: a timeline
	// contributes every epoch's view, a static plan its standing one.
	switch {
	case n.epochs != nil:
		put(uint64(len(n.epochs)))
		for i := range n.epochs {
			put(uint64(n.epochs[i].Start))
			n.hashLiveness(h, n.epochs[i].View)
		}
	default:
		if deg, ok := n.topo.(DegradedTopology); ok {
			put(1)
			n.hashLiveness(h, deg)
		} else {
			put(0)
		}
	}
	return h.Sum64()
}

// hashLiveness folds one fault view's link and terminal liveness into h.
func (n *Network) hashLiveness(h hash.Hash64, v interface{ Alive(router, port int) bool }) {
	var chunk [512]byte
	k := 0
	emit := func(a bool) {
		if a {
			chunk[k] = 1
		} else {
			chunk[k] = 0
		}
		k++
		if k == len(chunk) {
			h.Write(chunk[:])
			k = 0
		}
	}
	for i := range n.links {
		emit(v.Alive(n.links[i].src, n.links[i].srcPort))
	}
	for t := 0; t < n.topo.Terminals(); t++ {
		emit(v.Alive(n.topo.TerminalRouter(t), n.topo.TerminalPort(t)))
	}
	h.Write(chunk[:k])
}

// appendNetwork encodes the engine state (mailboxes already drained).
func (n *Network) appendNetwork(b []byte) []byte {
	b = binary.LittleEndian.AppendUint64(b, uint64(n.now))
	b = binary.LittleEndian.AppendUint64(b, math.Float64bits(n.load))
	b = appendBool(b, n.measuring)
	b = appendBool(b, n.countWindow)
	b = binary.LittleEndian.AppendUint64(b, uint64(n.killedInFlight))
	b = binary.LittleEndian.AppendUint64(b, uint64(n.rerouted))
	b = binary.LittleEndian.AppendUint64(b, uint64(n.maxLastMove()))
	b = binary.LittleEndian.AppendUint64(b, uint64(n.totalDropped()))
	b = binary.LittleEndian.AppendUint64(b, uint64(n.totalInjectedWindow()))
	b = binary.LittleEndian.AppendUint64(b, uint64(n.totalEjectedWindow()))
	b = binary.LittleEndian.AppendUint32(b, uint32(n.epochIdx))

	b = binary.LittleEndian.AppendUint32(b, uint32(len(n.termRNG)))
	for t := range n.termRNG {
		b = binary.LittleEndian.AppendUint64(b, n.termRNG[t].state)
		b = binary.LittleEndian.AppendUint64(b, n.termSeq[t])
		b = appendBool(b, n.termAlive[t])
	}
	b = binary.LittleEndian.AppendUint32(b, uint32(n.aliveTerms))

	// Arrival-process state: the per-terminal word count, then each
	// terminal's words. The source identity itself is covered by the
	// fingerprint, so a mismatched word count here means corruption.
	words := n.source.StateWords()
	b = binary.LittleEndian.AppendUint32(b, uint32(words))
	if words > 0 {
		var buf [maxSourceStateWords]uint64
		for t := range n.termRNG {
			n.source.SaveState(t, buf[:words])
			for _, w := range buf[:words] {
				b = binary.LittleEndian.AppendUint64(b, w)
			}
		}
	}

	b = binary.LittleEndian.AppendUint32(b, uint32(len(n.routers)))
	for ri := range n.routers {
		r := &n.routers[ri]
		ar := &n.shards[n.routerShard[ri]].ar
		b = appendBool(b, n.routerDead != nil && n.routerDead[ri])
		for p := 0; p < r.radix; p++ {
			b = binary.LittleEndian.AppendUint32(b, uint32(r.outRR[p]))
			b = binary.LittleEndian.AppendUint64(b, uint64(r.td[p]))
			b = binary.LittleEndian.AppendUint64(b, uint64(r.crossTd[p]))
			b = appendCreditQueue(b, &r.ctq[p])
		}
		for i := 0; i < r.radix*r.vcs; i++ {
			b = binary.LittleEndian.AppendUint32(b, uint32(r.inOcc[i]))
			b = binary.LittleEndian.AppendUint32(b, uint32(r.credits[i]))
		}
		for p := 0; p < r.radix; p++ {
			if r.isTerm[p] {
				b = appendPktQueue(b, ar, &r.srcQ[p])
			}
		}
		for i := 0; i < r.radix*r.vcs; i++ {
			b = appendPktQueue(b, ar, &r.waitQ[i])
		}
		for i := 0; i < r.radix*r.vcs; i++ {
			b = appendPktQueue(b, ar, &r.outQ[i])
		}
	}

	b = binary.LittleEndian.AppendUint32(b, uint32(len(n.links)))
	for li := range n.links {
		l := &n.links[li]
		// Flits riding link l live in the arena of the shard owning l.dst.
		ar := &n.shards[n.routerShard[l.dst]].ar
		b = appendBool(b, l.dead)
		b = binary.LittleEndian.AppendUint32(b, uint32(l.flits.n))
		mask := len(l.flits.buf) - 1
		for i := 0; i < l.flits.n; i++ {
			e := &l.flits.buf[(l.flits.head+i)&mask]
			b = binary.LittleEndian.AppendUint64(b, uint64(e.at))
			b = append(b, e.vc)
			b = appendWirePacket(b, ar, e.ref)
		}
		b = appendCreditQueue(b, &l.credits)
	}
	return b
}

// decodeNetwork rebuilds the engine state on a fresh network. Every
// count and index is validated before use: a CRC-valid but adversarial
// input yields a typed error, never a panic or an unbounded allocation.
func (n *Network) decodeNetwork(d *snapDec) error {
	now := d.i64()
	load := d.f64()
	measuring := d.bool()
	countWindow := d.bool()
	killed := d.i64()
	rerouted := d.i64()
	lastMove := d.i64()
	dropped := d.i64()
	injWin := d.i64()
	ejWin := d.i64()
	epochIdx := int(d.u32())
	if d.err != nil {
		return d.err
	}
	switch {
	case now < 0:
		d.fail("negative cycle %d", now)
	case math.IsNaN(load) || load < 0 || load > 1:
		d.fail("injection load %v out of range", load)
	case lastMove < 0 || lastMove > now:
		d.fail("last-movement cycle %d outside [0, %d]", lastMove, now)
	case killed < 0 || rerouted < 0 || dropped < 0 || injWin < 0 || ejWin < 0:
		d.fail("negative event counter")
	}
	if d.err != nil {
		return d.err
	}

	if n.epochs != nil {
		if epochIdx < 0 || epochIdx >= len(n.epochs) {
			d.fail("epoch index %d outside the timeline's %d epochs", epochIdx, len(n.epochs))
			return d.err
		}
		// Adopt the governing epoch's view directly — liveness state is
		// restored field by field below, so the kill/rescue reconciliation
		// of applyEpoch must not run.
		n.topo.(SwitchedTopology).SetEpoch(n.epochs[epochIdx].View)
		n.epochIdx = epochIdx
	} else if epochIdx != 0 {
		d.fail("snapshot is mid-timeline (epoch %d) but this network has none", epochIdx)
		return d.err
	}

	if got := int(d.u32()); d.err == nil && got != len(n.termRNG) {
		d.fail("terminal count %d, network has %d", got, len(n.termRNG))
	}
	if d.err != nil {
		return d.err
	}
	alive := 0
	for t := range n.termRNG {
		n.termRNG[t].state = d.u64()
		n.termSeq[t] = d.u64()
		n.termAlive[t] = d.bool()
		if n.termAlive[t] {
			alive++
		}
	}
	if got := int(d.u32()); d.err == nil && got != alive {
		d.fail("alive-terminal count %d disagrees with the %d per-terminal flags", got, alive)
	}
	if d.err != nil {
		return d.err
	}
	n.aliveTerms = alive

	words := n.source.StateWords()
	if got := int(d.u32()); d.err == nil && got != words {
		d.fail("source state is %d words/terminal, the installed %q source holds %d", got, n.source.Name(), words)
	}
	if d.err != nil {
		return d.err
	}
	if words > 0 {
		var buf [maxSourceStateWords]uint64
		for t := range n.termRNG {
			for i := 0; i < words; i++ {
				buf[i] = d.u64()
			}
			if d.err != nil {
				return d.err
			}
			if err := n.source.LoadState(t, buf[:words]); err != nil {
				d.fail("source state for terminal %d: %v", t, err)
				return d.err
			}
		}
	}

	if got := int(d.u32()); d.err == nil && got != len(n.routers) {
		d.fail("router count %d, network has %d", got, len(n.routers))
	}
	if d.err != nil {
		return d.err
	}
	for ri := range n.routers {
		r := &n.routers[ri]
		sh := n.shardForRouter(ri)
		deadFlag := d.bool()
		if d.err == nil && deadFlag && n.routerDead == nil {
			d.fail("router %d marked dead but this network has no timeline", ri)
		}
		if d.err != nil {
			return d.err
		}
		if n.routerDead != nil {
			n.routerDead[ri] = deadFlag
		}
		for p := 0; p < r.radix; p++ {
			rr := int32(d.u32())
			td := d.i64()
			crossTd := d.i64()
			if d.err == nil && (rr < 0 || rr >= int32(r.vcs) || td < 0 || crossTd < 0) {
				d.fail("router %d port %d sensor state out of range", ri, p)
			}
			if d.err != nil {
				return d.err
			}
			r.outRR[p] = rr
			r.td[p] = td
			r.crossTd[p] = crossTd
			if err := d.creditQueue(&r.ctq[p], r.vcs); err != nil {
				return err
			}
		}
		for i := 0; i < r.radix*r.vcs; i++ {
			occ := int32(d.u32())
			cr := int32(d.u32())
			if d.err == nil && (occ < 0 || occ > int32(r.depth) || cr < 0 || cr > int32(r.depth)) {
				d.fail("router %d slot %d occupancy/credits outside [0, %d]", ri, i, r.depth)
			}
			if d.err != nil {
				return d.err
			}
			r.inOcc[i] = occ
			r.credits[i] = cr
		}
		for p := 0; p < r.radix; p++ {
			if !r.isTerm[p] {
				continue
			}
			if err := d.pktQueue(n, sh, r, &r.srcQ[p]); err != nil {
				return err
			}
		}
		for i := 0; i < r.radix*r.vcs; i++ {
			if err := d.pktQueue(n, sh, r, &r.waitQ[i]); err != nil {
				return err
			}
		}
		for i := 0; i < r.radix*r.vcs; i++ {
			if err := d.pktQueue(n, sh, r, &r.outQ[i]); err != nil {
				return err
			}
		}
	}

	if got := int(d.u32()); d.err == nil && got != len(n.links) {
		d.fail("link count %d, network has %d", got, len(n.links))
	}
	if d.err != nil {
		return d.err
	}
	for li := range n.links {
		l := &n.links[li]
		sh := n.shardForRouter(l.dst)
		l.dead = d.bool()
		cnt := d.count(8+1+packetWire, "link flit")
		if d.err != nil {
			return d.err
		}
		for i := 0; i < cnt; i++ {
			at := d.i64()
			vc := d.u8()
			if d.err == nil && int(vc) >= n.cfg.VCs {
				d.fail("link %d flit VC %d out of range", li, vc)
			}
			if d.err != nil {
				return d.err
			}
			ref, err := d.packet(n, sh, nil)
			if err != nil {
				return err
			}
			l.flits.push(flitEntry{at: at, ref: ref, vc: vc})
		}
		if err := d.creditQueue(&l.credits, n.cfg.VCs); err != nil {
			return err
		}
	}

	n.now = now
	n.load = load
	n.measuring = measuring
	n.countWindow = countWindow
	n.killedInFlight = killed
	n.rerouted = rerouted
	// lastMove is kept as a global maximum (the stall detector only reads
	// the max); the window and drop counters are totals, homed on shard 0
	// (they are only ever read summed).
	for i := range n.shards {
		n.shards[i].lastMove = lastMove
	}
	n.shards[0].dropped = dropped
	n.shards[0].injectedWindow = injWin
	n.shards[0].ejectedWindow = ejWin
	return nil
}

// appendPacket encodes one packet's full arena payload.
func appendPacket(b []byte, ar *arena, ref int32) []byte {
	b = binary.LittleEndian.AppendUint64(b, ar.id[ref])
	b = binary.LittleEndian.AppendUint64(b, ar.seed[ref])
	b = binary.LittleEndian.AppendUint32(b, uint32(ar.src[ref]))
	b = binary.LittleEndian.AppendUint32(b, uint32(ar.dst[ref]))
	b = append(b, ar.flags[ref])
	b = binary.LittleEndian.AppendUint32(b, uint32(ar.interGrp[ref]))
	b = binary.LittleEndian.AppendUint16(b, uint16(ar.nextPort[ref]))
	b = append(b, byte(ar.nextVC[ref]))
	b = binary.LittleEndian.AppendUint16(b, uint16(ar.inPort[ref]))
	b = append(b, byte(ar.bufVC[ref]))
	b = binary.LittleEndian.AppendUint64(b, uint64(ar.arrive[ref]))
	b = binary.LittleEndian.AppendUint64(b, uint64(ar.create[ref]))
	b = binary.LittleEndian.AppendUint64(b, uint64(ar.inject[ref]))
	b = binary.LittleEndian.AppendUint16(b, uint16(ar.hops[ref]))
	return b
}

// appendWirePacket encodes a packet riding a link. The in-buffer
// columns (arrive, inPort, bufVC) are rewritten at delivery and hold
// don't-care residue until then — stale values in the serial engine,
// zeros in a shard that re-homed the flit from a mailbox — so the
// canonical form zeroes them: the encoding must not depend on which
// engine produced the state.
func appendWirePacket(b []byte, ar *arena, ref int32) []byte {
	b = binary.LittleEndian.AppendUint64(b, ar.id[ref])
	b = binary.LittleEndian.AppendUint64(b, ar.seed[ref])
	b = binary.LittleEndian.AppendUint32(b, uint32(ar.src[ref]))
	b = binary.LittleEndian.AppendUint32(b, uint32(ar.dst[ref]))
	b = append(b, ar.flags[ref])
	b = binary.LittleEndian.AppendUint32(b, uint32(ar.interGrp[ref]))
	b = binary.LittleEndian.AppendUint16(b, uint16(ar.nextPort[ref]))
	b = append(b, byte(ar.nextVC[ref]))
	b = binary.LittleEndian.AppendUint16(b, 0) // inPort
	b = append(b, 0)                           // bufVC
	b = binary.LittleEndian.AppendUint64(b, 0) // arrive
	b = binary.LittleEndian.AppendUint64(b, uint64(ar.create[ref]))
	b = binary.LittleEndian.AppendUint64(b, uint64(ar.inject[ref]))
	b = binary.LittleEndian.AppendUint16(b, uint16(ar.hops[ref]))
	return b
}

// packet decodes one payload into a fresh slot of sh's arena, updating
// the shard's in-flight accounting. r is the router whose queue the
// packet sits in (port/VC fields are validated against its shape), nil
// for flits on a wire (whose port fields are recomputed at delivery).
func (d *snapDec) packet(n *Network, sh *shard, r *Router) (int32, error) {
	id := d.u64()
	seed := d.u64()
	src := int32(d.u32())
	dst := int32(d.u32())
	flags := d.u8()
	interGrp := int32(d.u32())
	nextPort := int16(d.u16())
	nextVC := int8(d.u8())
	inPort := int16(d.u16())
	bufVC := int8(d.u8())
	arrive := d.i64()
	create := d.i64()
	inject := d.i64()
	hops := int16(d.u16())
	if d.err != nil {
		return nilRef, d.err
	}
	terms := n.topo.Terminals()
	switch {
	case flags&^(pfMinimal|pfPhase1|pfDecided|pfMeasured) != 0:
		d.fail("packet %#x has unknown flag bits %#x", id, flags)
	case src < 0 || int(src) >= terms || dst < 0 || int(dst) >= terms:
		d.fail("packet %#x src/dst outside the %d terminals", id, terms)
	case interGrp < -1:
		d.fail("packet %#x intermediate group %d", id, interGrp)
	case hops < 0:
		d.fail("packet %#x negative hop count", id)
	}
	if d.err == nil && r != nil {
		if int(nextPort) < 0 || int(nextPort) >= r.radix || int(nextVC) < 0 || int(nextVC) >= r.vcs ||
			int(inPort) < -1 || int(inPort) >= r.radix || int(bufVC) < 0 || int(bufVC) >= r.vcs {
			d.fail("packet %#x port/VC fields out of range for router %d", id, r.ID)
		}
	}
	if d.err != nil {
		return nilRef, d.err
	}
	ref := sh.ar.alloc()
	sh.ar.id[ref] = id
	sh.ar.seed[ref] = seed
	sh.ar.src[ref] = src
	sh.ar.dst[ref] = dst
	sh.ar.flags[ref] = flags
	sh.ar.interGrp[ref] = interGrp
	sh.ar.nextPort[ref] = nextPort
	sh.ar.nextVC[ref] = nextVC
	sh.ar.inPort[ref] = inPort
	sh.ar.bufVC[ref] = bufVC
	sh.ar.arrive[ref] = arrive
	sh.ar.create[ref] = create
	sh.ar.inject[ref] = inject
	sh.ar.hops[ref] = hops
	sh.inFlight++
	if flags&pfMeasured != 0 {
		sh.outstanding++
	}
	return ref, nil
}

// appendPktQueue encodes a packet queue head-to-tail.
func appendPktQueue(b []byte, ar *arena, q *pktQueue) []byte {
	b = binary.LittleEndian.AppendUint32(b, uint32(q.n))
	mask := len(q.buf) - 1
	for i := 0; i < q.n; i++ {
		b = appendPacket(b, ar, q.buf[(q.head+i)&mask])
	}
	return b
}

// pktQueue decodes a packet queue into q, homing the packets in sh.
func (d *snapDec) pktQueue(n *Network, sh *shard, r *Router, q *pktQueue) error {
	cnt := d.count(packetWire, "queued packet")
	if d.err != nil {
		return d.err
	}
	for i := 0; i < cnt; i++ {
		ref, err := d.packet(n, sh, r)
		if err != nil {
			return err
		}
		q.push(ref)
	}
	return nil
}

// appendCreditQueue encodes a credit delay line head-to-tail, plus its
// monotone-delivery clamp (lastAt persists after the entries drain, so
// it is state of its own).
func appendCreditQueue(b []byte, q *creditQueue) []byte {
	b = binary.LittleEndian.AppendUint32(b, uint32(q.n))
	b = binary.LittleEndian.AppendUint64(b, uint64(q.lastAt))
	mask := len(q.buf) - 1
	for i := 0; i < q.n; i++ {
		e := &q.buf[(q.head+i)&mask]
		b = append(b, e.vc)
		b = binary.LittleEndian.AppendUint64(b, uint64(e.at))
	}
	return b
}

// creditQueue decodes a credit delay line into q.
func (d *snapDec) creditQueue(q *creditQueue, vcs int) error {
	cnt := d.count(1+8, "queued credit")
	lastAt := d.i64()
	if d.err == nil && lastAt < 0 {
		d.fail("negative credit clamp %d", lastAt)
	}
	if d.err != nil {
		return d.err
	}
	for i := 0; i < cnt; i++ {
		vc := d.u8()
		at := d.i64()
		if d.err == nil && int(vc) >= vcs {
			d.fail("credit VC %d out of range", vc)
		}
		if d.err != nil {
			return d.err
		}
		q.push(vc, at)
	}
	// The clamp outlives the entries (a drained queue still holds back
	// earlier delivery times), so it is restored explicitly, after the
	// pushes.
	q.lastAt = lastAt
	return nil
}

// append encodes the RunCtx measurement state: the run parameters (so
// resume can refuse a mismatched RunConfig), the phase position, and
// every accumulator the OnEject observer feeds.
func (st *runState) append(b []byte) []byte {
	b = binary.LittleEndian.AppendUint64(b, math.Float64bits(st.rc.Load))
	b = binary.LittleEndian.AppendUint64(b, uint64(st.rc.WarmupCycles))
	b = binary.LittleEndian.AppendUint64(b, uint64(st.rc.MeasureCycles))
	b = binary.LittleEndian.AppendUint64(b, uint64(st.rc.DrainCycles))
	b = appendBool(b, st.rc.Histogram)
	b = binary.LittleEndian.AppendUint64(b, uint64(st.rc.HistWidth))
	b = binary.LittleEndian.AppendUint64(b, uint64(st.rc.StallLimit))
	b = append(b, st.phaseIdx)
	b = binary.LittleEndian.AppendUint64(b, uint64(st.iterDone))
	b = binary.LittleEndian.AppendUint64(b, math.Float64bits(st.res.Offered))
	b = binary.LittleEndian.AppendUint64(b, math.Float64bits(st.res.Accepted))
	b = binary.LittleEndian.AppendUint32(b, uint32(st.res.AliveTerminals))
	b = binary.LittleEndian.AppendUint64(b, uint64(st.dropped0))
	b = binary.LittleEndian.AppendUint64(b, uint64(st.killed0))
	b = binary.LittleEndian.AppendUint64(b, uint64(st.rerouted0))
	b = binary.LittleEndian.AppendUint64(b, uint64(st.minCount))
	b = binary.LittleEndian.AppendUint64(b, uint64(st.totalCount))
	b = st.res.Latency.AppendBinary(b)
	b = st.res.MinLatency.AppendBinary(b)
	b = st.res.NonminLatency.AppendBinary(b)
	if st.res.Hist != nil {
		b = appendBool(b, true)
		b = st.res.Hist.AppendBinary(b)
		b = st.res.MinHist.AppendBinary(b)
		b = st.res.NonminHist.AppendBinary(b)
	} else {
		b = appendBool(b, false)
	}
	return b
}

// run decodes the RunCtx measurement state.
func (d *snapDec) run(rs *runState) error {
	rs.rc.Load = d.f64()
	rs.rc.WarmupCycles = int(d.i64())
	rs.rc.MeasureCycles = int(d.i64())
	rs.rc.DrainCycles = int(d.i64())
	rs.rc.Histogram = d.bool()
	rs.rc.HistWidth = d.i64()
	rs.rc.StallLimit = d.i64()
	rs.phaseIdx = d.u8()
	rs.iterDone = d.i64()
	rs.res.Offered = d.f64()
	rs.res.Accepted = d.f64()
	rs.res.AliveTerminals = int(d.u32())
	rs.dropped0 = d.i64()
	rs.killed0 = d.i64()
	rs.rerouted0 = d.i64()
	rs.minCount = d.i64()
	rs.totalCount = d.i64()
	if d.err != nil {
		return d.err
	}
	if err := rs.rc.Validate(); err != nil {
		d.fail("checkpointed run parameters invalid: %v", err)
		return d.err
	}
	var limit int
	switch rs.phaseIdx {
	case phaseWarmupIdx:
		limit = rs.rc.WarmupCycles
	case phaseMeasureIdx:
		limit = rs.rc.MeasureCycles
	case phaseDrainIdx:
		limit = rs.rc.DrainCycles
	default:
		d.fail("unknown run phase %d", rs.phaseIdx)
		return d.err
	}
	if rs.iterDone < 0 || rs.iterDone >= int64(limit) {
		d.fail("phase position %d outside the %s phase's %d cycles", rs.iterDone, Phase(rs.phaseIdx), limit)
		return d.err
	}
	if rs.res.AliveTerminals < 1 {
		d.fail("checkpointed run has %d alive terminals", rs.res.AliveTerminals)
		return d.err
	}
	if rs.dropped0 < 0 || rs.killed0 < 0 || rs.rerouted0 < 0 || rs.minCount < 0 || rs.totalCount < 0 || rs.minCount > rs.totalCount {
		d.fail("checkpointed run counters out of range")
		return d.err
	}
	d.accumulator(&rs.res.Latency)
	d.accumulator(&rs.res.MinLatency)
	d.accumulator(&rs.res.NonminLatency)
	hasHist := d.bool()
	if d.err != nil {
		return d.err
	}
	if hasHist != rs.rc.Histogram {
		d.fail("histogram section does not match the checkpointed run parameters")
		return d.err
	}
	if hasHist {
		rs.res.Hist = d.histogram()
		rs.res.MinHist = d.histogram()
		rs.res.NonminHist = d.histogram()
	}
	return d.err
}

// accumulator decodes one stats.Accumulator in place.
func (d *snapDec) accumulator(a *stats.Accumulator) {
	if d.err != nil {
		return
	}
	rest, err := a.DecodeBinary(d.b)
	if err != nil {
		d.fail("measurement accumulator: %v", err)
		return
	}
	d.b = rest
}

// histogram decodes one stats.Histogram.
func (d *snapDec) histogram() *stats.Histogram {
	if d.err != nil {
		return nil
	}
	h := &stats.Histogram{}
	rest, err := h.DecodeBinary(d.b)
	if err != nil {
		d.fail("latency histogram: %v", err)
		return nil
	}
	d.b = rest
	return h
}

func appendBool(b []byte, v bool) []byte {
	if v {
		return append(b, 1)
	}
	return append(b, 0)
}

// snapDec is the error-carrying bounded reader the decoder runs on:
// every read checks the remaining input, every count is validated
// against the bytes that would have to follow it, and the first failure
// sticks (subsequent reads return zero values, and the caller checks
// err at section boundaries).
type snapDec struct {
	b   []byte
	err error
}

// fail records the first decode failure as a *SnapshotError.
func (d *snapDec) fail(format string, args ...any) {
	if d.err == nil {
		d.err = &SnapshotError{Reason: fmt.Sprintf(format, args...)}
	}
}

func (d *snapDec) take(k int) []byte {
	if d.err != nil {
		return nil
	}
	if len(d.b) < k {
		d.fail("truncated (%d bytes left, need %d)", len(d.b), k)
		return nil
	}
	v := d.b[:k]
	d.b = d.b[k:]
	return v
}

func (d *snapDec) u8() uint8 {
	v := d.take(1)
	if v == nil {
		return 0
	}
	return v[0]
}

func (d *snapDec) u16() uint16 {
	v := d.take(2)
	if v == nil {
		return 0
	}
	return binary.LittleEndian.Uint16(v)
}

func (d *snapDec) u32() uint32 {
	v := d.take(4)
	if v == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(v)
}

func (d *snapDec) u64() uint64 {
	v := d.take(8)
	if v == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(v)
}

func (d *snapDec) i64() int64 { return int64(d.u64()) }

func (d *snapDec) f64() float64 { return math.Float64frombits(d.u64()) }

func (d *snapDec) bool() bool {
	v := d.u8()
	if d.err == nil && v > 1 {
		d.fail("corrupt boolean %d", v)
	}
	return v == 1
}

// count reads an element count and bounds it by the remaining input
// (each element needs at least elem encoded bytes), so a corrupt length
// field can never drive an unbounded allocation.
func (d *snapDec) count(elem int, what string) int {
	v := d.u32()
	if d.err != nil {
		return 0
	}
	if uint64(v)*uint64(elem) > uint64(len(d.b)) {
		d.fail("%s count %d exceeds the remaining %d bytes", what, v, len(d.b))
		return 0
	}
	return int(v)
}
