package sim_test

import (
	"bytes"
	"errors"
	"testing"

	"dragonfly/internal/sim"
)

// FuzzSnapshotDecode drives Restore over arbitrary inputs: truncations,
// bit flips, version bumps and whatever the fuzzer mutates the seed
// corpus into. The contract under test is the decoder's: every
// rejection is a typed error wrapping ErrBadSnapshot (never a panic),
// no corrupt length field drives an allocation beyond the input size,
// and anything that does decode leaves a network whose flow invariants
// hold. The run section decodes through the same entry point (Restore
// parses and discards it), so checkpoint blobs fuzz the full format.
func FuzzSnapshotDecode(f *testing.F) {
	seedCorpus := func(withRun bool, every int64) []byte {
		net := snapNet(f, 3)
		if !withRun {
			net.SetLoad(0.3)
			for i := 0; i < 200; i++ {
				if err := net.Step(); err != nil {
					f.Fatal(err)
				}
			}
			snap, err := net.Snapshot()
			if err != nil {
				f.Fatal(err)
			}
			return snap
		}
		var snap []byte
		stop := errors.New("stop")
		_, err := sim.RunCtx(f.Context(), net, sim.RunConfig{
			Load: 0.25, WarmupCycles: 400, MeasureCycles: 400, DrainCycles: 20000,
			Histogram:       true,
			CheckpointEvery: every,
			CheckpointSink:  func(b []byte) error { snap = bytes.Clone(b); return stop },
		})
		if !errors.Is(err, stop) {
			f.Fatalf("checkpoint capture: %v", err)
		}
		return snap
	}

	engine := seedCorpus(false, 0)
	ckptWarm := seedCorpus(true, 300)
	ckptMeasure := seedCorpus(true, 700)
	f.Add(engine)
	f.Add(ckptWarm)
	f.Add(ckptMeasure)
	f.Add(engine[:len(engine)/2])
	f.Add(ckptWarm[:len(ckptWarm)-5])
	bumped := bytes.Clone(engine)
	bumped[10] = '9'
	f.Add(bumped)
	flipped := bytes.Clone(ckptMeasure)
	flipped[len(flipped)/3] ^= 0x40
	f.Add(flipped)
	f.Add([]byte{})
	f.Add([]byte("dfly-snap/1\n"))

	f.Fuzz(func(t *testing.T, data []byte) {
		net := snapNet(t, 2)
		if err := net.Restore(data); err != nil {
			if !errors.Is(err, sim.ErrBadSnapshot) {
				t.Fatalf("Restore returned a non-snapshot error: %v", err)
			}
			var se *sim.SnapshotError
			if !errors.As(err, &se) {
				t.Fatalf("Restore error %T is not a *SnapshotError", err)
			}
			return
		}
		if err := net.CheckFlowInvariants(); err != nil {
			t.Fatalf("accepted snapshot violates flow invariants: %v", err)
		}
	})
}
