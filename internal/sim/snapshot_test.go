package sim_test

import (
	"bytes"
	"errors"
	"reflect"
	"testing"

	"dragonfly/internal/routing"
	"dragonfly/internal/sim"
	"dragonfly/internal/topology"
	"dragonfly/internal/traffic"
)

// snapNet builds the standard test network for snapshot tests: the
// Figure 5 dragonfly under UGAL-L_VCH/uniform-random, partitioned into
// shards. It takes testing.TB so fuzz seeding (*testing.F) can build
// networks too.
func snapNet(tb testing.TB, shards int) *sim.Network {
	tb.Helper()
	d, err := topology.NewDragonfly(2, 4, 2, 0)
	if err != nil {
		tb.Fatalf("NewDragonfly: %v", err)
	}
	net, err := sim.New(d, testConfig(), routing.NewUGAL(d, routing.UGALLocalVCH), traffic.NewUniformRandom(d.Nodes()))
	if err != nil {
		tb.Fatalf("sim.New: %v", err)
	}
	if err := net.SetShards(shards); err != nil {
		tb.Fatalf("SetShards(%d): %v", shards, err)
	}
	return net
}

// TestSnapshotRoundTripAcrossShards is the canonical-form check: a
// snapshot taken mid-flight at one shard count restores at another, the
// restored network continues bit-identically (its own later snapshot
// equals the original network's), and the encoding itself is
// shard-count independent (both networks produce byte-identical
// snapshots at every compared point).
func TestSnapshotRoundTripAcrossShards(t *testing.T) {
	for _, tc := range []struct{ snapShards, resShards int }{
		{1, 3}, {3, 1}, {3, 3},
	} {
		orig := snapNet(t, tc.snapShards)
		orig.SetLoad(0.3)
		for i := 0; i < 250; i++ {
			if err := orig.Step(); err != nil {
				t.Fatalf("%+v: Step %d: %v", tc, i, err)
			}
		}
		snap, err := orig.Snapshot()
		if err != nil {
			t.Fatalf("%+v: Snapshot: %v", tc, err)
		}
		if orig.InFlight() == 0 {
			t.Fatalf("%+v: nothing in flight at the snapshot point", tc)
		}

		rest := snapNet(t, tc.resShards)
		if err := rest.Restore(snap); err != nil {
			t.Fatalf("%+v: Restore: %v", tc, err)
		}
		if got, want := rest.Now(), orig.Now(); got != want {
			t.Fatalf("%+v: restored at cycle %d, want %d", tc, got, want)
		}
		if got, want := rest.InFlight(), orig.InFlight(); got != want {
			t.Fatalf("%+v: restored %d packets in flight, want %d", tc, got, want)
		}
		resnap, err := rest.Snapshot()
		if err != nil {
			t.Fatalf("%+v: re-Snapshot: %v", tc, err)
		}
		if !bytes.Equal(snap, resnap) {
			t.Fatalf("%+v: snapshot of the restored network differs from the original", tc)
		}

		for i := 0; i < 200; i++ {
			if err := orig.Step(); err != nil {
				t.Fatalf("%+v: original Step %d after snapshot: %v", tc, i, err)
			}
			if err := rest.Step(); err != nil {
				t.Fatalf("%+v: restored Step %d: %v", tc, i, err)
			}
		}
		a, err := orig.Snapshot()
		if err != nil {
			t.Fatalf("%+v: final original Snapshot: %v", tc, err)
		}
		b, err := rest.Snapshot()
		if err != nil {
			t.Fatalf("%+v: final restored Snapshot: %v", tc, err)
		}
		if !bytes.Equal(a, b) {
			t.Errorf("%+v: networks diverged within 200 cycles of the restore", tc)
		}
	}
}

// TestSnapshotTypedErrors drives the decoder over the rejection cases:
// every one must be a *SnapshotError wrapping ErrBadSnapshot, never a
// panic, and never a silent success.
func TestSnapshotTypedErrors(t *testing.T) {
	orig := snapNet(t, 1)
	orig.SetLoad(0.3)
	for i := 0; i < 150; i++ {
		if err := orig.Step(); err != nil {
			t.Fatalf("Step: %v", err)
		}
	}
	snap, err := orig.Snapshot()
	if err != nil {
		t.Fatalf("Snapshot: %v", err)
	}

	cases := []struct {
		name string
		mut  func() ([]byte, *sim.Network)
	}{
		{"truncated header", func() ([]byte, *sim.Network) {
			return snap[:8], snapNet(t, 1)
		}},
		{"truncated body", func() ([]byte, *sim.Network) {
			return snap[:len(snap)-40], snapNet(t, 1)
		}},
		{"version bump", func() ([]byte, *sim.Network) {
			b := bytes.Clone(snap)
			b[10] = '2' // "dfly-snap/1" -> "dfly-snap/2"
			return b, snapNet(t, 1)
		}},
		{"flipped bit", func() ([]byte, *sim.Network) {
			b := bytes.Clone(snap)
			b[len(b)/2] ^= 0x10
			return b, snapNet(t, 1)
		}},
		{"fingerprint mismatch", func() ([]byte, *sim.Network) {
			d := testDragonfly(t)
			cfg := testConfig()
			cfg.Seed = 999 // same machine, different RNG universe
			return snap, newNet(t, d, cfg, buildAlg(t, d, "UGAL-L_VCH"), traffic.NewUniformRandom(d.Nodes()))
		}},
	}
	for _, tc := range cases {
		b, net := tc.mut()
		err := net.Restore(b)
		if err == nil {
			t.Errorf("%s: accepted", tc.name)
			continue
		}
		if !errors.Is(err, sim.ErrBadSnapshot) {
			t.Errorf("%s: error %v does not wrap ErrBadSnapshot", tc.name, err)
		}
		var se *sim.SnapshotError
		if !errors.As(err, &se) {
			t.Errorf("%s: error %T is not a *SnapshotError", tc.name, err)
		}
	}

	// Restoring onto a network that has already stepped is refused.
	used := snapNet(t, 1)
	used.SetLoad(0.1)
	if err := used.Step(); err != nil {
		t.Fatalf("Step: %v", err)
	}
	if err := used.Restore(snap); !errors.Is(err, sim.ErrBadSnapshot) {
		t.Errorf("Restore onto a stepped network: %v, want ErrBadSnapshot", err)
	}

	// Resuming needs a checkpoint (run section), not a bare engine
	// snapshot.
	if _, err := sim.ResumeCtx(t.Context(), snapNet(t, 1), sim.RunConfig{
		Load: 0.3, WarmupCycles: 400, MeasureCycles: 400, DrainCycles: 20000,
	}, snap); !errors.Is(err, sim.ErrBadSnapshot) {
		t.Errorf("ResumeCtx from a runless snapshot: %v, want ErrBadSnapshot", err)
	}
}

// errStopAfterSnapshot is the sentinel a capturing checkpoint sink uses
// to abort its run once it has the snapshot it wanted.
var errStopAfterSnapshot = errors.New("stop after first snapshot")

// captureFirstCheckpoint runs rc on a fresh network with a sink that
// keeps the first checkpoint and aborts, returning the snapshot.
func captureFirstCheckpoint(t *testing.T, shards int, rc sim.RunConfig, every int64) []byte {
	t.Helper()
	var snap []byte
	rc.CheckpointEvery = every
	rc.CheckpointSink = func(b []byte) error {
		snap = bytes.Clone(b)
		return errStopAfterSnapshot
	}
	_, err := sim.RunCtx(t.Context(), snapNet(t, shards), rc)
	if !errors.Is(err, errStopAfterSnapshot) {
		t.Fatalf("checkpoint capture run: %v, want the sink's sentinel", err)
	}
	if snap == nil {
		t.Fatal("no checkpoint fired")
	}
	return snap
}

// TestResumeBitIdentical is the sim-level headline invariant:
// checkpoint → abort → ResumeCtx on a fresh network (at a different
// shard count) produces a Result identical field for field — histograms
// included — to a run that was never interrupted.
func TestResumeBitIdentical(t *testing.T) {
	rc := sim.RunConfig{
		Load: 0.25, WarmupCycles: 400, MeasureCycles: 400, DrainCycles: 20000,
		Histogram: true,
	}
	want, err := sim.RunCtx(t.Context(), snapNet(t, 1), rc)
	if err != nil {
		t.Fatalf("uninterrupted run: %v", err)
	}

	for _, tc := range []struct {
		name       string
		every      int64
		snapShards int
		resShards  int
	}{
		{"mid-warmup serial to sharded", 300, 1, 3},
		{"mid-measure sharded to serial", 700, 3, 1},
	} {
		snap := captureFirstCheckpoint(t, tc.snapShards, rc, tc.every)
		got, err := sim.ResumeCtx(t.Context(), snapNet(t, tc.resShards), rc, snap)
		if err != nil {
			t.Fatalf("%s: ResumeCtx: %v", tc.name, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("%s: resumed result differs from uninterrupted:\n got %+v\nwant %+v", tc.name, got, want)
		}
	}

	// Resuming under different run parameters is refused.
	snap := captureFirstCheckpoint(t, 1, rc, 300)
	other := rc
	other.MeasureCycles = 500
	if _, err := sim.ResumeCtx(t.Context(), snapNet(t, 1), other, snap); !errors.Is(err, sim.ErrBadSnapshot) {
		t.Errorf("ResumeCtx with mismatched parameters: %v, want ErrBadSnapshot", err)
	}
}

// TestCheckpointConfigValidation pins the RunConfig contract for the
// checkpoint fields.
func TestCheckpointConfigValidation(t *testing.T) {
	sink := func([]byte) error { return nil }
	base := sim.RunConfig{Load: 0.2, WarmupCycles: 10, MeasureCycles: 10, DrainCycles: 100}
	for _, tc := range []struct {
		name string
		mut  func(*sim.RunConfig)
	}{
		{"negative interval", func(rc *sim.RunConfig) { rc.CheckpointEvery = -1; rc.CheckpointSink = sink }},
		{"interval without sink", func(rc *sim.RunConfig) { rc.CheckpointEvery = 100 }},
		{"sink without interval", func(rc *sim.RunConfig) { rc.CheckpointSink = sink }},
		{"utilization", func(rc *sim.RunConfig) { rc.CheckpointEvery = 100; rc.CheckpointSink = sink; rc.Utilization = true }},
	} {
		rc := base
		tc.mut(&rc)
		var ce *sim.ConfigError
		if err := rc.Validate(); !errors.As(err, &ce) {
			t.Errorf("%s: Validate() = %v, want *ConfigError", tc.name, err)
		}
	}
	rc := base
	rc.CheckpointEvery = 100
	rc.CheckpointSink = sink
	if err := rc.Validate(); err != nil {
		t.Errorf("valid checkpoint config rejected: %v", err)
	}
}
