package sim

// Source is the per-terminal arrival process: it decides, each cycle,
// whether a terminal offers a packet and (optionally) where that packet
// goes. The engine consults the Source before the traffic pattern —
// generalising the original design where injection was a single
// Bernoulli draw against one load scalar — and the built-in Bernoulli
// source reproduces that original draw sequence bit for bit.
//
// Determinism and snapshot obligations (see DESIGN.md §9):
//
//   - Arrive must be a pure function of (t, now, load, the terminal's
//     RNG stream, and the source's own per-terminal state). It may
//     consume draws from r — they come from the terminal's snapshot-
//     encoded stream, so replay is exact — but must not read any other
//     mutable state, must not allocate on the steady path, and must be
//     safe for concurrent calls on *distinct* terminals (the sharded
//     engine injects shards in parallel; per-terminal state is fine,
//     shared mutable state is not).
//   - All mutable per-terminal state must round-trip through
//     StateWords/SaveState/LoadState as fixed-width uint64 words: a
//     restored source continues exactly where the snapshot left off, so
//     resume ≡ uninterrupted holds for every source, not just Bernoulli.
//   - Fingerprint must canonically encode the source's identity and
//     parameters. It is folded into the snapshot fingerprint, so a
//     resume under a differently-configured source is refused with
//     ErrBadSnapshot instead of silently diverging.
type Source interface {
	// Name identifies the source family ("bernoulli", "onoff", ...).
	Name() string
	// Fingerprint canonically encodes the source and its parameters for
	// the snapshot compatibility check. Equal fingerprints must imply
	// identical arrival behaviour.
	Fingerprint() string
	// Arrive reports whether terminal t offers a packet at cycle now.
	// dst >= 0 forces the destination (trace replay, collectives,
	// tenant-confined traffic); dst < 0 defers to the network's traffic
	// pattern, which then consumes its own draw from r exactly as the
	// legacy path did.
	Arrive(t int, now int64, load float64, r *RNG) (fire bool, dst int)
	// StateWords is the fixed number of uint64 state words per terminal
	// (0 for stateless sources). It must not change over a source's
	// lifetime.
	StateWords() int
	// SaveState serialises terminal t's state into out, which has
	// exactly StateWords entries.
	SaveState(t int, out []uint64)
	// LoadState restores terminal t's state from in (StateWords
	// entries), validating ranges: a corrupt snapshot must surface an
	// error here, never a later panic.
	LoadState(t int, in []uint64) error
}

// maxSourceStateWords bounds a Source's per-terminal state (checked by
// SetSource). The snapshot codec stack-allocates its transfer buffer at
// this size, and the bound keeps a hostile snapshot's declared word
// count from driving decode cost — the decoder refuses anything that
// disagrees with the installed source before reading a single word.
const maxSourceStateWords = 8

// loadGated is the optional capability of sources that are silenced
// entirely by a non-positive load. The engine skips the whole injection
// walk (consuming no RNG draws) when the source is gated and load <= 0 —
// the legacy fast path. Sources that inject regardless of the load
// scalar (trace replay) simply don't implement it.
type loadGated interface{ LoadGated() bool }

// bernoulli is the default source: one gate draw per terminal per
// cycle against the load scalar, destination deferred to the traffic
// pattern. Its draw sequence is exactly the pre-Source engine's.
type bernoulli struct{}

// DefaultSource returns the Bernoulli arrival process every Network
// starts with: inject with probability load each cycle, destination
// from the traffic pattern.
func DefaultSource() Source { return bernoulli{} }

func (bernoulli) Name() string        { return "bernoulli" }
func (bernoulli) Fingerprint() string { return "bernoulli" }
func (bernoulli) LoadGated() bool     { return true }
func (bernoulli) StateWords() int     { return 0 }

func (bernoulli) Arrive(t int, now int64, load float64, r *RNG) (bool, int) {
	if r.Float64() >= load {
		return false, -1
	}
	return true, -1
}

func (bernoulli) SaveState(int, []uint64) {}

func (bernoulli) LoadState(int, []uint64) error { return nil }
