package sim

import (
	"errors"
	"testing"
)

// TestStallErrorTypedWarmup checks the typed stall error: a wedged
// network must surface ErrStalled (matchable with errors.Is), carry the
// phase it fired in, and include a diagnostic snapshot.
func TestStallErrorTypedWarmup(t *testing.T) {
	net := wedgedNetwork(t)
	_, err := Run(net, RunConfig{
		Load:          1,
		WarmupCycles:  100000,
		MeasureCycles: 100,
		DrainCycles:   100,
		StallLimit:    50,
	})
	if err == nil {
		t.Fatal("wedged network did not report a stall")
	}
	if !errors.Is(err, ErrStalled) {
		t.Fatalf("stall error does not match ErrStalled: %v", err)
	}
	var se *StallError
	if !errors.As(err, &se) {
		t.Fatalf("stall error is not a *StallError: %v", err)
	}
	if se.Phase != PhaseWarmup {
		t.Errorf("Phase = %v, want %v", se.Phase, PhaseWarmup)
	}
	if se.StallLimit != 50 {
		t.Errorf("StallLimit = %d, want 50", se.StallLimit)
	}
	if se.Cycle <= 0 {
		t.Errorf("Cycle = %d, want > 0", se.Cycle)
	}
	if se.InFlight <= 0 {
		t.Errorf("InFlight = %d, want > 0 (that is what makes it a stall)", se.InFlight)
	}
	if len(se.Hot) == 0 {
		t.Fatal("no hot VCs in the diagnostic snapshot of a wedged network")
	}
	for _, h := range se.Hot {
		if h.Occupancy <= 0 {
			t.Errorf("hot VC (%d,%d,%d) with occupancy %d", h.Router, h.Port, h.VC, h.Occupancy)
		}
	}
}

func TestStallErrorPhaseMeasure(t *testing.T) {
	net := wedgedNetwork(t)
	_, err := Run(net, RunConfig{
		Load:          1,
		WarmupCycles:  0,
		MeasureCycles: 100000,
		DrainCycles:   100,
		StallLimit:    50,
	})
	var se *StallError
	if !errors.As(err, &se) {
		t.Fatalf("want *StallError, got %v", err)
	}
	if se.Phase != PhaseMeasure {
		t.Errorf("Phase = %v, want %v", se.Phase, PhaseMeasure)
	}
}

func TestStallErrorPhaseDrain(t *testing.T) {
	// Short measurement window (shorter than the stall limit, so the
	// detector cannot fire inside it), then a long drain over a network
	// that will never deliver its tagged packets.
	net := wedgedNetwork(t)
	_, err := Run(net, RunConfig{
		Load:          1,
		WarmupCycles:  0,
		MeasureCycles: 30,
		DrainCycles:   100000,
		StallLimit:    50,
	})
	var se *StallError
	if !errors.As(err, &se) {
		t.Fatalf("want *StallError, got %v", err)
	}
	if se.Phase != PhaseDrain {
		t.Errorf("Phase = %v, want %v", se.Phase, PhaseDrain)
	}
}

func TestPhaseStrings(t *testing.T) {
	// The phase names are part of the error surface (and of older log
	// greps): keep them stable.
	for ph, want := range map[Phase]string{
		PhaseWarmup:  "warm-up",
		PhaseMeasure: "measurement",
		PhaseDrain:   "drain",
	} {
		if ph.String() != want {
			t.Errorf("Phase(%d).String() = %q, want %q", ph, ph.String(), want)
		}
	}
}

func TestUnroutableErrorWrapping(t *testing.T) {
	err := &UnroutableError{Src: 1, Dst: 2, Router: 3}
	if !errors.Is(err, ErrUnroutable) {
		t.Error("UnroutableError does not match ErrUnroutable")
	}
	if errors.Is(err, ErrStalled) {
		t.Error("UnroutableError matches ErrStalled")
	}
	if err.Error() == "" {
		t.Error("empty error string")
	}
}
