package stats

import (
	"encoding/binary"
	"errors"
	"math"
)

// Binary encoding of the measurement accumulators, used by the
// simulator's checkpoint/restore layer (dfly-snap/1). The encoding is
// little-endian and fixed-width: floats travel as their IEEE-754 bit
// patterns, so a restored accumulator continues the exact Welford
// recurrence of the run it was captured from — restore-equivalence is
// bit-identical, not approximate.

// ErrTruncated reports a binary decode that ran out of input.
var ErrTruncated = errors.New("stats: truncated binary encoding")

// AppendBinary appends the accumulator's complete state to b.
func (a Accumulator) AppendBinary(b []byte) []byte {
	b = binary.LittleEndian.AppendUint64(b, uint64(a.n))
	b = binary.LittleEndian.AppendUint64(b, math.Float64bits(a.mean))
	b = binary.LittleEndian.AppendUint64(b, math.Float64bits(a.m2))
	b = binary.LittleEndian.AppendUint64(b, math.Float64bits(a.min))
	b = binary.LittleEndian.AppendUint64(b, math.Float64bits(a.max))
	if a.initedBoth {
		return append(b, 1)
	}
	return append(b, 0)
}

// accumulatorWire is the encoded size of one Accumulator.
const accumulatorWire = 5*8 + 1

// DecodeBinary restores the accumulator from the front of b and returns
// the remaining bytes. The only possible failure is truncation; the
// field values themselves are opaque measurement state.
func (a *Accumulator) DecodeBinary(b []byte) ([]byte, error) {
	if len(b) < accumulatorWire {
		return nil, ErrTruncated
	}
	a.n = int64(binary.LittleEndian.Uint64(b[0:]))
	a.mean = math.Float64frombits(binary.LittleEndian.Uint64(b[8:]))
	a.m2 = math.Float64frombits(binary.LittleEndian.Uint64(b[16:]))
	a.min = math.Float64frombits(binary.LittleEndian.Uint64(b[24:]))
	a.max = math.Float64frombits(binary.LittleEndian.Uint64(b[32:]))
	a.initedBoth = b[40] != 0
	return b[accumulatorWire:], nil
}

// AppendBinary appends the histogram's complete state to b.
func (h *Histogram) AppendBinary(b []byte) []byte {
	b = binary.LittleEndian.AppendUint64(b, uint64(h.Width))
	b = binary.LittleEndian.AppendUint64(b, uint64(h.total))
	b = binary.LittleEndian.AppendUint64(b, uint64(len(h.count)))
	for _, c := range h.count {
		b = binary.LittleEndian.AppendUint64(b, uint64(c))
	}
	return b
}

// DecodeBinary restores the histogram from the front of b and returns
// the remaining bytes. The bucket count is validated against the bytes
// actually present before anything is allocated, so a corrupt length
// field yields ErrTruncated rather than an attempted huge allocation.
func (h *Histogram) DecodeBinary(b []byte) ([]byte, error) {
	if len(b) < 3*8 {
		return nil, ErrTruncated
	}
	width := int64(binary.LittleEndian.Uint64(b[0:]))
	total := int64(binary.LittleEndian.Uint64(b[8:]))
	buckets := binary.LittleEndian.Uint64(b[16:])
	b = b[24:]
	if width < 1 {
		return nil, errors.New("stats: histogram bucket width < 1")
	}
	if buckets > uint64(len(b))/8 {
		return nil, ErrTruncated
	}
	h.Width = width
	h.total = total
	h.count = make([]int64, buckets)
	for i := range h.count {
		h.count[i] = int64(binary.LittleEndian.Uint64(b[i*8:]))
	}
	return b[buckets*8:], nil
}
