// Package stats provides the measurement machinery used by the
// simulator and the experiment harness: online latency accumulators,
// latency histograms (Figure 12), and per-channel utilisation counters
// (Figure 9). It is dependency-free so every other package can use it.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Accumulator tracks count, mean, min, max and variance of a stream of
// samples without storing them (Welford's algorithm).
type Accumulator struct {
	n          int64
	mean, m2   float64
	min, max   float64
	initedBoth bool
}

// Add records one sample.
func (a *Accumulator) Add(x float64) {
	a.n++
	if !a.initedBoth {
		a.min, a.max = x, x
		a.initedBoth = true
	} else {
		if x < a.min {
			a.min = x
		}
		if x > a.max {
			a.max = x
		}
	}
	d := x - a.mean
	a.mean += d / float64(a.n)
	a.m2 += d * (x - a.mean)
}

// Count returns the number of samples.
func (a Accumulator) Count() int64 { return a.n }

// Mean returns the sample mean, or 0 with no samples.
func (a Accumulator) Mean() float64 { return a.mean }

// Min returns the smallest sample, or 0 with no samples.
func (a Accumulator) Min() float64 { return a.min }

// Max returns the largest sample, or 0 with no samples.
func (a Accumulator) Max() float64 { return a.max }

// Variance returns the sample variance, or 0 with fewer than 2 samples.
func (a Accumulator) Variance() float64 {
	if a.n < 2 {
		return 0
	}
	return a.m2 / float64(a.n-1)
}

// StdDev returns the sample standard deviation.
func (a Accumulator) StdDev() float64 { return math.Sqrt(a.Variance()) }

// Merge folds another accumulator into this one.
func (a *Accumulator) Merge(b *Accumulator) {
	if b.n == 0 {
		return
	}
	if a.n == 0 {
		*a = *b
		return
	}
	n := a.n + b.n
	d := b.mean - a.mean
	a.m2 += b.m2 + d*d*float64(a.n)*float64(b.n)/float64(n)
	a.mean += d * float64(b.n) / float64(n)
	if b.min < a.min {
		a.min = b.min
	}
	if b.max > a.max {
		a.max = b.max
	}
	a.n = n
}

// Histogram counts integer-valued samples in fixed-width buckets,
// matching the latency-distribution plots of Figure 12.
type Histogram struct {
	// Width is the bucket width; bucket i covers [i*Width, (i+1)*Width).
	Width int64
	count []int64
	total int64
}

// NewHistogram creates a histogram with the given bucket width (>= 1).
func NewHistogram(width int64) *Histogram {
	if width < 1 {
		width = 1
	}
	return &Histogram{Width: width}
}

// Add records one sample (negative samples clamp to bucket 0).
func (h *Histogram) Add(v int64) {
	if v < 0 {
		v = 0
	}
	b := int(v / h.Width)
	for b >= len(h.count) {
		h.count = append(h.count, 0)
	}
	h.count[b]++
	h.total++
}

// Total returns the number of samples recorded.
func (h *Histogram) Total() int64 { return h.total }

// Buckets returns the bucket counts; index i covers [i*Width,(i+1)*Width).
func (h *Histogram) Buckets() []int64 { return h.count }

// Fraction returns bucket i's share of all samples.
func (h *Histogram) Fraction(i int) float64 {
	if h.total == 0 || i < 0 || i >= len(h.count) {
		return 0
	}
	return float64(h.count[i]) / float64(h.total)
}

// Percentile returns the smallest sample value v such that at least
// q (0..1) of the samples are <= v, resolved to bucket upper bounds.
func (h *Histogram) Percentile(q float64) int64 {
	if h.total == 0 {
		return 0
	}
	want := int64(math.Ceil(q * float64(h.total)))
	if want < 1 {
		want = 1
	}
	var seen int64
	for i, c := range h.count {
		seen += c
		if seen >= want {
			return int64(i+1)*h.Width - 1
		}
	}
	return int64(len(h.count))*h.Width - 1
}

// String renders a compact textual summary.
func (h *Histogram) String() string {
	return fmt.Sprintf("histogram(n=%d buckets=%d width=%d p50=%d p99=%d)",
		h.total, len(h.count), h.Width, h.Percentile(0.5), h.Percentile(0.99))
}

// ChannelUtil accumulates per-channel busy-cycle counts over a
// measurement window, producing the utilisation series of Figure 9.
type ChannelUtil struct {
	busy   []int64
	cycles int64
}

// NewChannelUtil creates counters for n channels.
func NewChannelUtil(n int) *ChannelUtil {
	return &ChannelUtil{busy: make([]int64, n)}
}

// Record adds one busy cycle (one flit traversal) to channel i.
func (u *ChannelUtil) Record(i int) { u.busy[i]++ }

// SetWindow records the number of cycles the counters cover.
func (u *ChannelUtil) SetWindow(cycles int64) { u.cycles = cycles }

// Channels returns the number of channels tracked.
func (u *ChannelUtil) Channels() int { return len(u.busy) }

// Utilization returns channel i's busy fraction over the window.
func (u *ChannelUtil) Utilization(i int) float64 {
	if u.cycles == 0 {
		return 0
	}
	return float64(u.busy[i]) / float64(u.cycles)
}

// Busy returns the raw busy-cycle count of channel i.
func (u *ChannelUtil) Busy(i int) int64 { return u.busy[i] }

// Summary holds the aggregate results every experiment reports.
type Summary struct {
	// Offered is the injection rate in flits/cycle/terminal.
	Offered float64
	// Accepted is the measured ejection rate in flits/cycle/terminal.
	Accepted float64
	// Latency aggregates packet latency in cycles over measured packets.
	Latency Accumulator
	// MinLatency / NonminLatency split latency by the source-router
	// routing decision (Figure 11).
	MinLatency, NonminLatency Accumulator
	// MinimalFraction is the share of measured packets routed minimally.
	MinimalFraction float64
	// Saturated reports that the network could not sustain the offered
	// load (the drain phase timed out or accepted lagged offered).
	Saturated bool
}

// Median returns the median of a slice (copied, not modified).
func Median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	c := append([]float64(nil), xs...)
	sort.Float64s(c)
	if len(c)%2 == 1 {
		return c[len(c)/2]
	}
	return (c[len(c)/2-1] + c[len(c)/2]) / 2
}
