package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestAccumulatorBasics(t *testing.T) {
	var a Accumulator
	for _, x := range []float64{1, 2, 3, 4, 5} {
		a.Add(x)
	}
	if a.Count() != 5 {
		t.Errorf("Count = %d, want 5", a.Count())
	}
	if a.Mean() != 3 {
		t.Errorf("Mean = %v, want 3", a.Mean())
	}
	if a.Min() != 1 || a.Max() != 5 {
		t.Errorf("Min/Max = %v/%v, want 1/5", a.Min(), a.Max())
	}
	if v := a.Variance(); math.Abs(v-2.5) > 1e-12 {
		t.Errorf("Variance = %v, want 2.5", v)
	}
	if s := a.StdDev(); math.Abs(s-math.Sqrt(2.5)) > 1e-12 {
		t.Errorf("StdDev = %v", s)
	}
}

func TestAccumulatorEmpty(t *testing.T) {
	var a Accumulator
	if a.Count() != 0 || a.Mean() != 0 || a.Variance() != 0 {
		t.Error("empty accumulator should return zeros")
	}
}

func TestAccumulatorMerge(t *testing.T) {
	var a, b, all Accumulator
	xs := []float64{3, 1, 4, 1, 5, 9, 2, 6, 5, 3}
	for i, x := range xs {
		if i < 4 {
			a.Add(x)
		} else {
			b.Add(x)
		}
		all.Add(x)
	}
	a.Merge(&b)
	if a.Count() != all.Count() {
		t.Errorf("merged count %d != %d", a.Count(), all.Count())
	}
	if math.Abs(a.Mean()-all.Mean()) > 1e-12 {
		t.Errorf("merged mean %v != %v", a.Mean(), all.Mean())
	}
	if math.Abs(a.Variance()-all.Variance()) > 1e-9 {
		t.Errorf("merged variance %v != %v", a.Variance(), all.Variance())
	}
	if a.Min() != all.Min() || a.Max() != all.Max() {
		t.Error("merged min/max mismatch")
	}
}

func TestAccumulatorMergeEmptySides(t *testing.T) {
	var a, b Accumulator
	b.Add(7)
	a.Merge(&b)
	if a.Count() != 1 || a.Mean() != 7 {
		t.Error("merge into empty failed")
	}
	var c Accumulator
	a.Merge(&c)
	if a.Count() != 1 {
		t.Error("merge of empty changed the accumulator")
	}
}

func TestAccumulatorPropertyMeanWithinRange(t *testing.T) {
	f := func(xs []float64) bool {
		var a Accumulator
		ok := true
		for _, x := range xs {
			if math.IsNaN(x) || math.Abs(x) > 1e12 {
				return true // latencies and loads are modest; skip extremes
			}
			a.Add(x)
		}
		if a.Count() == 0 {
			return true
		}
		if a.Mean() < a.Min()-1e-9 || a.Mean() > a.Max()+1e-9 {
			ok = false
		}
		if a.Variance() < 0 {
			ok = false
		}
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(2)
	for _, v := range []int64{0, 1, 2, 3, 4, 5, 100} {
		h.Add(v)
	}
	if h.Total() != 7 {
		t.Errorf("Total = %d, want 7", h.Total())
	}
	if h.Fraction(0) != 2.0/7 { // values 0,1
		t.Errorf("Fraction(0) = %v", h.Fraction(0))
	}
	if h.Fraction(50) != 1.0/7 { // value 100
		t.Errorf("Fraction(50) = %v", h.Fraction(50))
	}
	if h.Fraction(-1) != 0 || h.Fraction(1000) != 0 {
		t.Error("out-of-range fractions should be 0")
	}
	h.Add(-5) // clamps to bucket 0
	if h.Fraction(0) != 3.0/8 {
		t.Error("negative sample not clamped to bucket 0")
	}
}

func TestHistogramPercentile(t *testing.T) {
	h := NewHistogram(1)
	for v := int64(1); v <= 100; v++ {
		h.Add(v)
	}
	if p := h.Percentile(0.5); p < 49 || p > 51 {
		t.Errorf("p50 = %d, want ~50", p)
	}
	if p := h.Percentile(0.99); p < 98 || p > 100 {
		t.Errorf("p99 = %d, want ~99", p)
	}
	if p := h.Percentile(1.0); p != 100 {
		t.Errorf("p100 = %d, want 100", p)
	}
	empty := NewHistogram(4)
	if empty.Percentile(0.5) != 0 {
		t.Error("empty histogram percentile should be 0")
	}
}

func TestHistogramPropertyTotals(t *testing.T) {
	f := func(vals []uint16, width uint8) bool {
		h := NewHistogram(int64(width%16) + 1)
		for _, v := range vals {
			h.Add(int64(v))
		}
		var sum int64
		for _, c := range h.Buckets() {
			sum += c
		}
		return sum == int64(len(vals)) && h.Total() == int64(len(vals))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestHistogramWidthClamped(t *testing.T) {
	h := NewHistogram(0)
	if h.Width != 1 {
		t.Errorf("width 0 should clamp to 1, got %d", h.Width)
	}
}

func TestChannelUtil(t *testing.T) {
	u := NewChannelUtil(4)
	u.Record(0)
	u.Record(0)
	u.Record(3)
	u.SetWindow(10)
	if u.Channels() != 4 {
		t.Errorf("Channels = %d", u.Channels())
	}
	if u.Utilization(0) != 0.2 {
		t.Errorf("Utilization(0) = %v, want 0.2", u.Utilization(0))
	}
	if u.Utilization(1) != 0 {
		t.Errorf("Utilization(1) = %v, want 0", u.Utilization(1))
	}
	if u.Busy(3) != 1 {
		t.Errorf("Busy(3) = %d, want 1", u.Busy(3))
	}
	empty := NewChannelUtil(1)
	if empty.Utilization(0) != 0 {
		t.Error("zero-window utilization should be 0")
	}
}

func TestMedian(t *testing.T) {
	if m := Median([]float64{3, 1, 2}); m != 2 {
		t.Errorf("Median odd = %v, want 2", m)
	}
	if m := Median([]float64{4, 1, 2, 3}); m != 2.5 {
		t.Errorf("Median even = %v, want 2.5", m)
	}
	if m := Median(nil); m != 0 {
		t.Errorf("Median empty = %v, want 0", m)
	}
	// Median must not reorder the input.
	in := []float64{9, 1, 5}
	Median(in)
	if in[0] != 9 || in[1] != 1 || in[2] != 5 {
		t.Error("Median mutated its input")
	}
}
