package topology

import "math"

// This file holds the closed-form scalability relations the paper plots
// in Figures 1 and 4 and quotes in Section 3.

// FlatNetworkRadix returns the router radix required to connect n
// terminals with a single global hop between every pair of routers when
// no virtual-router grouping is used (Figure 1). A fully connected
// network of R routers with c terminals each needs radix c + R - 1 and
// offers N = c·R terminals; balancing c ≈ R gives k ≈ 2·sqrt(N). The
// returned radix is the smallest k achieving at least n terminals with
// the balanced concentration c = ceil(k/2).
func FlatNetworkRadix(n int) int {
	if n <= 1 {
		return 1
	}
	for k := 2; ; k++ {
		c := (k + 1) / 2 // terminals per router
		r := k - c + 1   // routers reachable: k-c global ports + self
		if c*r >= n {
			return k
		}
	}
}

// FlatNetworkMaxNodes returns the number of terminals a fully connected
// (single global hop) network of radix-k routers supports with balanced
// concentration, the inverse view of FlatNetworkRadix.
func FlatNetworkMaxNodes(k int) int {
	c := (k + 1) / 2
	return c * (k - c + 1)
}

// BalancedParams returns the balanced dragonfly parameters a = 2p = 2h
// for a router radix of at most k (k = p + a + h - 1 = 4h - 1). It
// reports h = 0 when k is too small for any dragonfly (k < 3).
func BalancedParams(k int) (p, a, h int) {
	h = (k + 1) / 4
	if h == 0 {
		return 0, 0, 0
	}
	return h, 2 * h, h
}

// BalancedMaxNodes returns the number of terminals N = a·p·(a·h+1) of the
// maximum-size balanced dragonfly built from radix-k routers (Figure 4).
func BalancedMaxNodes(k int) int {
	p, a, h := BalancedParams(k)
	if h == 0 {
		return 0
	}
	return a * p * (a*h + 1)
}

// BalancedRadixForNodes returns the smallest router radix whose balanced
// dragonfly reaches at least n terminals.
func BalancedRadixForNodes(n int) int {
	for k := 3; ; k++ {
		if BalancedMaxNodes(k) >= n {
			return k
		}
	}
}

// DragonflyDiameter returns the hop diameter (router-to-router channels)
// of a canonical dragonfly: local + global + local = 3 whenever the
// network has more than one group and more than one router per group.
func DragonflyDiameter(a, g int) int {
	switch {
	case g <= 1 && a <= 1:
		return 0
	case g <= 1:
		return 1
	case a <= 1:
		return 1
	default:
		return 3
	}
}

// Log2Ceil returns ⌈log2 n⌉ for n ≥ 1.
func Log2Ceil(n int) int {
	k := 0
	for v := 1; v < n; v <<= 1 {
		k++
	}
	return k
}

// IntPow returns b**e for small non-negative integer exponents.
func IntPow(b, e int) int {
	r := 1
	for i := 0; i < e; i++ {
		r *= b
	}
	return r
}

// Sqrt returns the integer square root helper used by layout models.
func Sqrt(n int) int {
	if n < 0 {
		return 0
	}
	return int(math.Sqrt(float64(n)))
}
