package topology

import "fmt"

// Aries is an Aries-style "cascade" machine (Cray XC, per the
// aries_intercon constants in SNIPPETS.md): each group is a two-level
// chassis × blade structure — B blades (routers) per chassis wired
// all-to-all across the chassis backplane, and C chassis per group
// wired all-to-all between peer-numbered blades with Mult parallel
// cables per pair (the bundled "black" links; the production machine
// uses B=16, C=6, Mult=3). Every router carries H global ("blue")
// ports; the inter-group wiring is the shared palmtree-plus-circulant
// plan (gwire), which with S = B·C·H slots and far fewer groups yields
// ⌊S/(g-1)⌋ parallel global channels per group pair — the bundled
// inter-group trunks (137 per pair at the production constants).
//
// The group is a 2-D flattened butterfly over coordinates (blade,
// chassis): in-group index idx = chassis·B + blade. Port layout:
//
//	ports [0, P)                    terminal ports
//	ports [P, P+B-1)                intra-chassis links, one per other blade
//	ports [P+B-1, P+B-1+(C-1)·Mult) inter-chassis links, Mult consecutive
//	                                ports per other chassis
//	ports [gBase, gBase+H)          global ports; slot layout as in Dragonfly
//
// Intra-group routing is dimension order (blade first, then chassis),
// acyclic as in DragonflyFB, so the canonical 3-VC ladder applies. The
// chassis dimension's parallel links are spread per packet through
// LocalRouteSeeded (the routing layer's optional bundle hook);
// LocalRoute deterministically uses the first cable of each bundle.
type Aries struct {
	*Graph

	// P is the number of terminals per router.
	P int
	// B is the number of blades (routers) per chassis.
	B int
	// C is the number of chassis per group.
	C int
	// Mult is the number of parallel links per inter-chassis blade pair.
	Mult int
	// H is the number of global channels per router.
	H int
	// G is the number of groups.
	G int

	wire  gwire
	gBase int // first global port
}

// NewAries builds the cascade machine. groups must be at least 1 and at
// most B·C·H+1 (so every group pair gets a direct channel); groups = 1
// builds a single isolated group with no global ports.
func NewAries(p, blades, chassis, mult, h, groups int) (*Aries, error) {
	if p < 1 || blades < 1 || chassis < 1 || mult < 1 || h < 1 {
		return nil, fmt.Errorf("topology: aries parameters must be positive (p=%d blades=%d chassis=%d bundle=%d h=%d)", p, blades, chassis, mult, h)
	}
	a := blades * chassis
	maxGroups := a*h + 1
	if groups < 1 {
		return nil, fmt.Errorf("topology: aries needs at least 1 group (got %d)", groups)
	}
	if groups > maxGroups {
		return nil, fmt.Errorf("topology: aries with %d routers/group and h=%d supports at most %d groups (got %d)", a, h, maxGroups, groups)
	}
	var wire gwire
	if groups > 1 {
		var err error
		wire, err = newGwire(groups, a*h)
		if err != nil {
			return nil, err
		}
	}
	d := &Aries{
		P: p, B: blades, C: chassis, Mult: mult, H: h, G: groups,
		wire:  wire,
		gBase: p + (blades - 1) + (chassis-1)*mult,
	}

	routers := a * groups
	g := NewGraph(routers, p*routers)
	radix := d.gBase + h
	for r := 0; r < routers; r++ {
		grp, idx := r/a, r%a
		blade, ch := idx%blades, idx/blades
		ports := make([]Port, 0, radix)
		for t := 0; t < p; t++ {
			term := r*p + t
			ports = append(ports, Port{Class: ClassTerminal, PeerRouter: -1, PeerPort: -1, Terminal: term})
			g.termRouter[term] = r
			g.termPort[term] = t
		}
		for v := 0; v < blades; v++ {
			if v == blade {
				continue
			}
			ports = append(ports, Port{
				Class:      ClassLocal,
				PeerRouter: grp*a + ch*blades + v,
				PeerPort:   d.bladePort(v, blade),
				Terminal:   -1,
			})
		}
		for v := 0; v < chassis; v++ {
			if v == ch {
				continue
			}
			for k := 0; k < mult; k++ {
				ports = append(ports, Port{
					Class:      ClassLocal,
					PeerRouter: grp*a + v*blades + blade,
					PeerPort:   d.chassisPort(v, ch, k),
					Terminal:   -1,
				})
			}
		}
		for jg := 0; groups > 1 && jg < h; jg++ {
			c := idx*h + jg
			dst, back := wire.peer(grp, c)
			ports = append(ports, Port{
				Class:      ClassGlobal,
				PeerRouter: dst*a + back/h,
				PeerPort:   d.gBase + back%h,
				Terminal:   -1,
			})
		}
		g.ports[r] = ports
	}
	d.Graph = g
	if err := g.Validate(); err != nil {
		return nil, fmt.Errorf("topology: aries construction bug: %w", err)
	}
	return d, nil
}

// bladePort returns the intra-chassis port on the router at blade
// coordinate own reaching blade peer.
func (d *Aries) bladePort(own, peer int) int {
	if peer < own {
		return d.P + peer
	}
	return d.P + peer - 1
}

// chassisPort returns the k-th inter-chassis port on the router at
// chassis coordinate own reaching chassis peer.
func (d *Aries) chassisPort(own, peer, k int) int {
	vi := peer
	if peer > own {
		vi = peer - 1
	}
	return d.P + d.B - 1 + vi*d.Mult + k
}

// Groups returns the group count.
func (d *Aries) Groups() int { return d.G }

// Nodes returns the terminal count N = g·B·C·p.
func (d *Aries) Nodes() int { return d.G * d.B * d.C * d.P }

// RoutersPerGroup returns B·C.
func (d *Aries) RoutersPerGroup() int { return d.B * d.C }

// TerminalsPerGroup returns B·C·p.
func (d *Aries) TerminalsPerGroup() int { return d.B * d.C * d.P }

// RouterGroup returns the group of router r.
func (d *Aries) RouterGroup(r int) int { return r / (d.B * d.C) }

// RouterIndex returns the in-group index of router r.
func (d *Aries) RouterIndex(r int) int { return r % (d.B * d.C) }

// GroupRouter returns the router with in-group index idx of group grp.
func (d *Aries) GroupRouter(grp, idx int) int { return grp*(d.B*d.C) + idx }

// TerminalGroup returns the group of terminal t.
func (d *Aries) TerminalGroup(t int) int { return d.RouterGroup(d.TerminalRouter(t)) }

// RouterRadix returns the uniform router radix.
func (d *Aries) RouterRadix() int {
	if d.G > 1 {
		return d.gBase + d.H
	}
	return d.gBase
}

// LocalRoute returns the next-hop local port from in-group index from
// towards to: dimension order, blade first (single cable), then chassis
// (first cable of the bundle; LocalRouteSeeded spreads over it).
func (d *Aries) LocalRoute(from, to int) int {
	fb, fc := from%d.B, from/d.B
	tb, tc := to%d.B, to/d.B
	if fb != tb {
		return d.bladePort(fb, tb)
	}
	if fc != tc {
		return d.chassisPort(fc, tc, 0)
	}
	return -1
}

// LocalRouteSeeded is LocalRoute with the inter-chassis bundle spread:
// the seed picks one of the Mult parallel cables of the chassis hop
// uniformly and deterministically per packet. The routing layer detects
// this optional method and uses it in place of LocalRoute, so bundle
// cables load-balance without any per-packet state.
func (d *Aries) LocalRouteSeeded(from, to int, seed uint64) int {
	fb, fc := from%d.B, from/d.B
	tb, tc := to%d.B, to/d.B
	if fb != tb {
		return d.bladePort(fb, tb)
	}
	if fc != tc {
		k := 0
		if d.Mult > 1 {
			k = int(mix64(seed^0xa0761d6478bd642f) % uint64(d.Mult))
		}
		return d.chassisPort(fc, tc, k)
	}
	return -1
}

// mix64 is the SplitMix64 finalizer, duplicated here (from
// internal/sim) so the topology package stays dependency-free.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// LocalHops returns the intra-group distance: the number of differing
// coordinates (blade, chassis).
func (d *Aries) LocalHops(from, to int) int {
	n := 0
	if from%d.B != to%d.B {
		n++
	}
	if from/d.B != to/d.B {
		n++
	}
	return n
}

// GlobalPort returns the port of global-channel slot c on its owning
// router.
func (d *Aries) GlobalPort(c int) int { return d.gBase + c%d.H }

// SlotRouterIndex returns the in-group index of the router owning slot c.
func (d *Aries) SlotRouterIndex(c int) int { return c / d.H }

// SlotTarget returns the group reached by slot c of group grp.
func (d *Aries) SlotTarget(grp, c int) int { return d.wire.target(grp, c) }

// ChannelsBetween returns the global channels connecting two groups —
// the inter-group trunk width, ⌊B·C·H/(g-1)⌋ or one more.
func (d *Aries) ChannelsBetween(ga, gb int) int { return d.wire.between(ga, gb) }

// GlobalSlot returns the m-th slot of grp leading to dst.
func (d *Aries) GlobalSlot(grp, dst, m int) int { return d.wire.slotFor(grp, dst, m) }

// GlobalEntryRouter returns the router of group dst reached via slot c
// of group grp, or -1 if the slot leads elsewhere.
func (d *Aries) GlobalEntryRouter(grp, dst, c int) int {
	tgt, back := d.wire.peer(grp, c)
	if tgt != dst {
		return -1
	}
	return dst*(d.B*d.C) + back/d.H
}

// MinVCs returns the virtual channels the routing ladder needs: 3 —
// dimension-order local routing is acyclic exactly as in DragonflyFB,
// and the parallel bundle cables are distinct channels of one
// dependency edge, adding no cycles.
func (d *Aries) MinVCs() int { return 3 }

// Describe returns the analytic structure descriptor.
func (d *Aries) Describe() Descriptor {
	a := d.B * d.C
	global := 0
	if d.G > 1 {
		global = d.G * a * d.H / 2
	}
	return Descriptor{
		Family:            "aries",
		Params:            map[string]int{"p": d.P, "blades": d.B, "chassis": d.C, "bundle": d.Mult, "h": d.H, "g": d.G},
		Groups:            d.G,
		RoutersPerGroup:   a,
		TerminalsPerGroup: a * d.P,
		Routers:           a * d.G,
		Terminals:         d.Nodes(),
		RouterRadix:       d.RouterRadix(),
		TerminalChannels:  d.Nodes(),
		LocalChannels:     d.G * (d.C*d.B*(d.B-1)/2 + d.B*d.C*(d.C-1)/2*d.Mult),
		GlobalChannels:    global,
	}
}

// String describes the configuration.
func (d *Aries) String() string {
	return fmt.Sprintf("aries(p=%d blades=%d chassis=%d bundle=%d h=%d g=%d N=%d k=%d)",
		d.P, d.B, d.C, d.Mult, d.H, d.G, d.Nodes(), d.RouterRadix())
}
