package topology

import "fmt"

// FoldedClos describes a folded-Clos (fat-tree) network analytically:
// the baseline the paper reports a 52% cost saving against (Sections 1,
// 5). Terminals hang off the bottom level; every level above doubles the
// path diversity. With radix-k routers, each router uses k/2 ports down
// and k/2 ports up (the top level uses all k ports down), so an n-level
// folded Clos supports N = 2*(k/2)^n terminals at full bisection
// bandwidth.
//
// Only the inventory needed by the cost model is computed: router count,
// channel count per level gap, and how many of those channels are
// inter-cabinet (levels above the first) versus intra-cabinet.
type FoldedClos struct {
	// Terminals is the number of nodes N.
	Terminals int
	// Radix is the router radix k.
	Radix int
	// Levels is the number of router levels.
	Levels int
}

// NewFoldedClos sizes a folded Clos with radix-k routers for at least n
// terminals, using the minimum number of levels.
func NewFoldedClos(n, k int) (*FoldedClos, error) {
	if k < 4 || k%2 != 0 {
		return nil, fmt.Errorf("topology: folded Clos needs an even radix >= 4 (got %d)", k)
	}
	if n < 1 {
		return nil, fmt.Errorf("topology: folded Clos needs at least one terminal (got %d)", n)
	}
	levels := 1
	for cap := k; cap < n; cap *= k / 2 {
		levels++
	}
	return &FoldedClos{Terminals: n, Radix: k, Levels: levels}, nil
}

// MaxNodes returns the terminal capacity of the sized network.
func (c *FoldedClos) MaxNodes() int {
	cap := c.Radix
	for l := 1; l < c.Levels; l++ {
		cap *= c.Radix / 2
	}
	return cap
}

// Routers returns the total router count: N/(k/2) routers at each of the
// lower levels and N/k at the top (which uses all ports downward).
func (c *FoldedClos) Routers() int {
	if c.Levels == 1 {
		return (c.Terminals + c.Radix - 1) / c.Radix
	}
	per := (c.Terminals + c.Radix/2 - 1) / (c.Radix / 2)
	return per*(c.Levels-1) + (c.Terminals+c.Radix-1)/c.Radix
}

// LevelChannels returns the number of router-to-router channels between
// level l and level l+1 (0-based; level 0 is the terminal-facing level).
// Full bisection requires N channels across every level gap.
func (c *FoldedClos) LevelChannels(l int) int {
	if l < 0 || l >= c.Levels-1 {
		return 0
	}
	return c.Terminals
}

// Channels returns the total router-to-router channel count.
func (c *FoldedClos) Channels() int {
	return c.Terminals * (c.Levels - 1)
}

// String describes the configuration.
func (c *FoldedClos) String() string {
	return fmt.Sprintf("folded-clos(N=%d k=%d levels=%d)", c.Terminals, c.Radix, c.Levels)
}

// Torus3D describes a 3-D torus analytically: the low-radix baseline of
// Figure 19. Each router has one terminal and six inter-router ports
// (±x, ±y, ±z); a folded layout keeps every cable short at the price of
// 3N cables and a large diameter.
type Torus3D struct {
	// X, Y, Z are the per-dimension router counts.
	X, Y, Z int
}

// NewTorus3D sizes a near-cubic 3-D torus for at least n nodes.
func NewTorus3D(n int) (*Torus3D, error) {
	if n < 8 {
		return nil, fmt.Errorf("topology: 3-D torus needs at least 8 nodes (got %d)", n)
	}
	// Near-cubic dimensions, each at least 2.
	x := 2
	for x*x*x < n {
		x++
	}
	t := &Torus3D{X: x, Y: x, Z: x}
	// Shrink trailing dimensions while capacity holds, for a tighter fit.
	for t.X > 2 && (t.X-1)*t.Y*t.Z >= n {
		t.X--
	}
	for t.Y > 2 && t.X*(t.Y-1)*t.Z >= n {
		t.Y--
	}
	for t.Z > 2 && t.X*t.Y*(t.Z-1) >= n {
		t.Z--
	}
	return t, nil
}

// Nodes returns the node (and router) count.
func (t *Torus3D) Nodes() int { return t.X * t.Y * t.Z }

// Channels returns the number of bidirectional inter-router channels, 3
// per node.
func (t *Torus3D) Channels() int { return 3 * t.Nodes() }

// Diameter returns the hop diameter: sum of half of each dimension.
func (t *Torus3D) Diameter() int { return t.X/2 + t.Y/2 + t.Z/2 }

// AverageHops returns the mean shortest-path hop count, dim/4 per
// dimension for even dimensions (the standard torus result).
func (t *Torus3D) AverageHops() float64 {
	avg := func(d int) float64 {
		// Mean ring distance over all offsets 0..d-1.
		total := 0
		for o := 0; o < d; o++ {
			f := o
			if d-o < f {
				f = d - o
			}
			total += f
		}
		return float64(total) / float64(d)
	}
	return avg(t.X) + avg(t.Y) + avg(t.Z)
}

// String describes the configuration.
func (t *Torus3D) String() string {
	return fmt.Sprintf("torus3d(%dx%dx%d N=%d)", t.X, t.Y, t.Z, t.Nodes())
}
