package topology

import (
	"fmt"
	"testing"
)

// The topology-contract conformance suite: every Machine in the
// registry — and any Machine a fuzzed builder produces — must satisfy
// the structural contract the simulator, the routing layer, the fault
// planner and the shard partitioner all lean on. One suite, run
// against every implementation, so a new topology cannot pass its own
// unit tests while quietly violating an invariant only some other
// layer depends on.

// conformanceMachines returns one modest instance per registered
// family, built through the registry (so the Build path itself is
// under test), plus a fault-wrapped Degraded view of the canonical
// dragonfly with an empty plan (which must answer every structural
// query like the pristine machine).
func conformanceMachines(t *testing.T) map[string]Machine {
	t.Helper()
	specs := map[string]map[string]int{
		"dragonfly":     {"p": 2, "a": 4, "h": 2},
		"dragonflyfb":   {"p": 2, "d1": 2, "d2": 2, "h": 2},
		"dragonflyplus": {"p": 2, "leaves": 3, "spines": 2, "h": 2},
		"swapped":       {"p": 2, "k": 4, "m": 3},
		"aries":         {"p": 2, "blades": 3, "chassis": 2, "bundle": 2, "h": 2, "g": 4},
	}
	out := map[string]Machine{}
	for fam, params := range specs {
		m, err := Build(fam, params)
		if err != nil {
			t.Fatalf("Build(%s, %v): %v", fam, params, err)
		}
		out[fam] = m
	}
	d, err := NewDragonfly(2, 4, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	out["degraded(empty plan)"] = NewDegraded(d, emptyFaultView{})
	return out
}

// emptyFaultView is the all-alive FaultView: wrapping with it must not
// change any structural answer.
type emptyFaultView struct{}

func (emptyFaultView) RouterDown(int) bool  { return false }
func (emptyFaultView) PortDown(int, int) bool { return false }

func TestConformance(t *testing.T) {
	for name, m := range conformanceMachines(t) {
		t.Run(name, func(t *testing.T) { checkMachine(t, m) })
	}
}

// checkMachine runs the full conformance suite against one Machine.
// It is deliberately exhaustive rather than sampled: the machines are
// small, and a single mis-wired port is exactly the kind of bug
// sampling misses.
func checkMachine(t *testing.T, m Machine) {
	t.Helper()
	checkPortBijectivity(t, m)
	checkCensusMatchesDescriptor(t, m)
	checkGroupNumbering(t, m)
	checkLocalOracle(t, m)
	checkGlobalOracle(t, m)
	checkReachability(t, m)
	if m.MinVCs() < 1 {
		t.Errorf("MinVCs() = %d, want >= 1", m.MinVCs())
	}
}

// checkPortBijectivity: the wiring table is an involution. Every
// non-terminal port's peer names this port as its own peer; every
// terminal port carries the terminal that TerminalRouter/TerminalPort
// claim sits there; every terminal appears exactly once.
func checkPortBijectivity(t *testing.T, m Machine) {
	t.Helper()
	seen := make([]int, m.Terminals())
	for r := 0; r < m.Routers(); r++ {
		for p := 0; p < m.Radix(r); p++ {
			pt := m.Port(r, p)
			if pt.Class == ClassTerminal {
				if pt.Terminal < 0 || pt.Terminal >= m.Terminals() {
					t.Fatalf("router %d port %d: terminal %d out of range", r, p, pt.Terminal)
				}
				seen[pt.Terminal]++
				if m.TerminalRouter(pt.Terminal) != r || m.TerminalPort(pt.Terminal) != p {
					t.Errorf("terminal %d attached at router %d port %d but TerminalRouter/Port say %d/%d",
						pt.Terminal, r, p, m.TerminalRouter(pt.Terminal), m.TerminalPort(pt.Terminal))
				}
				continue
			}
			if pt.PeerRouter < 0 || pt.PeerRouter >= m.Routers() {
				t.Fatalf("router %d port %d: peer router %d out of range", r, p, pt.PeerRouter)
			}
			back := m.Port(pt.PeerRouter, pt.PeerPort)
			if back.PeerRouter != r || back.PeerPort != p {
				t.Errorf("router %d port %d <-> router %d port %d is not an involution (reverse names %d/%d)",
					r, p, pt.PeerRouter, pt.PeerPort, back.PeerRouter, back.PeerPort)
			}
			if back.Class != pt.Class {
				t.Errorf("link %d/%d <-> %d/%d has class %v on one side, %v on the other",
					r, p, pt.PeerRouter, pt.PeerPort, pt.Class, back.Class)
			}
			if pt.Class == ClassLocal && m.RouterGroup(pt.PeerRouter) != m.RouterGroup(r) {
				t.Errorf("local link %d/%d crosses groups %d -> %d", r, p, m.RouterGroup(r), m.RouterGroup(pt.PeerRouter))
			}
			if pt.Class == ClassGlobal && m.RouterGroup(pt.PeerRouter) == m.RouterGroup(r) {
				t.Errorf("global link %d/%d stays inside group %d", r, p, m.RouterGroup(r))
			}
		}
	}
	for term, n := range seen {
		if n != 1 {
			t.Errorf("terminal %d attached to %d ports, want exactly 1", term, n)
		}
	}
}

// checkCensusMatchesDescriptor: the analytic Descriptor (closed forms
// over the build parameters) must agree with a census of the actual
// wiring table. A builder bug shows up here as a descriptor mismatch
// instead of a silent mis-wiring.
func checkCensusMatchesDescriptor(t *testing.T, m Machine) {
	t.Helper()
	desc := m.Describe()
	if desc.Routers != m.Routers() || desc.Terminals != m.Terminals() || desc.Groups != m.Groups() {
		t.Errorf("descriptor sizes %d routers/%d terminals/%d groups, machine says %d/%d/%d",
			desc.Routers, desc.Terminals, desc.Groups, m.Routers(), m.Terminals(), m.Groups())
	}
	if desc.Routers != desc.Groups*desc.RoutersPerGroup || desc.Terminals != desc.Groups*desc.TerminalsPerGroup {
		t.Errorf("descriptor is not group-regular: %d groups x %d routers, %d groups x %d terminals vs totals %d/%d",
			desc.Groups, desc.RoutersPerGroup, desc.Groups, desc.TerminalsPerGroup, desc.Routers, desc.Terminals)
	}
	term, local, global := m.CountChannels()
	if term != desc.TerminalChannels || local != desc.LocalChannels || global != desc.GlobalChannels {
		t.Errorf("channel census %d/%d/%d (terminal/local/global), descriptor claims %d/%d/%d",
			term, local, global, desc.TerminalChannels, desc.LocalChannels, desc.GlobalChannels)
	}
	maxRadix := 0
	for r := 0; r < m.Routers(); r++ {
		if k := m.Radix(r); k > maxRadix {
			maxRadix = k
		}
	}
	if desc.RouterRadix != maxRadix || m.RouterRadix() != maxRadix {
		t.Errorf("RouterRadix %d (descriptor %d), census max %d", m.RouterRadix(), desc.RouterRadix, maxRadix)
	}
	if desc.Family != "" {
		rebuilt, err := Build(desc.Family, desc.Params)
		if err != nil {
			t.Fatalf("Build(%s, %v) from the machine's own descriptor: %v", desc.Family, desc.Params, err)
		}
		if rd := rebuilt.Describe(); fmt.Sprintf("%+v", descWithoutParams(rd)) != fmt.Sprintf("%+v", descWithoutParams(desc)) {
			t.Errorf("descriptor does not round-trip through Build: %+v vs %+v", rd, desc)
		}
	}
}

// descWithoutParams compares descriptors ignoring the params map
// (maps are not comparable with ==).
func descWithoutParams(d Descriptor) Descriptor {
	d.Params = nil
	return d
}

// checkGroupNumbering: router and terminal numbering is group-major
// and contiguous — the invariant the shard partitioner and the grouped
// traffic patterns assume.
func checkGroupNumbering(t *testing.T, m Machine) {
	t.Helper()
	a := m.RoutersPerGroup()
	for r := 0; r < m.Routers(); r++ {
		grp, idx := m.RouterGroup(r), m.RouterIndex(r)
		if grp != r/a || idx != r%a {
			t.Errorf("router %d: group %d index %d, want group-major %d/%d", r, grp, idx, r/a, r%a)
		}
		if m.GroupRouter(grp, idx) != r {
			t.Errorf("GroupRouter(%d, %d) = %d, want %d", grp, idx, m.GroupRouter(grp, idx), r)
		}
	}
	per := m.TerminalsPerGroup()
	for term := 0; term < m.Terminals(); term++ {
		if m.TerminalGroup(term) != term/per {
			t.Errorf("terminal %d: group %d, want contiguous group-major %d", term, m.TerminalGroup(term), term/per)
		}
		if rg := m.RouterGroup(m.TerminalRouter(term)); rg != term/per {
			t.Errorf("terminal %d sits on a router of group %d but TerminalGroup says %d", term, rg, term/per)
		}
	}
}

// checkLocalOracle: from every in-group router pair, following
// LocalRoute hop by hop reaches the destination in exactly LocalHops
// steps, over live local ports of the wiring table.
func checkLocalOracle(t *testing.T, m Machine) {
	t.Helper()
	a := m.RoutersPerGroup()
	for from := 0; from < a; from++ {
		for to := 0; to < a; to++ {
			if from == to {
				if p := m.LocalRoute(from, to); p != -1 {
					t.Errorf("LocalRoute(%d, %d) = %d, want -1 for self", from, to, p)
				}
				if h := m.LocalHops(from, to); h != 0 {
					t.Errorf("LocalHops(%d, %d) = %d, want 0", from, to, h)
				}
				continue
			}
			cur, hops := from, 0
			for cur != to {
				port := m.LocalRoute(cur, to)
				if port < 0 {
					t.Fatalf("LocalRoute(%d, %d) = %d mid-walk at %d", from, to, port, cur)
				}
				r := m.GroupRouter(0, cur)
				if port >= m.Radix(r) {
					t.Fatalf("LocalRoute(%d, %d) = %d, beyond router %d's radix %d", cur, to, port, r, m.Radix(r))
				}
				pt := m.Port(r, port)
				if pt.Class != ClassLocal {
					t.Fatalf("LocalRoute(%d, %d) = %d is a %v port, want local", cur, to, port, pt.Class)
				}
				cur = m.RouterIndex(pt.PeerRouter)
				if hops++; hops > a {
					t.Fatalf("LocalRoute walk %d -> %d did not converge within %d hops", from, to, a)
				}
			}
			if want := m.LocalHops(from, to); hops != want {
				t.Errorf("walk %d -> %d took %d hops, LocalHops says %d", from, to, hops, want)
			}
		}
	}
}

// checkGlobalOracle: the slot arithmetic agrees with the wiring. For
// every ordered group pair and every parallel channel between them,
// GlobalSlot names a slot whose router and port (SlotRouterIndex /
// GlobalPort) carry a global link into the destination group, landing
// exactly on GlobalEntryRouter.
func checkGlobalOracle(t *testing.T, m Machine) {
	t.Helper()
	g := m.Groups()
	for ga := 0; ga < g; ga++ {
		for gb := 0; gb < g; gb++ {
			if ga == gb {
				continue
			}
			n := m.ChannelsBetween(ga, gb)
			if n < 1 {
				t.Fatalf("ChannelsBetween(%d, %d) = %d, want >= 1 (one global hop must suffice)", ga, gb, n)
			}
			if back := m.ChannelsBetween(gb, ga); back != n {
				t.Errorf("ChannelsBetween asymmetric: %d->%d has %d, %d->%d has %d", ga, gb, n, gb, ga, back)
			}
			for c := 0; c < n; c++ {
				slot := m.GlobalSlot(ga, gb, c)
				r := m.GroupRouter(ga, m.SlotRouterIndex(slot))
				port := m.GlobalPort(slot)
				if port >= m.Radix(r) {
					t.Fatalf("slot %d of group %d: port %d beyond router %d's radix %d", slot, ga, port, r, m.Radix(r))
				}
				pt := m.Port(r, port)
				if pt.Class != ClassGlobal {
					t.Fatalf("slot %d of group %d: router %d port %d is %v, want global", slot, ga, r, port, pt.Class)
				}
				if m.RouterGroup(pt.PeerRouter) != gb {
					t.Errorf("GlobalSlot(%d, %d, %d): channel lands in group %d", ga, gb, c, m.RouterGroup(pt.PeerRouter))
				}
				if entry := m.GlobalEntryRouter(ga, gb, slot); entry != pt.PeerRouter {
					t.Errorf("GlobalEntryRouter(%d, %d, slot %d) = %d, wiring says %d", ga, gb, slot, entry, pt.PeerRouter)
				}
			}
		}
	}
}

// checkReachability: the machine is connected with a finite diameter —
// Diameter BFSes the actual wiring, so this catches isolated routers a
// per-port check cannot.
func checkReachability(t *testing.T, m Machine) {
	t.Helper()
	g, ok := graphOf(m)
	if !ok {
		t.Fatalf("machine %v does not expose its Graph", m)
	}
	diam, err := g.Diameter()
	if err != nil {
		t.Fatalf("Diameter: %v", err)
	}
	if m.Routers() > 1 && diam < 1 {
		t.Errorf("diameter %d over %d routers, want >= 1", diam, m.Routers())
	}
}

// graphOf digs the wiring Graph out of a Machine for the BFS check.
func graphOf(m Machine) (*Graph, bool) {
	switch v := m.(type) {
	case *Dragonfly:
		return v.Graph, true
	case *DragonflyFB:
		return v.Graph, true
	case *DragonflyPlus:
		return v.Graph, true
	case *Swapped:
		return v.Graph, true
	case *Aries:
		return v.Graph, true
	case *Degraded:
		g, ok := graphOf(v.Machine)
		return g, ok
	}
	return nil, false
}

// FuzzSwappedBuilder drives NewSwapped over its parameter space: any
// build that succeeds must pass the full conformance suite, and no
// build may panic.
func FuzzSwappedBuilder(f *testing.F) {
	f.Add(2, 4, 0)
	f.Add(1, 8, 8)
	f.Add(2, 5, 3)
	f.Add(4, 16, 12)
	f.Fuzz(func(t *testing.T, p, k, m int) {
		if p < 0 || k < 0 || m < 0 || p > 8 || k > 32 || m > 32 {
			t.Skip("out of the supported envelope")
		}
		sw, err := NewSwapped(p, k, m)
		if err != nil {
			return // rejected cleanly: that's a pass
		}
		checkMachine(t, sw)
	})
}

// FuzzDragonflyPlusBuilder does the same for NewDragonflyPlus.
func FuzzDragonflyPlusBuilder(f *testing.F) {
	f.Add(2, 4, 4, 2, 0)
	f.Add(1, 3, 2, 2, 4)
	f.Add(2, 2, 3, 1, 3)
	f.Fuzz(func(t *testing.T, p, leaves, spines, h, groups int) {
		if p < 0 || leaves < 0 || spines < 0 || h < 0 || groups < 0 ||
			p > 8 || leaves > 12 || spines > 12 || h > 8 || groups > 24 {
			t.Skip("out of the supported envelope")
		}
		dp, err := NewDragonflyPlus(p, leaves, spines, h, groups)
		if err != nil {
			return
		}
		checkMachine(t, dp)
	})
}
