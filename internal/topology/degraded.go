package topology

// FaultView is the read-only interface a fault plan (internal/fault)
// exposes to the topology layer: which routers and which individual
// ports a fault scenario has taken down. The topology package defines
// the interface rather than importing the fault package so the
// dependency points outward (fault → topology, never back).
type FaultView interface {
	// RouterDown reports that router r has failed entirely.
	RouterDown(r int) bool
	// PortDown reports that the channel attached at (router, port) has
	// failed on this side. A channel is dead when either side is down.
	PortDown(r, port int) bool
}

// Degraded is a fault-aware view over any Machine: the pristine wiring
// table plus precomputed liveness of every port, the surviving global
// channels of every group pair, and group-level reachability over live
// global channels. It implements the same structural interface as the
// underlying machine (by embedding), so routing algorithms and the
// simulator can consume it in place of the pristine topology; both
// detect the degradation through the Alive method.
//
// The view is immutable once built, like the Graph it wraps: one
// Degraded corresponds to one fault scenario.
type Degraded struct {
	Machine

	portDead   [][]bool // [router][port], true when either channel end is down
	routerDown []bool
	termAlive  []bool
	aliveTerms int

	// liveSlots[grp][dst] lists the surviving global-channel slots from
	// group grp to group dst in ascending slot order — the same order
	// GlobalSlot enumerates them — so an empty fault plan makes
	// LiveGlobalSlot(grp, dst, m) == GlobalSlot(grp, dst, m) exactly.
	liveSlots [][][]int
	reach     [][]bool // group-level reachability over live global channels
	connected bool

	deadRouters, deadGlobal, deadLocal, deadTerm int
}

// NewDegraded builds the degraded view of d under fault plan fv. A nil
// fv yields a fully alive view (useful for uniform call sites).
func NewDegraded(d Machine, fv FaultView) *Degraded {
	dg := &Degraded{Machine: d}
	n := d.Routers()
	dg.routerDown = make([]bool, n)
	dg.portDead = make([][]bool, n)
	for r := 0; r < n; r++ {
		dg.portDead[r] = make([]bool, d.Radix(r))
		if fv != nil && fv.RouterDown(r) {
			dg.routerDown[r] = true
			dg.deadRouters++
		}
	}
	// A port is dead when its own side or the peer side is down (port
	// failed or whole router failed). Count each bidirectional channel
	// once, from its lower (router, port) end.
	for r := 0; r < n; r++ {
		for p := 0; p < d.Radix(r); p++ {
			pt := d.Port(r, p)
			down := dg.routerDown[r] || (fv != nil && fv.PortDown(r, p))
			if pt.Class != ClassTerminal {
				down = down || dg.routerDown[pt.PeerRouter] || (fv != nil && fv.PortDown(pt.PeerRouter, pt.PeerPort))
			}
			if !down {
				continue
			}
			dg.portDead[r][p] = true
			switch {
			case pt.Class == ClassTerminal:
				dg.deadTerm++
			case pt.PeerRouter > r || (pt.PeerRouter == r && pt.PeerPort > p):
				if pt.Class == ClassGlobal {
					dg.deadGlobal++
				} else {
					dg.deadLocal++
				}
			}
		}
	}
	dg.termAlive = make([]bool, d.Terminals())
	for t := range dg.termAlive {
		dg.termAlive[t] = !dg.portDead[d.TerminalRouter(t)][d.TerminalPort(t)]
		if dg.termAlive[t] {
			dg.aliveTerms++
		}
	}
	dg.buildLiveSlots()
	dg.buildReachability()
	dg.connected = dg.computeConnected()
	return dg
}

// buildLiveSlots enumerates, per ordered group pair, the global-channel
// slots whose channel survived, in ascending slot order.
func (dg *Degraded) buildLiveSlots() {
	d := dg.Machine
	g := d.Groups()
	dg.liveSlots = make([][][]int, g)
	for ga := 0; ga < g; ga++ {
		dg.liveSlots[ga] = make([][]int, g)
		for gb := 0; gb < g; gb++ {
			if ga == gb {
				continue
			}
			nch := d.ChannelsBetween(ga, gb)
			var live []int
			for m := 0; m < nch; m++ {
				slot := d.GlobalSlot(ga, gb, m)
				r := d.GroupRouter(ga, d.SlotRouterIndex(slot))
				if !dg.portDead[r][d.GlobalPort(slot)] {
					live = append(live, slot)
				}
			}
			dg.liveSlots[ga][gb] = live
		}
	}
}

// buildReachability runs one BFS per group over the group graph whose
// edges are pairs with at least one live global channel.
func (dg *Degraded) buildReachability() {
	g := dg.Groups()
	dg.reach = make([][]bool, g)
	for src := 0; src < g; src++ {
		seen := make([]bool, g)
		seen[src] = true
		queue := []int{src}
		for len(queue) > 0 {
			ga := queue[0]
			queue = queue[1:]
			for gb := 0; gb < g; gb++ {
				if !seen[gb] && len(dg.liveSlots[ga][gb]) > 0 {
					seen[gb] = true
					queue = append(queue, gb)
				}
			}
		}
		dg.reach[src] = seen
	}
}

// computeConnected reports whether every live router can reach every
// other live router over live channels (router-level BFS). It is an
// upper bound on what the routing algorithms — restricted to minimal
// paths and single-detour Valiant paths — can actually use, but a
// disconnected report is definitive: some traffic must drop.
func (dg *Degraded) computeConnected() bool {
	n := dg.Routers()
	start := -1
	for r := 0; r < n; r++ {
		if !dg.routerDown[r] {
			start = r
			break
		}
	}
	if start < 0 {
		return false
	}
	seen := make([]bool, n)
	seen[start] = true
	queue := []int{start}
	count := 1
	for len(queue) > 0 {
		r := queue[0]
		queue = queue[1:]
		for p := 0; p < dg.Radix(r); p++ {
			pt := dg.Port(r, p)
			if pt.Class == ClassTerminal || dg.portDead[r][p] || seen[pt.PeerRouter] {
				continue
			}
			seen[pt.PeerRouter] = true
			queue = append(queue, pt.PeerRouter)
			count++
		}
	}
	for r := 0; r < n; r++ {
		if !dg.routerDown[r] && !seen[r] {
			return false
		}
	}
	return count > 0
}

// Alive reports whether the channel attached at (router, port) can carry
// flits: neither side's port nor router has failed. It implements
// sim.DegradedTopology.
func (dg *Degraded) Alive(router, port int) bool { return !dg.portDead[router][port] }

// RouterDown reports that router r failed entirely.
func (dg *Degraded) RouterDown(r int) bool { return dg.routerDown[r] }

// TerminalDown reports that terminal t is unreachable: its terminal
// channel or its router failed.
func (dg *Degraded) TerminalDown(t int) bool { return !dg.termAlive[t] }

// AliveTerminals returns the number of terminals still attached.
func (dg *Degraded) AliveTerminals() int { return dg.aliveTerms }

// LiveChannels returns the number of surviving global channels from
// group ga to group gb (symmetric, like the wiring).
func (dg *Degraded) LiveChannels(ga, gb int) int {
	if ga == gb {
		return 0
	}
	return len(dg.liveSlots[ga][gb])
}

// LiveGlobalSlot returns the m-th surviving global-channel slot from
// group grp to group dst, with m wrapped into the live count, or -1
// when the pair has no surviving channel (or grp == dst). With an empty
// fault plan it equals GlobalSlot(grp, dst, m) for every m.
func (dg *Degraded) LiveGlobalSlot(grp, dst, m int) int {
	if grp == dst {
		return -1
	}
	live := dg.liveSlots[grp][dst]
	if len(live) == 0 {
		return -1
	}
	return live[m%len(live)]
}

// GroupsReachable reports whether group gb can be reached from group ga
// over live global channels (any number of group hops).
func (dg *Degraded) GroupsReachable(ga, gb int) bool { return dg.reach[ga][gb] }

// Connected reports whether all live routers form one component over
// live channels. A false report guarantees drops; a true report still
// permits drops if the surviving paths fall outside the routing
// algorithms' minimal-plus-one-detour repertoire.
func (dg *Degraded) Connected() bool { return dg.connected }

// FaultCounts returns the number of failed routers and of dead
// bidirectional channels by class (a channel whose either end failed
// counts once; channels of failed routers are included).
func (dg *Degraded) FaultCounts() (routers, global, local, terminal int) {
	return dg.deadRouters, dg.deadGlobal, dg.deadLocal, dg.deadTerm
}

// LocalRouteSeeded forwards the optional bundle-spreading capability
// (SeededLocal) of the wrapped machine; for machines without it, it is
// exactly LocalRoute, so the routing layer may use it unconditionally
// on a degraded view without changing behaviour.
func (dg *Degraded) LocalRouteSeeded(from, to int, seed uint64) int {
	if s, ok := dg.Machine.(SeededLocal); ok {
		return s.LocalRouteSeeded(from, to, seed)
	}
	return dg.LocalRoute(from, to)
}
