package topology

import "testing"

func degTestDF(t *testing.T) *Dragonfly {
	t.Helper()
	d, err := NewDragonfly(2, 4, 2, 0) // g=9, 36 routers, 72 terminals
	if err != nil {
		t.Fatalf("NewDragonfly: %v", err)
	}
	return d
}

// fakeFault is a literal FaultView for tests.
type fakeFault struct {
	routers map[int]bool
	ports   map[[2]int]bool
}

func (f fakeFault) RouterDown(r int) bool  { return f.routers[r] }
func (f fakeFault) PortDown(r, p int) bool { return f.ports[[2]int{r, p}] }

func TestDegradedEmptyPlanIsPristine(t *testing.T) {
	d := degTestDF(t)
	dg := NewDegraded(d, nil)
	for r := 0; r < d.Routers(); r++ {
		if dg.RouterDown(r) {
			t.Fatalf("router %d down under empty plan", r)
		}
		for p := 0; p < d.Radix(r); p++ {
			if !dg.Alive(r, p) {
				t.Fatalf("port (%d,%d) dead under empty plan", r, p)
			}
		}
	}
	if dg.AliveTerminals() != d.Terminals() {
		t.Errorf("AliveTerminals = %d, want %d", dg.AliveTerminals(), d.Terminals())
	}
	if !dg.Connected() {
		t.Error("pristine network reported disconnected")
	}
	r, g, l, tm := dg.FaultCounts()
	if r+g+l+tm != 0 {
		t.Errorf("FaultCounts = (%d,%d,%d,%d), want zeros", r, g, l, tm)
	}
	// LiveGlobalSlot must match GlobalSlot exactly: routing with an empty
	// fault plan stays bit-identical to pristine routing.
	for ga := 0; ga < d.G; ga++ {
		for gb := 0; gb < d.G; gb++ {
			if ga == gb {
				continue
			}
			n := d.ChannelsBetween(ga, gb)
			if dg.LiveChannels(ga, gb) != n {
				t.Fatalf("LiveChannels(%d,%d) = %d, want %d", ga, gb, dg.LiveChannels(ga, gb), n)
			}
			for m := 0; m < n; m++ {
				if got, want := dg.LiveGlobalSlot(ga, gb, m), d.GlobalSlot(ga, gb, m); got != want {
					t.Fatalf("LiveGlobalSlot(%d,%d,%d) = %d, want GlobalSlot %d", ga, gb, m, got, want)
				}
			}
			if !dg.GroupsReachable(ga, gb) {
				t.Fatalf("groups %d,%d unreachable under empty plan", ga, gb)
			}
		}
	}
}

func TestDegradedChannelDeadBothEnds(t *testing.T) {
	d := degTestDF(t)
	// Kill the first global channel of router 0 from one side only; the
	// degraded view must see both ends dead.
	var port = -1
	for i := 0; i < d.Radix(0); i++ {
		if d.Port(0, i).Class == ClassGlobal {
			port = i
			break
		}
	}
	pt := d.Port(0, port)
	dg := NewDegraded(d, fakeFault{ports: map[[2]int]bool{{0, port}: true}})
	if dg.Alive(0, port) {
		t.Error("failed port still alive")
	}
	if dg.Alive(pt.PeerRouter, pt.PeerPort) {
		t.Error("peer end of a failed channel still alive")
	}
	if _, g, _, _ := dg.FaultCounts(); g != 1 {
		t.Errorf("dead global channels = %d, want 1", g)
	}
	ga, gb := d.RouterGroup(0), d.RouterGroup(pt.PeerRouter)
	if dg.LiveChannels(ga, gb) != d.ChannelsBetween(ga, gb)-1 {
		t.Errorf("LiveChannels(%d,%d) = %d, want %d", ga, gb, dg.LiveChannels(ga, gb), d.ChannelsBetween(ga, gb)-1)
	}
	if !dg.Connected() {
		t.Error("one dead channel disconnected the network")
	}
}

func TestDegradedRouterDownKillsEverything(t *testing.T) {
	d := degTestDF(t)
	const victim = 5
	dg := NewDegraded(d, fakeFault{routers: map[int]bool{victim: true}})
	if !dg.RouterDown(victim) {
		t.Fatal("victim not down")
	}
	for p := 0; p < d.Radix(victim); p++ {
		if dg.Alive(victim, p) {
			t.Errorf("port %d of the failed router still alive", p)
		}
	}
	// Its terminals are gone; everyone else's stay.
	for tm := 0; tm < d.Terminals(); tm++ {
		want := d.TerminalRouter(tm) != victim
		if got := !dg.TerminalDown(tm); got != want {
			t.Errorf("terminal %d alive = %v, want %v", tm, got, want)
		}
	}
	if dg.AliveTerminals() != d.Terminals()-d.P {
		t.Errorf("AliveTerminals = %d, want %d", dg.AliveTerminals(), d.Terminals()-d.P)
	}
	r, g, l, tm := dg.FaultCounts()
	if r != 1 || g != d.H || l != d.A-1 || tm != d.P {
		t.Errorf("FaultCounts = (%d,%d,%d,%d), want (1,%d,%d,%d)", r, g, l, tm, d.H, d.A-1, d.P)
	}
	// The rest of the fabric survives a single router.
	if !dg.Connected() {
		t.Error("one failed router disconnected the surviving fabric")
	}
}

func TestDegradedDisconnection(t *testing.T) {
	d := degTestDF(t)
	// Cut every global channel of group 0: its routers survive but the
	// group is unreachable, so reachability and Connected must say so.
	ports := map[[2]int]bool{}
	for idx := 0; idx < d.A; idx++ {
		r := d.GroupRouter(0, idx)
		for p := 0; p < d.Radix(r); p++ {
			if d.Port(r, p).Class == ClassGlobal {
				ports[[2]int{r, p}] = true
			}
		}
	}
	dg := NewDegraded(d, fakeFault{ports: ports})
	for gb := 1; gb < d.G; gb++ {
		if dg.GroupsReachable(0, gb) {
			t.Errorf("group 0 still reaches group %d with all its cables cut", gb)
		}
		if dg.LiveChannels(0, gb) != 0 {
			t.Errorf("LiveChannels(0,%d) = %d, want 0", gb, dg.LiveChannels(0, gb))
		}
		if dg.LiveGlobalSlot(0, gb, 0) != -1 {
			t.Errorf("LiveGlobalSlot(0,%d,0) != -1", gb)
		}
	}
	if !dg.GroupsReachable(1, 2) {
		t.Error("isolating group 0 broke reachability between other groups")
	}
	if dg.Connected() {
		t.Error("Connected() true with group 0 fully cut off")
	}
	// Terminals are still attached to their (local) routers.
	if dg.AliveTerminals() != d.Terminals() {
		t.Errorf("AliveTerminals = %d, want %d (terminal links untouched)", dg.AliveTerminals(), d.Terminals())
	}
}
