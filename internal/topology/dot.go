package topology

import (
	"fmt"
	"io"
)

// WriteDOT renders the router-to-router graph in Graphviz DOT format:
// one node per router, solid edges for local channels, bold edges for
// global channels. Terminal channels are omitted (they would dominate
// the picture without adding structure). Intended for small topologies —
// the 72-node example renders nicely; a 1K-node machine does not.
func (g *Graph) WriteDOT(w io.Writer, name string) error {
	if _, err := fmt.Fprintf(w, "graph %q {\n  layout=neato;\n  node [shape=circle fontsize=10];\n", name); err != nil {
		return err
	}
	for r := 0; r < g.Routers(); r++ {
		for i := 0; i < g.Radix(r); i++ {
			p := g.Port(r, i)
			if p.Class == ClassTerminal || p.PeerRouter < r {
				continue // each undirected edge once
			}
			if p.PeerRouter == r && p.PeerPort < i {
				continue
			}
			style := ""
			if p.Class == ClassGlobal {
				style = " [style=bold color=blue]"
			}
			if _, err := fmt.Fprintf(w, "  r%d -- r%d%s;\n", r, p.PeerRouter, style); err != nil {
				return err
			}
		}
	}
	_, err := fmt.Fprintln(w, "}")
	return err
}

// Summary describes a graph in one paragraph for inspection tools.
func (g *Graph) Summary() string {
	term, local, global := g.CountChannels()
	return fmt.Sprintf("%d routers, %d terminals; channels: %d terminal, %d local, %d global",
		g.Routers(), g.Terminals(), term, local, global)
}
