package topology

import (
	"fmt"
)

// Dragonfly is the three-level hierarchical topology of the paper
// (Section 3.1). Each router has P terminal ports, A-1 local ports that
// fully connect it to the other routers of its group, and H global ports.
// The A routers of a group collectively act as a virtual router of
// effective radix K' = A(P+H); groups are connected by an inter-group
// network that is a single dimension of a flattened butterfly (each pair
// of groups is directly connected), giving every minimal route at most
// one global channel.
//
// Port layout on every router (used by routing and by the simulator):
//
//	ports [0, P)            terminal ports
//	ports [P, P+A-1)        local ports; local port j reaches the router
//	                        whose in-group index is j if j < own index,
//	                        else j+1
//	ports [P+A-1, P+A-1+H)  global ports; the router with in-group index
//	                        i carries the group's global-channel slots
//	                        [i*H, (i+1)*H)
//
// Global-channel slots of a group are assigned to peer groups in two
// layers. With S = A*H slots per group and g groups, every ordered pair
// of groups first receives base = ⌊S/(g-1)⌋ channels (slot c < base*(g-1)
// targets group (G+1+c mod (g-1)) mod g, the classic "palmtree"
// arrangement). The remaining r = S mod (g-1) slots per group form a
// circulant graph with offsets ±1, ±2, … (plus the antipodal offset g/2
// when r is odd and g even), which keeps the wiring symmetric: the number
// of channels from G to D always equals the number from D to G. A
// configuration with r odd and g odd cannot be wired symmetrically with
// every port used and is rejected.
type Dragonfly struct {
	*Graph

	// P is the number of terminals per router.
	P int
	// A is the number of routers per group.
	A int
	// H is the number of global channels per router.
	H int
	// G is the number of groups. At most A*H+1 groups can be connected;
	// the maximum-size dragonfly has exactly one channel between each
	// pair of groups.
	G int

	wire gwire
}

// NewDragonfly builds a dragonfly with the given parameters. If groups is
// zero the maximal configuration g = a*h+1 is used. groups = 1 builds the
// degenerate single-group machine — one fully connected group with no
// global channels (every route is intra-group); it exists so routing
// algorithms and tests can exercise the no-other-group edge case.
func NewDragonfly(p, a, h, groups int) (*Dragonfly, error) {
	if p < 1 || a < 1 || h < 1 {
		return nil, fmt.Errorf("topology: dragonfly parameters must be positive (p=%d a=%d h=%d)", p, a, h)
	}
	maxGroups := a*h + 1
	if groups == 0 {
		groups = maxGroups
	}
	if groups < 1 {
		return nil, fmt.Errorf("topology: dragonfly needs at least 1 group (got %d)", groups)
	}
	if groups > maxGroups {
		return nil, fmt.Errorf("topology: dragonfly with a=%d h=%d supports at most %d groups (got %d)", a, h, maxGroups, groups)
	}
	var wire gwire
	if groups > 1 {
		var err error
		wire, err = newGwire(groups, a*h)
		if err != nil {
			return nil, err
		}
	}
	d := &Dragonfly{P: p, A: a, H: h, G: groups, wire: wire}

	routers := a * groups
	terminals := p * routers
	g := NewGraph(routers, terminals)

	// The canonical port layout is fully determined, so the port table is
	// written directly rather than via incremental AddLink calls (which
	// append ports in link-insertion order and cannot guarantee that both
	// endpoints of a channel land on their canonical port index).
	radix := p + (a - 1) + h
	for r := 0; r < routers; r++ {
		grp, idx := r/a, r%a
		ports := make([]Port, 0, radix)
		for t := 0; t < p; t++ {
			term := r*p + t
			ports = append(ports, Port{Class: ClassTerminal, PeerRouter: -1, PeerPort: -1, Terminal: term})
			g.termRouter[term] = r
			g.termPort[term] = t
		}
		for j := 0; j < a-1; j++ {
			peerIdx := j
			if j >= idx {
				peerIdx = j + 1
			}
			ports = append(ports, Port{
				Class:      ClassLocal,
				PeerRouter: grp*a + peerIdx,
				PeerPort:   d.LocalPort(peerIdx, idx),
				Terminal:   -1,
			})
		}
		for jg := 0; groups > 1 && jg < h; jg++ {
			c := idx*h + jg
			dst, back := d.peerSlot(grp, c)
			ports = append(ports, Port{
				Class:      ClassGlobal,
				PeerRouter: dst*a + back/h,
				PeerPort:   p + a - 1 + back%h,
				Terminal:   -1,
			})
		}
		g.ports[r] = ports
	}
	d.Graph = g
	if err := d.checkPortLayout(); err != nil {
		return nil, err
	}
	if err := g.Validate(); err != nil {
		return nil, fmt.Errorf("topology: dragonfly construction bug: %w", err)
	}
	return d, nil
}

// checkPortLayout verifies that the slot-ordered link insertion produced
// the canonical port layout (global port of slot c is P+A-1+c%H on router
// c/H, wired to the peer computed by peerSlot).
func (d *Dragonfly) checkPortLayout() error {
	if d.G == 1 {
		return nil // a single-group dragonfly has no global ports
	}
	for grp := 0; grp < d.G; grp++ {
		for c := 0; c < d.A*d.H; c++ {
			r := grp*d.A + c/d.H
			port := d.P + d.A - 1 + c%d.H
			pt := d.Graph.Port(r, port)
			if pt.Class != ClassGlobal {
				return fmt.Errorf("topology: dragonfly port layout bug: router %d port %d is %v, want global", r, port, pt.Class)
			}
			dst, back := d.peerSlot(grp, c)
			wantRouter := dst*d.A + back/d.H
			wantPort := d.P + d.A - 1 + back%d.H
			if pt.PeerRouter != wantRouter || pt.PeerPort != wantPort {
				return fmt.Errorf("topology: dragonfly global wiring bug: group %d slot %d connects to router %d port %d, want router %d port %d",
					grp, c, pt.PeerRouter, pt.PeerPort, wantRouter, wantPort)
			}
		}
	}
	return nil
}

// SlotTarget returns the group reached by global-channel slot c of group grp.
func (d *Dragonfly) SlotTarget(grp, c int) int { return d.wire.target(grp, c) }

// peerSlot returns the peer (group, slot) of global-channel slot c of
// group grp: the slot in the target group whose channel is the reverse
// direction of this one.
func (d *Dragonfly) peerSlot(grp, c int) (dst, back int) { return d.wire.peer(grp, c) }

// NewBalancedDragonfly builds the balanced configuration a = 2p = 2h the
// paper recommends for load-balanced channel utilisation, from the
// per-router global-channel count h. groups as in NewDragonfly.
func NewBalancedDragonfly(h, groups int) (*Dragonfly, error) {
	return NewDragonfly(h, 2*h, h, groups)
}

// ChannelsBetween returns the number of global channels directly
// connecting groups ga and gb. The wiring is symmetric, so the order of
// the arguments does not matter.
func (d *Dragonfly) ChannelsBetween(ga, gb int) int { return d.wire.between(ga, gb) }

// RouterRadix returns the router radix k = p + a + h - 1 (terminal ports
// included, as in the paper's definition).
func (d *Dragonfly) RouterRadix() int { return d.P + d.A + d.H - 1 }

// EffectiveRadix returns the radix k' = a(p+h) of the group acting as a
// virtual router.
func (d *Dragonfly) EffectiveRadix() int { return d.A * (d.P + d.H) }

// Nodes returns the number of terminals N = a·p·g.
func (d *Dragonfly) Nodes() int { return d.A * d.P * d.G }

// MaxNodes returns the size of the maximal configuration ap(ah+1) for the
// dragonfly's per-router parameters, regardless of its actual group count.
func (d *Dragonfly) MaxNodes() int { return d.A * d.P * (d.A*d.H + 1) }

// RouterGroup returns the group of router r.
func (d *Dragonfly) RouterGroup(r int) int { return r / d.A }

// RouterIndex returns the in-group index of router r.
func (d *Dragonfly) RouterIndex(r int) int { return r % d.A }

// GroupRouter returns the router with in-group index idx in group grp.
func (d *Dragonfly) GroupRouter(grp, idx int) int { return grp*d.A + idx }

// TerminalGroup returns the group terminal t belongs to.
func (d *Dragonfly) TerminalGroup(t int) int { return d.RouterGroup(d.TerminalRouter(t)) }

// LocalPort returns the port index on the router with in-group index from
// that connects it to the router with in-group index to of the same group.
func (d *Dragonfly) LocalPort(from, to int) int {
	if to < from {
		return d.P + to
	}
	return d.P + to - 1
}

// GlobalPort returns the port index of global-channel slot c on its
// owning router (slot c lives on router c/H, port P+A-1+c%H).
func (d *Dragonfly) GlobalPort(c int) int { return d.P + d.A - 1 + c%d.H }

// SlotRouterIndex returns the in-group index of the router owning
// global-channel slot c.
func (d *Dragonfly) SlotRouterIndex(c int) int { return c / d.H }

// SlotOfPort returns the global-channel slot carried by global port
// `port` of the router with in-group index idx. It is the inverse of
// GlobalPort/SlotRouterIndex.
func (d *Dragonfly) SlotOfPort(idx, port int) int {
	return idx*d.H + (port - (d.P + d.A - 1))
}

// GlobalSlot returns the m-th global-channel slot of group grp leading to
// group dst, with m wrapped into the number of channels between the pair,
// so any non-negative m selects a valid slot. It reports -1 if grp == dst.
func (d *Dragonfly) GlobalSlot(grp, dst, m int) int { return d.wire.slotFor(grp, dst, m) }

// GlobalEntryRouter returns the router in group dst reached by taking the
// global channel at slot c of group grp. It reports -1 if slot c does not
// lead to dst.
func (d *Dragonfly) GlobalEntryRouter(grp, dst, c int) int {
	tgt, back := d.peerSlot(grp, c)
	if tgt != dst {
		return -1
	}
	return dst*d.A + back/d.H
}

// PortClass reports the class of port i using the canonical layout,
// without touching the graph. It matches Graph.Port(r, i).Class for every
// router.
func (d *Dragonfly) PortClass(i int) Class {
	switch {
	case i < d.P:
		return ClassTerminal
	case i < d.P+d.A-1:
		return ClassLocal
	default:
		return ClassGlobal
	}
}

// MinimalHops returns the number of router-to-router channels on the
// minimal path from srcRouter to dstRouter when the global channel at
// slot `slot` of the source group is used: up to one local hop in the
// source group, one global hop, and one local hop in the destination
// group (Section 4.1). Terminal channels are not counted, matching the
// hop counts H_m used by the UGAL decision rule. slot is ignored when the
// routers share a group.
func (d *Dragonfly) MinimalHops(srcRouter, dstRouter int, slot int) int {
	if srcRouter == dstRouter {
		return 0
	}
	gs, gd := d.RouterGroup(srcRouter), d.RouterGroup(dstRouter)
	if gs == gd {
		return 1
	}
	hops := 1 // the global channel
	if d.SlotRouterIndex(slot) != d.RouterIndex(srcRouter) {
		hops++ // local hop to reach the router owning the global channel
	}
	if d.GlobalEntryRouter(gs, gd, slot) != dstRouter {
		hops++ // local hop inside the destination group
	}
	return hops
}

// String describes the dragonfly configuration.
func (d *Dragonfly) String() string {
	return fmt.Sprintf("dragonfly(p=%d a=%d h=%d g=%d N=%d k=%d k'=%d)",
		d.P, d.A, d.H, d.G, d.Nodes(), d.RouterRadix(), d.EffectiveRadix())
}

// Groups returns the group count (interface form of the G field).
func (d *Dragonfly) Groups() int { return d.G }

// TerminalsPerGroup returns the number of terminals attached to each
// group (a·p).
func (d *Dragonfly) TerminalsPerGroup() int { return d.A * d.P }

// RoutersPerGroup returns the group size (interface form of the A
// field, for consumers holding only the routing-facing view).
func (d *Dragonfly) RoutersPerGroup() int { return d.A }

// LocalRoute returns the next-hop local port on the router with in-group
// index from towards the router with in-group index to. The canonical
// dragonfly group is fully connected, so the next hop is the direct
// port.
func (d *Dragonfly) LocalRoute(from, to int) int {
	if from == to {
		return -1 // no local hop needed
	}
	return d.LocalPort(from, to)
}

// LocalHops returns the intra-group hop count between two routers of a
// group: 0 or 1 in the fully connected group.
func (d *Dragonfly) LocalHops(from, to int) int {
	if from == to {
		return 0
	}
	return 1
}

// MinVCs returns the virtual channels the routing ladder needs for
// deadlock freedom on this topology: 3 (Figure 7 — two for minimal
// routing plus one for the non-minimal detour; the fully connected
// group's single-hop local routes add no intra-group dependencies).
func (d *Dragonfly) MinVCs() int { return 3 }

// Describe returns the analytic structure descriptor.
func (d *Dragonfly) Describe() Descriptor {
	global := 0
	if d.G > 1 {
		global = d.G * d.A * d.H / 2
	}
	return Descriptor{
		Family:            "dragonfly",
		Params:            map[string]int{"p": d.P, "a": d.A, "h": d.H, "g": d.G},
		Groups:            d.G,
		RoutersPerGroup:   d.A,
		TerminalsPerGroup: d.A * d.P,
		Routers:           d.A * d.G,
		Terminals:         d.Nodes(),
		RouterRadix:       d.RouterRadix(),
		TerminalChannels:  d.Nodes(),
		LocalChannels:     d.G * d.A * (d.A - 1) / 2,
		GlobalChannels:    global,
	}
}
