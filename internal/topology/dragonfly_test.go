package topology

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func mustDragonfly(t *testing.T, p, a, h, g int) *Dragonfly {
	t.Helper()
	d, err := NewDragonfly(p, a, h, g)
	if err != nil {
		t.Fatalf("NewDragonfly(%d,%d,%d,%d): %v", p, a, h, g, err)
	}
	return d
}

func TestDragonflyPaperExample(t *testing.T) {
	// Figure 5: p = h = 2, a = 4 scales to N = 72 with k = 7 routers and
	// an effective radix k' = 16.
	d := mustDragonfly(t, 2, 4, 2, 0)
	if got := d.Nodes(); got != 72 {
		t.Errorf("Nodes() = %d, want 72", got)
	}
	if got := d.RouterRadix(); got != 7 {
		t.Errorf("RouterRadix() = %d, want 7", got)
	}
	if got := d.EffectiveRadix(); got != 16 {
		t.Errorf("EffectiveRadix() = %d, want 16", got)
	}
	if got := d.G; got != 9 {
		t.Errorf("G = %d, want ah+1 = 9", got)
	}
	if got := d.Routers(); got != 36 {
		t.Errorf("Routers() = %d, want 36", got)
	}
}

func TestDragonflyEvaluationConfig(t *testing.T) {
	// Section 4.2: ~1K node network with p = h = 4, a = 8.
	d := mustDragonfly(t, 4, 8, 4, 0)
	if got := d.Nodes(); got != 1056 {
		t.Errorf("Nodes() = %d, want 1056", got)
	}
	if got := d.G; got != 33 {
		t.Errorf("G = %d, want 33", got)
	}
	if got := d.RouterRadix(); got != 15 {
		t.Errorf("RouterRadix() = %d, want 15", got)
	}
}

func TestDragonflySingleGroup(t *testing.T) {
	// groups = 1 is the degenerate machine: one fully connected group,
	// no global channels.
	d, err := NewDragonfly(2, 4, 2, 1)
	if err != nil {
		t.Fatalf("NewDragonfly(2,4,2,1): %v", err)
	}
	if d.Nodes() != 8 || d.Routers() != 4 {
		t.Errorf("single group: %d nodes, %d routers, want 8 and 4", d.Nodes(), d.Routers())
	}
	_, _, global := d.CountChannels()
	if global != 0 {
		t.Errorf("single group has %d global channels, want 0", global)
	}
	for r := 0; r < d.Routers(); r++ {
		if got, want := d.Radix(r), d.P+d.A-1; got != want {
			t.Errorf("router %d radix %d, want %d (no global ports)", r, got, want)
		}
	}
}

func TestDragonflyParameterValidation(t *testing.T) {
	cases := []struct{ p, a, h, g int }{
		{0, 4, 2, 0},
		{2, 0, 2, 0},
		{2, 4, 0, 0},
		{2, 4, 2, -1},
		{2, 4, 2, 10}, // > ah+1 = 9
		{1, 3, 1, 3},  // a*h=3, g=3: rem = 1 odd with g odd
	}
	for _, c := range cases {
		if _, err := NewDragonfly(c.p, c.a, c.h, c.g); err == nil {
			t.Errorf("NewDragonfly(%d,%d,%d,%d) succeeded, want error", c.p, c.a, c.h, c.g)
		}
	}
}

func TestDragonflyGraphInvariants(t *testing.T) {
	configs := []struct{ p, a, h, g int }{
		{2, 4, 2, 0}, {2, 4, 2, 9}, {2, 4, 2, 5}, {2, 4, 2, 3}, {2, 4, 2, 2},
		{4, 8, 4, 0}, {4, 8, 4, 17}, {4, 8, 4, 33},
		{1, 1, 1, 2}, {1, 2, 1, 0}, {3, 6, 3, 0},
		{2, 4, 2, 8}, // non-maximal with remainder: ah=8, g=8, rem=1 even g
	}
	for _, c := range configs {
		d := mustDragonfly(t, c.p, c.a, c.h, c.g)
		if err := d.Validate(); err != nil {
			t.Errorf("%v: Validate: %v", d, err)
			continue
		}
		term, local, global := d.CountChannels()
		if term != d.Nodes() {
			t.Errorf("%v: terminal channels = %d, want %d", d, term, d.Nodes())
		}
		wantLocal := d.G * d.A * (d.A - 1) / 2
		if local != wantLocal {
			t.Errorf("%v: local channels = %d, want %d", d, local, wantLocal)
		}
		wantGlobal := d.G * d.A * d.H / 2
		if global != wantGlobal {
			t.Errorf("%v: global channels = %d, want %d", d, global, wantGlobal)
		}
	}
}

func TestDragonflyDiameterIsThree(t *testing.T) {
	d := mustDragonfly(t, 2, 4, 2, 0)
	diam, err := d.Diameter()
	if err != nil {
		t.Fatalf("Diameter: %v", err)
	}
	if diam != 3 {
		t.Errorf("diameter = %d, want 3 (local+global+local)", diam)
	}
}

func TestDragonflyChannelsBetweenSymmetric(t *testing.T) {
	for _, g := range []int{2, 3, 5, 8, 9} {
		d := mustDragonfly(t, 2, 4, 2, g)
		for ga := 0; ga < d.G; ga++ {
			total := 0
			for gb := 0; gb < d.G; gb++ {
				ab := d.ChannelsBetween(ga, gb)
				ba := d.ChannelsBetween(gb, ga)
				if ab != ba {
					t.Fatalf("g=%d: ChannelsBetween(%d,%d)=%d != ChannelsBetween(%d,%d)=%d", g, ga, gb, ab, gb, ga, ba)
				}
				if ga != gb && ab == 0 {
					t.Fatalf("g=%d: groups %d and %d not connected", g, ga, gb)
				}
				total += ab
			}
			if total != d.A*d.H {
				t.Fatalf("g=%d: group %d has %d global channels, want %d", g, ga, total, d.A*d.H)
			}
		}
	}
}

func TestDragonflyMaximalHasOneChannelPerPair(t *testing.T) {
	d := mustDragonfly(t, 4, 8, 4, 0)
	for ga := 0; ga < d.G; ga++ {
		for gb := 0; gb < d.G; gb++ {
			if ga == gb {
				continue
			}
			if n := d.ChannelsBetween(ga, gb); n != 1 {
				t.Fatalf("maximal dragonfly: %d channels between %d and %d, want 1", n, ga, gb)
			}
		}
	}
}

func TestDragonflyGlobalSlotRoundTrip(t *testing.T) {
	for _, g := range []int{0, 5, 8} {
		d := mustDragonfly(t, 2, 4, 2, g)
		for grp := 0; grp < d.G; grp++ {
			for dst := 0; dst < d.G; dst++ {
				if grp == dst {
					if d.GlobalSlot(grp, dst, 0) != -1 {
						t.Fatalf("GlobalSlot(%d,%d,0) != -1", grp, dst)
					}
					continue
				}
				n := d.ChannelsBetween(grp, dst)
				for m := 0; m < n; m++ {
					c := d.GlobalSlot(grp, dst, m)
					if c < 0 || c >= d.A*d.H {
						t.Fatalf("GlobalSlot(%d,%d,%d) = %d out of range", grp, dst, m, c)
					}
					if got := d.SlotTarget(grp, c); got != dst {
						t.Fatalf("SlotTarget(%d,%d) = %d, want %d", grp, c, got, dst)
					}
					entry := d.GlobalEntryRouter(grp, dst, c)
					if entry < 0 || d.RouterGroup(entry) != dst {
						t.Fatalf("GlobalEntryRouter(%d,%d,%d) = %d not in group %d", grp, dst, c, entry, dst)
					}
				}
			}
		}
	}
}

func TestDragonflyGlobalWiringMatchesGraph(t *testing.T) {
	// The helper functions (SlotTarget, GlobalPort, GlobalEntryRouter)
	// must agree with the actual graph wiring.
	for _, cfg := range []struct{ p, a, h, g int }{{2, 4, 2, 0}, {2, 4, 2, 5}, {4, 8, 4, 0}, {2, 4, 2, 8}} {
		d := mustDragonfly(t, cfg.p, cfg.a, cfg.h, cfg.g)
		for grp := 0; grp < d.G; grp++ {
			for c := 0; c < d.A*d.H; c++ {
				r := d.GroupRouter(grp, d.SlotRouterIndex(c))
				port := d.GlobalPort(c)
				pt := d.Port(r, port)
				if pt.Class != ClassGlobal {
					t.Fatalf("%v: router %d port %d class = %v", d, r, port, pt.Class)
				}
				dst := d.SlotTarget(grp, c)
				if got := d.RouterGroup(pt.PeerRouter); got != dst {
					t.Fatalf("%v: slot %d of group %d reaches group %d, want %d", d, c, grp, got, dst)
				}
				if want := d.GlobalEntryRouter(grp, dst, c); pt.PeerRouter != want {
					t.Fatalf("%v: slot %d of group %d lands on router %d, want %d", d, c, grp, pt.PeerRouter, want)
				}
			}
		}
	}
}

func TestDragonflyLocalPortLayout(t *testing.T) {
	d := mustDragonfly(t, 2, 4, 2, 0)
	for grp := 0; grp < d.G; grp++ {
		for i := 0; i < d.A; i++ {
			r := d.GroupRouter(grp, i)
			for j := 0; j < d.A; j++ {
				if i == j {
					continue
				}
				port := d.LocalPort(i, j)
				pt := d.Port(r, port)
				if pt.Class != ClassLocal {
					t.Fatalf("router %d port %d: class %v, want local", r, port, pt.Class)
				}
				if want := d.GroupRouter(grp, j); pt.PeerRouter != want {
					t.Fatalf("router %d local port to %d reaches %d, want %d", r, j, pt.PeerRouter, want)
				}
				// Reverse port must point back.
				back := d.Port(pt.PeerRouter, pt.PeerPort)
				if back.PeerRouter != r || back.PeerPort != port {
					t.Fatalf("asymmetric local link %d:%d <-> %d:%d", r, port, pt.PeerRouter, pt.PeerPort)
				}
			}
		}
	}
}

func TestDragonflyPortClassMatchesGraph(t *testing.T) {
	d := mustDragonfly(t, 4, 8, 4, 17)
	for r := 0; r < d.Routers(); r++ {
		for i := 0; i < d.Radix(r); i++ {
			if got, want := d.PortClass(i), d.Port(r, i).Class; got != want {
				t.Fatalf("router %d port %d: PortClass=%v graph=%v", r, i, got, want)
			}
		}
	}
}

func TestDragonflyMinimalHops(t *testing.T) {
	d := mustDragonfly(t, 2, 4, 2, 0)
	// Same router.
	if got := d.MinimalHops(0, 0, 0); got != 0 {
		t.Errorf("same-router hops = %d, want 0", got)
	}
	// Same group, different router.
	if got := d.MinimalHops(0, 3, 0); got != 1 {
		t.Errorf("same-group hops = %d, want 1", got)
	}
	// Cross-group hop counts must be within [1,3] and equal 1 + number of
	// required local hops.
	for src := 0; src < d.Routers(); src++ {
		for dst := 0; dst < d.Routers(); dst++ {
			gs, gd := d.RouterGroup(src), d.RouterGroup(dst)
			if gs == gd {
				continue
			}
			slot := d.GlobalSlot(gs, gd, 0)
			hops := d.MinimalHops(src, dst, slot)
			if hops < 1 || hops > 3 {
				t.Fatalf("MinimalHops(%d,%d,%d) = %d, want within [1,3]", src, dst, slot, hops)
			}
		}
	}
}

func TestBalancedDragonfly(t *testing.T) {
	d, err := NewBalancedDragonfly(2, 0)
	if err != nil {
		t.Fatalf("NewBalancedDragonfly: %v", err)
	}
	if d.A != 2*d.P || d.A != 2*d.H {
		t.Errorf("not balanced: p=%d a=%d h=%d", d.P, d.A, d.H)
	}
	if got := d.Nodes(); got != 72 {
		t.Errorf("balanced h=2 Nodes() = %d, want 72", got)
	}
}

func TestDragonflyPropertySlotPairing(t *testing.T) {
	// Property: for every realizable random configuration, following a
	// global slot and then its reverse slot returns to the origin.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := 1 + rng.Intn(6)
		h := 1 + rng.Intn(4)
		maxG := a*h + 1
		g := 2 + rng.Intn(maxG-1)
		rem := (a * h) % (g - 1)
		if rem%2 == 1 && g%2 == 1 {
			return true // unrealizable configuration, skipped
		}
		d, err := NewDragonfly(1+rng.Intn(3), a, h, g)
		if err != nil {
			return false
		}
		for grp := 0; grp < d.G; grp++ {
			for c := 0; c < d.A*d.H; c++ {
				dst, back := d.peerSlot(grp, c)
				if dst == grp {
					return false
				}
				g2, c2 := d.peerSlot(dst, back)
				if g2 != grp || c2 != c {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestDragonflyPropertyChannelBalance(t *testing.T) {
	// Property: channel counts between pairs differ by at most one from
	// the base+1, and every group uses all its slots exactly once.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := 1 + rng.Intn(5)
		h := 1 + rng.Intn(4)
		g := 2 + rng.Intn(a*h)
		if (a*h)%(g-1)%2 == 1 && g%2 == 1 {
			return true
		}
		d, err := NewDragonfly(1, a, h, g)
		if err != nil {
			return false
		}
		base := (a * h) / (g - 1)
		for ga := 0; ga < g; ga++ {
			sum := 0
			for gb := 0; gb < g; gb++ {
				n := d.ChannelsBetween(ga, gb)
				if ga == gb {
					if n != 0 {
						return false
					}
					continue
				}
				if n < base || n > base+2 {
					return false
				}
				sum += n
			}
			if sum != a*h {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestSlotOfPortInvertsGlobalPort(t *testing.T) {
	d := mustDragonfly(t, 4, 8, 4, 0)
	for c := 0; c < d.A*d.H; c++ {
		idx := d.SlotRouterIndex(c)
		port := d.GlobalPort(c)
		if got := d.SlotOfPort(idx, port); got != c {
			t.Fatalf("SlotOfPort(%d, %d) = %d, want %d", idx, port, got, c)
		}
	}
}
