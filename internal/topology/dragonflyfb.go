package topology

import "fmt"

// DragonflyFB is the dragonfly variant of Figure 6(b): the intra-group
// network is an n-dimensional flattened butterfly instead of a single
// fully connected dimension, multiplying the routers per group — and
// with them the effective radix k' = a(p+h) — without raising the
// router radix. The paper's example turns the k=7 router of Figure 5
// (k' = 16) into a 2×2×2 group with k' = 32.
//
// Port layout on every router:
//
//	ports [0, P)              terminal ports
//	ports [P, P+Σ(dims−1))    local ports, dimension 0 first
//	ports [P+Σ(dims−1), …+H)  global ports (slot layout as in Dragonfly)
//
// Intra-group routing is dimension order (lowest differing dimension
// first), which is acyclic, so the same virtual-channel ladder as the
// canonical dragonfly keeps the variant deadlock-free.
type DragonflyFB struct {
	*Graph

	// P and H are terminals and global channels per router.
	P, H int
	// Dims are the intra-group flattened-butterfly dimension sizes.
	Dims []int
	// A is the number of routers per group (the product of Dims).
	A int
	// G is the number of groups.
	G int

	wire      gwire
	localBase int // first local port
	gBase     int // first global port
}

// NewDragonflyFB builds the variant. groups as in NewDragonfly (0 means
// the maximal a*h+1).
func NewDragonflyFB(p int, dims []int, h, groups int) (*DragonflyFB, error) {
	if p < 1 || h < 1 {
		return nil, fmt.Errorf("topology: dragonflyFB parameters must be positive (p=%d h=%d)", p, h)
	}
	if len(dims) == 0 {
		return nil, fmt.Errorf("topology: dragonflyFB needs at least one group dimension")
	}
	a := 1
	localPorts := 0
	for i, s := range dims {
		if s < 2 {
			return nil, fmt.Errorf("topology: dragonflyFB group dimension %d must have size >= 2 (got %d)", i, s)
		}
		a *= s
		localPorts += s - 1
	}
	maxGroups := a*h + 1
	if groups == 0 {
		groups = maxGroups
	}
	if groups < 2 || groups > maxGroups {
		return nil, fmt.Errorf("topology: dragonflyFB supports 2..%d groups (got %d)", maxGroups, groups)
	}
	wire, err := newGwire(groups, a*h)
	if err != nil {
		return nil, err
	}
	d := &DragonflyFB{
		P: p, H: h,
		Dims:      append([]int(nil), dims...),
		A:         a,
		G:         groups,
		wire:      wire,
		localBase: p,
		gBase:     p + localPorts,
	}

	routers := a * groups
	g := NewGraph(routers, p*routers)
	radix := p + localPorts + h
	for r := 0; r < routers; r++ {
		grp, idx := r/a, r%a
		ports := make([]Port, 0, radix)
		for t := 0; t < p; t++ {
			term := r*p + t
			ports = append(ports, Port{Class: ClassTerminal, PeerRouter: -1, PeerPort: -1, Terminal: term})
			g.termRouter[term] = r
			g.termPort[term] = t
		}
		coord := d.coord(idx)
		for dim, size := range dims {
			own := coord[dim]
			for v := 0; v < size; v++ {
				if v == own {
					continue
				}
				peerIdx := d.withCoord(coord, dim, v)
				ports = append(ports, Port{
					Class:      ClassLocal,
					PeerRouter: grp*a + peerIdx,
					PeerPort:   d.dimPort(dim, own, v),
					Terminal:   -1,
				})
			}
		}
		for jg := 0; jg < h; jg++ {
			c := idx*h + jg
			dst, back := d.wire.peer(grp, c)
			ports = append(ports, Port{
				Class:      ClassGlobal,
				PeerRouter: dst*a + back/h,
				PeerPort:   d.gBase + back%h,
				Terminal:   -1,
			})
		}
		g.ports[r] = ports
	}
	d.Graph = g
	if err := g.Validate(); err != nil {
		return nil, fmt.Errorf("topology: dragonflyFB construction bug: %w", err)
	}
	return d, nil
}

// coord returns the per-dimension coordinates of in-group index idx.
func (d *DragonflyFB) coord(idx int) []int {
	c := make([]int, len(d.Dims))
	for i, s := range d.Dims {
		c[i] = idx % s
		idx /= s
	}
	return c
}

// withCoord replaces coordinate dim with v.
func (d *DragonflyFB) withCoord(coord []int, dim, v int) int {
	idx := 0
	stride := 1
	for i, s := range d.Dims {
		x := coord[i]
		if i == dim {
			x = v
		}
		idx += x * stride
		stride *= s
	}
	return idx
}

// dimPort returns the port index on the router at coordinate `to` of
// dimension dim for the channel back to coordinate `from`.
func (d *DragonflyFB) dimPort(dim, from, to int) int {
	base := d.localBase
	for i := 0; i < dim; i++ {
		base += d.Dims[i] - 1
	}
	if from < to {
		return base + from
	}
	return base + from - 1
}

// Groups returns the group count.
func (d *DragonflyFB) Groups() int { return d.G }

// Nodes returns the terminal count.
func (d *DragonflyFB) Nodes() int { return d.A * d.P * d.G }

// TerminalsPerGroup returns a·p.
func (d *DragonflyFB) TerminalsPerGroup() int { return d.A * d.P }

// RouterRadix returns the router radix.
func (d *DragonflyFB) RouterRadix() int { return d.gBase + d.H }

// EffectiveRadix returns the group's virtual-router radix k' = a(p+h).
func (d *DragonflyFB) EffectiveRadix() int { return d.A * (d.P + d.H) }

// RouterGroup returns the group of router r.
func (d *DragonflyFB) RouterGroup(r int) int { return r / d.A }

// RouterIndex returns the in-group index of router r.
func (d *DragonflyFB) RouterIndex(r int) int { return r % d.A }

// GroupRouter returns the router with in-group index idx of group grp.
func (d *DragonflyFB) GroupRouter(grp, idx int) int { return grp*d.A + idx }

// TerminalGroup returns the group of terminal t.
func (d *DragonflyFB) TerminalGroup(t int) int { return d.RouterGroup(d.TerminalRouter(t)) }

// LocalRoute returns the next-hop local port from in-group index `from`
// towards `to`: dimension-order routing over the intra-group flattened
// butterfly (fix the lowest differing dimension first).
func (d *DragonflyFB) LocalRoute(from, to int) int {
	cf, ct := d.coord(from), d.coord(to)
	for dim := range d.Dims {
		if cf[dim] != ct[dim] {
			return d.dimPort(dim, ct[dim], cf[dim])
		}
	}
	return -1 // from == to: no local hop needed
}

// LocalHops returns the intra-group hop count between two routers: the
// number of differing dimensions.
func (d *DragonflyFB) LocalHops(from, to int) int {
	cf, ct := d.coord(from), d.coord(to)
	n := 0
	for dim := range d.Dims {
		if cf[dim] != ct[dim] {
			n++
		}
	}
	return n
}

// GlobalPort returns the port carrying global-channel slot c on its
// owning router.
func (d *DragonflyFB) GlobalPort(c int) int { return d.gBase + c%d.H }

// SlotRouterIndex returns the in-group index of the router owning slot c.
func (d *DragonflyFB) SlotRouterIndex(c int) int { return c / d.H }

// SlotTarget returns the group slot c of group grp leads to.
func (d *DragonflyFB) SlotTarget(grp, c int) int { return d.wire.target(grp, c) }

// ChannelsBetween returns the global channels connecting two groups.
func (d *DragonflyFB) ChannelsBetween(ga, gb int) int { return d.wire.between(ga, gb) }

// GlobalSlot returns the m-th slot of grp leading to dst.
func (d *DragonflyFB) GlobalSlot(grp, dst, m int) int { return d.wire.slotFor(grp, dst, m) }

// GlobalEntryRouter returns the router of group dst reached via slot c
// of group grp, or -1 if the slot leads elsewhere.
func (d *DragonflyFB) GlobalEntryRouter(grp, dst, c int) int {
	tgt, back := d.wire.peer(grp, c)
	if tgt != dst {
		return -1
	}
	return dst*d.A + back/d.H
}

// PortClass reports the class of port i in the canonical layout.
func (d *DragonflyFB) PortClass(i int) Class {
	switch {
	case i < d.P:
		return ClassTerminal
	case i < d.gBase:
		return ClassLocal
	default:
		return ClassGlobal
	}
}

// RoutersPerGroup returns the group size a (the product of Dims).
func (d *DragonflyFB) RoutersPerGroup() int { return d.A }

// MinVCs returns the virtual channels the routing ladder needs: 3, as
// for the canonical dragonfly — dimension-order local routing is
// acyclic, so the flattened-butterfly group adds no VC demand.
func (d *DragonflyFB) MinVCs() int { return 3 }

// Describe returns the analytic structure descriptor.
func (d *DragonflyFB) Describe() Descriptor {
	localPorts := 0
	for _, s := range d.Dims {
		localPorts += s - 1
	}
	params := map[string]int{"p": d.P, "d1": d.Dims[0], "d2": 0, "d3": 0, "h": d.H, "g": d.G}
	if len(d.Dims) > 1 {
		params["d2"] = d.Dims[1]
	}
	if len(d.Dims) > 2 {
		params["d3"] = d.Dims[2]
	}
	return Descriptor{
		Family:            "dragonflyfb",
		Params:            params,
		Groups:            d.G,
		RoutersPerGroup:   d.A,
		TerminalsPerGroup: d.A * d.P,
		Routers:           d.A * d.G,
		Terminals:         d.Nodes(),
		RouterRadix:       d.RouterRadix(),
		TerminalChannels:  d.Nodes(),
		LocalChannels:     d.G * d.A * localPorts / 2,
		GlobalChannels:    d.G * d.A * d.H / 2,
	}
}

// String describes the configuration.
func (d *DragonflyFB) String() string {
	return fmt.Sprintf("dragonflyFB(p=%d dims=%v h=%d g=%d N=%d k=%d k'=%d)",
		d.P, d.Dims, d.H, d.G, d.Nodes(), d.RouterRadix(), d.EffectiveRadix())
}
