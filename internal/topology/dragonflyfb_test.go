package topology

import (
	"testing"
	"testing/quick"
)

func mustDFB(t *testing.T, p int, dims []int, h, g int) *DragonflyFB {
	t.Helper()
	d, err := NewDragonflyFB(p, dims, h, g)
	if err != nil {
		t.Fatalf("NewDragonflyFB(%d,%v,%d,%d): %v", p, dims, h, g, err)
	}
	return d
}

func TestDragonflyFBPaperExample(t *testing.T) {
	// Figure 6(b): p = 2, a 2x2x2 group, h = 2 — same k = 7 router as
	// Figure 5 but k' doubles from 16 to 32.
	d := mustDFB(t, 2, []int{2, 2, 2}, 2, 0)
	if got := d.RouterRadix(); got != 7 {
		t.Errorf("RouterRadix = %d, want 7", got)
	}
	if got := d.EffectiveRadix(); got != 32 {
		t.Errorf("EffectiveRadix = %d, want 32", got)
	}
	if d.A != 8 {
		t.Errorf("A = %d, want 8", d.A)
	}
	if d.G != 17 {
		t.Errorf("G = %d, want a*h+1 = 17", d.G)
	}
	if got := d.Nodes(); got != 272 {
		t.Errorf("Nodes = %d, want 272", got)
	}
}

func TestDragonflyFBValidation(t *testing.T) {
	cases := []struct {
		p    int
		dims []int
		h, g int
	}{
		{0, []int{2, 2}, 2, 0},
		{2, nil, 2, 0},
		{2, []int{1, 2}, 2, 0},
		{2, []int{2, 2}, 0, 0},
		{2, []int{2, 2}, 2, 1},
		{2, []int{2, 2}, 2, 100},
	}
	for _, c := range cases {
		if _, err := NewDragonflyFB(c.p, c.dims, c.h, c.g); err == nil {
			t.Errorf("NewDragonflyFB(%d,%v,%d,%d) accepted", c.p, c.dims, c.h, c.g)
		}
	}
}

func TestDragonflyFBGraphInvariants(t *testing.T) {
	for _, c := range []struct {
		p    int
		dims []int
		h, g int
	}{
		{2, []int{2, 2, 2}, 2, 0},
		{2, []int{2, 2, 2}, 2, 5},
		{1, []int{2, 3}, 2, 0},
		{2, []int{3, 3}, 1, 0},
	} {
		d := mustDFB(t, c.p, c.dims, c.h, c.g)
		if err := d.Validate(); err != nil {
			t.Errorf("%v: %v", d, err)
			continue
		}
		term, local, global := d.CountChannels()
		if term != d.Nodes() {
			t.Errorf("%v: terminals %d != %d", d, term, d.Nodes())
		}
		// Local channels: per group, routers*(size-1)/2 per dimension.
		wantLocal := 0
		for _, s := range c.dims {
			wantLocal += d.A * (s - 1) / 2
		}
		wantLocal *= d.G
		if local != wantLocal {
			t.Errorf("%v: local channels %d, want %d", d, local, wantLocal)
		}
		if wantGlobal := d.G * d.A * d.H / 2; global != wantGlobal {
			t.Errorf("%v: global channels %d, want %d", d, global, wantGlobal)
		}
	}
}

func TestDragonflyFBDiameter(t *testing.T) {
	// The minimal-routing bound is dims + 1 + dims (one hop per group
	// dimension on each side of the single global hop); the graph
	// diameter can undercut it slightly by taking a second global
	// channel, but never exceeds it.
	d := mustDFB(t, 2, []int{2, 2, 2}, 2, 0)
	diam, err := d.Diameter()
	if err != nil {
		t.Fatalf("Diameter: %v", err)
	}
	if diam > 7 || diam < 4 {
		t.Errorf("diameter = %d, want within [4, 7]", diam)
	}
}

func TestDragonflyFBLocalRouteConverges(t *testing.T) {
	// Property: repeatedly following LocalRoute reaches the target in
	// exactly LocalHops steps, through monotonically decreasing distance.
	d := mustDFB(t, 1, []int{2, 3, 2}, 2, 0)
	f := func(fromRaw, toRaw uint8) bool {
		from := int(fromRaw) % d.A
		to := int(toRaw) % d.A
		steps := 0
		cur := from
		for cur != to {
			port := d.LocalRoute(cur, to)
			pt := d.Port(d.GroupRouter(0, cur), port)
			if pt.Class != ClassLocal {
				return false
			}
			next := d.RouterIndex(pt.PeerRouter)
			if d.LocalHops(next, to) != d.LocalHops(cur, to)-1 {
				return false
			}
			cur = next
			steps++
			if steps > len(d.Dims) {
				return false
			}
		}
		return steps == d.LocalHops(from, to)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestDragonflyFBGlobalWiring(t *testing.T) {
	d := mustDFB(t, 2, []int{2, 2, 2}, 2, 0)
	for grp := 0; grp < d.G; grp++ {
		total := 0
		for dst := 0; dst < d.G; dst++ {
			n := d.ChannelsBetween(grp, dst)
			if grp != dst && n == 0 {
				t.Fatalf("groups %d and %d not connected", grp, dst)
			}
			if n != d.ChannelsBetween(dst, grp) {
				t.Fatal("asymmetric wiring")
			}
			total += n
			for m := 0; m < n; m++ {
				slot := d.GlobalSlot(grp, dst, m)
				if d.SlotTarget(grp, slot) != dst {
					t.Fatalf("slot %d of group %d targets %d, want %d", slot, grp, d.SlotTarget(grp, slot), dst)
				}
				entry := d.GlobalEntryRouter(grp, dst, slot)
				if entry < 0 || d.RouterGroup(entry) != dst {
					t.Fatalf("entry router %d not in group %d", entry, dst)
				}
				// The graph must agree.
				r := d.GroupRouter(grp, d.SlotRouterIndex(slot))
				pt := d.Port(r, d.GlobalPort(slot))
				if pt.PeerRouter != entry {
					t.Fatalf("graph wiring disagrees: slot %d of group %d", slot, grp)
				}
			}
		}
		if total != d.A*d.H {
			t.Fatalf("group %d has %d slots accounted, want %d", grp, total, d.A*d.H)
		}
	}
}

func TestDragonflyFBPortClass(t *testing.T) {
	d := mustDFB(t, 2, []int{2, 2}, 3, 0)
	for r := 0; r < d.Routers(); r++ {
		for i := 0; i < d.Radix(r); i++ {
			if got, want := d.PortClass(i), d.Port(r, i).Class; got != want {
				t.Fatalf("router %d port %d: PortClass %v != graph %v", r, i, got, want)
			}
		}
	}
}
